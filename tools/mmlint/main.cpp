/**
 * @file
 * mmlint driver: lint C++ sources under the given paths (default:
 * src/) and exit non-zero if any rule fires. Run from the repo root or
 * pass explicit paths; CI and ctest both gate on it.
 *
 *   mmlint [--list-rules] [path...]
 */
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool
isCxxSource(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

int
lintFile(const fs::path &p, size_t &fileCount, size_t &diagCount)
{
    std::ifstream in(p, std::ios::binary);
    if (!in) {
        std::cerr << "mmlint: cannot read " << p.string() << "\n";
        return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    ++fileCount;
    for (const mmlint::Diagnostic &d :
         mmlint::lintSource(p.generic_string(), ss.str())) {
        std::cout << mmlint::formatDiagnostic(d) << "\n";
        ++diagCount;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string &r : mmlint::ruleNames())
                std::cout << r << "\n";
            return 0;
        }
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: mmlint [--list-rules] [path...]\n";
            return 0;
        }
        roots.push_back(arg);
    }
    if (roots.empty())
        roots.push_back("src");

    size_t files = 0, diags = 0;
    for (const std::string &root : roots) {
        std::error_code ec;
        if (fs::is_directory(root, ec)) {
            // Sorted walk: diagnostics come out in a stable order.
            std::vector<fs::path> paths;
            for (const auto &entry :
                 fs::recursive_directory_iterator(root, ec))
                if (entry.is_regular_file() && isCxxSource(entry.path()))
                    paths.push_back(entry.path());
            std::sort(paths.begin(), paths.end());
            for (const fs::path &p : paths)
                if (int rc = lintFile(p, files, diags); rc != 0)
                    return rc;
        } else if (fs::is_regular_file(root, ec)) {
            if (int rc = lintFile(root, files, diags); rc != 0)
                return rc;
        } else {
            std::cerr << "mmlint: no such path: " << root << "\n";
            return 2;
        }
    }
    std::cerr << "mmlint: " << files << " files, " << diags
              << " finding(s)\n";
    return diags == 0 ? 0 : 1;
}
