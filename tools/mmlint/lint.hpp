/**
 * @file
 * mmlint — the project's domain lint engine.
 *
 * Clang's thread-safety analysis (common/thread_annotations.hpp) proves
 * lock discipline; mmlint covers the project invariants no general
 * compiler pass knows about:
 *
 *   raw-random            All randomness flows through common/rng's
 *                         seeded streams. rand()/srand()/drand48(),
 *                         std::random_device and time()-seeding create
 *                         unseeded entropy that breaks bitwise
 *                         reproducibility.
 *   unordered-iteration   search/, costmodel/ and bound/ results must
 *                         not depend on hash-table iteration order
 *                         (libstdc++'s is salt- and history-dependent).
 *                         Range-for over a std::unordered_map/set in
 *                         those trees is flagged.
 *   serve-decimal-float   Doubles cross the serve/ wire as quoted
 *                         hexfloats (jsonHexDouble). printf-style
 *                         decimal float conversions (%f/%e/%g) and
 *                         stream float manipulators in serve/ are
 *                         lossy or libc-dependent.
 *   naked-new             Ownership is RAII-only; raw new/delete
 *                         expressions are flagged (operator new/delete
 *                         declarations and `= delete` are not).
 *   catch-all             `catch (...)` silently drops the typed mm
 *                         error taxonomy (IoError, CorruptionError,
 *                         ...). Sites that genuinely capture-and-
 *                         republish carry an allow comment.
 *   raw-getenv            Environment access goes through common/env
 *                         (typed, default-aware, testable); direct
 *                         getenv() calls elsewhere are flagged.
 *
 * Escape hatch: a `// mmlint:allow(rule)` (or `allow(rule-a,rule-b)`)
 * comment on the offending line suppresses that rule there. Every
 * allow is expected to carry a justification in the same comment.
 *
 * The engine is dependency-free (no mm library) so the lint binary and
 * its tests build even when the main tree is broken.
 */
#pragma once

#include <string>
#include <vector>

namespace mmlint {

/** One finding: where, which rule, and a human-readable message. */
struct Diagnostic
{
    std::string path;
    int line = 0;
    std::string rule;
    std::string message;
};

/** Names of every rule, in reporting order (for --list-rules). */
const std::vector<std::string> &ruleNames();

/**
 * Lint one translation unit. @p path decides rule scoping (the portion
 * after the last "src/" names the subtree; a path with no "src/" is
 * linted as if at the source root). @p content is the full file text.
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   const std::string &content);

/** Render @p d as "path:line: [rule] message". */
std::string formatDiagnostic(const Diagnostic &d);

} // namespace mmlint
