#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace mmlint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind
{
    Ident,  ///< identifiers and keywords
    Number, ///< numeric literals
    Str,    ///< string literal (text = decoded-enough payload)
    Punct,  ///< operators/punctuation ("::", "...", "->" kept whole)
};

struct Token
{
    TokKind kind;
    std::string text;
    int line;
};

/**
 * A lexed file: the token stream (comments and preprocessor lines
 * stripped) plus the per-line `mmlint:allow(...)` suppressions found
 * in comments.
 */
struct Lexed
{
    std::vector<Token> tokens;
    std::map<int, std::set<std::string>> allows;
};

void
recordAllows(Lexed &out, const std::string &comment, int line)
{
    const std::string tag = "mmlint:allow(";
    size_t pos = 0;
    while ((pos = comment.find(tag, pos)) != std::string::npos) {
        size_t begin = pos + tag.size();
        size_t end = comment.find(')', begin);
        if (end == std::string::npos)
            return;
        std::string inner = comment.substr(begin, end - begin);
        std::string rule;
        for (char c : inner) {
            if (c == ',') {
                if (!rule.empty())
                    out.allows[line].insert(rule);
                rule.clear();
            } else if (!std::isspace(static_cast<unsigned char>(c))) {
                rule.push_back(c);
            }
        }
        if (!rule.empty())
            out.allows[line].insert(rule);
        pos = end + 1;
    }
}

Lexed
lex(const std::string &src)
{
    Lexed out;
    size_t i = 0;
    const size_t n = src.size();
    int line = 1;
    bool atLineStart = true;

    auto peek = [&](size_t off) -> char {
        return i + off < n ? src[i + off] : '\0';
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            atLineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor directive: skip the whole (continued) line.
        if (c == '#' && atLineStart) {
            while (i < n) {
                if (src[i] == '\n') {
                    if (i > 0 && src[i - 1] == '\\') {
                        ++line;
                        ++i;
                        continue;
                    }
                    break;
                }
                ++i;
            }
            continue;
        }
        atLineStart = false;
        // Line comment.
        if (c == '/' && peek(1) == '/') {
            size_t end = src.find('\n', i);
            if (end == std::string::npos)
                end = n;
            recordAllows(out, src.substr(i, end - i), line);
            i = end;
            continue;
        }
        // Block comment (allows attach to the line each piece is on).
        if (c == '/' && peek(1) == '*') {
            size_t j = i + 2;
            size_t pieceStart = i;
            int pieceLine = line;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
                if (src[j] == '\n') {
                    recordAllows(out, src.substr(pieceStart, j - pieceStart),
                                 pieceLine);
                    pieceStart = j + 1;
                    pieceLine = line + 1;
                    ++line;
                }
                ++j;
            }
            size_t pieceEnd = std::min(j + 2, n);
            recordAllows(out, src.substr(pieceStart, pieceEnd - pieceStart),
                         pieceLine);
            i = pieceEnd;
            continue;
        }
        // Raw string literal.
        if (c == 'R' && peek(1) == '"') {
            size_t j = i + 2;
            std::string delim;
            while (j < n && src[j] != '(')
                delim.push_back(src[j++]);
            std::string close = ")" + delim + "\"";
            size_t end = src.find(close, j);
            if (end == std::string::npos)
                end = n;
            std::string payload = src.substr(j + 1, end - (j + 1));
            out.tokens.push_back({TokKind::Str, payload, line});
            line += int(std::count(src.begin() + long(i),
                                   src.begin()
                                       + long(std::min(end + close.size(),
                                                       n)),
                                   '\n'));
            i = std::min(end + close.size(), n);
            continue;
        }
        // String / char literal.
        if (c == '"' || c == '\'') {
            char quote = c;
            size_t j = i + 1;
            std::string payload;
            while (j < n && src[j] != quote) {
                if (src[j] == '\\' && j + 1 < n) {
                    payload.push_back(src[j]);
                    payload.push_back(src[j + 1]);
                    j += 2;
                    continue;
                }
                if (src[j] == '\n')
                    ++line; // unterminated; keep line counts honest
                payload.push_back(src[j]);
                ++j;
            }
            if (quote == '"')
                out.tokens.push_back({TokKind::Str, payload, line});
            i = j + 1;
            continue;
        }
        // Identifier / keyword.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t j = i;
            while (j < n
                   && (std::isalnum(static_cast<unsigned char>(src[j]))
                       || src[j] == '_'))
                ++j;
            out.tokens.push_back({TokKind::Ident, src.substr(i, j - i),
                                  line});
            i = j;
            continue;
        }
        // Number.
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            while (j < n
                   && (std::isalnum(static_cast<unsigned char>(src[j]))
                       || src[j] == '.' || src[j] == '\''))
                ++j;
            out.tokens.push_back({TokKind::Number, src.substr(i, j - i),
                                  line});
            i = j;
            continue;
        }
        // Punctuation; keep the few multi-char tokens the rules need.
        if (c == ':' && peek(1) == ':') {
            out.tokens.push_back({TokKind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '.' && peek(1) == '.' && peek(2) == '.') {
            out.tokens.push_back({TokKind::Punct, "...", line});
            i += 3;
            continue;
        }
        if (c == '-' && peek(1) == '>') {
            out.tokens.push_back({TokKind::Punct, "->", line});
            i += 2;
            continue;
        }
        out.tokens.push_back({TokKind::Punct, std::string(1, c), line});
        ++i;
    }
    return out;
}

// ---------------------------------------------------------------------------
// Rule helpers
// ---------------------------------------------------------------------------

/** The path portion after the last "src/" ("" = not under a src/). */
std::string
srcRelative(const std::string &path)
{
    size_t pos = path.rfind("src/");
    if (pos == std::string::npos)
        return path;
    return path.substr(pos + 4);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

struct Linter
{
    const std::string &path;
    const std::string rel;
    const Lexed lexed;
    std::vector<Diagnostic> diags;

    Linter(const std::string &p, const std::string &content)
        : path(p), rel(srcRelative(p)), lexed(lex(content))
    {
    }

    const Token *
    tok(size_t i) const
    {
        return i < lexed.tokens.size() ? &lexed.tokens[i] : nullptr;
    }

    bool
    allowed(const std::string &rule, int line) const
    {
        auto it = lexed.allows.find(line);
        return it != lexed.allows.end() && it->second.count(rule) > 0;
    }

    void
    report(const std::string &rule, int line, std::string message)
    {
        if (allowed(rule, line))
            return;
        diags.push_back({path, line, rule, std::move(message)});
    }

    // -- raw-random ---------------------------------------------------------

    void
    rawRandom()
    {
        if (startsWith(rel, "common/rng"))
            return; // the one blessed randomness module
        const std::set<std::string> banned{"rand", "srand", "drand48",
                                           "srand48", "lrand48"};
        const auto &t = lexed.tokens;
        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Ident)
                continue;
            const Token *next = tok(i + 1);
            if (banned.count(t[i].text) > 0 && next != nullptr
                && next->text == "(") {
                report("raw-random", t[i].line,
                       t[i].text
                           + "() draws unseeded entropy; use a seeded "
                             "mm::Rng stream (common/rng.hpp)");
            } else if (t[i].text == "random_device") {
                report("raw-random", t[i].line,
                       "std::random_device is non-reproducible; derive "
                       "streams from the run seed (common/rng.hpp)");
            } else if (t[i].text == "time" && next != nullptr
                       && next->text == "(") {
                const Token *arg = tok(i + 2);
                if (arg != nullptr
                    && (arg->text == "0" || arg->text == "NULL"
                        || arg->text == "nullptr")) {
                    report("raw-random", t[i].line,
                           "time()-seeded randomness breaks bitwise "
                           "reproducibility; seed from the run config");
                }
            }
        }
    }

    // -- unordered-iteration ------------------------------------------------

    void
    unorderedIteration()
    {
        if (!startsWith(rel, "search/") && !startsWith(rel, "costmodel/")
            && !startsWith(rel, "bound/"))
            return;
        const auto &t = lexed.tokens;

        // Pass 1: names declared with an unordered container type.
        std::set<std::string> unorderedVars;
        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Ident
                || (t[i].text != "unordered_map"
                    && t[i].text != "unordered_set"
                    && t[i].text != "unordered_multimap"
                    && t[i].text != "unordered_multiset"))
                continue;
            size_t j = i + 1;
            if (tok(j) == nullptr || tok(j)->text != "<")
                continue;
            int depth = 0;
            for (; j < t.size(); ++j) {
                if (t[j].text == "<")
                    ++depth;
                else if (t[j].text == ">" && --depth == 0) {
                    ++j;
                    break;
                }
            }
            // Past the template args: `&`/`*` then the declared name.
            while (tok(j) != nullptr
                   && (tok(j)->text == "&" || tok(j)->text == "*"))
                ++j;
            if (tok(j) != nullptr && tok(j)->kind == TokKind::Ident)
                unorderedVars.insert(tok(j)->text);
        }

        // Pass 2: range-for whose range expression touches one of them.
        for (size_t i = 0; i + 1 < t.size(); ++i) {
            if (t[i].kind != TokKind::Ident || t[i].text != "for"
                || t[i + 1].text != "(")
                continue;
            int depth = 0;
            size_t colon = 0, end = 0;
            for (size_t j = i + 1; j < t.size(); ++j) {
                if (t[j].text == "(")
                    ++depth;
                else if (t[j].text == ")" && --depth == 0) {
                    end = j;
                    break;
                } else if (t[j].text == ":" && depth == 1 && colon == 0)
                    colon = j;
                else if (t[j].text == ";" && depth == 1) {
                    colon = 0; // classic for loop, not range-for
                    break;
                }
            }
            if (colon == 0 || end == 0)
                continue;
            for (size_t j = colon + 1; j < end; ++j) {
                if (t[j].kind == TokKind::Ident
                    && unorderedVars.count(t[j].text) > 0) {
                    report("unordered-iteration", t[i].line,
                           "range-for over unordered container '"
                               + t[j].text
                               + "': iteration order is salt-dependent; "
                                 "copy to a sorted container first");
                    break;
                }
            }
        }
    }

    // -- serve-decimal-float ------------------------------------------------

    /** True if @p s holds a printf decimal float conversion. */
    static bool
    hasDecimalFloatFormat(const std::string &s)
    {
        for (size_t i = 0; i + 1 < s.size(); ++i) {
            if (s[i] != '%')
                continue;
            size_t j = i + 1;
            if (s[j] == '%') {
                i = j; // literal %%
                continue;
            }
            while (j < s.size()
                   && (s[j] == '-' || s[j] == '+' || s[j] == ' '
                       || s[j] == '#' || s[j] == '0'))
                ++j;
            while (j < s.size()
                   && (std::isdigit(static_cast<unsigned char>(s[j]))
                       || s[j] == '*'))
                ++j;
            if (j < s.size() && s[j] == '.') {
                ++j;
                while (j < s.size()
                       && (std::isdigit(static_cast<unsigned char>(s[j]))
                           || s[j] == '*'))
                    ++j;
            }
            while (j < s.size() && (s[j] == 'l' || s[j] == 'L'))
                ++j;
            if (j < s.size()
                && (s[j] == 'f' || s[j] == 'F' || s[j] == 'e'
                    || s[j] == 'E' || s[j] == 'g' || s[j] == 'G'))
                return true; // %a/%A (hexfloat) deliberately not listed
        }
        return false;
    }

    void
    serveDecimalFloat()
    {
        if (!startsWith(rel, "serve/"))
            return;
        const auto &t = lexed.tokens;
        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind == TokKind::Str
                && hasDecimalFloatFormat(t[i].text)) {
                report("serve-decimal-float", t[i].line,
                       "decimal float formatting on the serve wire; use "
                       "jsonHexDouble (%a) so values round-trip bitwise");
            } else if (t[i].kind == TokKind::Ident
                       && (t[i].text == "setprecision"
                           || ((t[i].text == "fixed"
                                || t[i].text == "scientific")
                               && i > 0 && t[i - 1].text == "::"))) {
                report("serve-decimal-float", t[i].line,
                       "stream float formatting in serve/; use "
                       "jsonHexDouble for wire values");
            }
        }
    }

    // -- naked-new ----------------------------------------------------------

    void
    nakedNew()
    {
        const auto &t = lexed.tokens;
        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != TokKind::Ident)
                continue;
            const std::string &prev = i > 0 ? t[i - 1].text : std::string();
            if (t[i].text == "new") {
                if (prev == "operator")
                    continue; // allocator interface, not an expression
                report("naked-new", t[i].line,
                       "naked new: own allocations with "
                       "std::unique_ptr/std::vector (RAII only)");
            } else if (t[i].text == "delete") {
                if (prev == "operator" || prev == "=")
                    continue; // operator delete / deleted function
                report("naked-new", t[i].line,
                       "naked delete: the matching owner should be a "
                       "smart pointer or container");
            }
        }
    }

    // -- catch-all ----------------------------------------------------------

    void
    catchAll()
    {
        const auto &t = lexed.tokens;
        for (size_t i = 0; i + 3 < t.size(); ++i) {
            if (t[i].kind == TokKind::Ident && t[i].text == "catch"
                && t[i + 1].text == "(" && t[i + 2].text == "..."
                && t[i + 3].text == ")") {
                report("catch-all", t[i].line,
                       "catch (...) drops the typed mm error taxonomy; "
                       "catch the specific error (common/error.hpp) or "
                       "justify with an allow comment");
            }
        }
    }

    // -- raw-getenv ---------------------------------------------------------

    void
    rawGetenv()
    {
        if (startsWith(rel, "common/env"))
            return; // the one blessed environment module
        const auto &t = lexed.tokens;
        for (size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind == TokKind::Ident
                && (t[i].text == "getenv" || t[i].text == "secure_getenv")
                && tok(i + 1) != nullptr && tok(i + 1)->text == "(") {
                report("raw-getenv", t[i].line,
                       "direct getenv(); use the typed helpers in "
                       "common/env.hpp (envInt/envSize/envDouble/...)");
            }
        }
    }
};

} // namespace

const std::vector<std::string> &
ruleNames()
{
    static const std::vector<std::string> names{
        "raw-random",    "unordered-iteration", "serve-decimal-float",
        "naked-new",     "catch-all",           "raw-getenv",
    };
    return names;
}

std::vector<Diagnostic>
lintSource(const std::string &path, const std::string &content)
{
    Linter lint(path, content);
    lint.rawRandom();
    lint.unorderedIteration();
    lint.serveDecimalFloat();
    lint.nakedNew();
    lint.catchAll();
    lint.rawGetenv();
    std::sort(lint.diags.begin(), lint.diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return lint.diags;
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    return d.path + ":" + std::to_string(d.line) + ": [" + d.rule + "] "
           + d.message;
}

} // namespace mmlint
