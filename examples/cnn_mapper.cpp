/**
 * @file
 * Map every Table 1 CNN layer with one shared surrogate.
 *
 * Demonstrates the paper's deployment model (Section 4): Phase 1 runs
 * once per algorithm, offline; Phase 2 then maps each new layer shape in
 * ~1000 surrogate steps. Compares Mind Mappings against simulated
 * annealing at the same query budget and prints the best loop nest for
 * the layer that improved the most.
 *
 * First run trains the shared surrogate (~2 minutes); later runs load it
 * from ./mm_cache. Knobs: MM_ITERS, MM_TRAIN_SAMPLES, MM_EPOCHS.
 */
#include <iostream>

#include "common/env.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/mind_mappings.hpp"
#include "mapping/printer.hpp"
#include "search/registry.hpp"

int
main()
{
    using namespace mm;

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    MindMappingsOptions opts;
    opts.phase1.data.samples =
        envSize("MM_TRAIN_SAMPLES", DatasetConfig{}.samples);
    opts.phase1.train.epochs =
        int(envInt("MM_EPOCHS", int64_t(TrainConfig{}.epochs)));
    MindMappings mapper(arch, cnnLayerAlgo(), opts);
    std::cout << "Phase 1: preparing the CNN-Layer surrogate ..."
              << std::endl;
    bool cached = mapper.prepare();
    std::cout << (cached ? "  loaded from cache\n" : "  trained\n");

    const int64_t iters = envInt("MM_ITERS", 1000);
    auto budget = SearchBudget::bySteps(iters);
    Table table({"layer", "MM_normEDP", "SA_normEDP", "MM/SA advantage"});

    std::string bestName;
    double bestRatio = 0.0;
    Mapping bestMapping;
    for (const Problem &p : table1Cnn()) {
        Rng rng(7);
        SearchResult found = mapper.search(p, budget, rng);

        MapSpace space(arch, p);
        CostModel model(space);
        // The registry is the same construction path the benches use;
        // any "SA:opt=value,..." spec works here.
        SearcherBuildContext sctx{model};
        auto sa = SearcherRegistry::instance().make("SA", sctx);
        Rng saRng(7);
        SearchResult annealed = sa->run(budget, saRng);

        double ratio = annealed.bestNormEdp / found.bestNormEdp;
        table.addRow({p.name, fmtDouble(found.bestNormEdp, 5),
                      fmtDouble(annealed.bestNormEdp, 5),
                      fmtDouble(ratio, 4) + "x"});
        if (ratio > bestRatio) {
            bestRatio = ratio;
            bestName = p.name;
            bestMapping = found.best;
        }
    }
    std::cout << "\nnormalized EDP after " << iters
              << " cost-function queries (1.0 = algorithmic minimum):\n";
    table.print(std::cout);

    Problem showcase = [&] {
        for (const Problem &p : table1Cnn())
            if (p.name == bestName)
                return p;
        return table1Cnn().front();
    }();
    MapSpace space(arch, showcase);
    std::cout << "\nbest Mind Mappings result on " << bestName << ":\n"
              << renderMapping(space, bestMapping) << std::endl;
    return 0;
}
