/**
 * @file
 * Tiny client for mm_serve: send one search request, stream the
 * progress lines, print the final result.
 *
 *   ./mm_client [port] [method] [steps]
 *
 * Defaults: port MM_SERVE_PORT (or 7533), method "Random", 200 steps
 * of a small conv1d problem — deliberately surrogate-free so a smoke
 * run needs no Phase-1 training. Point it at a paper-scale server and
 * ask for "MM-P:chains=4" to exercise the pooled surrogate path.
 */
#include <cstdlib>
#include <iostream>

#include "common/env.hpp"
#include "serve/client.hpp"

int
main(int argc, char **argv)
{
    using namespace mm;
    using namespace mm::serve;

    const int port = argc > 1 ? std::atoi(argv[1])
                              : int(envInt("MM_SERVE_PORT", 7533));
    ServeRequest req;
    req.id = "mm-client";
    req.arch = "tiny";
    req.algo = "conv1d";
    req.problemName = "smoke";
    req.bounds = {256, 5};
    req.method = argc > 2 ? argv[2] : "Random";
    req.steps = argc > 3 ? std::atoll(argv[3]) : 200;
    req.runs = 1;
    req.seed = 42;
    req.progressEvery = 50;

    ServeClient client;
    std::string err;
    if (!client.connectTo(port, &err)) {
        std::cerr << "mm_client: " << err << "\n";
        return 1;
    }
    if (!client.sendRequest(req)) {
        std::cerr << "mm_client: send failed\n";
        return 1;
    }

    for (;;) {
        std::optional<JsonValue> event = client.readEvent();
        if (!event.has_value()) {
            std::cerr << "mm_client: server closed the connection\n";
            return 1;
        }
        const std::string type = event->getStr("type", "?");
        if (type == "accepted") {
            std::cout << "accepted\n";
        } else if (type == "rejected") {
            std::cerr << "rejected: " << event->getStr("reason", "?")
                      << "\n";
            return 1;
        } else if (type == "progress") {
            std::optional<double> best =
                parseHexDouble(event->getStr("bestNormEdp", ""));
            std::cout << "  " << event->getStr("event", "?") << " run "
                      << event->getInt("run", 0) << " step "
                      << event->getInt("step", 0) << " best "
                      << (best.has_value() ? *best : 0.0) << "\n";
        } else if (type == "error") {
            std::cerr << "error: " << event->getStr("message", "?")
                      << "\n";
            return 1;
        } else if (type == "result") {
            std::optional<double> best =
                parseHexDouble(event->getStr("bestNormEdp", ""));
            std::cout << "result: method "
                      << event->getStr("method", "?") << ", best "
                      << (best.has_value() ? *best : 0.0)
                      << " normalized EDP over "
                      << (event->find("runs") != nullptr
                              ? event->find("runs")->array.size()
                              : 0)
                      << " run(s)\n";
            return 0;
        }
    }
}
