/**
 * @file
 * Explore what makes the map space hard (Section 3.1).
 *
 * Around a decent base mapping of a CNN layer, this example
 *   1. sweeps a single tile-size attribute and prints the resulting EDP
 *      series — the 1-D slice of Figure 3's spiky surface, and
 *   2. perturbs each programmable-attribute group in isolation many
 *      times, reporting the EDP spread each group can cause — a
 *      sensitivity ranking of tiling vs parallelism vs loop order vs
 *      buffer allocation.
 *
 * Useful to build intuition for why small mapping edits change cost
 * multiplicatively, which is exactly what breaks classic smooth
 * optimization here.
 */
#include <iostream>

#include "common/factorization.hpp"
#include "common/permutation.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "costmodel/cost_model.hpp"
#include "mapping/moves.hpp"
#include "mapping/printer.hpp"

int
main()
{
    using namespace mm;

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem p = cnnProblem("ResNet_Conv_3", 16, 128, 128, 28, 28, 3, 3);
    MapSpace space(arch, p);
    CostModel model(space);
    Rng rng(21);

    // Base point: best of a handful of random samples.
    Mapping base = space.randomValid(rng);
    for (int i = 0; i < 128; ++i) {
        Mapping cand = space.randomValid(rng);
        if (model.edp(cand) < model.edp(base))
            base = cand;
    }
    std::cout << "base mapping (normalized EDP "
              << model.normalizedEdp(base) << "):\n"
              << renderMappingCompact(space, base) << "\n\n";

    // --- 1. A 1-D tile sweep (slice of Figure 3). -----------------------
    // Move the C dimension's budget between L2 and DRAM so the factor
    // product stays legal, then project (capacity repair only). The C
    // dimension's L1/spatial factors are first folded away so every
    // (L2, DRAM) split in the sweep is reachable.
    const size_t dim = 2; // C
    Mapping sweepBase = base;
    sweepBase.tiling[size_t(MemLevel::L1)][dim] = 1;
    sweepBase.spatial[dim] = 1;
    Table sweep({"C tile factor @L2", "normalized EDP", "valid as-is"});
    for (int64_t f : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}) {
        Mapping m = sweepBase;
        m.tiling[size_t(MemLevel::L2)][dim] = f;
        m.tiling[size_t(MemLevel::DRAM)][dim] =
            (p.bounds[dim] + f - 1) / f;
        bool valid = space.isMember(m);
        Mapping fixed = valid ? m : space.project(m);
        sweep.addRow({strCat(f), fmtDouble(model.normalizedEdp(fixed), 5),
                      valid ? "yes" : "no (projected)"});
    }
    sweep.print(std::cout);

    // --- 2. Per-attribute-group sensitivity. ----------------------------
    std::cout << "\nEDP spread from perturbing one attribute group "
                 "(200 draws each):\n";
    Table sens({"attribute group", "min/base", "median/base", "max/base"});
    const double baseEdp = model.edp(base);

    auto probe = [&](const std::string &label, auto &&perturb) {
        std::vector<double> ratios;
        for (int i = 0; i < 200; ++i) {
            Mapping m = base;
            perturb(m);
            ratios.push_back(model.edp(space.project(m)) / baseEdp);
        }
        sens.addRow({label, fmtDouble(quantile(ratios, 0.0), 4),
                     fmtDouble(quantile(ratios, 0.5), 4),
                     fmtDouble(quantile(ratios, 1.0), 4)});
    };

    probe("tiling (one dim resampled)", [&](Mapping &m) {
        size_t d = size_t(rng.uniformInt(0, int64_t(space.rank()) - 1));
        const auto &table = factorTable(p.bounds[d], kFactorSlots);
        auto f = table.sample(rng);
        m.tiling[size_t(MemLevel::L1)][d] = f[0];
        m.spatial[d] = f[1];
        m.tiling[size_t(MemLevel::L2)][d] = f[2];
        m.tiling[size_t(MemLevel::DRAM)][d] = f[3];
    });
    probe("loop order (one level shuffled)", [&](Mapping &m) {
        size_t lvl = size_t(rng.uniformInt(0, kNumMemLevels - 1));
        m.loopOrder[lvl] = randomPerm(int(space.rank()), rng);
    });
    probe("buffer allocation (one level redrawn)", [&](Mapping &m) {
        size_t lvl = size_t(rng.uniformInt(0, kNumOnChipLevels - 1));
        int banks = arch.levels[lvl].banks;
        auto &alloc = m.bufferAlloc[lvl];
        alloc.assign(space.tensorCount(), 1);
        for (int i = 0; i < banks - int(space.tensorCount()); ++i)
            ++alloc[size_t(rng.uniformInt(0, int64_t(alloc.size()) - 1))];
    });
    probe("whole mapping (fresh sample)", [&](Mapping &m) {
        m = space.randomValid(rng);
    });
    sens.print(std::cout);

    std::cout << "\nMultiplicative swings from single-group edits are the "
                 "non-smoothness of\nSection 3.1; the surrogate gives "
                 "this landscape usable gradients.\n";
    return 0;
}
