/**
 * @file
 * Quickstart: the whole Mind Mappings flow on a CNN layer.
 *
 *   1. Describe the accelerator and target algorithm.
 *   2. Phase 1: train (or cache-load) the differentiable surrogate —
 *      once per algorithm, amortized over every future problem.
 *   3. Phase 2: gradient-search a target problem's map space.
 *   4. Compare against random search and print the found loop nest.
 *
 * First run trains the default surrogate (≈1 minute on one core) and
 * caches it under ./mm_cache; subsequent runs start instantly. Scale
 * knobs: MM_TRAIN_SAMPLES, MM_EPOCHS, MM_ITERS (see README).
 */
#include <iostream>

#include "common/env.hpp"
#include "core/mind_mappings.hpp"
#include "mapping/printer.hpp"
#include "search/random_search.hpp"

int
main()
{
    using namespace mm;

    // --- 1. Accelerator + algorithm. ------------------------------------
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    const AlgorithmSpec &algo = cnnLayerAlgo();

    MindMappingsOptions opts;
    opts.phase1.data.samples =
        size_t(envInt("MM_TRAIN_SAMPLES", int64_t(DatasetConfig{}.samples)));
    opts.phase1.train.epochs =
        int(envInt("MM_EPOCHS", int64_t(TrainConfig{}.epochs)));
    // MM_STREAM_DIR runs Phase 1 out-of-core: labeled samples stream
    // through checksummed shards in that directory instead of two dense
    // in-RAM matrices — same result bit for bit, peak memory bounded by
    // the shard size (see README "Phase 1 at scale").
    opts.phase1.data.streamDir = envStr("MM_STREAM_DIR", "");
    // MM_CHAINS > 1 switches Phase 2 to the batched multi-threaded
    // driver: that many independent gradient chains, one surrogate
    // batch per step (same fixed-seed result at any thread count).
    opts.searchChains = int(envInt("MM_CHAINS", 1));
    MindMappings mapper(arch, algo, opts);

    // --- 2. Phase 1 (offline, once per algorithm). ----------------------
    std::cout << "Phase 1: surrogate for '" << algo.name << "' on "
              << arch.name << " ..." << std::endl;
    bool cached = mapper.prepare();
    if (cached) {
        std::cout << "  loaded from cache ("
                  << SurrogateCache(opts.cacheDir).dir() << ")\n";
    } else {
        const auto &hist = mapper.trainingHistory();
        std::cout << "  trained " << hist.size() << " epochs, final loss "
                  << hist.back().trainLoss << " (test "
                  << hist.back().testLoss << ")\n";
    }

    // --- 3. Phase 2 (online, per problem). ------------------------------
    // A problem shape the surrogate never saw during training.
    Problem problem = cnnProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3);
    Rng rng(42);
    int64_t iters = envInt("MM_ITERS", 1000);

    SearchResult found =
        mapper.search(problem, SearchBudget::bySteps(iters), rng);
    std::cout << "\nPhase 2 on " << problem.name << ": " << found.steps
              << " gradient steps -> normalized EDP " << found.bestNormEdp
              << "\n  (1.0 = possibly-unachievable algorithmic minimum)\n";

    // --- 4. Baseline comparison + result. -------------------------------
    MapSpace space(arch, problem);
    CostModel model(space);
    RandomSearcher random(model);
    SearchResult rnd = random.run(SearchBudget::bySteps(iters), rng);

    std::cout << "\nbest-so-far normalized EDP";
    for (int64_t at : {100L, 300L, iters})
        std::cout << "\tstep " << at;
    std::cout << "\n  Mind Mappings           ";
    for (int64_t at : {100L, 300L, iters})
        std::cout << "\t" << found.bestAtStep(at);
    std::cout << "\n  Random search           ";
    for (int64_t at : {100L, 300L, iters})
        std::cout << "\t" << rnd.bestAtStep(at);
    std::cout << "\n  advantage at " << iters << " steps: "
              << rnd.bestNormEdp / found.bestNormEdp << "x\n\n";

    std::cout << renderMapping(space, found.best) << std::endl;
    return 0;
}
