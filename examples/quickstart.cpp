/**
 * @file
 * Quickstart: the whole Mind Mappings flow on a CNN layer.
 *
 *   1. Describe the accelerator and target algorithm.
 *   2. Phase 1: train (or cache-load) the differentiable surrogate —
 *      once per algorithm, amortized over every future problem.
 *   3. Phase 2: gradient-search a target problem's map space, watching
 *      progress live through a SearchObserver.
 *   4. Compare against a registry-built random-search baseline and
 *      print the found loop nest.
 *   5. Certify the result: a capped branch-and-bound run proves a
 *      lower bound on any mapping's EDP, turning the search quality
 *      into a ground-truth optimality gap.
 *
 * First run trains the default surrogate (≈1 minute on one core) and
 * caches it under ./mm_cache; subsequent runs start instantly. Scale
 * knobs: MM_TRAIN_SAMPLES, MM_EPOCHS, MM_ITERS (see README).
 */
#include <iostream>

#include "bound/bb_search.hpp"
#include "common/env.hpp"
#include "core/mind_mappings.hpp"
#include "mapping/printer.hpp"
#include "search/registry.hpp"

namespace {

/** Prints each best-so-far improvement as the search finds it. */
class PrintingObserver : public mm::SearchObserver
{
  public:
    void
    onImprovement(const mm::SearchProgress &p) override
    {
        std::cout << "  step " << p.steps << ": best normalized EDP "
                  << p.bestNormEdp << "\n";
    }
};

} // namespace

int
main()
{
    using namespace mm;

    // --- 1. Accelerator + algorithm. ------------------------------------
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    const AlgorithmSpec &algo = cnnLayerAlgo();

    MindMappingsOptions opts;
    opts.phase1.data.samples =
        envSize("MM_TRAIN_SAMPLES", DatasetConfig{}.samples);
    opts.phase1.train.epochs =
        int(envInt("MM_EPOCHS", int64_t(TrainConfig{}.epochs)));
    // MM_STREAM_DIR runs Phase 1 out-of-core: labeled samples stream
    // through checksummed shards in that directory instead of two dense
    // in-RAM matrices — same result bit for bit, peak memory bounded by
    // the shard size (see README "Phase 1 at scale").
    opts.phase1.data.streamDir = envStr("MM_STREAM_DIR", "");
    // MM_CHAINS > 1 switches Phase 2 to the batched multi-threaded
    // driver: that many independent gradient chains, one surrogate
    // batch per step (same fixed-seed result at any thread count).
    opts.searchChains = int(envInt("MM_CHAINS", 1));
    MindMappings mapper(arch, algo, opts);

    // --- 2. Phase 1 (offline, once per algorithm). ----------------------
    std::cout << "Phase 1: surrogate for '" << algo.name << "' on "
              << arch.name << " ..." << std::endl;
    bool cached = mapper.prepare();
    if (cached) {
        std::cout << "  loaded from cache ("
                  << SurrogateCache(opts.cacheDir).dir() << ")\n";
    } else {
        const auto &hist = mapper.trainingHistory();
        std::cout << "  trained " << hist.size() << " epochs, final loss "
                  << hist.back().trainLoss << " (test "
                  << hist.back().testLoss << ")\n";
    }

    // --- 3. Phase 2 (online, per problem). ------------------------------
    // A problem shape the surrogate never saw during training. The
    // SearchContext bundles the budget and RNG with an observer that
    // streams improvements; a StopToken could cancel the run from
    // another thread the same way.
    Problem problem = cnnProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3);
    Rng rng(42);
    int64_t iters = envInt("MM_ITERS", 1000);

    PrintingObserver observer;
    SearchContext ctx;
    ctx.budget = SearchBudget::bySteps(iters);
    ctx.rng = &rng;
    ctx.observer = &observer;

    std::cout << "\nPhase 2 on " << problem.name << ":" << std::endl;
    SearchResult found = mapper.search(problem, ctx);
    std::cout << "  " << found.steps
              << " gradient steps -> normalized EDP " << found.bestNormEdp
              << "\n  (1.0 = possibly-unachievable algorithmic minimum)\n";

    // --- 4. Baseline comparison + result. -------------------------------
    // Baselines come from the same registry the benches use; any method
    // key with options works here ("SA:tMax=4", "GA:pop=50", ...).
    MapSpace space(arch, problem);
    CostModel model(space);
    SearcherBuildContext sctx{model};
    auto random = SearcherRegistry::instance().make("Random", sctx);
    SearchResult rnd = random->run(SearchBudget::bySteps(iters), rng);

    std::cout << "\nbest-so-far normalized EDP";
    for (int64_t at : {100L, 300L, iters})
        std::cout << "\tstep " << at;
    std::cout << "\n  Mind Mappings           ";
    for (int64_t at : {100L, 300L, iters})
        std::cout << "\t" << found.bestAtStep(at);
    std::cout << "\n  Random search           ";
    for (int64_t at : {100L, 300L, iters})
        std::cout << "\t" << rnd.bestAtStep(at);
    std::cout << "\n  advantage at " << iters << " steps: "
              << rnd.bestNormEdp / found.bestNormEdp << "x\n\n";

    // --- 5. Optimality certificate. -------------------------------------
    // Branch-and-bound with analytic prefix bounds (src/bound). Even a
    // node-capped run returns a *proven* lower bound on the EDP of any
    // valid mapping; if the tree is exhausted the incumbent is the
    // exact optimum. MM_BB_NODES trades time for tightness.
    BBOutcome cert =
        certifyOptimum(model, envInt("MM_BB_NODES", 2000));
    std::cout << "certified: no mapping beats normalized EDP "
              << cert.certifiedNormEdp
              << (cert.exact ? " (exact optimum found)" : "")
              << "\n  Mind Mappings is within "
              << found.bestNormEdp / cert.certifiedNormEdp
              << "x of that bound\n\n";

    std::cout << renderMapping(space, found.best) << std::endl;
    return 0;
}
