/**
 * @file
 * The mapping-as-a-service daemon: bind a TCP port, serve search
 * requests until SIGINT/SIGTERM, shut down cleanly.
 *
 *   MM_SERVE_PORT=7533 MM_SERVE_WORKERS=4 ./mm_serve
 *
 * Knobs (environment):
 *   MM_SERVE_PORT          port (0 = ephemeral, printed on stdout)
 *   MM_SERVE_WORKERS       concurrent search workers (default 2)
 *   MM_SERVE_QUEUE         admission queue capacity (default 8)
 *   MM_SERVE_MAX_WALL_SEC  per-request wall cap in seconds (0 = none)
 *   MM_TRAIN_SAMPLES / MM_EPOCHS  Phase-1 scale behind the surrogate
 *                                 pool (as in the quickstart)
 *   MM_CACHE_DIR / MM_NO_CACHE    surrogate disk cache (as everywhere)
 *
 * SIGUSR1 dumps the request-level metrics block to stderr. Talk to it
 * with examples/mm_client.cpp or any newline-delimited-JSON client
 * (protocol: src/serve/protocol.hpp).
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <thread>

#include "common/env.hpp"
#include "serve/server.hpp"

namespace {

std::atomic<bool> gShutdown{false};

void
shutdownHandler(int)
{
    gShutdown.store(true);
}

} // namespace

int
main()
{
    using namespace mm;
    using namespace mm::serve;

    ServeConfig cfg = ServeConfig::fromEnv();
    cfg.phase1.data.samples =
        envSize("MM_TRAIN_SAMPLES", DatasetConfig{}.samples);
    cfg.phase1.train.epochs =
        int(envInt("MM_EPOCHS", int64_t(TrainConfig{}.epochs)));

    SearchServer server(cfg);
    try {
        server.start();
    } catch (const std::exception &e) {
        std::cerr << "mm_serve: " << e.what() << "\n";
        return 1;
    }
    SearchServer::installSigusr1(&server);
    std::signal(SIGINT, shutdownHandler);
    std::signal(SIGTERM, shutdownHandler);

    std::cout << "mm_serve listening on 127.0.0.1:" << server.port()
              << " (" << cfg.workers << " workers, queue " << cfg.queueCap
              << ")" << std::endl;

    while (!gShutdown.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::cout << "mm_serve: shutting down" << std::endl;
    server.stop();
    server.dumpMetrics(std::cerr);
    std::cout << "mm_serve: bye" << std::endl;
    return 0;
}
