/**
 * @file
 * Map the MTTKRP tensor-algebra kernel (Equation 4).
 *
 * Shows that the framework is target-domain independent (the paper's
 * first contribution): the exact same library code that mapped CNN
 * layers maps a sparse-algebra building block, with one surrogate
 * shared by both Table 1 MTTKRP shapes — including the transposed
 * "tall-and-skinny" variant, which the surrogate never saw in training.
 * Compares against the genetic-algorithm baseline at equal query budget.
 */
#include <iostream>

#include "common/env.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/mind_mappings.hpp"
#include "mapping/printer.hpp"
#include "search/registry.hpp"

int
main()
{
    using namespace mm;

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    MindMappingsOptions opts;
    opts.phase1.data.samples =
        envSize("MM_TRAIN_SAMPLES", DatasetConfig{}.samples);
    opts.phase1.train.epochs =
        int(envInt("MM_EPOCHS", int64_t(TrainConfig{}.epochs)));
    MindMappings mapper(arch, mttkrpAlgo(), opts);
    std::cout << "Phase 1: preparing the MTTKRP surrogate ..." << std::endl;
    bool cached = mapper.prepare();
    std::cout << (cached ? "  loaded from cache\n" : "  trained\n");

    const int64_t iters = envInt("MM_ITERS", 1000);
    auto budget = SearchBudget::bySteps(iters);
    Table table({"problem", "MM_normEDP", "GA_normEDP", "MM/GA advantage",
                 "MM PEs used"});

    for (const Problem &p : table1Mttkrp()) {
        Rng rng(11);
        SearchResult found = mapper.search(p, budget, rng);

        MapSpace space(arch, p);
        CostModel model(space);
        SearcherBuildContext sctx{model};
        auto ga = SearcherRegistry::instance().make("GA", sctx);
        Rng gaRng(11);
        SearchResult evolved = ga->run(budget, gaRng);

        table.addRow({p.name, fmtDouble(found.bestNormEdp, 5),
                      fmtDouble(evolved.bestNormEdp, 5),
                      fmtDouble(evolved.bestNormEdp / found.bestNormEdp, 4)
                          + "x",
                      strCat(found.best.usedPes(), "/", arch.numPes)});

        std::cout << "\n" << p.name << " ("
                  << join(p.bounds, "x") << "):\n"
                  << renderMappingCompact(space, found.best) << "\n";
    }
    std::cout << "\nnormalized EDP after " << iters
              << " cost-function queries (1.0 = algorithmic minimum):\n";
    table.print(std::cout);
    return 0;
}
