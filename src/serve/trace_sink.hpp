/**
 * @file
 * Observer-only streaming trace sink: forwards a run's improvement and
 * heartbeat snapshots to a callback without materializing any trace
 * vector. Paired with SearchContext::collectTrace == false, a served
 * search holds O(1) trace state no matter how long it runs — the PR-4
 * follow-on that unblocks long-lived serving.
 *
 * Callbacks fire synchronously on the searching thread; the emit
 * function owns whatever locking its destination (a connection write
 * mutex) needs.
 */
#pragma once

#include <functional>
#include <utility>

#include "search/search.hpp"

namespace mm::serve {

/** Streams one run's progress through a callback. */
class StreamingTraceSink : public SearchObserver
{
  public:
    /** @p event is "improvement" or "heartbeat". */
    using Emit = std::function<void(const char *event, int run,
                                    const SearchProgress &)>;

    StreamingTraceSink(int run, Emit emit)
        : runIndex(run), emit(std::move(emit))
    {}

    void
    onImprovement(const SearchProgress &p) override
    {
        if (emit)
            emit("improvement", runIndex, p);
    }

    void
    onProgress(const SearchProgress &p) override
    {
        if (emit)
            emit("heartbeat", runIndex, p);
    }

  private:
    int runIndex;
    Emit emit;
};

} // namespace mm::serve
