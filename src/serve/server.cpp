#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>

#include "common/env.hpp"
#include "common/error.hpp"
#include "mapping/map_space.hpp"
#include "serve/trace_sink.hpp"

namespace mm::serve {

namespace {

/** Set by the SIGUSR1 handler, drained by the accept loop. */
std::atomic<bool> gSigusr1Dump{false};

void
sigusr1Handler(int)
{
    gSigusr1Dump.store(true, std::memory_order_relaxed);
}

} // namespace

/** One client socket: a write mutex, a liveness flag, owned jobs. */
struct SearchServer::Connection
{
    explicit Connection(int fd_) : fd(fd_) {}

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    /** Send one line (appends '\n'); a failed send marks the
     * connection dead so later writes become no-ops. */
    bool
    writeLine(const std::string &line) MM_EXCLUDES(writeMtx)
    {
        MutexLock lock(writeMtx);
        return writeLineLocked(line);
    }

    bool
    writeLineLocked(const std::string &line) MM_REQUIRES(writeMtx)
    {
        if (!alive.load(std::memory_order_relaxed))
            return false;
        std::string framed = line;
        framed.push_back('\n');
        size_t sent = 0;
        while (sent < framed.size()) {
            ssize_t n = ::send(fd, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                // Includes EAGAIN from SO_SNDTIMEO: a client that
                // stopped reading must not wedge a worker, so the
                // connection is declared dead and its jobs cancelled.
                alive.store(false, std::memory_order_relaxed);
                cancelJobs();
                return false;
            }
            sent += size_t(n);
        }
        return true;
    }

    void
    registerJob(const std::shared_ptr<Job> &job) MM_EXCLUDES(jobsMtx)
    {
        MutexLock lock(jobsMtx);
        // Finished jobs leave expired weak_ptrs behind; prune here so
        // a long-lived connection's list stays proportional to its
        // in-flight work, not its lifetime request count.
        jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                                  [](const std::weak_ptr<Job> &w) {
                                      return w.expired();
                                  }),
                   jobs.end());
        jobs.push_back(job);
    }

    /** Disconnect/shutdown path: stop every search this client owns. */
    void cancelJobs() MM_EXCLUDES(jobsMtx);

    int fd;
    Mutex writeMtx;
    std::atomic<bool> alive{true};
    std::atomic<bool> readerDone{false};
    Mutex jobsMtx;
    std::vector<std::weak_ptr<Job>> jobs MM_GUARDED_BY(jobsMtx);
};

/** One admitted request: its spec, its client, its stop token. */
struct SearchServer::Job
{
    ServeRequest req;
    std::shared_ptr<Connection> conn;
    StopToken stop;
};

void
SearchServer::Connection::cancelJobs()
{
    MutexLock lock(jobsMtx);
    for (const std::weak_ptr<Job> &weak : jobs)
        if (std::shared_ptr<Job> job = weak.lock())
            job->stop.requestStop();
}

ServeConfig
ServeConfig::fromEnv()
{
    ServeConfig cfg;
    cfg.port = int(envInt("MM_SERVE_PORT", cfg.port));
    cfg.workers = int(envInt("MM_SERVE_WORKERS", cfg.workers));
    cfg.queueCap = envSize("MM_SERVE_QUEUE", cfg.queueCap);
    cfg.maxWallSec = envDouble("MM_SERVE_MAX_WALL_SEC", cfg.maxWallSec);
    return cfg;
}

SearchServer::SearchServer(ServeConfig cfg_) : cfg(std::move(cfg_))
{
    if (cfg.workers < 1)
        fatal("serve: workers must be >= 1");
    if (cfg.queueCap < 1)
        fatal("serve: queue capacity must be >= 1");
    surrogates = std::make_unique<SurrogatePool>(
        cfg.phase1, cfg.cacheDir, cfg.useCache, &counters, cfg.trainer);
}

SearchServer::~SearchServer()
{
    stop();
}

void
SearchServer::start()
{
    if (running.load())
        return;

    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        fatal(std::string("serve: socket() failed: ")
              + std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(uint16_t(cfg.port));
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0) {
        ::close(listenFd);
        listenFd = -1;
        fatal(std::string("serve: bind() failed: ") + std::strerror(errno));
    }
    if (::listen(listenFd, 16) != 0) {
        ::close(listenFd);
        listenFd = -1;
        fatal(std::string("serve: listen() failed: ")
              + std::strerror(errno));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr), &len);
    boundPort = int(ntohs(addr.sin_port));

    if (::pipe(wakePipe) != 0) {
        ::close(listenFd);
        listenFd = -1;
        fatal(std::string("serve: pipe() failed: ") + std::strerror(errno));
    }

    stopping.store(false);
    running.store(true);
    for (int w = 0; w < cfg.workers; ++w)
        workers.emplace_back([this] { workerLoop(); });
    acceptThread = std::thread([this] { acceptLoop(); });
}

void
SearchServer::stop()
{
    if (!running.exchange(false))
        return;
    stopping.store(true);

    // Wake the accept loop and join it before touching its state.
    (void)!::write(wakePipe[1], "x", 1);
    if (acceptThread.joinable())
        acceptThread.join();
    ::close(listenFd);
    listenFd = -1;
    ::close(wakePipe[0]);
    ::close(wakePipe[1]);
    wakePipe[0] = wakePipe[1] = -1;

    // Flush the queue as cancelled and stop the in-flight searches.
    {
        MutexLock lock(jobMtx);
        counters.cancelled.fetch_add(queue.size(),
                                     std::memory_order_relaxed);
        queue.clear();
        counters.queueDepth.store(0, std::memory_order_relaxed);
    }
    // Kill the connections BEFORE joining workers: shutdown() makes a
    // worker blocked in send() (slow client) and a reader blocked in
    // recv() return immediately — joining first could deadlock on a
    // worker wedged inside a progress write.
    {
        MutexLock lock(connMtx);
        for (ReaderSlot &slot : readers) {
            slot.conn->alive.store(false, std::memory_order_relaxed);
            slot.conn->cancelJobs();
            ::shutdown(slot.conn->fd, SHUT_RDWR);
        }
    }
    jobCv.notify_all();
    for (std::thread &w : workers)
        if (w.joinable())
            w.join();
    workers.clear();

    // Join the readers, then drop the connections.
    for (;;) {
        ReaderSlot slot;
        {
            MutexLock lock(connMtx);
            if (readers.empty())
                break;
            slot = std::move(readers.front());
            readers.pop_front();
        }
        if (slot.thread.joinable())
            slot.thread.join();
    }
}

void
SearchServer::dumpMetrics(std::ostream &os) const
{
    counters.dump(os);
}

void
SearchServer::installSigusr1(SearchServer *server)
{
    (void)server;
    std::signal(SIGUSR1, sigusr1Handler);
}

void
SearchServer::reapFinishedReaders()
{
    // Splice finished slots out under the lock, then join them outside
    // it: a reader that has set readerDone is past its last guarded
    // access but may still be running its epilogue, and joining while
    // holding connMtx would stall the accept loop (and every new
    // client) behind that epilogue for no reason.
    std::list<ReaderSlot> finished;
    {
        MutexLock lock(connMtx);
        for (auto it = readers.begin(); it != readers.end();) {
            auto next = std::next(it);
            if (it->conn->readerDone.load(std::memory_order_acquire))
                finished.splice(finished.end(), readers, it);
            it = next;
        }
    }
    for (ReaderSlot &slot : finished)
        slot.thread.join();
}

void
SearchServer::acceptLoop()
{
    pollfd fds[2];
    fds[0] = {listenFd, POLLIN, 0};
    fds[1] = {wakePipe[0], POLLIN, 0};
    while (!stopping.load()) {
        int rc = ::poll(fds, 2, 200);
        if (dumpFlag.exchange(false) || gSigusr1Dump.exchange(false))
            dumpMetrics(std::cerr);
        if (rc <= 0)
            continue;
        if ((fds[1].revents & POLLIN) != 0)
            break;
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        // Bound every send so a client that stops reading turns into a
        // dead connection instead of a wedged worker (see
        // writeLineLocked).
        timeval sendTimeout{};
        sendTimeout.tv_sec = 5;
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &sendTimeout,
                     sizeof(sendTimeout));
        reapFinishedReaders();
        auto conn = std::make_shared<Connection>(fd);
        MutexLock lock(connMtx);
        readers.push_back(
            {conn, std::thread([this, conn] { readerLoop(conn); })});
    }
}

void
SearchServer::readerLoop(std::shared_ptr<Connection> conn)
{
    std::string buf;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        buf.append(chunk, size_t(n));
        size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.find_first_not_of(" \t") == std::string::npos)
                continue;
            handleLine(conn, line);
        }
        if (buf.size() > kMaxLineBytes) {
            // Newline-free flood: reject and drop instead of growing
            // server memory with the client's buffer.
            counters.rejected.fetch_add(1, std::memory_order_relaxed);
            conn->writeLine(makeRejected("", "request line too long"));
            break;
        }
    }
    // EOF or error: the client is gone. Cancel everything it owns so
    // in-flight workers free up at their next step check.
    conn->alive.store(false, std::memory_order_relaxed);
    conn->cancelJobs();
    conn->readerDone.store(true, std::memory_order_release);
}

void
SearchServer::handleLine(const std::shared_ptr<Connection> &conn,
                         const std::string &line)
{
    std::string err;
    std::optional<ServeRequest> req = parseRequest(line, &err);
    if (!req.has_value()) {
        counters.rejected.fetch_add(1, std::memory_order_relaxed);
        conn->writeLine(makeRejected("", err));
        return;
    }

    // Admission decision and the accepted line are made under the
    // connection's write lock, so a fast worker cannot emit progress
    // for this job before its accepted line is on the wire.
    const std::string id = req->id;
    MutexLock writeLock(conn->writeMtx);
    bool admitted = false;
    {
        MutexLock lock(jobMtx);
        if (!stopping.load() && queue.size() < cfg.queueCap) {
            auto job = std::make_shared<Job>();
            job->req = std::move(*req);
            job->conn = conn;
            conn->registerJob(job);
            queue.push_back(std::move(job));
            counters.queueDepth.store(int64_t(queue.size()),
                                      std::memory_order_relaxed);
            admitted = true;
        }
    }
    if (!admitted) {
        counters.rejected.fetch_add(1, std::memory_order_relaxed);
        conn->writeLineLocked(makeRejected(
            id, stopping.load() ? "server shutting down" : "queue full"));
        return;
    }
    counters.accepted.fetch_add(1, std::memory_order_relaxed);
    conn->writeLineLocked(makeAccepted(id));
    jobCv.notify_one();
}

void
SearchServer::workerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            MutexLock lock(jobMtx);
            while (!stopping.load() && queue.empty())
                jobCv.wait(jobMtx);
            if (queue.empty())
                return; // stopping and drained
            job = std::move(queue.front());
            queue.pop_front();
            counters.queueDepth.store(int64_t(queue.size()),
                                      std::memory_order_relaxed);
        }
        if (!job->conn->alive.load(std::memory_order_relaxed)) {
            // Client vanished while the job sat in the queue.
            counters.cancelled.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        counters.activeWorkers.fetch_add(1, std::memory_order_relaxed);
        runJob(*job);
        counters.activeWorkers.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
SearchServer::runJob(Job &job)
{
    const ServeRequest &req = job.req;
    Connection &conn = *job.conn;
    try {
        AcceleratorSpec arch = *resolveArch(req.arch);
        const AlgorithmSpec &algo = *resolveAlgo(req.algo);
        Problem problem = makeProblem(algo, req.problemName, req.bounds);
        MapSpace space(arch, problem);
        CostModel model(space);

        // Surrogate-backed methods get a private copy of the pooled
        // master: predict/gradient mutate internal scratch, so two
        // workers must never share one instance.
        const std::string key = req.method.substr(0, req.method.find(':'));
        std::optional<Surrogate> privateCopy;
        if (SearcherRegistry::instance().contains(key)
            && SearcherRegistry::instance().at(key).needsSurrogate) {
            std::shared_ptr<Surrogate> master =
                surrogates->acquire(arch, algo);
            privateCopy.emplace(*master);
        }
        SearcherBuildContext bctx{
            model, privateCopy.has_value() ? &*privateCopy : nullptr};

        // Per-run streaming sinks: improvements (and heartbeats when
        // progressEvery is set) go straight to the wire; no trace
        // vector is materialized unless the client asked for one.
        std::vector<std::unique_ptr<StreamingTraceSink>> sinks;
        for (int r = 0; r < req.runs; ++r) {
            sinks.push_back(std::make_unique<StreamingTraceSink>(
                r, [this, &conn, &req](const char *event, int run,
                                       const SearchProgress &p) {
                    if (conn.writeLine(
                            makeProgress(req.id, event, run, p)))
                        counters.progressEvents.fetch_add(
                            1, std::memory_order_relaxed);
                }));
        }

        MultiRunOptions opts;
        opts.runs = req.runs;
        opts.baseSeed = req.seed;
        opts.threads = 1; // one worker lane per request
        opts.progressEvery = req.progressEvery;
        opts.collectTrace = req.trace;
        opts.stop = &job.stop;
        opts.observerFor = [&sinks](int run) {
            return sinks[size_t(run)].get();
        };

        MultiRunResult result =
            runMany(req.method, bctx, budgetFor(req, cfg.maxWallSec), opts);

        if (!conn.alive.load(std::memory_order_relaxed)) {
            counters.cancelled.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        conn.writeLine(makeResult(req.id, result, req.trace));
        counters.completed.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception &e) {
        // Per-request failure isolation: report and move on — a bad
        // spec or a failed fleet must never take the server down.
        counters.failed.fetch_add(1, std::memory_order_relaxed);
        conn.writeLine(makeError(req.id, e.what()));
    }
}

} // namespace mm::serve
