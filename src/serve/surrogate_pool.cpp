#include "serve/surrogate_pool.hpp"

namespace mm::serve {

SurrogatePool::SurrogatePool(Phase1Config phase1, std::string cacheDir,
                             bool useCache_, ServeMetrics *metrics_,
                             Trainer trainer_)
    : cfg(std::move(phase1)), cache(std::move(cacheDir)),
      useCache(useCache_), metrics(metrics_), trainer(std::move(trainer_))
{
    cfg.resolve();
    if (!trainer) {
        trainer = [](const AcceleratorSpec &arch, const AlgorithmSpec &algo,
                     const Phase1Config &c) {
            return trainSurrogate(arch, algo, c).surrogate;
        };
    }
}

std::shared_ptr<Surrogate>
SurrogatePool::acquire(const AcceleratorSpec &arch,
                       const AlgorithmSpec &algo)
{
    const std::string key = cfg.fingerprint(arch, algo);

    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
        MutexLock lock(mtx);
        auto hit = resident.find(key);
        if (hit != resident.end()) {
            if (metrics != nullptr)
                metrics->poolWarmHits.fetch_add(1,
                                                std::memory_order_relaxed);
            return hit->second;
        }
        auto [it, inserted] =
            inFlight.try_emplace(key, std::make_shared<Flight>());
        flight = it->second;
        leader = inserted;
    }

    if (!leader) {
        // Single-flight follower: wait for the leader's outcome.
        MutexLock lock(flight->m);
        while (!flight->done)
            flight->cv.wait(flight->m);
        if (flight->error != nullptr)
            std::rethrow_exception(flight->error);
        return flight->model;
    }

    // Leader: disk tier first, then train. Publication order matters —
    // the memory tier and the flight are filled before the key is
    // released, so no concurrent acquire can start a duplicate train.
    std::shared_ptr<Surrogate> model;
    std::exception_ptr error;
    try {
        if (useCache && !SurrogateCache::disabled()) {
            if (auto cached = cache.load(key)) {
                model = std::make_shared<Surrogate>(std::move(*cached));
                if (metrics != nullptr)
                    metrics->poolDiskHits.fetch_add(
                        1, std::memory_order_relaxed);
            }
        }
        if (model == nullptr) {
            model = std::make_shared<Surrogate>(trainer(arch, algo, cfg));
            if (metrics != nullptr)
                metrics->poolTrainings.fetch_add(
                    1, std::memory_order_relaxed);
            {
                MutexLock lock(mtx);
                ++trainCount;
            }
            if (useCache)
                cache.store(key, *model);
        }
    } catch (...) { // mmlint:allow(catch-all) republished to followers
        error = std::current_exception();
    }

    {
        MutexLock lock(mtx);
        if (model != nullptr)
            resident.emplace(key, model);
        inFlight.erase(key);
    }
    {
        MutexLock lock(flight->m);
        flight->model = model;
        flight->error = error;
        flight->done = true;
    }
    flight->cv.notify_all();
    if (error != nullptr)
        std::rethrow_exception(error);
    return model;
}

size_t
SurrogatePool::residentCount() const
{
    MutexLock lock(mtx);
    return resident.size();
}

uint64_t
SurrogatePool::trainings() const
{
    MutexLock lock(mtx);
    return trainCount;
}

} // namespace mm::serve
