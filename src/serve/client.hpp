/**
 * @file
 * Blocking line-oriented client for the serve protocol — the thin
 * counterpart tests and examples/mm_client.cpp talk through. One
 * ServeClient owns one TCP connection; send request lines, read tagged
 * event lines back (serve/protocol.hpp documents both directions).
 */
#pragma once

#include <optional>
#include <string>

#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace mm::serve {

/** Serialize a request into its one-line JSON wire form. */
std::string requestToJson(const ServeRequest &req);

/** One blocking client connection. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient() { close(); }

    ServeClient(ServeClient &&other) noexcept { *this = std::move(other); }
    ServeClient &
    operator=(ServeClient &&other) noexcept
    {
        if (this != &other) {
            close();
            fd = other.fd;
            buf = std::move(other.buf);
            other.fd = -1;
        }
        return *this;
    }
    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect to 127.0.0.1:@p port. False (and @p error) on failure. */
    bool connectTo(int port, std::string *error = nullptr);

    bool connected() const { return fd >= 0; }

    /** Send one line (appends '\n'). */
    bool sendLine(const std::string &line);

    /** Send a request in wire form. */
    bool
    sendRequest(const ServeRequest &req)
    {
        return sendLine(requestToJson(req));
    }

    /** Next line from the server (blocking); nullopt on EOF/error. */
    std::optional<std::string> readLine();

    /** Next line parsed as JSON; nullopt on EOF or a malformed line. */
    std::optional<JsonValue> readEvent();

    /**
     * Read events until one of type @p type for request @p id arrives;
     * nullopt on EOF. Other events stream past unrecorded.
     */
    std::optional<JsonValue> waitFor(const std::string &type,
                                     const std::string &id);

    /** Half-close the write side (server keeps streaming). */
    void closeWrite();

    /** Hard close; readers on the server side see the disconnect. */
    void close();

  private:
    int fd = -1;
    std::string buf;
};

} // namespace mm::serve
