#include "serve/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mm::serve {

namespace {

/** Recursive-descent parser over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : in(text) {}

    std::optional<JsonValue>
    document(std::string *error)
    {
        JsonValue v;
        if (!value(v)) {
            if (error != nullptr)
                *error = err.empty() ? "malformed JSON" : err;
            return std::nullopt;
        }
        skipWs();
        if (pos != in.size()) {
            if (error != nullptr)
                *error = "trailing garbage after JSON document";
            return std::nullopt;
        }
        return v;
    }

  private:
    bool
    fail(const char *what)
    {
        if (err.empty())
            err = std::string(what) + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < in.size()
               && (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n'
                   || in[pos] == '\r'))
            ++pos;
    }

    bool
    literal(std::string_view word)
    {
        if (in.substr(pos, word.size()) != word)
            return false;
        pos += word.size();
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (pos >= in.size())
            return fail("unexpected end of input");
        switch (in[pos]) {
        case '{': {
            if (depth >= kMaxDepth)
                return fail("nesting too deep");
            ++depth;
            const bool ok = object(out);
            --depth;
            return ok;
        }
        case '[': {
            if (depth >= kMaxDepth)
                return fail("nesting too deep");
            ++depth;
            const bool ok = array(out);
            --depth;
            return ok;
        }
        case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.str);
        case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true") || fail("bad literal");
        case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false") || fail("bad literal");
        case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null") || fail("bad literal");
        default:
            return numberValue(out);
        }
    }

    bool
    object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos; // '{'
        skipWs();
        if (pos < in.size() && in[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos >= in.size() || in[pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (pos >= in.size() || in[pos] != ':')
                return fail("expected ':'");
            ++pos;
            JsonValue member;
            if (!value(member))
                return false;
            out.object.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos < in.size() && in[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < in.size() && in[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos; // '['
        skipWs();
        if (pos < in.size() && in[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            JsonValue element;
            if (!value(element))
                return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (pos < in.size() && in[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < in.size() && in[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    string(std::string &out)
    {
        ++pos; // opening quote
        out.clear();
        while (pos < in.size()) {
            char c = in[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= in.size())
                return fail("dangling escape");
            char e = in[pos++];
            switch (e) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                // Only the escapes jsonQuote emits (\u00XX for control
                // bytes); anything else in the BMP decodes to UTF-8.
                if (pos + 4 > in.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = in[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                if (code < 0x80) {
                    out.push_back(char(code));
                } else if (code < 0x800) {
                    out.push_back(char(0xC0 | (code >> 6)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(char(0xE0 | (code >> 12)));
                    out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(char(0x80 | (code & 0x3F)));
                }
                break;
            }
            default:
                return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    numberValue(JsonValue &out)
    {
        const size_t start = pos;
        if (pos < in.size() && (in[pos] == '-' || in[pos] == '+'))
            ++pos;
        bool integral = true;
        while (pos < in.size()) {
            char c = in[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-'
                       || c == '+') {
                integral = false;
                ++pos;
            } else {
                break;
            }
        }
        if (pos == start)
            return fail("expected value");
        const std::string text(in.substr(start, pos - start));
        errno = 0;
        if (integral) {
            char *end = nullptr;
            long long v = std::strtoll(text.c_str(), &end, 10);
            if (end == text.c_str() + text.size() && errno == 0) {
                out.kind = JsonValue::Kind::Int;
                out.integer = int64_t(v);
                out.number = double(v);
                return true;
            }
        }
        char *end = nullptr;
        errno = 0;
        double d = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size())
            return fail("malformed number");
        out.kind = JsonValue::Kind::Double;
        out.number = d;
        return true;
    }

    /** Containers may nest this deep; the protocol needs ~4 levels,
     * and bounding it keeps hostile '[[[[…' input off the stack. */
    static constexpr int kMaxDepth = 64;

    std::string_view in;
    size_t pos = 0;
    int depth = 0;
    std::string err;
};

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
JsonValue::getStr(std::string_view key, std::string fallback) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->isString() ? v->str : std::move(fallback);
}

int64_t
JsonValue::getInt(std::string_view key, int64_t fallback) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->isInt() ? v->integer : fallback;
}

double
JsonValue::getDouble(std::string_view key, double fallback) const
{
    const JsonValue *v = find(key);
    if (v == nullptr)
        return fallback;
    if (v->isNumber())
        return v->asDouble();
    // Doubles on this wire are quoted hexfloat strings (jsonHexDouble);
    // accept them anywhere a double is read so senders never need the
    // lossy decimal form.
    if (v->isString()) {
        if (std::optional<double> d = parseHexDouble(v->str))
            return *d;
    }
    return fallback;
}

bool
JsonValue::getBool(std::string_view key, bool fallback) const
{
    const JsonValue *v = find(key);
    return v != nullptr && v->isBool() ? v->boolean : fallback;
}

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    return Parser(text).document(error);
}

std::string
jsonQuote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              unsigned(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonHexDouble(double v)
{
    if (std::isinf(v))
        return v > 0 ? "\"inf\"" : "\"-inf\"";
    if (std::isnan(v))
        return "\"nan\"";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"%a\"", v);
    return buf;
}

std::optional<double>
parseHexDouble(std::string_view s)
{
    const std::string text(s);
    char *end = nullptr;
    errno = 0;
    double d = std::strtod(text.c_str(), &end);
    if (end == text.c_str())
        return std::nullopt;
    while (*end == ' ')
        ++end;
    if (*end != '\0')
        return std::nullopt;
    return d;
}

} // namespace mm::serve
