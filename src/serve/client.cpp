#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace mm::serve {

std::string
requestToJson(const ServeRequest &req)
{
    std::string out = "{\"id\":" + jsonQuote(req.id)
                      + ",\"arch\":" + jsonQuote(req.arch)
                      + ",\"algo\":" + jsonQuote(req.algo)
                      + ",\"problem\":" + jsonQuote(req.problemName)
                      + ",\"bounds\":[";
    for (size_t i = 0; i < req.bounds.size(); ++i) {
        if (i > 0)
            out.push_back(',');
        out += std::to_string(req.bounds[i]);
    }
    out += "],\"method\":" + jsonQuote(req.method)
           + ",\"steps\":" + std::to_string(req.steps)
           + ",\"runs\":" + std::to_string(req.runs)
           + ",\"seed\":" + std::to_string(req.seed)
           + ",\"progressEvery\":" + std::to_string(req.progressEvery)
           + ",\"trace\":" + (req.trace ? "true" : "false");
    // Budgets ride the wire as quoted hexfloats like every other double
    // in the protocol: %.17g round-trips, but its text depends on the
    // libc's shortest-representation rounding, and the server-side cap
    // intersection must see bit-identical budgets regardless of which
    // client produced the line.
    if (req.virtualSec > 0.0)
        out += ",\"virtualSec\":" + jsonHexDouble(req.virtualSec);
    if (req.wallSec > 0.0)
        out += ",\"wallSec\":" + jsonHexDouble(req.wallSec);
    out.push_back('}');
    return out;
}

bool
ServeClient::connectTo(int port, std::string *error)
{
    close();
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr)
            *error = std::string("socket() failed: ")
                     + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(uint16_t(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        != 0) {
        if (error != nullptr)
            *error = std::string("connect() failed: ")
                     + std::strerror(errno);
        ::close(fd);
        fd = -1;
        return false;
    }
    return true;
}

bool
ServeClient::sendLine(const std::string &line)
{
    if (fd < 0)
        return false;
    std::string framed = line;
    framed.push_back('\n');
    size_t sent = 0;
    while (sent < framed.size()) {
        ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += size_t(n);
    }
    return true;
}

std::optional<std::string>
ServeClient::readLine()
{
    if (fd < 0)
        return std::nullopt;
    for (;;) {
        size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            return line;
        }
        if (buf.size() > kMaxLineBytes) {
            // A peer streaming a newline-free flood must not grow our
            // memory without bound; treat it as a broken connection.
            close();
            return std::nullopt;
        }
        char chunk[4096];
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return std::nullopt;
        buf.append(chunk, size_t(n));
    }
}

std::optional<JsonValue>
ServeClient::readEvent()
{
    std::optional<std::string> line = readLine();
    if (!line.has_value())
        return std::nullopt;
    return parseJson(*line);
}

std::optional<JsonValue>
ServeClient::waitFor(const std::string &type, const std::string &id)
{
    for (;;) {
        std::optional<JsonValue> event = readEvent();
        if (!event.has_value())
            return std::nullopt;
        if (event->getStr("type", "") == type
            && event->getStr("id", "") == id)
            return event;
    }
}

void
ServeClient::closeWrite()
{
    if (fd >= 0)
        ::shutdown(fd, SHUT_WR);
}

void
ServeClient::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    buf.clear();
}

} // namespace mm::serve
