#include "serve/protocol.hpp"

#include <cmath>

#include "arch/accelerator.hpp"

namespace mm::serve {

namespace {

std::string
joinInts(const std::vector<int64_t> &v)
{
    std::string out = "[";
    for (size_t i = 0; i < v.size(); ++i) {
        if (i > 0)
            out.push_back(',');
        out += std::to_string(v[i]);
    }
    out.push_back(']');
    return out;
}

std::string
joinInts(const std::vector<int> &v)
{
    std::vector<int64_t> wide(v.begin(), v.end());
    return joinInts(wide);
}

} // namespace

std::optional<ServeRequest>
parseRequest(const std::string &line, std::string *error)
{
    std::string parseErr;
    std::optional<JsonValue> doc = parseJson(line, &parseErr);
    if (!doc.has_value()) {
        if (error != nullptr)
            *error = "malformed request: " + parseErr;
        return std::nullopt;
    }
    if (!doc->isObject()) {
        if (error != nullptr)
            *error = "request must be a JSON object";
        return std::nullopt;
    }

    ServeRequest req;
    req.id = doc->getStr("id", "");
    if (req.id.empty()) {
        if (error != nullptr)
            *error = "request needs a non-empty string \"id\"";
        return std::nullopt;
    }
    req.arch = doc->getStr("arch", req.arch);
    req.algo = doc->getStr("algo", req.algo);
    req.problemName = doc->getStr("problem", req.problemName);
    req.method = doc->getStr("method", req.method);
    req.steps = doc->getInt("steps", req.steps);
    req.virtualSec = doc->getDouble("virtualSec", req.virtualSec);
    req.wallSec = doc->getDouble("wallSec", req.wallSec);
    // Validate at full width BEFORE narrowing: int(2^32 + 1) would
    // silently truncate to 1 and sail past the range check.
    const int64_t runsRaw = doc->getInt("runs", req.runs);
    if (runsRaw < 1 || runsRaw > kMaxRuns) {
        if (error != nullptr)
            *error = "\"runs\" must be in [1, " + std::to_string(kMaxRuns)
                     + "]";
        return std::nullopt;
    }
    req.runs = int(runsRaw);
    req.seed = uint64_t(doc->getInt("seed", int64_t(req.seed)));
    req.progressEvery = doc->getInt("progressEvery", req.progressEvery);
    req.trace = doc->getBool("trace", req.trace);

    const JsonValue *bounds = doc->find("bounds");
    if (bounds == nullptr || !bounds->isArray() || bounds->array.empty()) {
        if (error != nullptr)
            *error = "request needs a non-empty integer array \"bounds\"";
        return std::nullopt;
    }
    for (const JsonValue &b : bounds->array) {
        if (!b.isInt() || b.integer < 1) {
            if (error != nullptr)
                *error = "\"bounds\" entries must be integers >= 1";
            return std::nullopt;
        }
        req.bounds.push_back(b.integer);
    }

    if (!resolveArch(req.arch).has_value()) {
        if (error != nullptr)
            *error = "unknown arch '" + req.arch + "' (paper, tiny)";
        return std::nullopt;
    }
    const AlgorithmSpec *algo = resolveAlgo(req.algo);
    if (algo == nullptr) {
        if (error != nullptr)
            *error = "unknown algo '" + req.algo
                     + "' (conv1d, cnn, mttkrp)";
        return std::nullopt;
    }
    if (req.bounds.size() != algo->rank()) {
        if (error != nullptr)
            *error = "algo '" + req.algo + "' needs "
                     + std::to_string(algo->rank()) + " bounds, got "
                     + std::to_string(req.bounds.size());
        return std::nullopt;
    }
    if (req.steps < 0 || req.virtualSec < 0.0 || req.wallSec < 0.0
        || req.progressEvery < 0) {
        if (error != nullptr)
            *error = "budgets and progressEvery must be >= 0";
        return std::nullopt;
    }
    if (req.steps == 0 && req.virtualSec == 0.0 && req.wallSec == 0.0) {
        if (error != nullptr)
            *error = "request needs a budget: steps, virtualSec or "
                     "wallSec > 0";
        return std::nullopt;
    }
    return req;
}

std::optional<AcceleratorSpec>
resolveArch(const std::string &name)
{
    if (name == "paper")
        return AcceleratorSpec::paperDefault();
    if (name == "tiny")
        return AcceleratorSpec::tinyDefault();
    return std::nullopt;
}

const AlgorithmSpec *
resolveAlgo(const std::string &name)
{
    if (name == "conv1d")
        return &conv1dAlgo();
    if (name == "cnn")
        return &cnnLayerAlgo();
    if (name == "mttkrp")
        return &mttkrpAlgo();
    return nullptr;
}

SearchBudget
budgetFor(const ServeRequest &req, double maxWallSec)
{
    SearchBudget b;
    if (req.steps > 0)
        b.maxSteps = req.steps;
    if (req.virtualSec > 0.0)
        b.maxVirtualSec = req.virtualSec;
    if (req.wallSec > 0.0)
        b.maxWallSec = req.wallSec;
    if (maxWallSec > 0.0)
        b.maxWallSec = std::min(b.maxWallSec, maxWallSec);
    return b;
}

std::string
mappingToJson(const Mapping &m)
{
    std::string out = "{\"tiling\":[";
    for (size_t l = 0; l < m.tiling.size(); ++l) {
        if (l > 0)
            out.push_back(',');
        out += joinInts(m.tiling[l]);
    }
    out += "],\"spatial\":" + joinInts(m.spatial) + ",\"order\":[";
    for (size_t l = 0; l < m.loopOrder.size(); ++l) {
        if (l > 0)
            out.push_back(',');
        out += joinInts(m.loopOrder[l]);
    }
    out += "],\"alloc\":[";
    for (size_t l = 0; l < m.bufferAlloc.size(); ++l) {
        if (l > 0)
            out.push_back(',');
        out += joinInts(m.bufferAlloc[l]);
    }
    out += "]}";
    return out;
}

namespace {

template <typename Int>
bool
intVectorFromJson(const JsonValue &v, std::vector<Int> &out)
{
    if (!v.isArray())
        return false;
    out.clear();
    for (const JsonValue &e : v.array) {
        if (!e.isInt())
            return false;
        out.push_back(Int(e.integer));
    }
    return true;
}

template <typename Int, size_t N>
bool
levelVectorsFromJson(const JsonValue *v,
                     std::array<std::vector<Int>, N> &out)
{
    if (v == nullptr || !v->isArray() || v->array.size() != N)
        return false;
    for (size_t l = 0; l < N; ++l)
        if (!intVectorFromJson(v->array[l], out[l]))
            return false;
    return true;
}

} // namespace

std::optional<Mapping>
mappingFromJson(const JsonValue &v)
{
    if (!v.isObject())
        return std::nullopt;
    Mapping m;
    const JsonValue *spatial = v.find("spatial");
    if (spatial == nullptr || !intVectorFromJson(*spatial, m.spatial))
        return std::nullopt;
    if (!levelVectorsFromJson(v.find("tiling"), m.tiling)
        || !levelVectorsFromJson(v.find("order"), m.loopOrder)
        || !levelVectorsFromJson(v.find("alloc"), m.bufferAlloc))
        return std::nullopt;
    return m;
}

std::string
searchResultToJson(const SearchResult &r, bool includeTrace)
{
    std::string out = "{\"method\":";
    out += jsonQuote(r.method);
    out += ",\"steps\":";
    out += std::to_string(r.steps);
    out += ",\"bestNormEdp\":";
    out += jsonHexDouble(r.bestNormEdp);
    out += ",\"virtualSec\":";
    out += jsonHexDouble(r.virtualSec);
    out += ",\"cancelled\":";
    out += r.cancelled ? "true" : "false";
    if (r.failed())
        out += ",\"error\":" + jsonQuote(r.error);
    else if (std::isfinite(r.bestNormEdp))
        out += ",\"best\":" + mappingToJson(r.best);
    if (includeTrace && !r.failed()) {
        out += ",\"trace\":[";
        for (size_t i = 0; i < r.trace.size(); ++i) {
            if (i > 0)
                out.push_back(',');
            out.push_back('[');
            out += std::to_string(r.trace[i].step);
            out.push_back(',');
            out += jsonHexDouble(r.trace[i].virtualSec);
            out.push_back(',');
            out += jsonHexDouble(r.trace[i].bestNormEdp);
            out.push_back(']');
        }
        out += "]";
    }
    out.push_back('}');
    return out;
}

std::string
makeAccepted(const std::string &id)
{
    return "{\"type\":\"accepted\",\"id\":" + jsonQuote(id) + "}";
}

std::string
makeRejected(const std::string &id, const std::string &reason)
{
    return "{\"type\":\"rejected\",\"id\":" + jsonQuote(id)
           + ",\"reason\":" + jsonQuote(reason) + "}";
}

std::string
makeError(const std::string &id, const std::string &message)
{
    return "{\"type\":\"error\",\"id\":" + jsonQuote(id)
           + ",\"message\":" + jsonQuote(message) + "}";
}

std::string
makeProgress(const std::string &id, const char *event, int run,
             const SearchProgress &p)
{
    return "{\"type\":\"progress\",\"id\":" + jsonQuote(id)
           + ",\"event\":\"" + event + "\",\"run\":" + std::to_string(run)
           + ",\"step\":" + std::to_string(p.steps)
           + ",\"virtualSec\":" + jsonHexDouble(p.virtualSec)
           + ",\"bestNormEdp\":" + jsonHexDouble(p.bestNormEdp) + "}";
}

std::string
makeResult(const std::string &id, const MultiRunResult &r,
           bool includeTrace)
{
    std::string out = "{\"type\":\"result\",\"id\":";
    out += jsonQuote(id);
    out += ",\"method\":";
    out += jsonQuote(r.method);
    out += ",\"failedRuns\":";
    out += std::to_string(r.failedRuns);
    out += ",\"bestNormEdp\":";
    out += jsonHexDouble(r.bestNormEdp);
    out += ",\"medianNormEdp\":";
    out += jsonHexDouble(r.medianNormEdp);
    out += ",\"runs\":[";
    for (size_t i = 0; i < r.runs.size(); ++i) {
        if (i > 0)
            out.push_back(',');
        out += searchResultToJson(r.runs[i], includeTrace);
    }
    out += "]}";
    return out;
}

} // namespace mm::serve
