/**
 * @file
 * Wire protocol of the serve frontend: newline-delimited JSON, one
 * document per line, requests flowing client -> server and a stream of
 * tagged events flowing back.
 *
 * Request (one line):
 *
 *   {"id":"r1","arch":"paper","algo":"cnn","problem":"vgg-2",
 *    "bounds":[64,128,64,112,112,3,3],"method":"MM-P:chains=4",
 *    "steps":1000,"runs":3,"seed":42,"progressEvery":100,"trace":false}
 *
 * Responses, each tagged with "type" and the request's "id":
 *
 *   accepted  — admitted to the queue
 *   rejected  — admission control refused (queue full, bad request)
 *   progress  — streamed heartbeat / improvement ("event" field)
 *   result    — terminal success, carries the full MultiRunResult
 *   error     — terminal failure, carries the message
 *
 * Doubles that must survive bit-exactly (normalized EDP, virtual time)
 * travel as hexfloat strings; see serve/json.hpp. A request's search
 * outcome is therefore byte-comparable with an offline runMany of the
 * same spec and seed.
 */
#pragma once

#include <optional>
#include <string>

#include "search/orchestrator.hpp"
#include "serve/json.hpp"
#include "workload/algorithm.hpp"
#include "workload/problem.hpp"

namespace mm::serve {

/** Hard cap on one wire line in either direction. A peer that streams
 * past this without a newline is dropped rather than buffered — no
 * legitimate request or event comes close. */
inline constexpr size_t kMaxLineBytes = size_t(1) << 20;

/** Most repetitions one request may ask for (each run pre-allocates a
 * streaming sink and a result slot). */
inline constexpr int64_t kMaxRuns = 1024;

/** One parsed, validated search request. */
struct ServeRequest
{
    std::string id;
    std::string arch = "paper";     ///< "paper" | "tiny"
    std::string algo = "cnn";       ///< "conv1d" | "cnn" | "mttkrp"
    std::string problemName = "served";
    std::vector<int64_t> bounds;    ///< per-dimension loop bounds
    std::string method = "MM";      ///< registry spec, e.g. "MM-P:chains=4"
    int64_t steps = 0;              ///< 0 = no step bound
    double virtualSec = 0.0;        ///< 0 = no virtual-time bound
    double wallSec = 0.0;           ///< 0 = server default cap only
    int runs = 1;
    uint64_t seed = 1;
    int64_t progressEvery = 0;      ///< 0 = no heartbeat
    bool trace = false;             ///< materialize + return full traces
};

/**
 * Parse and validate one request line. Returns nullopt and fills
 * @p error with a client-presentable message on any malformed field.
 */
std::optional<ServeRequest> parseRequest(const std::string &line,
                                         std::string *error);

/** Accelerator preset by name; nullopt for unknown names. */
std::optional<AcceleratorSpec> resolveArch(const std::string &name);

/** Algorithm preset by name; null for unknown names. */
const AlgorithmSpec *resolveAlgo(const std::string &name);

/**
 * Budget from the request's bounds intersected with the server-side
 * wall cap (@p maxWallSec, <= 0 for none): the tightest of each wins.
 */
SearchBudget budgetFor(const ServeRequest &req, double maxWallSec);

/** Canonical JSON of a mapping (integers only — bit-exact by nature). */
std::string mappingToJson(const Mapping &m);

/** Inverse of mappingToJson; nullopt on a malformed document. */
std::optional<Mapping> mappingFromJson(const JsonValue &v);

/** Canonical JSON of one repetition's result. */
std::string searchResultToJson(const SearchResult &r, bool includeTrace);

/** Response lines (no trailing newline; the writer appends it). */
std::string makeAccepted(const std::string &id);
std::string makeRejected(const std::string &id, const std::string &reason);
std::string makeError(const std::string &id, const std::string &message);
std::string makeProgress(const std::string &id, const char *event, int run,
                         const SearchProgress &p);
std::string makeResult(const std::string &id, const MultiRunResult &r,
                       bool includeTrace);

} // namespace mm::serve
