/**
 * @file
 * Request-level counters of the serve frontend. Plain relaxed atomics —
 * the counters are monitoring signals, not synchronization — bumped on
 * the admission/worker paths and dumped as one human-readable block on
 * SIGUSR1 (see SearchServer) or on demand in tests.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>

namespace mm::serve {

/** Monotonic counters plus two gauges; value reads are racy-but-sane. */
struct ServeMetrics
{
    std::atomic<uint64_t> accepted{0};   ///< admitted to the queue
    std::atomic<uint64_t> rejected{0};   ///< refused (queue full/bad req)
    std::atomic<uint64_t> cancelled{0};  ///< ended by client disconnect
    std::atomic<uint64_t> completed{0};  ///< result line written
    std::atomic<uint64_t> failed{0};     ///< error line written
    std::atomic<uint64_t> progressEvents{0}; ///< progress lines written
    std::atomic<int64_t> queueDepth{0};  ///< gauge: jobs waiting
    std::atomic<int64_t> activeWorkers{0}; ///< gauge: jobs running
    /** Surrogate pool: process-memory hits / disk-cache hits / trains. */
    std::atomic<uint64_t> poolWarmHits{0};
    std::atomic<uint64_t> poolDiskHits{0};
    std::atomic<uint64_t> poolTrainings{0};

    void
    dump(std::ostream &os) const
    {
        const uint64_t warm = poolWarmHits.load();
        const uint64_t disk = poolDiskHits.load();
        const uint64_t cold = poolTrainings.load();
        const uint64_t lookups = warm + disk + cold;
        os << "serve metrics:\n"
           << "  accepted        " << accepted.load() << "\n"
           << "  rejected        " << rejected.load() << "\n"
           << "  cancelled       " << cancelled.load() << "\n"
           << "  completed       " << completed.load() << "\n"
           << "  failed          " << failed.load() << "\n"
           << "  progress events " << progressEvents.load() << "\n"
           << "  queue depth     " << queueDepth.load() << "\n"
           << "  active workers  " << activeWorkers.load() << "\n"
           << "  surrogate pool  " << warm << " warm + " << disk
           << " disk hits, " << cold << " trainings";
        if (lookups > 0)
            os << " (hit rate "
               << (100.0 * double(warm + disk) / double(lookups)) << "%)";
        os << "\n";
    }
};

} // namespace mm::serve
