/**
 * @file
 * Minimal JSON codec for the serve frontend's newline-delimited wire
 * protocol. Deliberately tiny: objects, arrays, strings, numbers,
 * booleans and null — no comments, no trailing commas, no external
 * dependency.
 *
 * Numbers keep their integral identity (an int64 round-trips exactly);
 * doubles that must survive bitwise travel as C99 hexfloat *strings*
 * ("0x1.8p-3"), written by jsonHexDouble and read back by
 * parseHexDouble, because decimal JSON numbers cannot guarantee
 * bit-exact round-trips across formatters.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mm::serve {

/** One parsed JSON value (a small recursive variant). */
struct JsonValue
{
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    int64_t integer = 0;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isInt() const { return kind == Kind::Int; }
    bool isNumber() const
    {
        return kind == Kind::Int || kind == Kind::Double;
    }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Number as double (Int widens). */
    double asDouble() const
    {
        return kind == Kind::Int ? double(integer) : number;
    }

    /** Member lookup on an object; null when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Typed member conveniences with fallbacks. */
    std::string getStr(std::string_view key, std::string fallback) const;
    int64_t getInt(std::string_view key, int64_t fallback) const;
    double getDouble(std::string_view key, double fallback) const;
    bool getBool(std::string_view key, bool fallback) const;
};

/**
 * Parse one JSON document from @p text. Returns nullopt and fills
 * @p error (when non-null) on malformed input or trailing garbage.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

/** String -> quoted JSON string literal (escapes controls, '"', '\\'). */
std::string jsonQuote(std::string_view s);

/** Bit-exact double -> quoted hexfloat JSON string ("0x1.8p-3"). */
std::string jsonHexDouble(double v);

/**
 * Inverse of jsonHexDouble's payload: parse a hexfloat (or any strtod
 * form, including "inf"). Returns nullopt on garbage.
 */
std::optional<double> parseHexDouble(std::string_view s);

} // namespace mm::serve
