/**
 * @file
 * Mapping-as-a-service: a multi-tenant TCP frontend over the search
 * stack (the "serving frontend" seam ROADMAP item 1 reserved).
 *
 * One SearchServer binds a port and accepts newline-delimited JSON
 * requests (serve/protocol.hpp). Admission control is a bounded job
 * queue over a fixed worker pool: a request whose arrival would
 * overflow the queue is rejected immediately, an admitted one is
 * answered with an accepted line, streamed progress lines while it
 * runs, and one terminal result or error line.
 *
 * Each job runs through the ordinary offline machinery — registry
 * searcher specs, runMany with the request's seed, a per-request
 * StopToken — so a served search is bitwise identical to the same
 * spec/seed run offline. Surrogate-backed methods draw their model
 * from the process-level SurrogatePool (memory -> disk cache ->
 * single-flight train) and evaluate a private copy.
 *
 * Cancellation: a client disconnect flips its connection dead and
 * requests a stop on every job it owns; in-flight searches observe the
 * token at their next step and the worker frees up. A failed
 * repetition degrades into its result slot (runMany failure isolation)
 * — request failures never take the server down.
 *
 * Observability: request-level counters (serve/metrics.hpp) dump to
 * stderr on SIGUSR1 (after installSigusr1()) and are readable in
 * process for tests.
 */
#pragma once

#include <atomic>
#include <deque>
#include <list>
#include <memory>
#include <ostream>
#include <thread>
#include <vector>

#include "common/mutex.hpp"

#include "serve/protocol.hpp"
#include "serve/surrogate_pool.hpp"

namespace mm::serve {

/** Server knobs; fromEnv() reads the MM_SERVE_* environment. */
struct ServeConfig
{
    /** TCP port; 0 picks an ephemeral port (tests). [MM_SERVE_PORT] */
    int port = 0;
    /** Concurrent search workers. [MM_SERVE_WORKERS] */
    int workers = 2;
    /** Bounded admission queue capacity. [MM_SERVE_QUEUE] */
    size_t queueCap = 8;
    /** Per-request wall-clock cap in seconds (0 = none); intersects
     * the request's own budget. [MM_SERVE_MAX_WALL_SEC] */
    double maxWallSec = 0.0;
    /** Phase-1 config behind the surrogate pool. */
    Phase1Config phase1;
    bool useCache = true;
    /** Disk-tier directory ("" = SurrogateCache default). */
    std::string cacheDir;
    /** Injectable Phase-1 trainer (tests). */
    SurrogatePool::Trainer trainer;

    static ServeConfig fromEnv();
};

/** The multi-tenant search server. */
class SearchServer
{
  public:
    explicit SearchServer(ServeConfig cfg);
    ~SearchServer();

    SearchServer(const SearchServer &) = delete;
    SearchServer &operator=(const SearchServer &) = delete;

    /** Bind, listen and spawn the accept loop + workers. Throws on
     * bind/listen failure. Idempotent once started. */
    void start();

    /** Graceful shutdown: stop accepting, cancel in-flight searches,
     * drain and join everything. Idempotent. */
    void stop() MM_EXCLUDES(jobMtx, connMtx);

    /** Bound port (resolved after start(), useful with port 0). */
    int port() const { return boundPort; }

    const ServeMetrics &metrics() const { return counters; }
    SurrogatePool &pool() { return *surrogates; }

    /** One-shot metrics block to @p os. */
    void dumpMetrics(std::ostream &os) const;

    /** Ask the accept loop to dump metrics to stderr (async-safe). */
    void requestMetricsDump() { dumpFlag.store(true); }

    /** Route SIGUSR1 to requestMetricsDump() of the running server. */
    static void installSigusr1(SearchServer *server);

  private:
    struct Connection;
    struct Job;

    void acceptLoop() MM_EXCLUDES(connMtx);
    void readerLoop(std::shared_ptr<Connection> conn);
    void handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line) MM_EXCLUDES(jobMtx);
    void workerLoop() MM_EXCLUDES(jobMtx);
    void runJob(Job &job);
    void reapFinishedReaders() MM_EXCLUDES(connMtx);

    ServeConfig cfg;
    ServeMetrics counters;
    std::unique_ptr<SurrogatePool> surrogates;

    int listenFd = -1;
    int boundPort = 0;
    int wakePipe[2] = {-1, -1};
    std::atomic<bool> running{false};
    std::atomic<bool> stopping{false};
    std::atomic<bool> dumpFlag{false};

    std::thread acceptThread;
    std::vector<std::thread> workers;

    Mutex jobMtx;
    CondVar jobCv;
    std::deque<std::shared_ptr<Job>> queue MM_GUARDED_BY(jobMtx);

    Mutex connMtx;
    struct ReaderSlot
    {
        std::shared_ptr<Connection> conn;
        std::thread thread;
    };
    std::list<ReaderSlot> readers MM_GUARDED_BY(connMtx);
};

} // namespace mm::serve
