/**
 * @file
 * Process-level surrogate pool behind the serve frontend.
 *
 * Requests are keyed by the Phase-1 algorithm-config fingerprint
 * (Phase1Config::fingerprint over arch + algo). Three tiers:
 *
 *   1. memory — a master copy already resident in this process;
 *   2. disk   — the shared SurrogateCache (warm tier across processes);
 *   3. train  — Phase-1 train-once on a genuine cold miss.
 *
 * Cold misses are single-flight: concurrent requests for the same key
 * block on the one in-progress training instead of training N times.
 * A failed training releases the key so a later request can retry.
 *
 * acquire() hands back the shared master; Surrogate's predict methods
 * mutate internal MLP scratch buffers, so a caller that evaluates
 * concurrently with anyone else must take its own copy (the serve
 * workers each copy per request).
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.hpp"

#include "core/cache.hpp"
#include "core/phase1.hpp"
#include "serve/metrics.hpp"

namespace mm::serve {

/** Keyed, single-flight surrogate provider. */
class SurrogatePool
{
  public:
    /** Injectable Phase-1 trainer (tests substitute a stub). */
    using Trainer = std::function<Surrogate(const AcceleratorSpec &,
                                            const AlgorithmSpec &,
                                            const Phase1Config &)>;

    /**
     * @param phase1   Base Phase-1 config (resolved internally); its
     *                 fingerprint over (arch, algo) is the pool key.
     * @param cacheDir Disk tier directory ("" = SurrogateCache default).
     * @param useCache Disk tier switch (memory tier always applies).
     * @param metrics  Optional counter sink for hit/miss accounting.
     * @param trainer  Phase-1 override; default runs trainSurrogate.
     */
    SurrogatePool(Phase1Config phase1, std::string cacheDir = "",
                  bool useCache = true, ServeMetrics *metrics = nullptr,
                  Trainer trainer = {});

    /**
     * The master surrogate for (arch, algo): memory tier, else disk
     * tier, else a single-flight training. Throws what the trainer
     * threw on a failed cold miss.
     */
    std::shared_ptr<Surrogate> acquire(const AcceleratorSpec &arch,
                                       const AlgorithmSpec &algo)
        MM_EXCLUDES(mtx);

    /** Resident master copies (memory tier size). */
    size_t residentCount() const MM_EXCLUDES(mtx);

    /** Phase-1 trainings this pool actually ran. */
    uint64_t trainings() const MM_EXCLUDES(mtx);

  private:
    struct Flight
    {
        Mutex m;
        CondVar cv;
        bool done MM_GUARDED_BY(m) = false;
        std::shared_ptr<Surrogate> model MM_GUARDED_BY(m);
        std::exception_ptr error MM_GUARDED_BY(m);
    };

    Phase1Config cfg;
    SurrogateCache cache;
    bool useCache;
    ServeMetrics *metrics;
    Trainer trainer;

    mutable Mutex mtx;
    std::map<std::string, std::shared_ptr<Surrogate>>
        resident MM_GUARDED_BY(mtx);
    std::map<std::string, std::shared_ptr<Flight>>
        inFlight MM_GUARDED_BY(mtx);
    uint64_t trainCount MM_GUARDED_BY(mtx) = 0;
};

} // namespace mm::serve
