#include "costmodel/lower_bound.hpp"

namespace mm {

LowerBound
computeLowerBound(const AcceleratorSpec &arch, const Problem &problem)
{
    double perWordPj = 0.0;
    for (const auto &level : arch.levels)
        perWordPj += level.energyPerWordPj;

    double words = 0.0;
    for (size_t t = 0; t < problem.algo->tensorCount(); ++t)
        words += double(problem.tensorWords(t));

    LowerBound lb;
    lb.energyPj = words * perWordPj
                  + problem.totalMacs() * arch.macEnergyPj;
    lb.cycles = problem.totalMacs() / arch.peakMacsPerCycle();
    return lb;
}

} // namespace mm
