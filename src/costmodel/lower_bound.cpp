#include "costmodel/lower_bound.hpp"

#include "bound/bounds.hpp"
#include "mapping/map_space.hpp"

namespace mm {

LowerBound
computeLowerBound(const AcceleratorSpec &arch, const Problem &problem)
{
    // The whole-problem minimum is the empty partial assignment of the
    // bounds engine — per-tensor per-level reuse limits instead of the
    // historical "every word through every level once" sum, which both
    // undercounted reuse-limited levels (L1 refills scale with the
    // relevant iteration space, not the tensor size) and ignored the
    // factorization padding window.
    const MapSpace space(arch, problem);
    const PartialBound whole = BoundTables(space).wholeProblem();

    LowerBound lb;
    lb.energyPj = whole.energyPj;
    lb.cycles = whole.cycles;
    return lb;
}

} // namespace mm
