/**
 * @file
 * The algorithmic minimum (Appendix A): a conservative, possibly
 * unachievable lower bound used to normalize EDP and the surrogate's
 * output meta-statistics.
 *
 * Since the bounds engine landed this is a thin wrapper over
 * BoundTables::wholeProblem() (src/bound/bounds.hpp): per-tensor
 * per-level data-reuse limits, evaluated at the empty partial
 * assignment. It dominates the historical stub (which charged every
 * tensor word through every level exactly once and assumed peak-PE
 * cycles) while remaining admissible — the minimum still combines
 * per-component optima no single mapping attains simultaneously.
 */
#pragma once

#include "arch/accelerator.hpp"
#include "workload/problem.hpp"

namespace mm {

/** Lower-bound cost components. */
struct LowerBound
{
    double energyPj = 0.0;
    double cycles = 0.0;

    double edp() const { return energyPj * cycles; }
};

/** Compute the algorithmic minimum for @p problem on @p arch. */
LowerBound computeLowerBound(const AcceleratorSpec &arch,
                             const Problem &problem);

} // namespace mm
