/**
 * @file
 * The algorithmic minimum (Appendix A): a conservative, possibly
 * unachievable lower bound used to normalize EDP and the surrogate's
 * output meta-statistics.
 *
 * Minimum energy assumes perfect reuse — every tensor word is touched
 * exactly once at each level of the inclusive hierarchy — plus the
 * unavoidable MAC energy of the unpadded iteration space. Minimum
 * cycles assume 100 % PE utilization. The bound intentionally combines both
 * optima even though real mappings trade one for the other.
 */
#pragma once

#include "arch/accelerator.hpp"
#include "workload/problem.hpp"

namespace mm {

/** Lower-bound cost components. */
struct LowerBound
{
    double energyPj = 0.0;
    double cycles = 0.0;

    double edp() const { return energyPj * cycles; }
};

/** Compute the algorithmic minimum for @p problem on @p arch. */
LowerBound computeLowerBound(const AcceleratorSpec &arch,
                             const Problem &problem);

} // namespace mm
