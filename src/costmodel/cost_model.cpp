#include "costmodel/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/parallel_context.hpp"
#include "nn/trainer.hpp"

namespace mm {

namespace {

/**
 * Mappings evaluated per descriptor block. Fixed (not tunable) so batch
 * results never depend on configuration, and equal to the trainer's
 * gather chunk so the evaluation and training pipelines agree on one
 * blocking unit.
 */
constexpr size_t kCostEvalChunk = 16;
static_assert(kCostEvalChunk == kGatherChunkRows,
              "evaluation chunk must match the trainer's gather chunk");

/**
 * Per-thread descriptor scratch: chunk after chunk reuses one block's
 * storage, and pool threads each get their own (no sharing, no locks).
 */
thread_local DescriptorBlock tlsBlock;

/**
 * Chunked batch driver: lower then evaluate kCostEvalChunk mappings at
 * a time, fanning chunks out over @p par when provided. mappingAt(i)
 * yields the i-th mapping; emit(i, raw) consumes its result. Chunks are
 * independent and every index is written exactly once, so results are
 * identical (bitwise) at any lane count.
 */
template <typename MappingAt, typename Emit>
void
runBatch(const CostTables &tables, size_t n, const MappingAt &mappingAt,
         const Emit &emit, ParallelContext *par)
{
    if (n == 0)
        return;
    const size_t chunks = (n + kCostEvalChunk - 1) / kCostEvalChunk;
    auto runChunk = [&](size_t c) {
        const size_t begin = c * kCostEvalChunk;
        const size_t end = std::min(n, begin + kCostEvalChunk);
        DescriptorBlock &block = tlsBlock;
        block.ensure(tables, end - begin);
        for (size_t i = begin; i < end; ++i)
            lowerMapping(tables, mappingAt(i), block, i - begin);
        RawCost raw;
        for (size_t i = begin; i < end; ++i) {
            evalDescriptor(tables, block, i - begin, raw);
            emit(i, raw);
        }
    };
    if (par != nullptr)
        par->parallelFor(chunks, runChunk);
    else
        for (size_t c = 0; c < chunks; ++c)
            runChunk(c);
}

/** Copy a RawCost into a (capacity-reusing) CostResult. */
void
rawToResult(const RawCost &raw, CostResult &res)
{
    const size_t tensors = raw.tensors;
    res.access.resize(tensors);
    res.energyPj.resize(tensors);
    for (size_t t = 0; t < tensors; ++t) {
        for (int lvl = 0; lvl < kNumMemLevels; ++lvl) {
            res.access[t][size_t(lvl)].reads = raw.reads[t][size_t(lvl)];
            res.access[t][size_t(lvl)].writes = raw.writes[t][size_t(lvl)];
            res.energyPj[t][size_t(lvl)] = raw.energyPj[t][size_t(lvl)];
        }
    }
    res.nocWords = raw.nocWords;
    res.paddedMacs = raw.paddedMacs;
    res.actualMacs = raw.actualMacs;
    res.macEnergyPj = raw.macEnergyPj;
    res.nocEnergyPj = raw.nocEnergyPj;
    res.totalEnergyPj = raw.totalEnergyPj;
    res.computeCycles = raw.computeCycles;
    for (int lvl = 0; lvl < kNumMemLevels; ++lvl)
        res.bandwidthCycles[size_t(lvl)] = raw.bandwidthCycles[size_t(lvl)];
    res.cycles = raw.cycles;
    res.utilization = raw.utilization;
}

} // namespace

size_t
CostResult::metaStatCount(size_t tensorCount)
{
    return tensorCount * size_t(kNumMemLevels) + 3;
}

std::vector<double>
CostResult::metaStats() const
{
    std::vector<double> stats;
    metaStats(stats);
    return stats;
}

void
CostResult::metaStats(std::vector<double> &out) const
{
    out.clear();
    out.reserve(metaStatCount(energyPj.size()));
    for (const auto &perLevel : energyPj)
        for (double e : perLevel)
            out.push_back(e);
    out.push_back(totalEnergyPj);
    out.push_back(utilization);
    out.push_back(cycles);
}

CostModel::CostModel(const MapSpace &space)
    : mapSpace(&space),
      bound(computeLowerBound(space.arch(), space.problem()))
{
    tables.build(space);
    tables.boundEdp = bound.edp();
}

CostResult
CostModel::evaluate(const Mapping &m) const
{
    CostResult res;
    evaluate(m, res);
    return res;
}

void
CostModel::evaluate(const Mapping &m, CostResult &out) const
{
    DescriptorBlock &block = tlsBlock;
    block.ensure(tables, 1);
    lowerMapping(tables, m, block, 0);
    RawCost raw;
    evalDescriptor(tables, block, 0, raw);
    rawToResult(raw, out);
}

void
CostModel::evaluateBatch(std::span<const Mapping> mappings,
                         std::span<CostResult> results,
                         ParallelContext *par) const
{
    MM_ASSERT(mappings.size() == results.size(),
              "evaluateBatch spans must have equal length");
    runBatch(
        tables, mappings.size(),
        [&](size_t i) -> const Mapping & { return mappings[i]; },
        [&](size_t i, const RawCost &raw) { rawToResult(raw, results[i]); },
        par);
}

void
CostModel::evaluateBatch(std::span<const Mapping *const> mappings,
                         std::span<CostResult *const> results,
                         ParallelContext *par) const
{
    MM_ASSERT(mappings.size() == results.size(),
              "evaluateBatch spans must have equal length");
    runBatch(
        tables, mappings.size(),
        [&](size_t i) -> const Mapping & { return *mappings[i]; },
        [&](size_t i, const RawCost &raw) { rawToResult(raw, *results[i]); },
        par);
}

void
CostModel::edpBatch(std::span<const Mapping> mappings,
                    std::span<double> out, ParallelContext *par) const
{
    MM_ASSERT(mappings.size() == out.size(),
              "edpBatch spans must have equal length");
    runBatch(
        tables, mappings.size(),
        [&](size_t i) -> const Mapping & { return mappings[i]; },
        [&](size_t i, const RawCost &raw) { out[i] = raw.edp(); }, par);
}

void
CostModel::edpBatch(std::span<const Mapping *const> mappings,
                    std::span<double> out, ParallelContext *par) const
{
    MM_ASSERT(mappings.size() == out.size(),
              "edpBatch spans must have equal length");
    runBatch(
        tables, mappings.size(),
        [&](size_t i) -> const Mapping & { return *mappings[i]; },
        [&](size_t i, const RawCost &raw) { out[i] = raw.edp(); }, par);
}

void
CostModel::normalizedEdpBatch(std::span<const Mapping> mappings,
                              std::span<double> out,
                              ParallelContext *par) const
{
    MM_ASSERT(mappings.size() == out.size(),
              "normalizedEdpBatch spans must have equal length");
    runBatch(
        tables, mappings.size(),
        [&](size_t i) -> const Mapping & { return mappings[i]; },
        [&](size_t i, const RawCost &raw) {
            out[i] = raw.edp() / tables.boundEdp;
        },
        par);
}

void
CostModel::normalizedEdpBatch(std::span<const Mapping *const> mappings,
                              std::span<double> out,
                              ParallelContext *par) const
{
    MM_ASSERT(mappings.size() == out.size(),
              "normalizedEdpBatch spans must have equal length");
    runBatch(
        tables, mappings.size(),
        [&](size_t i) -> const Mapping & { return *mappings[i]; },
        [&](size_t i, const RawCost &raw) {
            out[i] = raw.edp() / tables.boundEdp;
        },
        par);
}

double
CostModel::edp(const Mapping &m) const
{
    double out = 0.0;
    edpBatch(std::span<const Mapping>(&m, 1), std::span<double>(&out, 1));
    return out;
}

double
CostModel::normalizedEdp(const Mapping &m) const
{
    return edp(m) / bound.edp();
}

} // namespace mm
