#include "costmodel/descriptor.hpp"

#include <algorithm>

#include "common/factorization.hpp"

namespace mm {

namespace {

/**
 * Cold path of lowering: the mapping failed the inline membership
 * mirror. Re-derive the scalar path's exact diagnostic (string building
 * and the full validity walk are fine here; this never runs for valid
 * mappings).
 */
[[noreturn]] void
panicInvalid(const CostTables &tables, const Mapping &m)
{
    MM_ASSERT(tables.space->isMember(m),
              "cost model requires a valid mapping: "
                  + tables.space->validityError(m));
    MM_ASSERT(false, "mapping failed descriptor lowering but passes "
                     "MapSpace::validityError; lowering mirror is stale");
    std::abort(); // unreachable: both asserts above throw
}

/** Allocation-free isPermutation over [0, rank) (rank <= 16). */
bool
isPermutationMask(std::span<const int> order, size_t rank)
{
    if (order.size() != rank)
        return false;
    uint32_t seen = 0;
    for (int v : order) {
        if (v < 0 || size_t(v) >= rank)
            return false;
        uint32_t bit = uint32_t(1) << uint32_t(v);
        if (seen & bit)
            return false;
        seen |= bit;
    }
    return true;
}

} // namespace

void
CostTables::build(const MapSpace &mapSpace)
{
    space = &mapSpace;
    const AlgorithmSpec &algo = *mapSpace.problem().algo;
    const AcceleratorSpec &arch = mapSpace.arch();
    rank = algo.rank();
    tensors = algo.tensorCount();
    MM_ASSERT(rank >= 1 && rank <= kMaxCostRank,
              "problem rank outside descriptor limits");
    MM_ASSERT(tensors >= 1 && tensors <= kMaxCostTensors,
              "tensor count outside descriptor limits");

    dimOffset.clear();
    dimCount.clear();
    dimTermOffset.clear();
    dimTermCount.clear();
    termDim.clear();
    termCoeff.clear();
    for (size_t t = 0; t < tensors; ++t) {
        const TensorSpec &spec = algo.tensors[t];
        isOutput[t] = spec.isOutput;
        dimOffset.push_back(uint32_t(dimTermOffset.size()));
        dimCount.push_back(uint32_t(spec.dims.size()));
        uint16_t mask = 0;
        for (const TensorDim &tdim : spec.dims) {
            dimTermOffset.push_back(uint32_t(termDim.size()));
            dimTermCount.push_back(uint32_t(tdim.size()));
            for (const ProjTerm &term : tdim) {
                MM_ASSERT(term.dim >= 0 && size_t(term.dim) < rank,
                          "projection term references unknown dimension");
                mask |= uint16_t(uint16_t(1) << term.dim);
                termDim.push_back(uint32_t(term.dim));
                termCoeff.push_back(term.coeff);
            }
        }
        relevance[t] = mask;
    }

    dimTables.clear();
    dimTables.reserve(rank);
    for (size_t i = 0; i < rank; ++i)
        dimTables.push_back(
            &factorTable(mapSpace.problem().bounds[i], kFactorSlots));

    numPes = arch.numPes;
    wordBytes = arch.wordBytes;
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        banks[lvl] = arch.levels[size_t(lvl)].banks;
        capacityBytes[lvl] = arch.levels[size_t(lvl)].capacityBytes;
    }
    for (int lvl = 0; lvl < kNumMemLevels; ++lvl) {
        energyPerWordPj[lvl] = arch.levels[size_t(lvl)].energyPerWordPj;
        bandwidthWordsPerCycle[lvl] =
            arch.levels[size_t(lvl)].bandwidthWordsPerCycle;
        perPe[lvl] = arch.levels[size_t(lvl)].perPe;
    }
    macEnergyPj = arch.macEnergyPj;
    nocEnergyPerWordPj = arch.nocEnergyPerWordPj;
    macsPerPePerCycle = double(arch.macsPerPePerCycle);
    peakMacsPerCycle = arch.peakMacsPerCycle();
    actualMacs = mapSpace.problem().totalMacs();
}

int64_t
CostTables::footprint(size_t t, const int64_t *extents) const
{
    // Mirrors AlgorithmSpec::tileFootprint operation for operation so
    // the products convert to double bitwise identically.
    int64_t words = 1;
    const uint32_t dBegin = dimOffset[t];
    const uint32_t dEnd = dBegin + dimCount[t];
    for (uint32_t d = dBegin; d < dEnd; ++d) {
        int64_t extent = 1;
        const uint32_t kBegin = dimTermOffset[d];
        const uint32_t kEnd = kBegin + dimTermCount[d];
        for (uint32_t k = kBegin; k < kEnd; ++k)
            extent += termCoeff[k] * (extents[termDim[k]] - 1);
        words *= extent;
    }
    return words;
}

void
DescriptorBlock::ensure(const CostTables &tables, size_t n)
{
    lanes = n;
    rank = tables.rank;
    tensorCount = tables.tensors;
    stride = 3 * rank;
    pes.resize(lanes);
    trips.resize(lanes * stride);
    dimBits.resize(lanes * stride);
    counts.resize(lanes);
    extents.resize(kResidencyPoints * lanes * rank);
    foot.resize(lanes * tensorCount * kResidencyPoints);
}

void
lowerMapping(const CostTables &tables, const Mapping &m,
             DescriptorBlock &block, size_t lane)
{
    const size_t rank = tables.rank;

    // Membership mirror of MapSpace::validityError, same predicate
    // order, no allocations; any failure defers to the cold path for
    // the scalar diagnostic.
    for (const auto &t : m.tiling)
        if (t.size() != rank)
            panicInvalid(tables, m);
    if (m.spatial.size() != rank)
        panicInvalid(tables, m);

    const int64_t *t1 = m.tiling[size_t(MemLevel::L1)].data();
    const int64_t *t2 = m.tiling[size_t(MemLevel::L2)].data();
    const int64_t *td = m.tiling[size_t(MemLevel::DRAM)].data();
    const int64_t *sp = m.spatial.data();

    for (size_t i = 0; i < rank; ++i) {
        const std::array<int64_t, kFactorSlots> f = {t1[i], sp[i], t2[i],
                                                     td[i]};
        if (!tables.dimTables[i]->contains(f))
            panicInvalid(tables, m);
    }

    int64_t usedPes = 1;
    for (size_t i = 0; i < rank; ++i)
        usedPes *= sp[i];
    if (usedPes > tables.numPes)
        panicInvalid(tables, m);

    for (const auto &order : m.loopOrder)
        if (!isPermutationMask(order, rank))
            panicInvalid(tables, m);

    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        const auto &alloc = m.bufferAlloc[size_t(lvl)];
        if (alloc.size() != tables.tensors)
            panicInvalid(tables, m);
        int sum = 0;
        for (int bankCount : alloc) {
            if (bankCount < 1)
                panicInvalid(tables, m);
            sum += bankCount;
        }
        if (sum > tables.banks[lvl])
            panicInvalid(tables, m);
    }

    // Residency-point extents, multiplied in the scalar path's chain
    // order (L1, then *spatial, then *L2, then *DRAM).
    int64_t *e1 = block.extentsAt(ResidencyPoint::L1, lane);
    int64_t *esp = block.extentsAt(ResidencyPoint::Spatial, lane);
    int64_t *e2 = block.extentsAt(ResidencyPoint::L2, lane);
    int64_t *full = block.extentsAt(ResidencyPoint::Full, lane);
    for (size_t i = 0; i < rank; ++i) {
        e1[i] = t1[i];
        esp[i] = e1[i] * sp[i];
        e2[i] = esp[i] * t2[i];
        full[i] = e2[i] * td[i];
    }

    // Footprints at every residency point, stored for the kernel; the
    // capacity checks need the two on-chip ones anyway.
    double *foot = block.footAt(lane);
    for (size_t t = 0; t < tables.tensors; ++t) {
        double *f = foot + t * kResidencyPoints;
        f[size_t(ResidencyPoint::L1)] = double(tables.footprint(t, e1));
        f[size_t(ResidencyPoint::Spatial)] =
            double(tables.footprint(t, esp));
        f[size_t(ResidencyPoint::L2)] = double(tables.footprint(t, e2));
        f[size_t(ResidencyPoint::Full)] =
            double(tables.footprint(t, full));
        for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
            const double tileBytes = f[lvl == 0
                                           ? size_t(ResidencyPoint::L1)
                                           : size_t(ResidencyPoint::L2)]
                                     * tables.wordBytes;
            const double allocBytes =
                tables.capacityBytes[lvl]
                * double(m.bufferAlloc[size_t(lvl)][t])
                / double(tables.banks[lvl]);
            if (tileBytes > allocBytes)
                panicInvalid(tables, m);
        }
    }

    block.pes[lane] = double(usedPes);

    // Flatten the temporal nest exactly as the scalar path appends its
    // blocks: DRAM loops, then L2, then L1, keeping only trips > 1.
    double *trips = block.trips.data() + lane * block.loopStride();
    uint16_t *bits = block.dimBits.data() + lane * block.loopStride();
    size_t n = 0;
    auto appendBlock = [&](MemLevel lvl) {
        const auto &order = m.loopOrder[size_t(lvl)];
        const int64_t *tiling = m.tiling[size_t(lvl)].data();
        for (size_t i = 0; i < rank; ++i) {
            const int dim = order[i];
            const int64_t trip = tiling[size_t(dim)];
            if (trip > 1) {
                trips[n] = double(trip);
                bits[n] = uint16_t(uint16_t(1) << dim);
                ++n;
            }
        }
    };
    LoopCounts &counts = block.counts[lane];
    appendBlock(MemLevel::DRAM);
    counts.dram = uint8_t(n);
    appendBlock(MemLevel::L2);
    counts.l2 = uint8_t(n);
    appendBlock(MemLevel::L1);
    counts.total = uint8_t(n);
}

void
evalDescriptor(const CostTables &tables, const DescriptorBlock &block,
               size_t lane, RawCost &out)
{
    const size_t tensors = tables.tensors;
    const double pes = block.pes[lane];
    const LoopCounts counts = block.counts[lane];
    const double *trips = block.trips.data() + lane * block.loopStride();
    const uint16_t *bits = block.dimBits.data() + lane * block.loopStride();

    // Prefix products of the flattened nest: prefix[i] is the product
    // of trips[0..i), accumulated left to right exactly like the scalar
    // reloadFactor loop, so selecting prefix[last] reproduces its
    // result bitwise.
    double prefix[kMaxCostLoops + 1];
    prefix[0] = 1.0;
    for (size_t i = 0; i < counts.total; ++i)
        prefix[i + 1] = prefix[i] * trips[i];

    const int64_t *full = block.extentsAt(ResidencyPoint::Full, lane);
    const double *foot = block.footAt(lane);

    out.tensors = tensors;

    out.paddedMacs = 1.0;
    for (size_t i = 0; i < tables.rank; ++i)
        out.paddedMacs *= double(full[i]);
    out.actualMacs = tables.actualMacs;
    out.nocWords = 0.0;

    for (size_t t = 0; t < tensors; ++t) {
        const uint16_t mask = tables.relevance[t];
        const double *f = foot + t * kResidencyPoints;
        const double f1 = f[size_t(ResidencyPoint::L1)];
        const double fsp = f[size_t(ResidencyPoint::Spatial)];
        const double f2 = f[size_t(ResidencyPoint::L2)];
        const double ffull = f[size_t(ResidencyPoint::Full)];

        // Reload factors as masked selects over the prefix products:
        // a relevant loop at position i advances the factor to
        // prefix[i + 1]; trailing irrelevant loops leave it unchanged
        // (stationarity). Incremental over the three block boundaries.
        double rfDram = 1.0;
        size_t i = 0;
        for (; i < counts.dram; ++i)
            rfDram = (bits[i] & mask) ? prefix[i + 1] : rfDram;
        double rfL2 = rfDram;
        for (; i < counts.l2; ++i)
            rfL2 = (bits[i] & mask) ? prefix[i + 1] : rfL2;
        double rfL1 = rfL2;
        for (; i < counts.total; ++i)
            rfL1 = (bits[i] & mask) ? prefix[i + 1] : rfL1;

        double *reads = out.reads[t];
        double *writes = out.writes[t];
        for (int lvl = 0; lvl < kNumMemLevels; ++lvl) {
            reads[lvl] = 0.0;
            writes[lvl] = 0.0;
        }
        if (!tables.isOutput[t]) {
            reads[size_t(MemLevel::DRAM)] = f2 * rfDram;
            writes[size_t(MemLevel::L2)] = f2 * rfDram;
            reads[size_t(MemLevel::L2)] = fsp * rfL2;
            writes[size_t(MemLevel::L1)] = pes * f1 * rfL2;
            reads[size_t(MemLevel::L1)] = pes * rfL1;
            out.nocWords += pes * f1 * rfL2;
        } else {
            const double updL1 = pes * rfL1;
            const double firstL1 = pes * f1 * rfL2;
            writes[size_t(MemLevel::L1)] = updL1;
            reads[size_t(MemLevel::L1)] = std::max(0.0, updL1 - firstL1);

            const double updL2 = fsp * rfL2;
            const double firstL2 = f2 * rfDram;
            writes[size_t(MemLevel::L2)] = updL2;
            reads[size_t(MemLevel::L2)] = std::max(0.0, updL2 - firstL2);

            const double updDram = f2 * rfDram;
            writes[size_t(MemLevel::DRAM)] = updDram;
            reads[size_t(MemLevel::DRAM)] =
                std::max(0.0, updDram - ffull);

            out.nocWords += pes * f1 * rfL2;
        }

        for (int lvl = 0; lvl < kNumMemLevels; ++lvl)
            out.energyPj[t][size_t(lvl)] = (reads[lvl] + writes[lvl])
                                           * tables.energyPerWordPj[lvl];
    }

    out.macEnergyPj = out.paddedMacs * tables.macEnergyPj;
    out.nocEnergyPj = out.nocWords * tables.nocEnergyPerWordPj;
    out.totalEnergyPj = out.macEnergyPj + out.nocEnergyPj;
    for (size_t t = 0; t < tensors; ++t)
        for (int lvl = 0; lvl < kNumMemLevels; ++lvl)
            out.totalEnergyPj += out.energyPj[t][size_t(lvl)];

    out.computeCycles = out.paddedMacs / (pes * tables.macsPerPePerCycle);
    for (int lvl = 0; lvl < kNumMemLevels; ++lvl) {
        double words = 0.0;
        for (size_t t = 0; t < tensors; ++t)
            words += out.reads[t][size_t(lvl)] + out.writes[t][size_t(lvl)];
        const double bw = tables.bandwidthWordsPerCycle[lvl];
        if (tables.perPe[lvl])
            words /= std::max(pes, 1.0);
        out.bandwidthCycles[size_t(lvl)] = words / bw;
    }
    out.cycles = std::max({out.computeCycles, out.bandwidthCycles[0],
                           out.bandwidthCycles[1], out.bandwidthCycles[2]});
    out.utilization =
        out.actualMacs / (out.cycles * tables.peakMacsPerCycle);
}

} // namespace mm
