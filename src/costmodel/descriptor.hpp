/**
 * @file
 * Stage 1 of the batched cost model: mapping -> packed descriptor.
 *
 * Mapping evaluation is split into a *lowering* pass and an *evaluation*
 * kernel (see cost_model.hpp for the pipeline overview):
 *
 *   lowerMapping()    compiles one Mapping of a fixed map space into a
 *                     lane of a DescriptorBlock — a POD,
 *                     structure-of-arrays batch of flattened loop
 *                     descriptors (trip counts, per-loop dimension
 *                     bits, residency-point extents, spatial fan-out),
 *                     validating map-space membership along the way.
 *   evalDescriptor()  runs the analytical model over one lane with
 *                     straight-line, mask-driven arithmetic (relevance
 *                     tests are bitmask AND + select, never a
 *                     data-dependent branch) into a fixed-size RawCost.
 *
 * CostTables caches everything about the map space the two stages need
 * (tensor relevance masks, flattened halo projections, factorization
 * tables, energy/bandwidth constants), so neither stage touches the
 * AlgorithmSpec's pointer-chasing std::vectors on the hot path.
 *
 * The packing follows LoopModels' bit-packed per-loop cost counters:
 * each flattened loop carries a 16-bit dimension bitmask, each tensor a
 * 16-bit relevance mask, and the three residency boundaries of a lane
 * are byte-sized prefix counts (LoopCounts).
 *
 * Bitwise contract: for every valid mapping, evalDescriptor() performs
 * the exact floating-point operations of the historical scalar
 * CostModel::evaluate in the exact order, so results are bitwise
 * identical to the scalar path — and therefore independent of batch
 * size, chunking and lane count. Tests assert this field by field.
 */
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "mapping/map_space.hpp"

namespace mm {

class FactorizationTable;

/** Supported problem sizes (paper workloads: rank <= 7, tensors <= 4). */
inline constexpr size_t kMaxCostRank = 16;
inline constexpr size_t kMaxCostTensors = 8;
/** Flattened temporal loops per lane: three levels of `rank` loops. */
inline constexpr size_t kMaxCostLoops = 3 * kMaxCostRank;

/** Residency points at which tile extents are materialized. */
enum class ResidencyPoint : int
{
    L1 = 0,      ///< per-PE L1 tile
    Spatial = 1, ///< multicast union across the PE fan-out
    L2 = 2,      ///< staged L2 tile
    Full = 3     ///< full padded bounds
};
inline constexpr size_t kResidencyPoints = 4;

/**
 * Flattened-nest prefix lengths of one lane (outermost-first): loops
 * [0, dram) belong to the DRAM block, [0, l2) to DRAM+L2, [0, total) to
 * the whole temporal nest. Packed so a block of lanes stays cacheable.
 */
struct LoopCounts
{
    uint8_t dram = 0;
    uint8_t l2 = 0;
    uint8_t total = 0;
    uint8_t pad = 0;
};
static_assert(sizeof(LoopCounts) == 4
              && std::is_trivially_copyable_v<LoopCounts>);

/**
 * Per-map-space constants shared by lowering and evaluation: the
 * problem's tensor structure flattened into index-free arrays, the
 * per-dimension factorization tables (resolved once, not per call), and
 * the architecture's energy/bandwidth/capacity scalars.
 */
struct CostTables
{
    const MapSpace *space = nullptr;
    size_t rank = 0;
    size_t tensors = 0;

    /** Bit d set iff the tensor's projection uses loop dimension d. */
    uint16_t relevance[kMaxCostTensors] = {};
    bool isOutput[kMaxCostTensors] = {};

    /**
     * Halo-aware projections, flattened: tensor t's tensor-dimensions
     * are dimTermOffset[dimOffset[t] .. dimOffset[t]+dimCount[t]), and
     * each tensor-dimension's affine terms are
     * (termDim, termCoeff)[dimTermOffset[i] .. +dimTermCount[i]).
     */
    std::vector<uint32_t> dimOffset;     ///< per tensor
    std::vector<uint32_t> dimCount;      ///< per tensor
    std::vector<uint32_t> dimTermOffset; ///< per tensor-dimension
    std::vector<uint32_t> dimTermCount;  ///< per tensor-dimension
    std::vector<uint32_t> termDim;       ///< flattened terms
    std::vector<int64_t> termCoeff;      ///< flattened terms

    /** Per-dimension factorization tables (program-lifetime refs). */
    std::vector<const FactorizationTable *> dimTables;

    // Architecture constants, indexed by MemLevel where per-level.
    int64_t numPes = 0;
    double wordBytes = 0.0;
    int banks[kNumOnChipLevels] = {};
    double capacityBytes[kNumOnChipLevels] = {};
    double energyPerWordPj[kNumMemLevels] = {};
    double bandwidthWordsPerCycle[kNumMemLevels] = {};
    bool perPe[kNumMemLevels] = {};
    double macEnergyPj = 0.0;
    double nocEnergyPerWordPj = 0.0;
    double macsPerPePerCycle = 0.0;
    double peakMacsPerCycle = 0.0;

    // Problem constants.
    double actualMacs = 0.0;
    /** Lower-bound EDP (set by CostModel; used by normalized batches). */
    double boundEdp = 0.0;

    /** Compile the tables for @p mapSpace (called once per CostModel). */
    void build(const MapSpace &mapSpace);

    /** Halo-aware words of tensor @p t for per-dimension @p extents. */
    int64_t footprint(size_t t, const int64_t *extents) const;
};

/**
 * A structure-of-arrays batch of lowered mappings. All storage is flat
 * and reused across ensure() calls (capacity is kept), so a thread can
 * lower chunk after chunk without touching the allocator.
 */
class DescriptorBlock
{
  public:
    /** Shape the block for @p n lanes of @p tables' map space. */
    void ensure(const CostTables &tables, size_t n);

    size_t count() const { return lanes; }
    size_t loopStride() const { return stride; }

    /** Extents of @p lane at residency point @p p (rank values). */
    int64_t *extentsAt(ResidencyPoint p, size_t lane)
    {
        return extents.data() + (size_t(p) * lanes + lane) * rank;
    }
    const int64_t *extentsAt(ResidencyPoint p, size_t lane) const
    {
        return extents.data() + (size_t(p) * lanes + lane) * rank;
    }

    /**
     * Tile footprints of @p lane, [tensor][residency point], already
     * converted to double. Lowering fills them (it needs the on-chip
     * ones for capacity checks anyway) so the kernel never re-walks the
     * projection terms.
     */
    double *footAt(size_t lane)
    {
        return foot.data() + lane * tensorCount * kResidencyPoints;
    }
    const double *footAt(size_t lane) const
    {
        return foot.data() + lane * tensorCount * kResidencyPoints;
    }

    /** Spatial fan-out (used PEs) per lane. */
    std::vector<double> pes;
    /** Flattened temporal trip counts, trip > 1 only, outermost first. */
    std::vector<double> trips;
    /** 1 << dim of each flattened loop, aligned with trips. */
    std::vector<uint16_t> dimBits;
    /** Prefix lengths of the three temporal blocks, per lane. */
    std::vector<LoopCounts> counts;

  private:
    size_t lanes = 0;
    size_t rank = 0;
    size_t tensorCount = 0;
    size_t stride = 0;
    /** [residency point][lane][dim], see extentsAt(). */
    std::vector<int64_t> extents;
    /** [lane][tensor][residency point], see footAt(). */
    std::vector<double> foot;
};

/**
 * Fixed-size evaluation result of one lane; the POD mirror of
 * CostResult (no heap storage, so kernels and adapters never allocate).
 * Field semantics match CostResult exactly.
 */
struct RawCost
{
    size_t tensors = 0;
    double reads[kMaxCostTensors][kNumMemLevels];
    double writes[kMaxCostTensors][kNumMemLevels];
    double energyPj[kMaxCostTensors][kNumMemLevels];
    double nocWords;
    double paddedMacs;
    double actualMacs;
    double macEnergyPj;
    double nocEnergyPj;
    double totalEnergyPj;
    double computeCycles;
    double bandwidthCycles[kNumMemLevels];
    double cycles;
    double utilization;

    double edp() const { return totalEnergyPj * cycles; }
};
static_assert(std::is_trivially_copyable_v<RawCost>);

/**
 * Lower @p m into lane @p lane of @p block (which must already be
 * ensure()d large enough). Validates membership in the map space with
 * an allocation-free mirror of MapSpace::validityError and panics with
 * the scalar path's diagnostic on an invalid mapping.
 */
void lowerMapping(const CostTables &tables, const Mapping &m,
                  DescriptorBlock &block, size_t lane);

/** Evaluate one lowered lane into @p out (branch-free, allocation-free). */
void evalDescriptor(const CostTables &tables, const DescriptorBlock &block,
                    size_t lane, RawCost &out);

} // namespace mm
