/**
 * @file
 * The original straight-line scalar cost-model evaluation, preserved
 * verbatim as a differential oracle for the descriptor pipeline
 * (costmodel/descriptor.hpp).
 *
 * CostModel::evaluate is a batch of one since the pipeline rewrite, so
 * comparing batch output against it cannot catch a bug shared by both
 * paths. This reference re-derives every quantity independently — the
 * full MapSpace::isMember validity walk, allocated extent/footprint
 * vectors, per-tensor reload-factor scans — exactly as the model was
 * first written. Tests assert the pipeline matches it bitwise;
 * bench/costmodel_perf uses it as the historical per-call baseline the
 * batch path is measured against. Not for production use: it allocates
 * on every call.
 */
#pragma once

#include "costmodel/cost_model.hpp"

namespace mm {

/** Evaluate @p m the original way; bitwise equals CostModel::evaluate. */
CostResult referenceEvaluate(const MapSpace &space, const Mapping &m);

} // namespace mm
