#include "costmodel/reference_eval.hpp"

#include <algorithm>
#include <cmath>

#include "common/string_util.hpp"

namespace mm {

namespace {

/** One temporal loop of the flattened nest. */
struct TemporalLoop
{
    int dim;
    double trip;
};

/** Append a temporal block's loops (outermost first, trip>1 only). */
void
appendBlock(std::vector<TemporalLoop> &loops, const Mapping &m,
            MemLevel lvl)
{
    for (size_t i = 0; i < m.rank(); ++i) {
        int dim = m.loopOrder[size_t(lvl)][i];
        int64_t trip = m.tiling[size_t(lvl)][size_t(dim)];
        if (trip > 1)
            loops.push_back({dim, double(trip)});
    }
}

/**
 * Reload factor: product of trip counts of all loops down to and
 * including the innermost loop relevant to tensor @p spec. The trailing
 * run of irrelevant loops yields stationarity and is excluded. With no
 * relevant loop the data stays resident: factor 1.
 */
double
reloadFactor(const TensorSpec &spec, std::span<const TemporalLoop> loops)
{
    size_t last = 0; // one past the innermost relevant loop
    for (size_t i = 0; i < loops.size(); ++i)
        if (spec.usesDim(loops[i].dim))
            last = i + 1;
    double factor = 1.0;
    for (size_t i = 0; i < last; ++i)
        factor *= loops[i].trip;
    return factor;
}

} // namespace

CostResult
referenceEvaluate(const MapSpace &space, const Mapping &m)
{
    const AcceleratorSpec &arch = space.arch();
    const AlgorithmSpec &algo = *space.problem().algo;
    MM_ASSERT(space.isMember(m),
              "cost model requires a valid mapping: "
                  + space.validityError(m));

    const size_t tensors = algo.tensorCount();
    const double pes = double(m.usedPes());

    // Flattened temporal loop prefixes.
    std::vector<TemporalLoop> dramBlock, aboveL1, allTemporal;
    appendBlock(dramBlock, m, MemLevel::DRAM);
    aboveL1 = dramBlock;
    appendBlock(aboveL1, m, MemLevel::L2);
    allTemporal = aboveL1;
    appendBlock(allTemporal, m, MemLevel::L1);

    const auto e1 = m.extentsL1();
    const auto esp = m.extentsSpatial();
    const auto e2 = m.extentsL2();
    const auto full = m.extentsFull();

    CostResult res;
    res.access.resize(tensors);
    res.energyPj.resize(tensors);

    res.paddedMacs = 1.0;
    for (int64_t f : full)
        res.paddedMacs *= double(f);
    res.actualMacs = space.problem().totalMacs();

    for (size_t t = 0; t < tensors; ++t) {
        const TensorSpec &spec = algo.tensors[t];
        const double f1 = double(algo.tileFootprint(t, e1));
        const double fsp = double(algo.tileFootprint(t, esp));
        const double f2 = double(algo.tileFootprint(t, e2));
        const double ffull = double(algo.tileFootprint(t, full));

        const double rfDram = reloadFactor(spec, dramBlock);
        const double rfL2 = reloadFactor(spec, aboveL1);
        const double rfL1 = reloadFactor(spec, allTemporal);

        auto &acc = res.access[t];
        if (!spec.isOutput) {
            // DRAM read port serves L2 tiles; L2 serves the multicast
            // union of per-PE tiles; L1 serves one-word operand latches.
            acc[size_t(MemLevel::DRAM)].reads = f2 * rfDram;
            acc[size_t(MemLevel::L2)].writes = f2 * rfDram;
            acc[size_t(MemLevel::L2)].reads = fsp * rfL2;
            acc[size_t(MemLevel::L1)].writes = pes * f1 * rfL2;
            acc[size_t(MemLevel::L1)].reads = pes * rfL1;
            res.nocWords += pes * f1 * rfL2;
        } else {
            // Updates flow upward; reads = updates - first writes
            // (read-modify-write of partial sums).
            const double updL1 = pes * rfL1;
            const double firstL1 = pes * f1 * rfL2;
            acc[size_t(MemLevel::L1)].writes = updL1;
            acc[size_t(MemLevel::L1)].reads =
                std::max(0.0, updL1 - firstL1);

            const double updL2 = fsp * rfL2;
            const double firstL2 = f2 * rfDram;
            acc[size_t(MemLevel::L2)].writes = updL2;
            acc[size_t(MemLevel::L2)].reads =
                std::max(0.0, updL2 - firstL2);

            const double updDram = f2 * rfDram;
            acc[size_t(MemLevel::DRAM)].writes = updDram;
            acc[size_t(MemLevel::DRAM)].reads =
                std::max(0.0, updDram - ffull);

            res.nocWords += pes * f1 * rfL2;
        }

        for (int lvl = 0; lvl < kNumMemLevels; ++lvl)
            res.energyPj[t][size_t(lvl)] =
                acc[size_t(lvl)].total()
                * arch.levels[size_t(lvl)].energyPerWordPj;
    }

    res.macEnergyPj = res.paddedMacs * arch.macEnergyPj;
    res.nocEnergyPj = res.nocWords * arch.nocEnergyPerWordPj;
    res.totalEnergyPj = res.macEnergyPj + res.nocEnergyPj;
    for (const auto &perLevel : res.energyPj)
        for (double e : perLevel)
            res.totalEnergyPj += e;

    // Delay: compute-bound or bandwidth-bound, whichever dominates.
    res.computeCycles =
        res.paddedMacs / (pes * double(arch.macsPerPePerCycle));
    for (int lvl = 0; lvl < kNumMemLevels; ++lvl) {
        double words = 0.0;
        for (size_t t = 0; t < tensors; ++t)
            words += res.access[t][size_t(lvl)].total();
        const MemLevelSpec &spec = arch.levels[size_t(lvl)];
        double bw = spec.bandwidthWordsPerCycle;
        if (spec.perPe)
            words /= std::max(pes, 1.0);
        res.bandwidthCycles[size_t(lvl)] = words / bw;
    }
    res.cycles = std::max({res.computeCycles,
                           res.bandwidthCycles[0],
                           res.bandwidthCycles[1],
                           res.bandwidthCycles[2]});
    res.utilization =
        res.actualMacs / (res.cycles * arch.peakMacsPerCycle());
    return res;
}

} // namespace mm
