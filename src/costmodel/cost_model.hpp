/**
 * @file
 * Analytical accelerator cost model (the paper's cost function f,
 * standing in for Timeloop [68]; see DESIGN.md for the substitution
 * rationale).
 *
 * The model analyzes the loop nest a mapping induces
 * (DRAM -> L2 -> spatial -> L1 -> MAC) with classic stationarity
 * ("reload factor") reasoning:
 *
 *   reads out of level L for tensor T
 *     = (child-resident footprint of T) x rf(T, temporal loops above the
 *        child's residency point)
 *
 * where rf is the product of trip counts of all loops down to and
 * including the innermost T-relevant loop — the trailing run of
 * T-irrelevant loops contributes stationarity (free reuse). Outputs use
 * the mirrored update/read-modify-write form: reads = updates - first
 * writes. Spatial fan-out affects footprints (multicast unions, computed
 * halo-aware) and PE counts but is not a temporal loop.
 *
 * Energy sums per-level accesses, MACs and NoC deliveries; delay is the
 * max of compute and per-level bandwidth cycles; the optimization
 * objective is EDP (Section 5.1.2). The iteration space is the *padded*
 * bound, so over-approximate factorizations are charged for their
 * padding.
 *
 * Execution is a two-stage pipeline (costmodel/descriptor.hpp):
 *
 *   1. Lowering compiles each Mapping into one lane of a packed,
 *      structure-of-arrays DescriptorBlock — flattened temporal trip
 *      counts with per-loop dimension bitmasks, extents at the four
 *      residency points, and the spatial fan-out — validating map-space
 *      membership with an allocation-free mirror of
 *      MapSpace::validityError.
 *   2. A branch-free kernel evaluates each lane with mask-driven
 *      selects over prefix trip products (no data-dependent branches in
 *      the cost arithmetic) into fixed-size POD results.
 *
 * The batch entry points (evaluateBatch / edpBatch /
 * normalizedEdpBatch) run that pipeline over fixed-size chunks —
 * optionally fanned out over a ParallelContext — and are bitwise
 * identical to the scalar path at any batch size and lane count, because
 * the kernel replays the scalar arithmetic operation for operation;
 * scalar evaluate() itself is a batch of one. Consumers that evaluate
 * streams of mappings (Phase-1 dataset labeling, the baseline
 * searchers) should prefer the batch calls: lowering amortizes the
 * membership walk, and the kernel runs allocation-free.
 */
#pragma once

#include <array>
#include <span>
#include <vector>

#include "costmodel/descriptor.hpp"
#include "costmodel/lower_bound.hpp"
#include "mapping/map_space.hpp"

namespace mm {

class ParallelContext;

/** Read/write word counts of one tensor at one memory level. */
struct TensorLevelAccess
{
    double reads = 0.0;
    double writes = 0.0;

    double total() const { return reads + writes; }
};

/** Full evaluation result; metaStats() is the surrogate's target vector. */
struct CostResult
{
    /** access[t][lvl], lvl indexed by MemLevel. */
    std::vector<std::array<TensorLevelAccess, kNumMemLevels>> access;
    /** Per-level access energy per tensor, same indexing (pJ). */
    std::vector<std::array<double, kNumMemLevels>> energyPj;

    double nocWords = 0.0;
    double paddedMacs = 0.0;
    double actualMacs = 0.0;

    double macEnergyPj = 0.0;
    double nocEnergyPj = 0.0;
    double totalEnergyPj = 0.0;

    double computeCycles = 0.0;
    std::array<double, kNumMemLevels> bandwidthCycles{};
    double cycles = 0.0;

    /** actualMacs / (cycles * peak MACs/cycle), in [0, 1]. */
    double utilization = 0.0;

    /** Energy-delay product in pJ x cycles (1 cycle = 1 ns at 1 GHz). */
    double edp() const { return totalEnergyPj * cycles; }

    /**
     * The paper's rich output representation (Section 4.1.3/5.5):
     * per-tensor per-level energy, then total energy, utilization and
     * cycles. 12 values for CNN-Layer, 15 for MTTKRP.
     */
    std::vector<double> metaStats() const;

    /** metaStats() into a reused vector (no allocation at capacity). */
    void metaStats(std::vector<double> &out) const;

    /** Number of meta-statistics for a T-tensor problem: 3T + 3. */
    static size_t metaStatCount(size_t tensorCount);
};

/** Evaluates mappings of one map space. */
class CostModel
{
  public:
    explicit CostModel(const MapSpace &space);

    /** The map space is captured by reference: forbid temporaries. */
    explicit CostModel(MapSpace &&) = delete;

    const MapSpace &space() const { return *mapSpace; }

    /** Full evaluation; the mapping must be a valid member. */
    CostResult evaluate(const Mapping &m) const;

    /**
     * Full evaluation into a reused result: the access/energy vectors
     * are resized in place, so repeated calls on the same CostResult
     * never touch the allocator after the first.
     */
    void evaluate(const Mapping &m, CostResult &out) const;

    /** Shorthand for evaluate(m).edp(). */
    double edp(const Mapping &m) const;

    /** EDP normalized to the algorithmic minimum (Section 5.2). */
    double normalizedEdp(const Mapping &m) const;

    /**
     * Evaluate a batch of mappings: results[i] = evaluate(mappings[i]),
     * bitwise, for every i. Work proceeds in fixed-size chunks (one
     * descriptor block each); when @p par is non-null the chunks fan
     * out over its lanes, and because every lane writes disjoint
     * results the output is bitwise lane-invariant.
     */
    void evaluateBatch(std::span<const Mapping> mappings,
                       std::span<CostResult> results,
                       ParallelContext *par = nullptr) const;

    /** Pointer-indirected batch: scatter/gather without copying rows. */
    void evaluateBatch(std::span<const Mapping *const> mappings,
                       std::span<CostResult *const> results,
                       ParallelContext *par = nullptr) const;

    /** edp(m) per mapping without materializing full CostResults. */
    void edpBatch(std::span<const Mapping> mappings,
                  std::span<double> out,
                  ParallelContext *par = nullptr) const;

    /** Pointer-indirected edpBatch. */
    void edpBatch(std::span<const Mapping *const> mappings,
                  std::span<double> out,
                  ParallelContext *par = nullptr) const;

    /** normalizedEdp(m) per mapping, batch form. */
    void normalizedEdpBatch(std::span<const Mapping> mappings,
                            std::span<double> out,
                            ParallelContext *par = nullptr) const;

    /** Pointer-indirected normalizedEdpBatch. */
    void normalizedEdpBatch(std::span<const Mapping *const> mappings,
                            std::span<double> out,
                            ParallelContext *par = nullptr) const;

    /** The (possibly unachievable) algorithmic minimum (Appendix A). */
    const LowerBound &lowerBound() const { return bound; }

  private:
    const MapSpace *mapSpace;
    LowerBound bound;
    /** Stage-1/2 compile of the map space (descriptor.hpp). */
    CostTables tables;
};

} // namespace mm
