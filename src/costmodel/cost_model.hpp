/**
 * @file
 * Analytical accelerator cost model (the paper's cost function f,
 * standing in for Timeloop [68]; see DESIGN.md for the substitution
 * rationale).
 *
 * The model analyzes the loop nest a mapping induces
 * (DRAM -> L2 -> spatial -> L1 -> MAC) with classic stationarity
 * ("reload factor") reasoning:
 *
 *   reads out of level L for tensor T
 *     = (child-resident footprint of T) x rf(T, temporal loops above the
 *        child's residency point)
 *
 * where rf is the product of trip counts of all loops down to and
 * including the innermost T-relevant loop — the trailing run of
 * T-irrelevant loops contributes stationarity (free reuse). Outputs use
 * the mirrored update/read-modify-write form: reads = updates - first
 * writes. Spatial fan-out affects footprints (multicast unions, computed
 * halo-aware) and PE counts but is not a temporal loop.
 *
 * Energy sums per-level accesses, MACs and NoC deliveries; delay is the
 * max of compute and per-level bandwidth cycles; the optimization
 * objective is EDP (Section 5.1.2). The iteration space is the *padded*
 * bound, so over-approximate factorizations are charged for their
 * padding.
 */
#pragma once

#include <array>
#include <vector>

#include "costmodel/lower_bound.hpp"
#include "mapping/map_space.hpp"

namespace mm {

/** Read/write word counts of one tensor at one memory level. */
struct TensorLevelAccess
{
    double reads = 0.0;
    double writes = 0.0;

    double total() const { return reads + writes; }
};

/** Full evaluation result; metaStats() is the surrogate's target vector. */
struct CostResult
{
    /** access[t][lvl], lvl indexed by MemLevel. */
    std::vector<std::array<TensorLevelAccess, kNumMemLevels>> access;
    /** Per-level access energy per tensor, same indexing (pJ). */
    std::vector<std::array<double, kNumMemLevels>> energyPj;

    double nocWords = 0.0;
    double paddedMacs = 0.0;
    double actualMacs = 0.0;

    double macEnergyPj = 0.0;
    double nocEnergyPj = 0.0;
    double totalEnergyPj = 0.0;

    double computeCycles = 0.0;
    std::array<double, kNumMemLevels> bandwidthCycles{};
    double cycles = 0.0;

    /** actualMacs / (cycles * peak MACs/cycle), in [0, 1]. */
    double utilization = 0.0;

    /** Energy-delay product in pJ x cycles (1 cycle = 1 ns at 1 GHz). */
    double edp() const { return totalEnergyPj * cycles; }

    /**
     * The paper's rich output representation (Section 4.1.3/5.5):
     * per-tensor per-level energy, then total energy, utilization and
     * cycles. 12 values for CNN-Layer, 15 for MTTKRP.
     */
    std::vector<double> metaStats() const;

    /** Number of meta-statistics for a T-tensor problem: 3T + 3. */
    static size_t metaStatCount(size_t tensorCount);
};

/** Evaluates mappings of one map space. */
class CostModel
{
  public:
    explicit CostModel(const MapSpace &space);

    /** The map space is captured by reference: forbid temporaries. */
    explicit CostModel(MapSpace &&) = delete;

    const MapSpace &space() const { return *mapSpace; }

    /** Full evaluation; the mapping must be a valid member. */
    CostResult evaluate(const Mapping &m) const;

    /** Shorthand for evaluate(m).edp(). */
    double edp(const Mapping &m) const;

    /** EDP normalized to the algorithmic minimum (Section 5.2). */
    double normalizedEdp(const Mapping &m) const;

    /** The (possibly unachievable) algorithmic minimum (Appendix A). */
    const LowerBound &lowerBound() const { return bound; }

  private:
    const MapSpace *mapSpace;
    LowerBound bound;
};

} // namespace mm
