#include "core/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <optional>

#include "common/string_util.hpp"
#include "common/thread_pool.hpp"
#include "core/feature_transform.hpp"
#include "core/shard_store.hpp"
#include "costmodel/cost_model.hpp"

namespace mm {

namespace {

/** Everything needed to sample and label mappings of one problem. */
struct ProblemContext
{
    Problem problem;
    MapSpace space;
    CostModel model;
    MappingCodec codec;

    ProblemContext(const AcceleratorSpec &arch, Problem p)
        : problem(std::move(p)), space(arch, problem), model(space),
          codec(space)
    {}
};

/** Reused per-sample scratch of the elite best-of-k draw. */
struct EliteScratch
{
    std::vector<Mapping> candidates;
    std::vector<const Mapping *> mapPtrs;
    std::vector<double> edps;
};

thread_local EliteScratch tlsElite;

thread_local std::vector<double> tlsStats;

/**
 * Shared labeling core of the in-RAM and streamed paths: the problem
 * pool plus the blocked sample/evaluate/write pipeline. Both paths
 * construct it from the same Rng in the same order and then label each
 * sample from a seed forked in global sample order, which is what makes
 * the two paths (and any lane count, and any block size) bitwise
 * identical.
 *
 * Labeling one block runs in three phases:
 *   A. sampleRow() per row (parallel): replay the per-sample RNG
 *      stream — context pick, base draw, optional elite best-of-k —
 *      and encode the features.
 *   B. One CostModel::evaluateBatch per distinct problem context over
 *      the block's rows for that context (pointer-gathered, row
 *      order), instead of one scalar evaluate per row.
 *   C. writeTargets() per row (parallel): meta-stats, lower-bound
 *      normalization, log conditioning.
 * Per-sample evaluation is deterministic and batch results are bitwise
 * identical to scalar evaluation, so the pipeline produces the exact
 * bytes of the historical per-sample label() loop.
 */
struct DatasetBuilder
{
    std::vector<std::unique_ptr<ProblemContext>> pool;
    FeatureTransform transform{0};
    size_t features = 0;
    size_t outputs = 0;
    size_t tensors = 0;
    const DatasetConfig &cfg;

    DatasetBuilder(const AcceleratorSpec &arch, const AlgorithmSpec &algo,
                   const DatasetConfig &cfg_, Rng &rng)
        : cfg(cfg_)
    {
        MM_ASSERT(cfg.samples >= 10, "dataset too small");
        MM_ASSERT(cfg.testFraction >= 0.0 && cfg.testFraction < 1.0,
                  "bad test fraction");
        MM_ASSERT(cfg.eliteFraction >= 0.0 && cfg.eliteFraction <= 1.0,
                  "elite fraction out of range");
        MM_ASSERT(cfg.labelBlock >= 1, "labelBlock must be >= 1");
        if (!cfg.problems.empty()) {
            for (const Problem &p : cfg.problems) {
                MM_ASSERT(p.algo == &algo, "problem/algorithm mismatch");
                pool.push_back(std::make_unique<ProblemContext>(arch, p));
            }
        } else {
            for (size_t i = 0; i < cfg.problemCount; ++i)
                pool.push_back(std::make_unique<ProblemContext>(
                    arch, sampleRepresentativeProblem(algo, rng)));
        }
        features = pool.front()->codec.featureCount();
        tensors = algo.tensorCount();
        outputs = cfg.metaStatOutputs ? CostResult::metaStatCount(tensors)
                                      : 1;
        transform = FeatureTransform{pool.front()->codec.orderOffset()};
    }

    /** Reused cross-phase storage of one labeling block. */
    struct LabelScratch
    {
        std::vector<Mapping> maps;
        std::vector<uint32_t> ctxOf;
        std::vector<CostResult> results;
        std::vector<const Mapping *> mapPtrs;
        std::vector<CostResult *> resPtrs;
    };

    /** Phase A: replay one sample's forked RNG stream — context pick,
     * base draw, elite best-of-k — and encode its features.
     * Thread-safe: the pool's entry points are all const. */
    void
    sampleRow(uint64_t seed, std::span<float> xRow, Mapping &m,
              uint32_t &ctxIdx) const
    {
        Rng srng(seed);
        ctxIdx = uint32_t(srng.uniformInt(0, int64_t(pool.size()) - 1));
        const ProblemContext &ctx = *pool[ctxIdx];
        m = ctx.space.randomValid(srng);
        if (cfg.eliteFraction > 0.0 && srng.bernoulli(cfg.eliteFraction)) {
            // Best-of-k draw: biases coverage toward the low-EDP tail.
            // Candidates are drawn up front (evaluation consumes no
            // RNG, so the stream matches the historical interleaved
            // loop), scored in one edpBatch, and reduced by the same
            // strict-< running argmin the sequential comparisons ran.
            EliteScratch &es = tlsElite;
            es.candidates.clear();
            for (int c = 1; c < cfg.eliteCandidates; ++c)
                es.candidates.push_back(ctx.space.randomValid(srng));
            es.mapPtrs.clear();
            es.mapPtrs.push_back(&m);
            for (const Mapping &cand : es.candidates)
                es.mapPtrs.push_back(&cand);
            es.edps.resize(es.mapPtrs.size());
            ctx.model.edpBatch(
                std::span<const Mapping *const>(es.mapPtrs),
                std::span<double>(es.edps));
            size_t best = 0;
            for (size_t c = 1; c < es.edps.size(); ++c)
                if (es.edps[c] < es.edps[best])
                    best = c;
            if (best > 0)
                m = std::move(es.candidates[best - 1]);
        }
        auto feat = ctx.codec.encode(m);
        transform.apply(feat);
        for (size_t c = 0; c < features; ++c)
            xRow[c] = float(feat[c]);
    }

    /** Phase C: one row's targets from its evaluated result. */
    void
    writeTargets(uint32_t ctxIdx, const CostResult &res,
                 std::span<float> yRow) const
    {
        const LowerBound &lb = pool[ctxIdx]->model.lowerBound();
        if (cfg.metaStatOutputs) {
            std::vector<double> &stats = tlsStats;
            res.metaStats(stats);
            normalizeMetaStatsByBound(stats, tensors, lb.energyPj,
                                      lb.cycles);
            logTransformOutputs(stats);
            for (size_t c = 0; c < outputs; ++c)
                yRow[c] = float(stats[c]);
        } else {
            yRow[0] = float(std::log(res.edp() / lb.edp()));
        }
    }

    /** Label rows [rowBase, rowBase + seeds.size()) of @p x / @p y. */
    void
    labelBlock(std::span<const uint64_t> seeds, Matrix &x, Matrix &y,
               size_t rowBase, ParallelContext *par,
               LabelScratch &scratch) const
    {
        const size_t n = seeds.size();
        scratch.maps.resize(n);
        scratch.ctxOf.resize(n);
        scratch.results.resize(n);

        auto sample = [&](size_t i) {
            sampleRow(seeds[i], x.row(rowBase + i), scratch.maps[i],
                      scratch.ctxOf[i]);
        };
        if (par != nullptr)
            par->parallelFor(n, sample);
        else
            for (size_t i = 0; i < n; ++i)
                sample(i);

        // One batch per problem context, rows gathered in order.
        for (uint32_t c = 0; c < uint32_t(pool.size()); ++c) {
            scratch.mapPtrs.clear();
            scratch.resPtrs.clear();
            for (size_t i = 0; i < n; ++i) {
                if (scratch.ctxOf[i] == c) {
                    scratch.mapPtrs.push_back(&scratch.maps[i]);
                    scratch.resPtrs.push_back(&scratch.results[i]);
                }
            }
            if (scratch.mapPtrs.empty())
                continue;
            pool[c]->model.evaluateBatch(
                std::span<const Mapping *const>(scratch.mapPtrs),
                std::span<CostResult *const>(scratch.resPtrs), par);
        }

        auto targets = [&](size_t i) {
            writeTargets(scratch.ctxOf[i], scratch.results[i],
                         y.row(rowBase + i));
        };
        if (par != nullptr)
            par->parallelFor(n, targets);
        else
            for (size_t i = 0; i < n; ++i)
                targets(i);
    }
};

/** Train/test split sizes for @p cfg. */
void
splitRows(const DatasetConfig &cfg, size_t &trainRows, size_t &testRows)
{
    testRows = size_t(double(cfg.samples) * cfg.testFraction);
    trainRows = cfg.samples - testRows;
    MM_ASSERT(trainRows > 0, "empty training split");
}

/**
 * Identity of a streamed dataset: every knob that changes its bytes.
 * Shards and manifest from a different config never validate, so stale
 * stream directories are regenerated instead of silently reused.
 */
uint64_t
datasetConfigHash(const AcceleratorSpec &arch, const AlgorithmSpec &algo,
                  const DatasetConfig &cfg)
{
    std::string probs;
    for (const Problem &p : cfg.problems)
        probs += join(p.bounds, "x") + ";";
    return fnv1a64(strCat(
        "ds|", arch.name, "|", algo.name, "|n=", cfg.samples,
        "|tf=", cfg.testFraction, "|pc=", cfg.problemCount, "|probs=", probs,
        "|meta=", cfg.metaStatOutputs, "|elite=", cfg.eliteFraction,
        "|ec=", cfg.eliteCandidates, "|seed=", cfg.seed,
        "|shard=", cfg.shardSize));
}

} // namespace

void
normalizeMetaStatsByBound(std::vector<double> &stats, size_t tensorCount,
                          double lbEnergyPj, double lbCycles)
{
    const size_t energyTerms = tensorCount * size_t(kNumMemLevels);
    MM_ASSERT(stats.size() == energyTerms + 3, "meta-stat arity mismatch");
    for (size_t i = 0; i < energyTerms; ++i)
        stats[i] /= lbEnergyPj;
    stats[energyTerms] /= lbEnergyPj;     // total energy
    /* stats[energyTerms + 1] : utilization stays unnormalized */
    stats[energyTerms + 2] /= lbCycles;   // total cycles
}

SurrogateDataset
generateDataset(const AcceleratorSpec &arch, const AlgorithmSpec &algo,
                const DatasetConfig &cfg, ParallelContext *par)
{
    Rng rng(cfg.seed);
    DatasetBuilder builder(arch, algo, cfg, rng);
    const size_t features = builder.features;
    const size_t outputs = builder.outputs;

    Matrix x(cfg.samples, features);
    Matrix y(cfg.samples, outputs);

    // Every sample draws from its own stream, forked in sample order on
    // this thread: labeling fans out over the context's lanes (sampling
    // and cost-model evaluation dominate Phase-1 wall time) yet the
    // dataset is bitwise identical at any lane count. Contexts are
    // read-only during labeling (all their entry points are const).
    // Only the 8-byte fork seeds are materialized — full engine states
    // would be ~2.5 KB per sample, gigabytes at paper scale.
    std::vector<uint64_t> sampleSeeds;
    sampleSeeds.reserve(cfg.samples);
    for (size_t i = 0; i < cfg.samples; ++i)
        sampleSeeds.push_back(rng.forkSeed());

    DatasetBuilder::LabelScratch scratch;
    for (size_t start = 0; start < cfg.samples; start += cfg.labelBlock) {
        const size_t len = std::min(cfg.labelBlock, cfg.samples - start);
        builder.labelBlock(
            std::span<const uint64_t>(sampleSeeds).subspan(start, len), x,
            y, start, par, scratch);
    }

    // Split, then fit normalizers on the training rows only.
    size_t trainRows = 0, testRows = 0;
    splitRows(cfg, trainRows, testRows);

    SurrogateDataset ds;
    ds.featureCount = features;
    ds.outputCount = outputs;
    ds.featureLogPrefix = builder.transform.logPrefix;
    ds.xTrain.resize(trainRows, features);
    ds.yTrain.resize(trainRows, outputs);
    ds.xTest.resize(testRows, features);
    ds.yTest.resize(testRows, outputs);
    for (size_t r = 0; r < trainRows; ++r) {
        std::copy(x.row(r).begin(), x.row(r).end(),
                  ds.xTrain.row(r).begin());
        std::copy(y.row(r).begin(), y.row(r).end(),
                  ds.yTrain.row(r).begin());
    }
    for (size_t r = 0; r < testRows; ++r) {
        std::copy(x.row(trainRows + r).begin(), x.row(trainRows + r).end(),
                  ds.xTest.row(r).begin());
        std::copy(y.row(trainRows + r).begin(), y.row(trainRows + r).end(),
                  ds.yTest.row(r).begin());
    }

    ds.inputNorm = Normalizer::fit(ds.xTrain);
    ds.outputNorm = Normalizer::fit(ds.yTrain);
    ds.inputNorm.applyInPlace(ds.xTrain);
    ds.outputNorm.applyInPlace(ds.yTrain);
    if (testRows > 0) {
        ds.inputNorm.applyInPlace(ds.xTest);
        ds.outputNorm.applyInPlace(ds.yTest);
    }
    return ds;
}

StreamedDataset
generateDatasetStreamed(const AcceleratorSpec &arch,
                        const AlgorithmSpec &algo, const DatasetConfig &cfg,
                        ParallelContext *par)
{
    MM_ASSERT(!cfg.streamDir.empty(),
              "generateDatasetStreamed needs cfg.streamDir");
    MM_ASSERT(cfg.shardSize > 0, "shard size must be positive");

    size_t trainRows = 0, testRows = 0;
    splitRows(cfg, trainRows, testRows);
    const uint64_t configHash = datasetConfigHash(arch, algo, cfg);

    auto asResult = [&](const ShardManifest &m, bool reused) {
        StreamedDataset sd;
        sd.dir = cfg.streamDir;
        sd.inputNorm = m.inputNorm;
        sd.outputNorm = m.outputNorm;
        sd.featureCount = size_t(m.layout.features);
        sd.outputCount = size_t(m.layout.outputs);
        sd.featureLogPrefix = size_t(m.layout.featureLogPrefix);
        sd.trainRows = size_t(m.layout.trainRows);
        sd.testRows = size_t(m.layout.testRows);
        sd.shardSize = size_t(m.layout.shardSize);
        sd.shardCount = size_t(m.layout.shardCount);
        sd.reused = reused;
        return sd;
    };

    // Reuse-on-restart fast path: a committed store for this exact
    // config is the dataset (generation is deterministic). Every shard
    // must still be present AND claim this config in its header (a
    // cheap peek, no checksum pass) — a store with deleted or foreign
    // shards falls through and regenerates just the bad ones.
    if (auto m = ShardedDatasetReader::tryReadManifest(cfg.streamDir)) {
        bool complete = m->layout.configHash == configHash;
        for (size_t s = 0; complete && s < size_t(m->layout.shardCount);
             ++s)
            complete = peekShardConfigHash(cfg.streamDir, s) == configHash;
        if (complete)
            return asResult(*m, true);
        // Different config or incomplete store: drop the manifest
        // FIRST (it is the commit point — leaving it while shards are
        // rewritten would let a crashed regeneration masquerade as a
        // committed store for the old config), then fall through and
        // regenerate; shards that don't validate against this config
        // hash are rewritten, valid ones are kept.
        std::error_code ec;
        std::filesystem::remove(manifestPath(cfg.streamDir), ec);
    }

    Rng rng(cfg.seed);
    DatasetBuilder builder(arch, algo, cfg, rng);
    // Snapshot the RNG right after builder construction: shard s's
    // sample seeds are forkSeed() draws [s*shardSize, ...) from this
    // state, so a corrupt shard can be re-derived later — O(1) memory,
    // a forkSeed replay per skipped row — without keeping every seed.
    const Rng rngAfterBuild = rng;

    ShardLayout layout;
    layout.rows = cfg.samples;
    layout.features = builder.features;
    layout.outputs = builder.outputs;
    layout.shardSize = cfg.shardSize;
    layout.shardCount = (cfg.samples + cfg.shardSize - 1) / cfg.shardSize;
    layout.trainRows = trainRows;
    layout.testRows = testRows;
    layout.featureLogPrefix = builder.transform.logPrefix;
    layout.configHash = configHash;
    ShardStoreWriter writer(cfg.streamDir, layout);

    // Label one shard's worth of samples at a time: peak memory is
    // O(shardSize) (two buffers when overlapping), and each committed
    // shard is a restart point. The seed-fork order is global sample
    // order, so shard contents match the rows the in-RAM path
    // produces, at any lane count.
    //
    // Double buffering: a background writer commits shard N while the
    // lanes label shard N+1 into the other buffer — serializing,
    // checksumming and fsync-free streaming of shard N ride under the
    // cost-model evaluations instead of adding to them. The writer is
    // FIFO and writes exactly the bytes the serial loop would, so the
    // store is byte-identical and crash resume keeps working at shard
    // granularity (a crash can at worst lose the one in-flight shard,
    // which a rerun relabels). Buffers are declared before the worker
    // so an unwinding exception drains the writer first.
    Matrix bufX[2], bufY[2];
    std::vector<uint64_t> seeds;
    DatasetBuilder::LabelScratch labelScratch;
    std::optional<SerialWorker> shardWriter;
    if (cfg.overlapStreamWrites)
        shardWriter.emplace();
    size_t cur = 0;
    for (size_t s = 0; s < size_t(layout.shardCount); ++s) {
        const size_t count = size_t(layout.shardRows(s));
        if (writer.shardValid(s)) {
            // Resume: the shard is already on disk; keep the RNG
            // stream aligned with the samples it covers.
            for (size_t i = 0; i < count; ++i)
                rng.forkSeed();
            continue;
        }
        seeds.clear();
        for (size_t i = 0; i < count; ++i)
            seeds.push_back(rng.forkSeed());
        if (shardWriter) {
            // At most one commit in flight: the task submitted two
            // iterations ago (the last user of this buffer) is done.
            shardWriter->throttle(1);
        }
        Matrix &bx = bufX[cur];
        Matrix &by = bufY[cur];
        bx.ensureShape(count, builder.features);
        by.ensureShape(count, builder.outputs);
        for (size_t start = 0; start < count; start += cfg.labelBlock) {
            const size_t len = std::min(cfg.labelBlock, count - start);
            builder.labelBlock(
                std::span<const uint64_t>(seeds).subspan(start, len), bx,
                by, start, par, labelScratch);
        }
        if (shardWriter) {
            shardWriter->submit(
                [&writer, s, &bx, &by] { writer.writeShard(s, bx, by); });
            cur ^= 1;
        } else {
            writer.writeShard(s, bx, by);
        }
    }
    if (shardWriter)
        shardWriter->drain();

    // Re-derive and rewrite shard @p s from the post-build RNG
    // snapshot — the crash-resume labeling, scoped to one shard.
    // Deterministic, so the regenerated bytes equal the lost ones.
    auto regenerateShard = [&](size_t s, Matrix &bx, Matrix &by) {
        Rng replay = rngAfterBuild;
        const size_t rowBegin = s * cfg.shardSize;
        for (size_t i = 0; i < rowBegin; ++i)
            replay.forkSeed();
        const size_t count = size_t(layout.shardRows(s));
        std::vector<uint64_t> shardSeeds;
        shardSeeds.reserve(count);
        for (size_t i = 0; i < count; ++i)
            shardSeeds.push_back(replay.forkSeed());
        bx.ensureShape(count, builder.features);
        by.ensureShape(count, builder.outputs);
        DatasetBuilder::LabelScratch scratch;
        for (size_t start = 0; start < count; start += cfg.labelBlock) {
            const size_t len = std::min(cfg.labelBlock, count - start);
            builder.labelBlock(
                std::span<const uint64_t>(shardSeeds).subspan(start, len),
                bx, by, start, par, scratch);
        }
        writer.writeShard(s, bx, by);
    };

    // Verified (and self-healing) read-back of shard @p s: transient
    // I/O faults retry with backoff; provably-bad bytes (short read,
    // checksum mismatch — e.g. an injected bit flip) are quarantined
    // and the shard is regenerated in place, capped so persistent
    // corruption (a dying disk) still surfaces as a typed error.
    const RetryPolicy readBackPolicy = RetryPolicy::fromEnv();
    auto readShardHealed = [&](size_t s, Matrix &sx, Matrix &sy) {
        for (int heals = 0;; ++heals) {
            try {
                retryTransient(readBackPolicy, [&] {
                    ShardReadError err;
                    if (!readShardFile(cfg.streamDir, s, layout, sx, sy,
                                       &err))
                        throwShardReadError(cfg.streamDir, s, err);
                });
                return;
            } catch (const CorruptionError &e) {
                if (e.kind() == CorruptionError::Kind::BadHeader
                    || heals >= 2)
                    throw;
                quarantineShard(cfg.streamDir, s);
            }
            regenerateShard(s, sx, sy);
        }
    };

    // Single streaming-moments pass over the training rows — bitwise
    // the same normalizers Normalizer::fit computes on the in-RAM
    // split (each column's accumulator sees the same value sequence).
    // Reading back through the verified path also re-checks every
    // training shard's checksum before the store is committed.
    StreamingNormalizerFit xFit(builder.features);
    StreamingNormalizerFit yFit(builder.outputs);
    size_t lastVerifiedShard = 0;
    {
        Matrix sx, sy;
        for (size_t row = 0; row < trainRows;) {
            const size_t s = row / cfg.shardSize;
            readShardHealed(s, sx, sy);
            lastVerifiedShard = s;
            const size_t shardBegin = s * cfg.shardSize;
            const size_t last = std::min(trainRows, shardBegin + sx.rows());
            for (; row < last; ++row) {
                xFit.pushRow(sx.row(row - shardBegin));
                yFit.pushRow(sy.row(row - shardBegin));
            }
        }
        // The test-split shards past the fit pass get the same verify-
        // and-heal treatment: the manifest must never commit a store
        // with a corrupt shard anywhere, train or test.
        for (size_t s = lastVerifiedShard + 1;
             s < size_t(layout.shardCount); ++s)
            readShardHealed(s, sx, sy);
    }

    ShardManifest manifest;
    manifest.layout = layout;
    manifest.inputNorm = xFit.finish();
    manifest.outputNorm = yFit.finish();
    writer.commit(manifest.inputNorm, manifest.outputNorm);
    return asResult(manifest, false);
}

} // namespace mm
