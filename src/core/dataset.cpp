#include "core/dataset.hpp"

#include <cmath>
#include <memory>

#include "core/feature_transform.hpp"
#include "costmodel/cost_model.hpp"

namespace mm {

namespace {

/** Everything needed to sample and label mappings of one problem. */
struct ProblemContext
{
    Problem problem;
    MapSpace space;
    CostModel model;
    MappingCodec codec;

    ProblemContext(const AcceleratorSpec &arch, Problem p)
        : problem(std::move(p)), space(arch, problem), model(space),
          codec(space)
    {}
};

} // namespace

void
normalizeMetaStatsByBound(std::vector<double> &stats, size_t tensorCount,
                          double lbEnergyPj, double lbCycles)
{
    const size_t energyTerms = tensorCount * size_t(kNumMemLevels);
    MM_ASSERT(stats.size() == energyTerms + 3, "meta-stat arity mismatch");
    for (size_t i = 0; i < energyTerms; ++i)
        stats[i] /= lbEnergyPj;
    stats[energyTerms] /= lbEnergyPj;     // total energy
    /* stats[energyTerms + 1] : utilization stays unnormalized */
    stats[energyTerms + 2] /= lbCycles;   // total cycles
}

SurrogateDataset
generateDataset(const AcceleratorSpec &arch, const AlgorithmSpec &algo,
                const DatasetConfig &cfg, ParallelContext *par)
{
    MM_ASSERT(cfg.samples >= 10, "dataset too small");
    MM_ASSERT(cfg.testFraction >= 0.0 && cfg.testFraction < 1.0,
              "bad test fraction");
    Rng rng(cfg.seed);

    // Build the pool of map spaces to draw from.
    std::vector<std::unique_ptr<ProblemContext>> pool;
    if (!cfg.problems.empty()) {
        for (const Problem &p : cfg.problems) {
            MM_ASSERT(p.algo == &algo, "problem/algorithm mismatch");
            pool.push_back(std::make_unique<ProblemContext>(arch, p));
        }
    } else {
        for (size_t i = 0; i < cfg.problemCount; ++i)
            pool.push_back(std::make_unique<ProblemContext>(
                arch, sampleRepresentativeProblem(algo, rng)));
    }

    const size_t features = pool.front()->codec.featureCount();
    const size_t tensors = algo.tensorCount();
    const size_t outputs =
        cfg.metaStatOutputs ? CostResult::metaStatCount(tensors) : 1;

    const FeatureTransform transform{
        pool.front()->codec.orderOffset()};

    MM_ASSERT(cfg.eliteFraction >= 0.0 && cfg.eliteFraction <= 1.0,
              "elite fraction out of range");
    Matrix x(cfg.samples, features);
    Matrix y(cfg.samples, outputs);

    // Every sample draws from its own stream, forked in sample order on
    // this thread: labeling fans out over the context's lanes (sampling
    // and cost-model evaluation dominate Phase-1 wall time) yet the
    // dataset is bitwise identical at any lane count. Contexts are
    // read-only during labeling (all their entry points are const).
    // Only the 8-byte fork seeds are materialized — full engine states
    // would be ~2.5 KB per sample, gigabytes at paper scale.
    std::vector<uint64_t> sampleSeeds;
    sampleSeeds.reserve(cfg.samples);
    for (size_t i = 0; i < cfg.samples; ++i)
        sampleSeeds.push_back(rng.forkSeed());

    auto labelSample = [&](size_t i) {
        Rng srng(sampleSeeds[i]);
        ProblemContext &ctx = *pool[size_t(
            srng.uniformInt(0, int64_t(pool.size()) - 1))];
        Mapping m = ctx.space.randomValid(srng);
        if (cfg.eliteFraction > 0.0 && srng.bernoulli(cfg.eliteFraction)) {
            // Best-of-k draw: biases coverage toward the low-EDP tail.
            for (int c = 1; c < cfg.eliteCandidates; ++c) {
                Mapping cand = ctx.space.randomValid(srng);
                if (ctx.model.edp(cand) < ctx.model.edp(m))
                    m = std::move(cand);
            }
        }
        auto feat = ctx.codec.encode(m);
        transform.apply(feat);
        for (size_t c = 0; c < features; ++c)
            x(i, c) = float(feat[c]);

        CostResult res = ctx.model.evaluate(m);
        const LowerBound &lb = ctx.model.lowerBound();
        if (cfg.metaStatOutputs) {
            auto stats = res.metaStats();
            normalizeMetaStatsByBound(stats, tensors, lb.energyPj,
                                      lb.cycles);
            logTransformOutputs(stats);
            for (size_t c = 0; c < outputs; ++c)
                y(i, c) = float(stats[c]);
        } else {
            y(i, 0) = float(std::log(res.edp() / lb.edp()));
        }
    };
    if (par != nullptr)
        par->parallelFor(cfg.samples, labelSample);
    else
        for (size_t i = 0; i < cfg.samples; ++i)
            labelSample(i);

    // Split, then fit normalizers on the training rows only.
    size_t testRows = size_t(double(cfg.samples) * cfg.testFraction);
    size_t trainRows = cfg.samples - testRows;
    MM_ASSERT(trainRows > 0, "empty training split");

    SurrogateDataset ds;
    ds.featureCount = features;
    ds.outputCount = outputs;
    ds.featureLogPrefix = transform.logPrefix;
    ds.xTrain.resize(trainRows, features);
    ds.yTrain.resize(trainRows, outputs);
    ds.xTest.resize(testRows, features);
    ds.yTest.resize(testRows, outputs);
    for (size_t r = 0; r < trainRows; ++r) {
        std::copy(x.row(r).begin(), x.row(r).end(),
                  ds.xTrain.row(r).begin());
        std::copy(y.row(r).begin(), y.row(r).end(),
                  ds.yTrain.row(r).begin());
    }
    for (size_t r = 0; r < testRows; ++r) {
        std::copy(x.row(trainRows + r).begin(), x.row(trainRows + r).end(),
                  ds.xTest.row(r).begin());
        std::copy(y.row(trainRows + r).begin(), y.row(trainRows + r).end(),
                  ds.yTest.row(r).begin());
    }

    ds.inputNorm = Normalizer::fit(ds.xTrain);
    ds.outputNorm = Normalizer::fit(ds.yTrain);
    ds.inputNorm.applyInPlace(ds.xTrain);
    ds.outputNorm.applyInPlace(ds.yTrain);
    if (testRows > 0) {
        ds.inputNorm.applyInPlace(ds.xTest);
        ds.outputNorm.applyInPlace(ds.yTest);
    }
    return ds;
}

} // namespace mm
