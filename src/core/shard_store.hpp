/**
 * @file
 * Out-of-core storage for the Phase-1 training set.
 *
 * The paper trains its surrogate on ~10M labeled mappings (Section 4.1);
 * materializing that as two dense matrices needs multiple GB of RAM.
 * This subsystem writes labeled samples to fixed-size on-disk shards as
 * they are produced and reads them back in verified, bounded-memory
 * units, so Phase 1 is peak-RSS-bounded by O(shardSize), not O(samples).
 *
 * On-disk layout (all files little-endian, inside one stream directory):
 *
 *   shard-NNNNNN.mms   rows [N*shardSize, ...) of the dataset:
 *                      checksummed blob whose body is a fixed header
 *                      (shard index, row count, feature/output arity,
 *                      config hash) followed by the X block then the Y
 *                      block as raw floats.
 *   manifest.mms       written last, atomically: dataset shape, split
 *                      point, config hash and the fitted normalizers.
 *                      Its presence is the commit point — a directory
 *                      without a valid manifest is a partial run.
 *
 * Durability rules:
 *   - every file is written to a ".tmp" sibling and renamed into place
 *     (std::filesystem::rename is atomic on POSIX), so readers never
 *     observe a torn file;
 *   - every file carries a magic/version header and an FNV-1a checksum
 *     over its body; readers reject truncation, bit flips and
 *     wrong-version files with a clear diagnostic instead of
 *     deserializing garbage;
 *   - generation is restartable at shard granularity: shards that
 *     already validate for the same config hash are skipped on rerun.
 *
 * Concurrency & I/O:
 *   - shard files are read through MappedFile (common/mapped_file.hpp):
 *     the checksum is verified over the mapped bytes and the float
 *     payload is copied straight into its matrices — no stream-buffer
 *     or body-string intermediaries (MM_NO_MMAP=1 forces the portable
 *     read fallback);
 *   - ShardedDatasetReader's decoded-shard cache is a sharded LRU
 *     (independently locked ways, shared_ptr-pinned entries), so
 *     mini-batch gathers fan out over ParallelContext lanes and an
 *     optional background thread (MM_PREFETCH_SHARDS) warms upcoming
 *     shards while the trainer computes.
 */
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include "common/mutex.hpp"
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "common/thread_pool.hpp"
#include "core/normalizer.hpp"
#include "nn/trainer.hpp"
#include "tensor/matrix.hpp"

namespace mm {

// ---------------------------------------------------------------------------
// Checksummed-blob envelope (shared by shards, the manifest and the
// surrogate cache).
// ---------------------------------------------------------------------------

/** FNV-1a offset basis. */
inline constexpr uint64_t kFnvOffset = 1469598103934665603ULL;

/** Incremental FNV-1a over @p n bytes, seedable for chaining. */
uint64_t fnv1a64(const void *data, size_t n, uint64_t h = kFnvOffset);

/** FNV-1a of a string. */
uint64_t fnv1a64(const std::string &s);

/**
 * Write `[magic][version][u64 bodySize][body][u64 fnv(body)][~magic]`
 * to @p os.
 */
void writeChecksummedBlob(std::ostream &os, uint32_t magic,
                          uint32_t version, const std::string &body);

/**
 * Read and verify a blob written by writeChecksummedBlob. Returns the
 * body, or std::nullopt with a human-readable reason in @p err (bad
 * magic, unsupported version, truncated stream, size or checksum
 * mismatch, trailing bytes when @p expectEof).
 */
std::optional<std::string> readChecksummedBlob(std::istream &is,
                                               uint32_t magic,
                                               uint32_t version,
                                               std::string *err,
                                               bool expectEof = true);

/**
 * Classified failure of a checksummed-blob read — the triage input
 * quarantine decisions need. A ShortRead (file shorter than its
 * declared contents: truncation or a lost final write) and a Checksum
 * failure (bytes all present but disagreeing: bit flip or torn write)
 * both prove the content is bad; a BadHeader may simply be a foreign
 * or future-version file and must not be destroyed.
 */
struct BlobReadError
{
    enum class Kind
    {
        None,
        BadHeader, ///< magic/version/footer malformed or trailing bytes
        ShortRead, ///< file shorter than its declared contents
        Checksum,  ///< body present but its checksum disagrees
    };
    Kind kind = Kind::None;
    std::string message;
    uint64_t expectedChecksum = 0; ///< set for Kind::Checksum
    uint64_t actualChecksum = 0;   ///< set for Kind::Checksum
};

/**
 * Zero-copy variant over an in-memory file image (e.g. a MappedFile):
 * verifies the same envelope with the same diagnostics and returns a
 * view of the body *inside* @p file — nothing is copied, so the
 * checksum pass is the only walk over the bytes. The view is valid for
 * the lifetime of @p file's storage. Trailing bytes after the footer
 * are always rejected (a file image has no "rest of the stream").
 */
std::optional<std::span<const char>>
readChecksummedBlobView(std::span<const char> file, uint32_t magic,
                        uint32_t version, BlobReadError *err);

/** Convenience overload keeping the old message-only contract. */
std::optional<std::span<const char>>
readChecksummedBlobView(std::span<const char> file, uint32_t magic,
                        uint32_t version, std::string *err);

/** Why a commitFileAtomic call failed (valid when it returned false). */
struct CommitFailure
{
    std::string sysCall; ///< "open", "write", "rename"
    int errnoValue = 0;
    std::string detail;
};

/**
 * The shared commit protocol for every durable file in this codebase:
 * stream @p writeBody into a unique ".tmp" sibling of @p path, then
 * atomically rename into place, so concurrent writers never share a
 * tmp file and readers never observe a torn write. Returns false
 * (after removing the tmp) on any failure, with the failed syscall and
 * errno in @p failure when provided — callers choose whether that is
 * fatal (dataset shards) or best-effort (the surrogate cache).
 * Injected write faults (fault_injection.hpp) surface here exactly
 * like real ones.
 */
bool commitFileAtomic(const std::string &path,
                      const std::function<void(std::ostream &)> &writeBody,
                      CommitFailure *failure = nullptr);

// ---------------------------------------------------------------------------
// Shard store
// ---------------------------------------------------------------------------

/** Shape and identity of a sharded dataset. */
struct ShardLayout
{
    uint64_t rows = 0;       ///< total samples (train + test)
    uint64_t features = 0;   ///< X columns
    uint64_t outputs = 0;    ///< Y columns
    uint64_t shardSize = 0;  ///< rows per shard (last shard may be short)
    uint64_t shardCount = 0; ///< ceil(rows / shardSize)
    uint64_t trainRows = 0;  ///< split point: rows [0, trainRows) train
    uint64_t testRows = 0;   ///< rows [trainRows, rows) test
    uint64_t featureLogPrefix = 0; ///< FeatureTransform.logPrefix
    uint64_t configHash = 0; ///< hash of the generating configuration

    /** Row count of shard @p idx. */
    uint64_t
    shardRows(uint64_t idx) const
    {
        uint64_t begin = idx * shardSize;
        return begin >= rows ? 0
                             : std::min<uint64_t>(shardSize, rows - begin);
    }
};

/** Path of shard @p idx inside @p dir. */
std::string shardPath(const std::string &dir, size_t idx);

/** Path of the manifest inside @p dir. */
std::string manifestPath(const std::string &dir);

/**
 * Classified failure of a shard read; drives retry (IoFault is worth
 * another attempt), quarantine (ShortRead/Corrupt prove the bytes are
 * bad) and fail-fast (Header/Mismatch: not this store's data).
 */
struct ShardReadError
{
    enum class Cls
    {
        None,
        Missing,   ///< file does not exist (ENOENT)
        IoFault,   ///< OS-level read failure (EIO, EACCES, ...)
        ShortRead, ///< file shorter than its declared contents
        Corrupt,   ///< checksum mismatch: bit flip or torn write
        Header,    ///< not a shard file / wrong format version
        Mismatch,  ///< valid shard, wrong identity (index/arity/config)
    };
    Cls cls = Cls::None;
    std::string message;
    int errnoValue = 0;            ///< set for Missing/IoFault
    uint64_t expectedChecksum = 0; ///< set for Corrupt
    uint64_t actualChecksum = 0;   ///< set for Corrupt

    /** True when the shard's content is provably bad (quarantinable). */
    bool
    contentBad() const
    {
        return cls == Cls::ShortRead || cls == Cls::Corrupt;
    }
};

/**
 * Verified read of one shard file into @p x / @p y. Returns false with
 * a classified reason in @p err when the file is missing, unreadable,
 * truncated, corrupt, a different format version, or disagrees with
 * @p expect (arity, index, config hash).
 */
bool readShardFile(const std::string &dir, size_t idx,
                   const ShardLayout &expect, Matrix &x, Matrix &y,
                   ShardReadError *err);

/**
 * Throw the typed exception matching @p err for shard @p idx of @p dir:
 * IoError for Missing/IoFault, CorruptionError for ShortRead/Corrupt/
 * Header, FatalError for Mismatch.
 */
[[noreturn]] void throwShardReadError(const std::string &dir, size_t idx,
                                      const ShardReadError &err);

/**
 * Move shard @p idx of @p dir aside to "<shard>.quarantine" (replacing
 * any previous quarantine of the same shard), so the crash-resume
 * machinery sees a missing shard and regenerates it while the bad
 * bytes stay available for offline forensics. Returns the quarantine
 * path, or empty when the rename failed (e.g. the file is already
 * gone).
 */
std::string quarantineShard(const std::string &dir, size_t idx);

/**
 * Cheap header peek: the config hash shard @p idx was generated under,
 * or std::nullopt when the file is missing or its envelope/header is
 * not even well-formed. Reads a few dozen bytes — no checksum pass —
 * so reuse checks can reject foreign or mixed-config stores without
 * re-reading every payload.
 */
std::optional<uint64_t> peekShardConfigHash(const std::string &dir,
                                            size_t idx);

/**
 * Writes a sharded dataset: one writeShard() per shard (any order),
 * then commit() to publish the manifest. Every file is committed via
 * tmp-file + atomic rename, so a crash at any point leaves either a
 * resumable partial store (valid shards, no manifest) or a fully
 * committed one — never a torn file.
 */
class ShardStoreWriter
{
  public:
    /** Creates @p dir if needed. @p layout fixes shape and identity. */
    ShardStoreWriter(std::string dir, ShardLayout layout);

    const ShardLayout &layout() const { return shape; }

    /**
     * True when shard @p idx already exists on disk and validates
     * against this layout — the resume fast path.
     */
    bool shardValid(size_t idx) const;

    /** Atomically write shard @p idx from the first rows of @p x/@p y. */
    void writeShard(size_t idx, const Matrix &x, const Matrix &y);

    /**
     * Publish the manifest (atomic). Call once, after all shards are
     * written and the normalizers are fitted.
     */
    void commit(const Normalizer &inputNorm, const Normalizer &outputNorm);

  private:
    std::string root;
    ShardLayout shape;
};

/** Everything the manifest stores. */
struct ShardManifest
{
    ShardLayout layout;
    Normalizer inputNorm;
    Normalizer outputNorm;
};

/**
 * Verified reader over a committed shard store.
 *
 * Sequential access (forEachRow / materialize) streams shard by shard;
 * random access goes through a concurrent sharded LRU of decoded
 * shards, so memory stays O(cacheShards * shardSize) regardless of
 * dataset size.
 *
 * Thread-safety: pinShard(), prefetch() and ShardBatchSource::gather
 * are safe to call from any number of threads at once — the cache is
 * split into independently locked ways (by shard index) and hands out
 * shared_ptr-pinned shards, so a shard one thread is reading can never
 * be freed under it by another thread's eviction. xRow()/yRow() keep a
 * per-reader pin memo and remain single-threaded conveniences.
 */
class ShardedDatasetReader
{
  public:
    /** One decoded shard, shared between the cache and its pinners. */
    struct DecodedShard
    {
        Matrix x, y;
    };
    using ShardPtr = std::shared_ptr<const DecodedShard>;

    /**
     * Opens @p dir, validates the manifest and checks every shard file
     * exists (missing shards fail fast here, with the shard named).
     *
     * @param cacheShards Decoded shards kept for random access;
     *                    0 selects the MM_SHARD_CACHE env var (def. 8).
     * @param prefetchShards Shards warmed ahead of sequential gathers
     *                    by a background thread; 0 (and by default the
     *                    MM_PREFETCH_SHARDS env var) disables. Purely a
     *                    cache warm-up: results are byte-identical with
     *                    any value.
     */
    explicit ShardedDatasetReader(std::string dir, size_t cacheShards = 0,
                                  size_t prefetchShards = size_t(-1));

    /**
     * Read the manifest of @p dir without touching shards. Returns
     * std::nullopt when absent or invalid — used both for the
     * reuse-on-restart fast path and to detect partial runs.
     */
    static std::optional<ShardManifest>
    tryReadManifest(const std::string &dir);

    const std::string &dir() const { return root; }
    const ShardLayout &layout() const { return manifest.layout; }
    const Normalizer &inputNorm() const { return manifest.inputNorm; }
    const Normalizer &outputNorm() const { return manifest.outputNorm; }

    /**
     * Install a regeneration callback for corrupt shards. When a read
     * hits a ShortRead/Checksum corruption, the reader quarantines the
     * bad file (rename to "*.quarantine"), invokes the healer with the
     * shard index — which is expected to rewrite a valid shard file,
     * typically by re-labeling just that shard through the dataset
     * crash-resume machinery — and retries the read. Without a healer
     * the corruption is still quarantined but then thrown as a typed
     * CorruptionError, so a process restart resumes cleanly.
     */
    void
    setShardHealer(std::function<void(size_t)> healer)
    {
        healShard = std::move(healer);
    }

    /** Shards quarantined by this reader so far (tests/diagnostics). */
    uint64_t quarantinedShards() const { return quarantined.load(); }

    /**
     * Verified load of shard @p idx (checksum checked every read).
     * Transient I/O faults are retried with capped backoff; corruption
     * is quarantined (and healed, when a healer is installed); the
     * remaining failures throw IoError/CorruptionError/FatalError.
     */
    void readShard(size_t idx, Matrix &x, Matrix &y) const;

    /**
     * Stream rows [rowBegin, rowEnd) in order through @p fn, loading
     * one shard at a time.
     */
    void forEachRow(size_t rowBegin, size_t rowEnd,
                    const std::function<void(size_t row,
                                             std::span<const float> x,
                                             std::span<const float> y)>
                        &fn) const;

    /** Copy raw (unnormalized) rows [rowBegin, rowBegin+rowCount). */
    void materialize(size_t rowBegin, size_t rowCount, Matrix &x,
                     Matrix &y) const;

    /**
     * Shard @p idx, decoded, through the concurrent LRU. Thread-safe;
     * the returned pin keeps the shard alive past any eviction.
     */
    ShardPtr pinShard(size_t idx) const;

    /**
     * Queue a background warm-up of @p shards into the cache (dedup
     * against cached shards is implicit). Requests land in a small
     * bounded FIFO the warm-up thread drains in order, so back-to-back
     * calls under epoch-steady load all eventually warm the cache; a
     * request identical to one already waiting is coalesced, and on
     * overflow the *oldest* request is dropped (its rows are the ones
     * the training loop has most likely already consumed). Best effort
     * and never blocking: no effect on results, only on wall time.
     */
    void prefetch(std::vector<size_t> shards) const
        MM_EXCLUDES(prefetchMtx);

    /** Prefetch look-ahead depth (0 = disabled). */
    size_t prefetchDepth() const { return prefetchCount; }

    /** Shards pinned by the background prefetcher so far (tests). */
    uint64_t prefetchedShards() const { return prefetchedCount.load(); }

    /** Requests dropped by the bounded prefetch FIFO (tests). */
    uint64_t droppedPrefetches() const { return prefetchDropCount.load(); }

    /** Queued prefetch requests not yet started (racy; tests). */
    size_t pendingPrefetches() const MM_EXCLUDES(prefetchMtx);

    /** Raw feature row @p row (single-threaded convenience). */
    std::span<const float> xRow(size_t row);

    /** Raw target row @p row (single-threaded convenience). */
    std::span<const float> yRow(size_t row);

  private:
    /** One independently locked way of the sharded LRU. */
    struct CacheWay
    {
        struct Slot
        {
            size_t idx = size_t(-1);
            uint64_t stamp = 0;
            ShardPtr shard;
        };
        mutable Mutex m;
        std::vector<Slot> slots MM_GUARDED_BY(m);
        uint64_t tick MM_GUARDED_BY(m) = 0;
    };

    const DecodedShard &pinnedRowShard(size_t row);
    void pumpPrefetchQueue() const MM_EXCLUDES(prefetchMtx);

    std::string root;
    ShardManifest manifest;
    RetryPolicy retryPolicy = RetryPolicy::fromEnv();
    std::function<void(size_t)> healShard;
    mutable std::atomic<uint64_t> quarantined{0};
    mutable std::vector<CacheWay> ways;
    ShardPtr rowMemo;            ///< xRow/yRow pin (single-threaded)
    size_t rowMemoIdx = size_t(-1);
    size_t prefetchCount = 0;
    /** Bounded FIFO of pending warm-up requests (see prefetch()). */
    mutable Mutex prefetchMtx;
    mutable std::deque<std::vector<size_t>>
        prefetchQueue MM_GUARDED_BY(prefetchMtx);
    /** True while a queue-draining task is submitted or running. */
    mutable bool prefetchPumpActive MM_GUARDED_BY(prefetchMtx) = false;
    mutable std::atomic<uint64_t> prefetchedCount{0};
    mutable std::atomic<uint64_t> prefetchDropCount{0};
    /** Declared last: destroyed (drained) before the cache it touches. */
    mutable std::unique_ptr<SerialWorker> prefetcher;
};

/**
 * BatchSource over a row range of a shard store, normalizing rows on
 * the fly with the manifest's fitted normalizers. Produces batches
 * bitwise identical to gathering from a pre-normalized in-RAM matrix
 * (Normalizer::normalizeRow is the shared arithmetic), so streamed
 * training reproduces the in-RAM path exactly.
 *
 * gather honors its ParallelContext: row gathers fan out over the
 * lanes in the same fixed chunking as the in-RAM MatrixBatchSource
 * (output rows are disjoint and every row's value is independent of
 * the schedule, so batches are bitwise identical at any lane count),
 * with each lane pinning shards through the reader's concurrent
 * cache. When the reader has a prefetch depth, each gather also queues
 * a background warm-up of the shards the *following* rows of the epoch
 * order will touch.
 */
class ShardBatchSource final : public BatchSource
{
  public:
    /** Rows [rowBegin, rowBegin + rowCount) of @p reader. */
    ShardBatchSource(ShardedDatasetReader &reader, size_t rowBegin,
                     size_t rowCount);

    size_t rows() const override { return count; }
    size_t xCols() const override;
    size_t yCols() const override;
    void gather(const std::vector<size_t> &idx, size_t begin, size_t n,
                Matrix &bx, Matrix &by,
                ParallelContext *par = nullptr) override;

  private:
    ShardedDatasetReader &src;
    size_t base;
    size_t count;
};

} // namespace mm
