#include "core/cache.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include "common/mutex.hpp"
#include <vector>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/mapped_file.hpp"
#include "common/retry.hpp"
#include "core/shard_store.hpp"

namespace mm {

namespace fs = std::filesystem;

namespace {

constexpr const char *kEntrySuffix = ".surrogate";

/**
 * Serializes the LRU bookkeeping (mtime touches vs. the eviction scan)
 * within this process. Without it a load's touch can lose to a
 * concurrent evictOverCap() that already ranked the entry stalest: the
 * just-loaded entry gets evicted. Cross-process interleavings remain
 * best effort (eviction re-stats each victim before removing it).
 */
Mutex &
lruMutex()
{
    static Mutex m;
    return m;
}

/** Hex FNV-1a of the fingerprint string; filenames stay fs-safe. */
std::string
hashKey(const std::string &key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return buf;
}

bool
isEntry(const fs::path &p)
{
    return p.extension() == kEntrySuffix;
}

/** All entries under @p root (error-swallowing: racing deletes are fine). */
std::vector<fs::path>
listEntries(const std::string &root)
{
    std::vector<fs::path> entries;
    std::error_code ec;
    fs::recursive_directory_iterator it(root, ec), end;
    for (; !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && isEntry(it->path()))
            entries.push_back(it->path());
    }
    return entries;
}

} // namespace

SurrogateCache::SurrogateCache(std::string dir, int64_t maxEntries)
    : root(std::move(dir)), cap(maxEntries)
{
    if (root.empty())
        root = defaultDir();
    if (cap < 0)
        cap = std::max<int64_t>(0, envInt("MM_CACHE_MAX_ENTRIES", 0));
}

std::string
SurrogateCache::defaultDir()
{
    return envStr("MM_CACHE_DIR", "mm_cache");
}

bool
SurrogateCache::disabled()
{
    return envInt("MM_NO_CACHE", 0) != 0;
}

std::string
SurrogateCache::pathFor(const std::string &fingerprint) const
{
    // Two-hex-char shard prefix: 256-way fan-out keeps per-directory
    // entry counts (and thus scans and rename contention) small.
    std::string h = hashKey(fingerprint);
    return root + "/" + h.substr(0, 2) + "/" + h + kEntrySuffix;
}

std::optional<Surrogate>
SurrogateCache::load(const std::string &fingerprint) const
{
    if (disabled())
        return std::nullopt;
    const std::string path = pathFor(fingerprint);
    // Existence check + LRU touch under the eviction lock: any
    // same-process eviction either completed before (the entry is
    // gone — a plain miss) or scans after and sees the fresh mtime.
    // Touching before the read is safe because a corrupt entry is
    // removed below regardless of its stamp. Only those two cheap
    // stat-level calls sit inside the lock; the actual read (mmap or,
    // under MM_NO_MMAP, a full fallback slurp) and deserialization
    // happen outside it, so concurrent loads never serialize on I/O.
    {
        MutexLock lock(lruMutex());
        std::error_code tec;
        if (!fs::exists(path, tec) || tec)
            return std::nullopt;
        fs::last_write_time(path, fs::file_time_type::clock::now(), tec);
    }
    auto mf = MappedFile::open(path);
    if (!mf)
        return std::nullopt;
    // Warm load: checksum-verify and deserialize straight out of the
    // mapped entry (atomic renames guarantee the mapping is never a
    // torn write, only ever a complete old or new file).
    std::optional<Surrogate> s = Surrogate::tryLoad(mf->bytes());
    if (!s.has_value()) {
        // Truncated or corrupt entry (torn writer, bit rot): treat as
        // a miss and drop it so it cannot poison later runs.
        std::error_code ec;
        fs::remove(path, ec);
        return std::nullopt;
    }
    return s;
}

void
SurrogateCache::store(const std::string &fingerprint,
                      const Surrogate &surrogate) const
{
    if (disabled() || bypassed())
        return;
    const std::string path = pathFor(fingerprint);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        return; // best effort: caching failures never break training

    // Shared tmp-sibling + atomic-rename protocol: readers see old or
    // new — never a torn file. Transient failures retry with backoff;
    // a full disk degrades *this instance* to bypass for the rest of
    // its lifetime (with one warning) — training must never die for
    // the sake of a cache write, and other instances with their own
    // directories keep persisting. Everything else stays a silent
    // no-op.
    try {
        retryTransient(RetryPolicy::fromEnv(), [&] {
            CommitFailure failure;
            if (commitFileAtomic(
                    path, [&](std::ostream &os) { surrogate.save(os); },
                    &failure))
                return;
            if (failure.errnoValue == ENOSPC)
                throw ResourceError("disk space",
                                    "cannot store cache entry '" + path
                                        + "'",
                                    failure.errnoValue);
            throw IoError(path,
                          failure.sysCall.empty() ? "write"
                                                  : failure.sysCall,
                          failure.errnoValue, failure.detail);
        });
    } catch (const ResourceError &e) {
        if (!bypass.exchange(true))
            std::cerr << "warning: surrogate cache degraded to bypass: "
                      << e.what() << std::endl;
        return;
    } catch (const IoError &) {
        return;
    }
    evictOverCap();
}

size_t
SurrogateCache::entryCount() const
{
    return listEntries(root).size();
}

void
SurrogateCache::evictOverCap() const
{
    if (cap <= 0)
        return;
    // Scan and remove under the LRU lock: a load that touched an entry
    // before we got here is ordered before the scan, one that touches
    // after sees the entry already gone (a plain miss). O(n) scan +
    // O(evicted) removals: nth_element partitions out the stalest
    // entries without sorting the whole list.
    MutexLock lock(lruMutex());
    std::vector<fs::path> entries = listEntries(root);
    if (int64_t(entries.size()) <= cap)
        return;
    std::vector<std::pair<fs::file_time_type, fs::path>> byAge;
    byAge.reserve(entries.size());
    std::error_code ec;
    for (const fs::path &p : entries) {
        auto t = fs::last_write_time(p, ec);
        if (!ec)
            byAge.emplace_back(t, p);
    }
    if (int64_t(byAge.size()) <= cap)
        return;
    const size_t evict = byAge.size() - size_t(cap);
    auto byStamp = [](const auto &a, const auto &b) {
        return a.first < b.first;
    };
    std::nth_element(byAge.begin(), byAge.begin() + long(evict) - 1,
                     byAge.end(), byStamp);
    const fs::file_time_type cutoff = byAge[evict - 1].first;
    for (size_t i = 0; i < evict; ++i) {
        // Re-stat before removing: a cross-process toucher may have
        // refreshed the entry since the scan — skip it then.
        auto t = fs::last_write_time(byAge[i].second, ec);
        if (!ec && t <= cutoff)
            fs::remove(byAge[i].second, ec); // racing removals are fine
    }
}

} // namespace mm
