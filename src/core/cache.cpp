#include "core/cache.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/env.hpp"
#include "core/shard_store.hpp"

namespace mm {

namespace fs = std::filesystem;

namespace {

constexpr const char *kEntrySuffix = ".surrogate";

/** Hex FNV-1a of the fingerprint string; filenames stay fs-safe. */
std::string
hashKey(const std::string &key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return buf;
}

bool
isEntry(const fs::path &p)
{
    return p.extension() == kEntrySuffix;
}

/** All entries under @p root (error-swallowing: racing deletes are fine). */
std::vector<fs::path>
listEntries(const std::string &root)
{
    std::vector<fs::path> entries;
    std::error_code ec;
    fs::recursive_directory_iterator it(root, ec), end;
    for (; !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && isEntry(it->path()))
            entries.push_back(it->path());
    }
    return entries;
}

} // namespace

SurrogateCache::SurrogateCache(std::string dir, int64_t maxEntries)
    : root(std::move(dir)), cap(maxEntries)
{
    if (root.empty())
        root = defaultDir();
    if (cap < 0)
        cap = std::max<int64_t>(0, envInt("MM_CACHE_MAX_ENTRIES", 0));
}

std::string
SurrogateCache::defaultDir()
{
    return envStr("MM_CACHE_DIR", "mm_cache");
}

bool
SurrogateCache::disabled()
{
    return envInt("MM_NO_CACHE", 0) != 0;
}

std::string
SurrogateCache::pathFor(const std::string &fingerprint) const
{
    // Two-hex-char shard prefix: 256-way fan-out keeps per-directory
    // entry counts (and thus scans and rename contention) small.
    std::string h = hashKey(fingerprint);
    return root + "/" + h.substr(0, 2) + "/" + h + kEntrySuffix;
}

std::optional<Surrogate>
SurrogateCache::load(const std::string &fingerprint) const
{
    if (disabled())
        return std::nullopt;
    const std::string path = pathFor(fingerprint);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    std::optional<Surrogate> s = Surrogate::tryLoad(is);
    std::error_code ec;
    if (!s.has_value()) {
        // Truncated or corrupt entry (torn writer, bit rot): treat as
        // a miss and drop it so it cannot poison later runs.
        fs::remove(path, ec);
        return std::nullopt;
    }
    // LRU touch; best effort (the entry may be racing an eviction).
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return s;
}

void
SurrogateCache::store(const std::string &fingerprint,
                      const Surrogate &surrogate) const
{
    if (disabled())
        return;
    const std::string path = pathFor(fingerprint);
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec)
        return; // best effort: caching failures never break training

    // Shared tmp-sibling + atomic-rename protocol: readers see old or
    // new — never a torn file. Failure is a silent no-op here.
    bool ok = commitFileAtomic(
        path, [&](std::ostream &os) { surrogate.save(os); });
    if (ok)
        evictOverCap();
}

size_t
SurrogateCache::entryCount() const
{
    return listEntries(root).size();
}

void
SurrogateCache::evictOverCap() const
{
    if (cap <= 0)
        return;
    std::vector<fs::path> entries = listEntries(root);
    if (int64_t(entries.size()) <= cap)
        return;
    std::vector<std::pair<fs::file_time_type, fs::path>> byAge;
    byAge.reserve(entries.size());
    std::error_code ec;
    for (const fs::path &p : entries) {
        auto t = fs::last_write_time(p, ec);
        if (!ec)
            byAge.emplace_back(t, p);
    }
    std::sort(byAge.begin(), byAge.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    const size_t evict =
        byAge.size() > size_t(cap) ? byAge.size() - size_t(cap) : 0;
    for (size_t i = 0; i < evict; ++i)
        fs::remove(byAge[i].second, ec); // racing removals are fine
}

} // namespace mm
