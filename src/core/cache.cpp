#include "core/cache.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/env.hpp"

namespace mm {

namespace {

/** FNV-1a over the fingerprint string; filenames stay filesystem-safe. */
std::string
hashKey(const std::string &key)
{
    uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : key) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace

SurrogateCache::SurrogateCache(std::string dir) : root(std::move(dir))
{
    if (root.empty())
        root = defaultDir();
}

std::string
SurrogateCache::defaultDir()
{
    return envStr("MM_CACHE_DIR", "mm_cache");
}

bool
SurrogateCache::disabled()
{
    return envInt("MM_NO_CACHE", 0) != 0;
}

std::string
SurrogateCache::pathFor(const std::string &fingerprint) const
{
    return root + "/" + hashKey(fingerprint) + ".surrogate";
}

std::optional<Surrogate>
SurrogateCache::load(const std::string &fingerprint) const
{
    if (disabled())
        return std::nullopt;
    std::ifstream is(pathFor(fingerprint), std::ios::binary);
    if (!is)
        return std::nullopt;
    return Surrogate::load(is);
}

void
SurrogateCache::store(const std::string &fingerprint,
                      const Surrogate &surrogate) const
{
    if (disabled())
        return;
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    if (ec)
        return; // best effort: caching failures never break training
    std::ofstream os(pathFor(fingerprint), std::ios::binary);
    if (os)
        surrogate.save(os);
}

} // namespace mm
