/**
 * @file
 * Phase-1 training-set generation (Section 4.1.1).
 *
 * Uniformly samples valid mappings from the map spaces of representative
 * problems of the target algorithm, labels each with the reference cost
 * model's meta-statistics (normalized per problem by the algorithmic
 * lower bound, Section 4.1.3), and z-scores both inputs and outputs over
 * the training set. Only valid mappings enter the dataset, as in the
 * paper.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel_context.hpp"
#include "core/normalizer.hpp"
#include "mapping/codec.hpp"
#include "nn/loss.hpp"
#include "workload/problem.hpp"

namespace mm {

/** Dataset-generation parameters. */
struct DatasetConfig
{
    /** Total (mapping, pid, cost) tuples to draw. */
    size_t samples = 20000;
    /** Fraction reserved as the held-out test split. */
    double testFraction = 0.1;
    /**
     * Distinct representative problems to sample from; ignored when
     * explicit problems are supplied.
     */
    size_t problemCount = 40;
    /** Optional explicit problem list (e.g. for ablations). */
    std::vector<Problem> problems;
    /**
     * When true (default), the output vector holds the full
     * meta-statistics; when false it holds only normalized EDP — the
     * paper's Section 4.1.3 "direct EDP" strawman for the output-
     * representation ablation.
     */
    bool metaStatOutputs = true;
    /**
     * Fraction of samples drawn with elite bias (best-of-k instead of
     * one uniform draw), improving coverage of the low-EDP region the
     * search ultimately cares about. The paper flags improved sampling
     * as future work (Section 4.1.1); 0 reproduces its uniform scheme.
     */
    double eliteFraction = 0.0;
    /** Candidates per elite draw. */
    int eliteCandidates = 8;
    uint64_t seed = 1;
    /**
     * Samples labeled per batched block (must be >= 1): each block is
     * sampled in parallel, evaluated with one CostModel::evaluateBatch
     * call per distinct problem, and written out. Dataset bytes are
     * identical at ANY value (per-sample RNG streams and per-sample
     * evaluation are order-independent), so this knob — like lane
     * count — is excluded from the streamed config hash; it only
     * trades peak block memory against batch amortization.
     * MM_EVAL_BATCH overrides it in the benches.
     */
    size_t labelBlock = 4096;
    /**
     * When non-empty, Phase 1 runs out-of-core: labeled samples are
     * written to checksummed fixed-size shards in this directory
     * (core/shard_store.hpp) instead of two dense in-RAM matrices, and
     * the trainer streams mini-batches back from disk. The result is
     * bitwise identical to the in-RAM path at any lane count; peak
     * memory is O(shardSize), not O(samples). A directory holding a
     * committed store for the same config is reused; a partial
     * (crashed) run resumes at shard granularity.
     */
    std::string streamDir;
    /** Rows per shard for the streamed path. */
    size_t shardSize = 65536;
    /**
     * Overlap shard commits with labeling (streamed path only): a
     * background writer thread commits shard N while the lanes label
     * shard N+1, hiding the write latency. Output is byte-identical
     * with either value — the same shards are written in the same
     * order — so this is excluded from the dataset config hash; false
     * recovers the fully serialized historical loop (benchmarking,
     * debugging).
     */
    bool overlapStreamWrites = true;
};

/** A generated, normalized regression dataset plus its normalizers. */
struct SurrogateDataset
{
    Matrix xTrain, yTrain;
    Matrix xTest, yTest;
    Normalizer inputNorm;
    Normalizer outputNorm;
    size_t featureCount = 0;
    size_t outputCount = 0;
    /** Prefix of features that were log2-conditioned (see
     * core/feature_transform.hpp); targets are log-conditioned. */
    size_t featureLogPrefix = 0;
};

/**
 * Generate the Phase-1 dataset for @p algo on @p arch.
 *
 * The feature vector layout is MappingCodec's (pid + tiling +
 * parallelism + order ranks + allocation); targets are the cost model's
 * meta-statistics divided by the per-problem lower bound (energy terms
 * by LB energy, cycles by LB cycles, utilization as-is).
 *
 * Labeling parallelizes over @p par's lanes when provided. Each sample
 * owns an RNG stream forked in sample order, so the dataset is bitwise
 * identical at any lane count (and with a null context).
 */
SurrogateDataset generateDataset(const AcceleratorSpec &arch,
                                 const AlgorithmSpec &algo,
                                 const DatasetConfig &cfg,
                                 ParallelContext *par = nullptr);

/** Handle to a committed on-disk dataset (see core/shard_store.hpp). */
struct StreamedDataset
{
    /** The stream directory holding shards + manifest. */
    std::string dir;
    Normalizer inputNorm;
    Normalizer outputNorm;
    size_t featureCount = 0;
    size_t outputCount = 0;
    size_t featureLogPrefix = 0;
    size_t trainRows = 0;
    size_t testRows = 0;
    size_t shardSize = 0;
    size_t shardCount = 0;
    /** True when a committed store for this config was reused as-is. */
    bool reused = false;
};

/**
 * Out-of-core variant of generateDataset: labels cfg.shardSize samples
 * at a time (same per-sample forked RNG streams, so shards are bitwise
 * identical to the rows the in-RAM path would produce at any lane
 * count), commits each shard atomically to cfg.streamDir, fits the
 * normalizers in one streaming-moments pass over the training rows,
 * and publishes the manifest. Restart behavior: a committed store for
 * the same config is reused without relabeling; after a crash, shards
 * that validate are skipped and only the missing ones are labeled.
 */
StreamedDataset generateDatasetStreamed(const AcceleratorSpec &arch,
                                        const AlgorithmSpec &algo,
                                        const DatasetConfig &cfg,
                                        ParallelContext *par = nullptr);

/** Lower-bound-normalize a raw meta-statistics vector in place. */
void normalizeMetaStatsByBound(std::vector<double> &stats,
                               size_t tensorCount, double lbEnergyPj,
                               double lbCycles);

} // namespace mm
