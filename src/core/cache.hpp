/**
 * @file
 * On-disk surrogate cache.
 *
 * Phase 1 is a one-time offline cost amortized over many searches
 * (Section 4.1); this cache is the engineering counterpart — bench
 * binaries and examples share trained surrogates keyed by a fingerprint
 * of (algorithm, accelerator, full Phase-1 config). Controlled by the
 * MM_CACHE_DIR env var; set MM_NO_CACHE=1 to disable.
 */
#pragma once

#include <optional>
#include <string>

#include "core/surrogate.hpp"

namespace mm {

/** Directory-backed store of serialized surrogates. */
class SurrogateCache
{
  public:
    /** Empty dir selects defaultDir(). */
    explicit SurrogateCache(std::string dir = "");

    /** The cache directory in use. */
    const std::string &dir() const { return root; }

    /** Load the surrogate stored under @p fingerprint, if any. */
    std::optional<Surrogate> load(const std::string &fingerprint) const;

    /** Persist @p surrogate under @p fingerprint (best effort). */
    void store(const std::string &fingerprint,
               const Surrogate &surrogate) const;

    /** MM_CACHE_DIR env var, defaulting to ./mm_cache. */
    static std::string defaultDir();

    /** True when MM_NO_CACHE=1 disables caching. */
    static bool disabled();

  private:
    std::string pathFor(const std::string &fingerprint) const;
    std::string root;
};

} // namespace mm
