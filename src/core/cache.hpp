/**
 * @file
 * On-disk surrogate cache.
 *
 * Phase 1 is a one-time offline cost amortized over many searches
 * (Section 4.1); this cache is the engineering counterpart — bench
 * binaries and examples share trained surrogates keyed by a fingerprint
 * of (algorithm, accelerator, full Phase-1 config).
 *
 * The store is built for many concurrent readers and writers:
 *   - entries are sharded into 256 hash-prefix subdirectories
 *     (root/ab/<hash>.surrogate), so directory scans stay cheap as the
 *     entry count grows;
 *   - writes go to a unique tmp file and are renamed into place
 *     (atomic on POSIX), so a reader never observes a torn entry and a
 *     crashed writer leaves only a tmp file behind;
 *   - loads verify the surrogate's checksummed envelope and treat any
 *     truncated/corrupt entry as a miss (removing it) instead of
 *     deserializing garbage;
 *   - an LRU entry cap (MM_CACHE_MAX_ENTRIES, 0 = unlimited) bounds
 *     disk usage: loads touch the entry's mtime, stores evict the
 *     stalest entries beyond the cap. A load opens and touches its
 *     entry under the same in-process lock the eviction scan holds, so
 *     same-process evictions order cleanly against loads (an eviction
 *     either precedes the load — a plain miss — or sees the refreshed
 *     stamp), and eviction re-stats each victim before removal to stay
 *     best-effort-correct across processes;
 *   - loads go through a read-only mmap of the entry (MappedFile) and
 *     deserialize in place — no stream or body-string copies.
 *
 * Controlled by the MM_CACHE_DIR env var; set MM_NO_CACHE=1 to disable.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "core/surrogate.hpp"

namespace mm {

/** Directory-backed, concurrently accessible store of surrogates. */
class SurrogateCache
{
  public:
    /**
     * @param dir        Cache root; empty selects defaultDir().
     * @param maxEntries LRU cap; < 0 selects MM_CACHE_MAX_ENTRIES
     *                   (0 = unlimited).
     */
    explicit SurrogateCache(std::string dir = "", int64_t maxEntries = -1);

    /** The cache directory in use. */
    const std::string &dir() const { return root; }

    /** The effective LRU entry cap (0 = unlimited). */
    int64_t entryCap() const { return cap; }

    /**
     * Load the surrogate stored under @p fingerprint. Corrupt or torn
     * entries are misses (and are removed); successful loads are
     * checksum-verified and refresh the entry's LRU stamp.
     */
    std::optional<Surrogate> load(const std::string &fingerprint) const;

    /**
     * Persist @p surrogate under @p fingerprint (best effort, atomic),
     * then evict the least-recently-used entries beyond the cap.
     */
    void store(const std::string &fingerprint,
               const Surrogate &surrogate) const;

    /** Entries currently in the store (all shards). */
    size_t entryCount() const;

    /** MM_CACHE_DIR env var, defaulting to ./mm_cache. */
    static std::string defaultDir();

    /** True when MM_NO_CACHE=1 disables caching. */
    static bool disabled();

    /**
     * True once a store through *this instance* ran out of disk space
     * (ENOSPC) and the instance degraded to bypass for the rest of its
     * lifetime: training still works, it just stops persisting
     * surrogates. A one-time warning goes to stderr when the
     * degradation trips. The latch is per instance — a multi-tenant
     * process with per-pool cache directories degrades only the pool
     * whose disk actually filled, never its siblings.
     */
    bool bypassed() const
    {
        return bypass.load(std::memory_order_relaxed);
    }

    /** Re-arm a bypassed instance (tests). */
    void resetBypass() const
    {
        bypass.store(false, std::memory_order_relaxed);
    }

  private:
    std::string pathFor(const std::string &fingerprint) const;
    void evictOverCap() const;

    std::string root;
    int64_t cap = 0;
    /** ENOSPC degradation latch; mutable so store() stays const. */
    mutable std::atomic<bool> bypass{false};
};

} // namespace mm
