#include "core/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/mapped_file.hpp"
#include "core/shard_store.hpp"

namespace mm {

namespace {

constexpr uint32_t kMagic = 0x4d4d5348; // "MMSH" (log-space format)
constexpr uint32_t kFormatVersion = 2;  // 2: checksummed envelope

/** Keep exp() of predicted logs finite even far out of distribution. */
double
safeExp(double logValue)
{
    return std::exp(std::clamp(logValue, -60.0, 60.0));
}

} // namespace

Surrogate::Surrogate(Mlp net, FeatureTransform transform_,
                     Normalizer inputNorm_, Normalizer outputNorm_,
                     size_t tensorCount)
    : mlp(std::move(net)), transform(transform_),
      inputNorm(std::move(inputNorm_)), outputNorm(std::move(outputNorm_)),
      tensors(tensorCount)
{
    MM_ASSERT(mlp.inputDim() == inputNorm.dim(),
              "surrogate input arity mismatch");
    MM_ASSERT(mlp.outputDim() == outputNorm.dim(),
              "surrogate output arity mismatch");
    MM_ASSERT(transform.logPrefix <= inputNorm.dim(),
              "transform prefix out of range");
    if (tensors > 0) {
        MM_ASSERT(outputNorm.dim()
                      == tensors * size_t(kNumMemLevels) + 3,
                  "meta-stat layout mismatch");
    } else {
        MM_ASSERT(outputNorm.dim() == 1, "direct-EDP model must be 1-D");
    }
}

std::vector<double>
Surrogate::normalizeInput(std::span<const double> raw) const
{
    std::vector<double> conditioned(raw.begin(), raw.end());
    transform.apply(conditioned);
    return inputNorm.apply(conditioned);
}

std::vector<double>
Surrogate::denormalizeInput(std::span<const double> z) const
{
    std::vector<double> raw = inputNorm.invert(z);
    transform.invert(raw);
    return raw;
}

void
Surrogate::packInputRow(std::span<const double> zFeatures)
{
    MM_ASSERT(zFeatures.size() == featureCount(),
              "surrogate feature arity mismatch");
    inputRow.ensureShape(1, zFeatures.size());
    for (size_t i = 0; i < zFeatures.size(); ++i)
        inputRow(0, i) = float(zFeatures[i]);
}

const Matrix &
Surrogate::forwardOne(std::span<const double> zFeatures)
{
    packInputRow(zFeatures);
    return mlp.forward(inputRow);
}

double
Surrogate::headEdp(const Matrix &out, size_t r) const
{
    if (tensors == 0) {
        double logEdp = double(out(r, 0)) * outputNorm.std(0)
                        + outputNorm.mean(0);
        return safeExp(logEdp);
    }
    const size_t ei = totalEnergyIdx();
    const size_t ci = cyclesIdx();
    double logE = double(out(r, ei)) * outputNorm.std(ei)
                  + outputNorm.mean(ei);
    double logC = double(out(r, ci)) * outputNorm.std(ci)
                  + outputNorm.mean(ci);
    return safeExp(logE + logC);
}

double
Surrogate::predictNormEdp(std::span<const double> zFeatures)
{
    return headEdp(forwardOne(zFeatures), 0);
}

std::vector<double>
Surrogate::predictNormEdpBatch(const Matrix &zRows)
{
    MM_ASSERT(zRows.cols() == featureCount(),
              "surrogate feature arity mismatch");
    const Matrix &out = mlp.forward(zRows);
    std::vector<double> preds(zRows.rows());
    for (size_t r = 0; r < preds.size(); ++r)
        preds[r] = headEdp(out, r);
    return preds;
}

const Matrix &
Surrogate::gradientBatch(const Matrix &zRows, std::vector<double> &predsOut)
{
    MM_ASSERT(zRows.cols() == featureCount(),
              "surrogate feature arity mismatch");
    const Matrix &out = mlp.forward(zRows);
    const size_t rows = zRows.rows();
    headGrad.ensureShape(rows, outputCount());
    headGrad.zero();
    predsOut.assign(rows, 0.0);

    // Outputs are whitened *logs*, so d(log EDP)/d(head) is constant:
    // the head's training-set standard deviation.
    for (size_t r = 0; r < rows; ++r) {
        predsOut[r] = headEdp(out, r);
        if (tensors == 0) {
            headGrad(r, 0) = float(outputNorm.std(0));
        } else {
            headGrad(r, totalEnergyIdx()) =
                float(outputNorm.std(totalEnergyIdx()));
            headGrad(r, cyclesIdx()) = float(outputNorm.std(cyclesIdx()));
        }
    }
    return mlp.backwardInPlace(headGrad);
}

double
Surrogate::gradient(std::span<const double> zFeatures,
                    std::vector<double> &gradOut)
{
    packInputRow(zFeatures);
    std::vector<double> preds;
    const Matrix &dIn = gradientBatch(inputRow, preds);
    gradOut.assign(featureCount(), 0.0);
    for (size_t i = 0; i < featureCount(); ++i)
        gradOut[i] = double(dIn(0, i));
    return preds[0];
}

std::vector<double>
Surrogate::predictMetaStats(std::span<const double> zFeatures)
{
    const Matrix &out = forwardOne(zFeatures);
    std::vector<double> z(outputCount());
    for (size_t i = 0; i < z.size(); ++i)
        z[i] = double(out(0, i));
    std::vector<double> logs = outputNorm.invert(z);
    for (auto &v : logs)
        v = safeExp(v);
    return logs;
}

void
Surrogate::save(std::ostream &os) const
{
    std::ostringstream body(std::ios::binary);
    uint64_t t = tensors;
    uint64_t prefix = transform.logPrefix;
    body.write(reinterpret_cast<const char *>(&t), sizeof(t));
    body.write(reinterpret_cast<const char *>(&prefix), sizeof(prefix));
    inputNorm.save(body);
    outputNorm.save(body);
    mlp.save(body);
    writeChecksummedBlob(os, kMagic, kFormatVersion, body.str());
}

namespace {

/**
 * Deserialize a verified surrogate body. The caller's checksum pass
 * vouches for the bytes, so plain deserialization from here on cannot
 * see torn or flipped content.
 */
std::optional<Surrogate>
loadVerifiedBody(std::istream &bs)
{
    uint64_t t = 0;
    uint64_t prefix = 0;
    bs.read(reinterpret_cast<char *>(&t), sizeof(t));
    bs.read(reinterpret_cast<char *>(&prefix), sizeof(prefix));
    if (!bs)
        return std::nullopt;
    Normalizer in = Normalizer::load(bs);
    Normalizer out = Normalizer::load(bs);
    Mlp net = Mlp::load(bs);
    return Surrogate(std::move(net), FeatureTransform{size_t(prefix)},
                     std::move(in), std::move(out), size_t(t));
}

} // namespace

std::optional<Surrogate>
Surrogate::tryLoad(std::istream &is)
{
    auto body = readChecksummedBlob(is, kMagic, kFormatVersion, nullptr);
    if (!body)
        return std::nullopt;
    std::istringstream bs(*body);
    return loadVerifiedBody(bs);
}

std::optional<Surrogate>
Surrogate::tryLoad(std::span<const char> bytes)
{
    auto body = readChecksummedBlobView(
        bytes, kMagic, kFormatVersion,
        static_cast<BlobReadError *>(nullptr));
    if (!body)
        return std::nullopt;
    // MemoryIStream reads straight out of the (mapped) image: the only
    // copies left are the memcpys into the weight matrices themselves.
    MemoryIStream bs(*body);
    return loadVerifiedBody(bs);
}

Surrogate
Surrogate::load(std::istream &is)
{
    auto s = tryLoad(is);
    MM_ASSERT(s.has_value(),
              "bad surrogate stream (truncated, corrupt or wrong version)");
    return std::move(*s);
}

} // namespace mm
