#include "core/mind_mappings.hpp"

#include "search/parallel_driver.hpp"

namespace mm {

MindMappings::MindMappings(AcceleratorSpec arch, const AlgorithmSpec &algo_,
                           MindMappingsOptions opts_)
    : archSpec(std::move(arch)), algo(&algo_), opts(std::move(opts_))
{
    opts.phase1.resolve();
}

bool
MindMappings::prepare()
{
    if (prepared())
        return history.empty();

    SurrogateCache cache(opts.cacheDir);
    const std::string key = opts.phase1.fingerprint(archSpec, *algo);
    if (opts.useCache) {
        if (auto cached = cache.load(key)) {
            surrogateModel.emplace(std::move(*cached));
            history.clear();
            return true;
        }
    }

    Phase1Result result = trainSurrogate(archSpec, *algo, opts.phase1);
    history = std::move(result.history);
    surrogateModel.emplace(std::move(result.surrogate));
    if (opts.useCache)
        cache.store(key, *surrogateModel);
    return false;
}

Surrogate &
MindMappings::surrogate()
{
    MM_ASSERT(prepared(), "call prepare() before using the surrogate");
    return *surrogateModel;
}

Mapping
MindMappings::getMapping(const Problem &problem, Rng &rng) const
{
    MapSpace space(archSpec, problem);
    return space.randomValid(rng);
}

bool
MindMappings::isMember(const Problem &problem, const Mapping &m) const
{
    MapSpace space(archSpec, problem);
    return space.isMember(m);
}

Mapping
MindMappings::getProjection(const Problem &problem, const Mapping &m) const
{
    MapSpace space(archSpec, problem);
    return space.project(m);
}

SearchResult
MindMappings::search(const Problem &problem, const SearchBudget &budget,
                     Rng &rng)
{
    SearchContext ctx;
    ctx.budget = budget;
    ctx.rng = &rng;
    return search(problem, ctx);
}

SearchResult
MindMappings::search(const Problem &problem, SearchContext &ctx)
{
    if (problem.algo != algo)
        fatal("problem '" + problem.name
              + "' does not belong to this instance's target algorithm");
    prepare();
    MapSpace space(archSpec, problem);
    CostModel model(space);
    if (opts.searchChains > 1) {
        ParallelSearchConfig pcfg;
        pcfg.chain = opts.search;
        pcfg.chains = opts.searchChains;
        pcfg.threads = opts.searchThreads;
        ParallelGradientSearcher searcher(model, *surrogateModel, pcfg,
                                          opts.timing);
        return searcher.run(ctx);
    }
    MindMappingsSearcher searcher(model, *surrogateModel, opts.search,
                                  opts.timing);
    return searcher.run(ctx);
}

double
MindMappings::normalizedEdp(const Problem &problem, const Mapping &m) const
{
    MapSpace space(archSpec, problem);
    CostModel model(space);
    return model.normalizedEdp(m);
}

} // namespace mm
