#include "core/phase1.hpp"

#include <iostream>

#include "common/clock.hpp"
#include "common/env.hpp"
#include "common/string_util.hpp"
#include "core/shard_store.hpp"
#include "costmodel/cost_model.hpp"

namespace mm {

void
Phase1Config::resolve()
{
    if (resolved)
        return;
    resolved = true;
    switch (preset) {
      case SurrogatePreset::Fast:
        if (hidden.empty() && !linear)
            hidden = {64, 128, 128, 64};
        if (train.epochs == TrainConfig{}.epochs)
            train.epochs = 24;
        if (data.samples == DatasetConfig{}.samples)
            data.samples = 150000;
        train.batchSize = 128;
        train.schedule = {1e-2, 0.25, 8};
        break;
      case SurrogatePreset::Paper:
        if (hidden.empty() && !linear)
            hidden = {64, 256, 1024, 2048, 2048, 1024, 256, 64};
        if (train.epochs == TrainConfig{}.epochs)
            train.epochs = 100;
        train.batchSize = 128;
        train.schedule = {1e-2, 0.1, 25};
        if (data.samples == DatasetConfig{}.samples)
            data.samples = 10'000'000;
        break;
    }
    train.momentum = 0.9;
}

std::string
Phase1Config::fingerprint(const AcceleratorSpec &arch,
                          const AlgorithmSpec &algo) const
{
    Phase1Config r = *this;
    r.resolve();
    std::string probs;
    for (const Problem &p : r.data.problems)
        probs += join(p.bounds, "x") + ";";
    // fmt=5: the bounds engine tightened computeLowerBound, which moves
    // every normalized-EDP label and meta-stat normalization —
    // fmt=4-era datasets and surrogates are stale. (fmt=4: checksummed
    // envelope + windowed shuffle.)
    // streamDir/shardSize are deliberately absent: the streamed path is
    // bitwise identical to the in-RAM path, so both share one entry.
    return strCat("fmt=5|", algo.name, "|", arch.name, "|lin=", r.linear,
                  "|h=", join(r.hidden, "-"),
                  "|n=", r.data.samples, "|p=", r.data.problemCount,
                  "|probs=", probs, "|meta=", r.data.metaStatOutputs, "|elite=",
                  r.data.eliteFraction,
                  "|e=", r.train.epochs, "|b=", r.train.batchSize,
                  "|loss=", lossName(r.train.loss), "|lr=",
                  r.train.schedule.initial, "|win=", r.train.shuffleWindow,
                  "|seed=", r.seed, "|dseed=", r.data.seed);
}

std::vector<LayerSpec>
surrogateTopology(const std::vector<size_t> &hidden, size_t outputDim)
{
    // An empty hidden list yields a purely linear surrogate — the
    // "simpler differentiable model" the paper defers to future work
    // (Section 4.1); see bench/ablation_surrogate_capacity.
    std::vector<LayerSpec> specs;
    for (size_t width : hidden)
        specs.push_back({width, Activation::ReLU});
    specs.push_back({outputDim, Activation::Identity});
    return specs;
}

Phase1Result
trainSurrogate(const AcceleratorSpec &arch, const AlgorithmSpec &algo,
               Phase1Config cfg,
               const std::function<void(const EpochReport &)> &onEpoch)
{
    cfg.resolve();
    // One pool serves dataset labeling and the training GEMMs.
    ParallelContext par(cfg.threads <= 0 ? 0 : size_t(cfg.threads));
    size_t tensors = cfg.data.metaStatOutputs ? algo.tensorCount() : 0;

    if (!cfg.data.streamDir.empty()) {
        // Out-of-core Phase 1: labeled rows live in checksummed shards
        // on disk and mini-batches stream back through a bounded LRU.
        // Same seeds, same arithmetic, same batch order — the result
        // is bitwise identical to the in-RAM branch below.
        WallTimer dataTimer;
        StreamedDataset sd =
            generateDatasetStreamed(arch, algo, cfg.data, &par);
        double datasetSec = dataTimer.elapsedSec();

        Rng rng(cfg.seed);
        Mlp net(sd.featureCount,
                surrogateTopology(cfg.linear ? std::vector<size_t>{}
                                             : cfg.hidden,
                                  sd.outputCount),
                rng);

        WallTimer trainTimer;
        RegressionTrainer trainer(net, cfg.train, &par);
        ShardedDatasetReader reader(sd.dir);
        // A global shuffle (the bitwise-exact default) random-reads
        // the whole store every epoch; once the dataset outgrows the
        // reader's LRU the read amplification is ruinous. Keep the
        // default for exactness at small scale, but say so loudly —
        // at paper scale the windowed shuffle is the intended mode.
        if (cfg.train.shuffleWindow == 0
            && sd.shardCount > 2 * envSize("MM_SHARD_CACHE", 8)) {
            std::cerr
                << "[phase1] WARNING: streaming " << sd.shardCount
                << " shards with a global shuffle re-reads shards "
                   "heavily; set TrainConfig::shuffleWindow "
                   "(MM_SHUFFLE_WINDOW) to a few multiples of "
                   "shardSize for out-of-core-friendly I/O"
                << std::endl;
        }
        ShardBatchSource trainSrc(reader, 0, sd.trainRows);
        ShardBatchSource testSrc(reader, sd.trainRows, sd.testRows);
        auto history = trainer.fit(
            trainSrc, sd.testRows > 0 ? &testSrc : nullptr, rng, onEpoch);
        double trainSec = trainTimer.elapsedSec();

        return Phase1Result{Surrogate(std::move(net),
                                      FeatureTransform{sd.featureLogPrefix},
                                      std::move(sd.inputNorm),
                                      std::move(sd.outputNorm), tensors),
                            std::move(history), datasetSec, trainSec,
                            sd.reused};
    }

    WallTimer dataTimer;
    SurrogateDataset ds = generateDataset(arch, algo, cfg.data, &par);
    double datasetSec = dataTimer.elapsedSec();

    Rng rng(cfg.seed);
    Mlp net(ds.featureCount,
            surrogateTopology(cfg.linear ? std::vector<size_t>{}
                                         : cfg.hidden,
                              ds.outputCount),
            rng);

    WallTimer trainTimer;
    RegressionTrainer trainer(net, cfg.train, &par);
    auto history =
        trainer.fit(ds.xTrain, ds.yTrain, ds.xTest, ds.yTest, rng, onEpoch);
    double trainSec = trainTimer.elapsedSec();

    Phase1Result result{Surrogate(std::move(net),
                                  FeatureTransform{ds.featureLogPrefix},
                                  std::move(ds.inputNorm),
                                  std::move(ds.outputNorm), tensors),
                        std::move(history), datasetSec, trainSec};
    return result;
}

} // namespace mm
