#include "core/phase1.hpp"

#include "common/clock.hpp"
#include "common/string_util.hpp"
#include "costmodel/cost_model.hpp"

namespace mm {

void
Phase1Config::resolve()
{
    if (resolved)
        return;
    resolved = true;
    switch (preset) {
      case SurrogatePreset::Fast:
        if (hidden.empty() && !linear)
            hidden = {64, 128, 128, 64};
        if (train.epochs == TrainConfig{}.epochs)
            train.epochs = 24;
        if (data.samples == DatasetConfig{}.samples)
            data.samples = 150000;
        train.batchSize = 128;
        train.schedule = {1e-2, 0.25, 8};
        break;
      case SurrogatePreset::Paper:
        if (hidden.empty() && !linear)
            hidden = {64, 256, 1024, 2048, 2048, 1024, 256, 64};
        if (train.epochs == TrainConfig{}.epochs)
            train.epochs = 100;
        train.batchSize = 128;
        train.schedule = {1e-2, 0.1, 25};
        if (data.samples == DatasetConfig{}.samples)
            data.samples = 10'000'000;
        break;
    }
    train.momentum = 0.9;
}

std::string
Phase1Config::fingerprint(const AcceleratorSpec &arch,
                          const AlgorithmSpec &algo) const
{
    Phase1Config r = *this;
    r.resolve();
    std::string probs;
    for (const Problem &p : r.data.problems)
        probs += join(p.bounds, "x") + ";";
    // fmt=3: dataset samples moved to per-sample forked RNG streams
    // (thread-count-invariant), invalidating fmt=2 caches.
    return strCat("fmt=3|", algo.name, "|", arch.name, "|lin=", r.linear,
                  "|h=", join(r.hidden, "-"),
                  "|n=", r.data.samples, "|p=", r.data.problemCount,
                  "|probs=", probs, "|meta=", r.data.metaStatOutputs, "|elite=",
                  r.data.eliteFraction,
                  "|e=", r.train.epochs, "|b=", r.train.batchSize,
                  "|loss=", lossName(r.train.loss), "|lr=",
                  r.train.schedule.initial, "|seed=", r.seed, "|dseed=",
                  r.data.seed);
}

std::vector<LayerSpec>
surrogateTopology(const std::vector<size_t> &hidden, size_t outputDim)
{
    // An empty hidden list yields a purely linear surrogate — the
    // "simpler differentiable model" the paper defers to future work
    // (Section 4.1); see bench/ablation_surrogate_capacity.
    std::vector<LayerSpec> specs;
    for (size_t width : hidden)
        specs.push_back({width, Activation::ReLU});
    specs.push_back({outputDim, Activation::Identity});
    return specs;
}

Phase1Result
trainSurrogate(const AcceleratorSpec &arch, const AlgorithmSpec &algo,
               Phase1Config cfg,
               const std::function<void(const EpochReport &)> &onEpoch)
{
    cfg.resolve();
    // One pool serves dataset labeling and the training GEMMs.
    ParallelContext par(cfg.threads <= 0 ? 0 : size_t(cfg.threads));

    WallTimer dataTimer;
    SurrogateDataset ds = generateDataset(arch, algo, cfg.data, &par);
    double datasetSec = dataTimer.elapsedSec();

    Rng rng(cfg.seed);
    Mlp net(ds.featureCount,
            surrogateTopology(cfg.linear ? std::vector<size_t>{}
                                         : cfg.hidden,
                              ds.outputCount),
            rng);

    WallTimer trainTimer;
    RegressionTrainer trainer(net, cfg.train, &par);
    auto history =
        trainer.fit(ds.xTrain, ds.yTrain, ds.xTest, ds.yTest, rng, onEpoch);
    double trainSec = trainTimer.elapsedSec();

    size_t tensors = cfg.data.metaStatOutputs ? algo.tensorCount() : 0;
    Phase1Result result{Surrogate(std::move(net),
                                  FeatureTransform{ds.featureLogPrefix},
                                  std::move(ds.inputNorm),
                                  std::move(ds.outputNorm), tensors),
                        std::move(history), datasetSec, trainSec};
    return result;
}

} // namespace mm
