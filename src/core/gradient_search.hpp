/**
 * @file
 * Phase 2: gradient search over the surrogate (Section 4.2).
 *
 * Projected Gradient Descent in the surrogate's normalized feature
 * space: differentiate log(predicted EDP) with respect to the candidate
 * mapping, step against the gradient (problem-id features held fixed),
 * round each attribute to its domain and project onto the valid map
 * space, then re-encode the projected mapping as the next iterate.
 * Local minima are escaped by injecting a random valid mapping every N
 * steps, accepted with a simulated-annealing rule over *surrogate*
 * predictions (Appendix A: inject every 10 iterations, temperature 50
 * decayed x0.75 every 50 injections, learning rate 1 with no decay).
 *
 * The true cost model is never consulted for any search decision — only
 * the SearchRecorder's instrumentation probes it to plot search quality,
 * mirroring the paper's measurement methodology.
 */
#pragma once

#include "core/surrogate.hpp"
#include "search/search.hpp"

namespace mm {

/**
 * Phase-2 hyper-parameters.
 *
 * Defaults follow Appendix A (injection every 10 iterations, T=50
 * decayed x0.75 every 50 injections, no lr decay) except the learning
 * rate: the paper grid-searched lr=1 for its raw-feature normalization;
 * our log2-conditioned features rescale the step geometry, and the same
 * grid-search methodology selects 0.3 here (see
 * bench/ablation_gradient_search).
 */
struct GradientSearchConfig
{
    double learningRate = 0.3;
    /** Inject a random restart candidate every this many steps. */
    int injectEvery = 10;
    double initTemperature = 50.0;
    double tempDecay = 0.75;
    int decayEveryInjections = 50;
    /** Disable random injection entirely (ablation switch). */
    bool enableInjection = true;
};

/** The Mind Mappings searcher. */
class MindMappingsSearcher : public Searcher
{
  public:
    /**
     * @param model     True cost model (trace instrumentation only).
     * @param surrogate Trained Phase-1 surrogate for this algorithm.
     */
    MindMappingsSearcher(const CostModel &model, Surrogate &surrogate,
                         GradientSearchConfig cfg = {},
                         const TimingModel &timing = {});

    std::string name() const override { return "MM"; }
    SearchResult run(const SearchBudget &budget, Rng &rng) override;

  private:
    const CostModel *model;
    Surrogate *surrogate;
    GradientSearchConfig cfg;
    double stepLatency;
};

} // namespace mm
