/**
 * @file
 * Phase 2: gradient search over the surrogate (Section 4.2).
 *
 * Projected Gradient Descent in the surrogate's normalized feature
 * space: differentiate log(predicted EDP) with respect to the candidate
 * mapping, step against the gradient (problem-id features held fixed),
 * round each attribute to its domain and project onto the valid map
 * space, then re-encode the projected mapping as the next iterate.
 * Local minima are escaped by injecting a random valid mapping every N
 * steps, accepted with a simulated-annealing rule over *surrogate*
 * predictions (Appendix A: inject every 10 iterations, temperature 50
 * decayed x0.75 every 50 injections, learning rate 1 with no decay).
 *
 * The true cost model is never consulted for any search decision — only
 * the SearchRecorder's instrumentation probes it to plot search quality,
 * mirroring the paper's measurement methodology.
 *
 * The chain state machine is factored out of the searcher loop as
 * GradientChain so that a driver can run many independent restart
 * chains and batch their surrogate evaluations into one MLP
 * forward/backward per step (see search/parallel_driver.hpp); the
 * single-chain MindMappingsSearcher is the batch-of-one special case.
 */
#pragma once

#include "core/surrogate.hpp"
#include "mapping/codec.hpp"
#include "search/search.hpp"

namespace mm {

/**
 * Phase-2 hyper-parameters.
 *
 * Defaults follow Appendix A (injection every 10 iterations, T=50
 * decayed x0.75 every 50 injections, no lr decay) except the learning
 * rate: the paper grid-searched lr=1 for its raw-feature normalization;
 * our log2-conditioned features rescale the step geometry, and the same
 * grid-search methodology selects 0.3 here (see
 * bench/ablation_gradient_search).
 */
struct GradientSearchConfig
{
    double learningRate = 0.3;
    /** Inject a random restart candidate every this many steps. */
    int injectEvery = 10;
    double initTemperature = 50.0;
    double tempDecay = 0.75;
    int decayEveryInjections = 50;
    /** Disable random injection entirely (ablation switch). */
    bool enableInjection = true;
    /**
     * Warm-start source, consumed by the batched driver (the chain
     * itself always starts random): "" starts all chains random, "BB"
     * restarts chain 0 from a bound-guided branch-and-bound incumbent
     * (src/bound/bb_search.hpp). The seeding leaf evaluations are
     * charged cost-function queries like any other step.
     */
    std::string seedFrom;
    /** Node cap of the seeding branch-and-bound run. */
    int64_t seedNodes = 256;
};

/**
 * One independent Phase-2 chain with its own RNG stream.
 *
 * The driver loop per step:
 *   1. reads features() of every chain into one batch row each,
 *   2. runs Surrogate::gradientBatch once for the whole batch,
 *   3. calls applyGradient(row) on every chain — parallelizable, since
 *      it touches only chain-local state and const space/codec/whitening
 *      data,
 *   4. records every chain's current() as that step's proposals,
 *   5. services injection trials: prepareInjection() on each willing
 *      chain (chain-local RNG), one batched predictNormEdpBatch over
 *      the [current, candidate] rows, then resolveInjection().
 *
 * All randomness comes from the chain's own stream, so a fixed seed is
 * bitwise reproducible at any thread count and any batch composition.
 */
class GradientChain
{
  public:
    /** Starts on a random valid mapping drawn from @p rng (step 1 of
     * Section 4.2). @p surrogate is used for conditioning/whitening
     * only; the driver owns all MLP evaluations. */
    GradientChain(const MapSpace &space, const MappingCodec &codec,
                  Surrogate &surrogate, const GradientSearchConfig &cfg,
                  Rng rng);

    /** z-scored features of the current iterate. */
    const std::vector<double> &features() const { return z; }

    /** The mapping the chain currently sits on. */
    const Mapping &current() const { return cur; }

    /** Restart the chain from @p m (must be valid): the next gradient
     * step descends from there. Consumes no randomness. */
    void restartFrom(const Mapping &m);

    /**
     * Consume this step's surrogate gradient row (steps 4-5 of Section
     * 4.2): descend with problem-id coordinates frozen, round to
     * attribute domains, project onto the valid map space, re-encode.
     * current() afterwards is this step's proposal.
     */
    void applyGradient(std::span<const float> gradRow);

    /** True when the annealed random-injection trial is due (step 6). */
    bool wantsInjection() const;

    /** Draw the injection candidate from the chain's own stream. */
    void prepareInjection();

    /** z-scored features of the pending injection candidate. */
    const std::vector<double> &injectionFeatures() const { return zCand; }

    /** Annealed acceptance over surrogate costs of current/candidate. */
    void resolveInjection(double costCurrent, double costCandidate);

  private:
    std::vector<double> encodeZ(const Mapping &m) const;

    const MapSpace *space;
    const MappingCodec *codec;
    Surrogate *surrogate;
    GradientSearchConfig cfg;
    Rng rng;
    Mapping cur;
    std::vector<double> z;
    Mapping candidate;
    std::vector<double> zCand;
    double temperature;
    int64_t stepsTaken = 0;
    int64_t injections = 0;
};

/** The Mind Mappings searcher (single chain). */
class MindMappingsSearcher : public Searcher
{
  public:
    /**
     * @param model     True cost model (trace instrumentation only).
     * @param surrogate Trained Phase-1 surrogate for this algorithm.
     */
    MindMappingsSearcher(const CostModel &model, Surrogate &surrogate,
                         GradientSearchConfig cfg = {},
                         const TimingModel &timing = {});

    std::string name() const override { return "MM"; }
    SearchResult run(SearchContext &ctx) override;
    using Searcher::run;

  private:
    const CostModel *model;
    Surrogate *surrogate;
    GradientSearchConfig cfg;
    double stepLatency;
};

} // namespace mm
