#include "core/gradient_search.hpp"

#include <cmath>

#include "search/parallel_driver.hpp"

namespace mm {

GradientChain::GradientChain(const MapSpace &space_,
                             const MappingCodec &codec_,
                             Surrogate &surrogate_,
                             const GradientSearchConfig &cfg_, Rng rng_)
    : space(&space_), codec(&codec_), surrogate(&surrogate_), cfg(cfg_),
      rng(rng_), temperature(cfg_.initTemperature)
{
    MM_ASSERT(cfg.learningRate > 0.0, "non-positive learning rate");
    MM_ASSERT(cfg.injectEvery > 0, "injection interval must be positive");
    cur = space->randomValid(rng);
    z = encodeZ(cur);
}

std::vector<double>
GradientChain::encodeZ(const Mapping &m) const
{
    return surrogate->normalizeInput(codec->encode(m));
}

void
GradientChain::restartFrom(const Mapping &m)
{
    cur = m;
    z = encodeZ(cur);
}

void
GradientChain::applyGradient(std::span<const float> gradRow)
{
    MM_ASSERT(gradRow.size() == z.size(), "gradient arity mismatch");
    // The problem id is an input to f*, not a search variable — freeze
    // its coordinates.
    const size_t pidLo = codec->pidOffset();
    const size_t pidHi = pidLo + codec->pidCount();
    for (size_t i = 0; i < z.size(); ++i) {
        if (i >= pidLo && i < pidHi)
            continue;
        z[i] -= cfg.learningRate * double(gradRow[i]);
    }

    // Round to attribute domains and project to validity, then
    // re-encode so the iterate matches the projected point.
    cur = codec->decode(surrogate->denormalizeInput(z));
    z = encodeZ(cur);
    ++stepsTaken;
}

bool
GradientChain::wantsInjection() const
{
    return cfg.enableInjection && stepsTaken > 0
           && stepsTaken % cfg.injectEvery == 0;
}

void
GradientChain::prepareInjection()
{
    candidate = space->randomValid(rng);
    zCand = encodeZ(candidate);
}

void
GradientChain::resolveInjection(double costCurrent, double costCandidate)
{
    double delta = costCandidate - costCurrent;
    if (delta <= 0.0
        || rng.uniformReal() < std::exp(-delta / temperature)) {
        cur = std::move(candidate);
        z = std::move(zCand);
    }
    ++injections;
    if (injections % cfg.decayEveryInjections == 0)
        temperature *= cfg.tempDecay;
}

MindMappingsSearcher::MindMappingsSearcher(const CostModel &model_,
                                           Surrogate &surrogate_,
                                           GradientSearchConfig cfg_,
                                           const TimingModel &timing)
    : model(&model_), surrogate(&surrogate_), cfg(cfg_),
      stepLatency(timing.surrogateStepSec)
{
    MM_ASSERT(cfg.learningRate > 0.0, "non-positive learning rate");
    MM_ASSERT(cfg.injectEvery > 0, "injection interval must be positive");
}

SearchResult
MindMappingsSearcher::run(SearchContext &ctx)
{
    // The batched driver with one chain on one thread is exactly the
    // sequential algorithm of Section 4.2.
    return runBatchedGradientSearch(*model, *surrogate, cfg,
                                    /*chainCount=*/1, /*threadCount=*/1,
                                    stepLatency, ctx, name());
}

} // namespace mm
