#include "core/gradient_search.hpp"

#include <cmath>

#include "common/clock.hpp"
#include "mapping/codec.hpp"

namespace mm {

MindMappingsSearcher::MindMappingsSearcher(const CostModel &model_,
                                           Surrogate &surrogate_,
                                           GradientSearchConfig cfg_,
                                           const TimingModel &timing)
    : model(&model_), surrogate(&surrogate_), cfg(cfg_),
      stepLatency(timing.surrogateStepSec)
{
    MM_ASSERT(cfg.learningRate > 0.0, "non-positive learning rate");
    MM_ASSERT(cfg.injectEvery > 0, "injection interval must be positive");
}

SearchResult
MindMappingsSearcher::run(const SearchBudget &budget, Rng &rng)
{
    WallTimer timer;
    const MapSpace &space = model->space();
    MappingCodec codec(space);
    MM_ASSERT(codec.featureCount() == surrogate->featureCount(),
              "surrogate was trained for a different algorithm");

    SearchRecorder rec(*model, budget, stepLatency);

    auto encodeZ = [&](const Mapping &m) {
        return surrogate->normalizeInput(codec.encode(m));
    };

    // m@0: a random valid mapping (step 1 of Section 4.2).
    Mapping current = space.randomValid(rng);
    std::vector<double> z = encodeZ(current);

    double temperature = cfg.initTemperature;
    int64_t injections = 0;
    std::vector<double> grad;

    while (!rec.exhausted()) {
        // Steps 2-3: forward + backward through the surrogate.
        surrogate->gradient(z, grad);

        // Step 4: descend. The problem id is an input to f*, not a
        // search variable — freeze its coordinates.
        for (size_t i = codec.pidOffset();
             i < codec.pidOffset() + codec.pidCount(); ++i)
            grad[i] = 0.0;
        for (size_t i = 0; i < z.size(); ++i)
            z[i] -= cfg.learningRate * grad[i];

        // Step 5: round to attribute domains and project to validity,
        // then re-encode so the iterate matches the projected point.
        current = codec.decode(surrogate->denormalizeInput(z));
        z = encodeZ(current);

        // Charged surrogate step; the true-EDP return value is trace
        // instrumentation and deliberately unused.
        rec.step(current);

        // Step 6: random injection with annealed acceptance, judged by
        // surrogate predictions only.
        if (cfg.enableInjection && !rec.exhausted()
            && rec.steps() % cfg.injectEvery == 0) {
            Mapping candidate = space.randomValid(rng);
            std::vector<double> zCand = encodeZ(candidate);
            double costCand = surrogate->predictNormEdp(zCand);
            double costCur = surrogate->predictNormEdp(z);
            double delta = costCand - costCur;
            if (delta <= 0.0
                || rng.uniformReal() < std::exp(-delta / temperature)) {
                current = std::move(candidate);
                z = std::move(zCand);
            }
            ++injections;
            if (injections % cfg.decayEveryInjections == 0)
                temperature *= cfg.tempDecay;
        }
    }

    SearchResult result = rec.finish(name());
    result.wallSec = timer.elapsedSec();
    return result;
}

} // namespace mm
