/**
 * @file
 * Feature/target conditioning for the surrogate.
 *
 * Tile factors, spatial factors and problem-id bounds span four orders
 * of magnitude; lower-bound-normalized energies/cycles span six. Raw
 * z-scoring of such heavy-tailed values leaves a regression problem
 * where the bulk of samples collapses into a sliver of the normalized
 * range and the surrogate learns almost nothing (we measured log-EDP
 * correlation ~0.07 without this). Both are therefore log-transformed
 * before whitening:
 *
 *  - input features: log2 on the pid + tiling + parallelism segments
 *    (a contiguous prefix of the codec layout); loop-order ranks and
 *    bank counts stay linear,
 *  - output meta-statistics: natural log of every (positive,
 *    lower-bound-normalized) component.
 *
 * These are monotone reparameterizations — they change conditioning,
 * not the semantics of the paper's representation — and as a bonus the
 * gradient step becomes multiplicative in tile-factor space, matching
 * the geometry of factorization search.
 */
#pragma once

#include <cmath>
#include <span>

#include "common/error.hpp"

namespace mm {

/** log2 transform over a prefix of the feature vector. */
struct FeatureTransform
{
    /** Features in [0, logPrefix) are log2-transformed. */
    size_t logPrefix = 0;

    void
    apply(std::span<double> features) const
    {
        MM_ASSERT(logPrefix <= features.size(), "transform prefix too big");
        for (size_t i = 0; i < logPrefix; ++i)
            features[i] = std::log2(std::max(features[i], 1e-12));
    }

    void
    invert(std::span<double> features) const
    {
        MM_ASSERT(logPrefix <= features.size(), "transform prefix too big");
        for (size_t i = 0; i < logPrefix; ++i)
            features[i] = std::exp2(features[i]);
    }
};

/** Natural log applied to every (positive) output component. */
inline void
logTransformOutputs(std::span<double> outputs)
{
    for (auto &v : outputs)
        v = std::log(std::max(v, 1e-12));
}

} // namespace mm
