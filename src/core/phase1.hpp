/**
 * @file
 * Phase 1: train the differentiable surrogate (Section 4.1, 5.5).
 *
 * Two presets are provided:
 *  - `Paper`: the paper's exact recipe — 9-layer MLP
 *    [64,256,1024,2048,2048,1024,256,64] + output head, 100 epochs,
 *    SGD momentum 0.9, lr 1e-2 decayed x0.1 every 25 epochs, batch 128,
 *    Huber loss, 10 M samples.
 *  - `Fast`: a narrower network and smaller dataset with the same
 *    structure, sized so the full pipeline runs on one CPU core in
 *    seconds-to-minutes (see DESIGN.md "Substitutions"). All reproduced
 *    claims are relative, so they survive this scaling; every knob is
 *    overridable to run at paper scale.
 */
#pragma once

#include "core/dataset.hpp"
#include "core/surrogate.hpp"
#include "nn/trainer.hpp"

namespace mm {

/** Training-scale presets. */
enum class SurrogatePreset { Fast, Paper };

/** Full Phase-1 configuration (resolve() fills preset defaults). */
struct Phase1Config
{
    SurrogatePreset preset = SurrogatePreset::Fast;
    DatasetConfig data;
    TrainConfig train;
    /** Hidden-layer widths; empty selects the preset topology. */
    std::vector<size_t> hidden;
    /**
     * Train a purely linear surrogate instead of an MLP — the "simpler
     * differentiable model" question the paper leaves open
     * (Section 4.1). Still differentiable, so Phase 2 works unchanged.
     */
    bool linear = false;
    /**
     * Execution lanes shared by dataset labeling and training GEMMs
     * (0 = hardware concurrency). Results are bitwise identical at any
     * value, so this is excluded from the cache fingerprint.
     */
    int threads = 1;
    uint64_t seed = 1;
    bool resolved = false;

    /** Fill unset fields from the preset; idempotent. */
    void resolve();

    /** Stable identity string for caching. */
    std::string fingerprint(const AcceleratorSpec &arch,
                            const AlgorithmSpec &algo) const;
};

/** Phase-1 output: the surrogate plus its training curve. */
struct Phase1Result
{
    Surrogate surrogate;
    std::vector<EpochReport> history;
    double datasetSec = 0.0;
    double trainSec = 0.0;
    /** Streamed path only: a committed store was reused as-is, so
     * datasetSec timed a manifest validation, not generation. */
    bool datasetReused = false;
};

/** Build the MLP layer specs for the given hidden widths and head. */
std::vector<LayerSpec> surrogateTopology(const std::vector<size_t> &hidden,
                                         size_t outputDim);

/** Run Phase 1 end to end: generate dataset, train, wrap as Surrogate. */
Phase1Result trainSurrogate(const AcceleratorSpec &arch,
                            const AlgorithmSpec &algo, Phase1Config cfg,
                            const std::function<void(const EpochReport &)>
                                &onEpoch = {});

} // namespace mm
