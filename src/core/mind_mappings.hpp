/**
 * @file
 * The Mind Mappings public API (Appendix B).
 *
 * One MindMappings instance binds an accelerator and a target algorithm.
 * prepare() runs (or cache-loads) Phase 1 once; search() then answers
 * any number of target problems of that algorithm via Phase-2 gradient
 * search — the offline training cost is amortized across problems,
 * exactly the paper's deployment model. The accelerator-side routines
 * the framework requires (getMapping / isMember / getProjection) are
 * exposed directly.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   MindMappings mm(AcceleratorSpec::paperDefault(), cnnLayerAlgo());
 *   mm.prepare();                                  // Phase 1 (cached)
 *   auto result = mm.search(problem, SearchBudget::bySteps(1000), rng);
 *   std::cout << renderMapping(...) << result.bestNormEdp;
 */
#pragma once

#include <optional>

#include "core/cache.hpp"
#include "core/gradient_search.hpp"
#include "core/phase1.hpp"

namespace mm {

/** End-to-end configuration for the facade. */
struct MindMappingsOptions
{
    Phase1Config phase1;
    GradientSearchConfig search;
    TimingModel timing;
    /**
     * Phase-2 parallelism: independent gradient chains evaluated as a
     * single surrogate batch per step. 1 selects the paper's sequential
     * search; >1 the batched multi-threaded driver
     * (search/parallel_driver.hpp). Fixed seeds stay bitwise
     * reproducible at any thread count.
     */
    int searchChains = 1;
    /** Fork-join lanes for chain-local work; 0 = hardware concurrency. */
    int searchThreads = 0;
    bool useCache = true;
    /** Empty selects SurrogateCache::defaultDir(). */
    std::string cacheDir;
};

/** Facade tying Phase 1 and Phase 2 together for one algorithm. */
class MindMappings
{
  public:
    MindMappings(AcceleratorSpec arch, const AlgorithmSpec &algo,
                 MindMappingsOptions opts = {});

    /**
     * Phase 1: train the surrogate or load it from cache. Idempotent;
     * returns true when a cached model was used.
     */
    bool prepare();

    bool prepared() const { return surrogateModel.has_value(); }

    /** The trained surrogate (prepare() must have run). */
    Surrogate &surrogate();

    /** Training curve of the last prepare() (empty on cache hit). */
    const std::vector<EpochReport> &trainingHistory() const
    {
        return history;
    }

    /** Appendix B: a uniformly random valid mapping for @p problem. */
    Mapping getMapping(const Problem &problem, Rng &rng) const;

    /** Appendix B: validity of @p m for @p problem. */
    bool isMember(const Problem &problem, const Mapping &m) const;

    /** Appendix B: projection of @p m onto the valid map space. */
    Mapping getProjection(const Problem &problem, const Mapping &m) const;

    /** Phase 2: search @p problem under @p budget. */
    SearchResult search(const Problem &problem, const SearchBudget &budget,
                        Rng &rng);

    /**
     * Phase 2 under the full run contract: @p ctx carries the budget,
     * RNG, and optional SearchObserver / StopToken, so facade searches
     * are observable and cancellable like any registry searcher.
     */
    SearchResult search(const Problem &problem, SearchContext &ctx);

    /** True normalized EDP of a mapping (evaluation convenience). */
    double normalizedEdp(const Problem &problem, const Mapping &m) const;

    const AcceleratorSpec &arch() const { return archSpec; }
    const AlgorithmSpec &algorithm() const { return *algo; }
    const MindMappingsOptions &options() const { return opts; }

  private:
    AcceleratorSpec archSpec;
    const AlgorithmSpec *algo;
    MindMappingsOptions opts;
    std::optional<Surrogate> surrogateModel;
    std::vector<EpochReport> history;
};

} // namespace mm
