#include "core/normalizer.hpp"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace mm {

Normalizer
Normalizer::fit(const Matrix &data)
{
    MM_ASSERT(data.rows() > 0, "cannot fit normalizer on empty data");
    Normalizer n;
    n.means.resize(data.cols());
    n.stds.resize(data.cols());
    for (size_t c = 0; c < data.cols(); ++c) {
        RunningStat stat;
        for (size_t r = 0; r < data.rows(); ++r)
            stat.push(double(data(r, c)));
        n.means[c] = stat.mean();
        n.stds[c] = std::max(stat.stddev(), 1e-8);
    }
    return n;
}

Normalizer
Normalizer::fromMoments(std::vector<double> means, std::vector<double> stds)
{
    MM_ASSERT(means.size() == stds.size(), "moments arity mismatch");
    Normalizer n;
    n.means = std::move(means);
    n.stds = std::move(stds);
    for (double &s : n.stds)
        s = std::max(s, 1e-8);
    return n;
}

Normalizer
StreamingNormalizerFit::finish() const
{
    MM_ASSERT(rows() > 0, "cannot fit normalizer on empty stream");
    std::vector<double> means(stats.size()), stds(stats.size());
    for (size_t c = 0; c < stats.size(); ++c) {
        means[c] = stats[c].mean();
        stds[c] = stats[c].stddev();
    }
    return Normalizer::fromMoments(std::move(means), std::move(stds));
}

std::vector<double>
Normalizer::apply(std::span<const double> raw) const
{
    MM_ASSERT(raw.size() == dim(), "normalizer arity mismatch");
    std::vector<double> out(raw.size());
    for (size_t i = 0; i < raw.size(); ++i)
        out[i] = (raw[i] - means[i]) / stds[i];
    return out;
}

std::vector<double>
Normalizer::invert(std::span<const double> normed) const
{
    MM_ASSERT(normed.size() == dim(), "normalizer arity mismatch");
    std::vector<double> out(normed.size());
    for (size_t i = 0; i < normed.size(); ++i)
        out[i] = normed[i] * stds[i] + means[i];
    return out;
}

void
Normalizer::applyInPlace(Matrix &data) const
{
    MM_ASSERT(data.cols() == dim(), "normalizer arity mismatch");
    for (size_t r = 0; r < data.rows(); ++r)
        normalizeRow(data.row(r), data.row(r));
}

void
Normalizer::normalizeRow(std::span<const float> raw,
                         std::span<float> out) const
{
    MM_ASSERT(raw.size() == dim() && out.size() == dim(),
              "normalizer arity mismatch");
    for (size_t c = 0; c < dim(); ++c)
        out[c] = float((double(raw[c]) - means[c]) / stds[c]);
}

void
Normalizer::save(std::ostream &os) const
{
    uint64_t n = means.size();
    os.write(reinterpret_cast<const char *>(&n), sizeof(n));
    os.write(reinterpret_cast<const char *>(means.data()),
             std::streamsize(n * sizeof(double)));
    os.write(reinterpret_cast<const char *>(stds.data()),
             std::streamsize(n * sizeof(double)));
}

Normalizer
Normalizer::load(std::istream &is)
{
    uint64_t n = 0;
    is.read(reinterpret_cast<char *>(&n), sizeof(n));
    MM_ASSERT(bool(is), "truncated normalizer stream");
    Normalizer norm;
    norm.means.resize(n);
    norm.stds.resize(n);
    is.read(reinterpret_cast<char *>(norm.means.data()),
            std::streamsize(n * sizeof(double)));
    is.read(reinterpret_cast<char *>(norm.stds.data()),
            std::streamsize(n * sizeof(double)));
    MM_ASSERT(bool(is), "truncated normalizer stream");
    return norm;
}

} // namespace mm
