#include "core/shard_store.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"

namespace mm {

namespace {

constexpr uint32_t kShardMagic = 0x4d4d5331;    // "MMS1"
constexpr uint32_t kManifestMagic = 0x4d4d4d46; // "MMMF"
constexpr uint32_t kStoreVersion = 1;

template <typename T>
void
put(std::ostream &os, T v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
bool
get(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return bool(is);
}

/**
 * commitFileAtomic for a checksummed blob; failures raise FatalError —
 * losing dataset shards silently would corrupt the run.
 */
void
commitBlobFile(const std::string &path, uint32_t magic, uint32_t version,
               const std::string &body)
{
    bool ok = commitFileAtomic(path, [&](std::ostream &os) {
        writeChecksummedBlob(os, magic, version, body);
    });
    if (!ok)
        fatal("cannot commit " + path);
}

/** Serialized fixed-width shard body header. */
struct ShardHeader
{
    uint64_t shardIndex;
    uint64_t rowCount;
    uint64_t features;
    uint64_t outputs;
    uint64_t configHash;
};

std::optional<std::string>
readBlobFile(const std::string &path, uint32_t magic, uint32_t version,
             std::string *err)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (err)
            *err = "missing file";
        return std::nullopt;
    }
    return readChecksummedBlob(is, magic, version, err);
}

} // namespace

uint64_t
fnv1a64(const void *data, size_t n, uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

uint64_t
fnv1a64(const std::string &s)
{
    return fnv1a64(s.data(), s.size());
}

void
writeChecksummedBlob(std::ostream &os, uint32_t magic, uint32_t version,
                     const std::string &body)
{
    put(os, magic);
    put(os, version);
    put(os, uint64_t(body.size()));
    os.write(body.data(), std::streamsize(body.size()));
    put(os, fnv1a64(body));
    put(os, uint32_t(~magic));
}

std::optional<std::string>
readChecksummedBlob(std::istream &is, uint32_t magic, uint32_t version,
                    std::string *err, bool expectEof)
{
    auto fail = [&](const std::string &why) -> std::optional<std::string> {
        if (err)
            *err = why;
        return std::nullopt;
    };
    uint32_t m = 0, v = 0;
    uint64_t size = 0;
    if (!get(is, m) || m != magic)
        return fail("bad magic (not a recognized file)");
    if (!get(is, v) || v != version)
        return fail(strCat("unsupported format version ", v, " (expected ",
                           version, ")"));
    if (!get(is, size))
        return fail("truncated file (no body size)");
    // Bound the allocation by what the stream can actually hold: a
    // corrupt size field must produce a diagnostic, not a giant
    // std::string allocation (bad_alloc would escape the corrupt-file
    // contract). Footer = u64 checksum + u32 magic.
    const std::istream::pos_type bodyPos = is.tellg();
    is.seekg(0, std::ios::end);
    const std::istream::pos_type endPos = is.tellg();
    if (bodyPos == std::istream::pos_type(-1)
        || endPos == std::istream::pos_type(-1))
        return fail("unseekable stream");
    is.seekg(bodyPos);
    const uint64_t remaining = uint64_t(endPos - bodyPos);
    const uint64_t footerBytes = sizeof(uint64_t) + sizeof(uint32_t);
    if (remaining < footerBytes || size > remaining - footerBytes)
        return fail("corrupt or truncated body size");
    std::string body(size_t(size), '\0');
    is.read(body.data(), std::streamsize(size));
    if (size_t(is.gcount()) != size)
        return fail("truncated file (short body)");
    uint64_t sum = 0;
    uint32_t foot = 0;
    if (!get(is, sum) || !get(is, foot))
        return fail("truncated file (no footer)");
    if (foot != uint32_t(~magic))
        return fail("bad footer magic");
    if (sum != fnv1a64(body))
        return fail("checksum mismatch (corrupt or torn write)");
    if (expectEof && is.peek() != std::char_traits<char>::eof())
        return fail("trailing bytes after footer");
    return body;
}

bool
commitFileAtomic(const std::string &path,
                 const std::function<void(std::ostream &)> &writeBody)
{
    // Unique tmp name: concurrent writers must never share one.
    static std::atomic<uint64_t> counter{0};
    std::string tmp = strCat(path, ".tmp.", uint64_t(::getpid()), ".",
                             counter.fetch_add(1));
    std::error_code ec;
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return false;
        writeBody(os);
        os.flush();
        if (!os) {
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

std::string
shardPath(const std::string &dir, size_t idx)
{
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%06zu.mms", idx);
    return dir + "/" + name;
}

std::string
manifestPath(const std::string &dir)
{
    return dir + "/manifest.mms";
}

bool
readShardFile(const std::string &dir, size_t idx, const ShardLayout &expect,
              Matrix &x, Matrix &y, std::string *err)
{
    auto body =
        readBlobFile(shardPath(dir, idx), kShardMagic, kStoreVersion, err);
    if (!body)
        return false;
    auto fail = [&](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };

    std::istringstream is(*body);
    ShardHeader h{};
    if (!get(is, h.shardIndex) || !get(is, h.rowCount)
        || !get(is, h.features) || !get(is, h.outputs)
        || !get(is, h.configHash))
        return fail("truncated shard header");
    if (h.shardIndex != idx)
        return fail(strCat("shard index mismatch (header says ",
                           h.shardIndex, ")"));
    if (h.features != expect.features || h.outputs != expect.outputs)
        return fail("shard arity mismatch");
    if (h.configHash != expect.configHash)
        return fail("shard belongs to a different dataset config");
    if (h.rowCount != expect.shardRows(idx))
        return fail("shard row count mismatch");

    const size_t rows = size_t(h.rowCount);
    const size_t xFloats = rows * size_t(h.features);
    const size_t yFloats = rows * size_t(h.outputs);
    const size_t expectBytes =
        sizeof(ShardHeader) + (xFloats + yFloats) * sizeof(float);
    if (body->size() != expectBytes)
        return fail("shard payload size mismatch");

    x.ensureShape(rows, size_t(h.features));
    y.ensureShape(rows, size_t(h.outputs));
    is.read(reinterpret_cast<char *>(x.data()),
            std::streamsize(xFloats * sizeof(float)));
    is.read(reinterpret_cast<char *>(y.data()),
            std::streamsize(yFloats * sizeof(float)));
    MM_ASSERT(bool(is), "shard body shorter than its validated size");
    return true;
}

std::optional<uint64_t>
peekShardConfigHash(const std::string &dir, size_t idx)
{
    std::ifstream is(shardPath(dir, idx), std::ios::binary);
    if (!is)
        return std::nullopt;
    uint32_t magic = 0, version = 0;
    uint64_t size = 0;
    if (!get(is, magic) || magic != kShardMagic || !get(is, version)
        || version != kStoreVersion || !get(is, size))
        return std::nullopt;
    ShardHeader h{};
    if (!get(is, h.shardIndex) || !get(is, h.rowCount)
        || !get(is, h.features) || !get(is, h.outputs)
        || !get(is, h.configHash) || h.shardIndex != idx)
        return std::nullopt;
    return h.configHash;
}

// ---------------------------------------------------------------------------
// ShardStoreWriter
// ---------------------------------------------------------------------------

ShardStoreWriter::ShardStoreWriter(std::string dir, ShardLayout layout)
    : root(std::move(dir)), shape(layout)
{
    MM_ASSERT(!root.empty(), "shard store needs a directory");
    MM_ASSERT(shape.shardSize > 0, "shard size must be positive");
    MM_ASSERT(shape.rows > 0, "shard store needs rows");
    MM_ASSERT(shape.features > 0 && shape.outputs > 0,
              "shard store needs arity");
    MM_ASSERT(shape.shardCount
                  == (shape.rows + shape.shardSize - 1) / shape.shardSize,
              "shard count inconsistent with rows/shardSize");
    MM_ASSERT(shape.trainRows + shape.testRows == shape.rows,
              "split inconsistent with rows");
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    if (ec)
        fatal("cannot create stream directory " + root);
}

bool
ShardStoreWriter::shardValid(size_t idx) const
{
    Matrix x, y;
    return readShardFile(root, idx, shape, x, y, nullptr);
}

void
ShardStoreWriter::writeShard(size_t idx, const Matrix &x, const Matrix &y)
{
    MM_ASSERT(idx < shape.shardCount, "shard index out of range");
    const size_t rows = size_t(shape.shardRows(idx));
    MM_ASSERT(x.rows() == rows && y.rows() == rows,
              "shard row count mismatch");
    MM_ASSERT(x.cols() == shape.features && y.cols() == shape.outputs,
              "shard arity mismatch");

    std::ostringstream body(std::ios::binary);
    put(body, uint64_t(idx));
    put(body, uint64_t(rows));
    put(body, shape.features);
    put(body, shape.outputs);
    put(body, shape.configHash);
    body.write(reinterpret_cast<const char *>(x.data()),
               std::streamsize(rows * x.cols() * sizeof(float)));
    body.write(reinterpret_cast<const char *>(y.data()),
               std::streamsize(rows * y.cols() * sizeof(float)));
    commitBlobFile(shardPath(root, idx), kShardMagic, kStoreVersion,
                   body.str());
}

void
ShardStoreWriter::commit(const Normalizer &inputNorm,
                         const Normalizer &outputNorm)
{
    MM_ASSERT(inputNorm.dim() == shape.features
                  && outputNorm.dim() == shape.outputs,
              "manifest normalizer arity mismatch");
    std::ostringstream body(std::ios::binary);
    put(body, shape.rows);
    put(body, shape.features);
    put(body, shape.outputs);
    put(body, shape.shardSize);
    put(body, shape.shardCount);
    put(body, shape.trainRows);
    put(body, shape.testRows);
    put(body, shape.featureLogPrefix);
    put(body, shape.configHash);
    inputNorm.save(body);
    outputNorm.save(body);
    commitBlobFile(manifestPath(root), kManifestMagic, kStoreVersion,
                   body.str());
}

// ---------------------------------------------------------------------------
// ShardedDatasetReader
// ---------------------------------------------------------------------------

std::optional<ShardManifest>
ShardedDatasetReader::tryReadManifest(const std::string &dir)
{
    auto body = readBlobFile(manifestPath(dir), kManifestMagic,
                             kStoreVersion, nullptr);
    if (!body)
        return std::nullopt;
    std::istringstream is(*body);
    ShardManifest m;
    ShardLayout &l = m.layout;
    if (!get(is, l.rows) || !get(is, l.features) || !get(is, l.outputs)
        || !get(is, l.shardSize) || !get(is, l.shardCount)
        || !get(is, l.trainRows) || !get(is, l.testRows)
        || !get(is, l.featureLogPrefix) || !get(is, l.configHash))
        return std::nullopt;
    if (l.shardSize == 0 || l.rows == 0
        || l.shardCount != (l.rows + l.shardSize - 1) / l.shardSize
        || l.trainRows + l.testRows != l.rows)
        return std::nullopt;
    m.inputNorm = Normalizer::load(is);
    m.outputNorm = Normalizer::load(is);
    if (m.inputNorm.dim() != l.features || m.outputNorm.dim() != l.outputs)
        return std::nullopt;
    return m;
}

ShardedDatasetReader::ShardedDatasetReader(std::string dir,
                                           size_t cacheShards)
    : root(std::move(dir))
{
    auto m = tryReadManifest(root);
    MM_ASSERT(m.has_value(),
              strCat("no valid shard-store manifest in '", root,
                     "' (partial or corrupt dataset run)"));
    manifest = std::move(*m);
    for (size_t s = 0; s < manifest.layout.shardCount; ++s) {
        MM_ASSERT(std::filesystem::exists(shardPath(root, s)),
                  strCat("missing shard file ", shardPath(root, s)));
    }
    if (cacheShards == 0)
        cacheShards = size_t(std::max<int64_t>(1, envInt("MM_SHARD_CACHE", 8)));
    cache.resize(cacheShards);
}

void
ShardedDatasetReader::readShard(size_t idx, Matrix &x, Matrix &y) const
{
    MM_ASSERT(idx < manifest.layout.shardCount, "shard index out of range");
    std::string err;
    bool ok = readShardFile(root, idx, manifest.layout, x, y, &err);
    MM_ASSERT(ok, strCat("cannot read ", shardPath(root, idx), ": ", err));
}

void
ShardedDatasetReader::forEachRow(
    size_t rowBegin, size_t rowEnd,
    const std::function<void(size_t, std::span<const float>,
                             std::span<const float>)> &fn) const
{
    const ShardLayout &l = manifest.layout;
    MM_ASSERT(rowBegin <= rowEnd && rowEnd <= l.rows,
              "row range out of bounds");
    Matrix x, y;
    for (size_t row = rowBegin; row < rowEnd;) {
        const size_t shard = row / l.shardSize;
        readShard(shard, x, y);
        const size_t shardBegin = shard * size_t(l.shardSize);
        const size_t last = std::min(rowEnd, shardBegin + x.rows());
        for (; row < last; ++row)
            fn(row, x.row(row - shardBegin), y.row(row - shardBegin));
    }
}

void
ShardedDatasetReader::materialize(size_t rowBegin, size_t rowCount,
                                  Matrix &x, Matrix &y) const
{
    x.ensureShape(rowCount, size_t(manifest.layout.features));
    y.ensureShape(rowCount, size_t(manifest.layout.outputs));
    forEachRow(rowBegin, rowBegin + rowCount,
               [&](size_t row, std::span<const float> xr,
                   std::span<const float> yr) {
                   std::copy(xr.begin(), xr.end(),
                             x.row(row - rowBegin).begin());
                   std::copy(yr.begin(), yr.end(),
                             y.row(row - rowBegin).begin());
               });
}

ShardedDatasetReader::CachedShard &
ShardedDatasetReader::cachedShard(size_t idx)
{
    CachedShard *victim = &cache[0];
    for (CachedShard &slot : cache) {
        if (slot.idx == idx) {
            slot.stamp = ++tick;
            return slot;
        }
        if (slot.stamp < victim->stamp)
            victim = &slot;
    }
    readShard(idx, victim->x, victim->y);
    victim->idx = idx;
    victim->stamp = ++tick;
    return *victim;
}

std::span<const float>
ShardedDatasetReader::xRow(size_t row)
{
    MM_ASSERT(row < manifest.layout.rows, "row out of range");
    const size_t shardSize = size_t(manifest.layout.shardSize);
    return cachedShard(row / shardSize).x.row(row % shardSize);
}

std::span<const float>
ShardedDatasetReader::yRow(size_t row)
{
    MM_ASSERT(row < manifest.layout.rows, "row out of range");
    const size_t shardSize = size_t(manifest.layout.shardSize);
    return cachedShard(row / shardSize).y.row(row % shardSize);
}

// ---------------------------------------------------------------------------
// ShardBatchSource
// ---------------------------------------------------------------------------

ShardBatchSource::ShardBatchSource(ShardedDatasetReader &reader,
                                   size_t rowBegin, size_t rowCount)
    : src(reader), base(rowBegin), count(rowCount)
{
    MM_ASSERT(rowBegin + rowCount <= reader.layout().rows,
              "batch source range out of bounds");
}

size_t
ShardBatchSource::xCols() const
{
    return size_t(src.layout().features);
}

size_t
ShardBatchSource::yCols() const
{
    return size_t(src.layout().outputs);
}

void
ShardBatchSource::gather(const std::vector<size_t> &idx, size_t begin,
                         size_t n, Matrix &bx, Matrix &by,
                         ParallelContext *)
{
    bx.ensureShape(n, xCols());
    by.ensureShape(n, yCols());
    const Normalizer &xn = src.inputNorm();
    const Normalizer &yn = src.outputNorm();
    for (size_t r = 0; r < n; ++r) {
        const size_t row = base + idx[begin + r];
        MM_ASSERT(row < base + count, "batch index out of range");
        xn.normalizeRow(src.xRow(row), bx.row(r));
        yn.normalizeRow(src.yRow(row), by.row(r));
    }
}

} // namespace mm
