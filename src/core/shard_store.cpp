#include "core/shard_store.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/mapped_file.hpp"
#include "common/string_util.hpp"

namespace mm {

namespace {

constexpr uint32_t kShardMagic = 0x4d4d5331;    // "MMS1"
constexpr uint32_t kManifestMagic = 0x4d4d4d46; // "MMMF"
constexpr uint32_t kStoreVersion = 1;

template <typename T>
void
put(std::ostream &os, T v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
bool
get(std::istream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return bool(is);
}

/**
 * commitFileAtomic for a checksummed blob; transient failures retry
 * with capped backoff, persistent ones raise a typed error (IoError,
 * or ResourceError for a full disk) — losing dataset shards silently
 * would corrupt the run.
 */
void
commitBlobFile(const std::string &path, uint32_t magic, uint32_t version,
               const std::string &body)
{
    retryTransient(RetryPolicy::fromEnv(), [&] {
        CommitFailure failure;
        if (commitFileAtomic(path,
                             [&](std::ostream &os) {
                                 writeChecksummedBlob(os, magic, version,
                                                      body);
                             },
                             &failure))
            return;
        if (failure.errnoValue == ENOSPC)
            throw ResourceError("disk space",
                                "cannot commit '" + path + "'",
                                failure.errnoValue);
        throw IoError(path, failure.sysCall.empty() ? "write"
                                                    : failure.sysCall,
                      failure.errnoValue, failure.detail);
    });
}

/** Serialized fixed-width shard body header. */
struct ShardHeader
{
    uint64_t shardIndex;
    uint64_t rowCount;
    uint64_t features;
    uint64_t outputs;
    uint64_t configHash;
};

std::optional<std::string>
readBlobFile(const std::string &path, uint32_t magic, uint32_t version,
             std::string *err)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        if (err)
            *err = "missing file";
        return std::nullopt;
    }
    return readChecksummedBlob(is, magic, version, err);
}

/** Parse a little-endian POD out of @p bytes at @p offset. */
template <typename T>
T
peek(std::span<const char> bytes, size_t offset)
{
    T v{};
    std::memcpy(&v, bytes.data() + offset, sizeof(T));
    return v;
}

} // namespace

uint64_t
fnv1a64(const void *data, size_t n, uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

uint64_t
fnv1a64(const std::string &s)
{
    return fnv1a64(s.data(), s.size());
}

void
writeChecksummedBlob(std::ostream &os, uint32_t magic, uint32_t version,
                     const std::string &body)
{
    put(os, magic);
    put(os, version);
    put(os, uint64_t(body.size()));
    os.write(body.data(), std::streamsize(body.size()));
    put(os, fnv1a64(body));
    put(os, uint32_t(~magic));
}

std::optional<std::string>
readChecksummedBlob(std::istream &is, uint32_t magic, uint32_t version,
                    std::string *err, bool expectEof)
{
    auto fail = [&](const std::string &why) -> std::optional<std::string> {
        if (err)
            *err = why;
        return std::nullopt;
    };
    uint32_t m = 0, v = 0;
    uint64_t size = 0;
    if (!get(is, m) || m != magic)
        return fail("bad magic (not a recognized file)");
    if (!get(is, v) || v != version)
        return fail(strCat("unsupported format version ", v, " (expected ",
                           version, ")"));
    if (!get(is, size))
        return fail("truncated file (no body size)");
    // Bound the allocation by what the stream can actually hold: a
    // corrupt size field must produce a diagnostic, not a giant
    // std::string allocation (bad_alloc would escape the corrupt-file
    // contract). Footer = u64 checksum + u32 magic.
    const std::istream::pos_type bodyPos = is.tellg();
    is.seekg(0, std::ios::end);
    const std::istream::pos_type endPos = is.tellg();
    if (bodyPos == std::istream::pos_type(-1)
        || endPos == std::istream::pos_type(-1))
        return fail("unseekable stream");
    is.seekg(bodyPos);
    const uint64_t remaining = uint64_t(endPos - bodyPos);
    const uint64_t footerBytes = sizeof(uint64_t) + sizeof(uint32_t);
    if (remaining < footerBytes)
        return fail("truncated file (shorter than its footer)");
    if (size > remaining - footerBytes)
        return fail(strCat("truncated file (body declares ", size,
                           " bytes, only ", remaining - footerBytes,
                           " present)"));
    std::string body(size_t(size), '\0');
    is.read(body.data(), std::streamsize(size));
    if (size_t(is.gcount()) != size)
        return fail("truncated file (short body)");
    uint64_t sum = 0;
    uint32_t foot = 0;
    if (!get(is, sum) || !get(is, foot))
        return fail("truncated file (no footer)");
    if (foot != uint32_t(~magic))
        return fail("bad footer magic");
    if (sum != fnv1a64(body))
        return fail("checksum mismatch (corrupt or torn write)");
    if (expectEof && is.peek() != std::char_traits<char>::eof())
        return fail("trailing bytes after footer");
    return body;
}

std::optional<std::span<const char>>
readChecksummedBlobView(std::span<const char> file, uint32_t magic,
                        uint32_t version, BlobReadError *err)
{
    auto fail = [&](BlobReadError::Kind kind, const std::string &why)
        -> std::optional<std::span<const char>> {
        if (err) {
            err->kind = kind;
            err->message = why;
        }
        return std::nullopt;
    };
    using Kind = BlobReadError::Kind;
    // Envelope layout: [u32 magic][u32 version][u64 size][body]
    //                  [u64 fnv(body)][u32 ~magic].
    constexpr size_t kHeadBytes = 2 * sizeof(uint32_t) + sizeof(uint64_t);
    constexpr size_t kFootBytes = sizeof(uint64_t) + sizeof(uint32_t);
    if (file.size() < sizeof(uint32_t)
        || peek<uint32_t>(file, 0) != magic)
        return fail(Kind::BadHeader, "bad magic (not a recognized file)");
    if (file.size() < 2 * sizeof(uint32_t))
        return fail(Kind::ShortRead, "truncated file (no format version)");
    if (uint32_t v = peek<uint32_t>(file, sizeof(uint32_t)); v != version)
        return fail(Kind::BadHeader,
                    strCat("unsupported format version ", v, " (expected ",
                           version, ")"));
    if (file.size() < kHeadBytes)
        return fail(Kind::ShortRead, "truncated file (no body size)");
    const uint64_t size = peek<uint64_t>(file, 2 * sizeof(uint32_t));
    const uint64_t remaining = file.size() - kHeadBytes;
    if (remaining < kFootBytes)
        return fail(Kind::ShortRead,
                    "truncated file (shorter than its footer)");
    if (size > remaining - kFootBytes)
        return fail(Kind::ShortRead,
                    strCat("truncated file (body declares ", size,
                           " bytes, only ", remaining - kFootBytes,
                           " present)"));
    const std::span<const char> body = file.subspan(kHeadBytes,
                                                    size_t(size));
    const size_t footAt = kHeadBytes + size_t(size);
    if (file.size() != footAt + kFootBytes)
        return fail(Kind::BadHeader, "trailing bytes after footer");
    if (peek<uint32_t>(file, footAt + sizeof(uint64_t)) != uint32_t(~magic))
        return fail(Kind::BadHeader, "bad footer magic");
    const uint64_t expected = peek<uint64_t>(file, footAt);
    const uint64_t actual = fnv1a64(body.data(), body.size());
    if (expected != actual) {
        if (err) {
            err->expectedChecksum = expected;
            err->actualChecksum = actual;
        }
        return fail(Kind::Checksum,
                    "checksum mismatch (corrupt or torn write)");
    }
    return body;
}

std::optional<std::span<const char>>
readChecksummedBlobView(std::span<const char> file, uint32_t magic,
                        uint32_t version, std::string *err)
{
    BlobReadError classified;
    auto body = readChecksummedBlobView(file, magic, version, &classified);
    if (!body && err)
        *err = classified.message;
    return body;
}

namespace {

void
setFailure(CommitFailure *failure, const std::string &sysCall,
           int errnoValue, const std::string &detail)
{
    if (failure == nullptr)
        return;
    failure->sysCall = sysCall;
    failure->errnoValue = errnoValue;
    failure->detail = detail;
}

/**
 * Flip one committed byte of @p path, inside the blob body (past the
 * envelope header, before the footer), so the next verified read sees
 * a checksum mismatch — the deterministic stand-in for bit rot.
 */
void
flipOneCommittedByte(const std::string &path)
{
    std::error_code ec;
    const uint64_t size = std::filesystem::file_size(path, ec);
    if (ec)
        return;
    constexpr uint64_t kHeadBytes = 2 * sizeof(uint32_t) + sizeof(uint64_t);
    constexpr uint64_t kFootBytes = sizeof(uint64_t) + sizeof(uint32_t);
    if (size <= kHeadBytes + kFootBytes)
        return;
    const uint64_t offset = kHeadBytes + (size - kHeadBytes - kFootBytes) / 2;
    std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
    if (!fs)
        return;
    fs.seekg(std::streamoff(offset));
    char byte = 0;
    fs.read(&byte, 1);
    byte = char(byte ^ 0x40);
    fs.seekp(std::streamoff(offset));
    fs.write(&byte, 1);
}

} // namespace

bool
commitFileAtomic(const std::string &path,
                 const std::function<void(std::ostream &)> &writeBody,
                 CommitFailure *failure)
{
    setFailure(failure, "", 0, "");
    // Unique tmp name: concurrent writers must never share one.
    static std::atomic<uint64_t> counter{0};
    std::string tmp = strCat(path, ".tmp.", uint64_t(::getpid()), ".",
                             counter.fetch_add(1));
    std::error_code ec;
    uint64_t written = 0;
    {
        errno = 0;
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            setFailure(failure, "open", errno != 0 ? errno : EIO,
                       "cannot create tmp file '" + tmp + "'");
            return false;
        }
        errno = 0;
        writeBody(os);
        os.flush();
        if (const auto pos = os.tellp(); os && pos >= 0)
            written = uint64_t(pos);
        if (!os) {
            setFailure(failure, "write", errno != 0 ? errno : EIO,
                       "short write to tmp file '" + tmp + "'");
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    if (FaultInjector::armed()) {
        if (int injected = FaultInjector::instance().onWrite(path, written);
            injected != 0) {
            setFailure(failure, "write", injected, "injected fault");
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    errno = 0;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        setFailure(failure, "rename", ec.value(),
                   "cannot rename tmp file '" + tmp + "' into place");
        std::filesystem::remove(tmp, ec);
        return false;
    }
    if (FaultInjector::armed()
        && FaultInjector::instance().shouldFlipCommittedByte(path))
        flipOneCommittedByte(path);
    return true;
}

std::string
shardPath(const std::string &dir, size_t idx)
{
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%06zu.mms", idx);
    return dir + "/" + name;
}

std::string
manifestPath(const std::string &dir)
{
    return dir + "/manifest.mms";
}

bool
readShardFile(const std::string &dir, size_t idx, const ShardLayout &expect,
              Matrix &x, Matrix &y, ShardReadError *err)
{
    using Cls = ShardReadError::Cls;
    auto fail = [&](Cls cls, const std::string &why, int errnoValue = 0) {
        if (err) {
            err->cls = cls;
            err->message = why;
            err->errnoValue = errnoValue;
        }
        return false;
    };
    if (err)
        *err = ShardReadError{};
    // Warm-load: the checksum pass runs over the mapped bytes and the
    // payload memcpys straight into the matrices — the stream path's
    // buffer and body-string copies are gone.
    int openErrno = 0;
    auto mf = MappedFile::open(shardPath(dir, idx), &openErrno);
    if (!mf) {
        if (openErrno == ENOENT)
            return fail(Cls::Missing, "missing file", openErrno);
        return fail(Cls::IoFault,
                    strCat("cannot open: ", errnoText(openErrno)),
                    openErrno);
    }
    BlobReadError blobErr;
    auto body = readChecksummedBlobView(mf->bytes(), kShardMagic,
                                        kStoreVersion, &blobErr);
    if (!body) {
        Cls cls = Cls::Header;
        if (blobErr.kind == BlobReadError::Kind::ShortRead)
            cls = Cls::ShortRead;
        else if (blobErr.kind == BlobReadError::Kind::Checksum)
            cls = Cls::Corrupt;
        if (err) {
            err->expectedChecksum = blobErr.expectedChecksum;
            err->actualChecksum = blobErr.actualChecksum;
        }
        return fail(cls, blobErr.message);
    }

    if (body->size() < sizeof(ShardHeader))
        return fail(Cls::ShortRead, "truncated shard header");
    ShardHeader h{};
    std::memcpy(&h, body->data(), sizeof(h));
    if (h.shardIndex != idx)
        return fail(Cls::Mismatch,
                    strCat("shard index mismatch (header says ",
                           h.shardIndex, ")"));
    if (h.features != expect.features || h.outputs != expect.outputs)
        return fail(Cls::Mismatch, "shard arity mismatch");
    if (h.configHash != expect.configHash)
        return fail(Cls::Mismatch,
                    "shard belongs to a different dataset config");
    if (h.rowCount != expect.shardRows(idx))
        return fail(Cls::Mismatch, "shard row count mismatch");

    const size_t rows = size_t(h.rowCount);
    const size_t xFloats = rows * size_t(h.features);
    const size_t yFloats = rows * size_t(h.outputs);
    const size_t expectBytes =
        sizeof(ShardHeader) + (xFloats + yFloats) * sizeof(float);
    if (body->size() != expectBytes)
        return fail(Cls::Mismatch, "shard payload size mismatch");

    x.ensureShape(rows, size_t(h.features));
    y.ensureShape(rows, size_t(h.outputs));
    std::memcpy(x.data(), body->data() + sizeof(ShardHeader),
                xFloats * sizeof(float));
    std::memcpy(y.data(),
                body->data() + sizeof(ShardHeader)
                    + xFloats * sizeof(float),
                yFloats * sizeof(float));
    return true;
}

void
throwShardReadError(const std::string &dir, size_t idx,
                    const ShardReadError &err)
{
    const std::string path = shardPath(dir, idx);
    switch (err.cls) {
      case ShardReadError::Cls::Missing:
      case ShardReadError::Cls::IoFault:
        throw IoError(path, "open",
                      err.errnoValue != 0 ? err.errnoValue : EIO,
                      err.message);
      case ShardReadError::Cls::ShortRead:
        throw CorruptionError(path, CorruptionError::Kind::ShortRead,
                              err.message);
      case ShardReadError::Cls::Corrupt:
        throw CorruptionError(path, CorruptionError::Kind::ChecksumMismatch,
                              err.message, err.expectedChecksum,
                              err.actualChecksum);
      case ShardReadError::Cls::Header:
        throw CorruptionError(path, CorruptionError::Kind::BadHeader,
                              err.message);
      default:
        throw FatalError(strCat("cannot read ", path, ": ", err.message));
    }
}

std::string
quarantineShard(const std::string &dir, size_t idx)
{
    const std::string path = shardPath(dir, idx);
    const std::string target = path + ".quarantine";
    std::error_code ec;
    std::filesystem::rename(path, target, ec);
    return ec ? std::string() : target;
}

std::optional<uint64_t>
peekShardConfigHash(const std::string &dir, size_t idx)
{
    std::ifstream is(shardPath(dir, idx), std::ios::binary);
    if (!is)
        return std::nullopt;
    uint32_t magic = 0, version = 0;
    uint64_t size = 0;
    if (!get(is, magic) || magic != kShardMagic || !get(is, version)
        || version != kStoreVersion || !get(is, size))
        return std::nullopt;
    ShardHeader h{};
    if (!get(is, h.shardIndex) || !get(is, h.rowCount)
        || !get(is, h.features) || !get(is, h.outputs)
        || !get(is, h.configHash) || h.shardIndex != idx)
        return std::nullopt;
    return h.configHash;
}

// ---------------------------------------------------------------------------
// ShardStoreWriter
// ---------------------------------------------------------------------------

ShardStoreWriter::ShardStoreWriter(std::string dir, ShardLayout layout)
    : root(std::move(dir)), shape(layout)
{
    MM_ASSERT(!root.empty(), "shard store needs a directory");
    MM_ASSERT(shape.shardSize > 0, "shard size must be positive");
    MM_ASSERT(shape.rows > 0, "shard store needs rows");
    MM_ASSERT(shape.features > 0 && shape.outputs > 0,
              "shard store needs arity");
    MM_ASSERT(shape.shardCount
                  == (shape.rows + shape.shardSize - 1) / shape.shardSize,
              "shard count inconsistent with rows/shardSize");
    MM_ASSERT(shape.trainRows + shape.testRows == shape.rows,
              "split inconsistent with rows");
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    if (ec)
        throw IoError(root, "mkdir", ec.value(),
                      "cannot create stream directory");
}

bool
ShardStoreWriter::shardValid(size_t idx) const
{
    Matrix x, y;
    return readShardFile(root, idx, shape, x, y, nullptr);
}

void
ShardStoreWriter::writeShard(size_t idx, const Matrix &x, const Matrix &y)
{
    MM_ASSERT(idx < shape.shardCount, "shard index out of range");
    const size_t rows = size_t(shape.shardRows(idx));
    MM_ASSERT(x.rows() == rows && y.rows() == rows,
              "shard row count mismatch");
    MM_ASSERT(x.cols() == shape.features && y.cols() == shape.outputs,
              "shard arity mismatch");

    std::ostringstream body(std::ios::binary);
    put(body, uint64_t(idx));
    put(body, uint64_t(rows));
    put(body, shape.features);
    put(body, shape.outputs);
    put(body, shape.configHash);
    body.write(reinterpret_cast<const char *>(x.data()),
               std::streamsize(rows * x.cols() * sizeof(float)));
    body.write(reinterpret_cast<const char *>(y.data()),
               std::streamsize(rows * y.cols() * sizeof(float)));
    commitBlobFile(shardPath(root, idx), kShardMagic, kStoreVersion,
                   body.str());
}

void
ShardStoreWriter::commit(const Normalizer &inputNorm,
                         const Normalizer &outputNorm)
{
    MM_ASSERT(inputNorm.dim() == shape.features
                  && outputNorm.dim() == shape.outputs,
              "manifest normalizer arity mismatch");
    std::ostringstream body(std::ios::binary);
    put(body, shape.rows);
    put(body, shape.features);
    put(body, shape.outputs);
    put(body, shape.shardSize);
    put(body, shape.shardCount);
    put(body, shape.trainRows);
    put(body, shape.testRows);
    put(body, shape.featureLogPrefix);
    put(body, shape.configHash);
    inputNorm.save(body);
    outputNorm.save(body);
    commitBlobFile(manifestPath(root), kManifestMagic, kStoreVersion,
                   body.str());
}

// ---------------------------------------------------------------------------
// ShardedDatasetReader
// ---------------------------------------------------------------------------

std::optional<ShardManifest>
ShardedDatasetReader::tryReadManifest(const std::string &dir)
{
    auto body = readBlobFile(manifestPath(dir), kManifestMagic,
                             kStoreVersion, nullptr);
    if (!body)
        return std::nullopt;
    std::istringstream is(*body);
    ShardManifest m;
    ShardLayout &l = m.layout;
    if (!get(is, l.rows) || !get(is, l.features) || !get(is, l.outputs)
        || !get(is, l.shardSize) || !get(is, l.shardCount)
        || !get(is, l.trainRows) || !get(is, l.testRows)
        || !get(is, l.featureLogPrefix) || !get(is, l.configHash))
        return std::nullopt;
    if (l.shardSize == 0 || l.rows == 0
        || l.shardCount != (l.rows + l.shardSize - 1) / l.shardSize
        || l.trainRows + l.testRows != l.rows)
        return std::nullopt;
    m.inputNorm = Normalizer::load(is);
    m.outputNorm = Normalizer::load(is);
    if (m.inputNorm.dim() != l.features || m.outputNorm.dim() != l.outputs)
        return std::nullopt;
    return m;
}

ShardedDatasetReader::ShardedDatasetReader(std::string dir,
                                           size_t cacheShards,
                                           size_t prefetchShards)
    : root(std::move(dir))
{
    auto m = tryReadManifest(root);
    if (!m.has_value()) {
        const std::string path = manifestPath(root);
        std::error_code ec;
        if (!std::filesystem::exists(path, ec))
            throw IoError(path, "open", ENOENT,
                          "no shard-store manifest (partial or foreign "
                          "dataset run)");
        throw CorruptionError(
            path, CorruptionError::Kind::BadHeader,
            "invalid shard-store manifest (partial or corrupt dataset run)");
    }
    manifest = std::move(*m);
    for (size_t s = 0; s < manifest.layout.shardCount; ++s) {
        if (!std::filesystem::exists(shardPath(root, s)))
            throw IoError(shardPath(root, s), "open", ENOENT,
                          "missing shard file");
    }
    if (cacheShards == 0)
        cacheShards = envSize("MM_SHARD_CACHE", 8);
    cacheShards = std::max<size_t>(cacheShards, 1);
    // Split the capacity into independently locked ways so concurrent
    // gather lanes touching different shards never contend on one
    // mutex — but keep at least two slots per way: one-slot ways are
    // direct-mapped, and shards colliding mod wayCount would evict
    // each other forever where the old fully associative LRU kept
    // both. Capacity rounds up to ways * slotsPerWay.
    const size_t wayCount =
        std::min<size_t>(8, std::max<size_t>(1, cacheShards / 2));
    const size_t slotsPerWay = (cacheShards + wayCount - 1) / wayCount;
    ways = std::vector<CacheWay>(wayCount);
    for (CacheWay &w : ways)
        w.slots.resize(slotsPerWay);
    prefetchCount = prefetchShards == size_t(-1)
                        ? envSize("MM_PREFETCH_SHARDS", 0)
                        : prefetchShards;
    if (prefetchCount > 0)
        prefetcher = std::make_unique<SerialWorker>();
}

void
ShardedDatasetReader::readShard(size_t idx, Matrix &x, Matrix &y) const
{
    MM_ASSERT(idx < manifest.layout.shardCount, "shard index out of range");
    auto attemptRead = [&] {
        ShardReadError err;
        if (!readShardFile(root, idx, manifest.layout, x, y, &err))
            throwShardReadError(root, idx, err);
    };
    try {
        retryTransient(retryPolicy, attemptRead);
        return;
    } catch (const CorruptionError &e) {
        // ShortRead/ChecksumMismatch prove the bytes are bad: move them
        // aside so even a crash right here resumes cleanly. A BadHeader
        // may be a foreign file — never destroy it.
        if (e.kind() == CorruptionError::Kind::BadHeader)
            throw;
        quarantineShard(root, idx);
        quarantined.fetch_add(1);
        if (!healShard)
            throw;
    }
    // Heal: the callback re-labels just this shard through the dataset
    // crash-resume machinery, then the verified read runs again. A
    // still-bad result after healing propagates — no retry loop against
    // persistent corruption.
    healShard(idx);
    retryTransient(retryPolicy, attemptRead);
}

void
ShardedDatasetReader::forEachRow(
    size_t rowBegin, size_t rowEnd,
    const std::function<void(size_t, std::span<const float>,
                             std::span<const float>)> &fn) const
{
    const ShardLayout &l = manifest.layout;
    MM_ASSERT(rowBegin <= rowEnd && rowEnd <= l.rows,
              "row range out of bounds");
    Matrix x, y;
    for (size_t row = rowBegin; row < rowEnd;) {
        const size_t shard = row / l.shardSize;
        readShard(shard, x, y);
        const size_t shardBegin = shard * size_t(l.shardSize);
        const size_t last = std::min(rowEnd, shardBegin + x.rows());
        for (; row < last; ++row)
            fn(row, x.row(row - shardBegin), y.row(row - shardBegin));
    }
}

void
ShardedDatasetReader::materialize(size_t rowBegin, size_t rowCount,
                                  Matrix &x, Matrix &y) const
{
    x.ensureShape(rowCount, size_t(manifest.layout.features));
    y.ensureShape(rowCount, size_t(manifest.layout.outputs));
    forEachRow(rowBegin, rowBegin + rowCount,
               [&](size_t row, std::span<const float> xr,
                   std::span<const float> yr) {
                   std::copy(xr.begin(), xr.end(),
                             x.row(row - rowBegin).begin());
                   std::copy(yr.begin(), yr.end(),
                             y.row(row - rowBegin).begin());
               });
}

ShardedDatasetReader::ShardPtr
ShardedDatasetReader::pinShard(size_t idx) const
{
    CacheWay &way = ways[idx % ways.size()];
    MutexLock lock(way.m);
    CacheWay::Slot *victim = &way.slots[0];
    for (CacheWay::Slot &slot : way.slots) {
        if (slot.idx == idx) {
            slot.stamp = ++way.tick;
            return slot.shard;
        }
        if (slot.stamp < victim->stamp)
            victim = &slot;
    }
    // Miss: decode under this way's lock (other ways stay available).
    // The evicted shard's pinners keep it alive via their shared_ptr.
    auto decoded = std::make_shared<DecodedShard>();
    readShard(idx, decoded->x, decoded->y);
    victim->idx = idx;
    victim->stamp = ++way.tick;
    victim->shard = std::move(decoded);
    return victim->shard;
}

namespace {

/**
 * Pending prefetch requests held at most. Deep enough that a gather
 * burst (one request per gather call) survives a slow decode without
 * losing its look-ahead, small enough that a stale backlog cannot grow
 * unboundedly — overflow drops the *oldest* request, whose rows the
 * training loop has most likely already consumed synchronously.
 */
constexpr size_t kPrefetchQueueCap = 8;

} // namespace

void
ShardedDatasetReader::prefetch(std::vector<size_t> shards) const
{
    if (shards.empty() || prefetcher == nullptr)
        return;
    // Bounded FIFO instead of a drop-while-busy single slot: every
    // request queues behind the one being warmed (so back-to-back
    // gathers under epoch-steady load all get their look-ahead), with
    // exact duplicates coalesced and drop-oldest on overflow.
    bool startPump = false;
    {
        MutexLock lock(prefetchMtx);
        bool duplicate = false;
        for (const std::vector<size_t> &pending : prefetchQueue) {
            if (pending == shards) {
                duplicate = true;
                break;
            }
        }
        if (!duplicate) {
            prefetchQueue.push_back(std::move(shards));
            if (prefetchQueue.size() > kPrefetchQueueCap) {
                prefetchQueue.pop_front();
                prefetchDropCount.fetch_add(1, std::memory_order_relaxed);
            }
        }
        if (!prefetchPumpActive) {
            prefetchPumpActive = true;
            startPump = true;
        }
    }
    if (!startPump)
        return;
    try {
        prefetcher->submit([this] { pumpPrefetchQueue(); });
    } catch (...) { // mmlint:allow(catch-all) prefetch is best-effort
        // Best effort end to end: a failed submission must not escape
        // into the training loop or leave the pump flag latched
        // (prefetch would be silently dead for the rest of the run).
        MutexLock lock(prefetchMtx);
        prefetchPumpActive = false;
    }
}

void
ShardedDatasetReader::pumpPrefetchQueue() const
{
    // Drain the FIFO one request at a time on the warm-up thread. The
    // pump flag is cleared only under the lock with the queue observed
    // empty, so a request enqueued while the last one was draining is
    // either seen by this loop or starts a fresh pump — never lost.
    for (;;) {
        std::vector<size_t> next;
        {
            MutexLock lock(prefetchMtx);
            if (prefetchQueue.empty()) {
                prefetchPumpActive = false;
                return;
            }
            next = std::move(prefetchQueue.front());
            prefetchQueue.pop_front();
        }
        try {
            for (size_t idx : next) {
                (void)pinShard(idx);
                prefetchedCount.fetch_add(1, std::memory_order_relaxed);
            }
        } catch (...) { // mmlint:allow(catch-all) see below
            // A failed background read is dropped: the synchronous
            // path surfaces the real error (with the shard named) if
            // and when the shard is actually needed.
        }
    }
}

size_t
ShardedDatasetReader::pendingPrefetches() const
{
    MutexLock lock(prefetchMtx);
    return prefetchQueue.size();
}

const ShardedDatasetReader::DecodedShard &
ShardedDatasetReader::pinnedRowShard(size_t row)
{
    const size_t idx = row / size_t(manifest.layout.shardSize);
    if (idx != rowMemoIdx) {
        rowMemo = pinShard(idx);
        rowMemoIdx = idx;
    }
    return *rowMemo;
}

std::span<const float>
ShardedDatasetReader::xRow(size_t row)
{
    MM_ASSERT(row < manifest.layout.rows, "row out of range");
    return pinnedRowShard(row).x.row(row % size_t(manifest.layout.shardSize));
}

std::span<const float>
ShardedDatasetReader::yRow(size_t row)
{
    MM_ASSERT(row < manifest.layout.rows, "row out of range");
    return pinnedRowShard(row).y.row(row % size_t(manifest.layout.shardSize));
}

// ---------------------------------------------------------------------------
// ShardBatchSource
// ---------------------------------------------------------------------------

ShardBatchSource::ShardBatchSource(ShardedDatasetReader &reader,
                                   size_t rowBegin, size_t rowCount)
    : src(reader), base(rowBegin), count(rowCount)
{
    MM_ASSERT(rowBegin + rowCount <= reader.layout().rows,
              "batch source range out of bounds");
}

size_t
ShardBatchSource::xCols() const
{
    return size_t(src.layout().features);
}

size_t
ShardBatchSource::yCols() const
{
    return size_t(src.layout().outputs);
}

void
ShardBatchSource::gather(const std::vector<size_t> &idx, size_t begin,
                         size_t n, Matrix &bx, Matrix &by,
                         ParallelContext *par)
{
    bx.ensureShape(n, xCols());
    by.ensureShape(n, yCols());
    const Normalizer &xn = src.inputNorm();
    const Normalizer &yn = src.outputNorm();
    const size_t shardSize = size_t(src.layout().shardSize);

    // Each range pins its current shard once and rides it across
    // consecutive rows (epoch orders are window-local, so runs are
    // long); every output row's value is independent of which lane
    // computes it, so batches are bitwise identical at any lane count.
    auto gatherRange = [&](size_t lo, size_t hi) {
        ShardedDatasetReader::ShardPtr pinned;
        size_t pinnedIdx = size_t(-1);
        for (size_t r = lo; r < hi; ++r) {
            const size_t row = base + idx[begin + r];
            MM_ASSERT(row < base + count, "batch index out of range");
            const size_t shard = row / shardSize;
            if (shard != pinnedIdx) {
                pinned = src.pinShard(shard);
                pinnedIdx = shard;
            }
            const size_t local = row % shardSize;
            xn.normalizeRow(pinned->x.row(local), bx.row(r));
            yn.normalizeRow(pinned->y.row(local), by.row(r));
        }
    };

    if (par != nullptr && par->lanes() > 1
        && n >= 2 * kGatherChunkRows) {
        const size_t chunks =
            (n + kGatherChunkRows - 1) / kGatherChunkRows;
        par->parallelFor(chunks, [&](size_t c) {
            gatherRange(c * kGatherChunkRows,
                        std::min(n, (c + 1) * kGatherChunkRows));
        });
    } else {
        gatherRange(0, n);
    }

    // Warm the shards the rows after this batch will touch — the epoch
    // index order is known, so the look-ahead is exact, not a guess.
    // The scan is bounded: finding fewer than `depth` distinct shards
    // in the horizon just means the near future is already covered.
    if (src.prefetchDepth() > 0) {
        const size_t depth = src.prefetchDepth();
        std::vector<size_t> upcoming;
        upcoming.reserve(depth);
        const size_t horizon = std::max<size_t>(depth * 256, 1024);
        const size_t scanLimit = std::min(idx.size(), begin + n + horizon);
        for (size_t r = begin + n;
             r < scanLimit && upcoming.size() < depth; ++r) {
            const size_t shard = (base + idx[r]) / shardSize;
            if (std::find(upcoming.begin(), upcoming.end(), shard)
                == upcoming.end())
                upcoming.push_back(shard);
        }
        src.prefetch(std::move(upcoming));
    }
}

} // namespace mm
