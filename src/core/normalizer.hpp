/**
 * @file
 * Per-column z-score normalization (Sections 4.1.2/4.1.3): every input
 * feature and every output meta-statistic is normalized to mean 0 /
 * std 1 with respect to the training set.
 */
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace mm {

/** Column-wise affine normalizer fitted on a dataset. */
class Normalizer
{
  public:
    Normalizer() = default;

    /** Fit means and stds over the rows of @p data. */
    static Normalizer fit(const Matrix &data);

    size_t dim() const { return means.size(); }

    /** (x - mean) / std, elementwise per column. */
    std::vector<double> apply(std::span<const double> raw) const;

    /** Inverse transform. */
    std::vector<double> invert(std::span<const double> normed) const;

    /** Normalize every row of @p data in place. */
    void applyInPlace(Matrix &data) const;

    double mean(size_t i) const { return means.at(i); }
    double std(size_t i) const { return stds.at(i); }

    void save(std::ostream &os) const;
    static Normalizer load(std::istream &is);

  private:
    std::vector<double> means;
    std::vector<double> stds; ///< clamped away from zero
};

} // namespace mm
