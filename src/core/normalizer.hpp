/**
 * @file
 * Per-column z-score normalization (Sections 4.1.2/4.1.3): every input
 * feature and every output meta-statistic is normalized to mean 0 /
 * std 1 with respect to the training set.
 */
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "tensor/matrix.hpp"

namespace mm {

/** Column-wise affine normalizer fitted on a dataset. */
class Normalizer
{
  public:
    Normalizer() = default;

    /** Fit means and stds over the rows of @p data. */
    static Normalizer fit(const Matrix &data);

    /**
     * Build from precomputed per-column moments (streaming fits,
     * deserialization). Stds are clamped away from zero like fit().
     */
    static Normalizer fromMoments(std::vector<double> means,
                                  std::vector<double> stds);

    size_t dim() const { return means.size(); }

    /** (x - mean) / std, elementwise per column. */
    std::vector<double> apply(std::span<const double> raw) const;

    /** Inverse transform. */
    std::vector<double> invert(std::span<const double> normed) const;

    /** Normalize every row of @p data in place. */
    void applyInPlace(Matrix &data) const;

    /**
     * Normalize one float row into @p out. The exact arithmetic of
     * applyInPlace, factored out so out-of-core batch sources produce
     * bitwise-identical values to a pre-normalized in-RAM matrix.
     */
    void normalizeRow(std::span<const float> raw,
                      std::span<float> out) const;

    double mean(size_t i) const { return means.at(i); }
    double std(size_t i) const { return stds.at(i); }

    void save(std::ostream &os) const;
    static Normalizer load(std::istream &is);

  private:
    std::vector<double> means;
    std::vector<double> stds; ///< clamped away from zero
};

/**
 * Single-pass normalizer fit over a row stream. Pushing rows 0..n-1 in
 * order yields a Normalizer bitwise identical to Normalizer::fit over
 * the materialized matrix (each column's Welford accumulator sees the
 * same observation sequence either way) — the streamed Phase-1 pipeline
 * relies on this to match the in-RAM path exactly.
 */
class StreamingNormalizerFit
{
  public:
    explicit StreamingNormalizerFit(size_t cols) : stats(cols) {}

    void
    pushRow(std::span<const float> row)
    {
        MM_ASSERT(row.size() == stats.size(),
                  "streaming fit arity mismatch");
        for (size_t c = 0; c < stats.size(); ++c)
            stats[c].push(double(row[c]));
    }

    int64_t rows() const { return stats.empty() ? 0 : stats[0].count(); }

    Normalizer finish() const;

  private:
    std::vector<RunningStat> stats;
};

} // namespace mm
