/**
 * @file
 * The differentiable surrogate f* (Section 4.1).
 *
 * Wraps the trained MLP with the feature conditioning (see
 * core/feature_transform.hpp) and the input/output whitening, and
 * exposes the two operations Phase 2 needs:
 *   - predict the (lower-bound-)normalized EDP of an encoded mapping,
 *   - the gradient of log(predicted EDP) with respect to the normalized
 *     input features — the approximate gradients that guide the search.
 *
 * The network regresses the log of every lower-bound-normalized
 * meta-statistic (Section 4.1.3), so predicted log-EDP is simply the
 * sum of the de-whitened total-energy and total-cycles heads, and its
 * gradient with respect to those heads is constant — the backward pass
 * through the MLP does all the work.
 */
#pragma once

#include <iosfwd>
#include <optional>
#include <span>

#include "arch/accelerator.hpp"
#include "core/feature_transform.hpp"
#include "core/normalizer.hpp"
#include "nn/mlp.hpp"

namespace mm {

/** Trained surrogate: MLP + conditioning + whitening + layout. */
class Surrogate
{
  public:
    /**
     * @param net         Trained MLP (moved in).
     * @param transform   Feature conditioning used during training.
     * @param inputNorm   Feature z-scorer fitted on the training set.
     * @param outputNorm  Target z-scorer fitted on the training set.
     * @param tensorCount Tensors of the target algorithm (fixes the
     *                    meta-statistics layout). Pass 0 for direct-EDP
     *                    ablation models (single log-EDP output).
     */
    Surrogate(Mlp net, FeatureTransform transform, Normalizer inputNorm,
              Normalizer outputNorm, size_t tensorCount);

    size_t featureCount() const { return inputNorm.dim(); }
    size_t outputCount() const { return outputNorm.dim(); }
    bool isMetaStatModel() const { return tensors > 0; }

    /** Raw codec features -> conditioned, z-scored network inputs. */
    std::vector<double> normalizeInput(std::span<const double> raw) const;

    /** Inverse of normalizeInput. */
    std::vector<double> denormalizeInput(std::span<const double> z) const;

    /**
     * Predicted EDP normalized by the problem's algorithmic minimum,
     * from z-scored features.
     */
    double predictNormEdp(std::span<const double> zFeatures);

    /**
     * Gradient of log(predicted normalized EDP) with respect to the
     * z-scored features. Returns the predicted normalized EDP.
     */
    double gradient(std::span<const double> zFeatures,
                    std::vector<double> &gradOut);

    /**
     * Batched prediction: one z-scored feature row per candidate, one
     * MLP forward for the whole batch. Every row's arithmetic is
     * independent and identically ordered, so results are bitwise equal
     * to the per-sample path.
     */
    std::vector<double> predictNormEdpBatch(const Matrix &zRows);

    /**
     * Batched gradient of log(predicted normalized EDP): one row per
     * candidate, one MLP forward/backward for the whole batch. Fills
     * @p predsOut with each row's predicted normalized EDP and returns
     * the per-row input gradients as a reference to an internal
     * workspace, valid until the next surrogate call.
     */
    const Matrix &gradientBatch(const Matrix &zRows,
                                std::vector<double> &predsOut);

    /**
     * Predicted lower-bound-normalized meta-statistics (de-whitened,
     * de-logged; diagnostics and tests).
     */
    std::vector<double> predictMetaStats(std::span<const double> zFeatures);

    /**
     * Run the MLP's GEMMs on @p ctx's pool (nullptr = serial; results
     * are bitwise identical at any lane count). The context must
     * outlive the surrogate or be reset before it is destroyed.
     */
    void setParallel(ParallelContext *ctx) { mlp.setParallel(ctx); }

    Mlp &net() { return mlp; }
    const Normalizer &inputNormalizer() const { return inputNorm; }
    const Normalizer &outputNormalizer() const { return outputNorm; }
    const FeatureTransform &featureTransform() const { return transform; }

    /**
     * Serialize as a magic/version/size-framed, checksummed blob, so
     * torn or corrupted files are detectable on load.
     */
    void save(std::ostream &os) const;

    /**
     * Deserialize a stream written by save(). The envelope (magic,
     * version, size footer, checksum) is verified first; a truncated,
     * corrupt or wrong-version stream returns std::nullopt instead of
     * deserializing garbage.
     */
    static std::optional<Surrogate> tryLoad(std::istream &is);

    /**
     * Warm-load variant over an in-memory file image (a MappedFile):
     * the envelope is verified over @p bytes in place and the weights
     * deserialize straight out of it — no stream buffer or body-string
     * copies. Same validity contract as the stream overload.
     */
    static std::optional<Surrogate> tryLoad(std::span<const char> bytes);

    /** tryLoad that treats any invalid stream as a fatal invariant. */
    static Surrogate load(std::istream &is);

  private:
    /** Fill the batch-1 workspace from one z-scored feature row. */
    void packInputRow(std::span<const double> zFeatures);

    /** Forward the MLP on one z-scored feature row. */
    const Matrix &forwardOne(std::span<const double> zFeatures);

    /** De-whitened predicted normalized EDP of row @p r of @p out. */
    double headEdp(const Matrix &out, size_t r) const;

    /** Output indices of total energy / cycles in the meta layout. */
    size_t totalEnergyIdx() const { return tensors * size_t(kNumMemLevels); }
    size_t cyclesIdx() const { return totalEnergyIdx() + 2; }

    Mlp mlp;
    FeatureTransform transform;
    Normalizer inputNorm;
    Normalizer outputNorm;
    size_t tensors;
    Matrix inputRow;  ///< batch-1 workspace
    Matrix headGrad;  ///< dL/d(output) workspace
};

} // namespace mm
