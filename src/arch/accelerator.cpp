#include "arch/accelerator.hpp"

#include <limits>

namespace mm {

AcceleratorSpec
AcceleratorSpec::paperDefault()
{
    AcceleratorSpec a;
    a.name = "mm-paper-256pe";
    a.numPes = 256;
    a.macsPerPePerCycle = 1;
    a.frequencyGhz = 1.0;
    a.wordBytes = 4.0;
    a.macEnergyPj = 0.56;
    a.nocEnergyPerWordPj = 1.0;
    a.levels = {
        // L1: 64 KB private scratchpad per PE, 16 banks.
        {"L1", 64.0 * 1024.0, 16, 4.0, 2.5, true},
        // L2: 512 KB shared buffer, 32 banks.
        {"L2", 512.0 * 1024.0, 32, 32.0, 12.0, false},
        // DRAM: unbounded capacity, 16 words/cycle (~64 GB/s @ 1 GHz).
        {"DRAM", std::numeric_limits<double>::infinity(), 0, 16.0, 200.0,
         false},
    };
    return a;
}

AcceleratorSpec
AcceleratorSpec::tinyDefault()
{
    AcceleratorSpec a = paperDefault();
    a.name = "mm-tiny-16pe";
    a.numPes = 16;
    a.levels[0].capacityBytes = 4.0 * 1024.0;
    a.levels[0].banks = 8;
    a.levels[1].capacityBytes = 32.0 * 1024.0;
    a.levels[1].banks = 16;
    return a;
}

} // namespace mm
