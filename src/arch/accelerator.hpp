/**
 * @file
 * Programmable-accelerator description (Section 5.1.2, Figure 2).
 *
 * The evaluated accelerator: 256 PEs at 1 GHz behind a two-level on-chip
 * buffer hierarchy (512 KB shared L2, 64 KB private L1 per PE) backed by
 * DRAM. Buffers are banked and bank-allocatable per tensor; the NoC
 * supports multicast, so a word needed by several PEs is read from L2
 * once. Energy/bandwidth numbers are representative published values for
 * a ~45 nm process (see README); all paper comparisons are made on EDP
 * normalized to the algorithmic minimum, so only their relative
 * magnitudes matter.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mm {

/** Memory-hierarchy level indices used throughout the library. */
enum class MemLevel : int { L1 = 0, L2 = 1, DRAM = 2 };

/** Number of temporal tiling levels (L1, L2, DRAM). */
inline constexpr int kNumMemLevels = 3;

/** Number of bank-allocatable on-chip levels (L1, L2). */
inline constexpr int kNumOnChipLevels = 2;

/** Static parameters of one memory level. */
struct MemLevelSpec
{
    std::string name;
    double capacityBytes;         ///< per instance; +inf for DRAM
    int banks;                    ///< allocatable banks (0 = fixed function)
    double bandwidthWordsPerCycle; ///< aggregate read+write bandwidth
    double energyPerWordPj;       ///< access energy per word
    bool perPe;                   ///< true if private to each PE
};

/** Full accelerator description. */
struct AcceleratorSpec
{
    std::string name;
    int numPes = 256;
    int macsPerPePerCycle = 1;
    double frequencyGhz = 1.0;
    double wordBytes = 4.0;
    double macEnergyPj = 0.56;
    /** Energy to deliver one word over the NoC to one PE. */
    double nocEnergyPerWordPj = 1.0;
    /** Levels indexed by MemLevel (0 = L1, 1 = L2, 2 = DRAM). */
    std::vector<MemLevelSpec> levels;

    const MemLevelSpec &
    level(MemLevel l) const
    {
        return levels[size_t(l)];
    }

    /** Peak MACs per cycle across the whole array. */
    double peakMacsPerCycle() const
    {
        return double(numPes) * double(macsPerPePerCycle);
    }

    /**
     * The accelerator evaluated in the paper: 256 PEs, 64 KB private L1,
     * 512 KB shared L2, DRAM.
     */
    static AcceleratorSpec paperDefault();

    /** A small 16-PE variant used by tests and the quickstart example. */
    static AcceleratorSpec tinyDefault();
};

} // namespace mm
