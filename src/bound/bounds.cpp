#include "bound/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/factorization.hpp"

namespace mm {

// ---------------------------------------------------------------------------
// PartialAssignment
// ---------------------------------------------------------------------------

PartialAssignment::PartialAssignment(size_t rank_) : dims(rank_)
{
    MM_ASSERT(rank_ <= kMaxCostRank, "rank exceeds cost-model limit");
    for (auto &f : fac)
        f = {1, 1, 1, 1};
}

size_t
PartialAssignment::fixedSlotCount() const
{
    size_t n = 0;
    for (size_t d = 0; d < dims; ++d)
        n += size_t(__builtin_popcount(slotMask[d]));
    return n;
}

void
PartialAssignment::fix(size_t d, FactorSlot s, int64_t value)
{
    MM_ASSERT(d < dims, "dimension out of range");
    MM_ASSERT(value >= 1, "factors are positive");
    slotMask[d] |= uint8_t(1u << int(s));
    fac[d][size_t(s)] = value;
}

void
PartialAssignment::fixDim(size_t d, const std::array<int64_t, kFactorSlots> &f)
{
    for (int s = 0; s < kFactorSlots; ++s)
        fix(d, FactorSlot(s), f[size_t(s)]);
}

PartialAssignment
PartialAssignment::levelPrefixOf(const Mapping &m, int levels)
{
    MM_ASSERT(levels >= 0 && levels <= kFactorSlots, "bad level count");
    PartialAssignment pa(m.rank());
    // Outermost-first decision order: DRAM, L2, Spatial, L1.
    const FactorSlot order[kFactorSlots] = {FactorSlot::DRAM, FactorSlot::L2,
                                            FactorSlot::Spatial,
                                            FactorSlot::L1};
    for (int l = 0; l < levels; ++l) {
        for (size_t d = 0; d < m.rank(); ++d) {
            switch (order[l]) {
            case FactorSlot::DRAM:
                pa.fix(d, FactorSlot::DRAM,
                       m.tiling[size_t(MemLevel::DRAM)][d]);
                break;
            case FactorSlot::L2:
                pa.fix(d, FactorSlot::L2, m.tiling[size_t(MemLevel::L2)][d]);
                break;
            case FactorSlot::Spatial:
                pa.fix(d, FactorSlot::Spatial, m.spatial[d]);
                break;
            case FactorSlot::L1:
                pa.fix(d, FactorSlot::L1, m.tiling[size_t(MemLevel::L1)][d]);
                break;
            }
        }
    }
    return pa;
}

PartialAssignment
PartialAssignment::dimPrefixOf(const Mapping &m, size_t dimCount)
{
    MM_ASSERT(dimCount <= m.rank(), "prefix longer than rank");
    PartialAssignment pa(m.rank());
    for (size_t d = 0; d < dimCount; ++d)
        pa.fixDim(d, {m.tiling[size_t(MemLevel::L1)][d], m.spatial[d],
                      m.tiling[size_t(MemLevel::L2)][d],
                      m.tiling[size_t(MemLevel::DRAM)][d]});
    return pa;
}

// ---------------------------------------------------------------------------
// BoundTables
// ---------------------------------------------------------------------------

BoundTables::BoundTables(const MapSpace &space_) : mapSpace(&space_)
{
    cost.build(space_);
    const AlgorithmSpec &algo = *space_.problem().algo;
    for (size_t t = 0; t < algo.tensorCount(); ++t) {
        // The reuse-limit (telescoping) form needs unit coefficients
        // and each loop dimension in at most one projection term of
        // the tensor; e.g. a halo term 2x + r would break
        // footprint(tile) * outer trips >= footprint(full).
        bool strong = true;
        uint32_t seen = 0;
        for (const TensorDim &dim : algo.tensors[t].dims) {
            for (const ProjTerm &term : dim) {
                if (term.coeff != 1 || (seen & (1u << term.dim)))
                    strong = false;
                seen |= 1u << term.dim;
            }
        }
        strongTensor[t] = strong;
    }
}

namespace {

/** Depth-first legal-tuple enumeration, lexicographic in slot order. */
void
enumerateTuples(int64_t bound, int64_t padLimit, int64_t maxFactor, int slot,
                int64_t product, std::array<int64_t, kFactorSlots> &cur,
                std::vector<std::array<int64_t, kFactorSlots>> &out)
{
    if (slot == kFactorSlots - 1) {
        const int64_t lo =
            std::max<int64_t>(1, (bound + product - 1) / product);
        const int64_t hi = std::min(maxFactor, padLimit / product);
        for (int64_t f = lo; f <= hi; ++f) {
            cur[size_t(slot)] = f;
            out.push_back(cur);
        }
        return;
    }
    const int64_t hi = std::min(maxFactor, padLimit / product);
    for (int64_t f = 1; f <= hi; ++f) {
        cur[size_t(slot)] = f;
        enumerateTuples(bound, padLimit, maxFactor, slot + 1, product * f,
                        cur, out);
    }
}

} // namespace

const std::vector<std::array<int64_t, kFactorSlots>> &
BoundTables::tuples(size_t d) const
{
    MM_ASSERT(d < cost.rank, "dimension out of range");
    auto &cache = tupleCache[d];
    if (!cache.empty())
        return cache;
    const FactorizationTable &table = *cost.dimTables[d];
    std::array<int64_t, kFactorSlots> cur{};
    enumerateTuples(table.boundValue(), table.padLimitValue(),
                    table.maxFactorValue(), 0, 1, cur, cache);
    MM_ASSERT(int64_t(cache.size()) == table.count(),
              "tuple enumeration disagrees with the factorization table");
    return cache;
}

int64_t
BoundTables::minBanksFor(int lvl, double tileBytes) const
{
    const int banks = cost.banks[lvl];
    const double cap = cost.capacityBytes[lvl];
    // Smallest a >= 1 with tileBytes <= cap * a / banks under the exact
    // double arithmetic of MapSpace::allocBytes; the float seed is
    // corrected by the loop, so rounding can never under-allocate.
    int64_t a =
        std::max<int64_t>(1, int64_t(std::floor(tileBytes * banks / cap)));
    while (a <= banks && cap * double(a) / double(banks) < tileBytes)
        ++a;
    return a; // may exceed banks: the caller treats that as infeasible
}

bool
BoundTables::assignMinimalBanks(Mapping &m) const
{
    const std::array<std::vector<int64_t>, kNumOnChipLevels> ext = {
        m.extentsL1(), m.extentsL2()};
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        m.bufferAlloc[size_t(lvl)].assign(cost.tensors, 1);
        int64_t used = 0;
        for (size_t t = 0; t < cost.tensors; ++t) {
            const int64_t a = minBanksFor(
                lvl, mapSpace->tensorTileBytes(t, ext[size_t(lvl)]));
            m.bufferAlloc[size_t(lvl)][t] = int(a);
            used += a;
        }
        if (used > cost.banks[lvl])
            return false;
    }
    return true;
}

PartialBound
BoundTables::bound(const PartialAssignment &pa) const
{
    MM_ASSERT(pa.rank() == cost.rank, "assignment rank mismatch");
    PartialBound out;

    // Per-dimension extent floors at the four residency points, the
    // guaranteed spatial product and its reachable ceiling.
    int64_t e1[kMaxCostRank], esp[kMaxCostRank], e2[kMaxCostRank],
        full[kMaxCostRank];
    double pesFixed = 1.0;
    double pesCap = 1.0;
    for (size_t d = 0; d < cost.rank; ++d) {
        const FactorizationTable &table = *cost.dimTables[d];
        const int64_t boundVal = table.boundValue();
        const int64_t padLimit = table.padLimitValue();
        const int64_t maxFactor = table.maxFactorValue();

        int64_t prodFixed = 1;
        int freeSlots = kFactorSlots;
        for (int s = 0; s < kFactorSlots; ++s) {
            if (!pa.fixed(d, FactorSlot(s)))
                continue;
            --freeSlots;
            const int64_t v = pa.factor(d, FactorSlot(s));
            if (v > maxFactor || prodFixed > padLimit / v) {
                out.feasible = false;
                return out;
            }
            prodFixed *= v;
        }
        // The free slots can reach any single multiplier in
        // [ceil(bound/prodFixed), floor(padLimit/prodFixed)]; an empty
        // range (or an all-fixed product below bound) has no legal
        // completion.
        const int64_t mLo = std::max<int64_t>(
            1, (boundVal + prodFixed - 1) / prodFixed);
        const int64_t mHi = padLimit / prodFixed;
        if (freeSlots == 0 ? prodFixed < boundVal : mLo > mHi) {
            out.feasible = false;
            return out;
        }
        full[d] = freeSlots == 0 ? prodFixed : prodFixed * mLo;

        const auto part = [&](uint8_t slots) {
            int64_t p = 1;
            for (int s = 0; s < kFactorSlots; ++s)
                if ((slots >> s & 1) && pa.fixed(d, FactorSlot(s)))
                    p *= pa.factor(d, FactorSlot(s));
            return p;
        };
        e1[d] = part(1u << int(FactorSlot::L1));
        esp[d] = part((1u << int(FactorSlot::L1))
                      | (1u << int(FactorSlot::Spatial)));
        e2[d] = part((1u << int(FactorSlot::L1))
                     | (1u << int(FactorSlot::Spatial))
                     | (1u << int(FactorSlot::L2)));

        if (pa.fixed(d, FactorSlot::Spatial)) {
            const double sp = double(pa.factor(d, FactorSlot::Spatial));
            pesFixed *= sp;
            pesCap *= sp;
        } else {
            const int64_t prodOther =
                part(uint8_t(0xF & ~(1u << int(FactorSlot::Spatial))));
            pesCap *= double(std::max<int64_t>(1, padLimit / prodOther));
        }
    }
    if (pesFixed > double(cost.numPes)) {
        out.feasible = false;
        return out;
    }
    const double pesUb = std::min(double(cost.numPes), pesCap);

    // Minimal bank demand at the extent floors: each tensor needs at
    // least ceil-to-bank of its floor tile at both on-chip levels, and
    // any completion only grows the tiles.
    const int64_t *onChipExt[kNumOnChipLevels] = {e1, e2};
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        int64_t need = 0;
        for (size_t t = 0; t < cost.tensors; ++t)
            need += minBanksFor(
                lvl, mapSpace->tensorTileBytes(
                         t, std::span<const int64_t>(onChipExt[lvl],
                                                     cost.rank)));
        if (need > cost.banks[lvl]) {
            out.feasible = false;
            return out;
        }
    }

    double macsLb = 1.0;
    for (size_t d = 0; d < cost.rank; ++d)
        macsLb *= double(full[d]);

    constexpr size_t iL1 = size_t(MemLevel::L1);
    constexpr size_t iL2 = size_t(MemLevel::L2);
    constexpr size_t iDram = size_t(MemLevel::DRAM);
    double words[kNumMemLevels] = {0.0, 0.0, 0.0};
    double noc = 0.0;
    for (size_t t = 0; t < cost.tensors; ++t) {
        // L1 refills of the form pes * rf_L1 cover every relevant
        // padded bound at least once — relevance-only, any projection.
        double refills = 1.0;
        for (size_t d = 0; d < cost.rank; ++d)
            if (cost.relevance[t] >> d & 1)
                refills *= double(full[d]);

        const double f1 = double(cost.footprint(t, e1));
        const double deliveriesWeak = pesFixed * f1;
        if (strongTensor[t]) {
            // Reuse limit: every f_P * rf_P transfer moves at least the
            // full footprint at the extent floor.
            const double F = double(cost.footprint(t, full));
            const double deliveries = std::max(F, deliveriesWeak);
            words[iDram] += F;
            words[iL2] += cost.isOutput[t] ? F : 2.0 * F;
            words[iL1] += cost.isOutput[t] ? refills : deliveries + refills;
            noc += deliveries;
        } else {
            // Monotonicity only: footprints at the per-slot floors.
            const double f2 = double(cost.footprint(t, e2));
            const double fsp = double(cost.footprint(t, esp));
            words[iDram] += f2;
            words[iL2] += cost.isOutput[t] ? fsp : f2 + fsp;
            words[iL1] += cost.isOutput[t] ? refills
                                           : deliveriesWeak + refills;
            noc += deliveriesWeak;
        }
    }

    double energy = macsLb * cost.macEnergyPj + noc * cost.nocEnergyPerWordPj;
    for (size_t lvl = 0; lvl < kNumMemLevels; ++lvl)
        energy += words[lvl] * cost.energyPerWordPj[lvl];

    double cycles = macsLb / (pesUb * cost.macsPerPePerCycle);
    for (size_t lvl = 0; lvl < kNumMemLevels; ++lvl) {
        double w = words[lvl];
        if (cost.perPe[lvl])
            w /= pesUb;
        cycles = std::max(cycles, w / cost.bandwidthWordsPerCycle[lvl]);
    }

    out.energyPj = energy;
    out.cycles = cycles;
    out.words = {words[0], words[1], words[2]};
    return out;
}

PartialBound
BoundTables::wholeProblem() const
{
    return bound(PartialAssignment(cost.rank));
}

} // namespace mm
