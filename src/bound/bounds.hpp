/**
 * @file
 * Analytic per-memory-level lower bounds for *partial* mapping
 * assignments (ROADMAP item 3).
 *
 * A partial assignment pins any subset of the (loop dimension, factor
 * slot) grid to concrete values — a prefix of levels (all DRAM factors
 * chosen, inner levels free), a prefix of dimensions (the order a
 * branch-and-bound tree fixes them), or anything in between. The bound
 * answers: over every *valid completion* of the assignment, how few
 * words can each memory level move, how little energy can the mapping
 * burn, and how few cycles can it take?
 *
 * Derivation (per tensor, per level, from data-reuse limits):
 *
 *  - Every word that crosses a level at least once per full-tensor
 *    traversal is charged at least the tensor's reuse-limit footprint:
 *    for residency point P with child footprint f_P and reload factor
 *    rf_P (the product of all temporal trips down to the innermost
 *    P-relevant loop), the telescoping identity
 *
 *        f_P * prod(relevant trips outside P)  >=  full footprint
 *
 *    holds whenever the tensor's projection uses unit coefficients and
 *    each loop dimension at most once (true for all paper workloads;
 *    reuseLimited() reports it per tensor). Since rf_P dominates the
 *    relevant-trip product, every transfer count of the form
 *    f_P * rf_P is at least the *full footprint at the extent floor* of
 *    the partial assignment.
 *  - L1 traffic of the form pes * rf_L1 is at least the product of the
 *    tensor-relevant padded bounds — relevance-only, valid for any
 *    projection.
 *  - Tensors whose projection violates the unit-coefficient structure
 *    fall back to a monotonicity-only bound: footprints evaluated at
 *    the per-slot extent floors (free slots -> 1), still admissible.
 *
 * Cycles take the max of compute at the *maximum reachable* PE count
 * and per-level bandwidth over the word floors; energy sums the word
 * floors through the per-level energies plus MAC and NoC floors.
 * Infeasible assignments (PE budget exceeded, minimal bank demand over
 * capacity, no legal factor completion) report feasible == false and
 * an infinite EDP.
 *
 * Admissibility contract (pinned by tests/test_bound.cpp at 10k+
 * samples): for every valid mapping m and every partial assignment pa
 * consistent with m, bound(pa).edp() <= CostModel::evaluate(m).edp()
 * up to floating-point rounding. The bound is also monotone: fixing
 * more slots never decreases it — which is what makes best-first
 * branch-and-bound certificates valid (src/bound/bb_search.hpp).
 *
 * The whole-problem minimum (nothing fixed) is the trivial case;
 * costmodel/lower_bound.cpp is now a thin wrapper over it.
 */
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "costmodel/descriptor.hpp"

namespace mm {

/** Lower-bound components of a (possibly partial) assignment. */
struct PartialBound
{
    /** False when the assignment has no valid completion (PE budget,
     * minimal bank demand, or per-dimension factor range violated). */
    bool feasible = true;
    double energyPj = 0.0;
    double cycles = 0.0;
    /** Per-level word-count floors (reads + writes), by MemLevel. */
    std::array<double, kNumMemLevels> words{};

    double
    edp() const
    {
        return feasible ? energyPj * cycles
                        : std::numeric_limits<double>::infinity();
    }
};

/**
 * A partial factorization: any subset of the (dimension, factor slot)
 * grid pinned to concrete values, the rest free. Fixed values must be
 * >= 1; legality against the dimension's factor range is judged by
 * BoundTables::bound (an out-of-range pin makes the assignment
 * infeasible, not invalid to express).
 */
class PartialAssignment
{
  public:
    PartialAssignment() = default;
    explicit PartialAssignment(size_t rank);

    size_t rank() const { return dims; }

    bool
    fixed(size_t d, FactorSlot s) const
    {
        return (slotMask[d] >> int(s)) & 1;
    }

    /** All four slots of dimension @p d fixed. */
    bool dimFixed(size_t d) const { return slotMask[d] == 0xF; }

    /** Total fixed slots across the grid. */
    size_t fixedSlotCount() const;

    /** Value of a fixed slot; 1 for free slots. */
    int64_t factor(size_t d, FactorSlot s) const { return fac[d][int(s)]; }

    void fix(size_t d, FactorSlot s, int64_t value);
    void fixDim(size_t d, const std::array<int64_t, kFactorSlots> &f);

    /**
     * The outermost @p levels factor slots of every dimension of @p m
     * (decision order DRAM, L2, Spatial, L1 — the "prefix of levels"
     * view); 0 fixes nothing, 4 the full factorization.
     */
    static PartialAssignment levelPrefixOf(const Mapping &m, int levels);

    /** All four factors of the first @p dimCount dimensions of @p m
     * (the branch-and-bound "prefix of dimensions" view). */
    static PartialAssignment dimPrefixOf(const Mapping &m, size_t dimCount);

  private:
    size_t dims = 0;
    std::array<uint8_t, kMaxCostRank> slotMask{};
    std::array<std::array<int64_t, kFactorSlots>, kMaxCostRank> fac{};
};

/**
 * The bounds engine for one map space: compiled projection tables plus
 * per-dimension factor catalogs. bound() is allocation-free and cheap
 * (a few hundred flops) — it sits on the branch-and-bound hot path.
 *
 * Not thread-safe across calls to tuples() (lazy catalog build); each
 * searcher instance owns its tables.
 */
class BoundTables
{
  public:
    explicit BoundTables(const MapSpace &space);

    /** The map space is captured by reference: forbid temporaries. */
    explicit BoundTables(MapSpace &&) = delete;

    const MapSpace &space() const { return *mapSpace; }

    /**
     * True when tensor @p t's projection supports the tight reuse-limit
     * form (unit coefficients, each loop dimension used at most once);
     * bound() falls back to a monotonicity-only form otherwise.
     */
    bool reuseLimited(size_t t) const { return strongTensor[t]; }

    /** Lower bound over every valid completion of @p pa. */
    PartialBound bound(const PartialAssignment &pa) const;

    /** bound() of the empty assignment: the whole-problem minimum. */
    PartialBound wholeProblem() const;

    /**
     * Every legal factor tuple of dimension @p d (product within the
     * padding window, factors within range), lexicographic in
     * (L1, Spatial, L2, DRAM) order. Built on first use, cached, and
     * verified against FactorizationTable::count().
     */
    const std::vector<std::array<int64_t, kFactorSlots>> &
    tuples(size_t d) const;

    /**
     * Give each tensor its minimal feasible bank count under @p m's
     * tile extents, leaving surplus banks unallocated. Returns false
     * when some level cannot host the tiles (bank alloc never changes
     * modeled cost, so minimal banks lose nothing).
     */
    bool assignMinimalBanks(Mapping &m) const;

  private:
    int64_t minBanksFor(int lvl, double tileBytes) const;

    const MapSpace *mapSpace;
    CostTables cost;
    std::array<bool, kMaxCostTensors> strongTensor{};
    mutable std::array<std::vector<std::array<int64_t, kFactorSlots>>,
                       kMaxCostRank>
        tupleCache;
};

} // namespace mm
