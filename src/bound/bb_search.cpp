#include "bound/bb_search.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.hpp"
#include "search/registry.hpp"

namespace mm {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** One open subtree: dimensions branchOrder[0..depth) fixed to the
 * tuple indices in choice, everything else free. */
struct Node
{
    double bound = 0.0;
    uint64_t seq = 0;
    uint32_t depth = 0;
    std::array<uint32_t, kMaxCostRank> choice{};
};

/** Min-bound first; deeper then older nodes win ties, so the queue
 * plunges toward leaves instead of hovering at one frontier. */
struct WorseThan
{
    bool
    operator()(const Node &a, const Node &b) const
    {
        if (a.bound != b.bound)
            return a.bound > b.bound;
        if (a.depth != b.depth)
            return a.depth < b.depth;
        return a.seq > b.seq;
    }
};

class BBRun
{
  public:
    BBRun(const CostModel &model_, const BoundTables &tables_,
          SearchRecorder &rec_, const BBOptions &opt_)
        : model(&model_), tables(&tables_), rec(&rec_), opt(opt_),
          rank(model_.space().rank()), lbEdp(model_.lowerBound().edp())
    {
        MM_ASSERT(&tables_.space() == &model_.space(),
                  "bound tables wrap a different map space");
        branchOrder.resize(rank);
        for (size_t d = 0; d < rank; ++d)
            branchOrder[d] = d;
        // Cheap decisions near the root: ascending tuple count.
        std::sort(branchOrder.begin(), branchOrder.end(),
                  [&](size_t a, size_t b) {
                      const size_t ca = tables_.tuples(a).size();
                      const size_t cb = tables_.tuples(b).size();
                      return ca != cb ? ca < cb : a < b;
                  });
        // Relevance class per dimension: dims with identical classes
        // are interchangeable under *adjacent* loop swaps.
        classOf.assign(rank, 0);
        const AlgorithmSpec &algo = *model_.space().problem().algo;
        for (size_t d = 0; d < rank; ++d)
            for (size_t t = 0; t < algo.tensorCount(); ++t)
                if (algo.tensors[t].usesDim(int(d)))
                    classOf[d] |= uint32_t(1) << t;
    }

    BBOutcome
    run()
    {
        dive();
        loop();
        return finishOutcome();
    }

  private:
    /** Incumbent in absolute EDP (the recorder may carry a better best
     * from the caller — pruning against it is equally sound). */
    double
    incumbentEdp() const
    {
        return std::min(myBestNorm, rec->bestNormEdp()) * lbEdp;
    }

    PartialAssignment
    assignmentOf(const Node &n) const
    {
        PartialAssignment pa(rank);
        for (uint32_t k = 0; k < n.depth; ++k) {
            const size_t d = branchOrder[k];
            pa.fixDim(d, tables->tuples(d)[n.choice[k]]);
        }
        return pa;
    }

    /**
     * Greedy bound-guided descent to one complete factorization. Gives
     * the main loop an incumbent to prune against from node one; the
     * best-first queue alone would evaluate nothing until it first
     * reaches depth == rank.
     */
    void
    dive()
    {
        Node n;
        PartialAssignment pa(rank);
        for (size_t k = 0; k < rank; ++k) {
            if (rec->exhausted() || nodesExpanded >= opt.maxNodes)
                return;
            ++nodesExpanded;
            const auto &tup = tables->tuples(branchOrder[k]);
            double bestB = kInf;
            uint32_t bestI = 0;
            bool found = false;
            for (uint32_t i = 0; i < tup.size(); ++i) {
                PartialAssignment child = pa;
                child.fixDim(branchOrder[k], tup[i]);
                const PartialBound pb = tables->bound(child);
                if (pb.feasible && pb.edp() < bestB) {
                    bestB = pb.edp();
                    bestI = i;
                    found = true;
                }
            }
            if (!found)
                return;
            pa.fixDim(branchOrder[k], tup[bestI]);
            n.choice[k] = bestI;
        }
        n.depth = uint32_t(rank);
        n.bound = tables->bound(pa).edp();
        evaluateLeaf(n);
    }

    void
    loop()
    {
        const PartialBound rootB = tables->bound(PartialAssignment(rank));
        if (!rootB.feasible)
            return; // empty map space; MapSpace construction forbids it
        Node root;
        root.bound = rootB.edp();
        open.push(root);
        while (!open.empty() && nodesExpanded < opt.maxNodes
               && !rec->exhausted()) {
            const Node n = open.top();
            open.pop();
            // Re-check against the (possibly improved) incumbent.
            if (n.bound * (1.0 + opt.gap) >= incumbentEdp()) {
                ++nodesPruned;
                prunedMin = std::min(prunedMin, n.bound);
                continue;
            }
            if (size_t(n.depth) == rank) {
                ++nodesExpanded;
                evaluateLeaf(n);
            } else {
                expand(n);
            }
        }
    }

    void
    expand(const Node &n)
    {
        ++nodesExpanded;
        const size_t d = branchOrder[n.depth];
        const auto &tup = tables->tuples(d);
        const PartialAssignment base = assignmentOf(n);
        for (uint32_t i = 0; i < tup.size(); ++i) {
            PartialAssignment pa = base;
            pa.fixDim(d, tup[i]);
            const PartialBound pb = tables->bound(pa);
            const double b = pb.edp();
            if (!pb.feasible || b * (1.0 + opt.gap) >= incumbentEdp()) {
                ++nodesPruned;
                if (pb.feasible)
                    prunedMin = std::min(prunedMin, b);
                continue;
            }
            Node child;
            child.bound = b;
            child.seq = ++seqCounter;
            child.depth = n.depth + 1;
            child.choice = n.choice;
            child.choice[n.depth] = i;
            if (int64_t(open.size()) >= opt.maxOpen)
                residualMin = std::min(residualMin, b);
            else
                open.push(child);
        }
    }

    /**
     * Canonical orders of @p active (generation stops one past @p cap
     * so the caller can detect truncation), each completed into a full
     * permutation by appending the inactive dimensions.
     */
    std::vector<std::vector<int>>
    canonicalOrders(const std::vector<int> &active, int64_t cap) const
    {
        std::vector<std::vector<int>> out;
        std::vector<int> cur;
        std::vector<char> used(active.size(), 0);
        canonicalRec(active, used, cur, cap + 1, out);
        for (auto &ord : out) {
            std::vector<char> inOrd(rank, 0);
            for (int d : ord)
                inOrd[size_t(d)] = 1;
            for (size_t d = 0; d < rank; ++d)
                if (!inOrd[d])
                    ord.push_back(int(d));
        }
        return out;
    }

    void
    canonicalRec(const std::vector<int> &active, std::vector<char> &used,
                 std::vector<int> &cur, int64_t cap,
                 std::vector<std::vector<int>> &out) const
    {
        if (int64_t(out.size()) >= cap)
            return;
        if (cur.size() == active.size()) {
            out.push_back(cur);
            return;
        }
        for (size_t i = 0; i < active.size(); ++i) {
            if (used[i])
                continue;
            // Adjacent same-class loops commute bitwise; keep only the
            // ascending representative of each such pair.
            if (!cur.empty()
                && classOf[size_t(cur.back())] == classOf[size_t(active[i])]
                && active[i] < cur.back())
                continue;
            used[i] = 1;
            cur.push_back(active[i]);
            canonicalRec(active, used, cur, cap, out);
            cur.pop_back();
            used[i] = 0;
        }
    }

    void
    evaluateLeaf(const Node &n)
    {
        Mapping base;
        base.spatial.assign(rank, 1);
        for (auto &t : base.tiling)
            t.assign(rank, 1);
        for (size_t k = 0; k < rank; ++k) {
            const size_t d = branchOrder[k];
            const auto &f = tables->tuples(d)[n.choice[k]];
            base.tiling[size_t(MemLevel::L1)][d] = f[size_t(FactorSlot::L1)];
            base.spatial[d] = f[size_t(FactorSlot::Spatial)];
            base.tiling[size_t(MemLevel::L2)][d] = f[size_t(FactorSlot::L2)];
            base.tiling[size_t(MemLevel::DRAM)][d] =
                f[size_t(FactorSlot::DRAM)];
        }
        if (!tables->assignMinimalBanks(base))
            return; // bound() already proved this cannot happen

        // Canonical per-level orders of the trip > 1 loops (order of
        // trip == 1 loops never reaches the flattened nest).
        std::array<std::vector<std::vector<int>>, kNumMemLevels> orders;
        for (size_t lvl = 0; lvl < kNumMemLevels; ++lvl) {
            std::vector<int> active;
            for (size_t d = 0; d < rank; ++d)
                if (base.tiling[lvl][d] > 1)
                    active.push_back(int(d));
            orders[lvl] = canonicalOrders(active, opt.leafOrders);
        }

        bool truncated = false;
        leafMaps.clear();
        for (size_t i0 = 0; i0 < orders[0].size() && !truncated; ++i0) {
            for (size_t i1 = 0; i1 < orders[1].size() && !truncated; ++i1) {
                for (size_t i2 = 0; i2 < orders[2].size(); ++i2) {
                    if (int64_t(leafMaps.size()) >= opt.leafOrders) {
                        truncated = true;
                        break;
                    }
                    Mapping m = base;
                    m.loopOrder[0] = orders[0][i0];
                    m.loopOrder[1] = orders[1][i1];
                    m.loopOrder[2] = orders[2][i2];
                    leafMaps.push_back(std::move(m));
                }
            }
        }

        const int64_t planned = rec->plannedSteps(int64_t(leafMaps.size()));
        if (truncated || planned < int64_t(leafMaps.size()))
            residualMin = std::min(residualMin, n.bound);
        if (planned == 0)
            return;
        leafPtrs.clear();
        for (int64_t i = 0; i < planned; ++i)
            leafPtrs.push_back(&leafMaps[size_t(i)]);
        norms.resize(size_t(planned));
        model->normalizedEdpBatch(
            std::span<const Mapping *const>(leafPtrs),
            std::span<double>(norms));
        const size_t used = rec->stepPrescored(leafPtrs, norms);
        if (int64_t(used) < planned)
            residualMin = std::min(residualMin, n.bound);
        leavesEvaluated += int64_t(used);
        for (size_t i = 0; i < used; ++i) {
            if (norms[i] < myBestNorm) {
                myBestNorm = norms[i];
                myBest = leafMaps[i];
            }
        }
    }

    BBOutcome
    finishOutcome()
    {
        BBOutcome out;
        out.nodesExpanded = nodesExpanded;
        out.nodesPruned = nodesPruned;
        out.leavesEvaluated = leavesEvaluated;
        out.bestNormEdp = myBestNorm;
        const double bestEdp =
            std::isfinite(myBestNorm) ? myBestNorm * lbEdp : kInf;
        if (std::isfinite(myBestNorm))
            out.best = myBest;
        // Every mapping sits under an evaluated leaf, a pruned node, a
        // still-open node, or a truncation residual.
        const double openMin = open.empty() ? kInf : open.top().bound;
        out.certifiedEdp =
            std::min(std::min(bestEdp, prunedMin),
                     std::min(openMin, residualMin));
        out.certifiedNormEdp =
            lbEdp > 0.0 ? out.certifiedEdp / lbEdp : out.certifiedEdp;
        out.exact =
            std::isfinite(bestEdp) && out.certifiedEdp == bestEdp;
        return out;
    }

    const CostModel *model;
    const BoundTables *tables;
    SearchRecorder *rec;
    BBOptions opt;
    size_t rank;
    double lbEdp;

    std::vector<size_t> branchOrder;
    std::vector<uint32_t> classOf;
    std::priority_queue<Node, std::vector<Node>, WorseThan> open;
    uint64_t seqCounter = 0;

    int64_t nodesExpanded = 0;
    int64_t nodesPruned = 0;
    int64_t leavesEvaluated = 0;
    double prunedMin = kInf;
    double residualMin = kInf;
    double myBestNorm = kInf;
    Mapping myBest;

    // Reused leaf-evaluation scratch.
    std::vector<Mapping> leafMaps;
    std::vector<const Mapping *> leafPtrs;
    std::vector<double> norms;
};

} // namespace

BBOutcome
branchAndBound(const CostModel &model, const BoundTables &tables,
               SearchRecorder &rec, const BBOptions &opt)
{
    BBRun run(model, tables, rec, opt);
    return run.run();
}

BBOutcome
certifyOptimum(const CostModel &model, int64_t maxNodes, double gap)
{
    SearchRecorder rec(model, SearchBudget{},
                       TimingModel::paperCalibrated().randomStepSec);
    BoundTables tables(model.space());
    BBOptions opt;
    opt.maxNodes = maxNodes;
    opt.gap = gap;
    return branchAndBound(model, tables, rec, opt);
}

std::optional<Mapping>
seedIncumbent(const CostModel &model, SearchRecorder &rec,
              int64_t seedNodes)
{
    BoundTables tables(model.space());
    BBOptions opt;
    opt.maxNodes = seedNodes;
    // Seeding wants a good factorization fast, not an order sweep.
    opt.leafOrders = 64;
    BBOutcome out = branchAndBound(model, tables, rec, opt);
    if (!std::isfinite(out.bestNormEdp))
        return std::nullopt;
    return std::move(out.best);
}

BBSearcher::BBSearcher(const CostModel &model_, BBOptions opt_,
                       const TimingModel &timing)
    : model(&model_), opt(opt_), stepLatency(timing.randomStepSec)
{}

SearchResult
BBSearcher::run(SearchContext &ctx)
{
    SearchRecorder rec(*model, ctx, stepLatency);
    BoundTables tables(model->space());
    branchAndBound(*model, tables, rec, opt);
    return rec.finish(name());
}

namespace {
const SearcherRegistrar registrar({
    "BB",
    "best-first branch-and-bound with analytic partial-assignment "
    "bounds; prunes to a certified (optionally exact) optimum",
    /*needsSurrogate=*/false,
    {
        {"maxNodes", "nodes expanded before giving up"},
        {"gap", "relative optimality gap pruning tolerates (0 = exact)"},
        {"leafOrders", "loop-order combinations evaluated per leaf"},
    },
    [](const SearcherBuildContext &ctx, SearcherOptions &opt) {
        BBOptions cfg;
        cfg.maxNodes = opt.getInt("maxNodes", cfg.maxNodes);
        cfg.gap = opt.getDouble("gap", cfg.gap);
        cfg.leafOrders = opt.getInt("leafOrders", cfg.leafOrders);
        if (cfg.maxNodes < 1)
            fatal("searcher 'BB': maxNodes must be >= 1");
        if (cfg.gap < 0.0)
            fatal("searcher 'BB': gap must be >= 0");
        if (cfg.leafOrders < 1)
            fatal("searcher 'BB': leafOrders must be >= 1");
        return std::make_unique<BBSearcher>(ctx.model, cfg, ctx.timing);
    },
});
} // namespace

namespace detail {
extern const int boundSearcherRegistered;
const int boundSearcherRegistered = 1;
} // namespace detail

} // namespace mm
