/**
 * @file
 * Best-first branch-and-bound over the mapping space, pruned by the
 * partial-assignment bounds of bound/bounds.hpp.
 *
 * The tree fixes one loop dimension's full factor tuple per level
 * (dimensions ordered by ascending tuple count, so cheap decisions sit
 * near the root), keeps a priority queue ordered by bound, and
 * evaluates complete factorizations through the standard
 * SearchRecorder — leaf blocks go through normalizedEdpBatch, charge
 * the step budget, and update the incumbent like any other searcher's
 * cost-function queries.
 *
 * Loop orders are handled at the leaves: only temporal loops with trip
 * count > 1 affect the model, and swapping *adjacent* loops whose
 * dimensions are relevant to exactly the same tensor set is bitwise
 * cost-neutral (both orders see identical prefix trip products). Each
 * leaf therefore enumerates only canonical per-level orders (every
 * adjacent same-class pair ascending by dimension index) — every full
 * permutation costs bitwise the same as its canonical form, so the
 * enumeration loses nothing. When the canonical product still exceeds
 * leafOrders, the surplus is left to the leaf's own lower bound.
 *
 * Certificates: every mapping in the space lies under an evaluated
 * leaf, a pruned node, a still-open node, or a truncation residual, so
 *
 *   certifiedEdp = min(best evaluated EDP, pruned bounds, open bounds,
 *                      residual bounds)
 *
 * is a valid lower bound on the achievable EDP no matter where the run
 * stopped; exact == true means the incumbent *is* that bound — a
 * certified optimum (tests verify it against brute-force enumeration).
 */
#pragma once

#include <optional>

#include "bound/bounds.hpp"
#include "search/search.hpp"

namespace mm {

/** Tuning knobs of one branch-and-bound run. */
struct BBOptions
{
    /** Nodes taken off the queue before giving up (budget may stop the
     * run earlier; the certificate stays valid either way). */
    int64_t maxNodes = 100000;
    /** Relative optimality gap: subtrees that cannot beat the incumbent
     * by more than this factor are pruned (0 = prove exact optimality). */
    double gap = 0.0;
    /** Most loop-order combinations evaluated per leaf; the surplus
     * falls back to the leaf's bound. */
    int64_t leafOrders = 1024;
    /** Open-queue cap; children beyond it feed the residual bound
     * instead of the queue (bounds memory, keeps certificates valid). */
    int64_t maxOpen = int64_t(1) << 18;
};

/** What a branch-and-bound run established. */
struct BBOutcome
{
    /** Best mapping this run evaluated (meaningful iff bestNormEdp is
     * finite; the space always has members, so a non-trivial node or
     * step budget makes it finite). */
    Mapping best;
    double bestNormEdp = std::numeric_limits<double>::infinity();
    /** Certified lower bound on the EDP of *any* valid mapping. */
    double certifiedEdp = 0.0;
    /** certifiedEdp over the algorithmic lower-bound EDP (the unit of
     * normalized results; >= 1 up to rounding). */
    double certifiedNormEdp = 0.0;
    /** True when best provably attains certifiedEdp (global optimum up
     * to the configured gap). */
    bool exact = false;
    int64_t nodesExpanded = 0;
    int64_t nodesPruned = 0;
    int64_t leavesEvaluated = 0;
};

/**
 * Run branch-and-bound against @p rec's budget/observer/stop contract.
 * Leaf evaluations charge the recorder exactly like any searcher's
 * step() calls; interior bound computations are free (they query no
 * cost function). @p tables must wrap @p model's map space.
 */
BBOutcome branchAndBound(const CostModel &model, const BoundTables &tables,
                         SearchRecorder &rec, const BBOptions &opt);

/**
 * Certificate convenience: an unbudgeted run of up to @p maxNodes
 * nodes. The result's certifiedNormEdp divides any method's normalized
 * EDP into an optimality gap; exact == true upgrades the certificate to
 * a proven optimum (fig5/fig6 report both).
 */
BBOutcome certifyOptimum(const CostModel &model, int64_t maxNodes,
                         double gap = 0.0);

/**
 * Cheap incumbent for seeding other searchers (their seedFrom=BB
 * option): a bound-guided run capped at @p seedNodes nodes, charged to
 * @p rec like the caller's own cost-function queries. Returns nullopt
 * when no leaf was reached within the caps.
 */
std::optional<Mapping> seedIncumbent(const CostModel &model,
                                     SearchRecorder &rec,
                                     int64_t seedNodes);

/** The registry's "BB" method (registered in bb_search.cpp). */
class BBSearcher : public Searcher
{
  public:
    BBSearcher(const CostModel &model, BBOptions opt,
               const TimingModel &timing);

    std::string name() const override { return "BB"; }
    SearchResult run(SearchContext &ctx) override;

  private:
    const CostModel *model;
    BBOptions opt;
    double stepLatency;
};

} // namespace mm
