/**
 * @file
 * Pointwise activation functions.
 *
 * Derivatives are computed from the activation *output*, which every
 * supported function permits; this halves the caching a layer must do.
 */
#pragma once

#include <cstdint>

#include "tensor/matrix.hpp"

namespace mm {

/** Supported pointwise nonlinearities. */
enum class Activation : uint8_t { Identity = 0, ReLU = 1, Tanh = 2 };

/** Apply @p act elementwise in place. */
void applyActivation(Activation act, Matrix &m);

/**
 * Multiply @p grad elementwise by act'(z) expressed through the cached
 * activation output @p out (grad <- grad * act'(out)).
 */
void applyActivationGrad(Activation act, const Matrix &out, Matrix &grad);

/** Human-readable name (serialization and diagnostics). */
const char *activationName(Activation act);

} // namespace mm
