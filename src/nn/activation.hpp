/**
 * @file
 * Pointwise activation functions.
 *
 * Derivatives are computed from the activation *output*, which every
 * supported function permits; this halves the caching a layer must do.
 */
#pragma once

#include <cstdint>

#include "tensor/matrix.hpp"

namespace mm {

/** Supported pointwise nonlinearities. */
enum class Activation : uint8_t { Identity = 0, ReLU = 1, Tanh = 2 };

/** Apply @p act elementwise in place. */
void applyActivation(Activation act, Matrix &m);

/**
 * Multiply @p grad elementwise by act'(z) expressed through the cached
 * activation output @p out (grad <- grad * act'(out)).
 */
void applyActivationGrad(Activation act, const Matrix &out, Matrix &grad);

/**
 * Fused epilogue of a dense forward: m[r][c] = act(m[r][c] + bias[0][c])
 * in a single pass (one memory sweep instead of a bias pass plus an
 * activation pass).
 */
void applyBiasActivation(Activation act, const Matrix &bias, Matrix &m);

/**
 * Fused prologue of a dense backward: grad[r][c] = dOut[r][c] * act'(out)
 * and dBias[0][c] += grad[r][c], in a single pass (replaces a copy, an
 * activation-grad pass and a bias-reduction pass). @p grad is reshaped
 * to match @p dOut; rows are accumulated into @p dBias in row order, so
 * results are bitwise identical to the unfused sequence.
 */
void applyActivationGradBias(Activation act, const Matrix &out,
                             const Matrix &dOut, Matrix &grad,
                             Matrix &dBias);

/** Human-readable name (serialization and diagnostics). */
const char *activationName(Activation act);

} // namespace mm
