/**
 * @file
 * First-order parameter optimizers.
 *
 * The paper trains the surrogate with SGD + momentum 0.9 and a step-decay
 * learning-rate schedule (lr 1e-2, x0.1 every 25 epochs); Adam is provided
 * for the DDPG baseline and as an extension.
 */
#pragma once

#include <memory>
#include <vector>

#include "tensor/matrix.hpp"

namespace mm {

/** Interface shared by all optimizers. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /**
     * Bind parameter/gradient matrices (must stay alive for the
     * optimizer's lifetime; shapes are captured here).
     */
    virtual void attach(std::vector<Matrix *> params,
                        std::vector<Matrix *> grads) = 0;

    /** Apply one update from the currently accumulated gradients. */
    virtual void step() = 0;

    virtual void setLr(double lr) = 0;
    virtual double lr() const = 0;
};

/** SGD with classical momentum: v = mu*v - lr*g ; p += v. */
class SgdOptimizer : public Optimizer
{
  public:
    SgdOptimizer(double lr, double momentum);

    void attach(std::vector<Matrix *> params,
                std::vector<Matrix *> grads) override;
    void step() override;
    void setLr(double lr) override { lrValue = lr; }
    double lr() const override { return lrValue; }

  private:
    double lrValue;
    double momentum;
    std::vector<Matrix *> params;
    std::vector<Matrix *> grads;
    std::vector<Matrix> velocity;
};

/** Adam (Kingma & Ba) with bias correction. */
class AdamOptimizer : public Optimizer
{
  public:
    AdamOptimizer(double lr, double beta1 = 0.9, double beta2 = 0.999,
                  double eps = 1e-8);

    void attach(std::vector<Matrix *> params,
                std::vector<Matrix *> grads) override;
    void step() override;
    void setLr(double lr) override { lrValue = lr; }
    double lr() const override { return lrValue; }

  private:
    double lrValue;
    double beta1;
    double beta2;
    double eps;
    int64_t t = 0;
    std::vector<Matrix *> params;
    std::vector<Matrix *> grads;
    std::vector<Matrix> m1;
    std::vector<Matrix> m2;
};

/** Step-decay LR schedule: lr(epoch) = initial * factor^(epoch/every). */
struct StepDecaySchedule
{
    double initial = 1e-2;
    double factor = 0.1;
    int every = 25;

    /** Learning rate for a zero-based epoch index. */
    double
    at(int epoch) const
    {
        double lr = initial;
        for (int e = every; e <= epoch; e += every)
            lr *= factor;
        return lr;
    }
};

} // namespace mm
