/**
 * @file
 * Fully-connected layer with fused activation.
 */
#pragma once

#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "tensor/matrix.hpp"

namespace mm {

class ThreadPool;

/**
 * y = act(x * W^T + b).
 *
 * Weights are stored out x in. The layer caches its input and output
 * during forward so backward can form weight gradients and the input
 * gradient (the latter is what makes the surrogate differentiable with
 * respect to candidate mappings, the core mechanism of the paper).
 */
class DenseLayer
{
  public:
    /**
     * He-initialize (ReLU) or Xavier-initialize (otherwise) the weights.
     */
    DenseLayer(size_t inDim, size_t outDim, Activation act, Rng &rng);

    /** Forward pass; result stays valid until the next forward. */
    const Matrix &forward(const Matrix &x);

    /**
     * Backward pass from dL/dy (post-activation). Accumulates dW, dB and
     * returns dL/dx.
     */
    Matrix backward(const Matrix &dOut);

    /**
     * Allocation-free backward: writes dL/dx into @p dIn (reshaped as
     * needed). @p dIn must not alias @p dOut.
     */
    void backwardInto(const Matrix &dOut, Matrix &dIn);

    /** Clear accumulated gradients. */
    void zeroGrad();

    /**
     * Use @p pool for the layer's GEMMs (nullptr = serial). Results are
     * bitwise identical at any lane count.
     */
    void setPool(ThreadPool *pool) { gemmPool = pool; }

    size_t inDim() const { return weights.cols(); }
    size_t outDim() const { return weights.rows(); }
    Activation activation() const { return act; }

    Matrix weights; ///< out x in
    Matrix bias;    ///< 1 x out
    Matrix dWeights;
    Matrix dBias;

  private:
    Activation act;
    ThreadPool *gemmPool = nullptr; ///< not owned; nullptr = serial
    Matrix cachedIn;
    Matrix cachedOut;
    Matrix scratch; ///< pre-activation gradient workspace
};

} // namespace mm
