#include "nn/mlp.hpp"

#include <cstdint>
#include <istream>
#include <ostream>

#include "common/parallel_context.hpp"
#include "common/string_util.hpp"

namespace mm {

namespace {

constexpr uint32_t kMagic = 0x4d4d4c50; // "MMLP"

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    MM_ASSERT(bool(is), "truncated MLP stream");
    return v;
}

void
writeMatrix(std::ostream &os, const Matrix &m)
{
    writePod<uint64_t>(os, m.rows());
    writePod<uint64_t>(os, m.cols());
    os.write(reinterpret_cast<const char *>(m.data()),
             std::streamsize(m.size() * sizeof(float)));
}

void
readMatrixInto(std::istream &is, Matrix &m)
{
    auto rows = readPod<uint64_t>(is);
    auto cols = readPod<uint64_t>(is);
    MM_ASSERT(rows == m.rows() && cols == m.cols(),
              "MLP stream shape mismatch");
    is.read(reinterpret_cast<char *>(m.data()),
            std::streamsize(m.size() * sizeof(float)));
    MM_ASSERT(bool(is), "truncated MLP stream");
}

} // namespace

Mlp::Mlp(size_t inputDim, const std::vector<LayerSpec> &specs, Rng &rng)
    : inDim(inputDim)
{
    MM_ASSERT(!specs.empty(), "MLP needs at least one layer");
    size_t prev = inputDim;
    layers.reserve(specs.size());
    for (const auto &spec : specs) {
        layers.emplace_back(prev, spec.width, spec.act, rng);
        prev = spec.width;
    }
}

const Matrix &
Mlp::forward(const Matrix &x)
{
    const Matrix *cur = &x;
    for (auto &layer : layers)
        cur = &layer.forward(*cur);
    return *cur;
}

Matrix
Mlp::backward(const Matrix &dOut)
{
    return backwardInPlace(dOut);
}

const Matrix &
Mlp::backwardInPlace(const Matrix &dOut)
{
    // Alternate between the two workspaces so no layer reads and writes
    // the same buffer.
    const Matrix *grad = &dOut;
    Matrix *next = &gradPing;
    for (size_t i = layers.size(); i > 0; --i) {
        layers[i - 1].backwardInto(*grad, *next);
        grad = next;
        next = next == &gradPing ? &gradPong : &gradPing;
    }
    return *grad;
}

void
Mlp::zeroGrad()
{
    for (auto &layer : layers)
        layer.zeroGrad();
}

void
Mlp::setParallel(ParallelContext *ctx)
{
    ThreadPool *pool = ctx != nullptr ? ctx->pool() : nullptr;
    for (auto &layer : layers)
        layer.setPool(pool);
}

std::vector<Matrix *>
Mlp::params()
{
    std::vector<Matrix *> out;
    for (auto &layer : layers) {
        out.push_back(&layer.weights);
        out.push_back(&layer.bias);
    }
    return out;
}

std::vector<Matrix *>
Mlp::grads()
{
    std::vector<Matrix *> out;
    for (auto &layer : layers) {
        out.push_back(&layer.dWeights);
        out.push_back(&layer.dBias);
    }
    return out;
}

size_t
Mlp::paramCount() const
{
    size_t count = 0;
    for (const auto &layer : layers)
        count += layer.weights.size() + layer.bias.size();
    return count;
}

void
Mlp::softUpdateFrom(const Mlp &src, float tau)
{
    MM_ASSERT(layers.size() == src.layers.size(), "topology mismatch");
    for (size_t i = 0; i < layers.size(); ++i) {
        auto blend = [tau](Matrix &dst, const Matrix &s) {
            MM_ASSERT(dst.size() == s.size(), "topology mismatch");
            for (size_t j = 0; j < dst.size(); ++j)
                dst.data()[j] =
                    tau * s.data()[j] + (1.0f - tau) * dst.data()[j];
        };
        blend(layers[i].weights, src.layers[i].weights);
        blend(layers[i].bias, src.layers[i].bias);
    }
}

void
Mlp::copyParamsFrom(const Mlp &src)
{
    softUpdateFrom(src, 1.0f);
}

void
Mlp::save(std::ostream &os) const
{
    writePod<uint32_t>(os, kMagic);
    writePod<uint64_t>(os, inDim);
    writePod<uint64_t>(os, layers.size());
    for (const auto &layer : layers) {
        writePod<uint64_t>(os, layer.outDim());
        writePod<uint8_t>(os, uint8_t(layer.activation()));
    }
    for (const auto &layer : layers) {
        writeMatrix(os, layer.weights);
        writeMatrix(os, layer.bias);
    }
}

Mlp
Mlp::load(std::istream &is)
{
    auto magic = readPod<uint32_t>(is);
    MM_ASSERT(magic == kMagic, "bad MLP stream magic");
    auto inputDim = readPod<uint64_t>(is);
    auto nLayers = readPod<uint64_t>(is);
    std::vector<LayerSpec> specs;
    for (uint64_t i = 0; i < nLayers; ++i) {
        auto width = readPod<uint64_t>(is);
        auto act = Activation(readPod<uint8_t>(is));
        specs.push_back({size_t(width), act});
    }
    Rng throwaway(0);
    Mlp net(size_t(inputDim), specs, throwaway);
    for (auto &layer : net.layers) {
        readMatrixInto(is, layer.weights);
        readMatrixInto(is, layer.bias);
    }
    return net;
}

} // namespace mm
