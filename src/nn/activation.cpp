#include "nn/activation.hpp"

#include <cmath>

namespace mm {

void
applyActivation(Activation act, Matrix &m)
{
    float *p = m.data();
    switch (act) {
      case Activation::Identity:
        return;
      case Activation::ReLU:
        for (size_t i = 0; i < m.size(); ++i)
            p[i] = p[i] > 0.0f ? p[i] : 0.0f;
        return;
      case Activation::Tanh:
        for (size_t i = 0; i < m.size(); ++i)
            p[i] = std::tanh(p[i]);
        return;
    }
    MM_ASSERT(false, "unknown activation");
}

void
applyActivationGrad(Activation act, const Matrix &out, Matrix &grad)
{
    MM_ASSERT(out.rows() == grad.rows() && out.cols() == grad.cols(),
              "activation grad shape mismatch");
    const float *o = out.data();
    float *g = grad.data();
    switch (act) {
      case Activation::Identity:
        return;
      case Activation::ReLU:
        for (size_t i = 0; i < out.size(); ++i)
            g[i] = o[i] > 0.0f ? g[i] : 0.0f;
        return;
      case Activation::Tanh:
        for (size_t i = 0; i < out.size(); ++i)
            g[i] *= 1.0f - o[i] * o[i];
        return;
    }
    MM_ASSERT(false, "unknown activation");
}

namespace {

/** Entry guard for the fused helpers: their per-row switches have no
 * room for a trailing assert, so reject unknown enum values up front
 * instead of silently skipping the bias/activation work. */
void
assertKnownActivation(Activation act)
{
    MM_ASSERT(act == Activation::Identity || act == Activation::ReLU
                  || act == Activation::Tanh,
              "unknown activation");
}

} // namespace

void
applyBiasActivation(Activation act, const Matrix &bias, Matrix &m)
{
    assertKnownActivation(act);
    MM_ASSERT(bias.rows() == 1 && bias.cols() == m.cols(),
              "bias shape mismatch");
    const float *bp = bias.data();
    const size_t cols = m.cols();
    for (size_t r = 0; r < m.rows(); ++r) {
        float *row = m.data() + r * cols;
        switch (act) {
          case Activation::Identity:
            for (size_t c = 0; c < cols; ++c)
                row[c] += bp[c];
            break;
          case Activation::ReLU:
            for (size_t c = 0; c < cols; ++c) {
                const float z = row[c] + bp[c];
                row[c] = z > 0.0f ? z : 0.0f;
            }
            break;
          case Activation::Tanh:
            for (size_t c = 0; c < cols; ++c)
                row[c] = std::tanh(row[c] + bp[c]);
            break;
        }
    }
}

void
applyActivationGradBias(Activation act, const Matrix &out,
                        const Matrix &dOut, Matrix &grad, Matrix &dBias)
{
    assertKnownActivation(act);
    MM_ASSERT(out.rows() == dOut.rows() && out.cols() == dOut.cols(),
              "activation grad shape mismatch");
    MM_ASSERT(dBias.rows() == 1 && dBias.cols() == out.cols(),
              "bias grad shape mismatch");
    grad.ensureShape(dOut.rows(), dOut.cols());
    const size_t cols = out.cols();
    float *db = dBias.data();
    for (size_t r = 0; r < out.rows(); ++r) {
        const float *o = out.data() + r * cols;
        const float *d = dOut.data() + r * cols;
        float *g = grad.data() + r * cols;
        switch (act) {
          case Activation::Identity:
            for (size_t c = 0; c < cols; ++c) {
                g[c] = d[c];
                db[c] += g[c];
            }
            break;
          case Activation::ReLU:
            for (size_t c = 0; c < cols; ++c) {
                g[c] = o[c] > 0.0f ? d[c] : 0.0f;
                db[c] += g[c];
            }
            break;
          case Activation::Tanh:
            for (size_t c = 0; c < cols; ++c) {
                g[c] = d[c] * (1.0f - o[c] * o[c]);
                db[c] += g[c];
            }
            break;
        }
    }
}

const char *
activationName(Activation act)
{
    switch (act) {
      case Activation::Identity:
        return "identity";
      case Activation::ReLU:
        return "relu";
      case Activation::Tanh:
        return "tanh";
    }
    return "?";
}

} // namespace mm
