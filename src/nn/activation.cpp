#include "nn/activation.hpp"

#include <cmath>

namespace mm {

void
applyActivation(Activation act, Matrix &m)
{
    float *p = m.data();
    switch (act) {
      case Activation::Identity:
        return;
      case Activation::ReLU:
        for (size_t i = 0; i < m.size(); ++i)
            p[i] = p[i] > 0.0f ? p[i] : 0.0f;
        return;
      case Activation::Tanh:
        for (size_t i = 0; i < m.size(); ++i)
            p[i] = std::tanh(p[i]);
        return;
    }
    MM_ASSERT(false, "unknown activation");
}

void
applyActivationGrad(Activation act, const Matrix &out, Matrix &grad)
{
    MM_ASSERT(out.rows() == grad.rows() && out.cols() == grad.cols(),
              "activation grad shape mismatch");
    const float *o = out.data();
    float *g = grad.data();
    switch (act) {
      case Activation::Identity:
        return;
      case Activation::ReLU:
        for (size_t i = 0; i < out.size(); ++i)
            g[i] = o[i] > 0.0f ? g[i] : 0.0f;
        return;
      case Activation::Tanh:
        for (size_t i = 0; i < out.size(); ++i)
            g[i] *= 1.0f - o[i] * o[i];
        return;
    }
    MM_ASSERT(false, "unknown activation");
}

const char *
activationName(Activation act)
{
    switch (act) {
      case Activation::Identity:
        return "identity";
      case Activation::ReLU:
        return "relu";
      case Activation::Tanh:
        return "tanh";
    }
    return "?";
}

} // namespace mm
