#include "nn/trainer.hpp"

#include <algorithm>
#include <numeric>

namespace mm {

namespace {

/**
 * Copy the index-selected rows of src into dst, optionally fanning the
 * row copies over @p par. Capacity is reused across batches: after the
 * first call of an epoch only the row count changes (for the final
 * partial batch), so no batch ever reallocates.
 */
void
gatherRows(const Matrix &src, const std::vector<size_t> &idx, size_t begin,
           size_t count, Matrix &dst, ParallelContext *par)
{
    dst.ensureShape(count, src.cols());
    auto copyRange = [&](size_t lo, size_t hi) {
        for (size_t r = lo; r < hi; ++r) {
            auto from = src.row(idx[begin + r]);
            std::copy(from.begin(), from.end(), dst.row(r).begin());
        }
    };
    if (par != nullptr && par->lanes() > 1
        && count >= 2 * kGatherChunkRows) {
        const size_t chunks =
            (count + kGatherChunkRows - 1) / kGatherChunkRows;
        par->parallelFor(chunks, [&](size_t c) {
            copyRange(c * kGatherChunkRows,
                      std::min(count, (c + 1) * kGatherChunkRows));
        });
    } else {
        copyRange(0, count);
    }
}

/**
 * Per-epoch shuffle state. With one window this is exactly the
 * historical `rng.shuffle(idx)` (the window-order shuffle of a
 * single-element vector consumes zero draws, and the in-place row
 * shuffle is cumulative across epochs); with several windows, rows
 * stay within their window and only the visit order mixes globally,
 * so an out-of-core source touches one window's worth of shards at a
 * time.
 */
class WindowedShuffle
{
  public:
    WindowedShuffle(size_t rows, size_t windowRows) : n(rows)
    {
        window = (windowRows == 0 || windowRows >= n) ? n : windowRows;
        idx.resize(n);
        std::iota(idx.begin(), idx.end(), size_t(0));
        visit.resize((n + window - 1) / window);
        std::iota(visit.begin(), visit.end(), size_t(0));
    }

    /** Reshuffle for the next epoch; returns the epoch's index order. */
    const std::vector<size_t> &
    next(Rng &rng)
    {
        rng.shuffle(visit);
        for (size_t w : visit) {
            size_t lo = w * window;
            size_t hi = std::min(n, lo + window);
            rng.shuffle(std::span<size_t>(idx.data() + lo, hi - lo));
        }
        if (visit.size() == 1)
            return idx;
        epochIdx.clear();
        epochIdx.reserve(n);
        for (size_t w : visit) {
            size_t lo = w * window;
            size_t hi = std::min(n, lo + window);
            epochIdx.insert(epochIdx.end(), idx.begin() + long(lo),
                            idx.begin() + long(hi));
        }
        return epochIdx;
    }

  private:
    size_t n;
    size_t window;
    std::vector<size_t> idx;      ///< persistent, shuffled in place
    std::vector<size_t> visit;    ///< persistent window visit order
    std::vector<size_t> epochIdx; ///< materialized order (multi-window)
};

} // namespace

MatrixBatchSource::MatrixBatchSource(const Matrix &x, const Matrix &y)
    : xRef(x), yRef(y)
{
    MM_ASSERT(x.rows() == y.rows(), "X/Y row mismatch");
}

void
MatrixBatchSource::gather(const std::vector<size_t> &idx, size_t begin,
                          size_t n, Matrix &bx, Matrix &by,
                          ParallelContext *par)
{
    gatherRows(xRef, idx, begin, n, bx, par);
    gatherRows(yRef, idx, begin, n, by, par);
}

RegressionTrainer::RegressionTrainer(Mlp &net_, TrainConfig cfg_,
                                     ParallelContext *par_)
    : net(net_), cfg(cfg_), par(par_)
{
    MM_ASSERT(cfg.epochs > 0 && cfg.batchSize > 0, "bad train config");
}

std::vector<EpochReport>
RegressionTrainer::fit(const Matrix &x, const Matrix &y, const Matrix &xTest,
                       const Matrix &yTest, Rng &rng,
                       const std::function<void(const EpochReport &)> &onEpoch)
{
    MatrixBatchSource train(x, y);
    if (xTest.rows() == 0)
        return fit(train, nullptr, rng, onEpoch);
    MatrixBatchSource test(xTest, yTest);
    return fit(train, &test, rng, onEpoch);
}

std::vector<EpochReport>
RegressionTrainer::fit(BatchSource &train, BatchSource *test, Rng &rng,
                       const std::function<void(const EpochReport &)> &onEpoch)
{
    MM_ASSERT(train.rows() > 0, "empty training source");
    MM_ASSERT(train.xCols() == net.inputDim(), "X width != net input");
    MM_ASSERT(train.yCols() == net.outputDim(), "Y width != net output");

    SgdOptimizer opt(cfg.schedule.initial, cfg.momentum);
    opt.attach(net.params(), net.grads());

    WindowedShuffle shuffle(train.rows(), cfg.shuffleWindow);

    // Detach the pool even when an onEpoch callback or a pool worker
    // throws: the context may not outlive the caller's net otherwise.
    struct PoolGuard
    {
        Mlp &net;
        ~PoolGuard() { net.setParallel(nullptr); }
    } poolGuard{net};
    net.setParallel(par);

    // Pre-size the batch workspaces once; the batch loop only ever
    // adjusts the row count (final partial batch), never reallocates.
    Matrix bx, by, grad;
    bx.ensureShape(std::min(cfg.batchSize, train.rows()), train.xCols());
    by.ensureShape(std::min(cfg.batchSize, train.rows()), train.yCols());

    std::vector<EpochReport> reports;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        opt.setLr(cfg.schedule.at(epoch));
        const std::vector<size_t> &idx = shuffle.next(rng);

        double lossAcc = 0.0;
        size_t batches = 0;
        for (size_t begin = 0; begin < idx.size();
             begin += cfg.batchSize) {
            size_t count = std::min(cfg.batchSize, idx.size() - begin);
            train.gather(idx, begin, count, bx, by, par);

            const Matrix &pred = net.forward(bx);
            lossAcc += lossForward(cfg.loss, pred, by, cfg.huberDelta,
                                   grad, par);
            ++batches;

            net.zeroGrad();
            net.backwardInPlace(grad);
            opt.step();
        }

        EpochReport report;
        report.epoch = epoch;
        report.trainLoss = batches > 0 ? lossAcc / double(batches) : 0.0;
        report.testLoss =
            test != nullptr && test->rows() > 0
                ? evaluate(net, *test, cfg.loss, cfg.huberDelta, 256, par)
                : 0.0;
        report.lr = opt.lr();
        reports.push_back(report);
        if (onEpoch)
            onEpoch(report);
    }
    return reports;
}

double
RegressionTrainer::evaluate(Mlp &net, const Matrix &x, const Matrix &y,
                            LossKind loss, double huberDelta,
                            size_t batchSize, ParallelContext *par)
{
    MatrixBatchSource src(x, y);
    return evaluate(net, src, loss, huberDelta, batchSize, par);
}

double
RegressionTrainer::evaluate(Mlp &net, BatchSource &src, LossKind loss,
                            double huberDelta, size_t batchSize,
                            ParallelContext *par)
{
    if (src.rows() == 0)
        return 0.0;
    Matrix bx, by;
    double acc = 0.0;
    size_t total = 0;
    std::vector<size_t> idx(src.rows());
    std::iota(idx.begin(), idx.end(), size_t(0));
    for (size_t begin = 0; begin < idx.size(); begin += batchSize) {
        size_t count = std::min(batchSize, idx.size() - begin);
        src.gather(idx, begin, count, bx, by, par);
        const Matrix &pred = net.forward(bx);
        acc += lossValue(loss, pred, by, huberDelta, par) * double(count);
        total += count;
    }
    return acc / double(total);
}

} // namespace mm
