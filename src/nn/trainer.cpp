#include "nn/trainer.hpp"

#include <algorithm>
#include <numeric>

namespace mm {

namespace {

/**
 * Copy the index-selected rows of src into dst. Capacity is reused
 * across batches: after the first call of an epoch only the row count
 * changes (for the final partial batch), so no batch ever reallocates.
 */
void
gatherRows(const Matrix &src, const std::vector<size_t> &idx, size_t begin,
           size_t count, Matrix &dst)
{
    dst.ensureShape(count, src.cols());
    for (size_t r = 0; r < count; ++r) {
        auto from = src.row(idx[begin + r]);
        std::copy(from.begin(), from.end(), dst.row(r).begin());
    }
}

} // namespace

RegressionTrainer::RegressionTrainer(Mlp &net_, TrainConfig cfg_,
                                     ParallelContext *par_)
    : net(net_), cfg(cfg_), par(par_)
{
    MM_ASSERT(cfg.epochs > 0 && cfg.batchSize > 0, "bad train config");
}

std::vector<EpochReport>
RegressionTrainer::fit(const Matrix &x, const Matrix &y, const Matrix &xTest,
                       const Matrix &yTest, Rng &rng,
                       const std::function<void(const EpochReport &)> &onEpoch)
{
    MM_ASSERT(x.rows() == y.rows(), "X/Y row mismatch");
    MM_ASSERT(x.cols() == net.inputDim(), "X width != net input");
    MM_ASSERT(y.cols() == net.outputDim(), "Y width != net output");

    SgdOptimizer opt(cfg.schedule.initial, cfg.momentum);
    opt.attach(net.params(), net.grads());

    std::vector<size_t> idx(x.rows());
    std::iota(idx.begin(), idx.end(), size_t(0));

    // Detach the pool even when an onEpoch callback or a pool worker
    // throws: the context may not outlive the caller's net otherwise.
    struct PoolGuard
    {
        Mlp &net;
        ~PoolGuard() { net.setParallel(nullptr); }
    } poolGuard{net};
    net.setParallel(par);

    // Pre-size the batch workspaces once; the batch loop only ever
    // adjusts the row count (final partial batch), never reallocates.
    Matrix bx, by, grad;
    bx.ensureShape(std::min(cfg.batchSize, idx.size()), x.cols());
    by.ensureShape(std::min(cfg.batchSize, idx.size()), y.cols());

    std::vector<EpochReport> reports;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        opt.setLr(cfg.schedule.at(epoch));
        rng.shuffle(idx);

        double lossAcc = 0.0;
        size_t batches = 0;
        for (size_t begin = 0; begin < idx.size();
             begin += cfg.batchSize) {
            size_t count = std::min(cfg.batchSize, idx.size() - begin);
            gatherRows(x, idx, begin, count, bx);
            gatherRows(y, idx, begin, count, by);

            const Matrix &pred = net.forward(bx);
            lossAcc += lossForward(cfg.loss, pred, by, cfg.huberDelta, grad);
            ++batches;

            net.zeroGrad();
            net.backwardInPlace(grad);
            opt.step();
        }

        EpochReport report;
        report.epoch = epoch;
        report.trainLoss = batches > 0 ? lossAcc / double(batches) : 0.0;
        report.testLoss =
            xTest.rows() > 0
                ? evaluate(net, xTest, yTest, cfg.loss, cfg.huberDelta)
                : 0.0;
        report.lr = opt.lr();
        reports.push_back(report);
        if (onEpoch)
            onEpoch(report);
    }
    return reports;
}

double
RegressionTrainer::evaluate(Mlp &net, const Matrix &x, const Matrix &y,
                            LossKind loss, double huberDelta,
                            size_t batchSize)
{
    MM_ASSERT(x.rows() == y.rows(), "X/Y row mismatch");
    if (x.rows() == 0)
        return 0.0;
    Matrix bx, by;
    double acc = 0.0;
    size_t total = 0;
    std::vector<size_t> idx(x.rows());
    std::iota(idx.begin(), idx.end(), size_t(0));
    for (size_t begin = 0; begin < x.rows(); begin += batchSize) {
        size_t count = std::min(batchSize, x.rows() - begin);
        gatherRows(x, idx, begin, count, bx);
        gatherRows(y, idx, begin, count, by);
        const Matrix &pred = net.forward(bx);
        acc += lossValue(loss, pred, by, huberDelta) * double(count);
        total += count;
    }
    return acc / double(total);
}

} // namespace mm
