/**
 * @file
 * Regression losses (Section 5.5: MSE, MAE, Huber).
 *
 * The paper trains the surrogate with Huber loss after finding MSE too
 * outlier-sensitive and MAE too flat (Figure 7b); all three are provided
 * so the ablation bench can reproduce that comparison.
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/parallel_context.hpp"
#include "tensor/matrix.hpp"

namespace mm {

/** Supported regression losses. */
enum class LossKind : uint8_t { MSE = 0, MAE = 1, Huber = 2 };

/**
 * Mean loss over all elements; fills @p grad with dLoss/dPred (same
 * normalization).
 *
 * A non-null @p par spreads the elementwise pass over its lanes in
 * fixed-size chunks; the scalar reduction always happens serially in
 * element order, so the returned loss and the gradient are bitwise
 * identical to the serial path at any lane count.
 *
 * @param huberDelta Transition point between quadratic and linear regime
 *                   (only used for Huber).
 */
double lossForward(LossKind kind, const Matrix &pred, const Matrix &target,
                   double huberDelta, Matrix &grad,
                   ParallelContext *par = nullptr);

/** Loss value only (no gradient). */
double lossValue(LossKind kind, const Matrix &pred, const Matrix &target,
                 double huberDelta, ParallelContext *par = nullptr);

/** Parse "mse" / "mae" / "huber". */
LossKind lossFromName(const std::string &name);

/** Inverse of lossFromName. */
const char *lossName(LossKind kind);

} // namespace mm
