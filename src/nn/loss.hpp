/**
 * @file
 * Regression losses (Section 5.5: MSE, MAE, Huber).
 *
 * The paper trains the surrogate with Huber loss after finding MSE too
 * outlier-sensitive and MAE too flat (Figure 7b); all three are provided
 * so the ablation bench can reproduce that comparison.
 */
#pragma once

#include <cstdint>
#include <string>

#include "tensor/matrix.hpp"

namespace mm {

/** Supported regression losses. */
enum class LossKind : uint8_t { MSE = 0, MAE = 1, Huber = 2 };

/**
 * Mean loss over all elements; fills @p grad with dLoss/dPred (same
 * normalization).
 *
 * @param huberDelta Transition point between quadratic and linear regime
 *                   (only used for Huber).
 */
double lossForward(LossKind kind, const Matrix &pred, const Matrix &target,
                   double huberDelta, Matrix &grad);

/** Loss value only (no gradient). */
double lossValue(LossKind kind, const Matrix &pred, const Matrix &target,
                 double huberDelta);

/** Parse "mse" / "mae" / "huber". */
LossKind lossFromName(const std::string &name);

/** Inverse of lossFromName. */
const char *lossName(LossKind kind);

} // namespace mm
