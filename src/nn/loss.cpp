#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace mm {

namespace {

/** One element's loss value and gradient. */
inline double
lossElem(LossKind kind, float e, float delta, float &g)
{
    switch (kind) {
      case LossKind::MSE:
        g = e;
        return 0.5 * double(e) * double(e);
      case LossKind::MAE:
        g = e > 0.0f ? 1.0f : (e < 0.0f ? -1.0f : 0.0f);
        return std::fabs(double(e));
      case LossKind::Huber:
        if (std::fabs(e) <= delta) {
            g = e;
            return 0.5 * double(e) * double(e);
        }
        g = e > 0.0f ? delta : -delta;
        return double(delta) * (std::fabs(double(e)) - 0.5 * double(delta));
    }
    g = 0.0f;
    return 0.0;
}

/**
 * Elements per parallel chunk. Fixed (never derived from the lane
 * count) so chunk boundaries — and thus every write — are identical at
 * any lane count.
 */
constexpr size_t kLossChunk = 1024;

/** Shared elementwise walk; grad may be null for value-only queries. */
double
lossImpl(LossKind kind, const Matrix &pred, const Matrix &target,
         double huberDelta, Matrix *grad, ParallelContext *par)
{
    MM_ASSERT(pred.rows() == target.rows() && pred.cols() == target.cols(),
              "loss shape mismatch");
    MM_ASSERT(pred.size() > 0, "loss over empty matrix");
    const size_t n = pred.size();
    const double inv = 1.0 / double(n);
    const float delta = float(huberDelta);
    if (grad != nullptr)
        grad->resize(pred.rows(), pred.cols());

    if (par != nullptr && par->lanes() > 1 && n >= 2 * kLossChunk) {
        // Elementwise pass over the lanes; the scalar reduction stays
        // serial in element order, so the total is bit-for-bit the
        // serial walk's total (and the grads are written elementwise —
        // the parallel schedule cannot reorder any arithmetic).
        thread_local std::vector<double> values;
        values.resize(n);
        // Pin the calling thread's buffer: workers executing the lambda
        // must not resolve `values` to their own (empty) thread-local.
        double *const vals = values.data();
        const size_t chunks = (n + kLossChunk - 1) / kLossChunk;
        par->parallelFor(chunks, [&, vals](size_t c) {
            const size_t lo = c * kLossChunk;
            const size_t hi = std::min(n, lo + kLossChunk);
            for (size_t i = lo; i < hi; ++i) {
                float e = pred.data()[i] - target.data()[i];
                float g = 0.0f;
                vals[i] = lossElem(kind, e, delta, g);
                if (grad != nullptr)
                    grad->data()[i] = float(double(g) * inv);
            }
        });
        double total = 0.0;
        for (size_t i = 0; i < n; ++i)
            total += vals[i];
        return total * inv;
    }

    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
        float e = pred.data()[i] - target.data()[i];
        float g = 0.0f;
        total += lossElem(kind, e, delta, g);
        if (grad != nullptr)
            grad->data()[i] = float(double(g) * inv);
    }
    return total * inv;
}

} // namespace

double
lossForward(LossKind kind, const Matrix &pred, const Matrix &target,
            double huberDelta, Matrix &grad, ParallelContext *par)
{
    return lossImpl(kind, pred, target, huberDelta, &grad, par);
}

double
lossValue(LossKind kind, const Matrix &pred, const Matrix &target,
          double huberDelta, ParallelContext *par)
{
    return lossImpl(kind, pred, target, huberDelta, nullptr, par);
}

LossKind
lossFromName(const std::string &name)
{
    if (name == "mse")
        return LossKind::MSE;
    if (name == "mae")
        return LossKind::MAE;
    if (name == "huber")
        return LossKind::Huber;
    fatal("unknown loss: " + name);
}

const char *
lossName(LossKind kind)
{
    switch (kind) {
      case LossKind::MSE:
        return "mse";
      case LossKind::MAE:
        return "mae";
      case LossKind::Huber:
        return "huber";
    }
    return "?";
}

} // namespace mm
