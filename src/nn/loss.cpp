#include "nn/loss.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mm {

namespace {

/** Shared elementwise walk; grad may be null for value-only queries. */
double
lossImpl(LossKind kind, const Matrix &pred, const Matrix &target,
         double huberDelta, Matrix *grad)
{
    MM_ASSERT(pred.rows() == target.rows() && pred.cols() == target.cols(),
              "loss shape mismatch");
    MM_ASSERT(pred.size() > 0, "loss over empty matrix");
    const double inv = 1.0 / double(pred.size());
    const float delta = float(huberDelta);
    double total = 0.0;
    if (grad != nullptr)
        grad->resize(pred.rows(), pred.cols());

    for (size_t i = 0; i < pred.size(); ++i) {
        float e = pred.data()[i] - target.data()[i];
        double value = 0.0;
        float g = 0.0f;
        switch (kind) {
          case LossKind::MSE:
            value = 0.5 * double(e) * double(e);
            g = e;
            break;
          case LossKind::MAE:
            value = std::fabs(double(e));
            g = e > 0.0f ? 1.0f : (e < 0.0f ? -1.0f : 0.0f);
            break;
          case LossKind::Huber:
            if (std::fabs(e) <= delta) {
                value = 0.5 * double(e) * double(e);
                g = e;
            } else {
                value = double(delta) * (std::fabs(double(e))
                                         - 0.5 * double(delta));
                g = e > 0.0f ? delta : -delta;
            }
            break;
        }
        total += value;
        if (grad != nullptr)
            grad->data()[i] = float(double(g) * inv);
    }
    return total * inv;
}

} // namespace

double
lossForward(LossKind kind, const Matrix &pred, const Matrix &target,
            double huberDelta, Matrix &grad)
{
    return lossImpl(kind, pred, target, huberDelta, &grad);
}

double
lossValue(LossKind kind, const Matrix &pred, const Matrix &target,
          double huberDelta)
{
    return lossImpl(kind, pred, target, huberDelta, nullptr);
}

LossKind
lossFromName(const std::string &name)
{
    if (name == "mse")
        return LossKind::MSE;
    if (name == "mae")
        return LossKind::MAE;
    if (name == "huber")
        return LossKind::Huber;
    fatal("unknown loss: " + name);
}

const char *
lossName(LossKind kind)
{
    switch (kind) {
      case LossKind::MSE:
        return "mse";
      case LossKind::MAE:
        return "mae";
      case LossKind::Huber:
        return "huber";
    }
    return "?";
}

} // namespace mm
