#include "nn/optimizer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mm {

SgdOptimizer::SgdOptimizer(double lr, double momentum_)
    : lrValue(lr), momentum(momentum_)
{}

void
SgdOptimizer::attach(std::vector<Matrix *> params_,
                     std::vector<Matrix *> grads_)
{
    MM_ASSERT(params_.size() == grads_.size(), "param/grad count mismatch");
    params = std::move(params_);
    grads = std::move(grads_);
    velocity.clear();
    for (const Matrix *p : params)
        velocity.emplace_back(p->rows(), p->cols());
}

void
SgdOptimizer::step()
{
    MM_ASSERT(!params.empty(), "optimizer not attached");
    for (size_t i = 0; i < params.size(); ++i) {
        Matrix &p = *params[i];
        const Matrix &g = *grads[i];
        Matrix &v = velocity[i];
        const float lr = float(lrValue);
        const float mu = float(momentum);
        for (size_t j = 0; j < p.size(); ++j) {
            v.data()[j] = mu * v.data()[j] - lr * g.data()[j];
            p.data()[j] += v.data()[j];
        }
    }
}

AdamOptimizer::AdamOptimizer(double lr, double beta1_, double beta2_,
                             double eps_)
    : lrValue(lr), beta1(beta1_), beta2(beta2_), eps(eps_)
{}

void
AdamOptimizer::attach(std::vector<Matrix *> params_,
                      std::vector<Matrix *> grads_)
{
    MM_ASSERT(params_.size() == grads_.size(), "param/grad count mismatch");
    params = std::move(params_);
    grads = std::move(grads_);
    m1.clear();
    m2.clear();
    t = 0;
    for (const Matrix *p : params) {
        m1.emplace_back(p->rows(), p->cols());
        m2.emplace_back(p->rows(), p->cols());
    }
}

void
AdamOptimizer::step()
{
    MM_ASSERT(!params.empty(), "optimizer not attached");
    ++t;
    const double bc1 = 1.0 - std::pow(beta1, double(t));
    const double bc2 = 1.0 - std::pow(beta2, double(t));
    const float alpha = float(lrValue * std::sqrt(bc2) / bc1);
    for (size_t i = 0; i < params.size(); ++i) {
        Matrix &p = *params[i];
        const Matrix &g = *grads[i];
        Matrix &mo = m1[i];
        Matrix &ve = m2[i];
        const float b1 = float(beta1), b2 = float(beta2);
        for (size_t j = 0; j < p.size(); ++j) {
            float gj = g.data()[j];
            mo.data()[j] = b1 * mo.data()[j] + (1.0f - b1) * gj;
            ve.data()[j] = b2 * ve.data()[j] + (1.0f - b2) * gj * gj;
            p.data()[j] -= alpha * mo.data()[j]
                           / (std::sqrt(ve.data()[j]) + float(eps));
        }
    }
}

} // namespace mm
