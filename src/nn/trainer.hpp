/**
 * @file
 * Minibatch regression trainer.
 *
 * Implements the paper's Phase-1 training recipe (Section 5.5): SGD with
 * momentum 0.9, batch size 128, step-decayed learning rate, selectable
 * loss. Generic over datasets so the Figure-7 ablation benches can reuse
 * it directly.
 */
#pragma once

#include <functional>
#include <vector>

#include "common/parallel_context.hpp"
#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

namespace mm {

/** Hyper-parameters for RegressionTrainer. */
struct TrainConfig
{
    int epochs = 30;
    size_t batchSize = 128;
    LossKind loss = LossKind::Huber;
    double huberDelta = 1.0;
    StepDecaySchedule schedule{1e-2, 0.1, 25};
    double momentum = 0.9;
    /**
     * Shuffle window in rows; 0 shuffles the whole training set per
     * epoch (the historical behavior, bitwise unchanged). A positive
     * value shuffles rows only within consecutive windows of this many
     * rows and randomizes the window visit order — the standard
     * shuffle-buffer compromise that keeps out-of-core training
     * I/O-sequential (a window spans a bounded number of dataset
     * shards). Affects batch composition, so it is part of the Phase-1
     * cache fingerprint.
     */
    size_t shuffleWindow = 0;
};

/**
 * Rows per parallel gather chunk, shared by every BatchSource. Fixed
 * (never derived from the lane count) so the work split — all disjoint
 * row copies — is identical at any lane count; the in-RAM and shard-
 * store sources using the same constant is part of what keeps the two
 * paths bitwise interchangeable.
 */
inline constexpr size_t kGatherChunkRows = 16;

/**
 * Row provider for the trainer: hands out (X, Y) mini-batches selected
 * by index. Implementations range from in-RAM matrices to out-of-core
 * shard stores (core/shard_store.hpp); the trainer is agnostic, which
 * is what lets the streamed Phase-1 path reuse the exact training loop
 * (and thus stay bitwise identical to the in-RAM path).
 */
class BatchSource
{
  public:
    virtual ~BatchSource() = default;

    virtual size_t rows() const = 0;
    virtual size_t xCols() const = 0;
    virtual size_t yCols() const = 0;

    /**
     * Copy source rows idx[begin + r], r in [0, n), into row r of
     * @p bx / @p by (shaping them to n rows). A non-null @p par may
     * spread the row copies over its lanes in chunks of
     * kGatherChunkRows (rows are disjoint, so the result is bitwise
     * lane-invariant at any lane count).
     */
    virtual void gather(const std::vector<size_t> &idx, size_t begin,
                        size_t n, Matrix &bx, Matrix &by,
                        ParallelContext *par = nullptr) = 0;
};

/** BatchSource over a pair of in-memory matrices. */
class MatrixBatchSource final : public BatchSource
{
  public:
    /** @p x / @p y must outlive the source. */
    MatrixBatchSource(const Matrix &x, const Matrix &y);

    size_t rows() const override { return xRef.rows(); }
    size_t xCols() const override { return xRef.cols(); }
    size_t yCols() const override { return yRef.cols(); }
    void gather(const std::vector<size_t> &idx, size_t begin, size_t n,
                Matrix &bx, Matrix &by,
                ParallelContext *par = nullptr) override;

  private:
    const Matrix &xRef;
    const Matrix &yRef;
};

/** Per-epoch training record (Figure 7a series). */
struct EpochReport
{
    int epoch;
    double trainLoss;
    double testLoss;
    double lr;
};

/** Trains an Mlp on an in-memory (X, Y) regression dataset. */
class RegressionTrainer
{
  public:
    /**
     * @param par Optional shared execution context for the network's
     *            GEMMs; results are bitwise identical at any lane
     *            count. Must outlive the trainer's fit() calls.
     */
    RegressionTrainer(Mlp &net, TrainConfig cfg,
                      ParallelContext *par = nullptr);

    /**
     * Run the full training loop.
     *
     * @param x,y          Training set (rows = samples).
     * @param xTest,yTest  Held-out set; pass empty matrices to skip.
     * @param rng          Shuffling randomness.
     * @param onEpoch      Optional per-epoch observer.
     */
    std::vector<EpochReport>
    fit(const Matrix &x, const Matrix &y, const Matrix &xTest,
        const Matrix &yTest, Rng &rng,
        const std::function<void(const EpochReport &)> &onEpoch = {});

    /**
     * Source-based training loop — the implementation the Matrix
     * overload delegates to. @p test may be null to skip evaluation.
     * With cfg.shuffleWindow == 0 (or >= rows) the RNG draw sequence
     * and batch composition are bitwise identical to the historical
     * in-RAM loop.
     */
    std::vector<EpochReport>
    fit(BatchSource &train, BatchSource *test, Rng &rng,
        const std::function<void(const EpochReport &)> &onEpoch = {});

    /** Mean loss of @p net over a dataset, evaluated in batches. */
    static double evaluate(Mlp &net, const Matrix &x, const Matrix &y,
                           LossKind loss, double huberDelta,
                           size_t batchSize = 256,
                           ParallelContext *par = nullptr);

    /** Mean loss of @p net over a source, evaluated in batches. */
    static double evaluate(Mlp &net, BatchSource &src, LossKind loss,
                           double huberDelta, size_t batchSize = 256,
                           ParallelContext *par = nullptr);

  private:
    Mlp &net;
    TrainConfig cfg;
    ParallelContext *par; ///< not owned; nullptr = serial
};

} // namespace mm
