/**
 * @file
 * Minibatch regression trainer.
 *
 * Implements the paper's Phase-1 training recipe (Section 5.5): SGD with
 * momentum 0.9, batch size 128, step-decayed learning rate, selectable
 * loss. Generic over datasets so the Figure-7 ablation benches can reuse
 * it directly.
 */
#pragma once

#include <functional>
#include <vector>

#include "common/parallel_context.hpp"
#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

namespace mm {

/** Hyper-parameters for RegressionTrainer. */
struct TrainConfig
{
    int epochs = 30;
    size_t batchSize = 128;
    LossKind loss = LossKind::Huber;
    double huberDelta = 1.0;
    StepDecaySchedule schedule{1e-2, 0.1, 25};
    double momentum = 0.9;
};

/** Per-epoch training record (Figure 7a series). */
struct EpochReport
{
    int epoch;
    double trainLoss;
    double testLoss;
    double lr;
};

/** Trains an Mlp on an in-memory (X, Y) regression dataset. */
class RegressionTrainer
{
  public:
    /**
     * @param par Optional shared execution context for the network's
     *            GEMMs; results are bitwise identical at any lane
     *            count. Must outlive the trainer's fit() calls.
     */
    RegressionTrainer(Mlp &net, TrainConfig cfg,
                      ParallelContext *par = nullptr);

    /**
     * Run the full training loop.
     *
     * @param x,y          Training set (rows = samples).
     * @param xTest,yTest  Held-out set; pass empty matrices to skip.
     * @param rng          Shuffling randomness.
     * @param onEpoch      Optional per-epoch observer.
     */
    std::vector<EpochReport>
    fit(const Matrix &x, const Matrix &y, const Matrix &xTest,
        const Matrix &yTest, Rng &rng,
        const std::function<void(const EpochReport &)> &onEpoch = {});

    /** Mean loss of @p net over a dataset, evaluated in batches. */
    static double evaluate(Mlp &net, const Matrix &x, const Matrix &y,
                           LossKind loss, double huberDelta,
                           size_t batchSize = 256);

  private:
    Mlp &net;
    TrainConfig cfg;
    ParallelContext *par; ///< not owned; nullptr = serial
};

} // namespace mm
