#include "nn/dense.hpp"

#include <cmath>

#include "tensor/gemm.hpp"

namespace mm {

DenseLayer::DenseLayer(size_t inDim, size_t outDim, Activation act_,
                       Rng &rng)
    : weights(outDim, inDim), bias(1, outDim), dWeights(outDim, inDim),
      dBias(1, outDim), act(act_)
{
    MM_ASSERT(inDim > 0 && outDim > 0, "degenerate dense layer");
    // He for ReLU, Xavier otherwise.
    double stddev = act == Activation::ReLU
                        ? std::sqrt(2.0 / double(inDim))
                        : std::sqrt(1.0 / double(inDim));
    for (size_t i = 0; i < weights.size(); ++i)
        weights.data()[i] = float(rng.gaussian(0.0, stddev));
}

const Matrix &
DenseLayer::forward(const Matrix &x)
{
    MM_ASSERT(x.cols() == inDim(), "dense input width mismatch");
    cachedIn = x;
    cachedOut.ensureShape(x.rows(), outDim());
    gemm(false, true, 1.0f, x, weights, 0.0f, cachedOut, gemmPool);
    applyBiasActivation(act, bias, cachedOut);
    return cachedOut;
}

Matrix
DenseLayer::backward(const Matrix &dOut)
{
    Matrix dIn;
    backwardInto(dOut, dIn);
    return dIn;
}

void
DenseLayer::backwardInto(const Matrix &dOut, Matrix &dIn)
{
    MM_ASSERT(dOut.rows() == cachedOut.rows()
                  && dOut.cols() == cachedOut.cols(),
              "dense backward shape mismatch");
    // dZ = dOut * act'(out) and dB += column-sum(dZ), one fused pass.
    applyActivationGradBias(act, cachedOut, dOut, scratch, dBias);

    // dW += dZ^T * x
    gemm(true, false, 1.0f, scratch, cachedIn, 1.0f, dWeights, gemmPool);

    // dX = dZ * W
    dIn.ensureShape(scratch.rows(), inDim());
    gemm(false, false, 1.0f, scratch, weights, 0.0f, dIn, gemmPool);
}

void
DenseLayer::zeroGrad()
{
    dWeights.zero();
    dBias.zero();
}

} // namespace mm
