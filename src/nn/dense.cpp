#include "nn/dense.hpp"

#include <cmath>

#include "tensor/gemm.hpp"

namespace mm {

DenseLayer::DenseLayer(size_t inDim, size_t outDim, Activation act_,
                       Rng &rng)
    : weights(outDim, inDim), bias(1, outDim), dWeights(outDim, inDim),
      dBias(1, outDim), act(act_)
{
    MM_ASSERT(inDim > 0 && outDim > 0, "degenerate dense layer");
    // He for ReLU, Xavier otherwise.
    double stddev = act == Activation::ReLU
                        ? std::sqrt(2.0 / double(inDim))
                        : std::sqrt(1.0 / double(inDim));
    for (size_t i = 0; i < weights.size(); ++i)
        weights.data()[i] = float(rng.gaussian(0.0, stddev));
}

const Matrix &
DenseLayer::forward(const Matrix &x)
{
    MM_ASSERT(x.cols() == inDim(), "dense input width mismatch");
    cachedIn = x;
    cachedOut.ensureShape(x.rows(), outDim());
    gemm(false, true, 1.0f, x, weights, 0.0f, cachedOut);
    for (size_t r = 0; r < cachedOut.rows(); ++r) {
        float *row = cachedOut.data() + r * outDim();
        for (size_t c = 0; c < outDim(); ++c)
            row[c] += bias(0, c);
    }
    applyActivation(act, cachedOut);
    return cachedOut;
}

Matrix
DenseLayer::backward(const Matrix &dOut)
{
    Matrix dIn;
    backwardInto(dOut, dIn);
    return dIn;
}

void
DenseLayer::backwardInto(const Matrix &dOut, Matrix &dIn)
{
    MM_ASSERT(dOut.rows() == cachedOut.rows()
                  && dOut.cols() == cachedOut.cols(),
              "dense backward shape mismatch");
    // dZ = dOut * act'(out)
    scratch = dOut;
    applyActivationGrad(act, cachedOut, scratch);

    // dW += dZ^T * x ; dB += column-sum(dZ)
    gemm(true, false, 1.0f, scratch, cachedIn, 1.0f, dWeights);
    for (size_t r = 0; r < scratch.rows(); ++r) {
        const float *row = scratch.data() + r * outDim();
        for (size_t c = 0; c < outDim(); ++c)
            dBias(0, c) += row[c];
    }

    // dX = dZ * W
    dIn.ensureShape(scratch.rows(), inDim());
    gemm(false, false, 1.0f, scratch, weights, 0.0f, dIn);
}

void
DenseLayer::zeroGrad()
{
    dWeights.zero();
    dBias.zero();
}

} // namespace mm
