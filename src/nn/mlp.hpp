/**
 * @file
 * Multi-layer perceptron.
 *
 * The differentiable function approximator used both as the paper's
 * surrogate cost model (Section 4.1) and as the actor/critic networks of
 * the DDPG baseline (Appendix A). Besides the usual weight gradients,
 * backward() returns the gradient with respect to the *input* — the
 * quantity Phase 2 descends on.
 */
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/dense.hpp"

namespace mm {

class ParallelContext;

/** Width and nonlinearity of one MLP layer. */
struct LayerSpec
{
    size_t width;
    Activation act;
};

/** A stack of DenseLayers with value semantics (copyable for target nets). */
class Mlp
{
  public:
    /** Build from input width and per-layer specs; weights drawn from rng. */
    Mlp(size_t inputDim, const std::vector<LayerSpec> &specs, Rng &rng);

    /** Forward pass over a batch (rows = samples). */
    const Matrix &forward(const Matrix &x);

    /**
     * Backward pass from dL/d(output); accumulates weight gradients and
     * returns dL/d(input). Must follow a forward() on the same batch.
     */
    Matrix backward(const Matrix &dOut);

    /**
     * Allocation-free backward: returns dL/d(input) as a reference to an
     * internal workspace, valid until the next backward call. The hot
     * path for Phase-2 batched gradient queries.
     */
    const Matrix &backwardInPlace(const Matrix &dOut);

    /** Clear all accumulated gradients. */
    void zeroGrad();

    /**
     * Run every layer's GEMMs on @p ctx's pool (nullptr = serial).
     * Deterministic: results are bitwise identical at any lane count.
     * Copies of the network share the pool pointer, so the context must
     * outlive them all (or be reset with nullptr first).
     */
    void setParallel(ParallelContext *ctx);

    /** Mutable views of every parameter / gradient matrix, in order. */
    std::vector<Matrix *> params();
    std::vector<Matrix *> grads();

    size_t inputDim() const { return inDim; }
    size_t outputDim() const { return layers.back().outDim(); }
    size_t layerCount() const { return layers.size(); }
    const DenseLayer &layer(size_t i) const { return layers.at(i); }

    /** Total number of scalar parameters. */
    size_t paramCount() const;

    /** Polyak averaging: this = tau * src + (1 - tau) * this. */
    void softUpdateFrom(const Mlp &src, float tau);

    /** Hard copy of parameters from a same-topology network. */
    void copyParamsFrom(const Mlp &src);

    /** Serialize topology + weights. */
    void save(std::ostream &os) const;

    /** Deserialize a network written by save(). */
    static Mlp load(std::istream &is);

  private:
    size_t inDim;
    std::vector<DenseLayer> layers;
    Matrix gradPing; ///< backward ping-pong workspace
    Matrix gradPong;
};

} // namespace mm
