/**
 * @file
 * Problems: parameterized algorithm instances (Section 2.1) and the
 * paper's Table 1 target set.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/algorithm.hpp"

namespace mm {

/** A concrete problem: an algorithm plus loop-dimension bounds. */
struct Problem
{
    const AlgorithmSpec *algo = nullptr;
    std::string name;
    std::vector<int64_t> bounds;

    size_t rank() const { return algo->rank(); }

    /** Iteration-space size == MAC count (one MAC per nest point). */
    double totalMacs() const;

    /** Full-tensor size in words (halo-aware). */
    int64_t tensorWords(size_t t) const;

    /** Problem-id feature vector: the raw bounds (Section 5.5). */
    std::vector<double> pidFeatures() const;
};

/** Build a problem after validating bounds. */
Problem makeProblem(const AlgorithmSpec &algo, std::string name,
                    std::vector<int64_t> bounds);

/** Build a CNN-layer problem from (N, K, C, H, W, R, S) as in Table 1. */
Problem cnnProblem(const std::string &name, int64_t n, int64_t k, int64_t c,
                   int64_t h, int64_t w, int64_t r, int64_t s);

/** Build an MTTKRP problem from (I, J, K, L). */
Problem mttkrpProblem(const std::string &name, int64_t i, int64_t j,
                      int64_t k, int64_t l);

/** The six CNN target problems of Table 1. */
std::vector<Problem> table1Cnn();

/** The two MTTKRP target problems of Table 1. */
std::vector<Problem> table1Mttkrp();

/** All eight Table 1 target problems, CNN first. */
std::vector<Problem> table1All();

/**
 * Draw a representative problem for Phase-1 training by sampling each
 * bound from the algorithm's representative grid (Section 5.5).
 */
Problem sampleRepresentativeProblem(const AlgorithmSpec &algo, Rng &rng);

} // namespace mm
