#include "workload/algorithm.hpp"

#include "common/error.hpp"

namespace mm {

bool
TensorSpec::usesDim(int d) const
{
    for (const auto &tdim : dims)
        for (const auto &term : tdim)
            if (term.dim == d && term.coeff != 0)
                return true;
    return false;
}

size_t
AlgorithmSpec::outputTensor() const
{
    for (size_t t = 0; t < tensors.size(); ++t)
        if (tensors[t].isOutput)
            return t;
    MM_ASSERT(false, "algorithm has no output tensor");
    return 0;
}

int64_t
AlgorithmSpec::tileFootprint(size_t t, std::span<const int64_t> extents) const
{
    MM_ASSERT(t < tensors.size(), "tensor index out of range");
    MM_ASSERT(extents.size() == rank(), "extent arity mismatch");
    int64_t words = 1;
    for (const auto &tdim : tensors[t].dims) {
        int64_t extent = 1;
        for (const auto &term : tdim) {
            MM_ASSERT(extents[size_t(term.dim)] >= 1, "non-positive extent");
            extent += term.coeff * (extents[size_t(term.dim)] - 1);
        }
        words *= extent;
    }
    return words;
}

const AlgorithmSpec &
conv1dAlgo()
{
    static const AlgorithmSpec spec = [] {
        AlgorithmSpec a;
        a.name = "conv1d";
        a.dimNames = {"X", "R"};
        enum { X, R };
        a.tensors = {
            {"Inputs", {{{X, 1}, {R, 1}}}, false},
            {"Filters", {{{R, 1}}}, false},
            {"Outputs", {{{X, 1}}}, true},
        };
        a.representativeValues = {
            {16, 24, 32, 48, 64, 96, 128, 192, 256}, // X
            {2, 3, 4, 5, 7, 9, 11},                  // R
        };
        return a;
    }();
    return spec;
}

const AlgorithmSpec &
cnnLayerAlgo()
{
    static const AlgorithmSpec spec = [] {
        AlgorithmSpec a;
        a.name = "cnn-layer";
        a.dimNames = {"N", "K", "C", "X", "Y", "R", "S"};
        enum { N, K, C, X, Y, R, S };
        a.tensors = {
            {"Inputs",
             {{{N, 1}}, {{C, 1}}, {{X, 1}, {R, 1}}, {{Y, 1}, {S, 1}}},
             false},
            {"Weights", {{{K, 1}}, {{C, 1}}, {{R, 1}}, {{S, 1}}}, false},
            {"Outputs", {{{N, 1}}, {{K, 1}}, {{X, 1}}, {{Y, 1}}}, true},
        };
        // Typical ranges from the networks the paper samples (Sec. 5.5);
        // deliberately offset from the Table 1 target shapes so Phase 2
        // exercises interpolation to unseen problems.
        a.representativeValues = {
            {4, 8, 12, 16, 24, 32},             // N
            {32, 48, 64, 96, 160, 224, 320, 512}, // K
            {16, 24, 48, 80, 160, 224, 320, 512}, // C
            {10, 15, 21, 30, 42, 60, 80, 100},    // X
            {10, 15, 21, 30, 42, 60, 80, 100},    // Y
            {1, 2, 3, 4, 5, 7},                   // R
            {1, 2, 3, 4, 5, 7},                   // S
        };
        return a;
    }();
    return spec;
}

const AlgorithmSpec &
mttkrpAlgo()
{
    static const AlgorithmSpec spec = [] {
        AlgorithmSpec a;
        a.name = "mttkrp";
        a.dimNames = {"I", "J", "K", "L"};
        enum { I, J, K, L };
        a.tensors = {
            {"A", {{{I, 1}}, {{K, 1}}, {{L, 1}}}, false},
            {"B", {{{K, 1}}, {{J, 1}}}, false},
            {"C", {{{L, 1}}, {{J, 1}}}, false},
            {"Outputs", {{{I, 1}}, {{J, 1}}}, true},
        };
        a.representativeValues = {
            {96, 192, 384, 768, 1536, 3072},  // I
            {96, 192, 384, 768, 1536, 3072},  // J
            {96, 192, 384, 768, 1536, 3072},  // K
            {96, 192, 384, 768, 1536, 3072},  // L
        };
        return a;
    }();
    return spec;
}

} // namespace mm
