/**
 * @file
 * Target-algorithm specifications (Section 2.1, 3, 5.1.1).
 *
 * An algorithm is a family of problems expressed as a perfectly-nested
 * affine loop nest ("einsum with halos"): a set of named loop dimensions
 * plus, per tensor, a projection from loop dimensions onto tensor
 * dimensions. A projection term with more than one loop dimension models
 * sliding windows (e.g. the CNN input dimension x + r), whose tile extent
 * is sum(coeff * (tile_d - 1)) + 1.
 *
 * Three algorithms are provided, matching the paper: 1D-Conv (the running
 * example of Section 3), CNN-Layer (Equation 3) and MTTKRP (Equation 4).
 */
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mm {

/** One additive term of an affine tensor-dimension projection. */
struct ProjTerm
{
    int dim;       ///< loop-dimension index
    int64_t coeff; ///< stride coefficient (1 for all paper workloads)
};

/** A tensor dimension: sum of projection terms. */
using TensorDim = std::vector<ProjTerm>;

/** A tensor operand/result of the algorithm. */
struct TensorSpec
{
    std::string name;
    std::vector<TensorDim> dims;
    bool isOutput = false;

    /** True iff loop dimension @p d appears in any projection term. */
    bool usesDim(int d) const;
};

/** An algorithm: loop dimensions + tensors + representative problem grid. */
struct AlgorithmSpec
{
    std::string name;
    std::vector<std::string> dimNames;
    std::vector<TensorSpec> tensors;

    /**
     * Representative values per dimension used to sample the Phase-1
     * training problems (Section 5.5 "Dataset": e.g. K drawn from the
     * typical range [32, 512]).
     */
    std::vector<std::vector<int64_t>> representativeValues;

    size_t rank() const { return dimNames.size(); }
    size_t tensorCount() const { return tensors.size(); }

    /** Index of the (single) output tensor. */
    size_t outputTensor() const;

    /**
     * Words touched by a tile with per-loop-dimension extents
     * @p extents for tensor @p t (halo-aware).
     */
    int64_t tileFootprint(size_t t, std::span<const int64_t> extents) const;
};

/** 1D convolution, dims {X, R} (Section 3). */
const AlgorithmSpec &conv1dAlgo();

/** CNN layer, dims {N, K, C, X, Y, R, S} (Equation 3). */
const AlgorithmSpec &cnnLayerAlgo();

/** MTTKRP, dims {I, J, K, L} (Equation 4). */
const AlgorithmSpec &mttkrpAlgo();

} // namespace mm
