/**
 * @file
 * Golden reference kernels (the p(i) of Definition 2.2).
 *
 * Naive loop-nest executors for each algorithm, used by the test suite to
 * validate that mapped (tiled/reordered/padded) execution of any valid
 * mapping computes the same function.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "workload/problem.hpp"

namespace mm {

/** Dense tensor stored flat, with the dimension extents alongside. */
struct DenseTensor
{
    std::vector<int64_t> dims;
    std::vector<float> data;

    /** Allocate a zeroed tensor of the given extents. */
    static DenseTensor zeros(std::vector<int64_t> dims);

    /** Flat offset of a coordinate tuple (row-major). */
    int64_t offset(std::span<const int64_t> coord) const;

    int64_t words() const { return int64_t(data.size()); }
};

/**
 * Allocate all tensors of @p problem with halo-aware extents, filled with
 * a deterministic pseudo-random pattern (outputs zeroed).
 */
std::vector<DenseTensor> makeTensors(const Problem &problem, Rng &rng);

/**
 * Execute @p problem naively: for every in-bounds loop-nest point,
 * multiply all input-tensor operands and accumulate into the output.
 * This is exactly Equations 2-4 for the respective algorithms.
 */
void runReference(const Problem &problem, std::vector<DenseTensor> &tensors);

/**
 * Map a loop-nest point to the coordinate tuple of tensor @p t
 * (applies the affine projections).
 */
std::vector<int64_t> tensorPoint(const AlgorithmSpec &algo, size_t t,
                                 std::span<const int64_t> point);

} // namespace mm
