#include "workload/problem.hpp"

#include "common/string_util.hpp"

namespace mm {

double
Problem::totalMacs() const
{
    double macs = 1.0;
    for (int64_t b : bounds)
        macs *= double(b);
    return macs;
}

int64_t
Problem::tensorWords(size_t t) const
{
    return algo->tileFootprint(t, bounds);
}

std::vector<double>
Problem::pidFeatures() const
{
    std::vector<double> pid;
    pid.reserve(bounds.size());
    for (int64_t b : bounds)
        pid.push_back(double(b));
    return pid;
}

Problem
makeProblem(const AlgorithmSpec &algo, std::string name,
            std::vector<int64_t> bounds)
{
    if (bounds.size() != algo.rank())
        fatal(strCat("problem '", name, "': expected ", algo.rank(),
                     " bounds, got ", bounds.size()));
    for (size_t d = 0; d < bounds.size(); ++d)
        if (bounds[d] < 1)
            fatal(strCat("problem '", name, "': dimension ",
                         algo.dimNames[d], " must be positive"));
    Problem p;
    p.algo = &algo;
    p.name = std::move(name);
    p.bounds = std::move(bounds);
    return p;
}

Problem
cnnProblem(const std::string &name, int64_t n, int64_t k, int64_t c,
           int64_t h, int64_t w, int64_t r, int64_t s)
{
    // Output spatial extents for stride 1, as in Section 5.1.1.
    int64_t x = w - r + 1;
    int64_t y = h - s + 1;
    return makeProblem(cnnLayerAlgo(), name, {n, k, c, x, y, r, s});
}

Problem
mttkrpProblem(const std::string &name, int64_t i, int64_t j, int64_t k,
              int64_t l)
{
    return makeProblem(mttkrpAlgo(), name, {i, j, k, l});
}

std::vector<Problem>
table1Cnn()
{
    return {
        cnnProblem("ResNet_Conv_3", 16, 128, 128, 28, 28, 3, 3),
        cnnProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3),
        cnnProblem("Inception_Conv_2", 32, 192, 192, 56, 56, 3, 3),
        cnnProblem("VGG_Conv_2", 16, 128, 64, 112, 112, 3, 3),
        cnnProblem("AlexNet_Conv_2", 8, 256, 96, 27, 27, 5, 5),
        cnnProblem("AlexNet_Conv_4", 8, 384, 384, 13, 13, 3, 3),
    };
}

std::vector<Problem>
table1Mttkrp()
{
    return {
        mttkrpProblem("MTTKRP_0", 128, 1024, 4096, 2048),
        mttkrpProblem("MTTKRP_1", 2048, 4096, 1024, 128),
    };
}

std::vector<Problem>
table1All()
{
    auto all = table1Cnn();
    auto mtt = table1Mttkrp();
    all.insert(all.end(), mtt.begin(), mtt.end());
    return all;
}

Problem
sampleRepresentativeProblem(const AlgorithmSpec &algo, Rng &rng)
{
    MM_ASSERT(algo.representativeValues.size() == algo.rank(),
              "representative grid arity mismatch");
    std::vector<int64_t> bounds;
    bounds.reserve(algo.rank());
    for (size_t d = 0; d < algo.rank(); ++d)
        bounds.push_back(rng.pick(algo.representativeValues[d]));
    return makeProblem(algo, strCat(algo.name, "_sampled"),
                       std::move(bounds));
}

} // namespace mm
