#include "workload/reference.hpp"

#include "common/error.hpp"

namespace mm {

DenseTensor
DenseTensor::zeros(std::vector<int64_t> dims_)
{
    DenseTensor t;
    t.dims = std::move(dims_);
    int64_t words = 1;
    for (int64_t d : t.dims) {
        MM_ASSERT(d >= 1, "non-positive tensor extent");
        words *= d;
    }
    t.data.assign(size_t(words), 0.0f);
    return t;
}

int64_t
DenseTensor::offset(std::span<const int64_t> coord) const
{
    MM_ASSERT(coord.size() == dims.size(), "coordinate arity mismatch");
    int64_t off = 0;
    for (size_t i = 0; i < dims.size(); ++i) {
        MM_ASSERT(coord[i] >= 0 && coord[i] < dims[i],
                  "coordinate out of bounds");
        off = off * dims[i] + coord[i];
    }
    return off;
}

std::vector<int64_t>
tensorPoint(const AlgorithmSpec &algo, size_t t,
            std::span<const int64_t> point)
{
    const TensorSpec &spec = algo.tensors.at(t);
    std::vector<int64_t> coord;
    coord.reserve(spec.dims.size());
    for (const auto &tdim : spec.dims) {
        int64_t v = 0;
        for (const auto &term : tdim)
            v += term.coeff * point[size_t(term.dim)];
        coord.push_back(v);
    }
    return coord;
}

std::vector<DenseTensor>
makeTensors(const Problem &problem, Rng &rng)
{
    const AlgorithmSpec &algo = *problem.algo;
    std::vector<DenseTensor> tensors;
    for (size_t t = 0; t < algo.tensorCount(); ++t) {
        std::vector<int64_t> extents;
        for (const auto &tdim : algo.tensors[t].dims) {
            int64_t extent = 1;
            for (const auto &term : tdim)
                extent += term.coeff * (problem.bounds[size_t(term.dim)] - 1);
            extents.push_back(extent);
        }
        DenseTensor tensor = DenseTensor::zeros(std::move(extents));
        if (!algo.tensors[t].isOutput) {
            for (auto &v : tensor.data)
                v = float(rng.uniformReal(-1.0, 1.0));
        }
        tensors.push_back(std::move(tensor));
    }
    return tensors;
}

void
runReference(const Problem &problem, std::vector<DenseTensor> &tensors)
{
    const AlgorithmSpec &algo = *problem.algo;
    const size_t rank = problem.rank();
    const size_t out = algo.outputTensor();
    MM_ASSERT(tensors.size() == algo.tensorCount(), "tensor count mismatch");
    MM_ASSERT(problem.totalMacs() < 5e7,
              "reference kernel is for small test problems only");

    std::vector<int64_t> point(rank, 0);
    bool done = false;
    while (!done) {
        float acc = 1.0f;
        for (size_t t = 0; t < tensors.size(); ++t) {
            if (t == out)
                continue;
            auto coord = tensorPoint(algo, t, point);
            acc *= tensors[t].data[size_t(tensors[t].offset(coord))];
        }
        auto ocoord = tensorPoint(algo, out, point);
        tensors[out].data[size_t(tensors[out].offset(ocoord))] += acc;

        // Mixed-radix increment over the iteration space.
        done = true;
        for (size_t d = rank; d > 0; --d) {
            if (++point[d - 1] < problem.bounds[d - 1]) {
                done = false;
                break;
            }
            point[d - 1] = 0;
        }
    }
}

} // namespace mm
