#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace mm {

double
squaredNorm(const Matrix &m)
{
    double acc = 0.0;
    const float *p = m.data();
    for (size_t i = 0; i < m.size(); ++i)
        acc += double(p[i]) * double(p[i]);
    return acc;
}

void
axpy(float alpha, const Matrix &x, Matrix &y)
{
    MM_ASSERT(x.rows() == y.rows() && x.cols() == y.cols(),
              "axpy shape mismatch");
    const float *xp = x.data();
    float *yp = y.data();
    for (size_t i = 0; i < x.size(); ++i)
        yp[i] += alpha * xp[i];
}

void
scale(float alpha, Matrix &m)
{
    float *p = m.data();
    for (size_t i = 0; i < m.size(); ++i)
        p[i] *= alpha;
}

double
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    MM_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
              "maxAbsDiff shape mismatch");
    double worst = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, double(std::fabs(a.data()[i] - b.data()[i])));
    return worst;
}

} // namespace mm
