#include "tensor/gemm.hpp"

#include <algorithm>
#include <array>

#include "common/string_util.hpp"
#include "common/thread_pool.hpp"

namespace mm {

namespace {

// ---------------------------------------------------------------------------
// Blocking parameters.
//
// MR x NR is the micro-tile held in registers (NR = 16 floats = one
// cache line = four SSE / two AVX vectors). MC x KC sizes the packed A
// panel (~64 KiB, L2-resident); KC x NC sizes the packed B panel. MC
// must be a multiple of MR and NC a multiple of NR.
// ---------------------------------------------------------------------------
constexpr size_t MR = 4;
constexpr size_t NR = 16;
constexpr size_t MC = 64;
constexpr size_t KC = 256;
constexpr size_t NC = 1024;

/** Shapes with k*n below this stay on the scalar kernels. */
constexpr size_t kBlockedMinKN = 4096;

/** Minimum 2*m*n*k flops before row-range threading pays off. */
constexpr double kParallelMinFlops = double(1 << 23);

inline float
elemA(const Matrix &a, bool transA, size_t i, size_t p)
{
    return transA ? a(p, i) : a(i, p);
}

inline float
elemB(const Matrix &b, bool transB, size_t p, size_t j)
{
    return transB ? b(j, p) : b(p, j);
}

/** Per-thread packing scratch; reused across calls, never shared. */
struct PackBuffers
{
    AlignedFloatBuffer a;
    AlignedFloatBuffer b;
};

PackBuffers &
packBuffers()
{
    static thread_local PackBuffers bufs;
    return bufs;
}

/**
 * Pack an mc x kc block of op(A), alpha folded in, as MR-row
 * micro-panels: panel ir holds [p][i] with the MR row values of each p
 * contiguous. Rows past mc are zero so the micro-kernel never branches.
 */
void
packA(const Matrix &a, bool transA, float alpha, size_t i0, size_t mc,
      size_t p0, size_t kc, float *dst)
{
    const size_t panels = (mc + MR - 1) / MR;
    for (size_t ir = 0; ir < panels; ++ir) {
        float *panel = dst + ir * kc * MR;
        const size_t rows = std::min(MR, mc - ir * MR);
        for (size_t p = 0; p < kc; ++p) {
            for (size_t i = 0; i < rows; ++i)
                panel[p * MR + i] =
                    alpha * elemA(a, transA, i0 + ir * MR + i, p0 + p);
            for (size_t i = rows; i < MR; ++i)
                panel[p * MR + i] = 0.0f;
        }
    }
}

/**
 * Pack a kc x nc block of op(B) as NR-column micro-panels: panel jr
 * holds [p][j] with the NR column values of each p contiguous (one
 * aligned cache line per p). Columns past nc are zero.
 */
void
packB(const Matrix &b, bool transB, size_t p0, size_t kc, size_t j0,
      size_t nc, float *dst)
{
    const size_t panels = (nc + NR - 1) / NR;
    for (size_t jr = 0; jr < panels; ++jr) {
        float *panel = dst + jr * kc * NR;
        const size_t cols = std::min(NR, nc - jr * NR);
        if (!transB && cols == NR) {
            for (size_t p = 0; p < kc; ++p) {
                const float *src = b.data() + (p0 + p) * b.cols() + j0
                                   + jr * NR;
                std::copy(src, src + NR, panel + p * NR);
            }
            continue;
        }
        for (size_t p = 0; p < kc; ++p) {
            for (size_t j = 0; j < cols; ++j)
                panel[p * NR + j] =
                    elemB(b, transB, p0 + p, j0 + jr * NR + j);
            for (size_t j = cols; j < NR; ++j)
                panel[p * NR + j] = 0.0f;
        }
    }
}

// The macro-kernel (with the micro-kernel inlined) is compiled once
// portably and, on x86-64 Linux with GCC/Clang, additionally for
// AVX2+FMA and AVX-512; the best variant the CPU supports is picked
// once at first use. Per machine the chosen variant is fixed, so the
// determinism guarantees (batch-size independence, thread-count
// independence) are unaffected. Define MM_GEMM_NO_MULTIVERSION to
// force the portable path.
#if defined(__x86_64__) && defined(__gnu_linux__) && defined(__GNUC__)    \
    && !defined(MM_GEMM_NO_MULTIVERSION) && !defined(__AVX512F__)
#define MM_GEMM_MULTIVERSION 1
#else
#define MM_GEMM_MULTIVERSION 0
#endif

#if defined(__GNUC__)
#define MM_GEMM_INLINE inline __attribute__((always_inline))
#else
#define MM_GEMM_INLINE inline
#endif

/**
 * acc[MR][NR] = sum_p apanel[p] (x) bpanel[p]. One strictly sequential
 * accumulation chain per element (no k-splitting, no horizontal sums):
 * the chain is what makes a row's result independent of which batch or
 * tile it lands in.
 *
 * The GNU-vector-extension variant keeps the MR x NR tile in eight
 * named half-row accumulators, which the compiler register-allocates
 * (the 2-D array form spills to the stack and runs ~2.5x slower). The
 * per-element arithmetic — one multiply-add per p, in p order — is
 * identical to the scalar fallback.
 */
#if defined(__GNUC__)

using Vec8f = float __attribute__((vector_size(32)));

MM_GEMM_INLINE Vec8f
splat8(float v)
{
    return Vec8f{v, v, v, v, v, v, v, v};
}

MM_GEMM_INLINE Vec8f
load8(const float *p)
{
    Vec8f v;
    __builtin_memcpy(&v, p, sizeof(v));
    return v;
}

MM_GEMM_INLINE void
store8(float *p, Vec8f v)
{
    __builtin_memcpy(p, &v, sizeof(v));
}

MM_GEMM_INLINE void
microKernel(size_t kc, const float *apanel, const float *bpanel,
            float acc[MR][NR])
{
    static_assert(MR == 4 && NR == 16, "micro-kernel is specialized");
    Vec8f c00 = splat8(0.0f), c01 = splat8(0.0f);
    Vec8f c10 = splat8(0.0f), c11 = splat8(0.0f);
    Vec8f c20 = splat8(0.0f), c21 = splat8(0.0f);
    Vec8f c30 = splat8(0.0f), c31 = splat8(0.0f);
    for (size_t p = 0; p < kc; ++p) {
        const float *arow = apanel + p * MR;
        const float *brow = static_cast<const float *>(
            __builtin_assume_aligned(bpanel + p * NR, kMatrixAlignment));
        const Vec8f b0 = load8(brow);
        const Vec8f b1 = load8(brow + 8);
        const Vec8f a0 = splat8(arow[0]);
        c00 += a0 * b0;
        c01 += a0 * b1;
        const Vec8f a1 = splat8(arow[1]);
        c10 += a1 * b0;
        c11 += a1 * b1;
        const Vec8f a2 = splat8(arow[2]);
        c20 += a2 * b0;
        c21 += a2 * b1;
        const Vec8f a3 = splat8(arow[3]);
        c30 += a3 * b0;
        c31 += a3 * b1;
    }
    store8(acc[0], c00);
    store8(acc[0] + 8, c01);
    store8(acc[1], c10);
    store8(acc[1] + 8, c11);
    store8(acc[2], c20);
    store8(acc[2] + 8, c21);
    store8(acc[3], c30);
    store8(acc[3] + 8, c31);
}

#else // !__GNUC__: portable scalar micro-kernel

MM_GEMM_INLINE void
microKernel(size_t kc, const float *apanel, const float *bpanel,
            float acc[MR][NR])
{
    for (size_t i = 0; i < MR; ++i)
        for (size_t j = 0; j < NR; ++j)
            acc[i][j] = 0.0f;
    for (size_t p = 0; p < kc; ++p) {
        const float *arow = apanel + p * MR;
        const float *brow = bpanel + p * NR;
        for (size_t i = 0; i < MR; ++i) {
            const float av = arow[i];
            for (size_t j = 0; j < NR; ++j)
                acc[i][j] += av * brow[j];
        }
    }
}

#endif

/** C block += packed-A panel * packed-B panel, clipping tile edges. */
MM_GEMM_INLINE void
macroKernelImpl(const float *ap, const float *bp, size_t kc, Matrix &c,
                size_t ic, size_t mc, size_t jc, size_t nc)
{
    const size_t ldc = c.cols();
    for (size_t jr = 0; jr < nc; jr += NR) {
        const float *bpanel = bp + (jr / NR) * kc * NR;
        const size_t nr = std::min(NR, nc - jr);
        for (size_t ir = 0; ir < mc; ir += MR) {
            const float *apanel = ap + (ir / MR) * kc * MR;
            const size_t mr = std::min(MR, mc - ir);
            float acc[MR][NR];
            microKernel(kc, apanel, bpanel, acc);
            for (size_t i = 0; i < mr; ++i) {
                float *crow = c.data() + (ic + ir + i) * ldc + jc + jr;
                for (size_t j = 0; j < nr; ++j)
                    crow[j] += acc[i][j];
            }
        }
    }
}

#if MM_GEMM_MULTIVERSION
__attribute__((target("avx2,fma"))) void
macroKernelAvx2(const float *ap, const float *bp, size_t kc, Matrix &c,
                size_t ic, size_t mc, size_t jc, size_t nc)
{
    macroKernelImpl(ap, bp, kc, c, ic, mc, jc, nc);
}

__attribute__((target("avx512f,avx512vl,avx2,fma"))) void
macroKernelAvx512(const float *ap, const float *bp, size_t kc, Matrix &c,
                  size_t ic, size_t mc, size_t jc, size_t nc)
{
    macroKernelImpl(ap, bp, kc, c, ic, mc, jc, nc);
}
#endif

void
macroKernelPortable(const float *ap, const float *bp, size_t kc, Matrix &c,
                    size_t ic, size_t mc, size_t jc, size_t nc)
{
    macroKernelImpl(ap, bp, kc, c, ic, mc, jc, nc);
}

using MacroKernelFn = void (*)(const float *, const float *, size_t,
                               Matrix &, size_t, size_t, size_t, size_t);

MacroKernelFn
resolveMacroKernel()
{
#if MM_GEMM_MULTIVERSION
    if (__builtin_cpu_supports("avx512f")
        && __builtin_cpu_supports("avx512vl"))
        return macroKernelAvx512;
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return macroKernelAvx2;
#endif
    return macroKernelPortable;
}

void
macroKernel(const float *ap, const float *bp, size_t kc, Matrix &c,
            size_t ic, size_t mc, size_t jc, size_t nc)
{
    static const MacroKernelFn fn = resolveMacroKernel();
    fn(ap, bp, kc, c, ic, mc, jc, nc);
}

/**
 * Blocked GEMM over C rows [rowBegin, rowEnd); beta already applied.
 * The k partition and per-element accumulation order are row-range
 * independent, so any row split yields bitwise-identical results.
 */
void
gemmBlockedRows(bool transA, bool transB, float alpha, const Matrix &a,
                const Matrix &b, Matrix &c, size_t rowBegin, size_t rowEnd,
                size_t k, size_t n)
{
    PackBuffers &ws = packBuffers();
    for (size_t jc = 0; jc < n; jc += NC) {
        const size_t nc = std::min(NC, n - jc);
        const size_t nPad = (nc + NR - 1) / NR * NR;
        for (size_t pc = 0; pc < k; pc += KC) {
            const size_t kc = std::min(KC, k - pc);
            ws.b.resize(kc * nPad);
            packB(b, transB, pc, kc, jc, nc, ws.b.data());
            for (size_t ic = rowBegin; ic < rowEnd; ic += MC) {
                const size_t mc = std::min(MC, rowEnd - ic);
                const size_t mPad = (mc + MR - 1) / MR * MR;
                ws.a.resize(mPad * kc);
                packA(a, transA, alpha, ic, mc, pc, kc, ws.a.data());
                macroKernel(ws.a.data(), ws.b.data(), kc, c, ic, mc, jc,
                            nc);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar small-shape kernels (the pre-blocking implementation).
// ---------------------------------------------------------------------------

/** C(m,n) += alpha * A(m,k) * B(k,n); ikj order, contiguous in B and C. */
void
gemmNN(float alpha, const Matrix &a, const Matrix &b, Matrix &c)
{
    const size_t m = a.rows(), k = a.cols(), n = b.cols();
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (size_t p = 0; p < k; ++p) {
            const float av = alpha * arow[p];
            const float *brow = b.data() + p * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

/** C(m,n) += alpha * A(m,k) * B(n,k)^T; dot products over contiguous rows. */
void
gemmNT(float alpha, const Matrix &a, const Matrix &b, Matrix &c)
{
    const size_t m = a.rows(), k = a.cols(), n = b.rows();
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (size_t j = 0; j < n; ++j) {
            const float *brow = b.data() + j * k;
            float acc = 0.0f;
            for (size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            crow[j] += alpha * acc;
        }
    }
}

/** C(m,n) += alpha * A(k,m)^T * B(k,n); rank-1 updates, contiguous rows. */
void
gemmTN(float alpha, const Matrix &a, const Matrix &b, Matrix &c)
{
    const size_t k = a.rows(), m = a.cols(), n = b.cols();
    for (size_t p = 0; p < k; ++p) {
        const float *arow = a.data() + p * m;
        const float *brow = b.data() + p * n;
        for (size_t i = 0; i < m; ++i) {
            const float av = alpha * arow[i];
            float *crow = c.data() + i * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

/**
 * C(m,n) += alpha * A(k,m)^T * B(n,k)^T. A's column is packed into a
 * contiguous scratch row first, turning the strided a(p, i) walk of the
 * inner dot product into the same contiguous NT form as the other
 * variants.
 */
void
gemmTT(float alpha, const Matrix &a, const Matrix &b, Matrix &c)
{
    const size_t k = a.rows(), m = a.cols(), n = b.rows();
    AlignedFloatBuffer &apack = packBuffers().a;
    apack.resize(k);
    for (size_t i = 0; i < m; ++i) {
        for (size_t p = 0; p < k; ++p)
            apack[p] = a(p, i);
        float *crow = c.data() + i * n;
        for (size_t j = 0; j < n; ++j) {
            const float *brow = b.data() + j * k;
            float acc = 0.0f;
            for (size_t p = 0; p < k; ++p)
                acc += apack[p] * brow[p];
            crow[j] += alpha * acc;
        }
    }
}

void
dispatchScalar(bool transA, bool transB, float alpha, const Matrix &a,
               const Matrix &b, Matrix &c)
{
    if (!transA && !transB)
        gemmNN(alpha, a, b, c);
    else if (!transA && transB)
        gemmNT(alpha, a, b, c);
    else if (transA && !transB)
        gemmTN(alpha, a, b, c);
    else
        gemmTT(alpha, a, b, c);
}

/** Shape-check and apply beta; returns {m, k, n}. */
std::array<size_t, 3>
prologue(bool transA, bool transB, const Matrix &a, const Matrix &b,
         float beta, Matrix &c)
{
    const size_t m = transA ? a.cols() : a.rows();
    const size_t ka = transA ? a.rows() : a.cols();
    const size_t kb = transB ? b.cols() : b.rows();
    const size_t n = transB ? b.rows() : b.cols();
    MM_ASSERT(ka == kb,
              strCat("gemm inner-dimension mismatch: ", ka, " vs ", kb));
    MM_ASSERT(c.rows() == m && c.cols() == n, "gemm output shape mismatch");

    if (beta == 0.0f)
        c.zero();
    else if (beta != 1.0f)
        scale(beta, c);
    return {m, ka, n};
}

} // namespace

void
gemm(bool transA, bool transB, float alpha, const Matrix &a, const Matrix &b,
     float beta, Matrix &c, ThreadPool *pool)
{
    auto [m, k, n] = prologue(transA, transB, a, b, beta, c);
    if (m == 0 || n == 0 || k == 0 || alpha == 0.0f)
        return;

    // Dispatch on (k, n) only: a batched row and the same row alone must
    // take the same kernel so their arithmetic is identical.
    if (k * n < kBlockedMinKN) {
        dispatchScalar(transA, transB, alpha, a, b, c);
        return;
    }

    size_t chunks = 1;
    if (pool != nullptr && pool->lanes() > 1
        && 2.0 * double(m) * double(n) * double(k) >= kParallelMinFlops)
        chunks = std::max<size_t>(1, std::min(pool->lanes(), m / MC));

    if (chunks <= 1) {
        gemmBlockedRows(transA, transB, alpha, a, b, c, 0, m, k, n);
        return;
    }

    // MC-aligned disjoint row ranges: identical arithmetic per element
    // at any chunk count, so threading cannot perturb results.
    const size_t rowBlocks = (m + MC - 1) / MC;
    pool->parallelFor(chunks, [&, mm_ = m, k_ = k, n_ = n](size_t ci) {
        const size_t b0 = rowBlocks * ci / chunks;
        const size_t b1 = rowBlocks * (ci + 1) / chunks;
        const size_t r0 = b0 * MC;
        const size_t r1 = std::min(mm_, b1 * MC);
        if (r0 < r1)
            gemmBlockedRows(transA, transB, alpha, a, b, c, r0, r1, k_,
                            n_);
    });
}

void
gemmNaive(bool transA, bool transB, float alpha, const Matrix &a,
          const Matrix &b, float beta, Matrix &c)
{
    auto [m, k, n] = prologue(transA, transB, a, b, beta, c);
    if (m == 0 || n == 0 || k == 0 || alpha == 0.0f)
        return;
    dispatchScalar(transA, transB, alpha, a, b, c);
}

void
gemmReference(bool transA, bool transB, float alpha, const Matrix &a,
              const Matrix &b, float beta, Matrix &c)
{
    const size_t m = transA ? a.cols() : a.rows();
    const size_t k = transA ? a.rows() : a.cols();
    const size_t n = transB ? b.rows() : b.cols();
    MM_ASSERT(c.rows() == m && c.cols() == n, "gemm output shape mismatch");
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (size_t p = 0; p < k; ++p) {
                float av = transA ? a(p, i) : a(i, p);
                float bv = transB ? b(j, p) : b(p, j);
                acc += double(av) * double(bv);
            }
            c(i, j) = alpha * float(acc) + beta * c(i, j);
        }
    }
}

} // namespace mm
