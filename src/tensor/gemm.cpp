#include "tensor/gemm.hpp"

#include "common/string_util.hpp"

namespace mm {

namespace {

/** C(m,n) += alpha * A(m,k) * B(k,n); ikj order, contiguous in B and C. */
void
gemmNN(float alpha, const Matrix &a, const Matrix &b, Matrix &c)
{
    const size_t m = a.rows(), k = a.cols(), n = b.cols();
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (size_t p = 0; p < k; ++p) {
            const float av = alpha * arow[p];
            const float *brow = b.data() + p * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

/** C(m,n) += alpha * A(m,k) * B(n,k)^T; dot products over contiguous rows. */
void
gemmNT(float alpha, const Matrix &a, const Matrix &b, Matrix &c)
{
    const size_t m = a.rows(), k = a.cols(), n = b.rows();
    for (size_t i = 0; i < m; ++i) {
        const float *arow = a.data() + i * k;
        float *crow = c.data() + i * n;
        for (size_t j = 0; j < n; ++j) {
            const float *brow = b.data() + j * k;
            float acc = 0.0f;
            for (size_t p = 0; p < k; ++p)
                acc += arow[p] * brow[p];
            crow[j] += alpha * acc;
        }
    }
}

/** C(m,n) += alpha * A(k,m)^T * B(k,n); rank-1 updates, contiguous rows. */
void
gemmTN(float alpha, const Matrix &a, const Matrix &b, Matrix &c)
{
    const size_t k = a.rows(), m = a.cols(), n = b.cols();
    for (size_t p = 0; p < k; ++p) {
        const float *arow = a.data() + p * m;
        const float *brow = b.data() + p * n;
        for (size_t i = 0; i < m; ++i) {
            const float av = alpha * arow[i];
            float *crow = c.data() + i * n;
            for (size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

/** C(m,n) += alpha * A(k,m)^T * B(n,k)^T; rare, fall back to dot form. */
void
gemmTT(float alpha, const Matrix &a, const Matrix &b, Matrix &c)
{
    const size_t k = a.rows(), m = a.cols(), n = b.rows();
    for (size_t i = 0; i < m; ++i) {
        float *crow = c.data() + i * n;
        for (size_t j = 0; j < n; ++j) {
            const float *brow = b.data() + j * k;
            float acc = 0.0f;
            for (size_t p = 0; p < k; ++p)
                acc += a(p, i) * brow[p];
            crow[j] += alpha * acc;
        }
    }
}

} // namespace

void
gemm(bool transA, bool transB, float alpha, const Matrix &a, const Matrix &b,
     float beta, Matrix &c)
{
    const size_t m = transA ? a.cols() : a.rows();
    const size_t ka = transA ? a.rows() : a.cols();
    const size_t kb = transB ? b.cols() : b.rows();
    const size_t n = transB ? b.rows() : b.cols();
    MM_ASSERT(ka == kb, strCat("gemm inner-dimension mismatch: ", ka,
                               " vs ", kb));
    MM_ASSERT(c.rows() == m && c.cols() == n, "gemm output shape mismatch");

    if (beta == 0.0f)
        c.zero();
    else if (beta != 1.0f)
        scale(beta, c);

    if (!transA && !transB)
        gemmNN(alpha, a, b, c);
    else if (!transA && transB)
        gemmNT(alpha, a, b, c);
    else if (transA && !transB)
        gemmTN(alpha, a, b, c);
    else
        gemmTT(alpha, a, b, c);
}

void
gemmReference(bool transA, bool transB, float alpha, const Matrix &a,
              const Matrix &b, float beta, Matrix &c)
{
    const size_t m = transA ? a.cols() : a.rows();
    const size_t k = transA ? a.rows() : a.cols();
    const size_t n = transB ? b.rows() : b.cols();
    MM_ASSERT(c.rows() == m && c.cols() == n, "gemm output shape mismatch");
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (size_t p = 0; p < k; ++p) {
                float av = transA ? a(p, i) : a(i, p);
                float bv = transB ? b(j, p) : b(p, j);
                acc += double(av) * double(bv);
            }
            c(i, j) = alpha * float(acc) + beta * c(i, j);
        }
    }
}

} // namespace mm
