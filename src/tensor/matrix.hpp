/**
 * @file
 * Dense row-major float matrix.
 *
 * The minimal linear-algebra substrate for the neural-network library:
 * a contiguous row-major buffer with element access, row views and a few
 * whole-matrix helpers. Storage is 64-byte (cache-line) aligned so the
 * blocked GEMM kernel can assume aligned panel bases. All heavy math
 * lives in gemm.hpp.
 */
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace mm {

/** Alignment (bytes) of Matrix storage and GEMM packing buffers. */
inline constexpr size_t kMatrixAlignment = 64;

/**
 * Minimal std::allocator drop-in returning @p Align-byte-aligned
 * storage; lets std::vector keep its value semantics while the data
 * pointer satisfies the kernel's alignment assumption.
 */
template <typename T, size_t Align>
struct AlignedAllocator
{
    using value_type = T;

    /** Required explicitly: the non-type Align defeats the default. */
    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {}

    T *
    allocate(size_t n)
    {
        if (n == 0)
            return nullptr;
        void *p = ::operator new(n * sizeof(T), std::align_val_t(Align));
        return static_cast<T *>(p);
    }

    void
    deallocate(T *p, size_t)
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U, Align> &) const
    {
        return true;
    }
};

/** Cache-line-aligned float buffer used by Matrix and GEMM packing. */
using AlignedFloatBuffer =
    std::vector<float, AlignedAllocator<float, kMatrixAlignment>>;

/** Row-major float matrix with value semantics. */
class Matrix
{
  public:
    Matrix() = default;

    /** Allocate a rows x cols matrix initialized to zero. */
    Matrix(size_t rows, size_t cols)
        : nRows(rows), nCols(cols), buf(rows * cols, 0.0f)
    {}

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }
    size_t size() const { return buf.size(); }
    bool empty() const { return buf.empty(); }

    float &
    at(size_t r, size_t c)
    {
        MM_ASSERT(r < nRows && c < nCols, "matrix index out of range");
        return buf[r * nCols + c];
    }

    float
    at(size_t r, size_t c) const
    {
        MM_ASSERT(r < nRows && c < nCols, "matrix index out of range");
        return buf[r * nCols + c];
    }

    /** Unchecked element access for hot loops. */
    float &operator()(size_t r, size_t c) { return buf[r * nCols + c]; }
    float operator()(size_t r, size_t c) const { return buf[r * nCols + c]; }

    float *data() { return buf.data(); }
    const float *data() const { return buf.data(); }

    std::span<float>
    row(size_t r)
    {
        MM_ASSERT(r < nRows, "row index out of range");
        return {buf.data() + r * nCols, nCols};
    }

    std::span<const float>
    row(size_t r) const
    {
        MM_ASSERT(r < nRows, "row index out of range");
        return {buf.data() + r * nCols, nCols};
    }

    /** Set every element to @p value. */
    void
    fill(float value)
    {
        std::fill(buf.begin(), buf.end(), value);
    }

    /** Set every element to zero. */
    void zero() { fill(0.0f); }

    /** Reshape in place; total element count must be preserved. */
    void
    reshape(size_t rows, size_t cols)
    {
        MM_ASSERT(rows * cols == buf.size(), "reshape changes element count");
        nRows = rows;
        nCols = cols;
    }

    /** Resize (destructive); contents reset to zero. */
    void
    resize(size_t rows, size_t cols)
    {
        nRows = rows;
        nCols = cols;
        buf.assign(rows * cols, 0.0f);
    }

    /**
     * Set the shape, reusing the allocation when the element count
     * already matches; contents are unspecified afterwards. The fast
     * path for per-step workspaces that are fully overwritten anyway
     * (e.g. gemm outputs with beta = 0).
     */
    void
    ensureShape(size_t rows, size_t cols)
    {
        if (rows * cols != buf.size())
            buf.resize(rows * cols);
        nRows = rows;
        nCols = cols;
    }

  private:
    size_t nRows = 0;
    size_t nCols = 0;
    AlignedFloatBuffer buf;
};

/** Sum of squared elements. */
double squaredNorm(const Matrix &m);

/** y += alpha * x (same shape). */
void axpy(float alpha, const Matrix &x, Matrix &y);

/** m *= alpha. */
void scale(float alpha, Matrix &m);

/** Max absolute element difference between two same-shaped matrices. */
double maxAbsDiff(const Matrix &a, const Matrix &b);

} // namespace mm
