/**
 * @file
 * General matrix multiply with optional operand transposes.
 *
 * Two tiers share one entry point:
 *
 *  - A cache-blocked kernel (MC x KC x NC tiling) that packs A and B
 *    into aligned MR x NR micro-panels and drives a vectorizable
 *    micro-kernel; large shapes optionally fan row ranges out over a
 *    ThreadPool. This is the compute backbone of surrogate training and
 *    the batched Phase-2 driver.
 *  - Hand-specialized scalar loop orders for small shapes, where
 *    packing overhead would dominate.
 *
 * Kernel dispatch depends only on (k, n) — never on the row count — so
 * every row of a batched call goes through bitwise-identical arithmetic
 * to the same row evaluated alone (the batched-vs-per-sample surrogate
 * equivalence the Phase-2 driver relies on). Threading partitions C by
 * disjoint row ranges, so results are bitwise identical at any thread
 * count.
 */
#pragma once

#include "tensor/matrix.hpp"

namespace mm {

class ThreadPool;

/**
 * C = alpha * op(A) * op(B) + beta * C.
 *
 * op(X) is X or X^T according to the transpose flags. C must already
 * have the result shape; shapes are checked. When @p pool is non-null,
 * large shapes are parallelized over disjoint row ranges of C (bitwise
 * deterministic at any lane count).
 */
void gemm(bool transA, bool transB, float alpha, const Matrix &a,
          const Matrix &b, float beta, Matrix &c,
          ThreadPool *pool = nullptr);

/**
 * The pre-blocking scalar kernels (contiguous-innermost loop orders,
 * no packing, no threading). Kept as the measurable baseline for the
 * blocked kernel and as the small-shape fast path.
 */
void gemmNaive(bool transA, bool transB, float alpha, const Matrix &a,
               const Matrix &b, float beta, Matrix &c);

/** Reference triple-loop implementation used for testing (fp64 acc). */
void gemmReference(bool transA, bool transB, float alpha, const Matrix &a,
                   const Matrix &b, float beta, Matrix &c);

} // namespace mm
