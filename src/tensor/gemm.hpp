/**
 * @file
 * General matrix multiply with optional operand transposes.
 *
 * Three hand-specialized loop orders keep the innermost loop contiguous
 * for each transpose combination so GCC auto-vectorizes them; this is the
 * compute backbone of surrogate training and the DDPG baseline.
 */
#pragma once

#include "tensor/matrix.hpp"

namespace mm {

/**
 * C = alpha * op(A) * op(B) + beta * C.
 *
 * op(X) is X or X^T according to the transpose flags. C must already have
 * the result shape; shapes are checked.
 */
void gemm(bool transA, bool transB, float alpha, const Matrix &a,
          const Matrix &b, float beta, Matrix &c);

/** Reference triple-loop implementation used for testing. */
void gemmReference(bool transA, bool transB, float alpha, const Matrix &a,
                   const Matrix &b, float beta, Matrix &c);

} // namespace mm
