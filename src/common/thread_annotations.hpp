/**
 * @file
 * Portable thread-safety annotation macros.
 *
 * Thin wrappers over clang's capability analysis attributes
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), expanding to
 * nothing on compilers without the attributes. Annotated code compiles
 * everywhere; under clang with -Werror=thread-safety (the CI
 * static-analysis job, or -DMM_THREAD_SAFETY=ON) lock discipline
 * becomes a compile-time fact: every MM_GUARDED_BY field access is
 * proven to hold the guarding mutex, every MM_REQUIRES contract is
 * checked at each call site, and a release/acquire imbalance is a
 * build error, not a latent race.
 *
 * The std::mutex / std::lock_guard types shipped by libstdc++ carry no
 * capability attributes, so the analysis cannot see through them — use
 * the annotated mm::Mutex / mm::MutexLock / mm::CondVar wrappers
 * (common/mutex.hpp) instead; this repo's mmlint and code review treat
 * a bare std::mutex in locking code as a defect.
 *
 * Annotation guide (the subset this repo uses):
 *   MM_CAPABILITY("mutex")  on a lockable class (mm::Mutex).
 *   MM_SCOPED_CAPABILITY    on an RAII lock holder (mm::MutexLock).
 *   MM_GUARDED_BY(m)        on a field: every access must hold m.
 *   MM_PT_GUARDED_BY(m)     on a pointer field: the pointee needs m.
 *   MM_REQUIRES(m)          on a function: caller must hold m.
 *   MM_ACQUIRE(m) / MM_RELEASE(m)  on lock/unlock-shaped functions.
 *   MM_TRY_ACQUIRE(ok, m)   on try_lock-shaped functions.
 *   MM_EXCLUDES(m)          on a function: caller must NOT hold m
 *                           (self-deadlock guard on public entry points).
 *   MM_NO_THREAD_SAFETY_ANALYSIS  opt-out for a function whose locking
 *                           is deliberately invisible to the analysis;
 *                           each use needs a comment saying why.
 */
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MM_THREAD_ANNOTATION
#define MM_THREAD_ANNOTATION(x) // not clang: annotations compile away
#endif

#define MM_CAPABILITY(x) MM_THREAD_ANNOTATION(capability(x))
#define MM_SCOPED_CAPABILITY MM_THREAD_ANNOTATION(scoped_lockable)
#define MM_GUARDED_BY(x) MM_THREAD_ANNOTATION(guarded_by(x))
#define MM_PT_GUARDED_BY(x) MM_THREAD_ANNOTATION(pt_guarded_by(x))
#define MM_ACQUIRED_BEFORE(...)                                           \
    MM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MM_ACQUIRED_AFTER(...)                                            \
    MM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define MM_REQUIRES(...)                                                  \
    MM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MM_ACQUIRE(...)                                                   \
    MM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MM_RELEASE(...)                                                   \
    MM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MM_TRY_ACQUIRE(...)                                               \
    MM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define MM_EXCLUDES(...) MM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define MM_ASSERT_CAPABILITY(x)                                           \
    MM_THREAD_ANNOTATION(assert_capability(x))
#define MM_RETURN_CAPABILITY(x) MM_THREAD_ANNOTATION(lock_returned(x))
#define MM_NO_THREAD_SAFETY_ANALYSIS                                      \
    MM_THREAD_ANNOTATION(no_thread_safety_analysis)
