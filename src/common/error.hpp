/**
 * @file
 * Error-handling primitives.
 *
 * Follows the gem5 fatal/panic split: user-correctable errors (bad
 * configuration, invalid arguments) raise mm::FatalError via mm::fatal(),
 * while internal invariant violations abort the process via MM_ASSERT.
 *
 * Recoverable runtime failures carry types, not just text, so callers
 * can choose a recovery strategy instead of dying:
 *
 *   - IoError: an OS-level I/O operation failed. Carries the path, the
 *     syscall and the errno, and classifies itself as transient()
 *     (worth retrying with backoff — see common/retry.hpp) or not.
 *   - CorruptionError: verified on-disk state failed its integrity
 *     check. Carries the path, a Kind that distinguishes a short read
 *     (truncation / partial write) from a checksum mismatch (bit flip /
 *     torn write) from a malformed header, and the expected/actual
 *     checksum when known — the triage inputs shard quarantine needs.
 *   - ResourceError: a resource budget is exhausted (ENOSPC, a cache
 *     budget). Never transient; callers degrade or abort deliberately.
 *
 * All three derive from FatalError, so code that only knows "something
 * user-visible went wrong" keeps working, while the storage and
 * orchestration layers catch the precise types they can heal.
 */
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mm {

/** Raised for user-correctable errors (bad config, invalid arguments). */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The strerror_r text of @p errnoValue ("Success" for 0). */
std::string errnoText(int errnoValue);

/** A failed OS-level I/O operation: path + syscall + errno. */
class IoError : public FatalError
{
  public:
    IoError(std::string path, std::string sysCall, int errnoValue,
            const std::string &detail = "");

    const std::string &path() const { return path_; }
    const std::string &sysCall() const { return sysCall_; }
    int errnoValue() const { return errno_; }

    /**
     * True when retrying the operation can plausibly succeed (EINTR,
     * EAGAIN, EIO, EBUSY, ETIMEDOUT — the classic flaky-media and
     * contention set). Missing files (ENOENT), permission problems and
     * disk exhaustion are not transient.
     */
    bool transient() const;

  private:
    std::string path_;
    std::string sysCall_;
    int errno_;
};

/** Verified on-disk state failed its integrity check. */
class CorruptionError : public FatalError
{
  public:
    enum class Kind
    {
        ShortRead,        ///< file shorter than its declared contents
        ChecksumMismatch, ///< body present but its checksum disagrees
        BadHeader,        ///< magic/version/header fields malformed
    };

    CorruptionError(std::string path, Kind kind, const std::string &detail,
                    uint64_t expectedChecksum = 0,
                    uint64_t actualChecksum = 0);

    const std::string &path() const { return path_; }
    Kind kind() const { return kind_; }
    uint64_t expectedChecksum() const { return expected_; }
    uint64_t actualChecksum() const { return actual_; }

  private:
    std::string path_;
    Kind kind_;
    uint64_t expected_;
    uint64_t actual_;
};

/** A resource budget is exhausted (ENOSPC, cache budget, ...). */
class ResourceError : public FatalError
{
  public:
    ResourceError(std::string resource, const std::string &detail,
                  int errnoValue = 0);

    const std::string &resource() const { return resource_; }
    int errnoValue() const { return errno_; }

  private:
    std::string resource_;
    int errno_;
};

/** Throw a FatalError with the given message. */
[[noreturn]] void fatal(const std::string &msg);

/** Implementation detail of MM_ASSERT; aborts with a diagnostic. */
[[noreturn]] void panicImpl(const char *file, int line, const char *cond,
                            const std::string &msg);

} // namespace mm

/**
 * Internal invariant check, active in all build types.
 *
 * Use for conditions that indicate a bug in this library, never for user
 * input validation (use mm::fatal for that).
 */
#define MM_ASSERT(cond, msg)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::mm::panicImpl(__FILE__, __LINE__, #cond, (msg));               \
        }                                                                    \
    } while (false)
