/**
 * @file
 * Error-handling primitives.
 *
 * Follows the gem5 fatal/panic split: user-correctable errors (bad
 * configuration, invalid arguments) raise mm::FatalError via mm::fatal(),
 * while internal invariant violations abort the process via MM_ASSERT.
 */
#pragma once

#include <stdexcept>
#include <string>

namespace mm {

/** Raised for user-correctable errors (bad config, invalid arguments). */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Throw a FatalError with the given message. */
[[noreturn]] void fatal(const std::string &msg);

/** Implementation detail of MM_ASSERT; aborts with a diagnostic. */
[[noreturn]] void panicImpl(const char *file, int line, const char *cond,
                            const std::string &msg);

} // namespace mm

/**
 * Internal invariant check, active in all build types.
 *
 * Use for conditions that indicate a bug in this library, never for user
 * input validation (use mm::fatal for that).
 */
#define MM_ASSERT(cond, msg)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::mm::panicImpl(__FILE__, __LINE__, #cond, (msg));               \
        }                                                                    \
    } while (false)
