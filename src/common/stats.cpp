#include "common/stats.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mm {

double
geomean(std::span<const double> values)
{
    MM_ASSERT(!values.empty(), "geomean of empty span");
    double logSum = 0.0;
    for (double v : values) {
        MM_ASSERT(v > 0.0, "geomean requires positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / double(values.size()));
}

double
mean(std::span<const double> values)
{
    MM_ASSERT(!values.empty(), "mean of empty span");
    double acc = 0.0;
    for (double v : values)
        acc += v;
    return acc / double(values.size());
}

double
stddev(std::span<const double> values)
{
    double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / double(values.size()));
}

double
quantile(std::vector<double> values, double q)
{
    MM_ASSERT(!values.empty(), "quantile of empty vector");
    MM_ASSERT(q >= 0.0 && q <= 1.0, "quantile fraction out of range");
    std::sort(values.begin(), values.end());
    double pos = q * double(values.size() - 1);
    size_t lo = size_t(pos);
    size_t hi = std::min(lo + 1, values.size() - 1);
    double frac = pos - double(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

} // namespace mm
