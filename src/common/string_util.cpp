#include "common/string_util.hpp"

#include <iomanip>

namespace mm {

std::string
fmtDouble(double value, int digits)
{
    std::ostringstream oss;
    oss << std::setprecision(digits) << value;
    return oss.str();
}

} // namespace mm
