#include "common/string_util.hpp"

#include <iomanip>

namespace mm {

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    if (text.empty())
        return out;
    size_t pos = 0;
    while (true) {
        size_t end = text.find(sep, pos);
        if (end == std::string::npos) {
            out.push_back(text.substr(pos));
            return out;
        }
        out.push_back(text.substr(pos, end - pos));
        pos = end + 1;
    }
}

std::string
fmtDouble(double value, int digits)
{
    std::ostringstream oss;
    oss << std::setprecision(digits) << value;
    return oss.str();
}

} // namespace mm
