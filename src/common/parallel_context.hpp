/**
 * @file
 * Shared fork-join execution context.
 *
 * Phase-1 dataset labeling, surrogate training and the threaded GEMM
 * all want the same thing: "run this loop over the lanes the caller
 * provisioned". ParallelContext owns one lazily-built ThreadPool and is
 * threaded by pointer through Mlp / RegressionTrainer / Surrogate /
 * generateDataset so the whole Phase-1 pipeline shares a single pool
 * instead of spawning per-call threads. A null context (or one with a
 * single lane) means serial execution everywhere.
 *
 * Determinism: every consumer partitions work by index (disjoint output
 * rows, per-index RNG streams), so results are bitwise identical at any
 * lane count.
 */
#pragma once

#include <memory>

#include "common/thread_pool.hpp"

namespace mm {

/** A shareable lane-count + thread-pool bundle; copyable by pointer. */
class ParallelContext
{
  public:
    /**
     * @param threads Execution lanes; 0 selects hardware concurrency,
     *                1 (default) means serial (no pool is built).
     */
    explicit ParallelContext(size_t threads = 1);

    ParallelContext(const ParallelContext &) = delete;
    ParallelContext &operator=(const ParallelContext &) = delete;

    /** Execution lanes (1 = serial). */
    size_t lanes() const { return laneCount; }

    /** The underlying pool, or nullptr when serial. */
    ThreadPool *pool() { return tp.get(); }

    /** Run fn(i) over [0, n), inline when serial. */
    void
    parallelFor(size_t n, const std::function<void(size_t)> &fn)
    {
        if (tp) {
            tp->parallelFor(n, fn);
        } else {
            for (size_t i = 0; i < n; ++i)
                fn(i);
        }
    }

  private:
    size_t laneCount = 1;
    std::unique_ptr<ThreadPool> tp;
};

} // namespace mm
