#include "common/thread_pool.hpp"

#include "common/error.hpp"

namespace mm {

namespace {

/**
 * Pool whose job the current thread is executing, if any. Lets a
 * nested parallelFor on the same pool degrade to an inline loop
 * instead of deadlocking on the single-job slot (e.g. a threaded GEMM
 * invoked from inside a parallel Phase-2 chain step).
 */
thread_local const ThreadPool *tlsActivePool = nullptr;

} // namespace

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers.reserve(threads - 1);
    for (size_t i = 0; i + 1 < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mtx);
        stopping = true;
    }
    workCv.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    MutexLock lock(mtx);
    for (;;) {
        while (!stopping && (jobFn == nullptr || nextIndex >= jobSize))
            workCv.wait(mtx);
        if (stopping)
            return;
        runIndices();
    }
}

void
ThreadPool::runIndices()
{
    while (jobFn != nullptr && nextIndex < jobSize) {
        const size_t i = nextIndex++;
        ++inFlight;
        const std::function<void(size_t)> *fn = jobFn;
        mtx.unlock();
        std::exception_ptr err;
        const ThreadPool *prevActive = tlsActivePool;
        tlsActivePool = this;
        try {
            (*fn)(i);
        } catch (...) { // mmlint:allow(catch-all) captured, not dropped
            err = std::current_exception();
        }
        tlsActivePool = prevActive;
        mtx.lock();
        if (err && !firstError)
            firstError = err;
        --inFlight;
    }
    if (nextIndex >= jobSize && inFlight == 0)
        doneCv.notify_all();
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers.empty() || tlsActivePool == this) {
        // Serial pool, or a nested call from inside one of our own
        // jobs: run inline on the calling thread.
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    MutexLock lock(mtx);
    // Concurrent submitters from distinct threads queue up for the
    // single job slot instead of asserting.
    while (jobFn != nullptr)
        doneCv.wait(mtx);
    jobFn = &fn;
    jobSize = n;
    nextIndex = 0;
    inFlight = 0;
    firstError = nullptr;
    workCv.notify_all();

    runIndices();
    while (nextIndex < jobSize || inFlight != 0)
        doneCv.wait(mtx);
    jobFn = nullptr;
    std::exception_ptr err = firstError;
    firstError = nullptr;
    doneCv.notify_all(); // admit any submitter waiting for the job slot
    lock.unlock();
    if (err)
        std::rethrow_exception(err);
}

// ---------------------------------------------------------------------------
// SerialWorker
// ---------------------------------------------------------------------------

SerialWorker::SerialWorker() : worker([this] { workerLoop(); }) {}

SerialWorker::~SerialWorker()
{
    {
        MutexLock lock(mtx);
        stopping = true;
    }
    workCv.notify_all();
    worker.join();
}

void
SerialWorker::workerLoop()
{
    MutexLock lock(mtx);
    for (;;) {
        while (!stopping && queue.empty())
            workCv.wait(mtx);
        if (stopping && queue.empty())
            return;
        std::function<void()> task = std::move(queue.front());
        queue.pop_front();
        inFlight = 1;
        lock.unlock();
        std::exception_ptr err;
        try {
            task();
        } catch (...) { // mmlint:allow(catch-all) captured, not dropped
            err = std::current_exception();
        }
        lock.lock();
        inFlight = 0;
        if (err && !error) {
            error = err;
            // Drop everything already queued *now*, in the same lock
            // hold that latches the error: a submitter that rethrows
            // (clearing `error`) must not revive work whose
            // prerequisites are gone. submit() never enqueues while
            // the error is pending, so the queue stays consistent.
            queue.clear();
        }
        idleCv.notify_all();
    }
}

void
SerialWorker::submit(std::function<void()> task)
{
    std::exception_ptr err;
    {
        MutexLock lock(mtx);
        if (error) {
            err = error;
            error = nullptr;
        } else {
            queue.push_back(std::move(task));
        }
    }
    if (err)
        std::rethrow_exception(err);
    workCv.notify_all();
}

void
SerialWorker::throttle(size_t maxPending)
{
    std::exception_ptr err;
    {
        MutexLock lock(mtx);
        while (error == nullptr && queue.size() + inFlight > maxPending)
            idleCv.wait(mtx);
        if (error) {
            err = error;
            error = nullptr;
        }
    }
    if (err)
        std::rethrow_exception(err);
}

size_t
SerialWorker::pending() const
{
    MutexLock lock(mtx);
    return queue.size() + inFlight;
}

} // namespace mm
