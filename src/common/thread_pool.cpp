#include "common/thread_pool.hpp"

#include "common/error.hpp"

namespace mm {

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers.reserve(threads - 1);
    for (size_t i = 0; i + 1 < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    workCv.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mtx);
    for (;;) {
        workCv.wait(lock, [this] {
            return stopping || (jobFn != nullptr && nextIndex < jobSize);
        });
        if (stopping)
            return;
        runIndices(lock);
    }
}

void
ThreadPool::runIndices(std::unique_lock<std::mutex> &lock)
{
    while (jobFn != nullptr && nextIndex < jobSize) {
        const size_t i = nextIndex++;
        ++inFlight;
        const std::function<void(size_t)> *fn = jobFn;
        lock.unlock();
        std::exception_ptr err;
        try {
            (*fn)(i);
        } catch (...) {
            err = std::current_exception();
        }
        lock.lock();
        if (err && !firstError)
            firstError = err;
        --inFlight;
    }
    if (nextIndex >= jobSize && inFlight == 0)
        doneCv.notify_all();
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers.empty()) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::unique_lock<std::mutex> lock(mtx);
    MM_ASSERT(jobFn == nullptr, "nested parallelFor on one ThreadPool");
    jobFn = &fn;
    jobSize = n;
    nextIndex = 0;
    inFlight = 0;
    firstError = nullptr;
    workCv.notify_all();

    runIndices(lock);
    doneCv.wait(lock,
                [this] { return nextIndex >= jobSize && inFlight == 0; });
    jobFn = nullptr;
    std::exception_ptr err = firstError;
    firstError = nullptr;
    lock.unlock();
    if (err)
        std::rethrow_exception(err);
}

} // namespace mm
