/**
 * @file
 * Capped-exponential-backoff retry for transient I/O failures.
 *
 * Only IoError with transient() == true is retried; everything else
 * (CorruptionError, ResourceError, non-transient IoError, logic errors)
 * propagates immediately — retrying a checksum mismatch or a full disk
 * just wastes the backoff budget.
 *
 * Knobs (read once per fromEnv() call):
 *   MM_IO_RETRIES     extra attempts after the first failure (default 3)
 *   MM_IO_BACKOFF_MS  initial backoff in ms, doubled per retry and
 *                     capped at maxBackoffMs (default 1, cap 100)
 */
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace mm {

struct RetryPolicy
{
    /** Retries after the initial attempt (0 = try exactly once). */
    int retries = 3;
    /** Backoff before the first retry, in milliseconds. */
    double backoffMs = 1.0;
    /** Ceiling on the per-retry backoff, in milliseconds. */
    double maxBackoffMs = 100.0;

    /** Policy from MM_IO_RETRIES / MM_IO_BACKOFF_MS. */
    static RetryPolicy fromEnv();

    /** A policy that never retries (tests, fail-fast paths). */
    static RetryPolicy
    none()
    {
        return RetryPolicy{0, 0.0, 0.0};
    }
};

/** Sleep for (approximately) @p ms milliseconds. */
void sleepMs(double ms);

/**
 * Run @p fn, retrying up to policy.retries times when it throws a
 * transient IoError, with capped exponential backoff between attempts.
 * The last failure (or any non-retryable one) propagates to the caller.
 */
template <typename Fn>
auto
retryTransient(const RetryPolicy &policy, Fn &&fn) -> decltype(fn())
{
    double backoff = policy.backoffMs;
    for (int attempt = 0;; ++attempt) {
        try {
            return fn();
        } catch (const IoError &e) {
            if (!e.transient() || attempt >= policy.retries)
                throw;
        }
        if (backoff > 0.0)
            sleepMs(backoff);
        backoff = backoff * 2.0 > policy.maxBackoffMs ? policy.maxBackoffMs
                                                      : backoff * 2.0;
    }
}

} // namespace mm
