/**
 * @file
 * Wall-clock timing helper.
 */
#pragma once

#include <chrono>

namespace mm {

/** Monotonic stopwatch. */
class WallTimer
{
  public:
    WallTimer() : start(Clock::now()) {}

    /** Seconds since construction or the last reset. */
    double
    elapsedSec() const
    {
        return std::chrono::duration<double>(Clock::now() - start).count();
    }

    /** Restart the stopwatch. */
    void reset() { start = Clock::now(); }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

} // namespace mm
