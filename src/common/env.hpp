/**
 * @file
 * Environment-variable configuration knobs.
 *
 * Bench harnesses and examples scale their workloads through MM_* env
 * variables so the same binaries run both as quick smoke checks and at
 * paper scale (see DESIGN.md Section 5).
 */
#pragma once

#include <cstdint>
#include <string>

namespace mm {

/** Integer env var with default; throws FatalError on unparsable value. */
int64_t envInt(const std::string &name, int64_t fallback);

/** Double env var with default; throws FatalError on unparsable value. */
double envDouble(const std::string &name, double fallback);

/** String env var with default. */
std::string envStr(const std::string &name, const std::string &fallback);

} // namespace mm
