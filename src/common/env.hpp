/**
 * @file
 * Environment-variable configuration knobs.
 *
 * Bench harnesses and examples scale their workloads through MM_* env
 * variables so the same binaries run both as quick smoke checks and at
 * paper scale (see DESIGN.md Section 5).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mm {

/**
 * Integer env var with default. Anything but a full, in-range decimal
 * integer — trailing junk ("10k"), empty string, overflow — raises
 * FatalError naming the variable and the offending text; a knob is
 * never silently misparsed to a prefix, zero or a clamped extreme.
 */
int64_t envInt(const std::string &name, int64_t fallback);

/** Double env var with default; throws FatalError on unparsable value. */
double envDouble(const std::string &name, double fallback);

/**
 * Non-negative integer env var with default — for count/size knobs
 * (rows, shards, samples) where a negative value cast to size_t would
 * silently become astronomically large. Negative values raise
 * FatalError like any other malformed text.
 */
size_t envSize(const std::string &name, size_t fallback);

/**
 * Comma-separated list of non-negative integers with default (e.g.
 * MM_SIZES=3000,10000). Malformed or negative items raise FatalError
 * naming the variable and the item; empty items are ignored.
 */
std::vector<size_t> envSizeList(const std::string &name,
                                const std::vector<size_t> &fallback);

/** String env var with default. */
std::string envStr(const std::string &name, const std::string &fallback);

} // namespace mm
