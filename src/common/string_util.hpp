/**
 * @file
 * Small string helpers used across the library (GCC 12 lacks std::format).
 */
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace mm {

/** Concatenate all arguments with operator<< into a single string. */
template <typename... Args>
std::string
strCat(const Args &...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

/** Join the elements of @p items with @p sep. */
template <typename T>
std::string
join(const std::vector<T> &items, const std::string &sep)
{
    std::ostringstream oss;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            oss << sep;
        oss << items[i];
    }
    return oss.str();
}

/**
 * Split @p text on @p sep. Empty pieces (leading/trailing/doubled
 * separators) are preserved so callers can reject them explicitly; an
 * empty input yields no pieces.
 */
std::vector<std::string> split(const std::string &text, char sep);

/** Format a double with @p digits significant digits. */
std::string fmtDouble(double value, int digits = 4);

} // namespace mm
