#include "common/parallel_context.hpp"

#include <thread>

namespace mm {

ParallelContext::ParallelContext(size_t threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    laneCount = threads;
    if (laneCount > 1)
        tp = std::make_unique<ThreadPool>(laneCount);
}

} // namespace mm
