#include "common/retry.hpp"

#include <chrono>
#include <thread>

#include "common/env.hpp"

namespace mm {

RetryPolicy
RetryPolicy::fromEnv()
{
    RetryPolicy policy;
    const int64_t retries = envInt("MM_IO_RETRIES", policy.retries);
    policy.retries = retries < 0 ? 0 : int(retries);
    const int64_t backoff =
        envInt("MM_IO_BACKOFF_MS", int64_t(policy.backoffMs));
    policy.backoffMs = backoff < 0 ? 0.0 : double(backoff);
    if (policy.backoffMs > policy.maxBackoffMs)
        policy.maxBackoffMs = policy.backoffMs;
    return policy;
}

void
sleepMs(double ms)
{
    if (ms <= 0.0)
        return;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

} // namespace mm
