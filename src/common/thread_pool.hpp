/**
 * @file
 * Minimal blocking fork-join thread pool.
 *
 * parallelFor(n, fn) runs fn(i) for every i in [0, n) across the
 * workers plus the calling thread and returns when all indices have
 * finished. Indices must be independent: the parallel Phase-2 driver
 * keeps all randomness in per-chain streams precisely so that the
 * schedule the pool happens to pick cannot influence results — a fixed
 * seed is bitwise reproducible at any thread count.
 */
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"

namespace mm {

/** Fixed-size fork-join pool; one live job at a time. */
class ThreadPool
{
  public:
    /**
     * @param threads Total execution lanes including the calling
     *                thread; 0 selects hardware concurrency. One lane
     *                means no workers: parallelFor runs inline.
     */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution lanes (workers + the calling thread). */
    size_t lanes() const { return workers.size() + 1; }

    /**
     * Run fn(i) for every i in [0, n); blocks until all complete. The
     * first exception thrown by any index is rethrown here. Safe to
     * call from inside a job on the same pool (the nested call runs
     * inline on the calling thread) and from multiple external threads
     * at once (submissions serialize on the single job slot).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn)
        MM_EXCLUDES(mtx);

  private:
    void workerLoop() MM_EXCLUDES(mtx);

    /**
     * Claim and run indices until the job is drained. Enters and
     * leaves with mtx held; opens it around each fn(i) call.
     */
    void runIndices() MM_REQUIRES(mtx);

    std::vector<std::thread> workers; ///< immutable after construction
    Mutex mtx;
    CondVar workCv;
    CondVar doneCv;
    const std::function<void(size_t)> *jobFn MM_GUARDED_BY(mtx) = nullptr;
    size_t jobSize MM_GUARDED_BY(mtx) = 0;
    size_t nextIndex MM_GUARDED_BY(mtx) = 0;
    size_t inFlight MM_GUARDED_BY(mtx) = 0;
    std::exception_ptr firstError MM_GUARDED_BY(mtx);
    bool stopping MM_GUARDED_BY(mtx) = false;
};

/**
 * One background thread draining a FIFO of tasks — the asynchronous
 * complement to ThreadPool's fork-join parallelFor. Used where work
 * must overlap the submitter without changing its order: the streamed
 * Phase-1 generator commits shard N on this thread while labeling
 * shard N+1 (double buffering), and the shard reader warms upcoming
 * shards into its cache ahead of the training loop.
 *
 * Error contract: the first exception a task throws is captured, all
 * queued and subsequently submitted tasks are dropped, and the
 * exception is rethrown on the next submit()/throttle()/drain() — so a
 * failed background write cannot be silently lost. The exception
 * object itself is preserved (exception_ptr), so typed errors
 * (IoError, CorruptionError, ResourceError — common/error.hpp) from a
 * background shard commit or prefetch reach the drain point with their
 * path/errno/checksum payload intact, not flattened to text. The
 * destructor drains quietly (errors already observed or unobservable
 * there).
 */
class SerialWorker
{
  public:
    SerialWorker();
    ~SerialWorker();

    SerialWorker(const SerialWorker &) = delete;
    SerialWorker &operator=(const SerialWorker &) = delete;

    /** Enqueue @p task; rethrows a prior task's pending exception. */
    void submit(std::function<void()> task) MM_EXCLUDES(mtx);

    /**
     * Block until at most @p maxPending tasks are queued or running;
     * rethrows a prior task's pending exception. throttle(0) == drain.
     * A double-buffering producer calls throttle(1) before reusing a
     * buffer: at most the latest submission can still be in flight, so
     * every earlier buffer is free.
     */
    void throttle(size_t maxPending) MM_EXCLUDES(mtx);

    /** Block until the queue is empty and the worker idle; rethrows. */
    void drain() MM_EXCLUDES(mtx) { throttle(0); }

    /** Queued + running tasks (racy snapshot; for tests/heuristics). */
    size_t pending() const MM_EXCLUDES(mtx);

  private:
    void workerLoop() MM_EXCLUDES(mtx);

    mutable Mutex mtx;
    CondVar workCv;
    CondVar idleCv;
    std::deque<std::function<void()>> queue MM_GUARDED_BY(mtx);
    /** 0 or 1: the task currently executing. */
    size_t inFlight MM_GUARDED_BY(mtx) = 0;
    std::exception_ptr error MM_GUARDED_BY(mtx);
    bool stopping MM_GUARDED_BY(mtx) = false;
    std::thread worker;
};

} // namespace mm
