/**
 * @file
 * Minimal blocking fork-join thread pool.
 *
 * parallelFor(n, fn) runs fn(i) for every i in [0, n) across the
 * workers plus the calling thread and returns when all indices have
 * finished. Indices must be independent: the parallel Phase-2 driver
 * keeps all randomness in per-chain streams precisely so that the
 * schedule the pool happens to pick cannot influence results — a fixed
 * seed is bitwise reproducible at any thread count.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mm {

/** Fixed-size fork-join pool; one live job at a time. */
class ThreadPool
{
  public:
    /**
     * @param threads Total execution lanes including the calling
     *                thread; 0 selects hardware concurrency. One lane
     *                means no workers: parallelFor runs inline.
     */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution lanes (workers + the calling thread). */
    size_t lanes() const { return workers.size() + 1; }

    /**
     * Run fn(i) for every i in [0, n); blocks until all complete. The
     * first exception thrown by any index is rethrown here. Safe to
     * call from inside a job on the same pool (the nested call runs
     * inline on the calling thread) and from multiple external threads
     * at once (submissions serialize on the single job slot).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    void workerLoop();

    /** Claim and run indices until the job is drained (lock held). */
    void runIndices(std::unique_lock<std::mutex> &lock);

    std::vector<std::thread> workers;
    std::mutex mtx;
    std::condition_variable workCv;
    std::condition_variable doneCv;
    const std::function<void(size_t)> *jobFn = nullptr;
    size_t jobSize = 0;
    size_t nextIndex = 0;
    size_t inFlight = 0;
    std::exception_ptr firstError;
    bool stopping = false;
};

/**
 * One background thread draining a FIFO of tasks — the asynchronous
 * complement to ThreadPool's fork-join parallelFor. Used where work
 * must overlap the submitter without changing its order: the streamed
 * Phase-1 generator commits shard N on this thread while labeling
 * shard N+1 (double buffering), and the shard reader warms upcoming
 * shards into its cache ahead of the training loop.
 *
 * Error contract: the first exception a task throws is captured, all
 * queued and subsequently submitted tasks are dropped, and the
 * exception is rethrown on the next submit()/throttle()/drain() — so a
 * failed background write cannot be silently lost. The exception
 * object itself is preserved (exception_ptr), so typed errors
 * (IoError, CorruptionError, ResourceError — common/error.hpp) from a
 * background shard commit or prefetch reach the drain point with their
 * path/errno/checksum payload intact, not flattened to text. The
 * destructor drains quietly (errors already observed or unobservable
 * there).
 */
class SerialWorker
{
  public:
    SerialWorker();
    ~SerialWorker();

    SerialWorker(const SerialWorker &) = delete;
    SerialWorker &operator=(const SerialWorker &) = delete;

    /** Enqueue @p task; rethrows a prior task's pending exception. */
    void submit(std::function<void()> task);

    /**
     * Block until at most @p maxPending tasks are queued or running;
     * rethrows a prior task's pending exception. throttle(0) == drain.
     * A double-buffering producer calls throttle(1) before reusing a
     * buffer: at most the latest submission can still be in flight, so
     * every earlier buffer is free.
     */
    void throttle(size_t maxPending);

    /** Block until the queue is empty and the worker idle; rethrows. */
    void drain() { throttle(0); }

    /** Queued + running tasks (racy snapshot; for tests/heuristics). */
    size_t pending() const;

  private:
    void workerLoop();

    mutable std::mutex mtx;
    std::condition_variable workCv;
    std::condition_variable idleCv;
    std::deque<std::function<void()>> queue;
    size_t inFlight = 0; ///< 0 or 1: the task currently executing
    std::exception_ptr error;
    bool stopping = false;
    std::thread worker;
};

} // namespace mm
