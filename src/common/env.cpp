#include "common/env.hpp"

#include <cerrno>
#include <cstdlib>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace mm {

namespace {

const char *
rawEnv(const std::string &name)
{
    return std::getenv(name.c_str());
}

/**
 * Full-string decimal parse of @p text; fatal with @p name and the
 * offending text on trailing junk, empty input or overflow.
 */
int64_t
parseIntOrFatal(const std::string &name, const char *text)
{
    char *end = nullptr;
    errno = 0;
    int64_t value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0')
        fatal(strCat("env var ", name, "='", text, "' is not an integer"));
    if (errno == ERANGE)
        fatal(strCat("env var ", name, "='", text,
                     "' overflows a 64-bit integer"));
    return value;
}

} // namespace

int64_t
envInt(const std::string &name, int64_t fallback)
{
    const char *raw = rawEnv(name);
    if (raw == nullptr)
        return fallback;
    return parseIntOrFatal(name, raw);
}

double
envDouble(const std::string &name, double fallback)
{
    const char *raw = rawEnv(name);
    if (raw == nullptr)
        return fallback;
    char *end = nullptr;
    double value = std::strtod(raw, &end);
    if (end == raw || *end != '\0')
        fatal(strCat("env var ", name, "='", raw, "' is not a number"));
    return value;
}

size_t
envSize(const std::string &name, size_t fallback)
{
    const char *raw = rawEnv(name);
    if (raw == nullptr)
        return fallback;
    int64_t value = parseIntOrFatal(name, raw);
    if (value < 0)
        fatal(strCat("env var ", name, "='", raw,
                     "' must be non-negative"));
    return size_t(value);
}

std::vector<size_t>
envSizeList(const std::string &name, const std::vector<size_t> &fallback)
{
    const char *raw = rawEnv(name);
    if (raw == nullptr)
        return fallback;
    std::vector<size_t> out;
    for (const std::string &item : split(raw, ',')) {
        if (item.empty())
            continue;
        int64_t value = parseIntOrFatal(name, item.c_str());
        if (value < 0)
            fatal(strCat("env var ", name, " item '", item,
                         "' must be non-negative"));
        out.push_back(size_t(value));
    }
    return out;
}

std::string
envStr(const std::string &name, const std::string &fallback)
{
    const char *raw = rawEnv(name);
    return raw == nullptr ? fallback : std::string(raw);
}

} // namespace mm
