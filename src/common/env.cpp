#include "common/env.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace mm {

namespace {

const char *
rawEnv(const std::string &name)
{
    return std::getenv(name.c_str());
}

} // namespace

int64_t
envInt(const std::string &name, int64_t fallback)
{
    const char *raw = rawEnv(name);
    if (raw == nullptr)
        return fallback;
    char *end = nullptr;
    int64_t value = std::strtoll(raw, &end, 10);
    if (end == raw || *end != '\0')
        fatal(strCat("env var ", name, "='", raw, "' is not an integer"));
    return value;
}

double
envDouble(const std::string &name, double fallback)
{
    const char *raw = rawEnv(name);
    if (raw == nullptr)
        return fallback;
    char *end = nullptr;
    double value = std::strtod(raw, &end);
    if (end == raw || *end != '\0')
        fatal(strCat("env var ", name, "='", raw, "' is not a number"));
    return value;
}

std::string
envStr(const std::string &name, const std::string &fallback)
{
    const char *raw = rawEnv(name);
    return raw == nullptr ? fallback : std::string(raw);
}

} // namespace mm
