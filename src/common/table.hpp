/**
 * @file
 * Tabular stdout reporting for bench harnesses.
 *
 * Every figure/table bench prints its series through Table so output is
 * simultaneously human-readable (aligned columns) and machine-parseable
 * (a `# csv` block follows each table).
 */
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mm {

/** A small column-aligned table with CSV echo. */
class Table
{
  public:
    explicit Table(std::vector<std::string> columns);

    /** Append a pre-formatted row; must match the column count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a row of doubles with 5 significant digits. */
    void addRow(const std::string &label, const std::vector<double> &vals);

    /** Print aligned columns followed by a csv block. */
    void print(std::ostream &os, bool withCsv = true) const;

    size_t rowCount() const { return rows.size(); }

  private:
    std::vector<std::string> cols;
    std::vector<std::vector<std::string>> rows;
};

} // namespace mm
