/**
 * @file
 * Loop-order permutation helpers.
 *
 * A loop order over D dimensions is stored as `order[i] = dim at nest
 * position i` with position 0 outermost. The surrogate encodes an order as
 * per-dimension ranks (`rank[d] = position of dim d`), matching the
 * paper's Section 5.5 input representation; decoding arbitrary real-valued
 * scores back to a permutation is an argsort, so any gradient update still
 * decodes to a valid order.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace mm {

/** Uniformly random permutation of {0..n-1}. */
std::vector<int> randomPerm(int n, Rng &rng);

/** rank[d] = position of dim d in @p order. */
std::vector<int> ranksOf(std::span<const int> order);

/** Inverse of ranksOf. */
std::vector<int> orderFromRanks(std::span<const int> ranks);

/**
 * Decode real-valued per-dimension scores into an order: the dimension
 * with the smallest score becomes the outermost loop. Ties break on
 * dimension index (stable), so decoding is deterministic.
 */
std::vector<int> orderFromScores(std::span<const double> scores);

/** True iff @p order is a permutation of {0..n-1}. */
bool isPermutation(std::span<const int> order);

/** n! as a double (map-space size accounting; n is small). */
double factorial(int n);

} // namespace mm
