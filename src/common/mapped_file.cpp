#include "common/mapped_file.hpp"

#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define MM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MM_HAVE_MMAP 0
#endif

#include <cerrno>

#include "common/env.hpp"
#include "common/fault_injection.hpp"

namespace mm {

namespace {

/** Read the whole file into @p out; false on any I/O failure. */
bool
slurp(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    is.seekg(0, std::ios::end);
    const std::streamoff size = is.tellg();
    if (size < 0)
        return false;
    is.seekg(0);
    out.resize(size_t(size));
    is.read(out.data(), size);
    return bool(is) || size == 0;
}

void
setErrno(int *errnoOut, int value)
{
    if (errnoOut != nullptr)
        *errnoOut = value;
}

} // namespace

MappedFile::~MappedFile()
{
    release();
}

void
MappedFile::release()
{
#if MM_HAVE_MMAP
    if (mapped && data_ != nullptr)
        ::munmap(const_cast<char *>(data_), size_);
#endif
    data_ = nullptr;
    size_ = 0;
    mapped = false;
    fallback.clear();
}

MappedFile::MappedFile(MappedFile &&other) noexcept
{
    *this = std::move(other);
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this == &other)
        return *this;
    release();
    mapped = other.mapped;
    if (mapped) {
        data_ = other.data_;
        size_ = other.size_;
    } else {
        fallback = std::move(other.fallback);
        data_ = fallback.data();
        size_ = fallback.size();
    }
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped = false;
    other.fallback.clear();
    return *this;
}

std::optional<MappedFile>
MappedFile::open(const std::string &path, int *errnoOut)
{
    setErrno(errnoOut, 0);
    if (FaultInjector::armed()) {
        const int injected = FaultInjector::instance().onRead(path);
        if (injected != 0) {
            setErrno(errnoOut, injected);
            return std::nullopt;
        }
    }
    MappedFile mf;
#if MM_HAVE_MMAP
    if (envInt("MM_NO_MMAP", 0) == 0) {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd >= 0) {
            struct stat st{};
            if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
                if (st.st_size == 0) {
                    ::close(fd);
                    mf.mapped = true; // empty file: valid empty view
                    return mf;
                }
                void *addr = ::mmap(nullptr, size_t(st.st_size), PROT_READ,
                                    MAP_PRIVATE, fd, 0);
                ::close(fd);
                if (addr != MAP_FAILED) {
                    mf.data_ = static_cast<const char *>(addr);
                    mf.size_ = size_t(st.st_size);
                    mf.mapped = true;
                    return mf;
                }
                // mmap refused (exotic fs): fall through to the copy.
            } else {
                setErrno(errnoOut, errno != 0 ? errno : ENOTSUP);
                ::close(fd);
                return std::nullopt; // not a regular file
            }
        } else {
            setErrno(errnoOut, errno);
            return std::nullopt; // missing or unreadable
        }
    }
#endif
    errno = 0;
    if (!slurp(path, mf.fallback)) {
        setErrno(errnoOut, errno != 0 ? errno : EIO);
        return std::nullopt;
    }
    mf.data_ = mf.fallback.data();
    mf.size_ = mf.fallback.size();
    mf.mapped = false;
    return mf;
}

} // namespace mm
