#include "common/table.hpp"

#include <algorithm>
#include <iomanip>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace mm {

Table::Table(std::vector<std::string> columns) : cols(std::move(columns))
{
    MM_ASSERT(!cols.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    MM_ASSERT(cells.size() == cols.size(), "row/column arity mismatch");
    rows.push_back(std::move(cells));
}

void
Table::addRow(const std::string &label, const std::vector<double> &vals)
{
    MM_ASSERT(vals.size() + 1 == cols.size(), "row/column arity mismatch");
    std::vector<std::string> cells;
    cells.push_back(label);
    for (double v : vals)
        cells.push_back(fmtDouble(v, 5));
    addRow(std::move(cells));
}

void
Table::print(std::ostream &os, bool withCsv) const
{
    std::vector<size_t> width(cols.size());
    for (size_t c = 0; c < cols.size(); ++c)
        width[c] = cols[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < cols.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto line = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            os << std::left << std::setw(int(width[c]) + 2) << cells[c];
        os << "\n";
    };
    line(cols);
    for (const auto &row : rows)
        line(row);

    if (withCsv) {
        os << "# csv\n# " << join(cols, ",") << "\n";
        for (const auto &row : rows)
            os << "# " << join(row, ",") << "\n";
    }
    os.flush();
}

} // namespace mm
