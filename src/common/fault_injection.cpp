#include "common/fault_injection.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include "common/mutex.hpp"

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"

namespace mm {

namespace {

/** "key=value" of one clause body; FatalError on malformed text. */
std::pair<std::string, std::string>
splitKeyValue(const std::string &body, const std::string &clause)
{
    const size_t eq = body.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= body.size())
        fatal("MM_FAULTS clause '" + clause
              + "': expected <kind>:<key>=<value>");
    return {body.substr(0, eq), body.substr(eq + 1)};
}

double
parseProbability(const std::string &text, const std::string &clause)
{
    size_t used = 0;
    double p = 0.0;
    try {
        p = std::stod(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != text.size() || !(p >= 0.0) || !(p <= 1.0))
        fatal("MM_FAULTS clause '" + clause + "': probability '" + text
              + "' is not in [0, 1]");
    return p;
}

} // namespace

uint64_t
parseByteSize(const std::string &text, const std::string &context)
{
    size_t used = 0;
    unsigned long long value = 0;
    try {
        value = std::stoull(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used == 0)
        fatal(context + ": byte size '" + text + "' is not a number");
    std::string suffix = text.substr(used);
    std::transform(suffix.begin(), suffix.end(), suffix.begin(),
                   [](unsigned char c) { return char(std::toupper(c)); });
    uint64_t mult = 1;
    if (suffix.empty() || suffix == "B")
        mult = 1;
    else if (suffix == "KB" || suffix == "K")
        mult = uint64_t(1) << 10;
    else if (suffix == "MB" || suffix == "M")
        mult = uint64_t(1) << 20;
    else if (suffix == "GB" || suffix == "G")
        mult = uint64_t(1) << 30;
    else
        fatal(context + ": unknown size suffix '" + suffix + "' in '"
              + text + "'");
    if (value != 0 && uint64_t(value) > FaultPlan::kNoLimit / mult)
        fatal(context + ": byte size '" + text + "' overflows");
    return uint64_t(value) * mult;
}

FaultPlan
parseFaultPlan(const std::string &spec, uint64_t seed)
{
    FaultPlan plan;
    plan.seed = seed;
    for (const std::string &clause : split(spec, ',')) {
        if (clause.empty())
            continue;
        const size_t colon = clause.find(':');
        if (colon == std::string::npos)
            fatal("MM_FAULTS clause '" + clause
                  + "': expected <kind>:<key>=<value>");
        const std::string kind = clause.substr(0, colon);
        auto [key, value] = splitKeyValue(clause.substr(colon + 1), clause);
        if (kind == "write" && key == "p") {
            plan.writeP = parseProbability(value, clause);
        } else if (kind == "read" && key == "p") {
            plan.readP = parseProbability(value, clause);
        } else if (kind == "enospc" && key == "after") {
            plan.enospcAfterBytes =
                parseByteSize(value, "MM_FAULTS clause '" + clause + "'");
        } else if (kind == "flip" && key == "shard") {
            size_t used = 0;
            unsigned long long idx = 0;
            try {
                idx = std::stoull(value, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != value.size())
                fatal("MM_FAULTS clause '" + clause + "': shard index '"
                      + value + "' is not an integer");
            plan.flipShards.push_back(size_t(idx));
        } else {
            fatal("MM_FAULTS clause '" + clause + "': unknown fault '"
                  + kind + ":" + key
                  + "' (known: write:p, read:p, enospc:after, flip:shard)");
        }
    }
    // One flip per listed shard; duplicates would make healing loop.
    std::sort(plan.flipShards.begin(), plan.flipShards.end());
    plan.flipShards.erase(
        std::unique(plan.flipShards.begin(), plan.flipShards.end()),
        plan.flipShards.end());
    return plan;
}

std::optional<size_t>
shardIndexOfPath(const std::string &path)
{
    // Match the tail "shard-NNNNNN.mms" (any NNNNNN width >= 1).
    const size_t slash = path.find_last_of('/');
    const std::string name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::string prefix = "shard-";
    const std::string suffix = ".mms";
    if (name.size() <= prefix.size() + suffix.size()
        || name.compare(0, prefix.size(), prefix) != 0
        || name.compare(name.size() - suffix.size(), suffix.size(), suffix)
               != 0)
        return std::nullopt;
    const std::string digits = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    size_t used = 0;
    unsigned long long idx = 0;
    try {
        idx = std::stoull(digits, &used);
    } catch (const std::exception &) {
        return std::nullopt;
    }
    if (used != digits.size())
        return std::nullopt;
    return size_t(idx);
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::ensureEnvInit()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const std::string spec = envStr("MM_FAULTS", "");
        if (spec.empty())
            return;
        instance().configure(
            parseFaultPlan(spec, envSize("MM_FAULT_SEED", 1)));
    });
}

void
FaultInjector::configure(FaultPlan newPlan)
{
    MutexLock lock(m);
    plan = std::move(newPlan);
    rng = Rng(plan.seed);
    committedBytes = 0;
    flipsPending = plan.flipShards;
    writeFaults = readFaults = flips = 0;
    armedFlag.store(!plan.empty(), std::memory_order_relaxed);
}

void
FaultInjector::configureFromEnv()
{
    const std::string spec = envStr("MM_FAULTS", "");
    configure(spec.empty()
                  ? FaultPlan{}
                  : parseFaultPlan(spec, envSize("MM_FAULT_SEED", 1)));
}

void
FaultInjector::disarm()
{
    configure(FaultPlan{});
}

int
FaultInjector::onWrite(const std::string &path, uint64_t bytes)
{
    (void)path;
    MutexLock lock(m);
    if (plan.empty())
        return 0;
    // The byte budget models a filling disk: once crossed, every
    // commit sees ENOSPC until the plan is reset — sticky, like the
    // real condition.
    if (plan.enospcAfterBytes != FaultPlan::kNoLimit) {
        if (committedBytes + bytes > plan.enospcAfterBytes)
            return ENOSPC;
        committedBytes += bytes;
    }
    if (plan.writeP > 0.0 && rng.bernoulli(plan.writeP)) {
        ++writeFaults;
        return EIO;
    }
    return 0;
}

int
FaultInjector::onRead(const std::string &path)
{
    (void)path;
    MutexLock lock(m);
    if (plan.readP > 0.0 && rng.bernoulli(plan.readP)) {
        ++readFaults;
        return EIO;
    }
    return 0;
}

bool
FaultInjector::shouldFlipCommittedByte(const std::string &path)
{
    const std::optional<size_t> idx = shardIndexOfPath(path);
    if (!idx.has_value())
        return false;
    MutexLock lock(m);
    auto it = std::find(flipsPending.begin(), flipsPending.end(), *idx);
    if (it == flipsPending.end())
        return false;
    flipsPending.erase(it);
    ++flips;
    return true;
}

uint64_t
FaultInjector::injectedWriteFaults() const
{
    MutexLock lock(m);
    return writeFaults;
}

uint64_t
FaultInjector::injectedReadFaults() const
{
    MutexLock lock(m);
    return readFaults;
}

uint64_t
FaultInjector::injectedFlips() const
{
    MutexLock lock(m);
    return flips;
}

} // namespace mm
