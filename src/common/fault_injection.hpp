/**
 * @file
 * Deterministic fault injection for the storage stack.
 *
 * A serving system's fault handling is only trustworthy if faults can
 * be produced on demand, deterministically, in CI. This module turns a
 * seeded fault plan into injection hooks threaded through the durable
 * I/O paths (commitFileAtomic, MappedFile/shard reads, the surrogate
 * cache), so the retry, quarantine and degradation machinery is driven
 * by the exact same code paths real faults take.
 *
 * Plan grammar (MM_FAULTS, comma-separated clauses):
 *
 *   write:p=0.01       each atomic file commit fails (transient EIO)
 *                      with probability p; retries redraw.
 *   read:p=0.05        each file open for reading fails (transient EIO)
 *                      with probability p; retries redraw.
 *   enospc:after=200MB once this many bytes have been committed, every
 *                      further commit fails with ENOSPC (sticky — the
 *                      "disk" stays full). Sizes take B/KB/MB/GB
 *                      suffixes (powers of 1024; bare numbers = bytes).
 *   flip:shard=3       one byte of shard-000003's committed file is
 *                      flipped (once), so its checksum verification
 *                      fails at read time — the quarantine-and-
 *                      regenerate trigger.
 *
 * Determinism: all probabilistic draws come from one seeded Rng
 * (MM_FAULT_SEED, default 1). With a serial I/O schedule the faulted
 * operation sequence is exactly reproducible; under concurrency the
 * draw order follows the thread interleaving, but the recovery
 * machinery guarantees byte-identical *outcomes* either way — that is
 * what the chaos suite asserts.
 *
 * Cost when disabled: every hook starts with a single relaxed atomic
 * load that is false unless a plan was armed, so un-faulted builds and
 * runs pay one predictable branch per I/O operation and nothing on
 * compute paths.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/rng.hpp"

namespace mm {

/** A parsed fault plan (empty = inject nothing). */
struct FaultPlan
{
    /** Probability each file commit fails with a transient EIO. */
    double writeP = 0.0;
    /** Probability each file open-for-read fails with a transient EIO. */
    double readP = 0.0;
    /** Committed-byte budget after which commits fail with ENOSPC. */
    uint64_t enospcAfterBytes = kNoLimit;
    /** Shard indices whose committed file gets one byte flipped. */
    std::vector<size_t> flipShards;
    /** Seed of the fault RNG. */
    uint64_t seed = 1;

    static constexpr uint64_t kNoLimit = ~uint64_t(0);

    bool
    empty() const
    {
        return writeP <= 0.0 && readP <= 0.0
               && enospcAfterBytes == kNoLimit && flipShards.empty();
    }
};

/**
 * Parse an MM_FAULTS-style spec ("write:p=0.01,enospc:after=200MB").
 * Raises FatalError naming the offending clause on malformed input.
 */
FaultPlan parseFaultPlan(const std::string &spec, uint64_t seed = 1);

/**
 * Parse a byte size with optional B/KB/MB/GB suffix ("200MB", "4096").
 * Raises FatalError (citing @p context) on malformed input.
 */
uint64_t parseByteSize(const std::string &text, const std::string &context);

/**
 * Process-wide fault injector the I/O hooks consult. Disarmed unless a
 * plan was installed via configure() or the MM_FAULTS env var (read
 * once, on the first hook evaluation).
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /**
     * True when a non-empty plan is armed. The first call initializes
     * from MM_FAULTS/MM_FAULT_SEED; afterwards it is one relaxed load.
     */
    static bool
    armed()
    {
        ensureEnvInit();
        return armedFlag.load(std::memory_order_relaxed);
    }

    /** Install @p plan (tests); an empty plan disarms. */
    void configure(FaultPlan plan) MM_EXCLUDES(m);

    /** Re-read MM_FAULTS/MM_FAULT_SEED (tests). */
    void configureFromEnv() MM_EXCLUDES(m);

    /** Drop any armed plan and reset counters/flip state. */
    void disarm() MM_EXCLUDES(m);

    /**
     * Write hook: called once per atomic file commit with the target
     * path and the committed byte count. Returns the errno to inject
     * (EIO for a transient write fault, ENOSPC past the byte budget)
     * or 0 to let the commit proceed.
     */
    int onWrite(const std::string &path, uint64_t bytes) MM_EXCLUDES(m);

    /**
     * Read hook: called once per file open on the verified read paths.
     * Returns the errno to inject (EIO) or 0.
     */
    int onRead(const std::string &path) MM_EXCLUDES(m);

    /**
     * Flip hook: true when @p path is a shard file named by a
     * flip:shard clause that has not fired yet. The caller flips one
     * byte of the committed bytes; each listed shard fires once.
     */
    bool shouldFlipCommittedByte(const std::string &path) MM_EXCLUDES(m);

    /** Total faults injected so far (tests/diagnostics). */
    uint64_t injectedWriteFaults() const MM_EXCLUDES(m);
    uint64_t injectedReadFaults() const MM_EXCLUDES(m);
    uint64_t injectedFlips() const MM_EXCLUDES(m);

  private:
    FaultInjector() = default;
    static void ensureEnvInit();

    inline static std::atomic<bool> armedFlag{false};

    mutable Mutex m;
    FaultPlan plan MM_GUARDED_BY(m);
    Rng rng MM_GUARDED_BY(m) = Rng(1);
    uint64_t committedBytes MM_GUARDED_BY(m) = 0;
    std::vector<size_t> flipsPending MM_GUARDED_BY(m);
    uint64_t writeFaults MM_GUARDED_BY(m) = 0;
    uint64_t readFaults MM_GUARDED_BY(m) = 0;
    uint64_t flips MM_GUARDED_BY(m) = 0;
};

/**
 * The shard index encoded in a "shard-NNNNNN.mms" file name, if @p path
 * names one (used to match flip:shard clauses; exposed for tests).
 */
std::optional<size_t> shardIndexOfPath(const std::string &path);

} // namespace mm
