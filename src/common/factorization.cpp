#include "common/factorization.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include "common/mutex.hpp"
#include <tuple>

#include "common/string_util.hpp"

namespace mm {

std::vector<int64_t>
divisors(int64_t n)
{
    MM_ASSERT(n >= 1, "divisors of non-positive number");
    std::vector<int64_t> small, large;
    for (int64_t d = 1; d * d <= n; ++d) {
        if (n % d == 0) {
            small.push_back(d);
            if (d != n / d)
                large.push_back(n / d);
        }
    }
    small.insert(small.end(), large.rbegin(), large.rend());
    return small;
}

FactorizationTable::FactorizationTable(int64_t bound_, int slots_,
                                       int64_t maxFactor_)
    : bound(bound_), slots(slots_),
      padLimit(bound_ == 1
                   ? 1
                   : bound_ + std::max<int64_t>(1, bound_ / 4))
{
    maxFactor = maxFactor_ > 0 ? std::min(maxFactor_, padLimit) : padLimit;
    MM_ASSERT(bound >= 1, "bound must be positive");
    MM_ASSERT(slots >= 1, "slots must be positive");

    // Divisor lists for every possible product value.
    divs.resize(size_t(padLimit) + 1);
    for (int64_t d = 1; d <= padLimit; ++d)
        for (int64_t p = d; p <= padLimit; p += d)
            divs[size_t(p)].push_back(int32_t(d));

    // ways[s][p]: ordered s-tuples of factors in [1, maxFactor] with
    // product exactly p.
    ways.assign(size_t(slots) + 1,
                std::vector<int64_t>(size_t(padLimit) + 1, 0));
    ways[0][1] = 1;
    for (int s = 1; s <= slots; ++s) {
        for (int64_t p = 1; p <= padLimit; ++p) {
            int64_t acc = 0;
            for (int32_t f : divs[size_t(p)]) {
                if (f > maxFactor)
                    break;
                acc += ways[size_t(s) - 1][size_t(p / f)];
            }
            ways[size_t(s)][size_t(p)] = acc;
        }
    }

    total = 0;
    for (int64_t p = bound; p <= padLimit; ++p)
        total += ways[size_t(slots)][size_t(p)];
    MM_ASSERT(total > 0, strCat("no legal factorization for bound=", bound,
                                " slots=", slots));
}

std::vector<int64_t>
FactorizationTable::sample(Rng &rng) const
{
    // Pick the product proportionally to its tuple count, then unwind the
    // DP to pick each factor with the correct conditional probability.
    int64_t target = rng.uniformInt(0, total - 1);
    int64_t product = bound;
    for (int64_t p = bound; p <= padLimit; ++p) {
        int64_t w = ways[size_t(slots)][size_t(p)];
        if (target < w) {
            product = p;
            break;
        }
        target -= w;
    }

    std::vector<int64_t> factors(size_t(slots), 1);
    int64_t rem = product;
    for (int s = slots; s >= 1; --s) {
        int64_t w = ways[size_t(s)][size_t(rem)];
        int64_t t = rng.uniformInt(0, w - 1);
        for (int32_t f : divs[size_t(rem)]) {
            if (f > maxFactor)
                break;
            int64_t sub = ways[size_t(s) - 1][size_t(rem / f)];
            if (t < sub) {
                factors[size_t(s) - 1] = f;
                rem /= f;
                break;
            }
            t -= sub;
        }
    }
    MM_ASSERT(rem == 1, "factor sampling failed to consume product");
    return factors;
}

bool
FactorizationTable::contains(std::span<const int64_t> factors) const
{
    if (int(factors.size()) != slots)
        return false;
    int64_t product = 1;
    for (int64_t f : factors) {
        if (f < 1 || f > maxFactor)
            return false;
        product *= f;
        if (product > padLimit)
            return false;
    }
    return product >= bound && product <= padLimit;
}

std::vector<int64_t>
FactorizationTable::repair(std::span<const int64_t> factors,
                           int adjustSlot) const
{
    MM_ASSERT(adjustSlot >= 0 && adjustSlot < slots, "bad adjust slot");
    std::vector<int64_t> clamped(factors.begin(), factors.end());
    clamped.resize(size_t(slots), 1);
    for (auto &f : clamped)
        f = std::clamp<int64_t>(f, 1, maxFactor);
    if (contains(clamped))
        return clamped;

    // Choose the legal target product closest (in log space) to the
    // clamped tuple's product; ways[slots][q] > 0 guarantees the greedy
    // slot-by-slot reconstruction below cannot get stuck.
    double logP = 0.0;
    for (int64_t f : clamped)
        logP += std::log(double(f));
    int64_t target = -1;
    double bestDist = std::numeric_limits<double>::infinity();
    for (int64_t q = bound; q <= padLimit; ++q) {
        if (ways[size_t(slots)][size_t(q)] == 0)
            continue;
        double dist = std::fabs(std::log(double(q)) - logP);
        if (dist < bestDist) {
            bestDist = dist;
            target = q;
        }
    }
    MM_ASSERT(target > 0, "no feasible product in the pad window");

    // Greedily rebuild each slot near its clamped value, preferring to
    // spend the adjustment on adjustSlot by fixing it last.
    std::vector<int> slotOrder;
    for (int s = 0; s < slots; ++s)
        if (s != adjustSlot)
            slotOrder.push_back(s);
    slotOrder.push_back(adjustSlot);

    std::vector<int64_t> fixed(size_t(slots), 1);
    int64_t rem = target;
    for (size_t i = 0; i < slotOrder.size(); ++i) {
        int slot = slotOrder[i];
        int remainingSlots = int(slotOrder.size() - i) - 1;
        int64_t bestF = -1;
        double bestD = std::numeric_limits<double>::infinity();
        for (int32_t f : divs[size_t(rem)]) {
            if (f > maxFactor)
                break;
            if (remainingSlots > 0
                && ways[size_t(remainingSlots)][size_t(rem / f)] == 0)
                continue;
            if (remainingSlots == 0 && rem / f != 1)
                continue;
            double d = std::fabs(std::log(double(f))
                                 - std::log(double(clamped[size_t(slot)])));
            if (d < bestD) {
                bestD = d;
                bestF = f;
            }
        }
        MM_ASSERT(bestF > 0, "repair reconstruction stuck");
        fixed[size_t(slot)] = bestF;
        rem /= bestF;
    }
    MM_ASSERT(rem == 1 && contains(fixed),
              "repair produced illegal factorization");
    return fixed;
}

namespace {

/**
 * Process-wide factorization-table cache. Guarded by a mutex (and
 * compiler-checked as such): dataset-labeling lanes and batched
 * searchers sample concurrently, and the first draw for a new bound
 * may land on any lane. std::map never invalidates node references, so
 * a returned reference stays valid unguarded for program lifetime; hot
 * paths (CostTables) resolve their tables once and keep the pointers.
 */
struct FactorTableCache
{
    Mutex mtx;
    std::map<std::tuple<int64_t, int, int64_t>, FactorizationTable>
        entries MM_GUARDED_BY(mtx);
};

FactorTableCache &
factorCache()
{
    static FactorTableCache cache;
    return cache;
}

} // namespace

const FactorizationTable &
factorTable(int64_t bound, int slots, int64_t maxFactor)
{
    FactorTableCache &cache = factorCache();
    auto key = std::make_tuple(bound, slots, maxFactor);
    MutexLock lock(cache.mtx);
    auto it = cache.entries.find(key);
    if (it == cache.entries.end()) {
        it = cache.entries
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(key),
                          std::forward_as_tuple(bound, slots, maxFactor))
                 .first;
    }
    return it->second;
}

} // namespace mm
