#include "common/error.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/string_util.hpp"

namespace mm {

namespace {

/**
 * strerror_r has two incompatible signatures (XSI returns int, GNU
 * returns char*); these overloads normalize whichever the libc picked.
 */
[[maybe_unused]] const char *
strerrorResult(const char *r, const char *)
{
    return r;
}

[[maybe_unused]] const char *
strerrorResult(int r, const char *buf)
{
    return r == 0 ? buf : "Unknown error";
}

std::string
ioMessage(const std::string &path, const std::string &sysCall,
          int errnoValue, const std::string &detail)
{
    std::string msg = strCat("I/O error: ", sysCall, " '", path, "': ",
                             errnoText(errnoValue));
    if (!detail.empty())
        msg += strCat(" (", detail, ")");
    return msg;
}

const char *
kindName(CorruptionError::Kind kind)
{
    switch (kind) {
      case CorruptionError::Kind::ShortRead:
        return "short read";
      case CorruptionError::Kind::ChecksumMismatch:
        return "checksum mismatch";
      case CorruptionError::Kind::BadHeader:
        return "bad header";
    }
    return "corruption";
}

std::string
corruptionMessage(const std::string &path, CorruptionError::Kind kind,
                  const std::string &detail, uint64_t expected,
                  uint64_t actual)
{
    std::string msg =
        strCat("corruption (", kindName(kind), ") in '", path, "'");
    if (!detail.empty())
        msg += strCat(": ", detail);
    if (kind == CorruptionError::Kind::ChecksumMismatch
        && (expected != 0 || actual != 0))
        msg += strCat(" [expected checksum ", expected, ", got ", actual,
                      "]");
    return msg;
}

std::string
resourceMessage(const std::string &resource, const std::string &detail,
                int errnoValue)
{
    std::string msg = strCat("resource exhausted (", resource, ")");
    if (!detail.empty())
        msg += strCat(": ", detail);
    if (errnoValue != 0)
        msg += strCat(" [", errnoText(errnoValue), "]");
    return msg;
}

} // namespace

std::string
errnoText(int errnoValue)
{
    if (errnoValue == 0)
        return "Success";
    char buf[256] = {0};
    return strerrorResult(strerror_r(errnoValue, buf, sizeof(buf)), buf);
}

IoError::IoError(std::string path, std::string sysCall, int errnoValue,
                 const std::string &detail)
    : FatalError(ioMessage(path, sysCall, errnoValue, detail)),
      path_(std::move(path)), sysCall_(std::move(sysCall)),
      errno_(errnoValue)
{}

bool
IoError::transient() const
{
    switch (errno_) {
      case EINTR:
      case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
      case EWOULDBLOCK:
#endif
      case EIO:
      case EBUSY:
      case ETIMEDOUT:
        return true;
      default:
        return false;
    }
}

CorruptionError::CorruptionError(std::string path, Kind kind,
                                 const std::string &detail,
                                 uint64_t expectedChecksum,
                                 uint64_t actualChecksum)
    : FatalError(corruptionMessage(path, kind, detail, expectedChecksum,
                                   actualChecksum)),
      path_(std::move(path)), kind_(kind), expected_(expectedChecksum),
      actual_(actualChecksum)
{}

ResourceError::ResourceError(std::string resource, const std::string &detail,
                             int errnoValue)
    : FatalError(resourceMessage(resource, detail, errnoValue)),
      resource_(std::move(resource)), errno_(errnoValue)
{}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panicImpl(const char *file, int line, const char *cond,
          const std::string &msg)
{
    std::cerr << "panic: " << file << ":" << line << ": assertion `" << cond
              << "' failed: " << msg << std::endl;
    std::abort();
}

} // namespace mm
