#include "common/error.hpp"

#include <cstdlib>
#include <iostream>

namespace mm {

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panicImpl(const char *file, int line, const char *cond,
          const std::string &msg)
{
    std::cerr << "panic: " << file << ":" << line << ": assertion `" << cond
              << "' failed: " << msg << std::endl;
    std::abort();
}

} // namespace mm
