/**
 * @file
 * Integer-factorization machinery for tile-size map spaces.
 *
 * A loop dimension of size `bound` is split across `slots` loop levels
 * (e.g. L1-temporal, spatial, L2-temporal, DRAM-temporal) as an ordered
 * tuple of integer factors. Following Timeloop's imperfect-factor handling,
 * a tuple is legal when the product lies in [bound, bound + max(1,
 * bound/4)]: mildly over-approximate ("padded") factorizations are
 * permitted — the ceil-division semantics of Timeloop's imperfect
 * factors — and the cost model charges for the padded iteration space.
 *
 * FactorizationTable precomputes a dynamic-programming count of legal
 * tuples which supports exactly-uniform sampling and map-space size
 * estimation. Tables are memoized globally (keyed by bound/slots), since
 * dataset generation draws millions of tuples.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace mm {

/** All divisors of @p n in increasing order. */
std::vector<int64_t> divisors(int64_t n);

/**
 * Counting and uniform sampling of ordered factor tuples.
 *
 * Legal tuple: `slots` integers, each in [1, maxFactor], whose product p
 * satisfies bound <= p <= padLimit, where padLimit is bound + max(1,
 * bound/4) (and bound itself when bound == 1).
 */
class FactorizationTable
{
  public:
    /**
     * Build the DP table.
     *
     * @param bound     The loop-dimension size (>= 1).
     * @param slots     Number of loop levels the dimension splits across.
     * @param maxFactor Per-factor upper limit; defaults to the pad limit
     *                  (repair operations move whole factors between
     *                  slots, so a single slot may carry the full padded
     *                  bound).
     */
    FactorizationTable(int64_t bound, int slots, int64_t maxFactor = -1);

    /** Number of legal ordered tuples. */
    int64_t count() const { return total; }

    /** Draw a legal tuple exactly uniformly at random. */
    std::vector<int64_t> sample(Rng &rng) const;

    /** True iff @p factors is a legal tuple for this table. */
    bool contains(std::span<const int64_t> factors) const;

    /**
     * Deterministically repair an arbitrary positive tuple into a legal
     * one, preserving the input as closely as possible (used by
     * map-space projection). Factors are first clamped into
     * [1, maxFactor]; then the product is pulled into range by scaling
     * the designated @p adjustSlot (outermost level by convention).
     */
    std::vector<int64_t> repair(std::span<const int64_t> factors,
                                int adjustSlot) const;

    int64_t boundValue() const { return bound; }
    int slotCount() const { return slots; }
    int64_t maxFactorValue() const { return maxFactor; }
    int64_t padLimitValue() const { return padLimit; }

  private:
    int64_t bound;
    int slots;
    int64_t maxFactor;
    int64_t padLimit;
    int64_t total;
    /** ways[s][p] = #ordered s-tuples with product exactly p. */
    std::vector<std::vector<int64_t>> ways;
    /** Divisor lists for all p in [1, padLimit]. */
    std::vector<std::vector<int32_t>> divs;
};

/**
 * Global memoized access to factorization tables.
 *
 * Thread-safe: lookups serialize on an internal mutex (labeling lanes
 * and batched searchers sample concurrently). The returned reference
 * stays valid for program lifetime; hot paths should resolve it once
 * per dimension and keep the pointer (as CostTables does) instead of
 * re-entering the lock.
 */
const FactorizationTable &factorTable(int64_t bound, int slots,
                                      int64_t maxFactor = -1);

} // namespace mm
