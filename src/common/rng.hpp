/**
 * @file
 * Deterministic random-number generation.
 *
 * All stochastic components (samplers, searchers, NN init) draw from an
 * explicitly threaded Rng so that every experiment is reproducible from a
 * single seed.
 */
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace mm {

/** A seeded Mersenne-Twister stream with convenience draws. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : gen(seed) {}

    /** Next raw 64-bit draw. */
    uint64_t raw() { return gen(); }

    /** Uniform integer in [lo, hi], inclusive on both ends. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        MM_ASSERT(lo <= hi, "empty integer range");
        return std::uniform_int_distribution<int64_t>(lo, hi)(gen);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo = 0.0, double hi = 1.0)
    {
        return std::uniform_real_distribution<double>(lo, hi)(gen);
    }

    /** Gaussian draw. */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        return std::normal_distribution<double>(mean, stddev)(gen);
    }

    /** Bernoulli draw with success probability @p p. */
    bool bernoulli(double p) { return uniformReal() < p; }

    /** Uniformly pick an element of @p v. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        MM_ASSERT(!v.empty(), "pick from empty vector");
        return v[static_cast<size_t>(uniformInt(0, int64_t(v.size()) - 1))];
    }

    /** Fisher-Yates shuffle of @p v. */
    template <typename T>
    void
    shuffle(std::span<T> v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(uniformInt(0, int64_t(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        shuffle(std::span<T>(v));
    }

    /**
     * Seed of the next child stream (splitmix-style mixing). Lets
     * callers store millions of pending forks as 8-byte seeds instead
     * of full engine states; Rng(forkSeed()) == fork() bitwise.
     */
    uint64_t
    forkSeed()
    {
        uint64_t s = raw();
        s ^= s >> 30;
        s *= 0xbf58476d1ce4e5b9ULL;
        s ^= s >> 27;
        return s;
    }

    /** Derive an independent child stream (splitmix-style mixing). */
    Rng fork() { return Rng(forkSeed()); }

    /** Access the underlying engine (for std::distributions). */
    std::mt19937_64 &engine() { return gen; }

  private:
    std::mt19937_64 gen;
};

} // namespace mm
