/**
 * @file
 * Read-only memory-mapped file views.
 *
 * The out-of-core storage layer (core/shard_store.hpp) and the on-disk
 * surrogate cache (core/cache.hpp) both verify a checksummed envelope
 * and then deserialize a large float payload. Reading through
 * std::ifstream copies every byte at least twice (kernel -> stream
 * buffer -> body string) before the payload lands in its Matrix; a
 * read-only mmap exposes the page cache directly, so the checksum pass
 * and the payload memcpy each touch the bytes exactly once.
 *
 * Portability: when mmap is unavailable (non-POSIX build), fails at
 * runtime (e.g. a filesystem without mmap support), or is disabled via
 * MM_NO_MMAP=1, MappedFile transparently falls back to reading the file
 * into a heap buffer — callers see the same bytes() span either way and
 * never need to branch on the mechanism.
 */
#pragma once

#include <cstddef>
#include <istream>
#include <optional>
#include <span>
#include <streambuf>
#include <string>

namespace mm {

/** An immutable whole-file byte view (mmap when possible). */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Open @p path read-only. Returns std::nullopt when the file is
     * missing or unreadable (never throws for I/O errors — callers
     * treat that exactly like a missing file). When @p errnoOut is
     * non-null it receives the errno of the failed syscall (0 on
     * success), so callers can distinguish a genuinely missing file
     * (ENOENT) from a flaky medium (EIO) and retry the latter.
     * Injected read faults (fault_injection.hpp) surface here as EIO.
     */
    static std::optional<MappedFile> open(const std::string &path,
                                          int *errnoOut = nullptr);

    /** The file's bytes; valid for the lifetime of this object. */
    std::span<const char> bytes() const { return {data_, size_}; }

    /** True when the view is an actual mmap (false = heap fallback). */
    bool isMapped() const { return mapped; }

  private:
    const char *data_ = nullptr;
    size_t size_ = 0;
    bool mapped = false;
    std::string fallback; ///< owns the bytes when !mapped

    void release();
};

/**
 * std::istream over external bytes it does not own — the glue that lets
 * existing stream-based deserializers (Normalizer::load, Mlp::load)
 * read straight out of a MappedFile with zero intermediate copies.
 * The bytes must outlive the stream.
 */
class MemoryIStream : private std::streambuf, public std::istream
{
  public:
    explicit MemoryIStream(std::span<const char> bytes)
        : std::istream(static_cast<std::streambuf *>(this))
    {
        char *base = const_cast<char *>(bytes.data());
        setg(base, base, base + bytes.size());
    }

  protected:
    /** Support tellg/seekg — readChecksummedBlob seeks to bound sizes. */
    std::streambuf::pos_type
    seekoff(std::streambuf::off_type off, std::ios_base::seekdir dir,
            std::ios_base::openmode which) override
    {
        using pos_type = std::streambuf::pos_type;
        using off_type = std::streambuf::off_type;
        if (!(which & std::ios_base::in))
            return pos_type(off_type(-1));
        char *base = eback();
        off_type size = egptr() - base;
        off_type target = off;
        if (dir == std::ios_base::cur)
            target = (gptr() - base) + off;
        else if (dir == std::ios_base::end)
            target = size + off;
        if (target < 0 || target > size)
            return pos_type(off_type(-1));
        setg(base, base + target, base + size);
        return pos_type(target);
    }

    std::streambuf::pos_type
    seekpos(std::streambuf::pos_type pos,
            std::ios_base::openmode which) override
    {
        return seekoff(std::streambuf::off_type(pos), std::ios_base::beg,
                       which);
    }
};

} // namespace mm
