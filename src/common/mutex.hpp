/**
 * @file
 * Capability-annotated locking primitives.
 *
 * libstdc++'s std::mutex / std::lock_guard / std::condition_variable
 * carry no thread-safety attributes, so clang's capability analysis
 * cannot see a std::lock_guard acquire anything — every MM_GUARDED_BY
 * access under one would be a false positive. These wrappers restore
 * visibility:
 *
 *   Mutex      an annotated std::mutex (MM_CAPABILITY). Fields guarded
 *              by one are declared `T f MM_GUARDED_BY(m);`.
 *   MutexLock  the annotated scoped holder (MM_SCOPED_CAPABILITY), with
 *              relock support (unlock()/lock()) for code that opens the
 *              lock around a long operation — the analysis tracks the
 *              open window and flags guarded accesses inside it.
 *   CondVar    a condition variable waiting on a Mutex. wait() is
 *              MM_REQUIRES(m): the analysis enforces the caller holds
 *              the mutex, and treats the wait's internal unlock/relock
 *              as a net no-op, which is exactly the caller-visible
 *              contract. Always wait in a `while (!predicate)` loop —
 *              a predicate lambda would be analyzed as a separate
 *              function and lose the capability context.
 *
 * Zero-cost facade: Mutex is exactly a std::mutex, MutexLock is the
 * moral equivalent of std::unique_lock, and CondVar wraps
 * std::condition_variable_any (whose wait(BasicLockable&) is what makes
 * an annotated, relockable mutex type possible at all).
 */
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace mm {

/** Annotated exclusive mutex; the capability MM_GUARDED_BY names. */
class MM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() MM_ACQUIRE()
    {
        m.lock();
    }

    void
    unlock() MM_RELEASE()
    {
        m.unlock();
    }

    bool
    try_lock() MM_TRY_ACQUIRE(true)
    {
        return m.try_lock();
    }

  private:
    std::mutex m;
};

/**
 * RAII holder of a Mutex — the annotated std::lock_guard/unique_lock.
 * unlock()/lock() reopen and reclose the critical section in place
 * (e.g. around a blocking operation); the destructor releases only if
 * currently held.
 */
class MM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) MM_ACQUIRE(m) : mu(m), held(true)
    {
        mu.lock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    ~MutexLock() MM_RELEASE()
    {
        if (held)
            mu.unlock();
    }

    /** Open the critical section early (before a blocking call). */
    void
    unlock() MM_RELEASE()
    {
        held = false;
        mu.unlock();
    }

    /** Re-enter the critical section opened by unlock(). */
    void
    lock() MM_ACQUIRE()
    {
        mu.lock();
        held = true;
    }

  private:
    Mutex &mu;
    bool held;
};

/**
 * Condition variable over Mutex. Both waits require the mutex held and
 * return with it held; use a while loop, never a predicate lambda (see
 * file comment).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p m, sleep, reacquire; may wake spuriously. */
    void
    wait(Mutex &m) MM_REQUIRES(m)
    {
        cv.wait(m);
    }

    void
    notify_one()
    {
        cv.notify_one();
    }

    void
    notify_all()
    {
        cv.notify_all();
    }

  private:
    std::condition_variable_any cv;
};

} // namespace mm
