/**
 * @file
 * Streaming statistics used by dataset normalization and bench reporting.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace mm {

/** Welford-style running mean/variance with min/max tracking. */
class RunningStat
{
  public:
    /** Fold one observation into the stream. */
    void
    push(double x)
    {
        ++n;
        double delta = x - meanAcc;
        meanAcc += delta / double(n);
        m2 += delta * (x - meanAcc);
        if (x < minSeen)
            minSeen = x;
        if (x > maxSeen)
            maxSeen = x;
    }

    int64_t count() const { return n; }
    double mean() const { return n > 0 ? meanAcc : 0.0; }

    /** Population variance (n denominator). */
    double
    variance() const
    {
        return n > 0 ? m2 / double(n) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return minSeen; }
    double max() const { return maxSeen; }

  private:
    int64_t n = 0;
    double meanAcc = 0.0;
    double m2 = 0.0;
    double minSeen = std::numeric_limits<double>::infinity();
    double maxSeen = -std::numeric_limits<double>::infinity();
};

/** Geometric mean of strictly positive values. */
double geomean(std::span<const double> values);

/** Arithmetic mean. */
double mean(std::span<const double> values);

/** Population standard deviation. */
double stddev(std::span<const double> values);

/** The @p q quantile (0..1) of @p values by linear interpolation. */
double quantile(std::vector<double> values, double q);

} // namespace mm
