#include "common/permutation.hpp"

#include <algorithm>
#include <numeric>

namespace mm {

std::vector<int>
randomPerm(int n, Rng &rng)
{
    std::vector<int> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    return order;
}

std::vector<int>
ranksOf(std::span<const int> order)
{
    std::vector<int> ranks(order.size(), -1);
    for (size_t i = 0; i < order.size(); ++i) {
        MM_ASSERT(order[i] >= 0 && size_t(order[i]) < order.size(),
                  "order entry out of range");
        ranks[size_t(order[i])] = int(i);
    }
    return ranks;
}

std::vector<int>
orderFromRanks(std::span<const int> ranks)
{
    std::vector<int> order(ranks.size(), -1);
    for (size_t d = 0; d < ranks.size(); ++d) {
        MM_ASSERT(ranks[d] >= 0 && size_t(ranks[d]) < ranks.size(),
                  "rank entry out of range");
        order[size_t(ranks[d])] = int(d);
    }
    return order;
}

std::vector<int>
orderFromScores(std::span<const double> scores)
{
    std::vector<int> order(scores.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return scores[size_t(a)] < scores[size_t(b)];
    });
    return order;
}

bool
isPermutation(std::span<const int> order)
{
    std::vector<bool> seen(order.size(), false);
    for (int v : order) {
        if (v < 0 || size_t(v) >= order.size() || seen[size_t(v)])
            return false;
        seen[size_t(v)] = true;
    }
    return true;
}

double
factorial(int n)
{
    double f = 1.0;
    for (int i = 2; i <= n; ++i)
        f *= i;
    return f;
}

} // namespace mm
