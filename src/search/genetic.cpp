#include "search/genetic.hpp"

#include <algorithm>
#include <numeric>

#include "common/clock.hpp"
#include "mapping/moves.hpp"

namespace mm {

namespace {

/** An individual with its (possibly pending) fitness. */
struct Individual
{
    Mapping mapping;
    double fitness = std::numeric_limits<double>::infinity();
    bool evaluated = false;
};

} // namespace

GeneticSearcher::GeneticSearcher(const CostModel &model_, GeneticConfig cfg_,
                                 const TimingModel &timing)
    : model(&model_), cfg(cfg_), stepLatency(timing.gaStepSec)
{
    MM_ASSERT(cfg.populationSize >= 2, "population too small");
    MM_ASSERT(cfg.elites < cfg.populationSize, "too many elites");
}

SearchResult
GeneticSearcher::run(const SearchBudget &budget, Rng &rng)
{
    WallTimer timer;
    const MapSpace &space = model->space();
    SearchRecorder rec(*model, budget, stepLatency);

    auto evaluate = [&](Individual &ind) {
        if (ind.evaluated || rec.exhausted())
            return;
        ind.fitness = rec.step(ind.mapping);
        ind.evaluated = true;
    };

    std::vector<Individual> pop(size_t(cfg.populationSize));
    for (auto &ind : pop)
        ind.mapping = space.randomValid(rng);
    for (auto &ind : pop)
        evaluate(ind);

    auto tournament = [&]() -> const Individual & {
        const Individual *winner = nullptr;
        for (int i = 0; i < cfg.tournamentSize; ++i) {
            const Individual &cand = pop[size_t(
                rng.uniformInt(0, int64_t(pop.size()) - 1))];
            if (winner == nullptr || cand.fitness < winner->fitness)
                winner = &cand;
        }
        return *winner;
    };

    while (!rec.exhausted()) {
        // Elitism: carry the current best forward unchanged.
        std::vector<size_t> byFitness(pop.size());
        std::iota(byFitness.begin(), byFitness.end(), size_t(0));
        std::sort(byFitness.begin(), byFitness.end(),
                  [&](size_t a, size_t b) {
                      return pop[a].fitness < pop[b].fitness;
                  });

        std::vector<Individual> next;
        next.reserve(pop.size());
        for (int e = 0; e < cfg.elites; ++e)
            next.push_back(pop[byFitness[size_t(e)]]);

        while (next.size() < pop.size()) {
            const Individual &pa = tournament();
            const Individual &pb = tournament();
            Individual child;
            if (rng.bernoulli(cfg.crossoverProb))
                child.mapping = crossover(space, pa.mapping, pb.mapping,
                                          rng);
            else
                child.mapping = pa.mapping;
            child.mapping =
                mutate(space, child.mapping, cfg.mutationProb, rng);
            if (child.mapping == pa.mapping) {
                // Unchanged clones inherit the parent's fitness instead
                // of burning a cost-function query.
                child.fitness = pa.fitness;
                child.evaluated = pa.evaluated;
            }
            next.push_back(std::move(child));
        }

        // Elites keep their fitness; everyone else is (re)evaluated.
        for (auto &ind : next)
            evaluate(ind);
        pop = std::move(next);
    }

    SearchResult result = rec.finish(name());
    result.wallSec = timer.elapsedSec();
    return result;
}

} // namespace mm
