#include "search/genetic.hpp"

#include <algorithm>
#include <numeric>

#include "bound/bb_search.hpp"
#include "mapping/moves.hpp"
#include "search/registry.hpp"

namespace mm {

namespace {

/** An individual with its (possibly pending) fitness. */
struct Individual
{
    Mapping mapping;
    double fitness = std::numeric_limits<double>::infinity();
    bool evaluated = false;
};

} // namespace

namespace detail {

bool
childMayInheritFitness(const Mapping &child, const Mapping &parent,
                       bool parentEvaluated)
{
    return parentEvaluated && child == parent;
}

} // namespace detail

GeneticSearcher::GeneticSearcher(const CostModel &model_, GeneticConfig cfg_,
                                 const TimingModel &timing)
    : model(&model_), cfg(cfg_), stepLatency(timing.gaStepSec)
{
    MM_ASSERT(cfg.populationSize >= 2, "population too small");
    MM_ASSERT(cfg.elites < cfg.populationSize, "too many elites");
}

SearchResult
GeneticSearcher::run(SearchContext &ctx)
{
    const MapSpace &space = model->space();
    SearchRecorder rec(*model, ctx, stepLatency);
    Rng &rng = *ctx.rng;

    // One cost-model batch per generation: collect the individuals with
    // pending fitness (population order), clamp to what the
    // deterministic budgets still admit, evaluate them in one
    // normalizedEdpBatch call, then charge/record them in that same
    // order — bitwise identical to the historical per-individual
    // step() loop (evaluations consume no RNG, and stepPrescored
    // replays step()'s accounting). Under a wall-clock budget the
    // batch may evaluate candidates the wall then cuts off; those are
    // dropped unrecorded, exactly as if the loop had stopped there.
    std::vector<const Mapping *> pendingMaps;
    std::vector<size_t> pendingIdx;
    std::vector<double> norms;
    auto evaluatePending = [&](std::vector<Individual> &gen) {
        pendingMaps.clear();
        pendingIdx.clear();
        for (size_t i = 0; i < gen.size(); ++i) {
            if (!gen[i].evaluated) {
                pendingIdx.push_back(i);
                pendingMaps.push_back(&gen[i].mapping);
            }
        }
        const size_t planned = size_t(
            rec.plannedSteps(int64_t(pendingIdx.size())));
        pendingIdx.resize(planned);
        pendingMaps.resize(planned);
        if (planned == 0)
            return;
        norms.resize(planned);
        model->normalizedEdpBatch(std::span<const Mapping *const>(pendingMaps),
                                  std::span<double>(norms));
        const size_t used = rec.stepPrescored(pendingMaps, norms);
        for (size_t j = 0; j < used; ++j) {
            gen[pendingIdx[j]].fitness = norms[j];
            gen[pendingIdx[j]].evaluated = true;
        }
    };

    std::vector<Individual> pop(size_t(cfg.populationSize));
    for (auto &ind : pop)
        ind.mapping = space.randomValid(rng);
    // Optional warm start after the full random init, so the RNG stream
    // (and every unseeded run) is bitwise unchanged.
    if (!cfg.seedFrom.empty()) {
        if (auto seeded = seedIncumbent(*model, rec, cfg.seedNodes))
            pop[0].mapping = *seeded;
    }
    evaluatePending(pop);

    auto tournament = [&]() -> const Individual & {
        const Individual *winner = nullptr;
        for (int i = 0; i < cfg.tournamentSize; ++i) {
            const Individual &cand = pop[size_t(
                rng.uniformInt(0, int64_t(pop.size()) - 1))];
            if (winner == nullptr || cand.fitness < winner->fitness)
                winner = &cand;
        }
        return *winner;
    };

    while (!rec.exhausted()) {
        // Elitism: carry the current best forward unchanged.
        std::vector<size_t> byFitness(pop.size());
        std::iota(byFitness.begin(), byFitness.end(), size_t(0));
        std::sort(byFitness.begin(), byFitness.end(),
                  [&](size_t a, size_t b) {
                      return pop[a].fitness < pop[b].fitness;
                  });

        std::vector<Individual> next;
        next.reserve(pop.size());
        for (int e = 0; e < cfg.elites; ++e)
            next.push_back(pop[byFitness[size_t(e)]]);

        while (next.size() < pop.size()) {
            const Individual &pa = tournament();
            const Individual &pb = tournament();
            Individual child;
            if (rng.bernoulli(cfg.crossoverProb))
                child.mapping = crossover(space, pa.mapping, pb.mapping,
                                          rng);
            else
                child.mapping = pa.mapping;
            child.mapping =
                mutate(space, child.mapping, cfg.mutationProb, rng);
            if (detail::childMayInheritFitness(child.mapping, pa.mapping,
                                               pa.evaluated)) {
                // Unchanged clones inherit the parent's fitness instead
                // of burning a cost-function query; a child whose
                // genome differs (or whose parent was never scored)
                // always earns its own.
                child.fitness = pa.fitness;
                child.evaluated = true;
            }
            next.push_back(std::move(child));
        }

        // Elites keep their fitness; everyone else is (re)evaluated in
        // one batch.
        evaluatePending(next);
        pop = std::move(next);
    }

    return rec.finish(name());
}

namespace {
const SearcherRegistrar registrar({
    "GA",
    "generational genetic algorithm with tournament selection and "
    "elitism (DEAP-style, Appendix A)",
    /*needsSurrogate=*/false,
    {
        {"pop", "population size (paper: 100)"},
        {"cx", "crossover probability (paper: 0.75)"},
        {"mut", "per-attribute mutation probability (paper: 0.05)"},
        {"tourn", "tournament size"},
        {"elites", "elites carried forward unchanged"},
        {"seedFrom", "warm-start source: BB replaces individual 0 with "
                     "a branch-and-bound incumbent (default: random)"},
        {"seedNodes", "node cap of the seedFrom=BB run"},
    },
    [](const SearcherBuildContext &ctx, SearcherOptions &opt) {
        GeneticConfig cfg;
        cfg.populationSize = int(opt.getInt("pop", cfg.populationSize));
        cfg.crossoverProb = opt.getDouble("cx", cfg.crossoverProb);
        cfg.mutationProb = opt.getDouble("mut", cfg.mutationProb);
        cfg.tournamentSize = int(opt.getInt("tourn", cfg.tournamentSize));
        cfg.elites = int(opt.getInt("elites", cfg.elites));
        cfg.seedFrom = opt.getStr("seedFrom", cfg.seedFrom);
        cfg.seedNodes = opt.getInt("seedNodes", cfg.seedNodes);
        if (!cfg.seedFrom.empty() && cfg.seedFrom != "BB")
            fatal("searcher 'GA': seedFrom must be \"\" or \"BB\"");
        if (cfg.seedNodes < 1)
            fatal("searcher 'GA': seedNodes must be >= 1");
        if (cfg.populationSize < 2)
            fatal("searcher 'GA': pop must be >= 2");
        if (cfg.tournamentSize < 1)
            fatal("searcher 'GA': tourn must be >= 1");
        if (cfg.elites < 0 || cfg.elites >= cfg.populationSize)
            fatal("searcher 'GA': elites must be in [0, pop)");
        return std::make_unique<GeneticSearcher>(ctx.model, cfg,
                                                 ctx.timing);
    },
});
} // namespace

namespace detail {
extern const int geneticSearcherRegistered;
const int geneticSearcherRegistered = 1;
} // namespace detail

} // namespace mm
