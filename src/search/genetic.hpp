/**
 * @file
 * Genetic-algorithm baseline (DEAP-style, Appendix A).
 *
 * Population 100, crossover probability 0.75, per-attribute mutation
 * probability 0.05, tournament selection with elitism — the paper's
 * grid-searched configuration. Fitness is normalized EDP (lower is
 * better); each individual evaluation is one charged search step.
 */
#pragma once

#include "search/search.hpp"

namespace mm {

/** GA hyper-parameters (defaults match the paper). */
struct GeneticConfig
{
    int populationSize = 100;
    double crossoverProb = 0.75;
    double mutationProb = 0.05;
    int tournamentSize = 3;
    int elites = 2;
    /** "" initializes the population randomly; "BB" replaces individual
     * 0 with a branch-and-bound incumbent (src/bound/bb_search.hpp). */
    std::string seedFrom;
    /** Node cap of the seeding branch-and-bound run. */
    int64_t seedNodes = 256;
};

namespace detail {

/**
 * True when a GA child may reuse @p parent's cached fitness instead of
 * burning a cost-function query: only when the child's genome is
 * structurally identical to the parent's AND the parent's fitness is
 * real (@p parentEvaluated). Guarding on both closes the stale-fitness
 * hazard where a child inherits a number its own genome never earned —
 * exposed for the regression test in tests/test_search.cpp.
 */
bool childMayInheritFitness(const Mapping &child, const Mapping &parent,
                            bool parentEvaluated);

} // namespace detail

/** Generational GA over the map space. */
class GeneticSearcher : public Searcher
{
  public:
    GeneticSearcher(const CostModel &model, GeneticConfig cfg = {},
                    const TimingModel &timing = {});

    std::string name() const override { return "GA"; }
    SearchResult run(SearchContext &ctx) override;
    using Searcher::run;

  private:
    const CostModel *model;
    GeneticConfig cfg;
    double stepLatency;
};

} // namespace mm
