#include "search/orchestrator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"

namespace mm {

const SearchResult &
MultiRunResult::bestRun() const
{
    MM_ASSERT(!runs.empty(), "bestRun() on an empty result");
    size_t bestIdx = size_t(-1);
    for (size_t i = 0; i < runs.size(); ++i) {
        if (runs[i].failed())
            continue;
        if (bestIdx == size_t(-1)
            || runs[i].bestNormEdp < runs[bestIdx].bestNormEdp)
            bestIdx = i;
    }
    MM_ASSERT(bestIdx != size_t(-1), "bestRun() with every repetition failed");
    return runs[bestIdx];
}

MultiRunResult
runMany(const SearcherFactory &factory, const SearchBudget &budget,
        const MultiRunOptions &opts)
{
    MM_ASSERT(opts.runs >= 1, "need at least one repetition");
    MM_ASSERT(factory != nullptr, "null searcher factory");

    MultiRunResult out;
    out.runs.resize(size_t(opts.runs));

    auto oneRun = [&](size_t r) {
        // Each repetition owns its searcher and its RNG stream: the
        // fan-out schedule cannot perturb any draw, so a fixed base
        // seed is bitwise reproducible at any thread count.
        //
        // Failure isolation: a throwing repetition is captured into its
        // own result slot — ThreadPool::parallelFor rethrows the first
        // exception it sees, which would abort every sibling run, so
        // nothing may escape this lambda.
        std::unique_ptr<Searcher> searcher;
        try {
            searcher = factory();
            uint64_t seed = opts.seedFor
                                ? opts.seedFor(int(r))
                                : repetitionSeed(opts.baseSeed, int(r));
            Rng rng(seed);
            SearchContext ctx;
            ctx.budget = budget;
            ctx.rng = &rng;
            ctx.observer =
                opts.observerFor ? opts.observerFor(int(r)) : nullptr;
            ctx.stop = opts.stop;
            ctx.progressEvery = opts.progressEvery;
            ctx.collectTrace = opts.collectTrace;
            out.runs[r] = searcher->run(ctx);
        } catch (const std::exception &e) {
            out.runs[r] = SearchResult{};
            if (searcher != nullptr)
                out.runs[r].method = searcher->name();
            out.runs[r].error = e.what();
        }
    };

    size_t lanes = opts.threads == 0 ? std::thread::hardware_concurrency()
                                     : size_t(std::max(opts.threads, 1));
    lanes = std::max<size_t>(lanes, 1);
    lanes = std::min(lanes, size_t(opts.runs));
    if (lanes <= 1) {
        for (size_t r = 0; r < out.runs.size(); ++r)
            oneRun(r);
    } else {
        ThreadPool pool(lanes);
        pool.parallelFor(out.runs.size(), oneRun);
    }

    // Aggregate over the survivors; failed repetitions contribute only
    // their failedRuns count. A fleet with zero survivors has nothing
    // to report and raises (with the first captured error).
    std::vector<double> finals;
    for (const SearchResult &r : out.runs) {
        if (r.failed()) {
            ++out.failedRuns;
            continue;
        }
        if (out.method.empty())
            out.method = r.method;
        out.totalWallSec += r.wallSec;
        if (std::isfinite(r.bestNormEdp))
            finals.push_back(r.bestNormEdp);
    }
    if (out.failedRuns == opts.runs)
        fatal(strCat("all ", opts.runs, " repetitions failed; first error: ",
                     out.runs.front().error));
    if (!finals.empty()) {
        auto [lo, hi] = std::minmax_element(finals.begin(), finals.end());
        out.bestNormEdp = *lo;
        out.spreadNormEdp = *hi - *lo;
        out.medianNormEdp = quantile(finals, 0.5);
    }
    return out;
}

MultiRunResult
runMany(const std::string &spec, const SearcherBuildContext &ctx,
        const SearchBudget &budget, const MultiRunOptions &opts)
{
    // Build once eagerly so a bad spec fails before any run starts,
    // then per repetition inside the fan-out.
    (void)SearcherRegistry::instance().make(spec, ctx);
    return runMany(
        [&]() { return SearcherRegistry::instance().make(spec, ctx); },
        budget, opts);
}

} // namespace mm
