/**
 * @file
 * Simulated Annealing baseline (Kirkpatrick et al. [45]).
 *
 * Mirrors the paper's setup (Appendix A): the `simanneal` library with
 * auto-tuned hyper-parameters. Auto-tuning here estimates the energy
 * scale from a short pilot sample (not charged against the search
 * budget, as in the paper where library auto-tuning is a separate
 * phase), then anneals exponentially from Tmax to Tmin over the
 * scheduled horizon with single-attribute neighborhood moves.
 */
#pragma once

#include "search/search.hpp"

namespace mm {

/** SA hyper-parameters. */
struct AnnealingConfig
{
    /** Auto-tune Tmax/Tmin from a pilot sample when <= 0. */
    double tMax = -1.0;
    double tMin = -1.0;
    /** Pilot draws used by auto-tuning. */
    int pilotSamples = 32;
    /**
     * Schedule horizon in steps; when <= 0 it is derived from the
     * budget (maxSteps, or maxVirtualSec / step latency).
     */
    int64_t scheduleSteps = -1;
    /** "" starts random; "BB" starts from a bound-guided
     * branch-and-bound incumbent (src/bound/bb_search.hpp). */
    std::string seedFrom;
    /** Node cap of the seeding branch-and-bound run. */
    int64_t seedNodes = 256;
};

/** Single-chain exponential-schedule simulated annealing. */
class AnnealingSearcher : public Searcher
{
  public:
    AnnealingSearcher(const CostModel &model, AnnealingConfig cfg = {},
                      const TimingModel &timing = {});

    std::string name() const override { return "SA"; }
    SearchResult run(SearchContext &ctx) override;
    using Searcher::run;

  private:
    const CostModel *model;
    AnnealingConfig cfg;
    double stepLatency;
};

} // namespace mm
