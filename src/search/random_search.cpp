#include "search/random_search.hpp"

#include "search/registry.hpp"

namespace mm {

RandomSearcher::RandomSearcher(const CostModel &model_,
                               const TimingModel &timing)
    : model(&model_), stepLatency(timing.randomStepSec)
{}

SearchResult
RandomSearcher::run(SearchContext &ctx)
{
    SearchRecorder rec(*model, ctx, stepLatency);
    Rng &rng = *ctx.rng;
    const MapSpace &space = model->space();
    while (!rec.exhausted())
        rec.step(space.randomValid(rng));
    return rec.finish(name());
}

namespace {
const SearcherRegistrar registrar({
    "Random",
    "uniform random sampling of valid mappings (the unguided floor)",
    /*needsSurrogate=*/false,
    {},
    [](const SearcherBuildContext &ctx, SearcherOptions &) {
        return std::make_unique<RandomSearcher>(ctx.model, ctx.timing);
    },
});
} // namespace

namespace detail {
extern const int randomSearcherRegistered;
const int randomSearcherRegistered = 1;
} // namespace detail

} // namespace mm
