#include "search/random_search.hpp"

#include "common/clock.hpp"

namespace mm {

RandomSearcher::RandomSearcher(const CostModel &model_,
                               const TimingModel &timing)
    : model(&model_), stepLatency(timing.randomStepSec)
{}

SearchResult
RandomSearcher::run(const SearchBudget &budget, Rng &rng)
{
    WallTimer timer;
    SearchRecorder rec(*model, budget, stepLatency);
    const MapSpace &space = model->space();
    while (!rec.exhausted())
        rec.step(space.randomValid(rng));
    SearchResult result = rec.finish(name());
    result.wallSec = timer.elapsedSec();
    return result;
}

} // namespace mm
