#include "search/random_search.hpp"

#include "search/registry.hpp"

namespace mm {

RandomSearcher::RandomSearcher(const CostModel &model_,
                               const TimingModel &timing)
    : model(&model_), stepLatency(timing.randomStepSec)
{}

namespace {

/** Proposals drawn and evaluated per cost-model batch. */
constexpr int64_t kProposalBlock = 64;

} // namespace

SearchResult
RandomSearcher::run(SearchContext &ctx)
{
    SearchRecorder rec(*model, ctx, stepLatency);
    Rng &rng = *ctx.rng;
    const MapSpace &space = model->space();

    // Batch the proposal stream: draw a block of candidates (sampling
    // is the only RNG consumer, so a block of draws is the same stream
    // as interleaved draw/evaluate), score it with one
    // normalizedEdpBatch call, and charge the results in order. Blocks
    // are clamped to plannedSteps() so a deterministic budget consumes
    // exactly as many draws as the historical one-at-a-time loop;
    // under a wall-clock budget the wall may cut a block short, and
    // its unrecorded tail is dropped just as the sequential loop would
    // never have drawn it.
    std::vector<Mapping> proposals;
    std::vector<const Mapping *> proposalPtrs;
    std::vector<double> norms;
    while (!rec.exhausted()) {
        const size_t block = size_t(rec.plannedSteps(kProposalBlock));
        proposals.clear();
        for (size_t i = 0; i < block; ++i)
            proposals.push_back(space.randomValid(rng));
        proposalPtrs.clear();
        for (const Mapping &m : proposals)
            proposalPtrs.push_back(&m);
        norms.resize(block);
        model->normalizedEdpBatch(
            std::span<const Mapping *const>(proposalPtrs),
            std::span<double>(norms));
        rec.stepPrescored(proposalPtrs, norms);
    }
    return rec.finish(name());
}

namespace {
const SearcherRegistrar registrar({
    "Random",
    "uniform random sampling of valid mappings (the unguided floor)",
    /*needsSurrogate=*/false,
    {},
    [](const SearcherBuildContext &ctx, SearcherOptions &) {
        return std::make_unique<RandomSearcher>(ctx.model, ctx.timing);
    },
});
} // namespace

namespace detail {
extern const int randomSearcherRegistered;
const int randomSearcherRegistered = 1;
} // namespace detail

} // namespace mm
