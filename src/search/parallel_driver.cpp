#include "search/parallel_driver.hpp"

#include <algorithm>

#include "common/clock.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"

namespace mm {

SearchResult
runBatchedGradientSearch(const CostModel &model, Surrogate &surrogate,
                         const GradientSearchConfig &chainCfg,
                         int chainCount, int threadCount,
                         double stepLatencySec, const SearchBudget &budget,
                         Rng &rng, const std::string &method)
{
    MM_ASSERT(chainCount >= 1, "need at least one chain");
    WallTimer timer;
    const MapSpace &space = model.space();
    MappingCodec codec(space);
    MM_ASSERT(codec.featureCount() == surrogate.featureCount(),
              "surrogate was trained for a different algorithm");

    SearchRecorder rec(model, budget, stepLatencySec);
    // More lanes than chains only adds wakeup/contention overhead.
    size_t lanes = threadCount <= 0 ? std::thread::hardware_concurrency()
                                    : size_t(threadCount);
    if (threadCount < 0 || lanes == 0)
        lanes = 1;
    ThreadPool pool(std::min(lanes, size_t(chainCount)));

    // Chain RNG streams are forked in chain order, never shared: batch
    // composition and thread schedule cannot perturb any draw.
    std::vector<GradientChain> chains;
    chains.reserve(size_t(chainCount));
    for (int i = 0; i < chainCount; ++i)
        chains.emplace_back(space, codec, surrogate, chainCfg, rng.fork());

    const size_t P = chains.size();
    const size_t F = codec.featureCount();
    Matrix zBatch(P, F);
    Matrix injBatch;
    std::vector<double> preds;
    std::vector<Mapping> proposals(P);
    std::vector<size_t> injecting;

    while (!rec.exhausted()) {
        // Steps 2-3 of Section 4.2 for all chains at once: one batched
        // forward/backward through the surrogate.
        for (size_t i = 0; i < P; ++i) {
            const std::vector<double> &z = chains[i].features();
            float *row = zBatch.data() + i * F;
            for (size_t j = 0; j < F; ++j)
                row[j] = float(z[j]);
        }
        const Matrix &grads = surrogate.gradientBatch(zBatch, preds);

        // Steps 4-5: chain-local descend + round + project, fanned out
        // over the pool.
        pool.parallelFor(P, [&](size_t i) {
            chains[i].applyGradient(grads.row(i));
        });

        // Charged surrogate queries; the true-EDP probes inside are
        // trace instrumentation and deliberately unused.
        for (size_t i = 0; i < P; ++i)
            proposals[i] = chains[i].current();
        rec.stepBatch(proposals);
        if (rec.exhausted())
            break;

        // Step 6: annealed injection trials, candidates drawn from the
        // chain streams in parallel, judged by one batched prediction.
        injecting.clear();
        for (size_t i = 0; i < P; ++i)
            if (chains[i].wantsInjection())
                injecting.push_back(i);
        if (injecting.empty())
            continue;
        pool.parallelFor(injecting.size(), [&](size_t k) {
            chains[injecting[k]].prepareInjection();
        });
        injBatch.ensureShape(2 * injecting.size(), F);
        for (size_t k = 0; k < injecting.size(); ++k) {
            const GradientChain &chain = chains[injecting[k]];
            const std::vector<double> &zCur = chain.features();
            const std::vector<double> &zCand = chain.injectionFeatures();
            float *curRow = injBatch.data() + (2 * k) * F;
            float *candRow = injBatch.data() + (2 * k + 1) * F;
            for (size_t j = 0; j < F; ++j) {
                curRow[j] = float(zCur[j]);
                candRow[j] = float(zCand[j]);
            }
        }
        std::vector<double> costs = surrogate.predictNormEdpBatch(injBatch);
        for (size_t k = 0; k < injecting.size(); ++k)
            chains[injecting[k]].resolveInjection(costs[2 * k],
                                                  costs[2 * k + 1]);
    }

    SearchResult result = rec.finish(method);
    result.wallSec = timer.elapsedSec();
    return result;
}

ParallelGradientSearcher::ParallelGradientSearcher(const CostModel &model_,
                                                   Surrogate &surrogate_,
                                                   ParallelSearchConfig cfg_,
                                                   const TimingModel &timing)
    : model(&model_), surrogate(&surrogate_), cfg(cfg_),
      stepLatency(timing.surrogateStepSec)
{
    MM_ASSERT(cfg.chains >= 1, "need at least one chain");
}

std::string
ParallelGradientSearcher::name() const
{
    return strCat("MM-P", cfg.chains);
}

SearchResult
ParallelGradientSearcher::run(const SearchBudget &budget, Rng &rng)
{
    return runBatchedGradientSearch(*model, *surrogate, cfg.chain,
                                    cfg.chains, cfg.threads, stepLatency,
                                    budget, rng, name());
}

} // namespace mm
