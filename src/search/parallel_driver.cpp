#include "search/parallel_driver.hpp"

#include <algorithm>

#include "bound/bb_search.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"
#include "search/registry.hpp"

namespace mm {

SearchResult
runBatchedGradientSearch(const CostModel &model, Surrogate &surrogate,
                         const GradientSearchConfig &chainCfg,
                         int chainCount, int threadCount,
                         double stepLatencySec, SearchContext &ctx,
                         const std::string &method)
{
    MM_ASSERT(chainCount >= 1, "need at least one chain");
    const MapSpace &space = model.space();
    MappingCodec codec(space);
    MM_ASSERT(codec.featureCount() == surrogate.featureCount(),
              "surrogate was trained for a different algorithm");

    SearchRecorder rec(model, ctx, stepLatencySec);
    Rng &rng = *ctx.rng;
    // More lanes than chains only adds wakeup/contention overhead.
    size_t lanes = threadCount <= 0 ? std::thread::hardware_concurrency()
                                    : size_t(threadCount);
    if (threadCount < 0 || lanes == 0)
        lanes = 1;
    ThreadPool pool(std::min(lanes, size_t(chainCount)));

    // Chain RNG streams are forked in chain order, never shared: batch
    // composition and thread schedule cannot perturb any draw.
    std::vector<GradientChain> chains;
    chains.reserve(size_t(chainCount));
    for (int i = 0; i < chainCount; ++i)
        chains.emplace_back(space, codec, surrogate, chainCfg, rng.fork());

    // Optional warm start: chain 0 descends from a branch-and-bound
    // incumbent instead of its random draw. The chains' RNG streams are
    // already forked, so seeding perturbs no randomness, and the
    // seeding run's leaf evaluations are charged like any other
    // cost-function query.
    if (!chainCfg.seedFrom.empty()) {
        if (auto seeded = seedIncumbent(model, rec, chainCfg.seedNodes))
            chains[0].restartFrom(*seeded);
    }

    const size_t P = chains.size();
    const size_t F = codec.featureCount();
    Matrix zBatch(P, F);
    Matrix injBatch;
    std::vector<double> preds;
    std::vector<Mapping> proposals(P);
    std::vector<size_t> injecting;

    while (!rec.exhausted()) {
        // Steps 2-3 of Section 4.2 for all chains at once: one batched
        // forward/backward through the surrogate.
        for (size_t i = 0; i < P; ++i) {
            const std::vector<double> &z = chains[i].features();
            float *row = zBatch.data() + i * F;
            for (size_t j = 0; j < F; ++j)
                row[j] = float(z[j]);
        }
        const Matrix &grads = surrogate.gradientBatch(zBatch, preds);

        // Steps 4-5: chain-local descend + round + project, fanned out
        // over the pool.
        pool.parallelFor(P, [&](size_t i) {
            chains[i].applyGradient(grads.row(i));
        });

        // Charged surrogate queries; the true-EDP probes inside are
        // trace instrumentation and deliberately unused.
        for (size_t i = 0; i < P; ++i)
            proposals[i] = chains[i].current();
        rec.stepBatch(proposals);
        if (rec.exhausted())
            break;

        // Step 6: annealed injection trials, candidates drawn from the
        // chain streams in parallel, judged by one batched prediction.
        injecting.clear();
        for (size_t i = 0; i < P; ++i)
            if (chains[i].wantsInjection())
                injecting.push_back(i);
        if (injecting.empty())
            continue;
        pool.parallelFor(injecting.size(), [&](size_t k) {
            chains[injecting[k]].prepareInjection();
        });
        injBatch.ensureShape(2 * injecting.size(), F);
        for (size_t k = 0; k < injecting.size(); ++k) {
            const GradientChain &chain = chains[injecting[k]];
            const std::vector<double> &zCur = chain.features();
            const std::vector<double> &zCand = chain.injectionFeatures();
            float *curRow = injBatch.data() + (2 * k) * F;
            float *candRow = injBatch.data() + (2 * k + 1) * F;
            for (size_t j = 0; j < F; ++j) {
                curRow[j] = float(zCur[j]);
                candRow[j] = float(zCand[j]);
            }
        }
        std::vector<double> costs = surrogate.predictNormEdpBatch(injBatch);
        for (size_t k = 0; k < injecting.size(); ++k)
            chains[injecting[k]].resolveInjection(costs[2 * k],
                                                  costs[2 * k + 1]);
    }

    return rec.finish(method);
}

ParallelGradientSearcher::ParallelGradientSearcher(const CostModel &model_,
                                                   Surrogate &surrogate_,
                                                   ParallelSearchConfig cfg_,
                                                   const TimingModel &timing)
    : model(&model_), surrogate(&surrogate_), cfg(cfg_),
      stepLatency(timing.surrogateStepSec)
{
    MM_ASSERT(cfg.chains >= 1, "need at least one chain");
}

std::string
ParallelGradientSearcher::name() const
{
    return strCat("MM-P", cfg.chains);
}

SearchResult
ParallelGradientSearcher::run(SearchContext &ctx)
{
    return runBatchedGradientSearch(*model, *surrogate, cfg.chain,
                                    cfg.chains, cfg.threads, stepLatency,
                                    ctx, name());
}

namespace {

/** Shared by the MM and MM-P factories (same chain hyper-parameters). */
GradientSearchConfig
chainConfigFromOptions(SearcherOptions &opt, const char *key)
{
    GradientSearchConfig cfg;
    cfg.learningRate = opt.getDouble("lr", cfg.learningRate);
    cfg.injectEvery = int(opt.getInt("injectEvery", cfg.injectEvery));
    cfg.initTemperature = opt.getDouble("temp", cfg.initTemperature);
    cfg.tempDecay = opt.getDouble("tempDecay", cfg.tempDecay);
    cfg.decayEveryInjections =
        int(opt.getInt("decayEvery", cfg.decayEveryInjections));
    cfg.enableInjection = opt.getBool("inject", cfg.enableInjection);
    cfg.seedFrom = opt.getStr("seedFrom", cfg.seedFrom);
    cfg.seedNodes = opt.getInt("seedNodes", cfg.seedNodes);
    if (!cfg.seedFrom.empty() && cfg.seedFrom != "BB")
        fatal(std::string("searcher '") + key
              + "': seedFrom must be \"\" or \"BB\"");
    if (cfg.seedNodes < 1)
        fatal(std::string("searcher '") + key
              + "': seedNodes must be >= 1");
    if (cfg.learningRate <= 0.0)
        fatal(std::string("searcher '") + key + "': lr must be > 0");
    if (cfg.injectEvery <= 0)
        fatal(std::string("searcher '") + key
              + "': injectEvery must be > 0");
    if (cfg.decayEveryInjections <= 0)
        fatal(std::string("searcher '") + key
              + "': decayEvery must be > 0");
    return cfg;
}

const std::vector<SearcherOptionSpec> kChainOptionSpecs = {
    {"lr", "gradient-descent learning rate (paper: 1; ours: 0.3)"},
    {"injectEvery", "steps between random-injection trials (paper: 10)"},
    {"temp", "initial injection-acceptance temperature (paper: 50)"},
    {"tempDecay", "temperature decay factor (paper: 0.75)"},
    {"decayEvery", "injections between temperature decays (paper: 50)"},
    {"inject", "enable random injection (0 disables; ablation switch)"},
    {"seedFrom", "warm-start source: BB seeds chain 0 from a "
                 "branch-and-bound incumbent (default: random start)"},
    {"seedNodes", "node cap of the seedFrom=BB run"},
};

const SearcherRegistrar sequentialRegistrar([] {
    SearcherRegistry::Entry entry;
    entry.key = "MM";
    entry.description =
        "Mind Mappings, sequential Phase-2 gradient search over the "
        "trained surrogate (Section 4.2)";
    entry.needsSurrogate = true;
    entry.options = kChainOptionSpecs;
    entry.factory = [](const SearcherBuildContext &ctx,
                       SearcherOptions &opt) {
        return std::make_unique<MindMappingsSearcher>(
            ctx.model, *ctx.surrogate, chainConfigFromOptions(opt, "MM"),
            ctx.timing);
    };
    return entry;
}());

const SearcherRegistrar parallelRegistrar([] {
    SearcherRegistry::Entry entry;
    entry.key = "MM-P";
    entry.description =
        "Mind Mappings, batched multi-chain Phase-2 driver: independent "
        "restart chains, one surrogate batch per step";
    entry.needsSurrogate = true;
    entry.options = kChainOptionSpecs;
    entry.options.insert(
        entry.options.begin(),
        {{"chains", "independent restart chains evaluated as one batch"},
         {"threads", "fork-join lanes (0 = hardware concurrency)"}});
    entry.factory = [](const SearcherBuildContext &ctx,
                       SearcherOptions &opt) {
        ParallelSearchConfig cfg;
        cfg.chain = chainConfigFromOptions(opt, "MM-P");
        cfg.chains = int(opt.getInt("chains", cfg.chains));
        cfg.threads = int(opt.getInt("threads", cfg.threads));
        if (cfg.chains < 1)
            fatal("searcher 'MM-P': chains must be >= 1");
        return std::make_unique<ParallelGradientSearcher>(
            ctx.model, *ctx.surrogate, cfg, ctx.timing);
    };
    return entry;
}());

} // namespace

namespace detail {
extern const int parallelGradientSearcherRegistered;
const int parallelGradientSearcherRegistered = 1;
} // namespace detail

} // namespace mm
