/**
 * @file
 * Batched, multi-threaded Phase-2 search driver.
 *
 * Mind Mappings' gradient search is embarrassingly parallel across
 * restart chains: every chain is an independent trajectory whose only
 * shared resource is the (read-only) surrogate. The driver exploits
 * this twice over:
 *
 *  - **Batching**: per step, all P chains' feature rows are stacked
 *    into one matrix and evaluated with a single MLP forward/backward
 *    (Surrogate::gradientBatch) — the gemm over a P-row batch amortizes
 *    the weight-matrix traffic that dominates batch-1 inference. The
 *    annealed injection trials are batched the same way.
 *
 *  - **Threading**: the per-chain decode/round/project/re-encode work —
 *    the CPU-heavy non-gemm part of a step — fans out over a fork-join
 *    pool.
 *
 * Determinism: every chain owns a forked RNG stream fixed at
 * construction, batch rows are always packed in chain order, and the
 * recorder probes proposals in chain order, so a fixed seed yields
 * bitwise-identical results at ANY thread count (including 1).
 *
 * Budget semantics: one driver step advances all P chains and charges
 * the virtual clock ONE surrogate-step latency — the chains run
 * concurrently in wall-clock terms, which is exactly the iso-time
 * advantage being modeled — while the step counter advances by P (one
 * per surrogate query, the paper's iteration unit). Under a step
 * budget the final batch is truncated so the step count is exact.
 */
#pragma once

#include "core/gradient_search.hpp"

namespace mm {

/** Knobs of the parallel batched Phase-2 driver. */
struct ParallelSearchConfig
{
    /** Per-chain gradient-search hyper-parameters. */
    GradientSearchConfig chain{};
    /** Independent restart chains evaluated as one batch. */
    int chains = 4;
    /** Fork-join lanes; 0 selects hardware concurrency. */
    int threads = 0;
};

/** Multi-chain Mind Mappings searcher ("MM-P<chains>"). */
class ParallelGradientSearcher : public Searcher
{
  public:
    ParallelGradientSearcher(const CostModel &model, Surrogate &surrogate,
                             ParallelSearchConfig cfg = {},
                             const TimingModel &timing = {});

    std::string name() const override;
    SearchResult run(SearchContext &ctx) override;
    using Searcher::run;

  private:
    const CostModel *model;
    Surrogate *surrogate;
    ParallelSearchConfig cfg;
    double stepLatency;
};

/**
 * The shared driver loop: run @p chainCount chains under @p ctx's
 * budget, batching surrogate evaluations, with chain-local work spread
 * over @p threadCount lanes (0 = hardware concurrency). Chain RNG
 * streams are forked from ctx.rng in chain order. @p method tags the
 * result.
 */
SearchResult runBatchedGradientSearch(const CostModel &model,
                                      Surrogate &surrogate,
                                      const GradientSearchConfig &chainCfg,
                                      int chainCount, int threadCount,
                                      double stepLatencySec,
                                      SearchContext &ctx,
                                      const std::string &method);

} // namespace mm
