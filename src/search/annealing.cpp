#include "search/annealing.hpp"

#include <algorithm>
#include <cmath>

#include "common/clock.hpp"
#include "common/stats.hpp"
#include "mapping/moves.hpp"

namespace mm {

AnnealingSearcher::AnnealingSearcher(const CostModel &model_,
                                     AnnealingConfig cfg_,
                                     const TimingModel &timing)
    : model(&model_), cfg(cfg_), stepLatency(timing.saStepSec)
{}

SearchResult
AnnealingSearcher::run(const SearchBudget &budget, Rng &rng)
{
    WallTimer timer;
    const MapSpace &space = model->space();
    SearchRecorder rec(*model, budget, stepLatency);

    // Pilot phase: estimate the energy scale for the temperature
    // schedule (uncharged auto-tuning, as in the paper's simanneal use).
    double tMax = cfg.tMax;
    double tMin = cfg.tMin;
    if (tMax <= 0.0 || tMin <= 0.0) {
        RunningStat stat;
        for (int i = 0; i < cfg.pilotSamples; ++i)
            stat.push(model->normalizedEdp(space.randomValid(rng)));
        double scale = std::max(stat.stddev(), 1e-6);
        if (tMax <= 0.0)
            tMax = scale;
        if (tMin <= 0.0)
            tMin = std::max(1e-4 * scale, 1e-9);
    }

    int64_t horizon = cfg.scheduleSteps;
    if (horizon <= 0) {
        horizon = budget.maxSteps;
        if (horizon == std::numeric_limits<int64_t>::max()
            && std::isfinite(budget.maxVirtualSec)) {
            horizon = std::max<int64_t>(
                1, int64_t(budget.maxVirtualSec / stepLatency));
        }
        if (horizon == std::numeric_limits<int64_t>::max())
            horizon = 10000;
    }
    const double decay = std::log(tMin / tMax);

    Mapping current = space.randomValid(rng);
    double currentEnergy = rec.exhausted() ? 0.0 : rec.step(current);

    while (!rec.exhausted()) {
        double progress =
            double(std::min(rec.steps(), horizon)) / double(horizon);
        double temp = tMax * std::exp(decay * progress);

        Mapping proposal = randomNeighbor(space, current, rng);
        double energy = rec.step(proposal);
        double delta = energy - currentEnergy;
        if (delta <= 0.0 || rng.uniformReal() < std::exp(-delta / temp)) {
            current = std::move(proposal);
            currentEnergy = energy;
        }
    }

    SearchResult result = rec.finish(name());
    result.wallSec = timer.elapsedSec();
    return result;
}

} // namespace mm
