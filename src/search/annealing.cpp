#include "search/annealing.hpp"

#include <algorithm>
#include <cmath>

#include "bound/bb_search.hpp"
#include "common/stats.hpp"
#include "mapping/moves.hpp"
#include "search/registry.hpp"

namespace mm {

AnnealingSearcher::AnnealingSearcher(const CostModel &model_,
                                     AnnealingConfig cfg_,
                                     const TimingModel &timing)
    : model(&model_), cfg(cfg_), stepLatency(timing.saStepSec)
{}

SearchResult
AnnealingSearcher::run(SearchContext &ctx)
{
    const MapSpace &space = model->space();
    SearchRecorder rec(*model, ctx, stepLatency);
    Rng &rng = *ctx.rng;
    const SearchBudget &budget = ctx.budget;

    // Pilot phase: estimate the energy scale for the temperature
    // schedule (uncharged auto-tuning, as in the paper's simanneal use).
    double tMax = cfg.tMax;
    double tMin = cfg.tMin;
    if (tMax <= 0.0 || tMin <= 0.0) {
        // Draw all pilot moves up front (sampling is the only RNG
        // consumer, so the stream matches the historical interleaved
        // draw/evaluate loop), score them in one batch, and feed the
        // estimator in draw order — same moments bitwise.
        std::vector<Mapping> pilots;
        pilots.reserve(size_t(std::max(cfg.pilotSamples, 0)));
        for (int i = 0; i < cfg.pilotSamples; ++i)
            pilots.push_back(space.randomValid(rng));
        std::vector<double> norms(pilots.size());
        model->normalizedEdpBatch(std::span<const Mapping>(pilots),
                                  std::span<double>(norms));
        RunningStat stat;
        for (double norm : norms)
            stat.push(norm);
        double scale = std::max(stat.stddev(), 1e-6);
        if (tMax <= 0.0)
            tMax = scale;
        if (tMin <= 0.0)
            tMin = std::max(1e-4 * scale, 1e-9);
    }

    int64_t horizon = cfg.scheduleSteps;
    if (horizon <= 0) {
        horizon = budget.maxSteps;
        if (horizon == std::numeric_limits<int64_t>::max()
            && std::isfinite(budget.maxVirtualSec)) {
            horizon = std::max<int64_t>(
                1, int64_t(budget.maxVirtualSec / stepLatency));
        }
        if (horizon == std::numeric_limits<int64_t>::max())
            horizon = 10000;
    }
    const double decay = std::log(tMin / tMax);

    // The random draw stays even when seeding replaces it, so the RNG
    // stream (and every unseeded run) is bitwise unchanged.
    Mapping current = space.randomValid(rng);
    if (!cfg.seedFrom.empty()) {
        if (auto seeded = seedIncumbent(*model, rec, cfg.seedNodes))
            current = *seeded;
    }
    double currentEnergy = rec.exhausted() ? 0.0 : rec.step(current);

    while (!rec.exhausted()) {
        double progress =
            double(std::min(rec.steps(), horizon)) / double(horizon);
        double temp = tMax * std::exp(decay * progress);

        Mapping proposal = randomNeighbor(space, current, rng);
        double energy = rec.step(proposal);
        double delta = energy - currentEnergy;
        if (delta <= 0.0 || rng.uniformReal() < std::exp(-delta / temp)) {
            current = std::move(proposal);
            currentEnergy = energy;
        }
    }

    return rec.finish(name());
}

namespace {
const SearcherRegistrar registrar({
    "SA",
    "simulated annealing, exponential schedule with auto-tuned "
    "temperatures (Appendix A)",
    /*needsSurrogate=*/false,
    {
        {"tMax", "start temperature (<= 0 auto-tunes from a pilot)"},
        {"tMin", "end temperature (<= 0 auto-tunes from a pilot)"},
        {"pilot", "pilot draws used by temperature auto-tuning"},
        {"horizon", "schedule horizon in steps (<= 0 derives from budget)"},
        {"seedFrom", "warm-start source: BB starts from a "
                     "branch-and-bound incumbent (default: random)"},
        {"seedNodes", "node cap of the seedFrom=BB run"},
    },
    [](const SearcherBuildContext &ctx, SearcherOptions &opt) {
        AnnealingConfig cfg;
        cfg.tMax = opt.getDouble("tMax", cfg.tMax);
        cfg.tMin = opt.getDouble("tMin", cfg.tMin);
        cfg.pilotSamples = int(opt.getInt("pilot", cfg.pilotSamples));
        cfg.scheduleSteps = opt.getInt("horizon", cfg.scheduleSteps);
        cfg.seedFrom = opt.getStr("seedFrom", cfg.seedFrom);
        cfg.seedNodes = opt.getInt("seedNodes", cfg.seedNodes);
        if (cfg.pilotSamples < 0)
            fatal("searcher 'SA': pilot must be >= 0");
        if (!cfg.seedFrom.empty() && cfg.seedFrom != "BB")
            fatal("searcher 'SA': seedFrom must be \"\" or \"BB\"");
        if (cfg.seedNodes < 1)
            fatal("searcher 'SA': seedNodes must be >= 1");
        return std::make_unique<AnnealingSearcher>(ctx.model, cfg,
                                                   ctx.timing);
    },
});
} // namespace

namespace detail {
extern const int annealingSearcherRegistered;
const int annealingSearcherRegistered = 1;
} // namespace detail

} // namespace mm
