/**
 * @file
 * Search framework shared by Mind Mappings and the black-box baselines
 * (Section 5.2): budgets, traces, observers, cancellation, the Searcher
 * interface, and the virtual clock that reproduces the paper's iso-time
 * methodology.
 *
 * Iteration semantics follow the paper: one "step" is one cost-function
 * query — a Timeloop-stand-in query for the baselines, a surrogate
 * query for Mind Mappings (Section 5.2, "Iso-iteration").
 *
 * Virtual time: our analytical cost model evaluates in microseconds,
 * orders of magnitude faster than the Timeloop queries the paper
 * measures, so raw wall-clock would invert the iso-time premise. Each
 * searcher therefore charges a per-step latency to a virtual clock; the
 * defaults are calibrated to the per-step ratios the paper reports
 * (Mind Mappings 153.7x / 286.8x / 425.5x faster per step than SA / GA /
 * RL, converging in 62.5 s at ~1000 steps). Real wall time is recorded
 * alongside for transparency. See DESIGN.md, "Substitutions".
 *
 * Wall-clock budgets: alongside steps and virtual seconds, a budget can
 * bound *real* elapsed seconds (SearchBudget::byWallTime). This is the
 * iso-wall-clock mode of the fig6 bench, where the threaded backend's
 * genuine throughput advantage — invisible under the virtual clock —
 * shows up directly. Wall/stop-token exhaustion is checked without
 * touching any RNG, so step- and virtual-time-budgeted runs are bitwise
 * unaffected by the machinery.
 *
 * Run contract: Searcher::run(SearchContext &) bundles the budget with
 * the RNG, an optional SearchObserver (on-improvement and periodic
 * progress callbacks) and an optional cooperative StopToken. Callers
 * that need none of that use the run(budget, rng) convenience wrapper.
 *
 * Measurement: the quality traces record the best-so-far *true*
 * normalized EDP of the candidates a method proposes, matching how the
 * paper plots all methods on one axis; for Mind Mappings these trace
 * probes are instrumentation only — its search decisions see surrogate
 * predictions exclusively.
 */
#pragma once

#include <atomic>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "costmodel/cost_model.hpp"

namespace mm {

/**
 * Stop condition: step count (iso-iteration), virtual time (iso-time),
 * or real elapsed seconds (iso-wall-clock).
 */
struct SearchBudget
{
    int64_t maxSteps = std::numeric_limits<int64_t>::max();
    double maxVirtualSec = std::numeric_limits<double>::infinity();
    /** Real elapsed seconds; measured by the recorder's wall timer. */
    double maxWallSec = std::numeric_limits<double>::infinity();

    /** Deterministic (step / virtual-time) exhaustion only; the wall
     * clock is the recorder's to watch. */
    bool
    done(int64_t steps, double virtualSec) const
    {
        return steps >= maxSteps || virtualSec >= maxVirtualSec;
    }

    static SearchBudget
    bySteps(int64_t steps)
    {
        SearchBudget b;
        b.maxSteps = steps;
        return b;
    }

    static SearchBudget
    byVirtualTime(double seconds)
    {
        SearchBudget b;
        b.maxVirtualSec = seconds;
        return b;
    }

    static SearchBudget
    byWallTime(double seconds)
    {
        SearchBudget b;
        b.maxWallSec = seconds;
        return b;
    }
};

/** Best-so-far sample (recorded on improvement and at exhaustion). */
struct TracePoint
{
    int64_t step;
    double virtualSec;
    double bestNormEdp;
};

/** Outcome of one search run. */
struct SearchResult
{
    std::string method;
    Mapping best;
    double bestNormEdp = std::numeric_limits<double>::infinity();
    std::vector<TracePoint> trace;
    int64_t steps = 0;
    double virtualSec = 0.0;
    double wallSec = 0.0;
    /** True when a StopToken ended the run before the budget did. */
    bool cancelled = false;
    /**
     * Non-empty when the repetition died with an exception instead of
     * finishing: the what() of the error, captured by runMany so one
     * failing run never takes the fleet down. A failed result carries
     * no best mapping and is skipped by every aggregate.
     */
    std::string error;

    /** True when this repetition failed (see error). */
    bool failed() const { return !error.empty(); }

    /** Best-so-far value at step @p s (step-function interpolation). */
    double bestAtStep(int64_t s) const;

    /** Best-so-far value at virtual time @p t. */
    double bestAtVirtualTime(double t) const;
};

/** Per-step virtual latencies, calibrated to the paper (Section 5.4.2). */
struct TimingModel
{
    double surrogateStepSec = 0.0625; ///< MM: 62.5 s / 1000 steps
    double saStepSec = 9.60;          ///< 153.7x slower than MM
    double gaStepSec = 17.93;         ///< 286.8x
    double rlStepSec = 26.59;         ///< 425.5x
    double randomStepSec = 9.60;      ///< one reference-model query

    static TimingModel paperCalibrated() { return {}; }
};

/**
 * Cooperative cancellation flag. The owner (an orchestrator, a signal
 * handler, a future server endpoint) calls requestStop() from any
 * thread; the running searcher observes it at its next recorder check
 * and returns its valid best-so-far result. Checking never consumes
 * randomness, so un-stopped runs are bitwise unaffected.
 */
class StopToken
{
  public:
    StopToken() = default;
    StopToken(const StopToken &) = delete;
    StopToken &operator=(const StopToken &) = delete;

    void requestStop() { flag.store(true, std::memory_order_relaxed); }
    bool stopRequested() const
    {
        return flag.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> flag{false};
};

/** Snapshot handed to SearchObserver callbacks. */
struct SearchProgress
{
    int64_t steps = 0;
    double virtualSec = 0.0;
    double wallSec = 0.0;
    double bestNormEdp = std::numeric_limits<double>::infinity();
    /** Best mapping so far; null until the first improvement. */
    const Mapping *best = nullptr;
};

/**
 * Callbacks streamed out of a running search. Invoked synchronously on
 * the searching thread; implementations must be cheap (they sit on the
 * step path) and, when one observer instance is shared across
 * concurrently running searches, thread-safe.
 */
class SearchObserver
{
  public:
    virtual ~SearchObserver() = default;

    /** The best-so-far true normalized EDP just improved. */
    virtual void onImprovement(const SearchProgress &) {}

    /** Periodic heartbeat every SearchContext::progressEvery steps. */
    virtual void onProgress(const SearchProgress &) {}
};

/**
 * Everything one search run executes against: the budget, the RNG
 * stream, and the optional observer / cancellation hooks. The rng
 * pointer is required; observer and stop may stay null.
 */
struct SearchContext
{
    SearchBudget budget;
    Rng *rng = nullptr;
    SearchObserver *observer = nullptr;
    StopToken *stop = nullptr;
    /** Steps between SearchObserver::onProgress calls (0 = off). */
    int64_t progressEvery = 0;
    /**
     * Materialize the best-so-far trace vector in the result. Streaming
     * consumers (the serve frontend) take improvements through the
     * observer instead and switch this off so long runs hold no
     * per-improvement state; bestNormEdp/best are unaffected.
     */
    bool collectTrace = true;
};

/**
 * Budget/trace bookkeeping shared by all searcher implementations.
 *
 * A searcher calls step() once per cost-function query with the mapping
 * it proposed; the recorder charges virtual time, probes true quality,
 * maintains the best-so-far trace, drives the observer callbacks, and
 * watches the wall clock and the stop token. The wall timer starts at
 * construction, so wall budgets cover a searcher's setup work too.
 */
class SearchRecorder
{
  public:
    SearchRecorder(const CostModel &model, const SearchContext &ctx,
                   double stepLatencySec);

    /** Observer-less convenience used by tests and simple callers. */
    SearchRecorder(const CostModel &model, const SearchBudget &budget,
                   double stepLatencySec);

    /**
     * True when the budget (steps, virtual or wall seconds) is
     * exhausted or a stop was requested.
     */
    bool exhausted() const;

    /**
     * Account one step proposing @p candidate. Returns the candidate's
     * true normalized EDP (which baselines are entitled to see — it is
     * their cost-function query; Mind Mappings ignores it).
     */
    double step(const Mapping &candidate);

    /**
     * Account one *wall-clock* step of P concurrent chains proposing
     * @p candidates: the virtual clock is charged a single step latency
     * (the chains run in parallel and the surrogate evaluates them as
     * one batch), while the step counter advances once per candidate —
     * a step remains one cost-function query, the paper's iteration
     * unit. Candidates are probed in order; under a step budget the
     * tail of the batch beyond maxSteps is dropped so the final count
     * is exact.
     */
    void stepBatch(std::span<const Mapping> candidates);

    /**
     * Largest block size <= @p maxBlock such that that many step()
     * calls are guaranteed not to overrun the deterministic budgets
     * (steps / virtual time), found by replaying the virtual clock's
     * exact accumulation. Searchers use it to size a batch of proposals
     * before evaluating them in one evaluateBatch call: drawing and
     * charging plannedSteps() candidates consumes RNG and budget
     * exactly as the same number of sequential step() calls would.
     * Returns 0 when already exhausted; wall-clock/stop-token
     * exhaustion may still end a run mid-block, exactly as it may
     * between sequential steps.
     */
    int64_t plannedSteps(int64_t maxBlock) const;

    /**
     * step() over a block of candidates whose true normalized EDPs were
     * precomputed by one batch evaluation: candidates are charged and
     * recorded in order with per-candidate latency (unlike stepBatch's
     * single shared latency) while the budget lasts, reproducing a
     * sequential step() loop bitwise. Returns the number of candidates
     * charged; the tail beyond an exhaustion point is dropped unseen.
     */
    size_t stepPrescored(std::span<const Mapping *const> candidates,
                         std::span<const double> norms);

    int64_t steps() const { return stepCount; }
    double virtualSec() const { return virtualClock; }
    double bestNormEdp() const { return best; }
    double wallSec() const { return timer.elapsedSec(); }

    /** Finalize into a result tagged with @p method. */
    SearchResult finish(std::string method) const;

  private:
    void recordProbe(const Mapping &candidate, double norm);
    SearchProgress progressNow() const;

    const CostModel *model;
    SearchBudget budget;
    SearchObserver *observer = nullptr;
    StopToken *stop = nullptr;
    int64_t progressEvery = 0;
    bool collectTrace = true;
    double stepLatency;
    WallTimer timer;
    int64_t stepCount = 0;
    double virtualClock = 0.0;
    double best = std::numeric_limits<double>::infinity();
    Mapping bestMapping;
    std::vector<TracePoint> trace;
};

/** Interface for every mapping-space search method. */
class Searcher
{
  public:
    virtual ~Searcher() = default;

    /** Short method tag ("MM", "SA", "GA", "RL", "Random"). */
    virtual std::string name() const = 0;

    /** Execute one independent search run under @p ctx. */
    virtual SearchResult run(SearchContext &ctx) = 0;

    /** Convenience wrapper: budget + RNG, no observer, no stop. */
    SearchResult
    run(const SearchBudget &budget, Rng &rng)
    {
        SearchContext ctx;
        ctx.budget = budget;
        ctx.rng = &rng;
        return run(ctx);
    }
};

} // namespace mm
