/**
 * @file
 * Library-level searcher registry: every search method (Random, SA, GA,
 * RL, MM, MM-P) self-registers a string-keyed factory with a declarative
 * option schema, so benches, examples, tests and future server endpoints
 * all construct searchers the same way:
 *
 *   SearcherBuildContext ctx{model, &surrogate};
 *   auto sa = SearcherRegistry::instance().make("SA:tMax=4,pilot=64", ctx);
 *   auto mmp = SearcherRegistry::instance().make("MM-P:chains=8", ctx);
 *
 * A spec is "KEY" or "KEY:opt=value,opt=value". Unknown keys, unknown
 * or malformed options, and missing surrogates raise FatalError with
 * messages that name the valid alternatives — registry errors are user
 * errors, never asserts.
 *
 * Registration happens in each searcher's own translation unit through
 * a static SearcherRegistrar (see e.g. annealing.cpp); registry.cpp
 * anchors those TUs so static-library linking cannot drop them.
 */
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "search/search.hpp"

namespace mm {

class Surrogate; // core/surrogate.hpp; held by pointer only

/**
 * Parsed "key=value" options of a searcher spec with typed accessors.
 * Every get*() marks its option consumed; finish() rejects leftovers so
 * a misspelled option fails loudly instead of silently using defaults.
 */
class SearcherOptions
{
  public:
    /** Parse "a=1,b=2.5"; @p spec names the searcher for error text. */
    static SearcherOptions parse(const std::string &text,
                                 const std::string &spec);

    bool has(const std::string &name) const { return kv.count(name) > 0; }

    int64_t getInt(const std::string &name, int64_t fallback);
    double getDouble(const std::string &name, double fallback);
    bool getBool(const std::string &name, bool fallback);
    std::string getStr(const std::string &name, std::string fallback);

    /** FatalError on any option no accessor consumed. */
    void finish() const;

  private:
    std::string origin; ///< the spec, for error messages
    std::map<std::string, std::string> kv;
    std::set<std::string> used;
};

/** One documented option of a registered searcher (for --list modes). */
struct SearcherOptionSpec
{
    std::string name;
    std::string description;
};

/** Inputs every factory constructs from. */
struct SearcherBuildContext
{
    const CostModel &model;
    /** Trained Phase-1 surrogate; required by MM / MM-P only. */
    Surrogate *surrogate = nullptr;
    TimingModel timing = TimingModel::paperCalibrated();
};

/** String-keyed searcher factories with declarative option schemas. */
class SearcherRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Searcher>(
        const SearcherBuildContext &, SearcherOptions &)>;

    struct Entry
    {
        std::string key;
        std::string description;
        bool needsSurrogate = false;
        std::vector<SearcherOptionSpec> options;
        Factory factory;
    };

    /** The process-wide registry all registrars add to. */
    static SearcherRegistry &instance();

    /** Register @p entry; FatalError on a duplicate key. */
    void add(Entry entry);

    bool contains(const std::string &key) const;

    /** Registered keys, sorted. */
    std::vector<std::string> keys() const;

    /** Entry for @p key; FatalError naming the known keys otherwise. */
    const Entry &at(const std::string &key) const;

    /**
     * Construct from a spec "KEY" or "KEY:opt=v,...". FatalError on
     * unknown key, unknown/malformed option, or a surrogate-requiring
     * key built without one.
     */
    std::unique_ptr<Searcher> make(const std::string &spec,
                                   const SearcherBuildContext &ctx) const;

    /** Multi-line human-readable key + option-schema listing. */
    std::string describe() const;

  private:
    std::map<std::string, Entry> entries;
};

/** Static-initialization helper: file-scope instances register at load. */
struct SearcherRegistrar
{
    explicit SearcherRegistrar(SearcherRegistry::Entry entry);
};

} // namespace mm
