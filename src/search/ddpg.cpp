#include "search/ddpg.hpp"

#include <algorithm>
#include <cmath>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "search/registry.hpp"

namespace mm {

namespace {

/**
 * Maps codec features (minus the constant pid segment) into [0, 1] and
 * back: factors on a log scale, order ranks and bank counts linearly.
 */
class FeatureScaler
{
  public:
    FeatureScaler(const MapSpace &space, const MappingCodec &codec)
        : space(&space), codec(&codec)
    {
        // Per-state-entry scale: the max value each feature can take.
        const auto &bounds = space.problem().bounds;
        const size_t rank = space.rank();
        for (size_t l = 0; l < size_t(kNumMemLevels); ++l)
            for (size_t d = 0; d < rank; ++d)
                logMax.push_back(std::log2(double(2 * bounds[d])));
        for (size_t d = 0; d < rank; ++d)
            logMax.push_back(std::log2(double(2 * bounds[d])));
    }

    size_t stateDim() const { return codec->featureCount() - codec->pidCount(); }

    /** features (with pid) -> normalized state (without pid). */
    std::vector<double>
    scale(const std::vector<double> &features) const
    {
        const size_t rank = space->rank();
        std::vector<double> s;
        s.reserve(stateDim());
        size_t li = 0;
        for (size_t i = 0; i < codec->tilingCount() + codec->spatialCount();
             ++i, ++li) {
            double f = features[codec->tilingOffset() + i];
            double denom = std::max(logMax[li], 1e-9);
            s.push_back(std::log2(std::max(f, 1.0)) / denom);
        }
        for (size_t i = 0; i < codec->orderCount(); ++i) {
            double denom = std::max(double(rank) - 1.0, 1.0);
            s.push_back(features[codec->orderOffset() + i] / denom);
        }
        for (size_t l = 0; l < size_t(kNumOnChipLevels); ++l) {
            double banks = double(space->arch().levels[l].banks);
            for (size_t t = 0; t < space->tensorCount(); ++t)
                s.push_back(features[codec->allocOffset()
                                     + l * space->tensorCount() + t]
                            / banks);
        }
        MM_ASSERT(s.size() == stateDim(), "scaler arity bug");
        return s;
    }

    /** normalized state -> features (pid restored from the problem). */
    std::vector<double>
    unscale(const std::vector<double> &state) const
    {
        const size_t rank = space->rank();
        std::vector<double> f(codec->featureCount(), 0.0);
        for (size_t d = 0; d < rank; ++d)
            f[codec->pidOffset() + d] =
                double(space->problem().bounds[d]);
        size_t li = 0;
        size_t si = 0;
        for (size_t i = 0; i < codec->tilingCount() + codec->spatialCount();
             ++i, ++li, ++si) {
            double clamped = std::clamp(state[si], 0.0, 1.0);
            f[codec->tilingOffset() + i] =
                std::exp2(clamped * logMax[li]);
        }
        for (size_t i = 0; i < codec->orderCount(); ++i, ++si)
            f[codec->orderOffset() + i] =
                state[si] * std::max(double(rank) - 1.0, 1.0);
        for (size_t l = 0; l < size_t(kNumOnChipLevels); ++l) {
            double banks = double(space->arch().levels[l].banks);
            for (size_t t = 0; t < space->tensorCount(); ++t, ++si)
                f[codec->allocOffset() + l * space->tensorCount() + t] =
                    std::clamp(state[si], 0.0, 1.0) * banks;
        }
        return f;
    }

  private:
    const MapSpace *space;
    const MappingCodec *codec;
    std::vector<double> logMax;
};

/** One replay transition. */
struct Transition
{
    std::vector<float> state;
    std::vector<float> action;
    float reward;
    std::vector<float> nextState;
    bool terminal;
};

std::vector<float>
toFloat(const std::vector<double> &v)
{
    std::vector<float> out(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        out[i] = float(v[i]);
    return out;
}

} // namespace

DdpgSearcher::DdpgSearcher(const CostModel &model_, DdpgConfig cfg_,
                           const TimingModel &timing)
    : model(&model_), cfg(cfg_), stepLatency(timing.rlStepSec)
{}

SearchResult
DdpgSearcher::run(SearchContext &ctx)
{
    // Constructed first so wall-clock budgets cover the net setup too.
    SearchRecorder rec(*model, ctx, stepLatency);
    Rng &rng = *ctx.rng;
    const MapSpace &space = model->space();
    MappingCodec codec(space);
    FeatureScaler scaler(space, codec);
    const size_t sDim = scaler.stateDim();
    const size_t aDim = sDim;

    Mlp actor(sDim,
              {{size_t(cfg.hiddenWidth), Activation::ReLU},
               {size_t(cfg.hiddenWidth), Activation::ReLU},
               {aDim, Activation::Tanh}},
              rng);
    Mlp critic(sDim + aDim,
               {{size_t(cfg.hiddenWidth), Activation::ReLU},
                {size_t(cfg.hiddenWidth), Activation::ReLU},
                {1, Activation::Identity}},
               rng);
    Mlp actorTarget = actor;
    Mlp criticTarget = critic;

    AdamOptimizer actorOpt(cfg.actorLr);
    actorOpt.attach(actor.params(), actor.grads());
    AdamOptimizer criticOpt(cfg.criticLr);
    criticOpt.attach(critic.params(), critic.grads());

    std::vector<Transition> replay;
    replay.reserve(cfg.replayCapacity);
    size_t replayHead = 0;

    double noise = cfg.noiseStd;

    Mapping current = space.randomValid(rng);
    std::vector<double> state = scaler.scale(codec.encode(current));
    int episodeStep = 0;

    Matrix actorIn(1, sDim);

    // One environment action for `state`, where @p stepIdx is the
    // pre-step charged-query count (warmup exploration is counted in
    // charged steps, not episodes).
    auto drawAction = [&](int64_t stepIdx, std::vector<double> &action) {
        if (stepIdx < cfg.warmupSteps) {
            for (auto &a : action)
                a = rng.uniformReal(-1.0, 1.0);
        } else {
            for (size_t i = 0; i < sDim; ++i)
                actorIn(0, i) = float(state[i]);
            const Matrix &out = actor.forward(actorIn);
            for (size_t i = 0; i < aDim; ++i)
                action[i] = std::clamp(
                    double(out(0, i)) + rng.gaussian(0.0, noise), -1.0,
                    1.0);
            noise = std::max(noise * cfg.noiseDecay, cfg.noiseMin);
        }
    };

    auto pushTransition = [&](Transition tr) {
        if (replay.size() < cfg.replayCapacity) {
            replay.push_back(std::move(tr));
        } else {
            replay[replayHead] = std::move(tr);
            replayHead = (replayHead + 1) % cfg.replayCapacity;
        }
    };

    // Learn predicate against the *post-step* charged-query count.
    auto canLearnNow = [&] {
        return replay.size() >= cfg.batchSize
               && rec.steps() >= cfg.warmupSteps
               && rec.steps() % cfg.updateEvery == 0;
    };

    auto learn = [&] {
        const size_t b = cfg.batchSize;
        Matrix s(b, sDim), a(b, aDim), s2(b, sDim);
        std::vector<float> r(b);
        std::vector<float> notDone(b);
        for (size_t i = 0; i < b; ++i) {
            const Transition &t = replay[size_t(
                rng.uniformInt(0, int64_t(replay.size()) - 1))];
            std::copy(t.state.begin(), t.state.end(), s.row(i).begin());
            std::copy(t.action.begin(), t.action.end(),
                      a.row(i).begin());
            std::copy(t.nextState.begin(), t.nextState.end(),
                      s2.row(i).begin());
            r[i] = t.reward;
            notDone[i] = t.terminal ? 0.0f : 1.0f;
        }

        // Critic target: y = r + gamma * (1-done) * Qt(s2, At(s2)).
        const Matrix &a2 = actorTarget.forward(s2);
        Matrix x2(b, sDim + aDim);
        for (size_t i = 0; i < b; ++i) {
            std::copy(s2.row(i).begin(), s2.row(i).end(),
                      x2.row(i).begin());
            std::copy(a2.row(i).begin(), a2.row(i).end(),
                      x2.row(i).begin() + long(sDim));
        }
        const Matrix &q2 = criticTarget.forward(x2);
        Matrix y(b, 1);
        for (size_t i = 0; i < b; ++i)
            y(i, 0) = r[i] + float(cfg.gamma) * notDone[i] * q2(i, 0);

        // Critic regression step.
        Matrix x(b, sDim + aDim);
        for (size_t i = 0; i < b; ++i) {
            std::copy(s.row(i).begin(), s.row(i).end(), x.row(i).begin());
            std::copy(a.row(i).begin(), a.row(i).end(),
                      x.row(i).begin() + long(sDim));
        }
        const Matrix &q = critic.forward(x);
        Matrix dq(b, 1);
        for (size_t i = 0; i < b; ++i)
            dq(i, 0) = (q(i, 0) - y(i, 0)) / float(b);
        critic.zeroGrad();
        critic.backwardInPlace(dq);
        criticOpt.step();

        // Actor step: ascend Q(s, actor(s)) through the critic's input
        // gradient.
        const Matrix &aPred = actor.forward(s);
        Matrix xa(b, sDim + aDim);
        for (size_t i = 0; i < b; ++i) {
            std::copy(s.row(i).begin(), s.row(i).end(),
                      xa.row(i).begin());
            std::copy(aPred.row(i).begin(), aPred.row(i).end(),
                      xa.row(i).begin() + long(sDim));
        }
        critic.forward(xa);
        Matrix dOut(b, 1);
        dOut.fill(-1.0f / float(b));
        critic.zeroGrad();
        const Matrix &dx = critic.backwardInPlace(dOut);
        Matrix da(b, aDim);
        for (size_t i = 0; i < b; ++i)
            std::copy(dx.row(i).begin() + long(sDim), dx.row(i).end(),
                      da.row(i).begin());
        actor.zeroGrad();
        actor.backwardInPlace(da);
        actorOpt.step();
        critic.zeroGrad();

        actorTarget.softUpdateFrom(actor, float(cfg.tau));
        criticTarget.softUpdateFrom(critic, float(cfg.tau));
    };

    if (cfg.stepBlock <= 1) {
        // Reference per-step loop: one scalar cost query per
        // environment step. Kept selectable (RL:block=1) so the
        // batched path below can be pinned bitwise against it.
        while (!rec.exhausted()) {
            std::vector<double> action(aDim, 0.0);
            drawAction(rec.steps(), action);

            // --- Environment transition.
            std::vector<double> nextStateRaw(sDim);
            for (size_t i = 0; i < sDim; ++i)
                nextStateRaw[i] = std::clamp(
                    state[i] + cfg.actionScale * action[i], 0.0, 1.0);
            Mapping next = codec.decode(scaler.unscale(nextStateRaw));
            double normEdp = rec.step(next);
            float reward = float(-std::log10(std::max(normEdp, 1e-12)));

            // Re-encode the *projected* mapping so the stored next
            // state is consistent with where the environment actually
            // landed.
            std::vector<double> nextState =
                scaler.scale(codec.encode(next));
            ++episodeStep;
            bool terminal = episodeStep >= cfg.episodeLength;

            pushTransition({toFloat(state), toFloat(action), reward,
                            toFloat(nextState), terminal});

            if (terminal) {
                current = space.randomValid(rng);
                state = scaler.scale(codec.encode(current));
                episodeStep = 0;
            } else {
                current = std::move(next);
                state = std::move(nextState);
            }

            if (canLearnNow())
                learn();
        }
        return rec.finish(name());
    }

    // Batched loop. Action drawing is the only RNG consumer between
    // cost queries, and the next state is a pure function of the
    // current one, so a run of steps can be rolled forward and scored
    // with a single normalizedEdpBatch call — as long as the block
    // never crosses a point where the sequential loop would have drawn
    // RNG out of order (an episode-terminal reset) or changed the
    // actor's weights (a learn step). nextBoundary() caps blocks at
    // exactly those points, which keeps the stream bitwise identical
    // to the per-step loop above.
    auto nextBoundary = [&]() -> int64_t {
        int64_t bound = std::min<int64_t>(
            cfg.stepBlock, int64_t(cfg.episodeLength) - episodeStep);
        const int64_t s0 = rec.steps();
        for (int64_t k = 1; k < bound; ++k) {
            const size_t replayAt = std::min(replay.size() + size_t(k),
                                             cfg.replayCapacity);
            const int64_t post = s0 + k;
            if (replayAt >= cfg.batchSize && post >= cfg.warmupSteps
                && post % cfg.updateEvery == 0) {
                bound = k;
                break;
            }
        }
        return bound;
    };

    std::vector<Mapping> block;
    std::vector<const Mapping *> blockPtrs;
    std::vector<double> norms;
    std::vector<std::vector<float>> blockStates;
    std::vector<std::vector<float>> blockActions;
    std::vector<std::vector<float>> blockNextStates;
    std::vector<double> action(aDim, 0.0);
    while (!rec.exhausted()) {
        const int64_t plan = rec.plannedSteps(nextBoundary());
        if (plan == 0)
            break;

        // --- Roll the environment forward without scoring.
        block.clear();
        blockStates.clear();
        blockActions.clear();
        blockNextStates.clear();
        for (int64_t k = 0; k < plan; ++k) {
            drawAction(rec.steps() + k, action);
            std::vector<double> nextStateRaw(sDim);
            for (size_t i = 0; i < sDim; ++i)
                nextStateRaw[i] = std::clamp(
                    state[i] + cfg.actionScale * action[i], 0.0, 1.0);
            Mapping next = codec.decode(scaler.unscale(nextStateRaw));
            std::vector<double> nextState =
                scaler.scale(codec.encode(next));
            blockStates.push_back(toFloat(state));
            blockActions.push_back(toFloat(action));
            blockNextStates.push_back(toFloat(nextState));
            block.push_back(std::move(next));
            // Mid-block steps are never terminal (blocks end at
            // episode boundaries), so the projected state simply
            // becomes the current state.
            state = std::move(nextState);
        }

        // --- Score the whole block with one batched query.
        blockPtrs.clear();
        for (const Mapping &m : block)
            blockPtrs.push_back(&m);
        norms.resize(block.size());
        model->normalizedEdpBatch(
            std::span<const Mapping *const>(blockPtrs),
            std::span<double>(norms));
        const size_t charged = rec.stepPrescored(blockPtrs, norms);

        // --- Replay bookkeeping for the charged prefix. A wall-clock
        // budget or stop token may cut the block short; the dropped
        // tail matches the steps the sequential loop would never have
        // taken, and the run ends right after.
        for (size_t k = 0; k < charged; ++k) {
            const float reward =
                float(-std::log10(std::max(norms[k], 1e-12)));
            ++episodeStep;
            const bool terminal = episodeStep >= cfg.episodeLength;
            pushTransition({std::move(blockStates[k]),
                            std::move(blockActions[k]), reward,
                            std::move(blockNextStates[k]), terminal});
            if (terminal) {
                current = space.randomValid(rng);
                state = scaler.scale(codec.encode(current));
                episodeStep = 0;
            }
        }
        if (charged > 0 && canLearnNow())
            learn();
    }

    return rec.finish(name());
}

namespace {
const SearcherRegistrar registrar({
    "RL",
    "deep deterministic policy gradient over the map space "
    "(HAQ-derived setup, Appendix A)",
    /*needsSurrogate=*/false,
    {
        {"width", "hidden width of actor/critic (paper: 300)"},
        {"episode", "environment steps per episode"},
        {"replay", "replay buffer capacity"},
        {"batch", "replay minibatch size"},
        {"warmup", "random-exploration steps before learning"},
        {"updateEvery", "environment steps per gradient update"},
        {"block", "environment steps scored per batched cost-model "
                  "query (<= 1 = per-step reference loop)"},
    },
    [](const SearcherBuildContext &ctx, SearcherOptions &opt) {
        DdpgConfig cfg;
        cfg.hiddenWidth = int(opt.getInt("width", cfg.hiddenWidth));
        cfg.episodeLength = int(opt.getInt("episode", cfg.episodeLength));
        // Validate in the signed domain before the size_t conversion
        // can turn a negative option into a huge capacity.
        int64_t replay = opt.getInt("replay", int64_t(cfg.replayCapacity));
        int64_t batch = opt.getInt("batch", int64_t(cfg.batchSize));
        cfg.warmupSteps = int(opt.getInt("warmup", cfg.warmupSteps));
        cfg.updateEvery = int(opt.getInt("updateEvery", cfg.updateEvery));
        cfg.stepBlock = opt.getInt("block", cfg.stepBlock);
        if (cfg.hiddenWidth < 1 || cfg.episodeLength < 1 || batch < 1
            || replay < batch || cfg.warmupSteps < 0
            || cfg.updateEvery < 1)
            fatal("searcher 'RL': need width/episode/updateEvery >= 1, "
                  "batch >= 1, replay >= batch, warmup >= 0");
        cfg.replayCapacity = size_t(replay);
        cfg.batchSize = size_t(batch);
        return std::make_unique<DdpgSearcher>(ctx.model, cfg, ctx.timing);
    },
});
} // namespace

namespace detail {
extern const int ddpgSearcherRegistered;
const int ddpgSearcherRegistered = 1;
} // namespace detail

} // namespace mm
