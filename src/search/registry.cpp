#include "search/registry.hpp"

#include <charconv>

#include "common/string_util.hpp"

namespace mm {

// ---------------------------------------------------------------------------
// Force-link anchors.
//
// The built-in searchers register themselves from their own translation
// units, but nothing else necessarily references those TUs once callers
// construct through the registry — and a static-library link drops
// unreferenced objects, registrars included. Naming one symbol from
// each registering TU here pulls them all in whenever the registry
// itself is used.
// ---------------------------------------------------------------------------

namespace detail {
extern const int randomSearcherRegistered;
extern const int annealingSearcherRegistered;
extern const int geneticSearcherRegistered;
extern const int ddpgSearcherRegistered;
extern const int parallelGradientSearcherRegistered; ///< MM and MM-P
extern const int boundSearcherRegistered;            ///< BB

/**
 * Never called; its external linkage keeps the references below alive
 * through optimization, so linking registry.o out of the static
 * library transitively pulls in every registering TU. (An unused
 * internal-linkage anchor array gets optimized away and the archive
 * members with it.)
 */
int
builtinSearcherAnchors()
{
    return randomSearcherRegistered + annealingSearcherRegistered
           + geneticSearcherRegistered + ddpgSearcherRegistered
           + parallelGradientSearcherRegistered + boundSearcherRegistered;
}
} // namespace detail

// ---------------------------------------------------------------------------
// SearcherOptions
// ---------------------------------------------------------------------------

SearcherOptions
SearcherOptions::parse(const std::string &text, const std::string &spec)
{
    SearcherOptions opts;
    opts.origin = spec;
    for (const std::string &item : split(text, ',')) {
        if (item.empty())
            fatal("searcher spec '" + spec
                  + "': empty option (stray comma?)");
        size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 || eq == item.size() - 1)
            fatal("searcher spec '" + spec + "': option '" + item
                  + "' is not of the form key=value");
        opts.kv[item.substr(0, eq)] = item.substr(eq + 1);
    }
    return opts;
}

namespace {

[[noreturn]] void
badValue(const std::string &origin, const std::string &name,
         const std::string &value, const char *wanted)
{
    fatal("searcher spec '" + origin + "': option '" + name + "' value '"
          + value + "' is not " + wanted);
}

} // namespace

int64_t
SearcherOptions::getInt(const std::string &name, int64_t fallback)
{
    auto it = kv.find(name);
    if (it == kv.end())
        return fallback;
    used.insert(name);
    const std::string &v = it->second;
    int64_t out = 0;
    auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc() || ptr != v.data() + v.size())
        badValue(origin, name, v, "an integer");
    return out;
}

double
SearcherOptions::getDouble(const std::string &name, double fallback)
{
    auto it = kv.find(name);
    if (it == kv.end())
        return fallback;
    used.insert(name);
    const std::string &v = it->second;
    try {
        size_t consumed = 0;
        double out = std::stod(v, &consumed);
        if (consumed != v.size())
            badValue(origin, name, v, "a number");
        return out;
    } catch (const std::logic_error &) {
        badValue(origin, name, v, "a number");
    }
}

bool
SearcherOptions::getBool(const std::string &name, bool fallback)
{
    auto it = kv.find(name);
    if (it == kv.end())
        return fallback;
    used.insert(name);
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    badValue(origin, name, v, "a boolean (1/0/true/false)");
}

std::string
SearcherOptions::getStr(const std::string &name, std::string fallback)
{
    auto it = kv.find(name);
    if (it == kv.end())
        return fallback;
    used.insert(name);
    return it->second;
}

void
SearcherOptions::finish() const
{
    std::vector<std::string> unknown;
    for (const auto &[name, value] : kv)
        if (used.count(name) == 0)
            unknown.push_back(name);
    if (!unknown.empty())
        fatal("searcher spec '" + origin + "': unknown option"
              + (unknown.size() > 1 ? "s '" : " '") + join(unknown, "', '")
              + "' (run a bench with --list for the option schemas)");
}

// ---------------------------------------------------------------------------
// SearcherRegistry
// ---------------------------------------------------------------------------

SearcherRegistry &
SearcherRegistry::instance()
{
    static SearcherRegistry registry;
    return registry;
}

void
SearcherRegistry::add(Entry entry)
{
    MM_ASSERT(!entry.key.empty() && entry.factory != nullptr,
              "malformed registry entry");
    if (entries.count(entry.key) > 0)
        fatal("searcher key '" + entry.key + "' registered twice");
    entries.emplace(entry.key, std::move(entry));
}

bool
SearcherRegistry::contains(const std::string &key) const
{
    return entries.count(key) > 0;
}

std::vector<std::string>
SearcherRegistry::keys() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &[key, entry] : entries)
        out.push_back(key);
    return out;
}

const SearcherRegistry::Entry &
SearcherRegistry::at(const std::string &key) const
{
    auto it = entries.find(key);
    if (it == entries.end())
        fatal("unknown search method '" + key + "'; registered: "
              + join(keys(), ", "));
    return it->second;
}

std::unique_ptr<Searcher>
SearcherRegistry::make(const std::string &spec,
                       const SearcherBuildContext &ctx) const
{
    size_t colon = spec.find(':');
    std::string key = spec.substr(0, colon);
    std::string optText =
        colon == std::string::npos ? "" : spec.substr(colon + 1);

    const Entry &entry = at(key);
    if (entry.needsSurrogate && ctx.surrogate == nullptr)
        fatal("searcher '" + key + "' requires a trained Phase-1 "
              "surrogate, but none was provided");

    SearcherOptions opts = SearcherOptions::parse(optText, spec);
    std::unique_ptr<Searcher> searcher = entry.factory(ctx, opts);
    MM_ASSERT(searcher != nullptr, "factory returned null searcher");
    opts.finish();
    return searcher;
}

std::string
SearcherRegistry::describe() const
{
    std::string out;
    for (const auto &[key, entry] : entries) {
        out += key;
        if (entry.needsSurrogate)
            out += "  (requires surrogate)";
        out += "\n    ";
        out += entry.description;
        out += "\n";
        for (const auto &opt : entry.options) {
            out += "      ";
            out += opt.name;
            out += ": ";
            out += opt.description;
            out += "\n";
        }
    }
    return out;
}

SearcherRegistrar::SearcherRegistrar(SearcherRegistry::Entry entry)
{
    SearcherRegistry::instance().add(std::move(entry));
}

} // namespace mm
