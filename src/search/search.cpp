#include "search/search.hpp"

#include <algorithm>

namespace mm {

namespace {

double
bestAt(const std::vector<TracePoint> &trace, double key,
       double TracePoint::*timeField, int64_t TracePoint::*stepField,
       bool byStep, int64_t stepKey)
{
    double best = std::numeric_limits<double>::infinity();
    for (const auto &pt : trace) {
        bool within = byStep ? (pt.*stepField <= stepKey)
                             : (pt.*timeField <= key);
        if (within)
            best = std::min(best, pt.bestNormEdp);
    }
    return best;
}

} // namespace

double
SearchResult::bestAtStep(int64_t s) const
{
    return bestAt(trace, 0.0, &TracePoint::virtualSec, &TracePoint::step,
                  true, s);
}

double
SearchResult::bestAtVirtualTime(double t) const
{
    return bestAt(trace, t, &TracePoint::virtualSec, &TracePoint::step,
                  false, 0);
}

SearchRecorder::SearchRecorder(const CostModel &model_,
                               const SearchBudget &budget_,
                               double stepLatencySec)
    : model(&model_), budget(budget_), stepLatency(stepLatencySec)
{
    MM_ASSERT(stepLatency >= 0.0, "negative step latency");
}

bool
SearchRecorder::exhausted() const
{
    return budget.done(stepCount, virtualClock);
}

double
SearchRecorder::step(const Mapping &candidate)
{
    MM_ASSERT(!exhausted(), "step() called after budget exhaustion");
    ++stepCount;
    virtualClock += stepLatency;
    double norm = model->normalizedEdp(candidate);
    if (norm < best) {
        best = norm;
        bestMapping = candidate;
        trace.push_back({stepCount, virtualClock, best});
    }
    return norm;
}

void
SearchRecorder::stepBatch(std::span<const Mapping> candidates)
{
    MM_ASSERT(!exhausted(), "stepBatch() called after budget exhaustion");
    if (candidates.empty())
        return;
    virtualClock += stepLatency;
    for (const Mapping &candidate : candidates) {
        if (stepCount >= budget.maxSteps)
            break;
        ++stepCount;
        double norm = model->normalizedEdp(candidate);
        if (norm < best) {
            best = norm;
            bestMapping = candidate;
            trace.push_back({stepCount, virtualClock, best});
        }
    }
}

SearchResult
SearchRecorder::finish(std::string method) const
{
    SearchResult result;
    result.method = std::move(method);
    result.best = bestMapping;
    result.bestNormEdp = best;
    result.trace = trace;
    result.steps = stepCount;
    result.virtualSec = virtualClock;
    // Guarantee a terminal point so time/step interpolation saturates.
    if (result.trace.empty() || result.trace.back().step != stepCount)
        result.trace.push_back({stepCount, virtualClock, best});
    return result;
}

} // namespace mm
