#include "search/search.hpp"

#include <algorithm>

namespace mm {

namespace {

double
bestAt(const std::vector<TracePoint> &trace, double key,
       double TracePoint::*timeField, int64_t TracePoint::*stepField,
       bool byStep, int64_t stepKey)
{
    double best = std::numeric_limits<double>::infinity();
    for (const auto &pt : trace) {
        bool within = byStep ? (pt.*stepField <= stepKey)
                             : (pt.*timeField <= key);
        if (within)
            best = std::min(best, pt.bestNormEdp);
    }
    return best;
}

} // namespace

double
SearchResult::bestAtStep(int64_t s) const
{
    return bestAt(trace, 0.0, &TracePoint::virtualSec, &TracePoint::step,
                  true, s);
}

double
SearchResult::bestAtVirtualTime(double t) const
{
    return bestAt(trace, t, &TracePoint::virtualSec, &TracePoint::step,
                  false, 0);
}

SearchRecorder::SearchRecorder(const CostModel &model_,
                               const SearchContext &ctx,
                               double stepLatencySec)
    : model(&model_), budget(ctx.budget), observer(ctx.observer),
      stop(ctx.stop), progressEvery(ctx.progressEvery),
      collectTrace(ctx.collectTrace), stepLatency(stepLatencySec)
{
    MM_ASSERT(stepLatency >= 0.0, "negative step latency");
}

SearchRecorder::SearchRecorder(const CostModel &model_,
                               const SearchBudget &budget_,
                               double stepLatencySec)
    : model(&model_), budget(budget_), stepLatency(stepLatencySec)
{
    MM_ASSERT(stepLatency >= 0.0, "negative step latency");
}

bool
SearchRecorder::exhausted() const
{
    if (budget.done(stepCount, virtualClock))
        return true;
    if (stop != nullptr && stop->stopRequested())
        return true;
    // Only pay for a clock read when a wall budget is actually set.
    if (std::isfinite(budget.maxWallSec)
        && timer.elapsedSec() >= budget.maxWallSec)
        return true;
    return false;
}

SearchProgress
SearchRecorder::progressNow() const
{
    SearchProgress p;
    p.steps = stepCount;
    p.virtualSec = virtualClock;
    p.wallSec = timer.elapsedSec();
    p.bestNormEdp = best;
    // Infinity means no improvement was recorded yet; the trace cannot
    // stand in for that test because streaming runs never collect one.
    p.best = std::isfinite(best) ? &bestMapping : nullptr;
    return p;
}

void
SearchRecorder::recordProbe(const Mapping &candidate, double norm)
{
    if (norm < best) {
        best = norm;
        bestMapping = candidate;
        if (collectTrace)
            trace.push_back({stepCount, virtualClock, best});
        if (observer != nullptr)
            observer->onImprovement(progressNow());
    }
    if (observer != nullptr && progressEvery > 0
        && stepCount % progressEvery == 0)
        observer->onProgress(progressNow());
}

double
SearchRecorder::step(const Mapping &candidate)
{
    // The deterministic budgets are hard preconditions; wall-clock or
    // stop-token exhaustion may race past the caller's exhausted()
    // check, and recording the already-computed candidate then is both
    // harmless and what keeps cancelled results best-so-far valid.
    MM_ASSERT(!budget.done(stepCount, virtualClock),
              "step() called after budget exhaustion");
    ++stepCount;
    virtualClock += stepLatency;
    double norm = model->normalizedEdp(candidate);
    recordProbe(candidate, norm);
    return norm;
}

void
SearchRecorder::stepBatch(std::span<const Mapping> candidates)
{
    MM_ASSERT(!budget.done(stepCount, virtualClock),
              "stepBatch() called after budget exhaustion");
    if (candidates.empty())
        return;
    virtualClock += stepLatency;
    for (const Mapping &candidate : candidates) {
        if (stepCount >= budget.maxSteps)
            break;
        ++stepCount;
        double norm = model->normalizedEdp(candidate);
        recordProbe(candidate, norm);
    }
}

int64_t
SearchRecorder::plannedSteps(int64_t maxBlock) const
{
    // Replay the step() accumulation bitwise: the virtual clock is a
    // running double sum, so a closed-form division could disagree with
    // it at the boundary; the loop cannot.
    int64_t planned = 0;
    int64_t steps = stepCount;
    double clock = virtualClock;
    while (planned < maxBlock && !budget.done(steps, clock)) {
        ++steps;
        clock += stepLatency;
        ++planned;
    }
    return planned;
}

size_t
SearchRecorder::stepPrescored(std::span<const Mapping *const> candidates,
                              std::span<const double> norms)
{
    MM_ASSERT(candidates.size() == norms.size(),
              "stepPrescored spans must have equal length");
    size_t used = 0;
    while (used < candidates.size() && !exhausted()) {
        ++stepCount;
        virtualClock += stepLatency;
        recordProbe(*candidates[used], norms[used]);
        ++used;
    }
    return used;
}

SearchResult
SearchRecorder::finish(std::string method) const
{
    SearchResult result;
    result.method = std::move(method);
    result.best = bestMapping;
    result.bestNormEdp = best;
    result.trace = trace;
    result.steps = stepCount;
    result.virtualSec = virtualClock;
    result.wallSec = timer.elapsedSec();
    result.cancelled = stop != nullptr && stop->stopRequested();
    // Guarantee a terminal point so time/step interpolation saturates.
    // Streaming (collectTrace == false) results stay trace-free.
    if (collectTrace
        && (result.trace.empty() || result.trace.back().step != stepCount))
        result.trace.push_back({stepCount, virtualClock, best});
    return result;
}

} // namespace mm
