/**
 * @file
 * Uniform random search: the unguided floor every heuristic must beat.
 */
#pragma once

#include "search/search.hpp"

namespace mm {

/** Samples valid mappings uniformly and keeps the best. */
class RandomSearcher : public Searcher
{
  public:
    RandomSearcher(const CostModel &model, const TimingModel &timing = {});

    std::string name() const override { return "Random"; }
    SearchResult run(SearchContext &ctx) override;
    using Searcher::run;

  private:
    const CostModel *model;
    double stepLatency;
};

} // namespace mm
