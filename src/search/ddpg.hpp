/**
 * @file
 * Reinforcement-learning baseline: Deep Deterministic Policy Gradient
 * (Lillicrap et al. [56]), following the paper's HAQ-derived setup
 * (Appendix A).
 *
 * The MDP: states are mappings (encoded to a normalized feature vector),
 * a continuous action is a bounded move in feature space which decodes
 * (via rounding + projection) to the next mapping, and the reward is the
 * negative log of normalized EDP. Actor and critic are fully-connected
 * networks trained with replay and Polyak-averaged target networks; each
 * environment step costs one charged cost-function query.
 */
#pragma once

#include "mapping/codec.hpp"
#include "search/search.hpp"

namespace mm {

/** DDPG hyper-parameters. */
struct DdpgConfig
{
    /** Hidden width of actor/critic (paper: 300; default sized for CI). */
    int hiddenWidth = 128;
    int episodeLength = 25;
    size_t replayCapacity = 4096;
    size_t batchSize = 32;
    /** Steps of random exploration before learning starts. */
    int warmupSteps = 64;
    /** Gradient updates per environment step. */
    int updateEvery = 1;
    double gamma = 0.95;
    double tau = 0.01;
    double actorLr = 1e-3;
    double criticLr = 1e-3;
    /** Maximum per-step move in normalized feature space. */
    double actionScale = 0.15;
    double noiseStd = 0.3;
    double noiseDecay = 0.999;
    double noiseMin = 0.02;
    /**
     * Environment steps drawn and scored per normalizedEdpBatch call.
     * Blocks always end at episode terminals and learn steps, so the
     * RNG stream and the learning schedule are bitwise identical to
     * the per-step loop at any value; <= 1 selects that per-step
     * reference loop itself.
     */
    int64_t stepBlock = 64;
};

/** Actor-critic search over the map space. */
class DdpgSearcher : public Searcher
{
  public:
    DdpgSearcher(const CostModel &model, DdpgConfig cfg = {},
                 const TimingModel &timing = {});

    std::string name() const override { return "RL"; }
    SearchResult run(SearchContext &ctx) override;
    using Searcher::run;

  private:
    const CostModel *model;
    DdpgConfig cfg;
    double stepLatency;
};

} // namespace mm
