/**
 * @file
 * Multi-run search orchestration: fan N independently seeded repetitions
 * of one search method across the shared ThreadPool, stream each run's
 * trace through observers, and aggregate the outcomes (best / median /
 * spread) — the harness the figure benches repeat per method and the
 * seam a serving frontend schedules requests through.
 *
 * Determinism: run r draws from Rng(repetitionSeed(baseSeed, r)) and
 * owns its searcher instance, so results are bitwise identical at any
 * thread count and identical to the historical serial repetition loops
 * (repetitionSeed preserves their exact seed derivation). Only the
 * measured wallSec fields vary between executions.
 *
 * Cancellation: one StopToken covers the whole batch — requesting a
 * stop ends every in-flight repetition at its next step and returns the
 * valid best-so-far results (repetitions that had not started yet
 * return immediately with zero steps).
 */
#pragma once

#include <functional>

#include "search/registry.hpp"

namespace mm {

/** The historical per-repetition seed derivation of the benches. */
inline uint64_t
repetitionSeed(uint64_t baseSeed, int run)
{
    return baseSeed * 1000003ULL + uint64_t(run) * 7919ULL + 1;
}

/** Knobs of runMany. */
struct MultiRunOptions
{
    /** Independent repetitions. */
    int runs = 1;
    /** Base of the per-run seed derivation. */
    uint64_t baseSeed = 1;
    /** Concurrent repetitions; 0 = hardware concurrency, 1 = serial. */
    int threads = 1;
    /** Steps between per-run SearchObserver::onProgress calls (0 = off). */
    int64_t progressEvery = 0;
    /**
     * Observer for run @p r, or null; called once per run before it
     * starts. With threads > 1, distinct runs invoke their observers
     * concurrently — return per-run instances or make them thread-safe.
     */
    std::function<SearchObserver *(int run)> observerFor;
    /** Cooperative cancellation across every repetition. */
    StopToken *stop = nullptr;
    /** Forwarded to SearchContext::collectTrace for every repetition. */
    bool collectTrace = true;
    /**
     * Override of the per-run seed (e.g. a bench preserving historical
     * ad-hoc seeding); defaults to repetitionSeed(baseSeed, run).
     */
    std::function<uint64_t(int run)> seedFor;
};

/**
 * Aggregate of one method's repetitions. A repetition that throws is
 * captured in its SearchResult.error slot instead of unwinding the
 * fleet; every aggregate below is computed over the surviving runs
 * only. All repetitions failing raises FatalError from runMany — there
 * is nothing to aggregate.
 */
struct MultiRunResult
{
    std::string method;
    std::vector<SearchResult> runs;
    /** Repetitions that failed (runs[i].failed() count). */
    int failedRuns = 0;
    /** Final best-so-far normalized EDP: best / median / max-min. */
    double bestNormEdp = std::numeric_limits<double>::infinity();
    double medianNormEdp = std::numeric_limits<double>::infinity();
    double spreadNormEdp = 0.0;
    /** Summed real seconds across repetitions. */
    double totalWallSec = 0.0;

    /** The repetition that achieved bestNormEdp (never a failed one). */
    const SearchResult &bestRun() const;
};

/** Constructs a fresh searcher for every repetition. */
using SearcherFactory = std::function<std::unique_ptr<Searcher>()>;

/**
 * Run @p opts.runs seeded repetitions of the searcher @p factory builds
 * under @p budget, fanned over @p opts.threads lanes.
 */
MultiRunResult runMany(const SearcherFactory &factory,
                       const SearchBudget &budget,
                       const MultiRunOptions &opts);

/** Registry convenience: repetitions of the searcher @p spec names. */
MultiRunResult runMany(const std::string &spec,
                       const SearcherBuildContext &ctx,
                       const SearchBudget &budget,
                       const MultiRunOptions &opts);

} // namespace mm
