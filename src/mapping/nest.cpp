#include "mapping/nest.hpp"

#include <vector>

#include "common/error.hpp"

namespace mm {

namespace {

struct Loop
{
    FactorSlot slot;
    int dim;
    int64_t trip;
};

} // namespace

void
forEachNestPoint(const MapSpace &space, const Mapping &m,
                 const NestVisitor &visit, int64_t maxPoints)
{
    const size_t rank = space.rank();
    MM_ASSERT(m.rank() == rank, "mapping rank mismatch");

    // Flatten the nest, outermost first: DRAM block, L2 block, spatial
    // fan-out, L1 block, each in the mapping's loop order (spatial loops
    // are unordered; dimension order is used).
    std::vector<Loop> loops;
    double totalPoints = 1.0;
    auto pushBlock = [&](FactorSlot slot, MemLevel lvl, bool useOrder) {
        for (size_t i = 0; i < rank; ++i) {
            int dim = useOrder ? m.loopOrder[size_t(lvl)][i] : int(i);
            int64_t trip = slot == FactorSlot::Spatial
                               ? m.spatial[size_t(dim)]
                               : m.tiling[size_t(lvl)][size_t(dim)];
            totalPoints *= double(trip);
            if (trip > 1)
                loops.push_back({slot, dim, trip});
        }
    };
    pushBlock(FactorSlot::DRAM, MemLevel::DRAM, true);
    pushBlock(FactorSlot::L2, MemLevel::L2, true);
    pushBlock(FactorSlot::Spatial, MemLevel::L1, false);
    pushBlock(FactorSlot::L1, MemLevel::L1, true);
    MM_ASSERT(totalPoints <= double(maxPoints),
              "padded nest too large to enumerate");

    // idx[slot][dim]: current index of that loop (absent loops stay 0).
    std::vector<std::vector<int64_t>> idx(
        size_t(kFactorSlots), std::vector<int64_t>(rank, 0));
    std::vector<int64_t> point(rank, 0);

    auto emit = [&]() {
        for (size_t d = 0; d < rank; ++d) {
            int64_t c = idx[size_t(FactorSlot::DRAM)][d];
            c = c * m.tiling[size_t(MemLevel::L2)][d]
                + idx[size_t(FactorSlot::L2)][d];
            c = c * m.spatial[d] + idx[size_t(FactorSlot::Spatial)][d];
            c = c * m.tiling[size_t(MemLevel::L1)][d]
                + idx[size_t(FactorSlot::L1)][d];
            point[d] = c;
        }
        visit(point);
    };

    // Odometer over the flattened loop list.
    std::vector<int64_t> counters(loops.size(), 0);
    while (true) {
        emit();
        size_t l = loops.size();
        while (l > 0) {
            --l;
            auto &loop = loops[l];
            if (++counters[l] < loop.trip) {
                idx[size_t(loop.slot)][size_t(loop.dim)] = counters[l];
                break;
            }
            counters[l] = 0;
            idx[size_t(loop.slot)][size_t(loop.dim)] = 0;
            if (l == 0)
                return;
        }
        if (loops.empty())
            return;
    }
}

} // namespace mm
