/**
 * @file
 * Loop-nest enumeration for functional validation.
 *
 * Walks every point of the padded iteration space a mapping induces
 * (DRAM block, L2 block, spatial fan-out, L1 block, in the mapping's
 * loop orders) and reports the global per-dimension coordinates. The
 * test suite uses this to prove Definition 2.2 for our map spaces: every
 * valid mapping covers each in-bounds point exactly once, i.e. computes
 * the same function as the golden reference kernel.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "mapping/map_space.hpp"

namespace mm {

/** Callback receives the global coordinate of one nest point. */
using NestVisitor = std::function<void(std::span<const int64_t> point)>;

/**
 * Visit all padded nest points of @p m.
 *
 * @param maxPoints Guard against accidental use on large problems;
 *                  aborts if the padded space exceeds it.
 */
void forEachNestPoint(const MapSpace &space, const Mapping &m,
                      const NestVisitor &visit,
                      int64_t maxPoints = 20'000'000);

} // namespace mm
