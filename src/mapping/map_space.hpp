/**
 * @file
 * The map space M_{a,p} (Definition 2.2) and the three routines the
 * Mind Mappings API requires of every accelerator (Appendix B):
 * getMapping (randomValid), isMember, and getProjection (project).
 */
#pragma once

#include <string>

#include "arch/accelerator.hpp"
#include "common/rng.hpp"
#include "mapping/mapping.hpp"
#include "workload/problem.hpp"

namespace mm {

/** The set of valid mappings for one (accelerator, problem) pair. */
class MapSpace
{
  public:
    /**
     * Bind an accelerator and problem. Both must outlive the MapSpace.
     * Throws FatalError if the accelerator cannot host the problem
     * (e.g. fewer allocatable banks than tensors).
     */
    MapSpace(const AcceleratorSpec &arch, const Problem &problem);

    /** The spec and problem are captured by reference: forbid
     * temporaries, which would dangle. */
    MapSpace(AcceleratorSpec &&, const Problem &) = delete;
    MapSpace(const AcceleratorSpec &, Problem &&) = delete;
    MapSpace(AcceleratorSpec &&, Problem &&) = delete;

    const AcceleratorSpec &arch() const { return *archSpec; }
    const Problem &problem() const { return *prob; }
    size_t rank() const { return prob->rank(); }
    size_t tensorCount() const { return prob->algo->tensorCount(); }

    /** Uniformly sample a valid mapping (paper: getMapping). */
    Mapping randomValid(Rng &rng) const;

    /** Membership test (paper: isMember). */
    bool isMember(const Mapping &m) const;

    /**
     * Diagnostic version of isMember: empty string when valid, else a
     * description of the first violated constraint.
     */
    std::string validityError(const Mapping &m) const;

    /**
     * Deterministically repair an arbitrary mapping-shaped value into a
     * valid member (paper: getProjection). Idempotent on valid inputs
     * except for arity fixes.
     */
    Mapping project(const Mapping &m) const;

    /** log10 of the (upper-bound) map-space size, as in Section 5.1.3. */
    double log10Size() const;

    /** Bytes of tensor @p t's tile given per-dimension trip extents. */
    double tensorTileBytes(size_t t, std::span<const int64_t> extents) const;

    /** Bytes available to tensor @p t at on-chip level @p lvl under @p m. */
    double allocBytes(int lvl, size_t t, const Mapping &m) const;

  private:
    /** Move spatial factors into L2 until the PE budget is met. */
    void repairSpatial(Mapping &m) const;

    /** Move tile factors outward until every tensor tile fits. */
    void repairCapacity(Mapping &m) const;

    const AcceleratorSpec *archSpec;
    const Problem *prob;
};

} // namespace mm
