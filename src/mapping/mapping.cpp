#include "mapping/mapping.hpp"

#include "common/error.hpp"

namespace mm {

namespace {

std::vector<int64_t>
elementwiseProduct(const std::vector<int64_t> &a,
                   const std::vector<int64_t> &b)
{
    MM_ASSERT(a.size() == b.size(), "extent arity mismatch");
    std::vector<int64_t> out(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] * b[i];
    return out;
}

} // namespace

int64_t
Mapping::dimProduct(size_t d) const
{
    MM_ASSERT(d < rank(), "dimension out of range");
    return tiling[size_t(MemLevel::L1)][d] * spatial[d]
           * tiling[size_t(MemLevel::L2)][d]
           * tiling[size_t(MemLevel::DRAM)][d];
}

std::vector<int64_t>
Mapping::extentsL1() const
{
    return tiling[size_t(MemLevel::L1)];
}

std::vector<int64_t>
Mapping::extentsSpatial() const
{
    return elementwiseProduct(tiling[size_t(MemLevel::L1)], spatial);
}

std::vector<int64_t>
Mapping::extentsL2() const
{
    return elementwiseProduct(extentsSpatial(),
                              tiling[size_t(MemLevel::L2)]);
}

std::vector<int64_t>
Mapping::extentsFull() const
{
    return elementwiseProduct(extentsL2(),
                              tiling[size_t(MemLevel::DRAM)]);
}

int64_t
Mapping::usedPes() const
{
    int64_t pes = 1;
    for (int64_t s : spatial)
        pes *= s;
    return pes;
}

} // namespace mm
