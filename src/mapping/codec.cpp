#include "mapping/codec.hpp"

#include <algorithm>
#include <cmath>

#include "common/permutation.hpp"

namespace mm {

MappingCodec::MappingCodec(const MapSpace &space_)
    : space(&space_), rank(space_.rank()), tensors(space_.tensorCount())
{
    total = allocOffset() + allocCount();
}

std::vector<double>
MappingCodec::encode(const Mapping &m) const
{
    return encodeWithPid(m, space->problem());
}

std::vector<double>
MappingCodec::encodeWithPid(const Mapping &m, const Problem &pid) const
{
    MM_ASSERT(m.rank() == rank, "mapping rank mismatch");
    MM_ASSERT(pid.rank() == rank, "problem rank mismatch");
    std::vector<double> f(total, 0.0);

    for (size_t d = 0; d < rank; ++d)
        f[pidOffset() + d] = double(pid.bounds[d]);

    // Tile factors, level-major: L1 block, then L2, then DRAM.
    const MemLevel order[] = {MemLevel::L1, MemLevel::L2, MemLevel::DRAM};
    for (size_t l = 0; l < size_t(kNumMemLevels); ++l)
        for (size_t d = 0; d < rank; ++d)
            f[tilingOffset() + l * rank + d] =
                double(m.tiling[size_t(order[l])][d]);

    for (size_t d = 0; d < rank; ++d)
        f[spatialOffset() + d] = double(m.spatial[d]);

    for (size_t l = 0; l < size_t(kNumMemLevels); ++l) {
        auto ranks = ranksOf(m.loopOrder[size_t(order[l])]);
        for (size_t d = 0; d < rank; ++d)
            f[orderOffset() + l * rank + d] = double(ranks[d]);
    }

    for (size_t l = 0; l < size_t(kNumOnChipLevels); ++l)
        for (size_t t = 0; t < tensors; ++t)
            f[allocOffset() + l * tensors + t] =
                double(m.bufferAlloc[l][t]);
    return f;
}

Mapping
MappingCodec::decode(std::span<const double> features) const
{
    MM_ASSERT(features.size() == total, "feature arity mismatch");
    const Problem &prob = space->problem();
    Mapping m;
    for (auto &t : m.tiling)
        t.assign(rank, 1);
    m.spatial.assign(rank, 1);

    auto roundFactor = [&](double v, size_t d) {
        int64_t f = int64_t(std::llround(v));
        return std::clamp<int64_t>(f, 1, 2 * prob.bounds[d]);
    };

    const MemLevel order[] = {MemLevel::L1, MemLevel::L2, MemLevel::DRAM};
    for (size_t l = 0; l < size_t(kNumMemLevels); ++l)
        for (size_t d = 0; d < rank; ++d)
            m.tiling[size_t(order[l])][d] =
                roundFactor(features[tilingOffset() + l * rank + d], d);

    for (size_t d = 0; d < rank; ++d)
        m.spatial[d] = roundFactor(features[spatialOffset() + d], d);

    for (size_t l = 0; l < size_t(kNumMemLevels); ++l) {
        std::vector<double> scores(
            features.begin() + long(orderOffset() + l * rank),
            features.begin() + long(orderOffset() + (l + 1) * rank));
        m.loopOrder[size_t(order[l])] = orderFromScores(scores);
    }

    for (size_t l = 0; l < size_t(kNumOnChipLevels); ++l) {
        auto &alloc = m.bufferAlloc[l];
        alloc.assign(tensors, 1);
        for (size_t t = 0; t < tensors; ++t) {
            int64_t banks =
                int64_t(std::llround(features[allocOffset() + l * tensors
                                              + t]));
            alloc[t] = int(std::clamp<int64_t>(
                banks, 1, space->arch().levels[l].banks));
        }
    }
    return space->project(m);
}

} // namespace mm
