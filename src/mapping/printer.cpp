#include "mapping/printer.hpp"

#include <sstream>

#include "common/string_util.hpp"

namespace mm {

namespace {

void
renderBlock(std::ostringstream &os, const MapSpace &space, const Mapping &m,
            MemLevel lvl, const std::string &label, int indent)
{
    const auto &algo = *space.problem().algo;
    os << std::string(size_t(indent), ' ') << label << ":\n";
    for (size_t i = 0; i < space.rank(); ++i) {
        int dim = m.loopOrder[size_t(lvl)][i];
        int64_t trip = m.tiling[size_t(lvl)][size_t(dim)];
        if (trip == 1)
            continue;
        os << std::string(size_t(indent + 2), ' ') << "for "
           << algo.dimNames[size_t(dim)] << " in [0:" << trip << ")\n";
    }
}

} // namespace

std::string
renderMapping(const MapSpace &space, const Mapping &m)
{
    const auto &algo = *space.problem().algo;
    const auto &arch = space.arch();
    std::ostringstream os;
    os << "mapping for " << space.problem().name << " on " << arch.name
       << "\n";

    renderBlock(os, space, m, MemLevel::DRAM, "DRAM (temporal)", 0);
    renderBlock(os, space, m, MemLevel::L2,
                strCat("L2 (temporal, ",
                       arch.level(MemLevel::L2).capacityBytes / 1024.0,
                       " KB shared)"),
                2);

    os << "    spatial (across " << m.usedPes() << "/" << arch.numPes
       << " PEs):\n";
    for (size_t d = 0; d < space.rank(); ++d) {
        if (m.spatial[d] == 1)
            continue;
        os << "      parallel-for " << algo.dimNames[d] << " in [0:"
           << m.spatial[d] << ")\n";
    }

    renderBlock(os, space, m, MemLevel::L1,
                strCat("L1 (temporal, ",
                       arch.level(MemLevel::L1).capacityBytes / 1024.0,
                       " KB per PE)"),
                6);
    os << "        mac\n";

    static const char *lvlNames[] = {"L1", "L2"};
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        os << "buffers at " << lvlNames[lvl] << ": ";
        auto extents = lvl == 0 ? m.extentsL1() : m.extentsL2();
        for (size_t t = 0; t < algo.tensorCount(); ++t) {
            if (t > 0)
                os << ", ";
            os << algo.tensors[t].name << "="
               << m.bufferAlloc[size_t(lvl)][t] << " banks ("
               << fmtDouble(space.tensorTileBytes(t, extents) / 1024.0, 3)
               << " KB tile)";
        }
        os << "\n";
    }
    return os.str();
}

std::string
renderMappingCompact(const MapSpace &space, const Mapping &m)
{
    const auto &algo = *space.problem().algo;
    std::ostringstream os;
    os << "tiles[L1|sp|L2|DRAM]:";
    for (size_t d = 0; d < space.rank(); ++d) {
        os << " " << algo.dimNames[d] << "="
           << m.tiling[size_t(MemLevel::L1)][d] << "|" << m.spatial[d]
           << "|" << m.tiling[size_t(MemLevel::L2)][d] << "|"
           << m.tiling[size_t(MemLevel::DRAM)][d];
    }
    os << " orders:";
    static const MemLevel lvls[] = {MemLevel::L1, MemLevel::L2,
                                    MemLevel::DRAM};
    static const char *lvlNames[] = {"L1", "L2", "DR"};
    for (size_t l = 0; l < 3; ++l) {
        os << " " << lvlNames[l] << "=";
        for (int dim : m.loopOrder[size_t(lvls[l])])
            os << algo.dimNames[size_t(dim)];
    }
    os << " banks:";
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        os << (lvl == 0 ? " L1=" : " L2=");
        os << join(m.bufferAlloc[size_t(lvl)], "/");
    }
    return os.str();
}

} // namespace mm
