/**
 * @file
 * The mapping representation (Definition 2.1, instantiated per
 * Section 5.1.3).
 *
 * A mapping fixes, for every loop dimension of the problem:
 *   - temporal tile factors at L1, L2 and DRAM,
 *   - a spatial (cross-PE) factor,
 * plus a loop order per temporal level and a bank allocation per tensor
 * at each on-chip level. The four per-dimension factors multiply to the
 * padded dimension bound (within the [bound, 2*bound] padding window; see
 * common/factorization.hpp).
 *
 * Loop-nest structure implied by a mapping, outermost to innermost:
 *
 *   DRAM temporal block -> L2 temporal block -> spatial fan-out
 *     -> L1 temporal block -> MAC
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/accelerator.hpp"

namespace mm {

/** Per-dimension factor-slot indices, innermost first. */
enum class FactorSlot : int { L1 = 0, Spatial = 1, L2 = 2, DRAM = 3 };

/** Factor slots per dimension (L1, spatial, L2, DRAM). */
inline constexpr int kFactorSlots = 4;

/** A point in the map space. */
struct Mapping
{
    /** tiling[lvl][d]: temporal trip count, lvl indexed by MemLevel. */
    std::array<std::vector<int64_t>, kNumMemLevels> tiling;

    /** spatial[d]: cross-PE parallelism factor. */
    std::vector<int64_t> spatial;

    /** loopOrder[lvl][i]: dimension at nest position i (0 = outermost). */
    std::array<std::vector<int>, kNumMemLevels> loopOrder;

    /** bufferAlloc[lvl][t]: banks for tensor t, lvl in {L1, L2}. */
    std::array<std::vector<int>, kNumOnChipLevels> bufferAlloc;

    /** Number of loop dimensions. */
    size_t rank() const { return spatial.size(); }

    /** Padded bound of dimension @p d: product of all four factors. */
    int64_t dimProduct(size_t d) const;

    /** Per-PE L1 tile trip counts (== tiling[L1]). */
    std::vector<int64_t> extentsL1() const;

    /** Trip counts through the spatial fan-out (L1 * spatial). */
    std::vector<int64_t> extentsSpatial() const;

    /** Trip counts through L2 (L1 * spatial * L2). */
    std::vector<int64_t> extentsL2() const;

    /** Full padded bounds (through DRAM). */
    std::vector<int64_t> extentsFull() const;

    /** Total spatial fan-out (number of PEs used). */
    int64_t usedPes() const;

    /** Structural equality. */
    bool operator==(const Mapping &other) const = default;
};

} // namespace mm
