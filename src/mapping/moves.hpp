/**
 * @file
 * Search-agnostic move operators over the map space.
 *
 * These implement the neighborhoods the black-box baselines need:
 * simulated annealing perturbs one attribute per step, the genetic
 * algorithm recombines attribute groups between parents and mutates
 * individual attributes (Appendix A). All operators return *valid*
 * mappings (they finish with MapSpace::project).
 */
#pragma once

#include "common/rng.hpp"
#include "mapping/map_space.hpp"

namespace mm {

/** The four programmable-attribute groups of Section 5.1.3. */
enum class AttributeGroup : int
{
    Tiling = 0,
    Spatial = 1,
    LoopOrder = 2,
    BufferAlloc = 3,
};

/**
 * One local move: perturb a single randomly-chosen attribute of @p m
 * (resample one dimension's factor tuple, nudge one spatial factor,
 * swap two loop positions, or shift one bank), then project.
 */
Mapping randomNeighbor(const MapSpace &space, const Mapping &m, Rng &rng);

/**
 * GA crossover: for each attribute group element, inherit from either
 * parent uniformly at random, then project.
 */
Mapping crossover(const MapSpace &space, const Mapping &a, const Mapping &b,
                  Rng &rng);

/**
 * GA mutation: each attribute is independently re-randomized with
 * probability @p perAttrProb, then the result is projected.
 */
Mapping mutate(const MapSpace &space, const Mapping &m, double perAttrProb,
               Rng &rng);

} // namespace mm
