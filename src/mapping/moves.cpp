#include "mapping/moves.hpp"

#include <algorithm>

#include "common/factorization.hpp"
#include "common/permutation.hpp"

namespace mm {

namespace {

/** Resample dimension @p d's four-slot factor tuple from scratch. */
void
resampleDim(const MapSpace &space, Mapping &m, size_t d, Rng &rng)
{
    const auto &table =
        factorTable(space.problem().bounds[d], kFactorSlots);
    auto f = table.sample(rng);
    m.tiling[size_t(MemLevel::L1)][d] = f[size_t(FactorSlot::L1)];
    m.spatial[d] = f[size_t(FactorSlot::Spatial)];
    m.tiling[size_t(MemLevel::L2)][d] = f[size_t(FactorSlot::L2)];
    m.tiling[size_t(MemLevel::DRAM)][d] = f[size_t(FactorSlot::DRAM)];
}

/** Move a small prime between a dimension's spatial and L2 factors. */
void
nudgeSpatial(Mapping &m, size_t d, Rng &rng)
{
    auto &spatial = m.spatial[d];
    auto &temporal = m.tiling[size_t(MemLevel::L2)][d];
    bool grow = rng.bernoulli(0.5);
    auto movable = [](int64_t v) {
        for (int64_t p = 2; p * p <= v; ++p)
            if (v % p == 0)
                return p;
        return v;
    };
    if (grow && temporal > 1) {
        int64_t p = movable(temporal);
        temporal /= p;
        spatial *= p;
    } else if (spatial > 1) {
        int64_t p = movable(spatial);
        spatial /= p;
        temporal *= p;
    }
}

} // namespace

Mapping
randomNeighbor(const MapSpace &space, const Mapping &m, Rng &rng)
{
    Mapping next = m;
    const size_t rank = space.rank();
    auto group = AttributeGroup(rng.uniformInt(0, 3));
    switch (group) {
      case AttributeGroup::Tiling: {
        resampleDim(space, next, size_t(rng.uniformInt(0, int64_t(rank) - 1)),
                    rng);
        break;
      }
      case AttributeGroup::Spatial: {
        nudgeSpatial(next, size_t(rng.uniformInt(0, int64_t(rank) - 1)),
                     rng);
        break;
      }
      case AttributeGroup::LoopOrder: {
        auto &order =
            next.loopOrder[size_t(rng.uniformInt(0, kNumMemLevels - 1))];
        size_t i = size_t(rng.uniformInt(0, int64_t(rank) - 1));
        size_t j = size_t(rng.uniformInt(0, int64_t(rank) - 1));
        std::swap(order[i], order[j]);
        break;
      }
      case AttributeGroup::BufferAlloc: {
        size_t lvl = size_t(rng.uniformInt(0, kNumOnChipLevels - 1));
        auto &alloc = next.bufferAlloc[lvl];
        size_t from = size_t(rng.uniformInt(0, int64_t(alloc.size()) - 1));
        size_t to = size_t(rng.uniformInt(0, int64_t(alloc.size()) - 1));
        if (alloc[from] > 1) {
            --alloc[from];
            ++alloc[to];
        }
        break;
      }
    }
    return space.project(next);
}

Mapping
crossover(const MapSpace &space, const Mapping &a, const Mapping &b,
          Rng &rng)
{
    Mapping child = a;
    const size_t rank = space.rank();

    // Whole per-dimension factor tuples travel together so a useful
    // factorization survives recombination.
    for (size_t d = 0; d < rank; ++d) {
        if (!rng.bernoulli(0.5))
            continue;
        for (int lvl = 0; lvl < kNumMemLevels; ++lvl)
            child.tiling[size_t(lvl)][d] = b.tiling[size_t(lvl)][d];
        child.spatial[d] = b.spatial[d];
    }
    for (int lvl = 0; lvl < kNumMemLevels; ++lvl)
        if (rng.bernoulli(0.5))
            child.loopOrder[size_t(lvl)] = b.loopOrder[size_t(lvl)];
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl)
        if (rng.bernoulli(0.5))
            child.bufferAlloc[size_t(lvl)] = b.bufferAlloc[size_t(lvl)];

    return space.project(child);
}

Mapping
mutate(const MapSpace &space, const Mapping &m, double perAttrProb,
       Rng &rng)
{
    Mapping next = m;
    const size_t rank = space.rank();
    for (size_t d = 0; d < rank; ++d)
        if (rng.bernoulli(perAttrProb))
            resampleDim(space, next, d, rng);
    for (int lvl = 0; lvl < kNumMemLevels; ++lvl)
        if (rng.bernoulli(perAttrProb))
            next.loopOrder[size_t(lvl)] = randomPerm(int(rank), rng);
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        if (!rng.bernoulli(perAttrProb))
            continue;
        auto &alloc = next.bufferAlloc[size_t(lvl)];
        int banks = space.arch().levels[size_t(lvl)].banks;
        alloc.assign(space.tensorCount(), 1);
        int spare = banks - int(space.tensorCount());
        for (int i = 0; i < spare; ++i)
            ++alloc[size_t(
                rng.uniformInt(0, int64_t(alloc.size()) - 1))];
    }
    return space.project(next);
}

} // namespace mm
