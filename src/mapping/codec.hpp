/**
 * @file
 * Mapping <-> feature-vector codec (Section 5.5).
 *
 * Encodes a mapping as the flat float vector the surrogate consumes:
 *
 *   [ problem id (D) | tile factors (3D: L1, L2, DRAM) | parallelism (D)
 *     | loop-order ranks (3D) | buffer allocation (2T) ]
 *
 * For CNN-Layer (D=7, T=3) this is 62 values and for MTTKRP (D=4, T=4)
 * 40 values, exactly matching the paper. Decoding rounds each entry to
 * its attribute domain (the paper's "round to the nearest value in P_d")
 * and then projects onto the valid map space; loop orders decode by
 * argsort of their rank scores, so any real-valued vector decodes.
 */
#pragma once

#include <span>
#include <vector>

#include "mapping/map_space.hpp"

namespace mm {

/** Flattens mappings into surrogate features and back. */
class MappingCodec
{
  public:
    explicit MappingCodec(const MapSpace &space);

    /** The map space is captured by reference: forbid temporaries. */
    explicit MappingCodec(MapSpace &&) = delete;

    /** Total feature count (62 for CNN-Layer, 40 for MTTKRP). */
    size_t featureCount() const { return total; }

    size_t pidOffset() const { return 0; }
    size_t pidCount() const { return rank; }
    size_t tilingOffset() const { return rank; }
    size_t tilingCount() const { return size_t(kNumMemLevels) * rank; }
    size_t spatialOffset() const { return tilingOffset() + tilingCount(); }
    size_t spatialCount() const { return rank; }
    size_t orderOffset() const { return spatialOffset() + spatialCount(); }
    size_t orderCount() const { return size_t(kNumMemLevels) * rank; }
    size_t allocOffset() const { return orderOffset() + orderCount(); }
    size_t allocCount() const { return size_t(kNumOnChipLevels) * tensors; }

    /** Encode @p m tagged with this space's problem id. */
    std::vector<double> encode(const Mapping &m) const;

    /** Encode with an explicit problem id (Phase-1 dataset generation). */
    std::vector<double> encodeWithPid(const Mapping &m,
                                      const Problem &pid) const;

    /**
     * Decode a feature vector (pid segment ignored) into a valid mapping:
     * round, clamp, argsort orders, then MapSpace::project.
     */
    Mapping decode(std::span<const double> features) const;

  private:
    const MapSpace *space;
    size_t rank;
    size_t tensors;
    size_t total;
};

} // namespace mm
