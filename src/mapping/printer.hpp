/**
 * @file
 * Human-readable mapping rendering (Timeloop-style loop nest).
 */
#pragma once

#include <string>

#include "mapping/map_space.hpp"

namespace mm {

/**
 * Render @p m as an indented loop nest with per-level buffer-allocation
 * and tile-footprint annotations, e.g. for examples and debugging.
 */
std::string renderMapping(const MapSpace &space, const Mapping &m);

/** One-line compact form: factor tuples, orders and allocations. */
std::string renderMappingCompact(const MapSpace &space, const Mapping &m);

} // namespace mm
