#include "mapping/map_space.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/factorization.hpp"
#include "common/permutation.hpp"
#include "common/string_util.hpp"

namespace mm {

namespace {

int64_t
smallestPrimeFactor(int64_t n)
{
    MM_ASSERT(n >= 2, "no prime factor of < 2");
    for (int64_t p = 2; p * p <= n; ++p)
        if (n % p == 0)
            return p;
    return n;
}

/** log10 of C(n, k). */
double
log10Choose(int64_t n, int64_t k)
{
    if (k < 0 || k > n)
        return -std::numeric_limits<double>::infinity();
    return (std::lgamma(double(n) + 1.0) - std::lgamma(double(k) + 1.0)
            - std::lgamma(double(n - k) + 1.0))
           / std::log(10.0);
}

} // namespace

MapSpace::MapSpace(const AcceleratorSpec &arch, const Problem &problem)
    : archSpec(&arch), prob(&problem)
{
    const size_t tensors = problem.algo->tensorCount();
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        const MemLevelSpec &spec = arch.levels[size_t(lvl)];
        if (spec.banks < int(tensors))
            fatal(strCat("level ", spec.name, " has ", spec.banks,
                         " banks but the problem has ", tensors,
                         " tensors"));
        if (spec.capacityBytes / spec.banks < arch.wordBytes)
            fatal(strCat("level ", spec.name, " banks smaller than a word"));
    }
    if (arch.levels.size() != size_t(kNumMemLevels))
        fatal("accelerator must describe exactly L1, L2 and DRAM");
}

Mapping
MapSpace::randomValid(Rng &rng) const
{
    const size_t d = rank();
    Mapping m;
    for (auto &t : m.tiling)
        t.assign(d, 1);
    m.spatial.assign(d, 1);

    for (size_t i = 0; i < d; ++i) {
        const auto &table = factorTable(prob->bounds[i], kFactorSlots);
        auto f = table.sample(rng);
        m.tiling[size_t(MemLevel::L1)][i] = f[size_t(FactorSlot::L1)];
        m.spatial[i] = f[size_t(FactorSlot::Spatial)];
        m.tiling[size_t(MemLevel::L2)][i] = f[size_t(FactorSlot::L2)];
        m.tiling[size_t(MemLevel::DRAM)][i] = f[size_t(FactorSlot::DRAM)];
    }
    repairSpatial(m);

    for (auto &order : m.loopOrder)
        order = randomPerm(int(d), rng);

    const size_t tensors = tensorCount();
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        auto &alloc = m.bufferAlloc[size_t(lvl)];
        alloc.assign(tensors, 1);
        int spare = archSpec->levels[size_t(lvl)].banks - int(tensors);
        for (int i = 0; i < spare; ++i)
            ++alloc[size_t(rng.uniformInt(0, int64_t(tensors) - 1))];
    }

    repairCapacity(m);
    MM_ASSERT(isMember(m), "randomValid produced invalid mapping: "
                               + validityError(m));
    return m;
}

bool
MapSpace::isMember(const Mapping &m) const
{
    return validityError(m).empty();
}

std::string
MapSpace::validityError(const Mapping &m) const
{
    const size_t d = rank();
    for (const auto &t : m.tiling)
        if (t.size() != d)
            return "tiling arity mismatch";
    if (m.spatial.size() != d)
        return "spatial arity mismatch";

    for (size_t i = 0; i < d; ++i) {
        const auto &table = factorTable(prob->bounds[i], kFactorSlots);
        std::array<int64_t, kFactorSlots> f = {
            m.tiling[size_t(MemLevel::L1)][i], m.spatial[i],
            m.tiling[size_t(MemLevel::L2)][i],
            m.tiling[size_t(MemLevel::DRAM)][i]};
        if (!table.contains(f))
            return strCat("illegal factorization for dim ",
                          prob->algo->dimNames[i]);
    }

    if (m.usedPes() > archSpec->numPes)
        return strCat("spatial fan-out ", m.usedPes(), " exceeds ",
                      archSpec->numPes, " PEs");

    for (const auto &order : m.loopOrder) {
        if (order.size() != d || !isPermutation(order))
            return "loop order is not a permutation";
    }

    const size_t tensors = tensorCount();
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        const auto &alloc = m.bufferAlloc[size_t(lvl)];
        if (alloc.size() != tensors)
            return "buffer allocation arity mismatch";
        int sum = 0;
        for (int banks : alloc) {
            if (banks < 1)
                return "tensor with no banks allocated";
            sum += banks;
        }
        if (sum > archSpec->levels[size_t(lvl)].banks)
            return strCat("allocation exceeds ",
                          archSpec->levels[size_t(lvl)].name, " banks");
    }

    auto e1 = m.extentsL1();
    auto e2 = m.extentsL2();
    for (size_t t = 0; t < tensors; ++t) {
        if (tensorTileBytes(t, e1) > allocBytes(0, t, m))
            return strCat("tensor ", prob->algo->tensors[t].name,
                          " overflows its L1 allocation");
        if (tensorTileBytes(t, e2) > allocBytes(1, t, m))
            return strCat("tensor ", prob->algo->tensors[t].name,
                          " overflows its L2 allocation");
    }
    return "";
}

Mapping
MapSpace::project(const Mapping &raw) const
{
    const size_t d = rank();
    const size_t tensors = tensorCount();
    Mapping m = raw;

    // Arity repair: missing entries become unit factors / identity data.
    for (auto &t : m.tiling)
        t.resize(d, 1);
    m.spatial.resize(d, 1);

    // Per-dimension factorization repair (adjust the DRAM slot first).
    for (size_t i = 0; i < d; ++i) {
        const auto &table = factorTable(prob->bounds[i], kFactorSlots);
        std::array<int64_t, kFactorSlots> f = {
            m.tiling[size_t(MemLevel::L1)][i], m.spatial[i],
            m.tiling[size_t(MemLevel::L2)][i],
            m.tiling[size_t(MemLevel::DRAM)][i]};
        auto fixed = table.repair(f, int(FactorSlot::DRAM));
        m.tiling[size_t(MemLevel::L1)][i] = fixed[size_t(FactorSlot::L1)];
        m.spatial[i] = fixed[size_t(FactorSlot::Spatial)];
        m.tiling[size_t(MemLevel::L2)][i] = fixed[size_t(FactorSlot::L2)];
        m.tiling[size_t(MemLevel::DRAM)][i] =
            fixed[size_t(FactorSlot::DRAM)];
    }
    repairSpatial(m);

    // Loop-order repair: keep the first occurrence of each dimension,
    // then append missing dimensions in index order.
    for (auto &order : m.loopOrder) {
        std::vector<double> score(d);
        for (size_t i = 0; i < d; ++i)
            score[i] = double(2 * d + i);
        for (size_t pos = 0; pos < order.size(); ++pos) {
            int dim = order[pos];
            if (dim >= 0 && size_t(dim) < d
                && score[size_t(dim)] >= double(2 * d))
                score[size_t(dim)] = double(pos);
        }
        order = orderFromScores(score);
    }

    // Allocation repair: at least one bank each, shed from the largest.
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        const int banks = archSpec->levels[size_t(lvl)].banks;
        auto &alloc = m.bufferAlloc[size_t(lvl)];
        alloc.resize(tensors, 1);
        for (auto &a : alloc)
            a = std::clamp(a, 1, banks);
        auto sum = [&]() {
            return std::accumulate(alloc.begin(), alloc.end(), 0);
        };
        while (sum() > banks) {
            auto big = std::max_element(alloc.begin(), alloc.end());
            MM_ASSERT(*big > 1, "cannot shed banks below one per tensor");
            --*big;
        }
    }

    repairCapacity(m);
    MM_ASSERT(isMember(m),
              "projection produced invalid mapping: " + validityError(m));
    return m;
}

void
MapSpace::repairSpatial(Mapping &m) const
{
    // Guard against callers handing in non-positive factors; with all
    // entries >= 1, a product above the PE budget guarantees a factor
    // above 1 to demote.
    for (auto &s : m.spatial)
        s = std::max<int64_t>(s, 1);
    while (m.usedPes() > archSpec->numPes) {
        size_t worst = 0;
        for (size_t i = 1; i < m.spatial.size(); ++i)
            if (m.spatial[i] > m.spatial[worst])
                worst = i;
        MM_ASSERT(m.spatial[worst] > 1, "spatial repair stuck");
        int64_t p = smallestPrimeFactor(m.spatial[worst]);
        m.spatial[worst] /= p;
        m.tiling[size_t(MemLevel::L2)][worst] *= p;
    }
}

void
MapSpace::repairCapacity(Mapping &m) const
{
    const auto &algo = *prob->algo;

    // L1: shrink per-PE tiles by promoting factors to L2 (keeps L2
    // extents constant, so the passes below are independent).
    for (size_t t = 0; t < algo.tensorCount(); ++t) {
        while (true) {
            auto e1 = m.extentsL1();
            if (tensorTileBytes(t, e1) <= allocBytes(0, t, m))
                break;
            size_t dim = size_t(-1);
            int64_t biggest = 1;
            for (size_t i = 0; i < rank(); ++i) {
                int64_t f = m.tiling[size_t(MemLevel::L1)][i];
                if (algo.tensors[t].usesDim(int(i)) && f > biggest) {
                    biggest = f;
                    dim = i;
                }
            }
            MM_ASSERT(dim != size_t(-1),
                      "minimal tile exceeds an L1 bank");
            int64_t p = smallestPrimeFactor(biggest);
            m.tiling[size_t(MemLevel::L1)][dim] /= p;
            m.tiling[size_t(MemLevel::L2)][dim] *= p;
        }
    }

    // L2: shrink staged tiles by promoting L2 factors (or, failing that,
    // spatial and then L1 factors) to DRAM.
    for (size_t t = 0; t < algo.tensorCount(); ++t) {
        while (true) {
            auto e2 = m.extentsL2();
            if (tensorTileBytes(t, e2) <= allocBytes(1, t, m))
                break;
            auto promote = [&](std::vector<int64_t> &factors) {
                size_t dim = size_t(-1);
                int64_t biggest = 1;
                for (size_t i = 0; i < rank(); ++i) {
                    if (algo.tensors[t].usesDim(int(i))
                        && factors[i] > biggest) {
                        biggest = factors[i];
                        dim = i;
                    }
                }
                if (dim == size_t(-1))
                    return false;
                int64_t p = smallestPrimeFactor(biggest);
                factors[dim] /= p;
                m.tiling[size_t(MemLevel::DRAM)][dim] *= p;
                return true;
            };
            bool moved = promote(m.tiling[size_t(MemLevel::L2)])
                         || promote(m.spatial)
                         || promote(m.tiling[size_t(MemLevel::L1)]);
            MM_ASSERT(moved, "minimal tile exceeds an L2 bank");
        }
    }
}

double
MapSpace::log10Size() const
{
    double lg = 0.0;
    for (size_t i = 0; i < rank(); ++i)
        lg += std::log10(
            double(factorTable(prob->bounds[i], kFactorSlots).count()));
    lg += double(kNumMemLevels) * std::log10(factorial(int(rank())));
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        int64_t banks = archSpec->levels[size_t(lvl)].banks;
        int64_t tensors = int64_t(tensorCount());
        lg += log10Choose(banks - 1, tensors - 1);
    }
    return lg;
}

double
MapSpace::tensorTileBytes(size_t t, std::span<const int64_t> extents) const
{
    return double(prob->algo->tileFootprint(t, extents))
           * archSpec->wordBytes;
}

double
MapSpace::allocBytes(int lvl, size_t t, const Mapping &m) const
{
    const MemLevelSpec &spec = archSpec->levels[size_t(lvl)];
    return spec.capacityBytes * double(m.bufferAlloc[size_t(lvl)].at(t))
           / double(spec.banks);
}

} // namespace mm
