/**
 * @file
 * Serve-frontend tests: the wire protocol (JSON parsing, bit-exact
 * hexfloat travel, request validation, mapping round-trips), the
 * single-flight surrogate pool, and the server lifecycle — including
 * the headline guarantee that a served search is bitwise identical to
 * the same spec/seed run offline while a second tenant disconnects
 * mid-run, plus admission control, disconnect cancellation and the
 * failure-isolation path.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/rng.hpp"
#include "core/cache.hpp"
#include "core/phase1.hpp"
#include "mapping/map_space.hpp"
#include "search/orchestrator.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/surrogate_pool.hpp"

namespace mm::serve {
namespace {

namespace fs = std::filesystem;

/** Self-cleaning scratch directory (one per use, collision-free). */
struct TempDir
{
    explicit TempDir(const std::string &tag)
    {
        static std::atomic<int> counter{0};
        path = (fs::temp_directory_path()
                / ("mm_serve_" + tag + "_" + std::to_string(::getpid())
                   + "_" + std::to_string(counter.fetch_add(1))))
                   .string();
        fs::create_directories(path);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    std::string path;
};

uint64_t
bits(double v)
{
    uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

/** Poll @p cond (relaxed metrics reads) until true or ~@p ms elapse. */
template <typename Cond>
bool
eventually(Cond &&cond, int ms = 15000)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (cond())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return cond();
}

/** A request that keeps a worker busy until it is cancelled. */
ServeRequest
longRandomRequest(const std::string &id)
{
    ServeRequest req;
    req.id = id;
    req.arch = "tiny";
    req.algo = "conv1d";
    req.problemName = "long";
    req.bounds = {256, 5};
    req.method = "Random";
    req.steps = 2'000'000'000;
    req.seed = 7;
    req.progressEvery = 2000;
    return req;
}

// ---------------------------------------------------------------------------
// JSON layer
// ---------------------------------------------------------------------------

TEST(ServeJson, ParsesNestedDocuments)
{
    std::optional<JsonValue> doc = parseJson(
        R"({"a":1,"b":[true,null,"x\n"],"c":-2.5,"d":{"e":"f"}})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->getInt("a", -1), 1);
    const JsonValue *b = doc->find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(b->array.size(), 3u);
    EXPECT_TRUE(b->array[0].isBool() && b->array[0].boolean);
    EXPECT_TRUE(b->array[1].isNull());
    EXPECT_EQ(b->array[2].str, "x\n");
    EXPECT_EQ(doc->getDouble("c", 0.0), -2.5);
    const JsonValue *d = doc->find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->getStr("e", ""), "f");
}

TEST(ServeJson, RejectsMalformedInput)
{
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\":", &err).has_value());
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parseJson("{} trailing", &err).has_value());
    EXPECT_FALSE(parseJson("", &err).has_value());
}

TEST(ServeJson, RejectsPathologicalNesting)
{
    // Regression: '[[[[…' with ~100k open brackets used to recurse once
    // per bracket and overflow the stack; the depth cap must turn it
    // into an ordinary parse error.
    std::string err;
    EXPECT_FALSE(parseJson(std::string(100'000, '['), &err).has_value());
    EXPECT_FALSE(err.empty());

    // A well-formed document deeper than the cap is rejected too...
    std::string deep = std::string(65, '[') + std::string(65, ']');
    EXPECT_FALSE(parseJson(deep).has_value());
    // ...while nesting at the cap still parses.
    std::string atCap = std::string(64, '[') + std::string(64, ']');
    EXPECT_TRUE(parseJson(atCap).has_value());
}

TEST(ServeJson, HexfloatRoundTripIsBitExact)
{
    const double values[] = {0.0,
                             -0.0,
                             0.1,
                             1.0 / 3.0,
                             1e-300,
                             5e-324, // smallest denormal
                             123456.789,
                             std::numeric_limits<double>::infinity()};
    for (double v : values) {
        // Travel exactly as the protocol does: embedded in a document.
        std::string doc = "{\"v\":" + jsonHexDouble(v) + "}";
        std::optional<JsonValue> parsed = parseJson(doc);
        ASSERT_TRUE(parsed.has_value()) << doc;
        std::optional<double> back =
            parseHexDouble(parsed->getStr("v", ""));
        ASSERT_TRUE(back.has_value()) << doc;
        EXPECT_EQ(bits(*back), bits(v)) << doc;
    }
}

// ---------------------------------------------------------------------------
// Protocol layer
// ---------------------------------------------------------------------------

TEST(ServeProtocol, ParsesAndValidatesRequests)
{
    std::string err;
    std::optional<ServeRequest> req = parseRequest(
        R"({"id":"r1","arch":"tiny","algo":"conv1d","bounds":[64,3],)"
        R"("method":"SA","steps":10,"runs":2,"seed":5,"trace":true})",
        &err);
    ASSERT_TRUE(req.has_value()) << err;
    EXPECT_EQ(req->id, "r1");
    EXPECT_EQ(req->method, "SA");
    EXPECT_EQ(req->steps, 10);
    EXPECT_EQ(req->runs, 2);
    EXPECT_EQ(req->seed, 5u);
    EXPECT_TRUE(req->trace);
    ASSERT_EQ(req->bounds.size(), 2u);

    // Every rejection fills a client-presentable reason.
    const char *bad[] = {
        R"({"arch":"tiny","algo":"conv1d","bounds":[64,3],"steps":1})",
        R"({"id":"x","algo":"conv1d","bounds":[64,3,2],"steps":1})",
        R"({"id":"x","algo":"conv1d","bounds":[64,3]})",
        R"({"id":"x","algo":"nope","bounds":[64,3],"steps":1})",
        R"({"id":"x","arch":"nope","algo":"conv1d","bounds":[64,3],"steps":1})",
        R"({"id":"x","algo":"conv1d","bounds":[64,0],"steps":1})",
        R"({"id":"x","algo":"conv1d","bounds":[],"steps":1})",
        // Regression: 2^32+1 used to truncate to int 1 and slip past
        // the runs >= 1 check; large-but-representable values must
        // bounce off the cap instead of pre-allocating a sink per run.
        R"({"id":"x","algo":"conv1d","bounds":[64,3],"steps":1,"runs":4294967297})",
        R"({"id":"x","algo":"conv1d","bounds":[64,3],"steps":1,"runs":1000000000})",
        R"({"id":"x","algo":"conv1d","bounds":[64,3],"steps":1,"runs":0})",
        R"({"id":"x","algo":"conv1d","bounds":[64,3],"steps":1,"runs":-1})",
        R"(not json at all)",
    };
    for (const char *line : bad) {
        err.clear();
        EXPECT_FALSE(parseRequest(line, &err).has_value()) << line;
        EXPECT_FALSE(err.empty()) << line;
    }

    // The cap itself is admissible.
    std::optional<ServeRequest> atCap = parseRequest(
        R"({"id":"x","algo":"conv1d","bounds":[64,3],"steps":1,"runs":)"
            + std::to_string(kMaxRuns) + "}",
        &err);
    ASSERT_TRUE(atCap.has_value()) << err;
    EXPECT_EQ(atCap->runs, int(kMaxRuns));
}

TEST(ServeProtocol, BudgetIntersectsServerWallCap)
{
    ServeRequest req;
    req.steps = 100;
    req.wallSec = 30.0;
    SearchBudget b = budgetFor(req, 5.0);
    EXPECT_EQ(b.maxSteps, 100);
    EXPECT_EQ(b.maxWallSec, 5.0);
    b = budgetFor(req, 0.0); // no server cap
    EXPECT_EQ(b.maxWallSec, 30.0);
}

TEST(ServeProtocol, ClientBudgetsTravelAsHexfloatBitExact)
{
    // Regression: budgets used to ride the wire as %.17g decimals —
    // the one double field whose text depended on the client libc's
    // rounding. They must travel as quoted hexfloats like every other
    // double and parse back bit-identical.
    ServeRequest req;
    req.id = "b1";
    req.algo = "conv1d";
    req.bounds = {64, 3};
    req.steps = 10;
    req.virtualSec = 0.1;       // not exactly representable
    req.wallSec = 1.0 / 3.0;    // ditto
    const std::string line = requestToJson(req);
    EXPECT_NE(line.find("\"virtualSec\":\"0x"), std::string::npos) << line;
    EXPECT_NE(line.find("\"wallSec\":\"0x"), std::string::npos) << line;

    std::string err;
    std::optional<ServeRequest> back = parseRequest(line, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(bits(back->virtualSec), bits(req.virtualSec));
    EXPECT_EQ(bits(back->wallSec), bits(req.wallSec));
}

TEST(ServeProtocol, MappingRoundTripsThroughJson)
{
    AcceleratorSpec arch = AcceleratorSpec::tinyDefault();
    Problem problem = makeProblem(conv1dAlgo(), "map-rt", {256, 5});
    MapSpace space(arch, problem);
    Rng rng(17);
    for (int i = 0; i < 8; ++i) {
        Mapping m = space.randomValid(rng);
        std::optional<JsonValue> doc = parseJson(mappingToJson(m));
        ASSERT_TRUE(doc.has_value());
        std::optional<Mapping> back = mappingFromJson(*doc);
        ASSERT_TRUE(back.has_value());
        EXPECT_TRUE(*back == m);
    }
    EXPECT_FALSE(mappingFromJson(*parseJson("{}")).has_value());
    EXPECT_FALSE(mappingFromJson(*parseJson("[1,2]")).has_value());
}

// ---------------------------------------------------------------------------
// Surrogate pool + server lifecycle (shares one small trained surrogate)
// ---------------------------------------------------------------------------

class ServeFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        arch = new AcceleratorSpec(AcceleratorSpec::paperDefault());
        phase1 = new Phase1Config();
        phase1->data.samples = 2000;
        phase1->data.problemCount = 8;
        phase1->data.seed = 11;
        phase1->train.epochs = 4;
        phase1->hidden = {24, 32, 24};
        phase1->seed = 13;
        trained =
            new Phase1Result(trainSurrogate(*arch, conv1dAlgo(), *phase1));

        // Pre-store the model under the pool's key: servers built on
        // baseConfig() hit the disk tier instead of retraining per test.
        cacheDir = new TempDir("fixture_cache");
        Phase1Config resolved = *phase1;
        resolved.resolve();
        SurrogateCache cache(cacheDir->path);
        cache.store(resolved.fingerprint(*arch, conv1dAlgo()),
                    trained->surrogate);
    }

    static void
    TearDownTestSuite()
    {
        delete cacheDir;
        delete trained;
        delete phase1;
        delete arch;
        cacheDir = nullptr;
        trained = nullptr;
        phase1 = nullptr;
        arch = nullptr;
    }

    static ServeConfig
    baseConfig()
    {
        ServeConfig cfg;
        cfg.port = 0; // ephemeral
        cfg.phase1 = *phase1;
        cfg.cacheDir = cacheDir->path;
        cfg.useCache = true;
        return cfg;
    }

    static AcceleratorSpec *arch;
    static Phase1Config *phase1;
    static Phase1Result *trained;
    static TempDir *cacheDir;
};

AcceleratorSpec *ServeFixture::arch = nullptr;
Phase1Config *ServeFixture::phase1 = nullptr;
Phase1Result *ServeFixture::trained = nullptr;
TempDir *ServeFixture::cacheDir = nullptr;

TEST_F(ServeFixture, PoolColdMissIsSingleFlight)
{
    TempDir dir("pool_sf");
    std::atomic<int> trains{0};
    SurrogatePool pool(
        *phase1, dir.path, /*useCache=*/false, nullptr,
        [&trains](const AcceleratorSpec &, const AlgorithmSpec &,
                  const Phase1Config &) {
            trains.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            return trained->surrogate;
        });

    std::shared_ptr<Surrogate> a, b;
    std::thread t1([&] { a = pool.acquire(*arch, conv1dAlgo()); });
    std::thread t2([&] { b = pool.acquire(*arch, conv1dAlgo()); });
    t1.join();
    t2.join();

    EXPECT_EQ(trains.load(), 1);
    EXPECT_EQ(pool.trainings(), 1u);
    EXPECT_EQ(pool.residentCount(), 1u);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a, b); // one master, shared

    // Third acquire is a pure memory-tier hit.
    EXPECT_EQ(pool.acquire(*arch, conv1dAlgo()), a);
    EXPECT_EQ(pool.trainings(), 1u);
}

TEST_F(ServeFixture, PoolDiskTierAvoidsRetraining)
{
    SurrogatePool pool(
        *phase1, cacheDir->path, /*useCache=*/true, nullptr,
        [](const AcceleratorSpec &, const AlgorithmSpec &,
           const Phase1Config &) -> Surrogate {
            throw std::runtime_error("disk tier must satisfy this");
        });
    std::shared_ptr<Surrogate> s = pool.acquire(*arch, conv1dAlgo());
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(pool.trainings(), 0u);
    EXPECT_EQ(pool.residentCount(), 1u);
}

TEST_F(ServeFixture, PoolFailedTrainingReleasesTheKey)
{
    TempDir dir("pool_retry");
    std::atomic<int> calls{0};
    SurrogatePool pool(
        *phase1, dir.path, /*useCache=*/false, nullptr,
        [&calls](const AcceleratorSpec &, const AlgorithmSpec &,
                 const Phase1Config &) {
            if (calls.fetch_add(1) == 0)
                throw std::runtime_error("transient");
            return trained->surrogate;
        });
    EXPECT_THROW(pool.acquire(*arch, conv1dAlgo()), std::runtime_error);
    EXPECT_EQ(pool.residentCount(), 0u);
    std::shared_ptr<Surrogate> s = pool.acquire(*arch, conv1dAlgo());
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(calls.load(), 2);
}

/**
 * The headline acceptance test: tenant B's pooled MM-P search, served
 * while tenant A streams and then disconnects mid-run, is bitwise
 * identical to the same spec/seed run offline through runMany.
 */
TEST_F(ServeFixture, ServedSearchIsBitwiseIdenticalToOffline)
{
    ServeConfig cfg = baseConfig();
    cfg.workers = 2;
    cfg.queueCap = 4;
    SearchServer server(cfg);
    server.start();

    // Tenant A occupies one worker and streams heartbeats.
    ServeClient a;
    ASSERT_TRUE(a.connectTo(server.port()));
    ASSERT_TRUE(a.sendRequest(longRandomRequest("tenant-a")));
    ASSERT_TRUE(a.waitFor("accepted", "tenant-a").has_value());
    ASSERT_TRUE(a.waitFor("progress", "tenant-a").has_value());

    // Tenant B runs the pooled surrogate path on the other worker.
    ServeClient b;
    ASSERT_TRUE(b.connectTo(server.port()));
    ServeRequest rb;
    rb.id = "tenant-b";
    rb.arch = "paper";
    rb.algo = "conv1d";
    rb.problemName = "serve-bit";
    rb.bounds = {120, 4};
    rb.method = "MM-P:chains=4";
    rb.steps = 120;
    rb.runs = 2;
    rb.seed = 99;
    rb.progressEvery = 25;
    rb.trace = true;
    ASSERT_TRUE(b.sendRequest(rb));
    ASSERT_TRUE(b.waitFor("accepted", "tenant-b").has_value());
    ASSERT_TRUE(b.waitFor("progress", "tenant-b").has_value());

    // A vanishes mid-run; B must survive its neighbour's cancellation.
    a.close();

    std::optional<JsonValue> result = b.waitFor("result", "tenant-b");
    ASSERT_TRUE(result.has_value());

    // The offline reference: same spec, seed, problem and surrogate.
    Problem problem = makeProblem(conv1dAlgo(), "serve-bit", {120, 4});
    MapSpace space(*arch, problem);
    CostModel model(space);
    Surrogate copy = trained->surrogate;
    MultiRunOptions opts;
    opts.runs = 2;
    opts.baseSeed = 99;
    opts.threads = 1;
    opts.collectTrace = true;
    MultiRunResult offline =
        runMany("MM-P:chains=4", SearcherBuildContext{model, &copy},
                SearchBudget::bySteps(120), opts);

    std::optional<double> best =
        parseHexDouble(result->getStr("bestNormEdp", ""));
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(bits(*best), bits(offline.bestNormEdp));
    std::optional<double> median =
        parseHexDouble(result->getStr("medianNormEdp", ""));
    ASSERT_TRUE(median.has_value());
    EXPECT_EQ(bits(*median), bits(offline.medianNormEdp));
    EXPECT_EQ(result->getInt("failedRuns", -1), offline.failedRuns);

    const JsonValue *runs = result->find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->array.size(), offline.runs.size());
    for (size_t r = 0; r < offline.runs.size(); ++r) {
        const JsonValue &served = runs->array[r];
        const SearchResult &off = offline.runs[r];
        EXPECT_EQ(served.getInt("steps", -1), off.steps) << "run " << r;

        std::optional<double> edp =
            parseHexDouble(served.getStr("bestNormEdp", ""));
        ASSERT_TRUE(edp.has_value()) << "run " << r;
        EXPECT_EQ(bits(*edp), bits(off.bestNormEdp)) << "run " << r;
        std::optional<double> vsec =
            parseHexDouble(served.getStr("virtualSec", ""));
        ASSERT_TRUE(vsec.has_value()) << "run " << r;
        EXPECT_EQ(bits(*vsec), bits(off.virtualSec)) << "run " << r;

        const JsonValue *bestMap = served.find("best");
        ASSERT_NE(bestMap, nullptr) << "run " << r;
        std::optional<Mapping> mapping = mappingFromJson(*bestMap);
        ASSERT_TRUE(mapping.has_value()) << "run " << r;
        EXPECT_TRUE(*mapping == off.best) << "run " << r;

        const JsonValue *trace = served.find("trace");
        ASSERT_NE(trace, nullptr) << "run " << r;
        ASSERT_EQ(trace->array.size(), off.trace.size()) << "run " << r;
        for (size_t i = 0; i < off.trace.size(); ++i) {
            const JsonValue &point = trace->array[i];
            ASSERT_EQ(point.array.size(), 3u);
            EXPECT_EQ(point.array[0].integer, off.trace[i].step);
            std::optional<double> pv = parseHexDouble(point.array[1].str);
            std::optional<double> pb = parseHexDouble(point.array[2].str);
            ASSERT_TRUE(pv.has_value() && pb.has_value());
            EXPECT_EQ(bits(*pv), bits(off.trace[i].virtualSec));
            EXPECT_EQ(bits(*pb), bits(off.trace[i].bestNormEdp));
        }
    }

    // A's disconnect is accounted as a cancellation once its search
    // observes the stop token.
    const ServeMetrics &m = server.metrics();
    EXPECT_TRUE(eventually([&] { return m.cancelled.load() >= 1; }));
    // The result line can reach the client before the worker bumps its
    // counter — poll instead of snapshotting.
    EXPECT_TRUE(eventually([&] { return m.completed.load() >= 1; }));
    EXPECT_GE(m.progressEvents.load(), 2u);
    EXPECT_GE(m.poolDiskHits.load() + m.poolWarmHits.load(), 1u);
    server.stop();
}

TEST_F(ServeFixture, DisconnectCancelsAndFreesTheWorker)
{
    ServeConfig cfg = baseConfig();
    cfg.workers = 1;
    cfg.queueCap = 2;
    SearchServer server(cfg);
    server.start();

    {
        ServeClient c;
        ASSERT_TRUE(c.connectTo(server.port()));
        ASSERT_TRUE(c.sendRequest(longRandomRequest("goner")));
        ASSERT_TRUE(c.waitFor("accepted", "goner").has_value());
        ASSERT_TRUE(c.waitFor("progress", "goner").has_value());
    } // hard disconnect mid-run

    const ServeMetrics &m = server.metrics();
    ASSERT_TRUE(eventually([&] {
        return m.cancelled.load() >= 1 && m.activeWorkers.load() == 0;
    }));

    // The worker is free again: a small request completes end to end.
    ServeClient d;
    ASSERT_TRUE(d.connectTo(server.port()));
    ServeRequest small = longRandomRequest("after");
    small.steps = 64;
    small.progressEvery = 0;
    ASSERT_TRUE(d.sendRequest(small));
    ASSERT_TRUE(d.waitFor("accepted", "after").has_value());
    std::optional<JsonValue> result = d.waitFor("result", "after");
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->getInt("failedRuns", -1), 0);
    server.stop();
}

TEST_F(ServeFixture, ConnectionChurnIsReapedAndServerStaysLive)
{
    // Regression for the reader reaper: finished reader threads are
    // spliced out under connMtx but joined outside it, so a burst of
    // short-lived connections must neither wedge the accept loop nor
    // leak reader slots — the server stays responsive throughout.
    ServeConfig cfg = baseConfig();
    cfg.workers = 1;
    cfg.queueCap = 4;
    SearchServer server(cfg);
    server.start();

    for (int round = 0; round < 12; ++round) {
        ServeClient c;
        ASSERT_TRUE(c.connectTo(server.port())) << "round " << round;
        if (round % 3 == 0) {
            // Some churners speak a little garbage first; the reply
            // proves the reader processed it before the disconnect.
            ASSERT_TRUE(c.sendLine("{\"nope\":1}"));
            ASSERT_TRUE(c.waitFor("rejected", "").has_value());
        }
    } // each round's hard close marks its reader finished

    // The next accept reaps the backlog; a real request still runs
    // end to end.
    ServeClient d;
    ASSERT_TRUE(d.connectTo(server.port()));
    ServeRequest req = longRandomRequest("churn");
    req.steps = 64;
    req.progressEvery = 0;
    ASSERT_TRUE(d.sendRequest(req));
    ASSERT_TRUE(d.waitFor("accepted", "churn").has_value());
    std::optional<JsonValue> result = d.waitFor("result", "churn");
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->getInt("failedRuns", -1), 0);
    server.stop();
}

TEST_F(ServeFixture, AdmissionControlRejectsWhenQueueIsFull)
{
    ServeConfig cfg = baseConfig();
    cfg.workers = 1;
    cfg.queueCap = 1;
    SearchServer server(cfg);
    server.start();

    ServeClient c;
    ASSERT_TRUE(c.connectTo(server.port()));

    // q1 occupies the only worker (its first progress line proves it
    // left the queue), q2 fills the queue, q3 must bounce.
    ASSERT_TRUE(c.sendRequest(longRandomRequest("q1")));
    ASSERT_TRUE(c.waitFor("accepted", "q1").has_value());
    ASSERT_TRUE(c.waitFor("progress", "q1").has_value());
    ASSERT_TRUE(c.sendRequest(longRandomRequest("q2")));
    ASSERT_TRUE(c.waitFor("accepted", "q2").has_value());
    ASSERT_TRUE(c.sendRequest(longRandomRequest("q3")));
    std::optional<JsonValue> rejected = c.waitFor("rejected", "q3");
    ASSERT_TRUE(rejected.has_value());
    EXPECT_EQ(rejected->getStr("reason", ""), "queue full");
    EXPECT_GE(server.metrics().rejected.load(), 1u);

    // Disconnect reclaims both the running and the queued job.
    c.close();
    const ServeMetrics &m = server.metrics();
    EXPECT_TRUE(eventually([&] { return m.cancelled.load() >= 2; }));
    server.stop();
}

TEST_F(ServeFixture, ConcurrentColdRequestsTrainOnce)
{
    ServeConfig cfg = baseConfig();
    cfg.workers = 2;
    cfg.useCache = false; // force the cold path
    std::atomic<int> trains{0};
    cfg.trainer = [&trains](const AcceleratorSpec &,
                            const AlgorithmSpec &, const Phase1Config &) {
        trains.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        return trained->surrogate;
    };
    SearchServer server(cfg);
    server.start();

    ServeClient a, b;
    ASSERT_TRUE(a.connectTo(server.port()));
    ASSERT_TRUE(b.connectTo(server.port()));
    ServeRequest req;
    req.arch = "paper";
    req.algo = "conv1d";
    req.problemName = "cold";
    req.bounds = {120, 4};
    req.method = "MM";
    req.steps = 40;
    req.id = "cold-a";
    req.seed = 3;
    ASSERT_TRUE(a.sendRequest(req));
    req.id = "cold-b";
    req.seed = 4;
    ASSERT_TRUE(b.sendRequest(req));

    EXPECT_TRUE(a.waitFor("result", "cold-a").has_value());
    EXPECT_TRUE(b.waitFor("result", "cold-b").has_value());
    EXPECT_EQ(trains.load(), 1);
    EXPECT_EQ(server.pool().trainings(), 1u);
    EXPECT_EQ(server.metrics().poolTrainings.load(), 1u);
    server.stop();
}

TEST_F(ServeFixture, BadLinesAndBadMethodsAreIsolated)
{
    ServeConfig cfg = baseConfig();
    SearchServer server(cfg);
    server.start();

    ServeClient c;
    ASSERT_TRUE(c.connectTo(server.port()));

    // Malformed line: rejected without an id, connection stays usable.
    ASSERT_TRUE(c.sendLine("this is not json"));
    std::optional<JsonValue> event = c.readEvent();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->getStr("type", ""), "rejected");
    EXPECT_EQ(event->getStr("id", "?"), "");

    // Unknown method passes admission (the registry is consulted at run
    // time) and comes back as a terminal error — never a dead server.
    ServeRequest req = longRandomRequest("nope");
    req.method = "NoSuchMethod";
    req.steps = 10;
    ASSERT_TRUE(c.sendRequest(req));
    ASSERT_TRUE(c.waitFor("accepted", "nope").has_value());
    std::optional<JsonValue> error = c.waitFor("error", "nope");
    ASSERT_TRUE(error.has_value());
    EXPECT_FALSE(error->getStr("message", "").empty());
    EXPECT_GE(server.metrics().failed.load(), 1u);

    // The server still serves: a well-formed request completes.
    ServeRequest ok = longRandomRequest("still-up");
    ok.steps = 64;
    ok.progressEvery = 0;
    ASSERT_TRUE(c.sendRequest(ok));
    EXPECT_TRUE(c.waitFor("result", "still-up").has_value());
    server.stop();
}

TEST_F(ServeFixture, BranchAndBoundMethodIsServable)
{
    ServeConfig cfg = baseConfig();
    SearchServer server(cfg);
    server.start();

    ServeClient c;
    ASSERT_TRUE(c.connectTo(server.port()));
    ServeRequest req;
    req.id = "bb-serve";
    req.arch = "paper";
    req.algo = "conv1d";
    req.problemName = "serve-bb";
    req.bounds = {16, 4};
    req.method = "BB:maxNodes=300";
    req.steps = 80;
    req.seed = 7;
    ASSERT_TRUE(c.sendRequest(req));
    ASSERT_TRUE(c.waitFor("accepted", "bb-serve").has_value());
    std::optional<JsonValue> result = c.waitFor("result", "bb-serve");
    ASSERT_TRUE(result.has_value());

    std::optional<double> best =
        parseHexDouble(result->getStr("bestNormEdp", ""));
    ASSERT_TRUE(best.has_value());
    EXPECT_TRUE(std::isfinite(*best));
    EXPECT_GE(*best, 1.0 - 1e-9); // admissible normalization

    // The served best mapping round-trips and is a space member.
    const JsonValue *runs = result->find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_FALSE(runs->array.empty());
    const JsonValue *bestMap = runs->array[0].find("best");
    ASSERT_NE(bestMap, nullptr);
    std::optional<Mapping> mapping = mappingFromJson(*bestMap);
    ASSERT_TRUE(mapping.has_value());
    Problem problem = makeProblem(conv1dAlgo(), "serve-bb", {16, 4});
    MapSpace space(*arch, problem);
    EXPECT_TRUE(space.isMember(*mapping));
    server.stop();
}

TEST_F(ServeFixture, OversizedLineIsRejectedAndConnectionDropped)
{
    ServeConfig cfg = baseConfig();
    SearchServer server(cfg);
    server.start();

    ServeClient c;
    ASSERT_TRUE(c.connectTo(server.port()));

    // A newline-free flood just past the cap: the reader must reject
    // and stop serving this connection instead of buffering it. (Kept
    // only slightly above the cap so the tail fits in kernel socket
    // buffers — the server stops recv'ing once it decides to drop.)
    std::string flood(kMaxLineBytes + 8 * 1024, 'x');
    ASSERT_TRUE(c.sendLine(flood));
    std::optional<JsonValue> event = c.readEvent();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->getStr("type", ""), "rejected");
    EXPECT_EQ(event->getStr("reason", ""), "request line too long");
    EXPECT_GE(server.metrics().rejected.load(), 1u);

    // The dropped connection's input is ignored from here on; a send
    // may fail once the server closes the fd, which is fine.
    (void)c.sendRequest(longRandomRequest("ghost"));

    // Other tenants are unaffected.
    ServeClient d;
    ASSERT_TRUE(d.connectTo(server.port()));
    ServeRequest ok = longRandomRequest("healthy");
    ok.steps = 64;
    ok.progressEvery = 0;
    ASSERT_TRUE(d.sendRequest(ok));
    EXPECT_TRUE(d.waitFor("result", "healthy").has_value());

    server.stop();
    // EOF, with no accepted line ever emitted for the ghost request.
    EXPECT_FALSE(c.readEvent().has_value());
}

TEST_F(ServeFixture, StopWithBusyClientsShutsDownCleanly)
{
    ServeConfig cfg = baseConfig();
    cfg.workers = 1;
    cfg.queueCap = 2;
    SearchServer server(cfg);
    server.start();

    ServeClient c;
    ASSERT_TRUE(c.connectTo(server.port()));
    ASSERT_TRUE(c.sendRequest(longRandomRequest("busy")));
    ASSERT_TRUE(c.waitFor("accepted", "busy").has_value());
    ASSERT_TRUE(c.waitFor("progress", "busy").has_value());
    ASSERT_TRUE(c.sendRequest(longRandomRequest("parked")));
    ASSERT_TRUE(c.waitFor("accepted", "parked").has_value());

    // stop() must cancel the running search, flush the parked one and
    // join every thread — the destructor re-entering is a no-op.
    server.stop();
    EXPECT_GE(server.metrics().cancelled.load(), 1u);
    EXPECT_EQ(server.metrics().activeWorkers.load(), 0);
    server.stop();
}

} // namespace
} // namespace mm::serve
