/**
 * @file
 * Unit and property tests for the common substrate: factorization
 * tables, permutations, statistics, RNG determinism and env parsing.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <set>
#include <thread>

#include <sstream>

#include "common/clock.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/factorization.hpp"
#include "common/parallel_context.hpp"
#include "common/permutation.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace mm {
namespace {

TEST(Divisors, SmallValues)
{
    EXPECT_EQ(divisors(1), (std::vector<int64_t>{1}));
    EXPECT_EQ(divisors(12), (std::vector<int64_t>{1, 2, 3, 4, 6, 12}));
    EXPECT_EQ(divisors(13), (std::vector<int64_t>{1, 13}));
}

/** Brute-force count of legal ordered tuples for cross-checking. */
int64_t
bruteCount(int64_t bound, int slots, int64_t maxFactor, int64_t padLimit)
{
    if (slots == 0)
        return 0;
    std::vector<int64_t> stack(size_t(slots), 1);
    int64_t count = 0;
    // Odometer over all tuples with entries in [1, maxFactor].
    while (true) {
        int64_t p = 1;
        for (int64_t f : stack)
            p *= f;
        if (p >= bound && p <= padLimit)
            ++count;
        size_t i = stack.size();
        while (i > 0) {
            --i;
            if (++stack[i] <= maxFactor)
                break;
            stack[i] = 1;
            if (i == 0)
                return count;
        }
    }
}

TEST(FactorizationTable, CountMatchesBruteForce)
{
    for (int64_t bound : {1, 2, 3, 5, 6, 8, 12, 16}) {
        for (int slots : {1, 2, 3, 4}) {
            FactorizationTable table(bound, slots);
            int64_t expect = bruteCount(bound, slots,
                                        table.maxFactorValue(),
                                        table.padLimitValue());
            EXPECT_EQ(table.count(), expect)
                << "bound=" << bound << " slots=" << slots;
        }
    }
}

TEST(FactorizationTable, BoundOneHasSingleTuple)
{
    FactorizationTable table(1, 4);
    EXPECT_EQ(table.count(), 1);
    Rng rng(7);
    auto f = table.sample(rng);
    EXPECT_EQ(f, (std::vector<int64_t>{1, 1, 1, 1}));
}

TEST(FactorizationTable, SamplesAreAlwaysLegal)
{
    Rng rng(42);
    for (int64_t bound : {3, 7, 28, 112, 256}) {
        const auto &table = factorTable(bound, 4);
        for (int i = 0; i < 200; ++i) {
            auto f = table.sample(rng);
            EXPECT_TRUE(table.contains(f)) << "bound=" << bound;
        }
    }
}

TEST(FactorizationTable, SamplingIsUniform)
{
    // chi-squared-style sanity: every legal tuple of a small space should
    // appear with roughly equal frequency.
    FactorizationTable table(6, 2);
    Rng rng(1);
    std::map<std::vector<int64_t>, int> hits;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        ++hits[table.sample(rng)];
    EXPECT_EQ(int64_t(hits.size()), table.count());
    double expect = double(draws) / double(table.count());
    for (const auto &[tuple, n] : hits) {
        EXPECT_NEAR(double(n), expect, 0.25 * expect)
            << join(tuple, "x");
    }
}

TEST(FactorizationTable, ContainsRejectsIllegal)
{
    FactorizationTable table(8, 3);
    // pad limit for bound 8: 8 + 8/4 = 10.
    EXPECT_EQ(table.padLimitValue(), 10);
    EXPECT_TRUE(table.contains(std::vector<int64_t>{2, 2, 2}));
    EXPECT_TRUE(table.contains(std::vector<int64_t>{9, 1, 1}));  // padded
    EXPECT_TRUE(table.contains(std::vector<int64_t>{5, 1, 2}));  // = 10
    EXPECT_FALSE(table.contains(std::vector<int64_t>{1, 1, 1})); // under
    EXPECT_FALSE(table.contains(std::vector<int64_t>{8, 1, 2})); // 16 > 10
    EXPECT_FALSE(table.contains(std::vector<int64_t>{0, 8, 1})); // f < 1
    EXPECT_FALSE(table.contains(std::vector<int64_t>{2, 2}));    // arity
}

TEST(FactorizationTable, RepairIsIdempotentOnLegalTuples)
{
    Rng rng(3);
    const auto &table = factorTable(28, 4);
    for (int i = 0; i < 100; ++i) {
        auto f = table.sample(rng);
        auto fixed = table.repair(f, 3);
        EXPECT_EQ(fixed, f);
    }
}

TEST(FactorizationTable, RepairFixesArbitraryTuples)
{
    const auto &table = factorTable(28, 4);
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        std::vector<int64_t> f = {rng.uniformInt(-3, 80),
                                  rng.uniformInt(-3, 80),
                                  rng.uniformInt(-3, 80),
                                  rng.uniformInt(-3, 80)};
        auto fixed = table.repair(f, 3);
        EXPECT_TRUE(table.contains(fixed)) << join(f, ",");
    }
}

TEST(FactorizationTable, RepairPrefersAdjustSlot)
{
    // A tuple that only under-shoots should be fixed by raising the
    // chosen slot, leaving others untouched.
    FactorizationTable table(32, 4);
    auto fixed = table.repair(std::vector<int64_t>{2, 1, 2, 1}, 3);
    EXPECT_EQ(fixed[0], 2);
    EXPECT_EQ(fixed[1], 1);
    EXPECT_EQ(fixed[2], 2);
    EXPECT_GE(fixed[3] * 4, 32);
}

class FactorizationSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int>>
{};

TEST_P(FactorizationSweep, SampleContainsRepairAgree)
{
    auto [bound, slots] = GetParam();
    const auto &table = factorTable(bound, slots);
    Rng rng(uint64_t(bound * 31 + slots));
    for (int i = 0; i < 50; ++i) {
        auto f = table.sample(rng);
        ASSERT_TRUE(table.contains(f));
        EXPECT_EQ(table.repair(f, slots - 1), f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, FactorizationSweep,
    ::testing::Combine(::testing::Values<int64_t>(2, 3, 13, 27, 110, 384,
                                                  1024, 4096),
                       ::testing::Values(2, 3, 4)));

TEST(Permutation, RoundTrip)
{
    Rng rng(5);
    for (int n : {1, 2, 5, 7}) {
        for (int i = 0; i < 20; ++i) {
            auto order = randomPerm(n, rng);
            ASSERT_TRUE(isPermutation(order));
            auto ranks = ranksOf(order);
            EXPECT_EQ(orderFromRanks(ranks), order);
        }
    }
}

TEST(Permutation, OrderFromScoresSortsAscending)
{
    std::vector<double> scores = {2.5, -1.0, 0.25};
    auto order = orderFromScores(scores);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(Permutation, OrderFromScoresBreaksTiesStably)
{
    std::vector<double> scores = {1.0, 1.0, 0.0};
    auto order = orderFromScores(scores);
    EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));
}

TEST(Permutation, Factorial)
{
    EXPECT_DOUBLE_EQ(factorial(0), 1.0);
    EXPECT_DOUBLE_EQ(factorial(7), 5040.0);
}

TEST(RunningStat, MatchesBatchFormulas)
{
    RunningStat rs;
    std::vector<double> xs = {1.0, 4.0, -2.0, 8.5, 0.0};
    for (double x : xs)
        rs.push(x);
    EXPECT_EQ(rs.count(), 5);
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), -2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 8.5);
}

TEST(Stats, GeomeanAndQuantile)
{
    std::vector<double> v = {1.0, 10.0, 100.0};
    EXPECT_NEAR(geomean(v), 10.0, 1e-9);
    EXPECT_NEAR(quantile(v, 0.5), 10.0, 1e-9);
    EXPECT_NEAR(quantile(v, 0.0), 1.0, 1e-9);
    EXPECT_NEAR(quantile(v, 1.0), 100.0, 1e-9);
}

TEST(Rng, DeterministicAndForkIndependent)
{
    Rng a(123), b(123);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.raw(), b.raw());
    Rng parent(9);
    Rng child = parent.fork();
    // Child stream differs from the parent continuation.
    bool anyDiff = false;
    for (int i = 0; i < 8; ++i)
        anyDiff |= parent.raw() != child.raw();
    EXPECT_TRUE(anyDiff);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(77);
    std::set<int64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.uniformInt(2, 5));
    EXPECT_EQ(seen, (std::set<int64_t>{2, 3, 4, 5}));
}

TEST(Env, ParsesAndDefaults)
{
    ::setenv("MM_TEST_INT", "42", 1);
    ::setenv("MM_TEST_DOUBLE", "2.5", 1);
    ::setenv("MM_TEST_BAD", "nope", 1);
    EXPECT_EQ(envInt("MM_TEST_INT", 7), 42);
    EXPECT_EQ(envInt("MM_TEST_MISSING", 7), 7);
    EXPECT_DOUBLE_EQ(envDouble("MM_TEST_DOUBLE", 1.0), 2.5);
    EXPECT_EQ(envStr("MM_TEST_MISSING", "dflt"), "dflt");
    EXPECT_THROW(envInt("MM_TEST_BAD", 0), FatalError);
    ::unsetenv("MM_TEST_INT");
    ::unsetenv("MM_TEST_DOUBLE");
    ::unsetenv("MM_TEST_BAD");
}

TEST(Error, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(StringUtil, JoinAndFormat)
{
    EXPECT_EQ(join(std::vector<int>{1, 2, 3}, "-"), "1-2-3");
    EXPECT_EQ(strCat("a", 1, "b"), "a1b");
    EXPECT_EQ(fmtDouble(3.14159, 3), "3.14");
}

TEST(TableOutput, AlignsAndEchoesCsv)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow("beta", {2.5});
    EXPECT_EQ(t.rowCount(), 2u);
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("# csv"), std::string::npos);
    EXPECT_NE(out.find("# alpha,1"), std::string::npos);
    EXPECT_NE(out.find("# beta,2.5"), std::string::npos);
}

TEST(TableOutput, RejectsArityMismatch)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(WallTimer, MonotoneAndResettable)
{
    WallTimer timer;
    double t1 = timer.elapsedSec();
    double t2 = timer.elapsedSec();
    EXPECT_GE(t2, t1);
    timer.reset();
    EXPECT_GE(timer.elapsedSec(), 0.0);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::vector<int> outer(8, 0);
    pool.parallelFor(outer.size(), [&](size_t i) {
        // Same-pool nesting degrades to an inline loop instead of
        // deadlocking on the single job slot.
        std::vector<int> inner(5, 0);
        pool.parallelFor(inner.size(), [&](size_t j) { inner[j] = 1; });
        int sum = 0;
        for (int v : inner)
            sum += v;
        outer[i] = sum;
    });
    for (int v : outer)
        EXPECT_EQ(v, 5);
}

TEST(ThreadPoolTest, ConcurrentSubmittersSerialize)
{
    ThreadPool pool(3);
    std::vector<std::vector<int>> results(4);
    std::vector<std::thread> callers;
    for (size_t t = 0; t < results.size(); ++t)
        callers.emplace_back([&, t] {
            results[t].assign(100, 0);
            pool.parallelFor(100, [&, t](size_t i) { results[t][i] = 1; });
        });
    for (auto &c : callers)
        c.join();
    for (const auto &r : results) {
        int sum = 0;
        for (int v : r)
            sum += v;
        EXPECT_EQ(sum, 100);
    }
}

TEST(ParallelContextTest, SerialAndPooledLanes)
{
    ParallelContext serial(1);
    EXPECT_EQ(serial.lanes(), 1u);
    EXPECT_EQ(serial.pool(), nullptr);
    std::vector<int> hits(7, 0);
    serial.parallelFor(hits.size(), [&](size_t i) { hits[i] = 1; });
    for (int v : hits)
        EXPECT_EQ(v, 1);

    ParallelContext pooled(3);
    EXPECT_EQ(pooled.lanes(), 3u);
    ASSERT_NE(pooled.pool(), nullptr);
    std::vector<int> hits2(29, 0);
    pooled.parallelFor(hits2.size(), [&](size_t i) { hits2[i] = 1; });
    for (int v : hits2)
        EXPECT_EQ(v, 1);
}

// ---------------------------------------------------------------------------
// Env-knob hardening: malformed values must fail loudly, naming the
// variable and the offending text — never a silently misparsed prefix,
// zero, or size_t-wrapped negative.
// ---------------------------------------------------------------------------

TEST(Env, RejectsTrailingJunkOverflowAndNegativeSizes)
{
    ::setenv("MM_TEST_SUFFIX", "10k", 1);
    ::setenv("MM_TEST_HUGE", "10000000000000000000000", 1);
    ::setenv("MM_TEST_NEG", "-5", 1);
    ::setenv("MM_TEST_EMPTY", "", 1);

    try {
        envInt("MM_TEST_SUFFIX", 0);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("MM_TEST_SUFFIX"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("10k"), std::string::npos);
    }
    EXPECT_THROW(envInt("MM_TEST_HUGE", 0), FatalError);
    EXPECT_THROW(envInt("MM_TEST_EMPTY", 0), FatalError);
    EXPECT_THROW(envSize("MM_TEST_SUFFIX", 0), FatalError);
    EXPECT_THROW(envSize("MM_TEST_NEG", 0), FatalError);
    EXPECT_EQ(envInt("MM_TEST_NEG", 0), -5); // negatives fine as ints
    EXPECT_EQ(envSize("MM_TEST_ABSENT", 33u), 33u);

    ::unsetenv("MM_TEST_SUFFIX");
    ::unsetenv("MM_TEST_HUGE");
    ::unsetenv("MM_TEST_NEG");
    ::unsetenv("MM_TEST_EMPTY");
}

TEST(Env, SizeListParsesAndRejectsMalformedItems)
{
    ::setenv("MM_TEST_LIST", "3000,10000,,60000", 1);
    EXPECT_EQ(envSizeList("MM_TEST_LIST", {}),
              (std::vector<size_t>{3000, 10000, 60000}));
    EXPECT_EQ(envSizeList("MM_TEST_ABSENT", {1, 2}),
              (std::vector<size_t>{1, 2}));

    ::setenv("MM_TEST_LIST", "3000,10k", 1);
    try {
        envSizeList("MM_TEST_LIST", {});
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("MM_TEST_LIST"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("10k"), std::string::npos);
    }
    ::setenv("MM_TEST_LIST", "100,-3", 1);
    EXPECT_THROW(envSizeList("MM_TEST_LIST", {}), FatalError);
    ::unsetenv("MM_TEST_LIST");
}

// ---------------------------------------------------------------------------
// SerialWorker: the background writer under the double-buffered
// streamed generator and the shard prefetcher.
// ---------------------------------------------------------------------------

TEST(SerialWorker, RunsTasksInSubmissionOrder)
{
    std::vector<int> order;
    {
        SerialWorker w;
        for (int i = 0; i < 50; ++i)
            w.submit([&order, i] { order.push_back(i); });
        w.drain();
    }
    ASSERT_EQ(order.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[size_t(i)], i);
}

TEST(SerialWorker, ThrottleBoundsInFlightWork)
{
    // A double-buffering producer relies on throttle(1): after it
    // returns, every task but (at most) the newest has completed.
    SerialWorker w;
    std::atomic<int> done{0};
    for (int round = 0; round < 10; ++round) {
        w.throttle(1);
        int expectMin = round - 1; // all but the previous submission
        EXPECT_GE(done.load(), expectMin);
        w.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            done.fetch_add(1);
        });
    }
    w.drain();
    EXPECT_EQ(done.load(), 10);
}

TEST(SerialWorker, FirstErrorIsRethrownAndLaterTasksDropped)
{
    SerialWorker w;
    std::atomic<bool> ranAfterError{false};
    w.submit([] { throw FatalError("background boom"); });
    // The error may surface at the next submit (if the failing task
    // already ran) or at drain — either way exactly once, and the
    // post-error task must never execute.
    bool threw = false;
    try {
        w.submit([&ranAfterError] { ranAfterError = true; });
        w.drain();
    } catch (const FatalError &e) {
        threw = true;
        EXPECT_NE(std::string(e.what()).find("background boom"),
                  std::string::npos);
    }
    EXPECT_TRUE(threw);
    w.drain(); // no second rethrow: the error was consumed
    EXPECT_FALSE(ranAfterError.load());
    // The worker is usable again.
    w.submit([] {});
    w.drain();
}

} // namespace
} // namespace mm
