/**
 * @file
 * Search-orchestration API tests: SearcherRegistry construction and
 * option handling, the SearchContext run contract (observers, stop
 * tokens, wall-clock budgets), and the runMany orchestrator — including
 * the regression guard that the registry + orchestrator path reproduces
 * the legacy direct-construction repetition loop bitwise.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/stats.hpp"
#include "core/phase1.hpp"
#include "search/annealing.hpp"
#include "search/orchestrator.hpp"
#include "search/random_search.hpp"
#include "search/registry.hpp"

namespace mm {
namespace {

bool
sameResult(const SearchResult &a, const SearchResult &b)
{
    if (a.steps != b.steps || a.bestNormEdp != b.bestNormEdp
        || !(a.best == b.best) || a.trace.size() != b.trace.size())
        return false;
    for (size_t i = 0; i < a.trace.size(); ++i)
        if (a.trace[i].step != b.trace[i].step
            || a.trace[i].virtualSec != b.trace[i].virtualSec
            || a.trace[i].bestNormEdp != b.trace[i].bestNormEdp)
            return false;
    return true;
}

struct ApiFixtureBase
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem problem = mttkrpProblem("mtt-api", 128, 256, 512, 128);
    MapSpace space{arch, problem};
    CostModel model{space};
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/** Shares one small trained surrogate across the registry tests. */
class RegistryFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        arch = new AcceleratorSpec(AcceleratorSpec::paperDefault());
        Phase1Config cfg;
        cfg.data.samples = 2000;
        cfg.data.problemCount = 8;
        cfg.data.seed = 11;
        cfg.train.epochs = 4;
        cfg.hidden = {24, 32, 24};
        cfg.seed = 13;
        result = new Phase1Result(trainSurrogate(*arch, conv1dAlgo(), cfg));
        problem = new Problem(makeProblem(conv1dAlgo(), "reg-api",
                                          {120, 4}));
        space = new MapSpace(*arch, *problem);
        model = new CostModel(*space);
    }

    static void
    TearDownTestSuite()
    {
        delete model;
        delete space;
        delete problem;
        delete result;
        delete arch;
        model = nullptr;
        space = nullptr;
        problem = nullptr;
        result = nullptr;
        arch = nullptr;
    }

    static SearcherBuildContext
    ctx()
    {
        return SearcherBuildContext{*model, &result->surrogate};
    }

    static AcceleratorSpec *arch;
    static Phase1Result *result;
    static Problem *problem;
    static MapSpace *space;
    static CostModel *model;
};

AcceleratorSpec *RegistryFixture::arch = nullptr;
Phase1Result *RegistryFixture::result = nullptr;
Problem *RegistryFixture::problem = nullptr;
MapSpace *RegistryFixture::space = nullptr;
CostModel *RegistryFixture::model = nullptr;

TEST_F(RegistryFixture, ListsAllSixMethods)
{
    const SearcherRegistry &reg = SearcherRegistry::instance();
    for (const char *key : {"Random", "SA", "GA", "RL", "MM", "MM-P"}) {
        EXPECT_TRUE(reg.contains(key)) << key;
        EXPECT_FALSE(reg.at(key).description.empty()) << key;
    }
    // The listing names every key for --list consumers.
    std::string listing = reg.describe();
    for (const char *key : {"Random", "SA", "GA", "RL", "MM", "MM-P"})
        EXPECT_NE(listing.find(key), std::string::npos) << key;
}

TEST_F(RegistryFixture, EveryKeyConstructsAndRunsUnderTinyBudget)
{
    for (const std::string &key : SearcherRegistry::instance().keys()) {
        auto searcher = SearcherRegistry::instance().make(key, ctx());
        ASSERT_NE(searcher, nullptr) << key;
        Rng rng(31);
        SearchResult res = searcher->run(SearchBudget::bySteps(24), rng);
        EXPECT_EQ(res.steps, 24) << key;
        EXPECT_TRUE(std::isfinite(res.bestNormEdp)) << key;
        EXPECT_TRUE(space->isMember(res.best)) << key;
    }
}

TEST_F(RegistryFixture, OptionStringsReachTheSearcher)
{
    // MM-P's name embeds its chain count — direct evidence the parsed
    // option reached the config.
    auto mmp = SearcherRegistry::instance().make("MM-P:chains=3", ctx());
    EXPECT_EQ(mmp->name(), "MM-P3");

    // An explicit SA schedule must run fine and stay deterministic
    // against a second instance built from the same spec.
    auto s1 = SearcherRegistry::instance().make(
        "SA:tMax=4,tMin=0.01,pilot=8,horizon=60", ctx());
    auto s2 = SearcherRegistry::instance().make(
        "SA:tMax=4,tMin=0.01,pilot=8,horizon=60", ctx());
    Rng a(37), b(37);
    EXPECT_TRUE(sameResult(s1->run(SearchBudget::bySteps(60), a),
                           s2->run(SearchBudget::bySteps(60), b)));
}

TEST_F(RegistryFixture, UnknownKeyThrowsNamingTheRegistered)
{
    try {
        SearcherRegistry::instance().make("Simulated", ctx());
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("Simulated"), std::string::npos);
        EXPECT_NE(msg.find("SA"), std::string::npos);
        EXPECT_NE(msg.find("MM-P"), std::string::npos);
    }
}

TEST_F(RegistryFixture, UnknownOptionThrowsNamingIt)
{
    try {
        SearcherRegistry::instance().make("SA:tmax=4", ctx());
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("tmax"), std::string::npos);
    }
}

TEST_F(RegistryFixture, MalformedAndInvalidOptionsThrow)
{
    EXPECT_THROW(SearcherRegistry::instance().make("SA:tMax", ctx()),
                 FatalError);
    EXPECT_THROW(SearcherRegistry::instance().make("SA:tMax=", ctx()),
                 FatalError);
    EXPECT_THROW(SearcherRegistry::instance().make("SA:pilot=abc", ctx()),
                 FatalError);
    EXPECT_THROW(SearcherRegistry::instance().make("GA:pop=1", ctx()),
                 FatalError);
    EXPECT_THROW(SearcherRegistry::instance().make("MM:lr=0", ctx()),
                 FatalError);
    EXPECT_THROW(
        SearcherRegistry::instance().make("MM:inject=maybe", ctx()),
        FatalError);
    // Values that would crash downstream (null tournament winner,
    // modulo-by-zero temperature decay, size_t-wrapped capacities)
    // must die here as user errors instead.
    EXPECT_THROW(SearcherRegistry::instance().make("GA:tourn=0", ctx()),
                 FatalError);
    EXPECT_THROW(
        SearcherRegistry::instance().make("MM:decayEvery=0", ctx()),
        FatalError);
    EXPECT_THROW(
        SearcherRegistry::instance().make("MM-P:decayEvery=-1", ctx()),
        FatalError);
    EXPECT_THROW(SearcherRegistry::instance().make("RL:replay=-1", ctx()),
                 FatalError);
    EXPECT_THROW(SearcherRegistry::instance().make("RL:batch=0", ctx()),
                 FatalError);
}

TEST_F(RegistryFixture, SurrogateMethodsRequireASurrogate)
{
    SearcherBuildContext noSurrogate{*model, nullptr};
    for (const char *key : {"MM", "MM-P"}) {
        try {
            SearcherRegistry::instance().make(key, noSurrogate);
            FAIL() << "expected FatalError for " << key;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("surrogate"),
                      std::string::npos);
        }
    }
    // Black-box methods do not need one.
    EXPECT_NE(SearcherRegistry::instance().make("SA", noSurrogate),
              nullptr);
}

// ---------------------------------------------------------------------------
// Run contract: observers, stop tokens, wall budgets
// ---------------------------------------------------------------------------

/** Records every improvement callback. */
class RecordingObserver : public SearchObserver
{
  public:
    void
    onImprovement(const SearchProgress &p) override
    {
        improvements.push_back(p.bestNormEdp);
        ASSERT_NE(p.best, nullptr);
    }

    void
    onProgress(const SearchProgress &p) override
    {
        progressSteps.push_back(p.steps);
    }

    std::vector<double> improvements;
    std::vector<int64_t> progressSteps;
};

TEST(SearchObserverTest, ImprovementsAreMonotoneAndMatchTrace)
{
    ApiFixtureBase fx;
    RecordingObserver obs;
    Rng rng(43);
    SearchContext ctx;
    ctx.budget = SearchBudget::bySteps(300);
    ctx.rng = &rng;
    ctx.observer = &obs;
    ctx.progressEvery = 50;

    RandomSearcher searcher(fx.model);
    SearchResult res = searcher.run(ctx);

    ASSERT_FALSE(obs.improvements.empty());
    for (size_t i = 1; i < obs.improvements.size(); ++i)
        EXPECT_LT(obs.improvements[i], obs.improvements[i - 1]);
    EXPECT_DOUBLE_EQ(obs.improvements.back(), res.bestNormEdp);

    // One improvement callback per trace improvement (the final trace
    // point may be the synthetic terminal sample).
    size_t tracePoints = res.trace.size();
    if (res.trace.size() >= 2
        && res.trace.back().bestNormEdp
               == res.trace[res.trace.size() - 2].bestNormEdp)
        --tracePoints;
    EXPECT_EQ(obs.improvements.size(), tracePoints);

    // Periodic heartbeat every 50 steps.
    ASSERT_EQ(obs.progressSteps.size(), 6u);
    for (size_t i = 0; i < obs.progressSteps.size(); ++i)
        EXPECT_EQ(obs.progressSteps[i], int64_t(50 * (i + 1)));
}

TEST(SearchObserverTest, ObserverDoesNotPerturbTheRun)
{
    ApiFixtureBase fx;
    RandomSearcher searcher(fx.model);

    Rng a(47), b(47);
    SearchResult plain = searcher.run(SearchBudget::bySteps(120), a);

    RecordingObserver obs;
    SearchContext ctx;
    ctx.budget = SearchBudget::bySteps(120);
    ctx.rng = &b;
    ctx.observer = &obs;
    ctx.progressEvery = 7;
    SearchResult observed = searcher.run(ctx);

    EXPECT_TRUE(sameResult(plain, observed));
}

/** Requests a stop once the step counter passes a threshold. */
class StopAfterObserver : public SearchObserver
{
  public:
    StopAfterObserver(StopToken &token, int64_t afterSteps)
        : token(&token), threshold(afterSteps)
    {}

    void
    onProgress(const SearchProgress &p) override
    {
        if (p.steps >= threshold)
            token->requestStop();
    }

  private:
    StopToken *token;
    int64_t threshold;
};

TEST(StopTokenTest, MidRunCancellationReturnsValidBestSoFar)
{
    ApiFixtureBase fx;
    StopToken stop;
    StopAfterObserver obs(stop, 40);
    Rng rng(53);
    SearchContext ctx;
    ctx.budget = SearchBudget::bySteps(100000);
    ctx.rng = &rng;
    ctx.observer = &obs;
    ctx.stop = &stop;
    ctx.progressEvery = 1;

    RandomSearcher searcher(fx.model);
    SearchResult res = searcher.run(ctx);

    EXPECT_TRUE(res.cancelled);
    EXPECT_GE(res.steps, 40);
    EXPECT_LT(res.steps, 100000);
    EXPECT_TRUE(std::isfinite(res.bestNormEdp));
    EXPECT_TRUE(fx.space.isMember(res.best));
}

TEST(StopTokenTest, CancellationFromAnotherThread)
{
    ApiFixtureBase fx;
    StopToken stop;
    Rng rng(59);
    SearchContext ctx;
    ctx.budget = SearchBudget::bySteps(std::numeric_limits<int64_t>::max());
    ctx.rng = &rng;
    ctx.stop = &stop;

    RandomSearcher searcher(fx.model);
    SearchResult res;
    std::thread runner([&] { res = searcher.run(ctx); });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    stop.requestStop();
    runner.join();

    EXPECT_TRUE(res.cancelled);
    EXPECT_GT(res.steps, 0);
    EXPECT_TRUE(fx.space.isMember(res.best));
}

TEST(WallClockBudgetTest, TerminatesWithinTolerance)
{
    ApiFixtureBase fx;
    RandomSearcher searcher(fx.model);
    Rng rng(61);
    const double budgetSec = 0.15;
    SearchResult res =
        searcher.run(SearchBudget::byWallTime(budgetSec), rng);
    EXPECT_GT(res.steps, 0);
    EXPECT_GE(res.wallSec, budgetSec);
    // Generous ceiling for loaded CI machines: the run must stop soon
    // after the budget, not run away.
    EXPECT_LT(res.wallSec, budgetSec + 2.0);
    EXPECT_TRUE(fx.space.isMember(res.best));
}

// ---------------------------------------------------------------------------
// runMany orchestration
// ---------------------------------------------------------------------------

TEST(RunManyTest, MatchesTheLegacyRepetitionLoopBitwise)
{
    // The pre-registry benches constructed searchers directly and
    // seeded Rng(base * 1000003 + run * 7919 + 1) per repetition. The
    // registry + orchestrator path must reproduce those runs bitwise —
    // the redesign must not perturb RNG draw order.
    ApiFixtureBase fx;
    const uint64_t baseSeed = 5;
    const int runs = 3;
    auto budget = SearchBudget::bySteps(150);

    std::vector<SearchResult> legacy;
    for (int run = 0; run < runs; ++run) {
        AnnealingSearcher searcher(fx.model, AnnealingConfig{});
        Rng rng(baseSeed * 1000003ULL + uint64_t(run) * 7919ULL + 1);
        legacy.push_back(searcher.run(budget, rng));
    }

    SearcherBuildContext ctx{fx.model};
    MultiRunOptions opts;
    opts.runs = runs;
    opts.baseSeed = baseSeed;
    MultiRunResult modern = runMany("SA", ctx, budget, opts);

    ASSERT_EQ(modern.runs.size(), legacy.size());
    for (size_t i = 0; i < legacy.size(); ++i)
        EXPECT_TRUE(sameResult(legacy[i], modern.runs[i])) << "run " << i;
}

TEST(RunManyTest, BitwiseInvariantAcrossThreadCounts)
{
    ApiFixtureBase fx;
    SearcherBuildContext ctx{fx.model};
    auto budget = SearchBudget::bySteps(120);

    std::vector<MultiRunResult> results;
    for (int threads : {1, 4}) {
        MultiRunOptions opts;
        opts.runs = 4;
        opts.baseSeed = 17;
        opts.threads = threads;
        results.push_back(runMany("SA", ctx, budget, opts));
    }
    ASSERT_EQ(results[0].runs.size(), results[1].runs.size());
    for (size_t i = 0; i < results[0].runs.size(); ++i)
        EXPECT_TRUE(sameResult(results[0].runs[i], results[1].runs[i]));
    EXPECT_DOUBLE_EQ(results[0].medianNormEdp, results[1].medianNormEdp);
    EXPECT_DOUBLE_EQ(results[0].bestNormEdp, results[1].bestNormEdp);
}

TEST(RunManyTest, MedianIsTheSharedQuantileForOddAndEvenRunCounts)
{
    // runMany's median must be exactly common/stats' quantile(·, 0.5):
    // odd counts pick the middle run, even counts average the middle
    // two — no hand-rolled variant that can drift.
    ApiFixtureBase fx;
    SearcherBuildContext ctx{fx.model};
    for (int runCount : {3, 4}) {
        MultiRunOptions opts;
        opts.runs = runCount;
        opts.baseSeed = 31;
        MultiRunResult res =
            runMany("Random", ctx, SearchBudget::bySteps(40), opts);

        std::vector<double> finals;
        for (const auto &r : res.runs)
            if (std::isfinite(r.bestNormEdp))
                finals.push_back(r.bestNormEdp);
        ASSERT_EQ(int(finals.size()), runCount);
        EXPECT_DOUBLE_EQ(res.medianNormEdp, quantile(finals, 0.5))
            << "runs=" << runCount;

        std::sort(finals.begin(), finals.end());
        double expect = runCount % 2 == 1
                            ? finals[size_t(runCount / 2)]
                            : 0.5
                                  * (finals[size_t(runCount / 2 - 1)]
                                     + finals[size_t(runCount / 2)]);
        EXPECT_DOUBLE_EQ(res.medianNormEdp, expect) << "runs=" << runCount;
    }
}

TEST(RunManyTest, AggregatesAreConsistent)
{
    ApiFixtureBase fx;
    SearcherBuildContext ctx{fx.model};
    MultiRunOptions opts;
    opts.runs = 5;
    opts.baseSeed = 23;
    MultiRunResult res =
        runMany("Random", ctx, SearchBudget::bySteps(60), opts);

    ASSERT_EQ(res.runs.size(), 5u);
    EXPECT_EQ(res.method, "Random");
    std::vector<double> finals;
    for (const auto &r : res.runs)
        finals.push_back(r.bestNormEdp);
    std::sort(finals.begin(), finals.end());
    EXPECT_DOUBLE_EQ(res.bestNormEdp, finals.front());
    EXPECT_DOUBLE_EQ(res.medianNormEdp, finals[2]);
    EXPECT_DOUBLE_EQ(res.spreadNormEdp, finals.back() - finals.front());
    EXPECT_DOUBLE_EQ(res.bestRun().bestNormEdp, res.bestNormEdp);
    EXPECT_GT(res.totalWallSec, 0.0);
}

TEST(RunManyTest, PerRunObserversAndSharedStopToken)
{
    ApiFixtureBase fx;
    SearcherBuildContext ctx{fx.model};

    std::vector<RecordingObserver> observers(3);
    MultiRunOptions opts;
    opts.runs = 3;
    opts.baseSeed = 29;
    opts.observerFor = [&](int run) -> SearchObserver * {
        return &observers[size_t(run)];
    };
    MultiRunResult res =
        runMany("Random", ctx, SearchBudget::bySteps(80), opts);
    for (size_t r = 0; r < observers.size(); ++r) {
        ASSERT_FALSE(observers[r].improvements.empty()) << r;
        EXPECT_DOUBLE_EQ(observers[r].improvements.back(),
                         res.runs[r].bestNormEdp);
    }

    // A pre-stopped token: every repetition returns immediately with a
    // zero-step, valid-shape result.
    StopToken stop;
    stop.requestStop();
    MultiRunOptions stopped;
    stopped.runs = 3;
    stopped.baseSeed = 29;
    stopped.stop = &stop;
    MultiRunResult cancelled =
        runMany("Random", ctx, SearchBudget::bySteps(80), stopped);
    for (const auto &r : cancelled.runs) {
        EXPECT_TRUE(r.cancelled);
        EXPECT_EQ(r.steps, 0);
    }
}

TEST(RunManyTest, SeedOverrideIsHonored)
{
    ApiFixtureBase fx;
    SearcherBuildContext ctx{fx.model};
    auto budget = SearchBudget::bySteps(50);

    MultiRunOptions opts;
    opts.runs = 2;
    opts.seedFor = [](int run) { return 900 + uint64_t(run); };
    MultiRunResult custom = runMany("Random", ctx, budget, opts);

    for (int run = 0; run < 2; ++run) {
        RandomSearcher searcher(fx.model);
        Rng rng(900 + uint64_t(run));
        SearchResult direct = searcher.run(budget, rng);
        EXPECT_TRUE(sameResult(direct, custom.runs[size_t(run)]));
    }
}

TEST(SearchBudgetTest, WallTimeFactoryLeavesOtherLimitsOpen)
{
    auto b = SearchBudget::byWallTime(1.5);
    EXPECT_EQ(b.maxSteps, std::numeric_limits<int64_t>::max());
    EXPECT_TRUE(std::isinf(b.maxVirtualSec));
    EXPECT_DOUBLE_EQ(b.maxWallSec, 1.5);
    // done() covers only the deterministic limits.
    EXPECT_FALSE(b.done(1000000, 1e9));
}

} // namespace
} // namespace mm
