/**
 * @file
 * Neural-network library tests: finite-difference gradient checks for
 * weights and inputs, loss values/gradients, optimizers, the trainer
 * loop, and serialization.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "tensor/gemm.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

namespace mm {
namespace {

Matrix
randomMatrix(size_t rows, size_t cols, Rng &rng, double scale = 1.0)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = float(rng.uniformReal(-scale, scale));
    return m;
}

/** Loss of net(x) against target under MSE, for finite differencing. */
double
netLoss(Mlp &net, const Matrix &x, const Matrix &target)
{
    const Matrix &pred = net.forward(x);
    return lossValue(LossKind::MSE, pred, target, 1.0);
}

TEST(Mlp, ShapesAndParamCount)
{
    Rng rng(1);
    Mlp net(4, {{8, Activation::ReLU}, {3, Activation::Identity}}, rng);
    EXPECT_EQ(net.inputDim(), 4u);
    EXPECT_EQ(net.outputDim(), 3u);
    EXPECT_EQ(net.layerCount(), 2u);
    EXPECT_EQ(net.paramCount(), 4u * 8 + 8 + 8 * 3 + 3);

    Matrix x(5, 4);
    const Matrix &y = net.forward(x);
    EXPECT_EQ(y.rows(), 5u);
    EXPECT_EQ(y.cols(), 3u);
}

TEST(Mlp, BatchedForwardBackwardMatchesPerSample)
{
    // The parallel Phase-2 driver relies on a B-row batch being exactly
    // the B per-sample evaluations: every row's arithmetic must be
    // independent and identically ordered through gemm.
    Rng rng(71);
    Mlp batched(6,
                {{16, Activation::ReLU}, {8, Activation::Tanh},
                 {3, Activation::Identity}},
                rng);
    Rng cloneRng(0);
    Mlp single(6,
               {{16, Activation::ReLU}, {8, Activation::Tanh},
                {3, Activation::Identity}},
               cloneRng);
    single.copyParamsFrom(batched);

    const size_t batchSize = 13;
    Rng dataRng(72);
    Matrix x = randomMatrix(batchSize, 6, dataRng);
    Matrix dOut = randomMatrix(batchSize, 3, dataRng);

    Matrix outBatch = batched.forward(x);
    batched.zeroGrad();
    Matrix dInBatch = batched.backward(dOut);

    Matrix outSingle(batchSize, 3), dInSingle(batchSize, 6);
    single.zeroGrad();
    Matrix xr(1, 6), dr(1, 3);
    for (size_t r = 0; r < batchSize; ++r) {
        std::copy(x.row(r).begin(), x.row(r).end(), xr.row(0).begin());
        std::copy(dOut.row(r).begin(), dOut.row(r).end(), dr.row(0).begin());
        const Matrix &o = single.forward(xr);
        std::copy(o.row(0).begin(), o.row(0).end(), outSingle.row(r).begin());
        Matrix di = single.backward(dr);
        std::copy(di.row(0).begin(), di.row(0).end(),
                  dInSingle.row(r).begin());
    }

    EXPECT_LE(maxAbsDiff(outBatch, outSingle), 1e-10);
    EXPECT_LE(maxAbsDiff(dInBatch, dInSingle), 1e-10);
    // The batch accumulates weight gradients in the same sample order as
    // the sequential loop.
    auto gb = batched.grads();
    auto gs = single.grads();
    ASSERT_EQ(gb.size(), gs.size());
    for (size_t i = 0; i < gb.size(); ++i)
        EXPECT_LE(maxAbsDiff(*gb[i], *gs[i]), 1e-10) << "grad " << i;
}

TEST(Mlp, WeightGradientsMatchFiniteDifferences)
{
    Rng rng(2);
    Mlp net(3, {{6, Activation::Tanh}, {2, Activation::Identity}}, rng);
    Matrix x = randomMatrix(4, 3, rng);
    Matrix target = randomMatrix(4, 2, rng);

    const Matrix &pred = net.forward(x);
    Matrix grad;
    lossForward(LossKind::MSE, pred, target, 1.0, grad);
    net.zeroGrad();
    net.backward(grad);

    auto params = net.params();
    auto grads = net.grads();
    const double eps = 1e-3;
    for (size_t p = 0; p < params.size(); ++p) {
        for (size_t i = 0; i < std::min<size_t>(params[p]->size(), 6);
             ++i) {
            float saved = params[p]->data()[i];
            params[p]->data()[i] = saved + float(eps);
            double up = netLoss(net, x, target);
            params[p]->data()[i] = saved - float(eps);
            double down = netLoss(net, x, target);
            params[p]->data()[i] = saved;
            double numeric = (up - down) / (2.0 * eps);
            double analytic = double(grads[p]->data()[i]);
            EXPECT_NEAR(analytic, numeric,
                        2e-2 * std::max(1.0, std::fabs(numeric)))
                << "param " << p << " index " << i;
        }
    }
}

TEST(Mlp, InputGradientsMatchFiniteDifferences)
{
    // The input gradient is the core mechanism of Phase 2 (gradients of
    // the surrogate with respect to the candidate mapping).
    Rng rng(3);
    Mlp net(5, {{8, Activation::ReLU}, {4, Activation::Tanh},
                {1, Activation::Identity}},
            rng);
    Matrix x = randomMatrix(1, 5, rng);
    Matrix target(1, 1);
    target.at(0, 0) = 0.3f;

    const Matrix &pred = net.forward(x);
    Matrix grad;
    lossForward(LossKind::MSE, pred, target, 1.0, grad);
    net.zeroGrad();
    Matrix dIn = net.backward(grad);
    ASSERT_EQ(dIn.rows(), 1u);
    ASSERT_EQ(dIn.cols(), 5u);

    const double eps = 1e-3;
    for (size_t i = 0; i < 5; ++i) {
        float saved = x.at(0, i);
        x.at(0, i) = saved + float(eps);
        double up = netLoss(net, x, target);
        x.at(0, i) = saved - float(eps);
        double down = netLoss(net, x, target);
        x.at(0, i) = saved;
        double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(double(dIn.at(0, i)), numeric,
                    2e-2 * std::max(0.1, std::fabs(numeric)))
            << "input " << i;
    }
}

TEST(Loss, ValuesAndGradients)
{
    Matrix pred(1, 2), target(1, 2);
    pred.at(0, 0) = 1.0f;
    pred.at(0, 1) = -3.0f;
    target.at(0, 0) = 0.5f;
    target.at(0, 1) = 0.0f;
    // errors: {0.5, -3}
    Matrix grad;

    // MSE: mean(0.5*e^2) = (0.125 + 4.5) / 2
    EXPECT_NEAR(lossForward(LossKind::MSE, pred, target, 1.0, grad),
                (0.125 + 4.5) / 2.0, 1e-6);
    EXPECT_NEAR(grad.at(0, 0), 0.5 / 2.0, 1e-6);
    EXPECT_NEAR(grad.at(0, 1), -3.0 / 2.0, 1e-6);

    // MAE: mean(|e|) = (0.5 + 3) / 2
    EXPECT_NEAR(lossForward(LossKind::MAE, pred, target, 1.0, grad),
                1.75, 1e-6);
    EXPECT_NEAR(grad.at(0, 1), -0.5, 1e-6);

    // Huber(delta=1): quadratic for |e|<=1, linear beyond.
    EXPECT_NEAR(lossForward(LossKind::Huber, pred, target, 1.0, grad),
                (0.5 * 0.25 + (3.0 - 0.5)) / 2.0, 1e-6);
    EXPECT_NEAR(grad.at(0, 0), 0.5 / 2.0, 1e-6);
    EXPECT_NEAR(grad.at(0, 1), -1.0 / 2.0, 1e-6);
}

TEST(Loss, HuberEqualsMseInsideDelta)
{
    Rng rng(5);
    Matrix pred = randomMatrix(3, 4, rng, 0.4);
    Matrix target = randomMatrix(3, 4, rng, 0.4);
    double huber = lossValue(LossKind::Huber, pred, target, 10.0);
    double mse = lossValue(LossKind::MSE, pred, target, 10.0);
    EXPECT_NEAR(huber, mse, 1e-9);
}

TEST(Loss, NameRoundTrip)
{
    for (auto kind : {LossKind::MSE, LossKind::MAE, LossKind::Huber})
        EXPECT_EQ(lossFromName(lossName(kind)), kind);
    EXPECT_THROW(lossFromName("bogus"), FatalError);
}

TEST(Loss, ParallelPathIsBitwiseIdenticalToSerial)
{
    // The parallel elementwise pass must not change a single bit of
    // either the scalar loss (serial reduction in element order) or the
    // gradient, at any lane count — the Phase-1 lane-invariance
    // guarantee depends on it. Sized past the parallel threshold.
    Rng rng(91);
    Matrix pred = randomMatrix(192, 24, rng, 3.0);
    Matrix target = randomMatrix(192, 24, rng, 3.0);

    for (auto kind : {LossKind::MSE, LossKind::MAE, LossKind::Huber}) {
        Matrix gradSerial, gradPar;
        double serial = lossForward(kind, pred, target, 1.0, gradSerial);
        for (size_t lanes : {2u, 5u}) {
            ParallelContext par(lanes);
            double parallel =
                lossForward(kind, pred, target, 1.0, gradPar, &par);
            EXPECT_EQ(serial, parallel) << int(kind) << " @" << lanes;
            ASSERT_EQ(gradSerial.size(), gradPar.size());
            for (size_t i = 0; i < gradSerial.size(); ++i)
                ASSERT_EQ(gradSerial.data()[i], gradPar.data()[i]);
            EXPECT_EQ(lossValue(kind, pred, target, 1.0, &par), serial);
        }
    }
}

TEST(Trainer, ParallelGatherIsBitwiseIdenticalToSerial)
{
    Rng rng(93);
    Matrix x = randomMatrix(300, 17, rng);
    Matrix y = randomMatrix(300, 5, rng);
    MatrixBatchSource src(x, y);

    std::vector<size_t> idx(x.rows());
    std::iota(idx.begin(), idx.end(), size_t(0));
    Rng shuf(7);
    shuf.shuffle(idx);

    Matrix bxS, byS, bxP, byP;
    src.gather(idx, 10, 128, bxS, byS, nullptr);
    ParallelContext par(4);
    src.gather(idx, 10, 128, bxP, byP, &par);
    ASSERT_EQ(bxS.size(), bxP.size());
    for (size_t i = 0; i < bxS.size(); ++i)
        ASSERT_EQ(bxS.data()[i], bxP.data()[i]);
    for (size_t i = 0; i < byS.size(); ++i)
        ASSERT_EQ(byS.data()[i], byP.data()[i]);
}

TEST(Optimizer, SgdDescendsQuadratic)
{
    // Minimize f(w) = 0.5*||w - c||^2 by hand-feeding gradients.
    Matrix w(1, 3), g(1, 3), c(1, 3);
    c.at(0, 0) = 1.0f;
    c.at(0, 1) = -2.0f;
    c.at(0, 2) = 0.5f;
    SgdOptimizer opt(0.1, 0.9);
    opt.attach({&w}, {&g});
    for (int i = 0; i < 200; ++i) {
        for (size_t j = 0; j < 3; ++j)
            g.data()[j] = w.data()[j] - c.data()[j];
        opt.step();
    }
    EXPECT_LT(maxAbsDiff(w, c), 1e-3);
}

TEST(Optimizer, AdamDescendsQuadratic)
{
    Matrix w(1, 3), g(1, 3), c(1, 3);
    c.at(0, 0) = 2.0f;
    c.at(0, 1) = -1.0f;
    c.at(0, 2) = 4.0f;
    AdamOptimizer opt(0.05);
    opt.attach({&w}, {&g});
    for (int i = 0; i < 2000; ++i) {
        for (size_t j = 0; j < 3; ++j)
            g.data()[j] = w.data()[j] - c.data()[j];
        opt.step();
    }
    EXPECT_LT(maxAbsDiff(w, c), 1e-2);
}

TEST(Optimizer, StepDecaySchedule)
{
    StepDecaySchedule sched{1e-2, 0.1, 25};
    EXPECT_DOUBLE_EQ(sched.at(0), 1e-2);
    EXPECT_DOUBLE_EQ(sched.at(24), 1e-2);
    EXPECT_DOUBLE_EQ(sched.at(25), 1e-3);
    EXPECT_DOUBLE_EQ(sched.at(60), 1e-4);
}

TEST(Trainer, LearnsLinearMap)
{
    Rng rng(8);
    // Target function: y = A x with fixed A.
    Matrix a = randomMatrix(2, 6, rng);
    auto makeSet = [&](size_t n) {
        Matrix x = randomMatrix(n, 6, rng);
        Matrix y(n, 2);
        gemm(false, true, 1.0f, x, a, 0.0f, y);
        return std::pair{x, y};
    };
    auto [xTrain, yTrain] = makeSet(512);
    auto [xTest, yTest] = makeSet(128);

    Mlp net(6, {{32, Activation::ReLU}, {2, Activation::Identity}}, rng);
    TrainConfig cfg;
    cfg.epochs = 40;
    cfg.batchSize = 32;
    cfg.loss = LossKind::MSE;
    cfg.schedule = {5e-3, 0.5, 15};
    RegressionTrainer trainer(net, cfg);
    auto reports = trainer.fit(xTrain, yTrain, xTest, yTest, rng);

    ASSERT_EQ(reports.size(), 40u);
    EXPECT_LT(reports.back().trainLoss, 0.05 * reports.front().trainLoss);
    EXPECT_LT(reports.back().testLoss, 0.02);
}

TEST(Trainer, PartialFinalBatchTrains)
{
    // Dataset size deliberately not divisible by the batch size: the
    // final batch of every epoch is partial, exercising the workspace
    // row-count shrink/grow path of gatherRows.
    Rng rng(29);
    Matrix a = randomMatrix(2, 5, rng);
    Matrix x = randomMatrix(131, 5, rng);
    Matrix y(131, 2);
    gemm(false, true, 1.0f, x, a, 0.0f, y);

    Mlp net(5, {{16, Activation::ReLU}, {2, Activation::Identity}}, rng);
    TrainConfig cfg;
    cfg.epochs = 12;
    cfg.batchSize = 32; // 131 = 4 * 32 + 3
    cfg.loss = LossKind::MSE;
    cfg.schedule = {5e-3, 0.5, 6};
    RegressionTrainer trainer(net, cfg);
    Rng trainRng(3);
    auto reports = trainer.fit(x, y, {}, {}, trainRng);
    ASSERT_EQ(reports.size(), 12u);
    for (const auto &r : reports)
        EXPECT_TRUE(std::isfinite(r.trainLoss));
    EXPECT_LT(reports.back().trainLoss, reports.front().trainLoss);
}

TEST(Trainer, PartialFinalBatchDeterministic)
{
    Rng dataRng(31);
    Matrix x = randomMatrix(71, 4, dataRng);
    Matrix y = randomMatrix(71, 1, dataRng, 0.5);

    auto train = [&] {
        Rng rng(9);
        Mlp net(4, {{8, Activation::Tanh}, {1, Activation::Identity}},
                rng);
        TrainConfig cfg;
        cfg.epochs = 5;
        cfg.batchSize = 16; // 71 = 4 * 16 + 7
        cfg.loss = LossKind::MSE;
        RegressionTrainer trainer(net, cfg);
        Rng trainRng(5);
        return trainer.fit(x, y, {}, {}, trainRng);
    };
    auto r1 = train();
    auto r2 = train();
    ASSERT_EQ(r1.size(), r2.size());
    for (size_t i = 0; i < r1.size(); ++i)
        EXPECT_DOUBLE_EQ(r1[i].trainLoss, r2[i].trainLoss);
}

TEST(Dense, FusedBiasActivationMatchesUnfused)
{
    Rng rng(41);
    DenseLayer layer(6, 9, Activation::ReLU, rng);
    for (size_t c = 0; c < 9; ++c)
        layer.bias(0, c) = float(rng.uniformReal(-0.5, 0.5));
    Matrix x = randomMatrix(7, 6, rng);

    // Unfused reference: gemm, then bias, then activation.
    Matrix expect(7, 9);
    gemm(false, true, 1.0f, x, layer.weights, 0.0f, expect);
    for (size_t r = 0; r < 7; ++r)
        for (size_t c = 0; c < 9; ++c)
            expect(r, c) += layer.bias(0, c);
    applyActivation(Activation::ReLU, expect);

    const Matrix &got = layer.forward(x);
    EXPECT_EQ(maxAbsDiff(got, expect), 0.0);

    // Backward: fused dBias must equal the column sums of dZ.
    Matrix dOut = randomMatrix(7, 9, rng);
    Matrix dZ = dOut;
    applyActivationGrad(Activation::ReLU, expect, dZ);
    layer.zeroGrad();
    layer.backward(dOut);
    for (size_t c = 0; c < 9; ++c) {
        float colSum = 0.0f;
        for (size_t r = 0; r < 7; ++r)
            colSum += dZ(r, c);
        EXPECT_FLOAT_EQ(layer.dBias(0, c), colSum);
    }
}

TEST(Mlp, ParallelContextBitwiseEqualsSerial)
{
    // A pooled network must produce bitwise-identical outputs and
    // gradients: GEMM threading partitions by disjoint row ranges.
    // Batch and widths sized so the GEMMs cross the threading threshold.
    Rng rng(83);
    Mlp serial(64,
               {{128, Activation::ReLU}, {128, Activation::ReLU},
                {4, Activation::Identity}},
               rng);
    Mlp pooled = serial;
    ParallelContext ctx(3);
    pooled.setParallel(&ctx);

    Rng dataRng(7);
    Matrix x = randomMatrix(600, 64, dataRng);
    Matrix dOut = randomMatrix(600, 4, dataRng);

    const Matrix &outSerial = serial.forward(x);
    Matrix outS = outSerial;
    const Matrix &outPooled = pooled.forward(x);
    EXPECT_EQ(maxAbsDiff(outS, outPooled), 0.0);

    serial.zeroGrad();
    pooled.zeroGrad();
    Matrix gS = serial.backward(dOut);
    Matrix gP = pooled.backward(dOut);
    EXPECT_EQ(maxAbsDiff(gS, gP), 0.0);
    auto gradsS = serial.grads();
    auto gradsP = pooled.grads();
    ASSERT_EQ(gradsS.size(), gradsP.size());
    for (size_t i = 0; i < gradsS.size(); ++i)
        EXPECT_EQ(maxAbsDiff(*gradsS[i], *gradsP[i]), 0.0) << "grad " << i;
}

TEST(Mlp, SaveLoadRoundTrip)
{
    Rng rng(13);
    Mlp net(7, {{9, Activation::ReLU}, {4, Activation::Tanh},
                {2, Activation::Identity}},
            rng);
    Matrix x = randomMatrix(3, 7, rng);
    Matrix before = net.forward(x);

    std::stringstream ss;
    net.save(ss);
    Mlp loaded = Mlp::load(ss);
    EXPECT_EQ(loaded.inputDim(), net.inputDim());
    EXPECT_EQ(loaded.outputDim(), net.outputDim());
    Matrix after = loaded.forward(x);
    EXPECT_LT(maxAbsDiff(before, after), 1e-7);
}

TEST(Mlp, SoftUpdateBlendsParameters)
{
    Rng rng(17);
    Mlp a(3, {{4, Activation::Identity}}, rng);
    Mlp b(3, {{4, Activation::Identity}}, rng);
    Mlp blended = a;
    blended.softUpdateFrom(b, 0.25f);
    // blended = 0.75 a + 0.25 b elementwise on every parameter.
    auto pa = a.params(), pb = b.params(), pc = blended.params();
    for (size_t p = 0; p < pa.size(); ++p)
        for (size_t i = 0; i < pa[p]->size(); ++i)
            EXPECT_NEAR(pc[p]->data()[i],
                        0.75f * pa[p]->data()[i] + 0.25f * pb[p]->data()[i],
                        1e-6);
}

TEST(Mlp, CopyParamsMakesIndependentClone)
{
    Rng rng(19);
    Mlp a(2, {{3, Activation::Identity}}, rng);
    Mlp b(2, {{3, Activation::Identity}}, rng);
    b.copyParamsFrom(a);
    Matrix x = randomMatrix(1, 2, rng);
    Matrix ya = a.forward(x);
    Matrix yb = b.forward(x);
    EXPECT_LT(maxAbsDiff(ya, yb), 1e-7);
    // Mutating the copy must not touch the original.
    b.params()[0]->data()[0] += 1.0f;
    Matrix ya2 = a.forward(x);
    EXPECT_LT(maxAbsDiff(ya, ya2), 1e-7);
}

} // namespace
} // namespace mm
