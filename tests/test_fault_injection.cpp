/**
 * @file
 * Chaos suite for the fault-tolerance layer: the typed error taxonomy
 * (common/error.hpp), retry/backoff (common/retry.hpp), deterministic
 * fault injection (common/fault_injection.hpp), storage self-healing
 * (shard quarantine-and-regenerate) and failure-isolated orchestration
 * (runMany). Every fault here is injected from a seeded plan, so the
 * suite is reproducible — set MM_FAULT_SEED to vary the fault schedule
 * (the CI chaos job runs three fixed seeds).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/fault_injection.hpp"
#include "common/mapped_file.hpp"
#include "common/parallel_context.hpp"
#include "common/retry.hpp"
#include "common/thread_pool.hpp"
#include "core/cache.hpp"
#include "core/dataset.hpp"
#include "core/feature_transform.hpp"
#include "core/normalizer.hpp"
#include "core/shard_store.hpp"
#include "core/surrogate.hpp"
#include "nn/mlp.hpp"
#include "search/orchestrator.hpp"
#include "workload/algorithm.hpp"

using namespace mm;
namespace fs = std::filesystem;

namespace {

/** Fresh scratch directory, removed on destruction. */
struct TempDir
{
    std::string path;

    explicit TempDir(const std::string &tag)
    {
        static std::atomic<uint64_t> counter{0};
        path = (fs::temp_directory_path()
                / ("mm_fault_" + tag + "_" + std::to_string(::getpid())
                   + "_" + std::to_string(counter.fetch_add(1))))
                   .string();
        fs::remove_all(path);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/**
 * Scoped fault plan: installs on construction, disarms on destruction
 * — a test that throws can never leak its faults into the next one.
 */
struct ScopedFaults
{
    explicit ScopedFaults(const FaultPlan &plan)
    {
        FaultInjector::instance().configure(plan);
    }

    explicit ScopedFaults(const std::string &spec, uint64_t seed = 1)
        : ScopedFaults(parseFaultPlan(spec, seed))
    {}

    ~ScopedFaults() { FaultInjector::instance().disarm(); }
};

/** Scoped env var, restored (unset) on destruction. */
struct ScopedEnv
{
    std::string name;

    ScopedEnv(const std::string &n, const std::string &value) : name(n)
    {
        ::setenv(name.c_str(), value.c_str(), 1);
    }

    ~ScopedEnv() { ::unsetenv(name.c_str()); }
};

/** Small streamed-dataset config over @p dir. */
DatasetConfig
chaosDatasetConfig(const std::string &dir)
{
    DatasetConfig cfg;
    cfg.samples = 160;
    cfg.problemCount = 2;
    cfg.shardSize = 40; // 4 shards
    cfg.streamDir = dir;
    return cfg;
}

/** Raw store bytes + fitted normalizer moments, for byte-level diffs. */
struct StoreImage
{
    Matrix x, y;
    std::vector<double> mean, std;
};

StoreImage
imageOf(const StreamedDataset &sd)
{
    StoreImage img;
    ShardedDatasetReader reader(sd.dir);
    reader.materialize(0, sd.trainRows + sd.testRows, img.x, img.y);
    for (size_t c = 0; c < sd.featureCount; ++c) {
        img.mean.push_back(sd.inputNorm.mean(c));
        img.std.push_back(sd.inputNorm.std(c));
    }
    for (size_t c = 0; c < sd.outputCount; ++c) {
        img.mean.push_back(sd.outputNorm.mean(c));
        img.std.push_back(sd.outputNorm.std(c));
    }
    return img;
}

void
expectIdentical(const StoreImage &a, const StoreImage &b,
                const std::string &label)
{
    EXPECT_EQ(maxAbsDiff(a.x, b.x), 0.0) << label;
    EXPECT_EQ(maxAbsDiff(a.y, b.y), 0.0) << label;
    ASSERT_EQ(a.mean.size(), b.mean.size()) << label;
    for (size_t i = 0; i < a.mean.size(); ++i) {
        EXPECT_EQ(a.mean[i], b.mean[i]) << label << " moment " << i;
        EXPECT_EQ(a.std[i], b.std[i]) << label << " moment " << i;
    }
}

/** Leftover tmp files would mean a torn commit escaped cleanup. */
size_t
tmpFileCount(const std::string &dir)
{
    size_t n = 0;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (it->path().filename().string().find(".tmp.")
            != std::string::npos)
            ++n;
    }
    return n;
}

/** Deterministic throwaway searcher; repetition @p failIdx throws. */
class FlakySearcher : public Searcher
{
  public:
    FlakySearcher(int idx, int failIdx) : idx(idx), failIdx(failIdx) {}

    std::string name() const override { return "Flaky"; }

    SearchResult
    run(SearchContext &) override
    {
        if (idx == failIdx)
            throw IoError("/dev/flaky", "read", EIO,
                          "injected repetition failure");
        SearchResult r;
        r.method = name();
        r.bestNormEdp = 1.0 + 0.25 * double(idx);
        r.steps = 10;
        return r;
    }

  private:
    int idx;
    int failIdx;
};

} // namespace

// ---------------------------------------------------------------------------
// Fault-plan parsing
// ---------------------------------------------------------------------------

TEST(FaultPlanParsing, ParsesTheFullGrammar)
{
    FaultPlan plan = parseFaultPlan(
        "write:p=0.25,read:p=0.5,enospc:after=200MB,flip:shard=3,"
        "flip:shard=7,flip:shard=3",
        42);
    EXPECT_DOUBLE_EQ(plan.writeP, 0.25);
    EXPECT_DOUBLE_EQ(plan.readP, 0.5);
    EXPECT_EQ(plan.enospcAfterBytes, uint64_t(200) << 20);
    ASSERT_EQ(plan.flipShards.size(), 2u); // dedup: each shard once
    EXPECT_EQ(plan.flipShards[0], 3u);
    EXPECT_EQ(plan.flipShards[1], 7u);
    EXPECT_EQ(plan.seed, 42u);
    EXPECT_FALSE(plan.empty());
    EXPECT_TRUE(parseFaultPlan("").empty());
}

TEST(FaultPlanParsing, ParsesByteSizeSuffixes)
{
    EXPECT_EQ(parseByteSize("4096", "t"), 4096u);
    EXPECT_EQ(parseByteSize("4096B", "t"), 4096u);
    EXPECT_EQ(parseByteSize("4KB", "t"), uint64_t(4) << 10);
    EXPECT_EQ(parseByteSize("200MB", "t"), uint64_t(200) << 20);
    EXPECT_EQ(parseByteSize("3GB", "t"), uint64_t(3) << 30);
    EXPECT_EQ(parseByteSize("2gb", "t"), uint64_t(2) << 30);
}

TEST(FaultPlanParsing, RejectsMalformedSpecsWithTheClauseNamed)
{
    for (const char *bad :
         {"write:p=1.5", "write:p=x", "bogus:p=0.1", "write", "write:p",
          "enospc:after=12XB", "flip:shard=abc"}) {
        try {
            parseFaultPlan(bad);
            FAIL() << "accepted '" << bad << "'";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("MM_FAULTS"),
                      std::string::npos)
                << bad;
        }
    }
}

TEST(FaultPlanParsing, ShardIndexOfPathMatchesShardFilesOnly)
{
    EXPECT_EQ(shardIndexOfPath("/a/b/shard-000003.mms"), 3u);
    EXPECT_EQ(shardIndexOfPath("shard-123456.mms"), 123456u);
    EXPECT_FALSE(shardIndexOfPath("/a/b/manifest.mms").has_value());
    EXPECT_FALSE(shardIndexOfPath("/a/b/shard-00000x.mms").has_value());
    EXPECT_FALSE(
        shardIndexOfPath("/a/b/shard-000003.mms.quarantine").has_value());
}

// ---------------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------------

TEST(ErrorTaxonomy, IoErrorCarriesPathSyscallAndErrno)
{
    IoError e("/data/shard-000001.mms", "open", ENOENT, "missing shard");
    EXPECT_EQ(e.path(), "/data/shard-000001.mms");
    EXPECT_EQ(e.sysCall(), "open");
    EXPECT_EQ(e.errnoValue(), ENOENT);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("/data/shard-000001.mms"), std::string::npos);
    EXPECT_NE(msg.find("open"), std::string::npos);
    EXPECT_NE(msg.find(errnoText(ENOENT)), std::string::npos);
    EXPECT_NE(msg.find("missing shard"), std::string::npos);
}

TEST(ErrorTaxonomy, TransientClassificationFollowsTheErrno)
{
    for (int e : {EINTR, EAGAIN, EIO, EBUSY, ETIMEDOUT})
        EXPECT_TRUE(IoError("p", "write", e).transient()) << e;
    for (int e : {ENOENT, EACCES, ENOSPC, EISDIR, 0})
        EXPECT_FALSE(IoError("p", "write", e).transient()) << e;
}

TEST(ErrorTaxonomy, CorruptionErrorCarriesKindAndChecksums)
{
    CorruptionError e("/s/shard-000002.mms",
                      CorruptionError::Kind::ChecksumMismatch,
                      "checksum mismatch", 0xdeadu, 0xbeefu);
    EXPECT_EQ(e.kind(), CorruptionError::Kind::ChecksumMismatch);
    EXPECT_EQ(e.expectedChecksum(), 0xdeadu);
    EXPECT_EQ(e.actualChecksum(), 0xbeefu);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("checksum"), std::string::npos);
    EXPECT_NE(msg.find("/s/shard-000002.mms"), std::string::npos);

    CorruptionError s("/s/x", CorruptionError::Kind::ShortRead, "cut off");
    EXPECT_NE(std::string(s.what()).find("short read"), std::string::npos);
}

TEST(ErrorTaxonomy, ResourceErrorNamesTheResource)
{
    ResourceError e("disk space", "cannot commit shard", ENOSPC);
    EXPECT_EQ(e.resource(), "disk space");
    EXPECT_EQ(e.errnoValue(), ENOSPC);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("disk space"), std::string::npos);
    EXPECT_NE(msg.find(errnoText(ENOSPC)), std::string::npos);
}

TEST(ErrorTaxonomy, AllTypesRemainCatchableAsFatalError)
{
    EXPECT_THROW(throw IoError("p", "open", EIO), FatalError);
    EXPECT_THROW(
        throw CorruptionError("p", CorruptionError::Kind::ShortRead, "x"),
        FatalError);
    EXPECT_THROW(throw ResourceError("disk space", "x", ENOSPC),
                 FatalError);
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, RetriesTransientFailuresUntilSuccess)
{
    RetryPolicy policy{5, 0.0, 0.0};
    int calls = 0;
    int result = retryTransient(policy, [&] {
        if (++calls < 4)
            throw IoError("p", "write", EIO, "flaky");
        return 7;
    });
    EXPECT_EQ(result, 7);
    EXPECT_EQ(calls, 4);
}

TEST(RetryPolicyTest, DoesNotRetryNonTransientOrNonIoFailures)
{
    RetryPolicy policy{5, 0.0, 0.0};
    int calls = 0;
    EXPECT_THROW(retryTransient(policy,
                                [&]() -> int {
                                    ++calls;
                                    throw IoError("p", "open", ENOENT);
                                }),
                 IoError);
    EXPECT_EQ(calls, 1);

    calls = 0;
    EXPECT_THROW(
        retryTransient(policy,
                       [&]() -> int {
                           ++calls;
                           throw ResourceError("disk space", "full",
                                               ENOSPC);
                       }),
        ResourceError);
    EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, ExhaustedRetriesRethrowTheLastError)
{
    RetryPolicy policy{2, 0.0, 0.0};
    int calls = 0;
    EXPECT_THROW(retryTransient(policy,
                                [&]() -> int {
                                    ++calls;
                                    throw IoError("p", "write", EIO);
                                }),
                 IoError);
    EXPECT_EQ(calls, 3); // 1 attempt + 2 retries
}

TEST(RetryPolicyTest, EnvKnobsSelectThePolicy)
{
    ScopedEnv retries("MM_IO_RETRIES", "7");
    ScopedEnv backoff("MM_IO_BACKOFF_MS", "0");
    RetryPolicy policy = RetryPolicy::fromEnv();
    EXPECT_EQ(policy.retries, 7);
    EXPECT_DOUBLE_EQ(policy.backoffMs, 0.0);
}

// ---------------------------------------------------------------------------
// Injector mechanics
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, SeededPlansReplayTheSameFaultSchedule)
{
    auto schedule = [](uint64_t seed) {
        ScopedFaults faults(parseFaultPlan("write:p=0.5", seed));
        std::string bits;
        for (int i = 0; i < 64; ++i)
            bits += FaultInjector::instance().onWrite("f", 1) ? '1' : '0';
        return bits;
    };
    EXPECT_EQ(schedule(7), schedule(7));
    EXPECT_NE(schedule(7), schedule(8));
}

TEST(FaultInjectorTest, EnospcBudgetIsSticky)
{
    ScopedFaults faults("enospc:after=1KB");
    auto &inj = FaultInjector::instance();
    EXPECT_EQ(inj.onWrite("a", 512), 0);
    EXPECT_EQ(inj.onWrite("b", 512), 0);
    EXPECT_EQ(inj.onWrite("c", 1), ENOSPC);
    // Sticky: even a tiny later write still fails.
    EXPECT_EQ(inj.onWrite("d", 1), ENOSPC);
}

TEST(FaultInjectorTest, FlipFiresOncePerListedShard)
{
    ScopedFaults faults("flip:shard=2");
    auto &inj = FaultInjector::instance();
    EXPECT_FALSE(inj.shouldFlipCommittedByte("/d/shard-000001.mms"));
    EXPECT_TRUE(inj.shouldFlipCommittedByte("/d/shard-000002.mms"));
    EXPECT_FALSE(inj.shouldFlipCommittedByte("/d/shard-000002.mms"));
    EXPECT_EQ(inj.injectedFlips(), 1u);
}

TEST(FaultInjectorTest, DisarmedInjectorInjectsNothing)
{
    FaultInjector::instance().disarm();
    EXPECT_FALSE(FaultInjector::armed());
    EXPECT_EQ(FaultInjector::instance().onWrite("x", 1 << 20), 0);
    EXPECT_EQ(FaultInjector::instance().onRead("x"), 0);
}

// ---------------------------------------------------------------------------
// Storage under injected faults
// ---------------------------------------------------------------------------

TEST(ChaosStore, TransientWriteFaultsAndBitFlipYieldByteIdenticalStore)
{
    // The acceptance criterion: with transient write failures and one
    // shard bit-flip injected, generateDatasetStreamed completes and
    // its output is byte-identical to the fault-free run — at 1, 4 and
    // 8 lanes. MM_FAULT_SEED varies the schedule in CI.
    ScopedEnv retries("MM_IO_RETRIES", "10");
    ScopedEnv backoff("MM_IO_BACKOFF_MS", "0");
    const uint64_t seed = envSize("MM_FAULT_SEED", 1);
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();

    TempDir clean("clean");
    StreamedDataset baseline = generateDatasetStreamed(
        arch, conv1dAlgo(), chaosDatasetConfig(clean.path));
    StoreImage want = imageOf(baseline);

    for (size_t lanes : {size_t(1), size_t(4), size_t(8)}) {
        TempDir dir("chaos");
        ScopedFaults faults(
            parseFaultPlan("write:p=0.3,flip:shard=1", seed));
        ParallelContext ctx(lanes);
        StreamedDataset sd = generateDatasetStreamed(
            arch, conv1dAlgo(), chaosDatasetConfig(dir.path), &ctx);
        const uint64_t injected =
            FaultInjector::instance().injectedWriteFaults()
            + FaultInjector::instance().injectedFlips();
        FaultInjector::instance().disarm(); // imageOf reads fault-free

        EXPECT_GT(injected, 0u)
            << "plan injected nothing — the chaos run tested nothing";
        expectIdentical(imageOf(sd), want,
                        "lanes=" + std::to_string(lanes));
        EXPECT_EQ(tmpFileCount(dir.path), 0u);
        // The flipped shard was quarantined and regenerated in place.
        EXPECT_TRUE(fs::exists(shardPath(dir.path, 1)));
    }
}

TEST(ChaosStore, EnospcSurfacesAsResourceErrorWithIntactCommittedState)
{
    ScopedEnv backoff("MM_IO_BACKOFF_MS", "0");
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    TempDir dir("enospc");
    DatasetConfig cfg = chaosDatasetConfig(dir.path);

    {
        // Budget for roughly one shard: the store fills mid-run. The
        // failure must arrive as a typed ResourceError — through the
        // background SerialWorker commit path — not std::terminate.
        ScopedFaults faults("enospc:after=10KB");
        EXPECT_THROW(generateDatasetStreamed(arch, conv1dAlgo(), cfg),
                     ResourceError);
    }

    // Whatever committed before the disk filled is intact and torn-
    // write free; the failed commit left no tmp litter.
    EXPECT_EQ(tmpFileCount(dir.path), 0u);
    EXPECT_FALSE(fs::exists(manifestPath(dir.path)));
    size_t committed = 0;
    for (size_t s = 0; s < 4; ++s)
        committed += fs::exists(shardPath(dir.path, s));
    EXPECT_LT(committed, 4u);

    // With space back, the same config resumes and completes cleanly.
    StreamedDataset recovered =
        generateDatasetStreamed(arch, conv1dAlgo(), cfg);
    TempDir clean("enospc_clean");
    StreamedDataset baseline = generateDatasetStreamed(
        arch, conv1dAlgo(), chaosDatasetConfig(clean.path));
    expectIdentical(imageOf(recovered), imageOf(baseline), "recovered");
}

TEST(ChaosStore, PersistentWriteFailureExhaustsRetriesAsTypedIoError)
{
    ScopedEnv retries("MM_IO_RETRIES", "2");
    ScopedEnv backoff("MM_IO_BACKOFF_MS", "0");
    ScopedFaults faults("write:p=1");
    TempDir dir("wfail");

    ShardLayout layout;
    layout.rows = 8;
    layout.features = 3;
    layout.outputs = 2;
    layout.shardSize = 8;
    layout.shardCount = 1;
    layout.trainRows = 8;
    layout.testRows = 0;
    layout.configHash = 1;
    ShardStoreWriter writer(dir.path, layout);
    Matrix x(8, 3), y(8, 2);
    try {
        writer.writeShard(0, x, y);
        FAIL() << "p=1 write plan did not fail the commit";
    } catch (const IoError &e) {
        EXPECT_EQ(e.errnoValue(), EIO);
        EXPECT_TRUE(e.transient());
    }
    EXPECT_FALSE(fs::exists(shardPath(dir.path, 0)));
    EXPECT_EQ(tmpFileCount(dir.path), 0u);
}

TEST(ChaosStore, InjectedReadFaultsAreRetriedTransparently)
{
    ScopedEnv retries("MM_IO_RETRIES", "20");
    ScopedEnv backoff("MM_IO_BACKOFF_MS", "0");
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    TempDir dir("readflake");
    StreamedDataset sd = generateDatasetStreamed(
        arch, conv1dAlgo(), chaosDatasetConfig(dir.path));
    StoreImage want = imageOf(sd);

    ScopedFaults faults("read:p=0.4");
    StoreImage got = imageOf(sd); // every shard read through the flake
    EXPECT_GT(FaultInjector::instance().injectedReadFaults(), 0u);
    expectIdentical(got, want, "read retry");
}

TEST(ChaosStore, MappedFileReportsTheInjectedErrno)
{
    TempDir dir("mf");
    fs::create_directories(dir.path);
    const std::string path = dir.path + "/f";
    { std::ofstream(path) << "bytes"; }

    ScopedFaults faults("read:p=1");
    int err = 0;
    EXPECT_FALSE(MappedFile::open(path, &err).has_value());
    EXPECT_EQ(err, EIO);
    FaultInjector::instance().disarm();
    err = -1;
    EXPECT_TRUE(MappedFile::open(path, &err).has_value());
    EXPECT_EQ(err, 0);
    EXPECT_FALSE(MappedFile::open(dir.path + "/absent", &err).has_value());
    EXPECT_EQ(err, ENOENT);
}

TEST(ChaosStore, GatherTimeCorruptionQuarantinesAndHealsViaTheCallback)
{
    // Post-commit bit rot discovered at gather time: the reader
    // quarantines the shard and the installed healer (the dataset
    // crash-resume machinery in production) regenerates it; the gather
    // then returns the true bytes.
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    TempDir dir("rot");
    DatasetConfig cfg = chaosDatasetConfig(dir.path);
    StreamedDataset sd = generateDatasetStreamed(arch, conv1dAlgo(), cfg);
    StoreImage want = imageOf(sd);

    const std::string victim = shardPath(dir.path, 2);
    {
        std::fstream f(victim,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(bool(f));
        f.seekg(0, std::ios::end);
        std::streamoff size = f.tellg();
        f.seekg(size / 2);
        char b = 0;
        f.read(&b, 1);
        b = char(b ^ 0x40);
        f.seekp(size / 2);
        f.write(&b, 1);
    }

    ShardedDatasetReader reader(dir.path, 2);
    reader.setShardHealer([&](size_t s) {
        // Re-label just this shard through the resume machinery: with
        // the manifest intact and one shard missing (quarantined),
        // generateDatasetStreamed regenerates exactly that shard.
        std::error_code ec;
        fs::remove(manifestPath(dir.path), ec);
        generateDatasetStreamed(arch, conv1dAlgo(), cfg);
        (void)s;
    });

    Matrix x, y;
    reader.materialize(0, cfg.samples, x, y); // walks through shard 2
    EXPECT_EQ(reader.quarantinedShards(), 1u);
    EXPECT_TRUE(fs::exists(victim + ".quarantine"));
    EXPECT_EQ(maxAbsDiff(x, want.x), 0.0);
    EXPECT_EQ(maxAbsDiff(y, want.y), 0.0);
}

// ---------------------------------------------------------------------------
// Cache degradation
// ---------------------------------------------------------------------------

namespace {

/** A tiny surrogate to feed the cache-degradation tests. */
Surrogate
tinySurrogate(uint64_t seed)
{
    Rng rng(seed);
    Mlp net(4, {{8, Activation::ReLU}, {1, Activation::Identity}}, rng);
    std::vector<double> zeros(4, 0.0), ones(4, 1.0);
    return Surrogate(std::move(net), FeatureTransform{2},
                     Normalizer::fromMoments(zeros, ones),
                     Normalizer::fromMoments({0.0}, {1.0}), 0);
}

} // namespace

TEST(CacheDegradation, EnospcDegradesToBypassInsteadOfThrowing)
{
    TempDir dir("cache");
    SurrogateCache cache(dir.path);
    Surrogate surrogate = tinySurrogate(3);

    {
        ScopedFaults faults("enospc:after=0");
        EXPECT_NO_THROW(cache.store("fp", surrogate));
        EXPECT_TRUE(cache.bypassed());
        // Degraded: stores are silent no-ops now.
        EXPECT_NO_THROW(cache.store("fp2", surrogate));
        EXPECT_EQ(cache.entryCount(), 0u);
    }

    cache.resetBypass();
    EXPECT_FALSE(cache.bypassed());
    cache.store("fp", surrogate);
    EXPECT_EQ(cache.entryCount(), 1u);
    EXPECT_TRUE(cache.load("fp").has_value());
}

TEST(CacheDegradation, BypassLatchIsPerInstanceNotProcessWide)
{
    // Regression: the ENOSPC latch used to be a process-wide static —
    // one full cache directory silently bypassed *every* cache instance
    // in the process, which is wrong for a multi-tenant server with
    // per-pool directories. A degraded instance must leave siblings
    // (and later instances over other directories) fully operational.
    TempDir full("cache_full");
    TempDir healthy("cache_ok");
    SurrogateCache sick(full.path);
    SurrogateCache sibling(healthy.path);
    Surrogate surrogate = tinySurrogate(5);

    {
        ScopedFaults faults("enospc:after=0");
        sick.store("fp", surrogate);
        EXPECT_TRUE(sick.bypassed());
    }
    // The sibling never saw ENOSPC: it must not have been poisoned and
    // must still persist entries while the sick instance stays latched.
    EXPECT_FALSE(sibling.bypassed());
    sibling.store("fp", surrogate);
    EXPECT_EQ(sibling.entryCount(), 1u);
    EXPECT_TRUE(sibling.load("fp").has_value());
    EXPECT_TRUE(sick.bypassed());
    EXPECT_EQ(sick.entryCount(), 0u);

    // A brand-new instance over the degraded directory starts re-armed:
    // warn-once semantics are per instance, not per path.
    SurrogateCache fresh(full.path);
    EXPECT_FALSE(fresh.bypassed());
    fresh.store("fp", surrogate);
    EXPECT_EQ(fresh.entryCount(), 1u);
}

// ---------------------------------------------------------------------------
// Orchestration isolation
// ---------------------------------------------------------------------------

TEST(RunManyIsolation, OneThrowingRepetitionDoesNotKillTheFleet)
{
    for (int threads : {1, 4}) {
        std::atomic<int> built{0};
        SearcherFactory factory = [&]() -> std::unique_ptr<Searcher> {
            return std::make_unique<FlakySearcher>(built.fetch_add(1), 1);
        };
        MultiRunOptions opts;
        opts.runs = 4;
        opts.threads = threads;
        MultiRunResult res =
            runMany(factory, SearchBudget::bySteps(10), opts);

        ASSERT_EQ(res.runs.size(), 4u);
        EXPECT_EQ(res.failedRuns, 1);
        int failures = 0;
        for (const SearchResult &r : res.runs) {
            if (r.failed()) {
                ++failures;
                EXPECT_NE(r.error.find("I/O error"), std::string::npos);
                EXPECT_NE(r.error.find("/dev/flaky"), std::string::npos);
            }
        }
        EXPECT_EQ(failures, 1);
        // Aggregates cover exactly the three survivors.
        EXPECT_EQ(res.method, "Flaky");
        EXPECT_TRUE(std::isfinite(res.bestNormEdp));
        EXPECT_TRUE(std::isfinite(res.medianNormEdp));
        EXPECT_FALSE(res.bestRun().failed());
        EXPECT_DOUBLE_EQ(res.bestRun().bestNormEdp, res.bestNormEdp);
    }
}

TEST(RunManyIsolation, AllRepetitionsFailingRaisesWithTheFirstError)
{
    SearcherFactory factory = []() -> std::unique_ptr<Searcher> {
        return std::make_unique<FlakySearcher>(1, 1); // always throws
    };
    MultiRunOptions opts;
    opts.runs = 3;
    try {
        runMany(factory, SearchBudget::bySteps(10), opts);
        FAIL() << "a fleet with zero survivors returned";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("repetitions failed"),
                  std::string::npos);
    }
}

TEST(RunManyIsolation, SerialWorkerDeliversTypedErrorsAtDrain)
{
    SerialWorker worker;
    worker.submit([] {
        throw CorruptionError("/d/shard-000005.mms",
                              CorruptionError::Kind::ChecksumMismatch,
                              "checksum mismatch", 1, 2);
    });
    try {
        worker.drain();
        FAIL() << "drain() swallowed the background failure";
    } catch (const CorruptionError &e) {
        // The typed payload survives the thread hop intact.
        EXPECT_EQ(e.kind(), CorruptionError::Kind::ChecksumMismatch);
        EXPECT_EQ(e.path(), "/d/shard-000005.mms");
        EXPECT_EQ(e.expectedChecksum(), 1u);
        EXPECT_EQ(e.actualChecksum(), 2u);
    }
}
