/**
 * @file
 * Search-framework tests: budgets, recorders, virtual-time accounting,
 * and the four baseline searchers (determinism, budget compliance,
 * validity and sanity of results).
 */
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/phase1.hpp"
#include "mapping/codec.hpp"
#include "mapping/moves.hpp"
#include "search/annealing.hpp"
#include "search/ddpg.hpp"
#include "search/genetic.hpp"
#include "search/parallel_driver.hpp"
#include "search/random_search.hpp"

namespace mm {
namespace {

struct SearchFixture
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem problem = mttkrpProblem("mtt", 128, 256, 512, 128);
    MapSpace space{arch, problem};
    CostModel model{space};
};

TEST(SearchBudget, StepAndTimeLimits)
{
    auto bySteps = SearchBudget::bySteps(10);
    EXPECT_FALSE(bySteps.done(9, 1e9));
    EXPECT_TRUE(bySteps.done(10, 0.0));

    auto byTime = SearchBudget::byVirtualTime(5.0);
    EXPECT_FALSE(byTime.done(1000000, 4.99));
    EXPECT_TRUE(byTime.done(0, 5.0));
}

TEST(SearchRecorder, TracksBestAndChargesTime)
{
    SearchFixture fx;
    Rng rng(1);
    SearchRecorder rec(fx.model, SearchBudget::bySteps(5), 2.0);
    double worst = 0.0;
    while (!rec.exhausted()) {
        double v = rec.step(fx.space.randomValid(rng));
        worst = std::max(worst, v);
    }
    EXPECT_EQ(rec.steps(), 5);
    EXPECT_DOUBLE_EQ(rec.virtualSec(), 10.0);
    EXPECT_LE(rec.bestNormEdp(), worst);

    SearchResult res = rec.finish("test");
    EXPECT_EQ(res.method, "test");
    EXPECT_EQ(res.steps, 5);
    ASSERT_FALSE(res.trace.empty());
    EXPECT_EQ(res.trace.back().step, 5);
    // Trace values are monotonically non-increasing.
    for (size_t i = 1; i < res.trace.size(); ++i)
        EXPECT_LE(res.trace[i].bestNormEdp, res.trace[i - 1].bestNormEdp);
    EXPECT_TRUE(fx.space.isMember(res.best));
}

TEST(SearchResult, StepAndTimeInterpolation)
{
    SearchResult res;
    res.trace = {{2, 1.0, 100.0}, {5, 2.5, 40.0}, {9, 4.5, 10.0}};
    EXPECT_TRUE(std::isinf(res.bestAtStep(1)));
    EXPECT_DOUBLE_EQ(res.bestAtStep(2), 100.0);
    EXPECT_DOUBLE_EQ(res.bestAtStep(6), 40.0);
    EXPECT_DOUBLE_EQ(res.bestAtStep(100), 10.0);
    EXPECT_DOUBLE_EQ(res.bestAtVirtualTime(2.5), 40.0);
    EXPECT_DOUBLE_EQ(res.bestAtVirtualTime(100.0), 10.0);
}

TEST(RandomSearcher, RespectsBudgetAndIsDeterministic)
{
    SearchFixture fx;
    RandomSearcher searcher(fx.model);
    Rng a(7), b(7);
    SearchResult r1 = searcher.run(SearchBudget::bySteps(50), a);
    SearchResult r2 = searcher.run(SearchBudget::bySteps(50), b);
    EXPECT_EQ(r1.steps, 50);
    EXPECT_DOUBLE_EQ(r1.bestNormEdp, r2.bestNormEdp);
    EXPECT_EQ(r1.best, r2.best);
    EXPECT_TRUE(fx.space.isMember(r1.best));
    // Paper-calibrated virtual time: one reference query per step.
    EXPECT_NEAR(r1.virtualSec, 50 * TimingModel{}.randomStepSec, 1e-9);
}

TEST(RandomSearcher, VirtualTimeBudgetStopsEarly)
{
    SearchFixture fx;
    RandomSearcher searcher(fx.model);
    Rng rng(3);
    SearchResult res =
        searcher.run(SearchBudget::byVirtualTime(100.0), rng);
    // 9.6 s per step: 11 steps push the clock past 100 s.
    EXPECT_EQ(res.steps, 11);
    EXPECT_GE(res.virtualSec, 100.0);
}

TEST(RandomSearcher, MoreBudgetNeverHurts)
{
    SearchFixture fx;
    RandomSearcher searcher(fx.model);
    Rng a(11), b(11);
    double small = searcher.run(SearchBudget::bySteps(20), a).bestNormEdp;
    double large = searcher.run(SearchBudget::bySteps(200), b).bestNormEdp;
    EXPECT_LE(large, small);
}

TEST(AnnealingSearcher, ImprovesOverInitAndStaysValid)
{
    SearchFixture fx;
    AnnealingSearcher searcher(fx.model);
    Rng rng(5);
    SearchResult res = searcher.run(SearchBudget::bySteps(400), rng);
    EXPECT_EQ(res.steps, 400);
    EXPECT_TRUE(fx.space.isMember(res.best));
    // Best-so-far must improve on the very first evaluated candidate.
    EXPECT_LT(res.bestNormEdp, res.trace.front().bestNormEdp + 1e-9);
    EXPECT_NEAR(res.virtualSec, 400 * TimingModel{}.saStepSec, 1e-6);
}

TEST(AnnealingSearcher, IsCompetitiveWithRandom)
{
    // On this modest map space best-of-N random sampling is a strong
    // baseline (Sec. 5.4.1 makes the same observation for MTTKRP); SA
    // must at least stay in the same quality band. Deterministic seeds.
    SearchFixture fx;
    std::vector<double> sa, rnd;
    for (uint64_t seed = 0; seed < 3; ++seed) {
        Rng r1(seed), r2(seed);
        AnnealingSearcher s(fx.model);
        RandomSearcher r(fx.model);
        sa.push_back(s.run(SearchBudget::bySteps(600), r1).bestNormEdp);
        rnd.push_back(r.run(SearchBudget::bySteps(600), r2).bestNormEdp);
    }
    EXPECT_LT(geomean(sa), geomean(rnd) * 1.25);
}

TEST(AnnealingSearcher, HonorsExplicitSchedule)
{
    SearchFixture fx;
    AnnealingConfig cfg;
    cfg.tMax = 100.0;
    cfg.tMin = 0.1;
    cfg.scheduleSteps = 200;
    AnnealingSearcher searcher(fx.model, cfg);
    Rng rng(9);
    SearchResult res = searcher.run(SearchBudget::bySteps(200), rng);
    EXPECT_EQ(res.steps, 200);
    EXPECT_TRUE(fx.space.isMember(res.best));
}

TEST(GeneticSearcher, EvaluatesPopulationsWithinBudget)
{
    SearchFixture fx;
    GeneticConfig cfg;
    cfg.populationSize = 20;
    GeneticSearcher searcher(fx.model, cfg);
    Rng rng(13);
    SearchResult res = searcher.run(SearchBudget::bySteps(150), rng);
    EXPECT_EQ(res.steps, 150);
    EXPECT_TRUE(fx.space.isMember(res.best));
    EXPECT_NEAR(res.virtualSec, 150 * TimingModel{}.gaStepSec, 1e-6);
}

TEST(GeneticSearcher, DeterministicAndImproves)
{
    SearchFixture fx;
    GeneticConfig cfg;
    cfg.populationSize = 20;
    Rng a(17), b(17);
    GeneticSearcher s1(fx.model, cfg), s2(fx.model, cfg);
    SearchResult r1 = s1.run(SearchBudget::bySteps(300), a);
    SearchResult r2 = s2.run(SearchBudget::bySteps(300), b);
    EXPECT_DOUBLE_EQ(r1.bestNormEdp, r2.bestNormEdp);
    // The final best beats the initial population's best (trace front is
    // the first improvement, i.e. the first individual).
    EXPECT_LE(r1.bestNormEdp, r1.trace.front().bestNormEdp);
}

TEST(GeneticSearcher, ChildInheritsFitnessOnlyWhenIdenticalAndEvaluated)
{
    SearchFixture fx;
    Rng rng(23);
    Mapping parent = fx.space.randomValid(rng);
    Mapping same = parent;
    EXPECT_TRUE(detail::childMayInheritFitness(same, parent, true));

    // Regression: crossover/mutation may return the parent genome
    // unchanged, but an UNevaluated parent's fitness is a placeholder
    // and must never be inherited — the child has to be re-scored.
    EXPECT_FALSE(detail::childMayInheritFitness(same, parent, false));

    // A genuinely mutated child never inherits, evaluated or not.
    Mapping child = randomNeighbor(fx.space, parent, rng);
    int guard = 0;
    while (child == parent && ++guard < 64)
        child = randomNeighbor(fx.space, parent, rng);
    ASSERT_FALSE(child == parent);
    EXPECT_FALSE(detail::childMayInheritFitness(child, parent, true));
    EXPECT_FALSE(detail::childMayInheritFitness(child, parent, false));
}

TEST(GeneticSearcher, RejectsDegenerateConfig)
{
    SearchFixture fx;
    GeneticConfig cfg;
    cfg.populationSize = 1;
    EXPECT_DEATH(
        { GeneticSearcher searcher(fx.model, cfg); }, "population");
}

TEST(DdpgSearcher, RunsWithinBudgetAndStaysValid)
{
    SearchFixture fx;
    DdpgConfig cfg;
    cfg.hiddenWidth = 32;
    cfg.batchSize = 8;
    cfg.warmupSteps = 16;
    DdpgSearcher searcher(fx.model, cfg);
    Rng rng(19);
    SearchResult res = searcher.run(SearchBudget::bySteps(120), rng);
    EXPECT_EQ(res.steps, 120);
    EXPECT_TRUE(fx.space.isMember(res.best));
    EXPECT_NEAR(res.virtualSec, 120 * TimingModel{}.rlStepSec, 1e-6);
}

TEST(DdpgSearcher, Deterministic)
{
    SearchFixture fx;
    DdpgConfig cfg;
    cfg.hiddenWidth = 24;
    cfg.batchSize = 8;
    cfg.warmupSteps = 8;
    Rng a(23), b(23);
    DdpgSearcher s1(fx.model, cfg), s2(fx.model, cfg);
    EXPECT_DOUBLE_EQ(s1.run(SearchBudget::bySteps(80), a).bestNormEdp,
                     s2.run(SearchBudget::bySteps(80), b).bestNormEdp);
}

TEST(DdpgSearcher, BatchedPathIsBitwiseIdenticalToPerStepLoop)
{
    SearchFixture fx;
    DdpgConfig perStep;
    perStep.hiddenWidth = 24;
    perStep.batchSize = 8;
    perStep.warmupSteps = 8;
    perStep.episodeLength = 7;
    perStep.updateEvery = 3;
    perStep.stepBlock = 1;
    DdpgConfig batched = perStep;
    batched.stepBlock = 16;
    // Budgets straddle episode terminals, the warmup->actor hand-off,
    // and off-phase learn steps so every block-boundary case is hit.
    for (int64_t steps : {5, 40, 96}) {
        Rng a(29), b(29);
        DdpgSearcher s1(fx.model, perStep), s2(fx.model, batched);
        SearchResult r1 = s1.run(SearchBudget::bySteps(steps), a);
        SearchResult r2 = s2.run(SearchBudget::bySteps(steps), b);
        EXPECT_EQ(r1.steps, r2.steps) << "budget " << steps;
        EXPECT_EQ(r1.bestNormEdp, r2.bestNormEdp) << "budget " << steps;
        EXPECT_TRUE(r1.best == r2.best) << "budget " << steps;
        ASSERT_EQ(r1.trace.size(), r2.trace.size()) << "budget " << steps;
        for (size_t i = 0; i < r1.trace.size(); ++i) {
            EXPECT_EQ(r1.trace[i].step, r2.trace[i].step);
            EXPECT_EQ(r1.trace[i].bestNormEdp, r2.trace[i].bestNormEdp);
        }
    }
}

/** Shares one small trained surrogate across the parallel-driver tests. */
class ParallelDriverFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        arch = new AcceleratorSpec(AcceleratorSpec::paperDefault());
        Phase1Config cfg;
        cfg.data.samples = 3000;
        cfg.data.problemCount = 10;
        cfg.data.seed = 3;
        cfg.train.epochs = 6;
        cfg.hidden = {32, 48, 32};
        cfg.seed = 5;
        result = new Phase1Result(
            trainSurrogate(*arch, conv1dAlgo(), cfg));
    }

    static void
    TearDownTestSuite()
    {
        delete result;
        delete arch;
        result = nullptr;
        arch = nullptr;
    }

    static AcceleratorSpec *arch;
    static Phase1Result *result;
};

AcceleratorSpec *ParallelDriverFixture::arch = nullptr;
Phase1Result *ParallelDriverFixture::result = nullptr;

TEST_F(ParallelDriverFixture, SurrogateBatchedMatchesPerSample)
{
    // Batched prediction/gradient must agree with the per-sample path
    // to 1e-10 (they share one gemm whose rows are independent).
    Surrogate &sur = result->surrogate;
    Problem p = makeProblem(conv1dAlgo(), "pd-batch", {130, 4});
    MapSpace space(*arch, p);
    MappingCodec codec(space);
    Rng rng(73);

    const size_t batchSize = 16;
    const size_t featDim = codec.featureCount();
    std::vector<std::vector<double>> zs;
    Matrix zRows(batchSize, featDim);
    for (size_t r = 0; r < batchSize; ++r) {
        auto z = sur.normalizeInput(codec.encode(space.randomValid(rng)));
        for (size_t j = 0; j < featDim; ++j)
            zRows(r, j) = float(z[j]);
        zs.push_back(std::move(z));
    }

    std::vector<double> predOne(batchSize);
    Matrix gradOne(batchSize, featDim);
    std::vector<double> grad;
    for (size_t r = 0; r < batchSize; ++r) {
        predOne[r] = sur.gradient(zs[r], grad);
        for (size_t j = 0; j < featDim; ++j)
            gradOne(r, j) = float(grad[j]);
        EXPECT_DOUBLE_EQ(sur.predictNormEdp(zs[r]), predOne[r]);
    }

    std::vector<double> predBatchOnly = sur.predictNormEdpBatch(zRows);
    std::vector<double> predBatch;
    const Matrix &gradBatch = sur.gradientBatch(zRows, predBatch);
    ASSERT_EQ(predBatch.size(), batchSize);
    for (size_t r = 0; r < batchSize; ++r) {
        EXPECT_NEAR(predBatch[r], predOne[r],
                    1e-10 * std::max(1.0, predOne[r]));
        EXPECT_NEAR(predBatchOnly[r], predOne[r],
                    1e-10 * std::max(1.0, predOne[r]));
    }
    EXPECT_LE(maxAbsDiff(gradBatch, gradOne), 1e-10);
}

TEST_F(ParallelDriverFixture, SingleChainMatchesSequentialSearcher)
{
    // Both entry points delegate to runBatchedGradientSearch, so this
    // guards the config plumbing of the two facades (one chain, one
    // thread, same latency), not two independent implementations; the
    // sequential semantics themselves are pinned by
    // GradientSearcherTest and the batch-equivalence tests above.
    Problem p = makeProblem(conv1dAlgo(), "pd-one", {120, 4});
    MapSpace space(*arch, p);
    CostModel model(space);
    MindMappingsSearcher seq(model, result->surrogate);
    ParallelSearchConfig pcfg;
    pcfg.chains = 1;
    pcfg.threads = 1;
    ParallelGradientSearcher par(model, result->surrogate, pcfg);

    Rng a(61), b(61);
    SearchResult r1 = seq.run(SearchBudget::bySteps(100), a);
    SearchResult r2 = par.run(SearchBudget::bySteps(100), b);
    EXPECT_EQ(r1.steps, r2.steps);
    EXPECT_DOUBLE_EQ(r1.bestNormEdp, r2.bestNormEdp);
    EXPECT_EQ(r1.best, r2.best);
}

TEST_F(ParallelDriverFixture, DeterministicAcrossThreadCounts)
{
    Problem p = makeProblem(conv1dAlgo(), "pd-det", {140, 5});
    MapSpace space(*arch, p);
    CostModel model(space);

    std::vector<SearchResult> results;
    for (int threads : {1, 2, 4}) {
        ParallelSearchConfig pcfg;
        pcfg.chains = 4;
        pcfg.threads = threads;
        ParallelGradientSearcher searcher(model, result->surrogate, pcfg);
        Rng rng(67);
        results.push_back(searcher.run(SearchBudget::bySteps(160), rng));
    }
    for (size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[0].steps, results[i].steps);
        EXPECT_DOUBLE_EQ(results[0].bestNormEdp, results[i].bestNormEdp);
        EXPECT_EQ(results[0].best, results[i].best);
        ASSERT_EQ(results[0].trace.size(), results[i].trace.size());
        for (size_t t = 0; t < results[0].trace.size(); ++t) {
            EXPECT_EQ(results[0].trace[t].step, results[i].trace[t].step);
            EXPECT_DOUBLE_EQ(results[0].trace[t].bestNormEdp,
                             results[i].trace[t].bestNormEdp);
        }
    }
    EXPECT_TRUE(space.isMember(results[0].best));
}

TEST_F(ParallelDriverFixture, StepBudgetTruncatesFinalBatch)
{
    Problem p = makeProblem(conv1dAlgo(), "pd-trunc", {110, 3});
    MapSpace space(*arch, p);
    CostModel model(space);
    ParallelSearchConfig pcfg;
    pcfg.chains = 4;
    pcfg.threads = 2;
    ParallelGradientSearcher searcher(model, result->surrogate, pcfg);
    Rng rng(71);
    // 102 = 25 full batches of 4 + a truncated batch of 2.
    SearchResult res = searcher.run(SearchBudget::bySteps(102), rng);
    EXPECT_EQ(res.steps, 102);
    EXPECT_TRUE(space.isMember(res.best));
    // 26 wall-clock driver steps, one surrogate-step latency each.
    EXPECT_NEAR(res.virtualSec, 26 * TimingModel{}.surrogateStepSec, 1e-9);
}

TEST_F(ParallelDriverFixture, IsoTimeExploresChainsTimesMoreSteps)
{
    Problem p = makeProblem(conv1dAlgo(), "pd-iso", {150, 4});
    MapSpace space(*arch, p);
    CostModel model(space);
    auto budget = SearchBudget::byVirtualTime(2.0);

    MindMappingsSearcher seq(model, result->surrogate);
    ParallelSearchConfig pcfg;
    pcfg.chains = 4;
    pcfg.threads = 2;
    ParallelGradientSearcher par(model, result->surrogate, pcfg);

    Rng a(79), b(79);
    SearchResult rs = seq.run(budget, a);
    SearchResult rp = par.run(budget, b);
    // Same virtual wall-clock, chains-times the explored candidates —
    // the iso-time advantage of the batched driver.
    EXPECT_EQ(rp.steps, 4 * rs.steps);
    EXPECT_GE(rs.virtualSec, 2.0);
    EXPECT_GE(rp.virtualSec, 2.0);
}

TEST_F(ParallelDriverFixture, SeedFromBBWarmStartsChainZero)
{
    Problem p = makeProblem(conv1dAlgo(), "pd-seed", {130, 4});
    MapSpace space(*arch, p);
    CostModel model(space);
    ParallelSearchConfig pcfg;
    pcfg.chains = 3;
    pcfg.threads = 1;
    pcfg.chain.seedFrom = "BB";
    pcfg.chain.seedNodes = 16;
    ParallelGradientSearcher seeded(model, result->surrogate, pcfg);

    Rng r1(21), r2(21);
    SearchResult a = seeded.run(SearchBudget::bySteps(90), r1);
    SearchResult b = seeded.run(SearchBudget::bySteps(90), r2);
    EXPECT_TRUE(space.isMember(a.best));
    EXPECT_TRUE(std::isfinite(a.bestNormEdp));
    EXPECT_DOUBLE_EQ(a.bestNormEdp, b.bestNormEdp);
    EXPECT_EQ(a.best, b.best);

    // Seeding replaces chain 0's start after the random draws, so the
    // unseeded run with the same seed still works from the same stream.
    ParallelSearchConfig plain = pcfg;
    plain.chain.seedFrom.clear();
    Rng r3(21);
    SearchResult c = ParallelGradientSearcher(model, result->surrogate,
                                              plain)
                         .run(SearchBudget::bySteps(90), r3);
    EXPECT_TRUE(space.isMember(c.best));
}

TEST(TimingModel, PaperCalibratedRatios)
{
    TimingModel t = TimingModel::paperCalibrated();
    EXPECT_NEAR(t.saStepSec / t.surrogateStepSec, 153.6, 1.0);
    EXPECT_NEAR(t.gaStepSec / t.surrogateStepSec, 286.9, 1.0);
    EXPECT_NEAR(t.rlStepSec / t.surrogateStepSec, 425.4, 1.0);
}

} // namespace
} // namespace mm
