/**
 * @file
 * Tests for the future-work extensions: linear (simpler differentiable)
 * surrogates and elite-biased training-set sampling.
 */
#include <gtest/gtest.h>

#include "core/mind_mappings.hpp"
#include "mapping/codec.hpp"

namespace mm {
namespace {

TEST(LinearSurrogate, TopologyAndTraining)
{
    // Empty hidden list builds a single identity (linear) layer.
    auto specs = surrogateTopology({}, 12);
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].width, 12u);
    EXPECT_EQ(specs[0].act, Activation::Identity);

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Phase1Config cfg;
    cfg.linear = true;
    cfg.data.samples = 2000;
    cfg.data.problemCount = 8;
    cfg.train.epochs = 6;
    Phase1Result result = trainSurrogate(arch, conv1dAlgo(), cfg);
    EXPECT_EQ(result.surrogate.net().layerCount(), 1u);
    EXPECT_LT(result.history.back().trainLoss,
              result.history.front().trainLoss);
}

TEST(LinearSurrogate, GradientsAndSearchStillWork)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Phase1Config cfg;
    cfg.linear = true;
    cfg.data.samples = 2000;
    cfg.data.problemCount = 8;
    cfg.train.epochs = 6;
    Phase1Result result = trainSurrogate(arch, conv1dAlgo(), cfg);

    Problem p = makeProblem(conv1dAlgo(), "lin", {150, 4});
    MapSpace space(arch, p);
    CostModel model(space);
    MappingCodec codec(space);
    Rng rng(3);
    Mapping m = space.randomValid(rng);
    auto z = result.surrogate.normalizeInput(codec.encode(m));
    std::vector<double> grad;
    double pred = result.surrogate.gradient(z, grad);
    EXPECT_TRUE(std::isfinite(pred));
    EXPECT_GT(pred, 0.0);
    // A linear model in z-space has an input gradient independent of z.
    auto z2 = z;
    for (auto &v : z2)
        v += 0.5;
    std::vector<double> grad2;
    result.surrogate.gradient(z2, grad2);
    for (size_t i = 0; i < grad.size(); ++i)
        EXPECT_NEAR(grad[i], grad2[i], 1e-4 + 1e-3 * std::fabs(grad[i]));

    MindMappingsSearcher searcher(model, result.surrogate);
    SearchResult res = searcher.run(SearchBudget::bySteps(100), rng);
    EXPECT_EQ(res.steps, 100);
    EXPECT_TRUE(space.isMember(res.best));
}

TEST(EliteSampling, ShiftsTargetDistributionDown)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    DatasetConfig uniform;
    uniform.samples = 1500;
    uniform.problemCount = 6;
    uniform.metaStatOutputs = false; // single log-EDP output
    uniform.seed = 17;
    DatasetConfig elite = uniform;
    elite.eliteFraction = 0.8;
    elite.eliteCandidates = 8;

    SurrogateDataset u = generateDataset(arch, cnnLayerAlgo(), uniform);
    SurrogateDataset e = generateDataset(arch, cnnLayerAlgo(), elite);
    // The whitening mean of log-EDP reflects the sampled distribution:
    // elite-biased draws must sit strictly lower.
    EXPECT_LT(e.outputNorm.mean(0), u.outputNorm.mean(0) - 0.2);
}

TEST(EliteSampling, ZeroFractionMatchesUniform)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    DatasetConfig a;
    a.samples = 400;
    a.problemCount = 4;
    a.seed = 23;
    DatasetConfig b = a;
    b.eliteFraction = 0.0;
    SurrogateDataset da = generateDataset(arch, mttkrpAlgo(), a);
    SurrogateDataset db = generateDataset(arch, mttkrpAlgo(), b);
    EXPECT_LT(maxAbsDiff(da.xTrain, db.xTrain), 1e-9);
}

TEST(Extensions, FingerprintsDistinguishConfigs)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Phase1Config base;
    Phase1Config lin = base;
    lin.linear = true;
    Phase1Config elite = base;
    elite.data.eliteFraction = 0.25;
    std::string fBase = base.fingerprint(arch, cnnLayerAlgo());
    std::string fLin = lin.fingerprint(arch, cnnLayerAlgo());
    std::string fElite = elite.fingerprint(arch, cnnLayerAlgo());
    EXPECT_NE(fBase, fLin);
    EXPECT_NE(fBase, fElite);
    EXPECT_NE(fLin, fElite);
}

} // namespace
} // namespace mm
