/**
 * @file
 * Core-module tests: normalization, feature conditioning, dataset
 * generation, surrogate fidelity + analytic-vs-numeric input gradients,
 * caching, Phase-2 search behavior, and the MindMappings facade.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "common/stats.hpp"
#include "core/mind_mappings.hpp"
#include "mapping/codec.hpp"
#include "search/random_search.hpp"

namespace mm {
namespace {

/** Small conv1d Phase-1 config that trains in ~1 s. */
Phase1Config
tinyPhase1()
{
    Phase1Config cfg;
    cfg.data.samples = 4000;
    cfg.data.problemCount = 12;
    cfg.data.seed = 3;
    cfg.train.epochs = 10;
    cfg.hidden = {32, 64, 32};
    cfg.seed = 5;
    return cfg;
}

TEST(Normalizer, FitApplyInvertRoundTrip)
{
    Matrix data(100, 3);
    Rng rng(1);
    for (size_t i = 0; i < data.size(); ++i)
        data.data()[i] = float(rng.uniformReal(-5.0, 20.0));
    Normalizer norm = Normalizer::fit(data);

    std::vector<double> raw = {1.0, 2.0, 3.0};
    auto z = norm.apply(raw);
    auto back = norm.invert(z);
    for (size_t i = 0; i < raw.size(); ++i)
        EXPECT_NEAR(back[i], raw[i], 1e-9);

    // Applying in place leaves ~N(0,1) columns.
    norm.applyInPlace(data);
    Normalizer refit = Normalizer::fit(data);
    for (size_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(refit.mean(c), 0.0, 1e-5);
        EXPECT_NEAR(refit.std(c), 1.0, 1e-4);
    }
}

TEST(Normalizer, SaveLoadRoundTrip)
{
    Matrix data(50, 2);
    Rng rng(2);
    for (size_t i = 0; i < data.size(); ++i)
        data.data()[i] = float(rng.gaussian(3.0, 2.0));
    Normalizer norm = Normalizer::fit(data);
    std::stringstream ss;
    norm.save(ss);
    Normalizer loaded = Normalizer::load(ss);
    ASSERT_EQ(loaded.dim(), 2u);
    EXPECT_DOUBLE_EQ(loaded.mean(0), norm.mean(0));
    EXPECT_DOUBLE_EQ(loaded.std(1), norm.std(1));
}

TEST(FeatureTransform, LogPrefixRoundTrip)
{
    FeatureTransform t{3};
    std::vector<double> v = {1.0, 8.0, 1024.0, 5.0, -2.0};
    auto original = v;
    t.apply(v);
    EXPECT_DOUBLE_EQ(v[0], 0.0);
    EXPECT_DOUBLE_EQ(v[1], 3.0);
    EXPECT_DOUBLE_EQ(v[2], 10.0);
    EXPECT_DOUBLE_EQ(v[3], 5.0);  // untouched
    EXPECT_DOUBLE_EQ(v[4], -2.0); // untouched
    t.invert(v);
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_NEAR(v[i], original[i], 1e-9);
}

TEST(Dataset, ShapesSplitsAndWhitening)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    DatasetConfig cfg;
    cfg.samples = 2000;
    cfg.testFraction = 0.2;
    cfg.problemCount = 8;
    cfg.seed = 7;
    SurrogateDataset ds = generateDataset(arch, mttkrpAlgo(), cfg);

    EXPECT_EQ(ds.featureCount, 40u); // paper: MTTKRP input width
    EXPECT_EQ(ds.outputCount, 15u);  // paper: MTTKRP output width
    EXPECT_EQ(ds.xTrain.rows(), 1600u);
    EXPECT_EQ(ds.xTest.rows(), 400u);
    EXPECT_EQ(ds.yTrain.cols(), 15u);

    // Training columns are whitened.
    Normalizer refit = Normalizer::fit(ds.yTrain);
    for (size_t c = 0; c < ds.outputCount; ++c) {
        EXPECT_NEAR(refit.mean(c), 0.0, 1e-4);
        EXPECT_NEAR(refit.std(c), 1.0, 1e-3);
    }
}

TEST(Dataset, DirectEdpModeHasOneOutput)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    DatasetConfig cfg;
    cfg.samples = 500;
    cfg.problemCount = 4;
    cfg.metaStatOutputs = false;
    SurrogateDataset ds = generateDataset(arch, conv1dAlgo(), cfg);
    EXPECT_EQ(ds.outputCount, 1u);
}

TEST(Dataset, DeterministicBySeed)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    DatasetConfig cfg;
    cfg.samples = 300;
    cfg.problemCount = 4;
    cfg.seed = 11;
    SurrogateDataset a = generateDataset(arch, conv1dAlgo(), cfg);
    SurrogateDataset b = generateDataset(arch, conv1dAlgo(), cfg);
    EXPECT_LT(maxAbsDiff(a.xTrain, b.xTrain), 1e-9);
    EXPECT_LT(maxAbsDiff(a.yTrain, b.yTrain), 1e-9);
}

TEST(Dataset, BitwiseIdenticalAtAnyLaneCount)
{
    // Labeling fans out over the context's pool, but each sample draws
    // from its own forked stream and writes its own rows, so the
    // dataset must not depend on the lane count (or on a null context).
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    DatasetConfig cfg;
    cfg.samples = 240;
    cfg.problemCount = 3;
    cfg.eliteFraction = 0.25;
    cfg.seed = 23;
    SurrogateDataset serial = generateDataset(arch, conv1dAlgo(), cfg);
    for (size_t lanes : {1u, 2u, 4u}) {
        ParallelContext ctx(lanes);
        SurrogateDataset par =
            generateDataset(arch, conv1dAlgo(), cfg, &ctx);
        EXPECT_EQ(maxAbsDiff(serial.xTrain, par.xTrain), 0.0)
            << "lanes=" << lanes;
        EXPECT_EQ(maxAbsDiff(serial.yTrain, par.yTrain), 0.0)
            << "lanes=" << lanes;
        EXPECT_EQ(maxAbsDiff(serial.xTest, par.xTest), 0.0)
            << "lanes=" << lanes;
    }
}

TEST(Dataset, ExplicitProblemListIsHonored)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    DatasetConfig cfg;
    cfg.samples = 200;
    cfg.problems = {makeProblem(conv1dAlgo(), "fixed", {64, 3})};
    SurrogateDataset ds = generateDataset(arch, conv1dAlgo(), cfg);
    // All pid features must be the fixed problem's (log2-conditioned).
    for (size_t r = 0; r < ds.xTrain.rows(); ++r) {
        double x0 = double(ds.xTrain(r, 0));
        EXPECT_NEAR(x0 * ds.inputNorm.std(0) + ds.inputNorm.mean(0),
                    std::log2(64.0), 1e-4);
    }
}

TEST(MetaStatNormalization, DividesByBounds)
{
    std::vector<double> stats = {10.0, 20.0, 30.0, 40.0, 50.0, 60.0,
                                 70.0, 80.0, 90.0, 100.0, 0.5, 200.0};
    normalizeMetaStatsByBound(stats, 3, 10.0, 4.0);
    EXPECT_DOUBLE_EQ(stats[0], 1.0);    // energy / lbEnergy
    EXPECT_DOUBLE_EQ(stats[9], 10.0);   // total energy
    EXPECT_DOUBLE_EQ(stats[10], 0.5);   // utilization untouched
    EXPECT_DOUBLE_EQ(stats[11], 50.0);  // cycles / lbCycles
}

class SurrogateFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        arch = new AcceleratorSpec(AcceleratorSpec::paperDefault());
        result = new Phase1Result(
            trainSurrogate(*arch, conv1dAlgo(), tinyPhase1()));
    }

    static void
    TearDownTestSuite()
    {
        delete result;
        delete arch;
        result = nullptr;
        arch = nullptr;
    }

    static AcceleratorSpec *arch;
    static Phase1Result *result;
};

AcceleratorSpec *SurrogateFixture::arch = nullptr;
Phase1Result *SurrogateFixture::result = nullptr;

TEST_F(SurrogateFixture, TrainingConverges)
{
    ASSERT_EQ(result->history.size(), 10u);
    EXPECT_LT(result->history.back().trainLoss,
              result->history.front().trainLoss);
    EXPECT_LT(result->history.back().testLoss, 0.5);
}

TEST_F(SurrogateFixture, PredictionsCorrelateWithTruth)
{
    Surrogate &sur = result->surrogate;
    Problem p = makeProblem(conv1dAlgo(), "unseen", {200, 6});
    MapSpace space(*arch, p);
    CostModel model(space);
    MappingCodec codec(space);
    Rng rng(23);

    const int n = 200;
    std::vector<double> pred, truth;
    for (int i = 0; i < n; ++i) {
        Mapping m = space.randomValid(rng);
        auto z = sur.normalizeInput(codec.encode(m));
        pred.push_back(std::log(sur.predictNormEdp(z)));
        truth.push_back(std::log(model.normalizedEdp(m)));
    }
    double mp = mean(pred), mt = mean(truth);
    double num = 0.0, dp = 0.0, dt = 0.0;
    for (int i = 0; i < n; ++i) {
        num += (pred[size_t(i)] - mp) * (truth[size_t(i)] - mt);
        dp += (pred[size_t(i)] - mp) * (pred[size_t(i)] - mp);
        dt += (truth[size_t(i)] - mt) * (truth[size_t(i)] - mt);
    }
    double corr = num / std::sqrt(dp * dt);
    // The surrogate generalizes to an unseen problem: strong positive
    // rank signal (the paper's interpolation claim, Section 4.1.1).
    EXPECT_GT(corr, 0.6);
}

TEST_F(SurrogateFixture, GradientMatchesFiniteDifference)
{
    Surrogate &sur = result->surrogate;
    Problem p = makeProblem(conv1dAlgo(), "grad", {128, 4});
    MapSpace space(*arch, p);
    MappingCodec codec(space);
    Rng rng(29);
    Mapping m = space.randomValid(rng);
    auto z = sur.normalizeInput(codec.encode(m));

    std::vector<double> grad;
    sur.gradient(z, grad);
    ASSERT_EQ(grad.size(), z.size());

    const double eps = 1e-3;
    for (size_t i = 0; i < z.size(); ++i) {
        auto up = z, down = z;
        up[i] += eps;
        down[i] -= eps;
        double numeric = (std::log(sur.predictNormEdp(up))
                          - std::log(sur.predictNormEdp(down)))
                         / (2.0 * eps);
        EXPECT_NEAR(grad[i], numeric,
                    5e-2 * std::max(1.0, std::fabs(numeric)))
            << "feature " << i;
    }
}

TEST_F(SurrogateFixture, NormalizeDenormalizeRoundTrip)
{
    Surrogate &sur = result->surrogate;
    Problem p = makeProblem(conv1dAlgo(), "rt", {96, 5});
    MapSpace space(*arch, p);
    MappingCodec codec(space);
    Rng rng(31);
    Mapping m = space.randomValid(rng);
    auto raw = codec.encode(m);
    auto back = sur.denormalizeInput(sur.normalizeInput(raw));
    for (size_t i = 0; i < raw.size(); ++i)
        EXPECT_NEAR(back[i], raw[i], 1e-6 * std::max(1.0, raw[i]));
}

TEST_F(SurrogateFixture, SaveLoadPreservesPredictions)
{
    Surrogate &sur = result->surrogate;
    Problem p = makeProblem(conv1dAlgo(), "sl", {160, 3});
    MapSpace space(*arch, p);
    MappingCodec codec(space);
    Rng rng(37);
    Mapping m = space.randomValid(rng);
    auto z = sur.normalizeInput(codec.encode(m));
    double before = sur.predictNormEdp(z);

    std::stringstream ss;
    sur.save(ss);
    Surrogate loaded = Surrogate::load(ss);
    EXPECT_NEAR(loaded.predictNormEdp(z), before, 1e-6 * before);
    EXPECT_EQ(loaded.featureCount(), sur.featureCount());
    EXPECT_EQ(loaded.featureTransform().logPrefix,
              sur.featureTransform().logPrefix);
}

TEST_F(SurrogateFixture, MetaStatsArePositive)
{
    Surrogate &sur = result->surrogate;
    Problem p = makeProblem(conv1dAlgo(), "ms", {64, 3});
    MapSpace space(*arch, p);
    MappingCodec codec(space);
    Rng rng(41);
    Mapping m = space.randomValid(rng);
    auto stats =
        sur.predictMetaStats(sur.normalizeInput(codec.encode(m)));
    ASSERT_EQ(stats.size(), CostResult::metaStatCount(3));
    for (double v : stats)
        EXPECT_GT(v, 0.0);
}

TEST(Phase1Config, ResolveAndFingerprint)
{
    Phase1Config fast;
    fast.resolve();
    EXPECT_FALSE(fast.hidden.empty());
    Phase1Config again = fast;
    again.resolve(); // idempotent
    EXPECT_EQ(again.hidden, fast.hidden);

    Phase1Config paper;
    paper.preset = SurrogatePreset::Paper;
    paper.resolve();
    EXPECT_EQ(paper.hidden.size(), 8u);
    EXPECT_EQ(paper.hidden[3], 2048u);
    EXPECT_EQ(paper.train.epochs, 100);
    EXPECT_EQ(paper.data.samples, 10'000'000u);

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    std::string a = fast.fingerprint(arch, cnnLayerAlgo());
    std::string b = paper.fingerprint(arch, cnnLayerAlgo());
    std::string c = fast.fingerprint(arch, mttkrpAlgo());
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
}

TEST(SurrogateCacheTest, StoreLoadRoundTrip)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Phase1Config cfg = tinyPhase1();
    cfg.data.samples = 1000;
    cfg.train.epochs = 2;
    Phase1Result trained = trainSurrogate(arch, conv1dAlgo(), cfg);

    std::string dir = std::filesystem::temp_directory_path()
                      / "mm_cache_test";
    std::filesystem::remove_all(dir);
    SurrogateCache cache(dir);
    EXPECT_FALSE(cache.load("key").has_value());
    cache.store("key", trained.surrogate);
    auto loaded = cache.load("key");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->featureCount(), trained.surrogate.featureCount());
    std::filesystem::remove_all(dir);
}

TEST(SurrogateCacheTest, DisableSwitch)
{
    ::setenv("MM_NO_CACHE", "1", 1);
    EXPECT_TRUE(SurrogateCache::disabled());
    ::unsetenv("MM_NO_CACHE");
    EXPECT_FALSE(SurrogateCache::disabled());
}

TEST(MindMappingsFacade, EndToEnd)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    MindMappingsOptions opts;
    opts.phase1 = tinyPhase1();
    opts.useCache = false;
    MindMappings mapper(arch, conv1dAlgo(), opts);

    EXPECT_FALSE(mapper.prepared());
    mapper.prepare();
    EXPECT_TRUE(mapper.prepared());
    EXPECT_FALSE(mapper.trainingHistory().empty());

    Problem p = makeProblem(conv1dAlgo(), "target", {180, 5});
    Rng rng(43);
    Mapping random = mapper.getMapping(p, rng);
    EXPECT_TRUE(mapper.isMember(p, random));
    random.spatial[0] = 1 << 20;
    EXPECT_FALSE(mapper.isMember(p, random));
    EXPECT_TRUE(mapper.isMember(p, mapper.getProjection(p, random)));

    SearchResult res = mapper.search(p, SearchBudget::bySteps(150), rng);
    EXPECT_EQ(res.steps, 150);
    EXPECT_TRUE(mapper.isMember(p, res.best));
    EXPECT_NEAR(mapper.normalizedEdp(p, res.best), res.bestNormEdp,
                1e-9 * res.bestNormEdp);
}

TEST(MindMappingsFacade, RejectsForeignProblems)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    MindMappingsOptions opts;
    opts.phase1 = tinyPhase1();
    opts.useCache = false;
    MindMappings mapper(arch, conv1dAlgo(), opts);
    Problem wrong = mttkrpProblem("wrong", 64, 64, 64, 64);
    Rng rng(47);
    EXPECT_THROW(mapper.search(wrong, SearchBudget::bySteps(10), rng),
                 FatalError);
}

TEST(MindMappingsFacade, CacheHitSkipsTraining)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    std::string dir = std::filesystem::temp_directory_path()
                      / "mm_cache_facade_test";
    std::filesystem::remove_all(dir);

    MindMappingsOptions opts;
    opts.phase1 = tinyPhase1();
    opts.phase1.data.samples = 1500;
    opts.phase1.train.epochs = 3;
    opts.cacheDir = dir;

    MindMappings first(arch, conv1dAlgo(), opts);
    EXPECT_FALSE(first.prepare()); // trained
    MindMappings second(arch, conv1dAlgo(), opts);
    EXPECT_TRUE(second.prepare()); // cache hit
    EXPECT_TRUE(second.trainingHistory().empty());
    std::filesystem::remove_all(dir);
}

TEST(MindMappingsFacade, ParallelChainsKnob)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    MindMappingsOptions opts;
    opts.phase1 = tinyPhase1();
    opts.useCache = false;
    // Batched multi-threaded Phase 2: 3 chains, 2 lanes.
    opts.searchChains = 3;
    opts.searchThreads = 2;
    MindMappings mapper(arch, conv1dAlgo(), opts);

    Problem p = makeProblem(conv1dAlgo(), "par", {170, 4});
    Rng a(53), b(53);
    SearchResult r1 = mapper.search(p, SearchBudget::bySteps(90), a);
    SearchResult r2 = mapper.search(p, SearchBudget::bySteps(90), b);
    EXPECT_EQ(r1.steps, 90);
    EXPECT_TRUE(mapper.isMember(p, r1.best));
    EXPECT_DOUBLE_EQ(r1.bestNormEdp, r2.bestNormEdp);
    // 30 wall-clock batches of 3 concurrent chains.
    EXPECT_NEAR(r1.virtualSec, 30 * TimingModel{}.surrogateStepSec, 1e-9);
}

TEST(GradientSearcherTest, RespectsBudgetInjectionToggleAndSeeds)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Phase1Result trained =
        trainSurrogate(arch, conv1dAlgo(), tinyPhase1());
    Problem p = makeProblem(conv1dAlgo(), "t", {150, 4});
    MapSpace space(arch, p);
    CostModel model(space);

    for (bool inject : {true, false}) {
        GradientSearchConfig cfg;
        cfg.enableInjection = inject;
        MindMappingsSearcher searcher(model, trained.surrogate, cfg);
        Rng a(51), b(51);
        SearchResult r1 = searcher.run(SearchBudget::bySteps(120), a);
        SearchResult r2 = searcher.run(SearchBudget::bySteps(120), b);
        EXPECT_EQ(r1.steps, 120);
        EXPECT_TRUE(space.isMember(r1.best));
        EXPECT_DOUBLE_EQ(r1.bestNormEdp, r2.bestNormEdp);
        EXPECT_NEAR(r1.virtualSec,
                    120 * TimingModel{}.surrogateStepSec, 1e-9);
    }
}

} // namespace
} // namespace mm
