/**
 * Negative-compile probe: writing an MM_GUARDED_BY field without its
 * mutex must fail under -Werror=thread-safety. The CMake harness
 * builds this twice: as-is it must NOT compile (WILL_FAIL ctest entry);
 * with -DMM_COMPILE_FAIL_FIXED the properly locked variant must
 * compile, proving the failure comes from the violation and not from a
 * broken harness.
 */
#include "common/mutex.hpp"

namespace {

struct Counter
{
    mm::Mutex m;
    int value MM_GUARDED_BY(m) = 0;

    void
    bump() MM_EXCLUDES(m)
    {
#ifdef MM_COMPILE_FAIL_FIXED
        mm::MutexLock lock(m);
        ++value;
#else
        ++value; // unguarded write: thread-safety analysis must reject
#endif
    }
};

} // namespace

void
compileFailGuardedByProbe()
{
    Counter c;
    c.bump();
}
