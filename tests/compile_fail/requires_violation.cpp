/**
 * Negative-compile probe: calling an MM_REQUIRES(m) function without
 * holding m must fail under -Werror=thread-safety. Built twice by the
 * CMake harness: unpatched it must NOT compile (WILL_FAIL), with
 * -DMM_COMPILE_FAIL_FIXED the caller takes the lock first and must
 * compile.
 */
#include "common/mutex.hpp"

namespace {

struct Queue
{
    mm::Mutex m;
    int depth MM_GUARDED_BY(m) = 0;

    void
    drainLocked() MM_REQUIRES(m)
    {
        depth = 0;
    }

    void
    drain() MM_EXCLUDES(m)
    {
#ifdef MM_COMPILE_FAIL_FIXED
        mm::MutexLock lock(m);
        drainLocked();
#else
        drainLocked(); // caller does not hold m: analysis must reject
#endif
    }
};

} // namespace

void
compileFailRequiresProbe()
{
    Queue q;
    q.drain();
}
