/**
 * @file
 * Workload tests: algorithm specs, Table 1 problems, halo-aware
 * footprints and the golden reference kernels (checked against
 * hand-written naive loops).
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workload/problem.hpp"
#include "workload/reference.hpp"

namespace mm {
namespace {

TEST(Algorithm, CnnLayerShape)
{
    const auto &algo = cnnLayerAlgo();
    EXPECT_EQ(algo.rank(), 7u);
    EXPECT_EQ(algo.tensorCount(), 3u);
    EXPECT_EQ(algo.outputTensor(), 2u);
    EXPECT_EQ(algo.dimNames[0], "N");
    EXPECT_EQ(algo.dimNames[6], "S");
    // Inputs use N, C, X, Y, R, S but not K.
    EXPECT_FALSE(algo.tensors[0].usesDim(1));
    EXPECT_TRUE(algo.tensors[0].usesDim(5));
    // Weights use K, C, R, S but not N, X, Y.
    EXPECT_TRUE(algo.tensors[1].usesDim(1));
    EXPECT_FALSE(algo.tensors[1].usesDim(0));
    // Outputs use N, K, X, Y but not the reduction dims C, R, S.
    EXPECT_FALSE(algo.tensors[2].usesDim(2));
    EXPECT_FALSE(algo.tensors[2].usesDim(5));
}

TEST(Algorithm, MttkrpShape)
{
    const auto &algo = mttkrpAlgo();
    EXPECT_EQ(algo.rank(), 4u);
    EXPECT_EQ(algo.tensorCount(), 4u);
    EXPECT_EQ(algo.outputTensor(), 3u);
}

TEST(Algorithm, HaloFootprint)
{
    const auto &algo = conv1dAlgo();
    // Inputs: extent (X + R - 1); Filters: R; Outputs: X.
    std::vector<int64_t> extents = {10, 3};
    EXPECT_EQ(algo.tileFootprint(0, extents), 12);
    EXPECT_EQ(algo.tileFootprint(1, extents), 3);
    EXPECT_EQ(algo.tileFootprint(2, extents), 10);
}

TEST(Algorithm, CnnFootprintMatchesClosedForm)
{
    const auto &algo = cnnLayerAlgo();
    // extents: N=2 K=4 C=3 X=5 Y=6 R=3 S=2
    std::vector<int64_t> e = {2, 4, 3, 5, 6, 3, 2};
    EXPECT_EQ(algo.tileFootprint(0, e), 2 * 3 * (5 + 3 - 1) * (6 + 2 - 1));
    EXPECT_EQ(algo.tileFootprint(1, e), 4 * 3 * 3 * 2);
    EXPECT_EQ(algo.tileFootprint(2, e), 2 * 4 * 5 * 6);
}

TEST(Problem, Table1ShapesMatchPaper)
{
    auto cnn = table1Cnn();
    ASSERT_EQ(cnn.size(), 6u);
    // ResNet Conv_3: N=16 K=128 C=128 H=W=28 R=S=3 -> X=Y=26.
    EXPECT_EQ(cnn[0].name, "ResNet_Conv_3");
    EXPECT_EQ(cnn[0].bounds,
              (std::vector<int64_t>{16, 128, 128, 26, 26, 3, 3}));
    // VGG Conv_2: W=H=112, R=S=3 -> X=Y=110.
    EXPECT_EQ(cnn[3].bounds,
              (std::vector<int64_t>{16, 128, 64, 110, 110, 3, 3}));
    // AlexNet Conv_2: 27x27 with 5x5 filters -> 23x23.
    EXPECT_EQ(cnn[4].bounds,
              (std::vector<int64_t>{8, 256, 96, 23, 23, 5, 5}));

    auto mtt = table1Mttkrp();
    ASSERT_EQ(mtt.size(), 2u);
    EXPECT_EQ(mtt[0].bounds,
              (std::vector<int64_t>{128, 1024, 4096, 2048}));
    EXPECT_EQ(mtt[1].bounds,
              (std::vector<int64_t>{2048, 4096, 1024, 128}));

    EXPECT_EQ(table1All().size(), 8u);
}

TEST(Problem, MacsAndTensorWords)
{
    Problem p = mttkrpProblem("tiny", 2, 3, 4, 5);
    EXPECT_DOUBLE_EQ(p.totalMacs(), 2.0 * 3 * 4 * 5);
    EXPECT_EQ(p.tensorWords(0), 2 * 4 * 5); // A[i,k,l]
    EXPECT_EQ(p.tensorWords(1), 4 * 3);     // B[k,j]
    EXPECT_EQ(p.tensorWords(2), 5 * 3);     // C[l,j]
    EXPECT_EQ(p.tensorWords(3), 2 * 3);     // O[i,j]
}

TEST(Problem, PidFeaturesAreBounds)
{
    Problem p = cnnProblem("x", 1, 32, 16, 10, 10, 3, 3);
    auto pid = p.pidFeatures();
    ASSERT_EQ(pid.size(), 7u);
    EXPECT_DOUBLE_EQ(pid[1], 32.0);
    EXPECT_DOUBLE_EQ(pid[3], 8.0); // X = 10 - 3 + 1
}

TEST(Problem, RejectsBadBounds)
{
    EXPECT_THROW(makeProblem(cnnLayerAlgo(), "bad", {1, 2, 3}), FatalError);
    EXPECT_THROW(makeProblem(mttkrpAlgo(), "bad", {1, 2, 3, 0}),
                 FatalError);
}

TEST(Problem, RepresentativeSamplingStaysOnGrid)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        Problem p = sampleRepresentativeProblem(cnnLayerAlgo(), rng);
        for (size_t d = 0; d < p.rank(); ++d) {
            const auto &grid = cnnLayerAlgo().representativeValues[d];
            EXPECT_NE(std::find(grid.begin(), grid.end(), p.bounds[d]),
                      grid.end());
        }
    }
}

TEST(Reference, Conv1dMatchesManualLoop)
{
    Problem p = makeProblem(conv1dAlgo(), "c1d", {6, 3});
    Rng rng(5);
    auto tensors = makeTensors(p, rng);
    ASSERT_EQ(tensors[0].words(), 8); // W = X + R - 1
    ASSERT_EQ(tensors[1].words(), 3);
    ASSERT_EQ(tensors[2].words(), 6);

    auto expected = tensors;
    for (int64_t x = 0; x < 6; ++x)
        for (int64_t r = 0; r < 3; ++r)
            expected[2].data[size_t(x)] +=
                expected[0].data[size_t(x + r)]
                * expected[1].data[size_t(r)];

    runReference(p, tensors);
    for (size_t i = 0; i < tensors[2].data.size(); ++i)
        EXPECT_NEAR(tensors[2].data[i], expected[2].data[i], 1e-5);
}

TEST(Reference, MttkrpMatchesManualLoop)
{
    Problem p = mttkrpProblem("tiny", 3, 4, 2, 5);
    Rng rng(6);
    auto tensors = makeTensors(p, rng);
    auto expected = tensors;

    // O[i][j] += A[i][k][l] * B[k][j] * C[l][j]
    auto &A = expected[0];
    auto &B = expected[1];
    auto &C = expected[2];
    auto &O = expected[3];
    for (int64_t i = 0; i < 3; ++i)
        for (int64_t j = 0; j < 4; ++j)
            for (int64_t k = 0; k < 2; ++k)
                for (int64_t l = 0; l < 5; ++l)
                    O.data[size_t(i * 4 + j)] +=
                        A.data[size_t((i * 2 + k) * 5 + l)]
                        * B.data[size_t(k * 4 + j)]
                        * C.data[size_t(l * 4 + j)];

    runReference(p, tensors);
    for (size_t i = 0; i < tensors[3].data.size(); ++i)
        EXPECT_NEAR(tensors[3].data[i], expected[3].data[i], 1e-4);
}

TEST(Reference, CnnLayerMatchesManualLoop)
{
    Problem p = cnnProblem("tiny", 2, 3, 2, 5, 5, 2, 2);
    // bounds: N=2 K=3 C=2 X=4 Y=4 R=2 S=2
    Rng rng(7);
    auto tensors = makeTensors(p, rng);
    auto expected = tensors;

    const auto &I = expected[0];
    const auto &W = expected[1];
    auto &O = expected[2];
    auto iAt = [&](int64_t n, int64_t c, int64_t h, int64_t w) {
        return I.data[size_t(((n * 2 + c) * 5 + h) * 5 + w)];
    };
    auto wAt = [&](int64_t k, int64_t c, int64_t r, int64_t s) {
        return W.data[size_t(((k * 2 + c) * 2 + r) * 2 + s)];
    };
    for (int64_t n = 0; n < 2; ++n)
        for (int64_t k = 0; k < 3; ++k)
            for (int64_t x = 0; x < 4; ++x)
                for (int64_t y = 0; y < 4; ++y)
                    for (int64_t c = 0; c < 2; ++c)
                        for (int64_t r = 0; r < 2; ++r)
                            for (int64_t s = 0; s < 2; ++s)
                                O.data[size_t(((n * 3 + k) * 4 + x) * 4
                                              + y)] +=
                                    wAt(k, c, r, s)
                                    * iAt(n, c, x + r, y + s);

    runReference(p, tensors);
    for (size_t i = 0; i < tensors[2].data.size(); ++i)
        EXPECT_NEAR(tensors[2].data[i], expected[2].data[i], 1e-4);
}

TEST(Reference, TensorPointAppliesProjections)
{
    const auto &algo = cnnLayerAlgo();
    std::vector<int64_t> point = {1, 2, 0, 3, 4, 1, 1};
    auto input = tensorPoint(algo, 0, point);
    EXPECT_EQ(input, (std::vector<int64_t>{1, 0, 4, 5})); // n, c, x+r, y+s
    auto output = tensorPoint(algo, 2, point);
    EXPECT_EQ(output, (std::vector<int64_t>{1, 2, 3, 4}));
}

} // namespace
} // namespace mm
