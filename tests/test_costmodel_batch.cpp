/**
 * @file
 * Batched cost-model evaluation tests: bitwise equivalence of
 * evaluateBatch / edpBatch / normalizedEdpBatch against the scalar
 * path over large random-mapping batches on both target algorithms,
 * at several lane counts, through the pointer-indirected overloads,
 * and across degenerate batch shapes. Also covers the out-parameter
 * scalar overloads and dataset label-block invariance.
 */
#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <map>

#include "core/dataset.hpp"
#include "costmodel/reference_eval.hpp"

namespace mm {
namespace {

/** Bit-pattern equality: NaN-safe, distinguishes -0.0 from +0.0. */
bool
sameBits(double a, double b)
{
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/** Assert two CostResults are bitwise identical field by field. */
void
expectBitwise(const CostResult &a, const CostResult &b, size_t idx)
{
    ASSERT_EQ(a.access.size(), b.access.size()) << "mapping " << idx;
    ASSERT_EQ(a.energyPj.size(), b.energyPj.size()) << "mapping " << idx;
    for (size_t t = 0; t < a.access.size(); ++t) {
        for (size_t lvl = 0; lvl < kNumMemLevels; ++lvl) {
            EXPECT_TRUE(sameBits(a.access[t][lvl].reads,
                                 b.access[t][lvl].reads))
                << "mapping " << idx << " tensor " << t << " level " << lvl;
            EXPECT_TRUE(sameBits(a.access[t][lvl].writes,
                                 b.access[t][lvl].writes))
                << "mapping " << idx << " tensor " << t << " level " << lvl;
            EXPECT_TRUE(sameBits(a.energyPj[t][lvl], b.energyPj[t][lvl]))
                << "mapping " << idx << " tensor " << t << " level " << lvl;
        }
    }
    EXPECT_TRUE(sameBits(a.nocWords, b.nocWords)) << "mapping " << idx;
    EXPECT_TRUE(sameBits(a.paddedMacs, b.paddedMacs)) << "mapping " << idx;
    EXPECT_TRUE(sameBits(a.actualMacs, b.actualMacs)) << "mapping " << idx;
    EXPECT_TRUE(sameBits(a.macEnergyPj, b.macEnergyPj)) << "mapping " << idx;
    EXPECT_TRUE(sameBits(a.nocEnergyPj, b.nocEnergyPj)) << "mapping " << idx;
    EXPECT_TRUE(sameBits(a.totalEnergyPj, b.totalEnergyPj))
        << "mapping " << idx;
    EXPECT_TRUE(sameBits(a.computeCycles, b.computeCycles))
        << "mapping " << idx;
    for (size_t lvl = 0; lvl < kNumMemLevels; ++lvl)
        EXPECT_TRUE(sameBits(a.bandwidthCycles[lvl], b.bandwidthCycles[lvl]))
            << "mapping " << idx << " level " << lvl;
    EXPECT_TRUE(sameBits(a.cycles, b.cycles)) << "mapping " << idx;
    EXPECT_TRUE(sameBits(a.utilization, b.utilization)) << "mapping " << idx;
}

/** One algorithm's fixture: a map space and a pool of random mappings. */
struct Shape
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem problem;
    MapSpace space;
    CostModel model;
    std::vector<Mapping> mappings;

    Shape(Problem p, size_t count, uint64_t seed)
        : problem(std::move(p)), space(arch, problem), model(space)
    {
        Rng rng(seed);
        mappings.reserve(count);
        for (size_t i = 0; i < count; ++i)
            mappings.push_back(space.randomValid(rng));
    }
};

/**
 * Deliberately not a multiple of the internal evaluation chunk so the
 * final partial chunk is always exercised; 2 * 5123 > 10k mappings.
 */
constexpr size_t kBatch = 5123;

Shape &
cnnShape()
{
    static Shape s(cnnProblem("batch-cnn", 4, 64, 64, 12, 12, 3, 3),
                   kBatch, 0xC0FFEE);
    return s;
}

Shape &
mttkrpShape()
{
    static Shape s(mttkrpProblem("batch-mttkrp", 48, 36, 24, 60), kBatch,
                   0xBEEF);
    return s;
}

/**
 * Oracle: the preserved pre-pipeline implementation, computed
 * independently of the descriptor path (reference_eval.hpp). Using it
 * instead of today's evaluate() keeps the comparison differential — a
 * bug shared by the scalar and batch pipeline paths cannot hide.
 */
const std::vector<CostResult> &
scalarResults(Shape &s)
{
    static std::map<const Shape *, std::vector<CostResult>> cache;
    auto &ref = cache[&s];
    if (ref.empty()) {
        ref.reserve(s.mappings.size());
        for (const Mapping &m : s.mappings)
            ref.push_back(referenceEvaluate(s.space, m));
    }
    return ref;
}

TEST(CostModelBatch, ScalarEvaluateMatchesReferenceBitwise)
{
    for (Shape *s : {&cnnShape(), &mttkrpShape()}) {
        const auto &ref = scalarResults(*s);
        for (size_t i = 0; i < s->mappings.size(); ++i)
            expectBitwise(ref[i], s->model.evaluate(s->mappings[i]), i);
    }
}

void
checkBatchAgainstScalar(Shape &s, ParallelContext *par)
{
    const auto &ref = scalarResults(s);
    std::vector<CostResult> batch(s.mappings.size());
    s.model.evaluateBatch(std::span<const Mapping>(s.mappings),
                          std::span<CostResult>(batch), par);
    for (size_t i = 0; i < ref.size(); ++i)
        expectBitwise(ref[i], batch[i], i);

    std::vector<double> edps(s.mappings.size());
    s.model.edpBatch(std::span<const Mapping>(s.mappings),
                     std::span<double>(edps), par);
    std::vector<double> norms(s.mappings.size());
    s.model.normalizedEdpBatch(std::span<const Mapping>(s.mappings),
                               std::span<double>(norms), par);
    for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_TRUE(sameBits(edps[i], ref[i].edp())) << "mapping " << i;
        EXPECT_TRUE(sameBits(norms[i], s.model.normalizedEdp(s.mappings[i])))
            << "mapping " << i;
    }
}

TEST(CostModelBatch, BitwiseEqualsScalarSerial)
{
    checkBatchAgainstScalar(cnnShape(), nullptr);
    checkBatchAgainstScalar(mttkrpShape(), nullptr);
}

TEST(CostModelBatch, BitwiseEqualsScalarOneLane)
{
    ParallelContext par(1);
    checkBatchAgainstScalar(cnnShape(), &par);
    checkBatchAgainstScalar(mttkrpShape(), &par);
}

TEST(CostModelBatch, BitwiseEqualsScalarFourLanes)
{
    ParallelContext par(4);
    checkBatchAgainstScalar(cnnShape(), &par);
    checkBatchAgainstScalar(mttkrpShape(), &par);
}

TEST(CostModelBatch, BitwiseEqualsScalarEightLanes)
{
    ParallelContext par(8);
    checkBatchAgainstScalar(cnnShape(), &par);
    checkBatchAgainstScalar(mttkrpShape(), &par);
}

TEST(CostModelBatch, PointerOverloadsScatterGather)
{
    Shape &s = cnnShape();
    const auto &ref = scalarResults(s);

    // Gather in reverse order through pointers; results land where the
    // result pointers point, not in input order.
    const size_t n = 257;
    std::vector<const Mapping *> maps(n);
    std::vector<CostResult> store(n);
    std::vector<CostResult *> res(n);
    for (size_t i = 0; i < n; ++i) {
        maps[i] = &s.mappings[n - 1 - i];
        res[i] = &store[i];
    }
    ParallelContext par(4);
    s.model.evaluateBatch(std::span<const Mapping *const>(maps),
                          std::span<CostResult *const>(res), &par);
    for (size_t i = 0; i < n; ++i)
        expectBitwise(ref[n - 1 - i], store[i], i);

    std::vector<double> edps(n), norms(n);
    s.model.edpBatch(std::span<const Mapping *const>(maps),
                     std::span<double>(edps), &par);
    s.model.normalizedEdpBatch(std::span<const Mapping *const>(maps),
                               std::span<double>(norms), &par);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(sameBits(edps[i], ref[n - 1 - i].edp()));
        EXPECT_TRUE(
            sameBits(norms[i], ref[n - 1 - i].edp()
                                   / s.model.lowerBound().edp()));
    }
}

TEST(CostModelBatch, DegenerateBatchShapes)
{
    Shape &s = mttkrpShape();
    const auto &ref = scalarResults(s);
    ParallelContext par(4);
    for (ParallelContext *ctx : {static_cast<ParallelContext *>(nullptr),
                                 &par}) {
        // Empty batch: must be a no-op at any lane count.
        s.model.evaluateBatch(std::span<const Mapping>(),
                              std::span<CostResult>(), ctx);
        s.model.edpBatch(std::span<const Mapping>(), std::span<double>(),
                         ctx);

        // Size 1, one short of a chunk, and just past two chunks.
        for (size_t n : {size_t(1), size_t(15), size_t(17), size_t(33)}) {
            std::vector<CostResult> out(n);
            auto head = std::span<const Mapping>(s.mappings).first(n);
            s.model.evaluateBatch(head, std::span<CostResult>(out), ctx);
            for (size_t i = 0; i < n; ++i)
                expectBitwise(ref[i], out[i], i);
        }
    }
}

TEST(CostModelBatch, OutParamEvaluateReusesStorage)
{
    Shape &s = cnnShape();
    CostResult reused;
    for (size_t i = 0; i < 64; ++i) {
        s.model.evaluate(s.mappings[i], reused);
        expectBitwise(scalarResults(s)[i], reused, i);
    }
}

TEST(CostModelBatch, MetaStatsOutParamMatchesValueForm)
{
    for (Shape *s : {&cnnShape(), &mttkrpShape()}) {
        CostResult res = s->model.evaluate(s->mappings[0]);
        std::vector<double> out(99, -1.0); // wrong size: must be resized
        res.metaStats(out);
        std::vector<double> expected = res.metaStats();
        ASSERT_EQ(out.size(), expected.size());
        for (size_t i = 0; i < out.size(); ++i)
            EXPECT_TRUE(sameBits(out[i], expected[i])) << "stat " << i;
    }
}

/** Dataset bytes must not depend on the labeling block size. */
TEST(CostModelBatch, DatasetLabelBlockInvariance)
{
    DatasetConfig cfg;
    cfg.samples = 240;
    cfg.problemCount = 3;
    cfg.eliteFraction = 0.5; // exercise the batched best-of-k path
    cfg.eliteCandidates = 4;
    cfg.seed = 11;

    auto arch = AcceleratorSpec::tinyDefault();
    cfg.labelBlock = 4096;
    SurrogateDataset big = generateDataset(arch, cnnLayerAlgo(), cfg);
    cfg.labelBlock = 1;
    SurrogateDataset one = generateDataset(arch, cnnLayerAlgo(), cfg);
    cfg.labelBlock = 7; // non-divisor of the sample count
    SurrogateDataset odd = generateDataset(arch, cnnLayerAlgo(), cfg);

    auto sameMatrix = [](const Matrix &a, const Matrix &b) {
        ASSERT_EQ(a.rows(), b.rows());
        ASSERT_EQ(a.cols(), b.cols());
        EXPECT_EQ(std::memcmp(a.data(), b.data(),
                              a.size() * sizeof(float)),
                  0);
    };
    for (const SurrogateDataset *other : {&one, &odd}) {
        sameMatrix(big.xTrain, other->xTrain);
        sameMatrix(big.yTrain, other->yTrain);
        sameMatrix(big.xTest, other->xTest);
        sameMatrix(big.yTest, other->yTest);
    }
}

} // namespace
} // namespace mm
