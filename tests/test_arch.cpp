/**
 * @file
 * Accelerator-description tests: the paper's configuration values and
 * basic derived quantities.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "arch/accelerator.hpp"

namespace mm {
namespace {

TEST(Accelerator, PaperDefaultMatchesSection512)
{
    AcceleratorSpec a = AcceleratorSpec::paperDefault();
    EXPECT_EQ(a.numPes, 256);
    EXPECT_DOUBLE_EQ(a.frequencyGhz, 1.0);
    ASSERT_EQ(a.levels.size(), size_t(kNumMemLevels));

    // 64 KB private L1, 512 KB shared L2 (Section 5.1.2).
    EXPECT_DOUBLE_EQ(a.level(MemLevel::L1).capacityBytes, 64.0 * 1024.0);
    EXPECT_TRUE(a.level(MemLevel::L1).perPe);
    EXPECT_DOUBLE_EQ(a.level(MemLevel::L2).capacityBytes, 512.0 * 1024.0);
    EXPECT_FALSE(a.level(MemLevel::L2).perPe);
    EXPECT_TRUE(std::isinf(a.level(MemLevel::DRAM).capacityBytes));

    EXPECT_DOUBLE_EQ(a.peakMacsPerCycle(), 256.0);
}

TEST(Accelerator, EnergyHierarchyIsMonotone)
{
    // Accessing farther levels must cost more per word, or the reuse
    // analysis would reward nonsense mappings.
    for (auto a :
         {AcceleratorSpec::paperDefault(), AcceleratorSpec::tinyDefault()}) {
        EXPECT_LT(a.level(MemLevel::L1).energyPerWordPj,
                  a.level(MemLevel::L2).energyPerWordPj);
        EXPECT_LT(a.level(MemLevel::L2).energyPerWordPj,
                  a.level(MemLevel::DRAM).energyPerWordPj);
        EXPECT_LT(a.macEnergyPj, a.level(MemLevel::L1).energyPerWordPj);
    }
}

TEST(Accelerator, BanksDivideCapacityIntoWholeWords)
{
    AcceleratorSpec a = AcceleratorSpec::paperDefault();
    for (int lvl = 0; lvl < kNumOnChipLevels; ++lvl) {
        const MemLevelSpec &spec = a.levels[size_t(lvl)];
        EXPECT_GT(spec.banks, 0);
        double bankBytes = spec.capacityBytes / spec.banks;
        EXPECT_GE(bankBytes, a.wordBytes);
    }
}

TEST(Accelerator, TinyVariantIsSmaller)
{
    AcceleratorSpec paper = AcceleratorSpec::paperDefault();
    AcceleratorSpec tiny = AcceleratorSpec::tinyDefault();
    EXPECT_LT(tiny.numPes, paper.numPes);
    EXPECT_LT(tiny.level(MemLevel::L1).capacityBytes,
              paper.level(MemLevel::L1).capacityBytes);
    EXPECT_LT(tiny.level(MemLevel::L2).capacityBytes,
              paper.level(MemLevel::L2).capacityBytes);
}

} // namespace
} // namespace mm
