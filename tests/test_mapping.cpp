/**
 * @file
 * Map-space tests: sampling validity, projection repair, the 62/40-float
 * codec, move operators, loop-nest coverage (functional correctness of
 * mappings) and size estimation.
 */
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mapping/codec.hpp"
#include "mapping/map_space.hpp"
#include "mapping/moves.hpp"
#include "mapping/nest.hpp"
#include "mapping/printer.hpp"

namespace mm {
namespace {

struct SpaceFixture
{
    AcceleratorSpec arch;
    Problem problem;
    MapSpace space;

    SpaceFixture(AcceleratorSpec arch_, Problem problem_)
        : arch(std::move(arch_)), problem(std::move(problem_)),
          space(arch, problem)
    {}
};

SpaceFixture
paperCnnSpace()
{
    return {AcceleratorSpec::paperDefault(),
            cnnProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3)};
}

SpaceFixture
paperMttkrpSpace()
{
    return {AcceleratorSpec::paperDefault(),
            mttkrpProblem("MTTKRP_0", 128, 1024, 4096, 2048)};
}

SpaceFixture
tinyConvSpace()
{
    return {AcceleratorSpec::tinyDefault(),
            makeProblem(conv1dAlgo(), "conv1d_tiny", {12, 3})};
}

TEST(MapSpace, RandomValidIsAlwaysMember)
{
    auto fx = paperCnnSpace();
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        Mapping m = fx.space.randomValid(rng);
        EXPECT_TRUE(fx.space.isMember(m)) << fx.space.validityError(m);
        EXPECT_LE(m.usedPes(), fx.arch.numPes);
        for (size_t d = 0; d < fx.space.rank(); ++d) {
            EXPECT_GE(m.dimProduct(d), fx.problem.bounds[d]);
            EXPECT_LE(m.dimProduct(d), 2 * fx.problem.bounds[d]);
        }
    }
}

class MapSpaceSweep : public ::testing::TestWithParam<int>
{};

TEST_P(MapSpaceSweep, AllTable1ProblemsSampleValid)
{
    auto problems = table1All();
    auto arch = AcceleratorSpec::paperDefault();
    const Problem &p = problems[size_t(GetParam())];
    MapSpace space(arch, p);
    Rng rng(uint64_t(GetParam()) + 17);
    for (int i = 0; i < 50; ++i) {
        Mapping m = space.randomValid(rng);
        ASSERT_TRUE(space.isMember(m))
            << p.name << ": " << space.validityError(m);
    }
}

INSTANTIATE_TEST_SUITE_P(Table1, MapSpaceSweep,
                         ::testing::Range(0, 8));

TEST(MapSpace, ProjectIsIdentityOnValidMappings)
{
    auto fx = paperMttkrpSpace();
    Rng rng(2);
    for (int i = 0; i < 100; ++i) {
        Mapping m = fx.space.randomValid(rng);
        EXPECT_EQ(fx.space.project(m), m);
    }
}

TEST(MapSpace, ProjectRepairsCorruptedMappings)
{
    auto fx = paperCnnSpace();
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        Mapping m = fx.space.randomValid(rng);
        // Corrupt every attribute class.
        m.tiling[size_t(MemLevel::L1)][0] = 10000;
        m.spatial[1] = 999;
        m.loopOrder[size_t(MemLevel::L2)] = {0, 0, 0, 0, 0, 0, 0};
        m.bufferAlloc[0] = {50, 0, -2};
        Mapping fixed = fx.space.project(m);
        EXPECT_TRUE(fx.space.isMember(fixed))
            << fx.space.validityError(fixed);
    }
}

TEST(MapSpace, ProjectIsIdempotent)
{
    auto fx = paperCnnSpace();
    Rng rng(4);
    for (int i = 0; i < 50; ++i) {
        Mapping m = fx.space.randomValid(rng);
        m.tiling[size_t(MemLevel::DRAM)][2] = 77;
        m.spatial[0] = 40;
        Mapping once = fx.space.project(m);
        Mapping twice = fx.space.project(once);
        EXPECT_EQ(once, twice);
    }
}

TEST(MapSpace, CapacityConstraintIsEnforced)
{
    auto fx = paperCnnSpace();
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        Mapping m = fx.space.randomValid(rng);
        auto e1 = m.extentsL1();
        auto e2 = m.extentsL2();
        for (size_t t = 0; t < fx.space.tensorCount(); ++t) {
            EXPECT_LE(fx.space.tensorTileBytes(t, e1),
                      fx.space.allocBytes(0, t, m));
            EXPECT_LE(fx.space.tensorTileBytes(t, e2),
                      fx.space.allocBytes(1, t, m));
        }
    }
}

TEST(MapSpace, RejectsUndersizedAccelerator)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    arch.levels[0].banks = 2; // fewer banks than CNN's three tensors
    Problem p = cnnProblem("x", 1, 32, 16, 10, 10, 3, 3);
    EXPECT_THROW(MapSpace(arch, p), FatalError);
}

TEST(MapSpace, Log10SizeIsLargeForPaperProblems)
{
    auto cnn = paperCnnSpace();
    auto mtt = paperMttkrpSpace();
    // Section 5.1.3: ~1e25 for ResNet Conv_4, ~1e19 for MTTKRP_0. Our
    // estimate counts the same attribute classes; just check order of
    // magnitude regions and the CNN > MTTKRP ordering.
    EXPECT_GT(cnn.space.log10Size(), 18.0);
    EXPECT_LT(cnn.space.log10Size(), 40.0);
    EXPECT_GT(mtt.space.log10Size(), 12.0);
    EXPECT_GT(cnn.space.log10Size(), mtt.space.log10Size());
}

TEST(Codec, FeatureCountsMatchPaper)
{
    auto cnn = paperCnnSpace();
    auto mtt = paperMttkrpSpace();
    EXPECT_EQ(MappingCodec(cnn.space).featureCount(), 62u);
    EXPECT_EQ(MappingCodec(mtt.space).featureCount(), 40u);
}

TEST(Codec, EncodeLayoutSegments)
{
    auto fx = paperCnnSpace();
    MappingCodec codec(fx.space);
    EXPECT_EQ(codec.pidCount(), 7u);
    EXPECT_EQ(codec.tilingCount(), 21u);
    EXPECT_EQ(codec.spatialCount(), 7u);
    EXPECT_EQ(codec.orderCount(), 21u);
    EXPECT_EQ(codec.allocCount(), 6u);
    EXPECT_EQ(codec.allocOffset() + codec.allocCount(),
              codec.featureCount());

    Rng rng(6);
    Mapping m = fx.space.randomValid(rng);
    auto f = codec.encode(m);
    ASSERT_EQ(f.size(), 62u);
    // pid segment holds the problem bounds.
    for (size_t d = 0; d < 7; ++d)
        EXPECT_DOUBLE_EQ(f[d], double(fx.problem.bounds[d]));
    // tiling segment starts with the L1 factors.
    for (size_t d = 0; d < 7; ++d)
        EXPECT_DOUBLE_EQ(f[codec.tilingOffset() + d],
                         double(m.tiling[size_t(MemLevel::L1)][d]));
}

TEST(Codec, DecodeInvertsEncode)
{
    for (auto fx : {paperCnnSpace(), paperMttkrpSpace()}) {
        MappingCodec codec(fx.space);
        Rng rng(7);
        for (int i = 0; i < 100; ++i) {
            Mapping m = fx.space.randomValid(rng);
            Mapping back = codec.decode(codec.encode(m));
            EXPECT_EQ(back, m);
        }
    }
}

TEST(Codec, DecodeHandlesArbitraryReals)
{
    auto fx = paperCnnSpace();
    MappingCodec codec(fx.space);
    Rng rng(8);
    for (int i = 0; i < 100; ++i) {
        std::vector<double> f(codec.featureCount());
        for (auto &v : f)
            v = rng.uniformReal(-50.0, 300.0);
        Mapping m = codec.decode(f);
        EXPECT_TRUE(fx.space.isMember(m)) << fx.space.validityError(m);
    }
}

TEST(Moves, NeighborsAreValidAndUsuallyDifferent)
{
    auto fx = paperCnnSpace();
    Rng rng(9);
    Mapping m = fx.space.randomValid(rng);
    int changed = 0;
    for (int i = 0; i < 100; ++i) {
        Mapping n = randomNeighbor(fx.space, m, rng);
        ASSERT_TRUE(fx.space.isMember(n)) << fx.space.validityError(n);
        changed += (n == m) ? 0 : 1;
    }
    EXPECT_GT(changed, 50);
}

TEST(Moves, CrossoverAndMutateStayValid)
{
    auto fx = paperMttkrpSpace();
    Rng rng(10);
    Mapping a = fx.space.randomValid(rng);
    Mapping b = fx.space.randomValid(rng);
    for (int i = 0; i < 50; ++i) {
        Mapping child = crossover(fx.space, a, b, rng);
        ASSERT_TRUE(fx.space.isMember(child));
        Mapping mutant = mutate(fx.space, child, 0.2, rng);
        ASSERT_TRUE(fx.space.isMember(mutant));
    }
}

TEST(Moves, ZeroProbabilityMutationIsIdentity)
{
    auto fx = paperCnnSpace();
    Rng rng(11);
    Mapping m = fx.space.randomValid(rng);
    EXPECT_EQ(mutate(fx.space, m, 0.0, rng), m);
}

TEST(Nest, CoversEveryInBoundsPointExactlyOnce)
{
    auto fx = tinyConvSpace();
    Rng rng(12);
    for (int trial = 0; trial < 20; ++trial) {
        Mapping m = fx.space.randomValid(rng);
        std::map<std::vector<int64_t>, int> hits;
        int64_t total = 0;
        forEachNestPoint(fx.space, m, [&](std::span<const int64_t> pt) {
            ++total;
            std::vector<int64_t> key(pt.begin(), pt.end());
            ++hits[key];
        });
        // Padded space size matches the factor products.
        int64_t padded = 1;
        for (size_t d = 0; d < fx.space.rank(); ++d)
            padded *= m.dimProduct(d);
        EXPECT_EQ(total, padded);

        // Every padded point appears exactly once...
        for (const auto &[pt, n] : hits)
            EXPECT_EQ(n, 1);
        // ...and every in-bounds point is covered.
        int64_t inBounds = 0;
        for (const auto &[pt, n] : hits) {
            bool ok = true;
            for (size_t d = 0; d < pt.size(); ++d)
                ok &= pt[d] < fx.problem.bounds[d];
            inBounds += ok ? 1 : 0;
        }
        EXPECT_EQ(inBounds, fx.problem.bounds[0] * fx.problem.bounds[1]);
    }
}

TEST(Nest, CnnTinyCoverage)
{
    AcceleratorSpec arch = AcceleratorSpec::tinyDefault();
    Problem p = cnnProblem("tiny", 2, 3, 2, 5, 5, 2, 2);
    MapSpace space(arch, p);
    Rng rng(13);
    for (int trial = 0; trial < 5; ++trial) {
        Mapping m = space.randomValid(rng);
        std::set<std::vector<int64_t>> seen;
        int64_t total = 0;
        forEachNestPoint(space, m, [&](std::span<const int64_t> pt) {
            ++total;
            seen.emplace(pt.begin(), pt.end());
        });
        EXPECT_EQ(int64_t(seen.size()), total); // no duplicates
        int64_t inBounds = 0;
        for (const auto &pt : seen) {
            bool ok = true;
            for (size_t d = 0; d < pt.size(); ++d)
                ok &= pt[d] < p.bounds[d];
            inBounds += ok ? 1 : 0;
        }
        EXPECT_DOUBLE_EQ(double(inBounds), p.totalMacs());
    }
}

TEST(Printer, RendersLoopNestAndBuffers)
{
    auto fx = paperCnnSpace();
    Rng rng(14);
    Mapping m = fx.space.randomValid(rng);
    std::string full = renderMapping(fx.space, m);
    EXPECT_NE(full.find("DRAM (temporal)"), std::string::npos);
    EXPECT_NE(full.find("mac"), std::string::npos);
    EXPECT_NE(full.find("buffers at L1"), std::string::npos);
    std::string compact = renderMappingCompact(fx.space, m);
    EXPECT_NE(compact.find("tiles[L1|sp|L2|DRAM]"), std::string::npos);
}

} // namespace
} // namespace mm
