/**
 * @file
 * Deeper cost-model property tests: multicast accounting, bandwidth-
 * bound delay, energy-table monotonicity, spatial scaling, and an
 * MTTKRP accounting case.
 */
#include <gtest/gtest.h>

#include "costmodel/cost_model.hpp"

namespace mm {
namespace {

/** A fully-specified MTTKRP mapping for accounting checks. */
struct MttkrpCase
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem problem = mttkrpProblem("acc", 8, 8, 4, 4);
    MapSpace space{arch, problem};
    Mapping m;

    MttkrpCase()
    {
        enum { I, J, K, L };
        for (auto &t : m.tiling)
            t.assign(4, 1);
        m.spatial.assign(4, 1);
        // I: L1=2, spatial=2, L2=2, DRAM=1; J: L1=8; K: L2=4; L: DRAM=4.
        m.tiling[size_t(MemLevel::L1)][I] = 2;
        m.spatial[I] = 2;
        m.tiling[size_t(MemLevel::L2)][I] = 2;
        m.tiling[size_t(MemLevel::L1)][J] = 8;
        m.tiling[size_t(MemLevel::L2)][K] = 4;
        m.tiling[size_t(MemLevel::DRAM)][L] = 4;
        for (auto &order : m.loopOrder)
            order = {I, J, K, L};
        m.bufferAlloc[0] = {4, 4, 4, 4};
        m.bufferAlloc[1] = {8, 8, 8, 8};
        EXPECT_TRUE(space.isMember(m)) << space.validityError(m);
    }
};

TEST(CostModelProps, MttkrpAccounting)
{
    MttkrpCase c;
    CostModel model(c.space);
    CostResult res = model.evaluate(c.m);
    // Padded space = 8*8*4*4 = 1024 MACs over 2 PEs (spatial I = 2).
    EXPECT_DOUBLE_EQ(res.paddedMacs, 1024.0);
    EXPECT_DOUBLE_EQ(res.actualMacs, 1024.0);
    EXPECT_DOUBLE_EQ(res.computeCycles, 512.0);

    // Tensor B[k,j] is irrelevant to the spatial dim I: the L2 read
    // port serves the multicast union (one per-PE tile), while per-PE
    // L1 fills are duplicated across both PEs.
    const size_t B = 1;
    const auto &acc = res.access[B];
    double l2Reads = acc[size_t(MemLevel::L2)].reads;
    double l1Fills = acc[size_t(MemLevel::L1)].writes;
    EXPECT_DOUBLE_EQ(l1Fills, 2.0 * l2Reads);

    // Output O[i,j]: the reduction loop K sits above O's relevant
    // loops inside the combined nest, so partial sums are re-read at
    // L2; the DRAM-level loop over L is trailing-irrelevant for O, so
    // accumulation completes on-chip and DRAM sees no read-modify-write.
    const size_t O = 3;
    EXPECT_GT(res.access[O][size_t(MemLevel::L2)].reads, 0.0);
    EXPECT_DOUBLE_EQ(res.access[O][size_t(MemLevel::DRAM)].reads, 0.0);
    // Every output word still reaches DRAM at least once.
    EXPECT_GE(res.access[O][size_t(MemLevel::DRAM)].writes,
              double(c.problem.tensorWords(O)));
}

TEST(CostModelProps, MulticastCountsUnionOnce)
{
    // Spatially partitioning a dimension irrelevant to a tensor leaves
    // the L2 serve count unchanged (multicast) while total L1 fills
    // scale with the PE count.
    MttkrpCase base;
    CostModel model(base.space);
    CostResult r2 = model.evaluate(base.m);

    Mapping wider = base.m;
    enum { I, J, K, L };
    wider.spatial[I] = 4;                            // 2 -> 4 PEs
    wider.tiling[size_t(MemLevel::L2)][I] = 1;
    ASSERT_TRUE(base.space.isMember(wider))
        << base.space.validityError(wider);
    CostResult r4 = model.evaluate(wider);

    const size_t B = 1; // irrelevant to I
    EXPECT_DOUBLE_EQ(
        r4.access[B][size_t(MemLevel::L1)].writes
            / r4.access[B][size_t(MemLevel::L2)].reads,
        4.0);
    EXPECT_DOUBLE_EQ(
        r2.access[B][size_t(MemLevel::L1)].writes
            / r2.access[B][size_t(MemLevel::L2)].reads,
        2.0);
}

TEST(CostModelProps, BandwidthBoundDelay)
{
    // Starve DRAM bandwidth: delay must become bandwidth-bound and
    // exceed the compute bound.
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    arch.levels[size_t(MemLevel::DRAM)].bandwidthWordsPerCycle = 0.01;
    Problem p = cnnProblem("bw", 4, 64, 64, 12, 12, 3, 3);
    MapSpace space(arch, p);
    CostModel model(space);
    Rng rng(5);
    Mapping m = space.randomValid(rng);
    CostResult res = model.evaluate(m);
    EXPECT_GT(res.bandwidthCycles[size_t(MemLevel::DRAM)],
              res.computeCycles);
    EXPECT_DOUBLE_EQ(res.cycles,
                     res.bandwidthCycles[size_t(MemLevel::DRAM)]);
}

TEST(CostModelProps, EnergyTableMonotonicity)
{
    // Doubling a level's per-access energy can only increase total
    // energy, and leaves access counts untouched.
    AcceleratorSpec cheap = AcceleratorSpec::paperDefault();
    AcceleratorSpec dear = cheap;
    dear.levels[size_t(MemLevel::DRAM)].energyPerWordPj *= 2.0;

    Problem p = mttkrpProblem("e", 64, 128, 64, 32);
    MapSpace cheapSpace(cheap, p), dearSpace(dear, p);
    CostModel cheapModel(cheapSpace), dearModel(dearSpace);
    Rng rng(7);
    for (int i = 0; i < 20; ++i) {
        Mapping m = cheapSpace.randomValid(rng);
        ASSERT_TRUE(dearSpace.isMember(m));
        CostResult a = cheapModel.evaluate(m);
        CostResult b = dearModel.evaluate(m);
        EXPECT_GT(b.totalEnergyPj, a.totalEnergyPj);
        for (size_t t = 0; t < 4; ++t)
            for (int lvl = 0; lvl < kNumMemLevels; ++lvl) {
                EXPECT_DOUBLE_EQ(a.access[t][size_t(lvl)].reads,
                                 b.access[t][size_t(lvl)].reads);
                EXPECT_DOUBLE_EQ(a.access[t][size_t(lvl)].writes,
                                 b.access[t][size_t(lvl)].writes);
            }
    }
}

TEST(CostModelProps, EnergyIdentityAcrossComponents)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem p = cnnProblem("id", 8, 96, 96, 14, 14, 3, 3);
    MapSpace space(arch, p);
    CostModel model(space);
    Rng rng(9);
    for (int i = 0; i < 25; ++i) {
        CostResult res = model.evaluate(space.randomValid(rng));
        double sum = res.macEnergyPj + res.nocEnergyPj;
        for (size_t t = 0; t < space.tensorCount(); ++t)
            for (int lvl = 0; lvl < kNumMemLevels; ++lvl) {
                sum += res.energyPj[t][size_t(lvl)];
                // Per-component energy equals accesses x table entry.
                EXPECT_NEAR(res.energyPj[t][size_t(lvl)],
                            res.access[t][size_t(lvl)].total()
                                * arch.levels[size_t(lvl)].energyPerWordPj,
                            1e-6 * res.energyPj[t][size_t(lvl)] + 1e-9);
            }
        EXPECT_NEAR(sum, res.totalEnergyPj, 1e-6 * sum);
    }
}

TEST(CostModelProps, MetaStatsMatchEvaluateFields)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem p = mttkrpProblem("ms", 128, 128, 64, 64);
    MapSpace space(arch, p);
    CostModel model(space);
    Rng rng(11);
    CostResult res = model.evaluate(space.randomValid(rng));
    auto stats = res.metaStats();
    ASSERT_EQ(stats.size(), 15u);
    EXPECT_DOUBLE_EQ(stats[12], res.totalEnergyPj);
    EXPECT_DOUBLE_EQ(stats[13], res.utilization);
    EXPECT_DOUBLE_EQ(stats[14], res.cycles);
    EXPECT_DOUBLE_EQ(stats[0], res.energyPj[0][0]);
}

TEST(CostModelProps, StationarityReducesRegisterTraffic)
{
    // With J innermost at L1, tensor A[i,k,l] (irrelevant to J) enjoys
    // operand-latch stationarity: its L1 reads shrink by the J trip.
    MttkrpCase c;
    enum { I, J, K, L };
    Mapping jInner = c.m;
    jInner.loopOrder[size_t(MemLevel::L1)] = {I, K, L, J};
    Mapping jOuter = c.m;
    jOuter.loopOrder[size_t(MemLevel::L1)] = {J, I, K, L};
    CostModel model(c.space);
    double readsInner =
        model.evaluate(jInner).access[0][size_t(MemLevel::L1)].reads;
    double readsOuter =
        model.evaluate(jOuter).access[0][size_t(MemLevel::L1)].reads;
    EXPECT_DOUBLE_EQ(readsOuter / readsInner, 8.0); // J trip at L1
}

} // namespace
} // namespace mm
