/**
 * @file
 * Cost-model tests: an exact hand-computed case, conservation and
 * monotonicity invariants over random mappings, loop-order reuse
 * effects, and the algorithmic lower bound.
 */
#include <gtest/gtest.h>

#include "costmodel/cost_model.hpp"
#include "mapping/moves.hpp"

namespace mm {
namespace {

/** The hand-analyzed 1D-Conv case from the model documentation. */
struct HandCase
{
    AcceleratorSpec arch = AcceleratorSpec::tinyDefault();
    Problem problem = makeProblem(conv1dAlgo(), "hand", {4, 2});
    MapSpace space{arch, problem};
    Mapping m;

    HandCase()
    {
        // X: L1=2, sp=1, L2=2, DRAM=1 (product 4); R: L1=2 (product 2).
        m.tiling[size_t(MemLevel::L1)] = {2, 2};
        m.spatial = {1, 1};
        m.tiling[size_t(MemLevel::L2)] = {2, 1};
        m.tiling[size_t(MemLevel::DRAM)] = {1, 1};
        for (auto &order : m.loopOrder)
            order = {0, 1}; // X outer, R inner everywhere
        m.bufferAlloc[0] = {2, 2, 2};
        m.bufferAlloc[1] = {4, 4, 4};
        EXPECT_TRUE(space.isMember(m)) << space.validityError(m);
    }
};

TEST(CostModel, HandComputedAccessCounts)
{
    HandCase h;
    CostModel model(h.space);
    CostResult res = model.evaluate(h.m);

    // Footprints: I: F1=3, Fsp=3, F2=5, Ffull=5; F: 2,2,2,2; O: 2,2,4,4.
    // Temporal loops: DRAM block empty; L2 block [(X,2)];
    // L1 block [(X,2),(R,2)].
    const size_t I = 0, F = 1, O = 2;
    const auto L1 = size_t(MemLevel::L1);
    const auto L2 = size_t(MemLevel::L2);
    const auto DR = size_t(MemLevel::DRAM);

    // Inputs: rfDram=1, rfL2=2 (X relevant), rfL1=8 (R innermost).
    EXPECT_DOUBLE_EQ(res.access[I][DR].reads, 5.0);
    EXPECT_DOUBLE_EQ(res.access[I][L2].writes, 5.0);
    EXPECT_DOUBLE_EQ(res.access[I][L2].reads, 3.0 * 2.0);
    EXPECT_DOUBLE_EQ(res.access[I][L1].writes, 3.0 * 2.0);
    EXPECT_DOUBLE_EQ(res.access[I][L1].reads, 8.0);

    // Filters: irrelevant to the L2 X loop -> stationary (rfL2=1).
    EXPECT_DOUBLE_EQ(res.access[F][DR].reads, 2.0);
    EXPECT_DOUBLE_EQ(res.access[F][L2].reads, 2.0);
    EXPECT_DOUBLE_EQ(res.access[F][L1].writes, 2.0);
    EXPECT_DOUBLE_EQ(res.access[F][L1].reads, 8.0);

    // Outputs: accumulation completes within L1 (R inside) -> no RMW.
    EXPECT_DOUBLE_EQ(res.access[O][L1].writes, 4.0);
    EXPECT_DOUBLE_EQ(res.access[O][L1].reads, 0.0);
    EXPECT_DOUBLE_EQ(res.access[O][L2].writes, 4.0);
    EXPECT_DOUBLE_EQ(res.access[O][L2].reads, 0.0);
    EXPECT_DOUBLE_EQ(res.access[O][DR].writes, 4.0);
    EXPECT_DOUBLE_EQ(res.access[O][DR].reads, 0.0);

    EXPECT_DOUBLE_EQ(res.nocWords, 6.0 + 2.0 + 4.0);
    EXPECT_DOUBLE_EQ(res.paddedMacs, 8.0);
    EXPECT_DOUBLE_EQ(res.actualMacs, 8.0);
    EXPECT_DOUBLE_EQ(res.computeCycles, 8.0);
    EXPECT_DOUBLE_EQ(res.cycles, 8.0);

    // Energy identity: totals equal component sums.
    double perLevel = 0.0;
    for (size_t t = 0; t < 3; ++t)
        for (int lvl = 0; lvl < kNumMemLevels; ++lvl)
            perLevel += res.energyPj[t][size_t(lvl)];
    EXPECT_NEAR(res.totalEnergyPj,
                perLevel + res.macEnergyPj + res.nocEnergyPj, 1e-9);

    // Meta-statistics arity for a 3-tensor problem: 3*3 + 3 = 12.
    EXPECT_EQ(res.metaStats().size(), 12u);
    EXPECT_EQ(CostResult::metaStatCount(4), 15u);
}

TEST(CostModel, RegisterStationarityFollowsL1Order)
{
    // Swapping the L1 loop order to [R, X] makes the filter innermost-
    // stationary dimension X, halving filter L1 reads (rf 8 -> 4).
    HandCase h;
    h.m.loopOrder[size_t(MemLevel::L1)] = {1, 0}; // R outer, X inner
    ASSERT_TRUE(h.space.isMember(h.m));
    CostModel model(h.space);
    CostResult res = model.evaluate(h.m);
    EXPECT_DOUBLE_EQ(res.access[1][size_t(MemLevel::L1)].reads, 4.0);
    // Inputs stay at rf=8 (X is relevant to inputs too).
    EXPECT_DOUBLE_EQ(res.access[0][size_t(MemLevel::L1)].reads, 8.0);
    // Outputs now see read-modify-write at L1: updates 8, first 4.
    EXPECT_DOUBLE_EQ(res.access[2][size_t(MemLevel::L1)].writes, 8.0);
    EXPECT_DOUBLE_EQ(res.access[2][size_t(MemLevel::L1)].reads, 4.0);
}

struct RandomModelFixture
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    std::vector<Problem> problems = table1All();
};

class CostModelSweep : public ::testing::TestWithParam<int>
{};

TEST_P(CostModelSweep, InvariantsHoldOnRandomMappings)
{
    RandomModelFixture fx;
    const Problem &p = fx.problems[size_t(GetParam())];
    MapSpace space(fx.arch, p);
    CostModel model(space);
    const LowerBound &lb = model.lowerBound();
    Rng rng(uint64_t(GetParam()) * 7 + 1);

    for (int i = 0; i < 40; ++i) {
        Mapping m = space.randomValid(rng);
        CostResult res = model.evaluate(m);

        // Cost is positive and finite.
        EXPECT_GT(res.totalEnergyPj, 0.0);
        EXPECT_TRUE(std::isfinite(res.totalEnergyPj));
        EXPECT_GT(res.cycles, 0.0);

        // Delay cannot beat the compute bound; utilization in (0, 1].
        EXPECT_GE(res.cycles, res.computeCycles - 1e-9);
        EXPECT_GT(res.utilization, 0.0);
        EXPECT_LE(res.utilization, 1.0 + 1e-9);

        // Padded work bounds real work.
        EXPECT_GE(res.paddedMacs, res.actualMacs - 1e-6);

        for (size_t t = 0; t < space.tensorCount(); ++t) {
            const auto &acc = res.access[t];
            bool output = p.algo->tensors[t].isOutput;
            double words = double(p.tensorWords(t));
            if (!output) {
                // Each input word enters the chip at least once.
                EXPECT_GE(acc[size_t(MemLevel::DRAM)].reads,
                          words - 1e-6)
                    << p.name << " tensor " << t;
                // Fills into L2 equal DRAM reads.
                EXPECT_DOUBLE_EQ(acc[size_t(MemLevel::L2)].writes,
                                 acc[size_t(MemLevel::DRAM)].reads);
                // Serving reads never exceed fills times... (sanity:
                // both positive).
                EXPECT_GT(acc[size_t(MemLevel::L2)].reads, 0.0);
            } else {
                // Every output word is written to DRAM at least once.
                EXPECT_GE(acc[size_t(MemLevel::DRAM)].writes,
                          words - 1e-6);
                // RMW reads are strictly fewer than writes.
                EXPECT_LT(acc[size_t(MemLevel::DRAM)].reads,
                          acc[size_t(MemLevel::DRAM)].writes + 1e-9);
            }
        }

        // The algorithmic minimum really is a lower bound.
        EXPECT_GE(res.totalEnergyPj, lb.energyPj * 0.999);
        EXPECT_GE(res.cycles, lb.cycles * 0.999);
        EXPECT_GE(res.edp(), lb.edp() * 0.999);
        EXPECT_GE(model.normalizedEdp(m), 0.999);
    }
}

INSTANTIATE_TEST_SUITE_P(Table1, CostModelSweep, ::testing::Range(0, 8));

TEST(CostModel, PaddingIsCharged)
{
    // Same problem, two mappings identical except one pads a dimension.
    AcceleratorSpec arch = AcceleratorSpec::tinyDefault();
    Problem p = makeProblem(conv1dAlgo(), "pad", {12, 3});
    MapSpace space(arch, p);
    CostModel model(space);

    Mapping exact;
    exact.tiling[size_t(MemLevel::L1)] = {3, 3};
    exact.spatial = {1, 1};
    exact.tiling[size_t(MemLevel::L2)] = {2, 1};
    exact.tiling[size_t(MemLevel::DRAM)] = {2, 1};
    for (auto &order : exact.loopOrder)
        order = {0, 1};
    exact.bufferAlloc[0] = {2, 2, 2};
    exact.bufferAlloc[1] = {4, 4, 4};
    ASSERT_TRUE(space.isMember(exact)) << space.validityError(exact);

    Mapping padded = exact;
    padded.tiling[size_t(MemLevel::L1)][1] = 4; // R padded: 4 in [3, 4]
    ASSERT_TRUE(space.isMember(padded)) << space.validityError(padded);

    EXPECT_GT(model.evaluate(padded).paddedMacs,
              model.evaluate(exact).paddedMacs);
    EXPECT_GT(model.edp(padded), model.edp(exact));
}

TEST(CostModel, MoreParallelismReducesComputeCycles)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem p = cnnProblem("par", 16, 128, 128, 28, 28, 3, 3);
    MapSpace space(arch, p);
    CostModel model(space);

    Mapping serial;
    for (auto &t : serial.tiling)
        t.assign(7, 1);
    serial.spatial.assign(7, 1);
    // All trips at DRAM level: fully sequential.
    for (size_t d = 0; d < 7; ++d)
        serial.tiling[size_t(MemLevel::DRAM)][d] = p.bounds[d];
    for (auto &order : serial.loopOrder)
        order = {0, 1, 2, 3, 4, 5, 6};
    serial.bufferAlloc[0] = {6, 5, 5};
    serial.bufferAlloc[1] = {11, 11, 10};
    ASSERT_TRUE(space.isMember(serial)) << space.validityError(serial);

    Mapping parallel = serial;
    parallel.spatial[1] = 128; // K across PEs
    parallel.tiling[size_t(MemLevel::DRAM)][1] = 1;
    parallel = space.project(parallel);
    ASSERT_TRUE(space.isMember(parallel));
    ASSERT_EQ(parallel.usedPes(), 128);

    EXPECT_LT(model.evaluate(parallel).computeCycles,
              model.evaluate(serial).computeCycles);
}

TEST(CostModel, OuterIrrelevantLoopForcesRefetch)
{
    // DRAM-level loop over K is irrelevant to Inputs: putting it
    // outermost forces the input working set to be re-read per k-tile,
    // while putting it innermost (with nothing below) lets inputs stay.
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem p = cnnProblem("reuse", 4, 64, 64, 12, 12, 3, 3);
    MapSpace space(arch, p);
    CostModel model(space);
    Rng rng(3);

    Mapping m = space.randomValid(rng);
    // Force a DRAM block with K and C trips only.
    for (size_t d = 0; d < 7; ++d) {
        int64_t total = m.dimProduct(d);
        m.tiling[size_t(MemLevel::DRAM)][d] = 1;
        m.tiling[size_t(MemLevel::L2)][d] = 1;
        m.tiling[size_t(MemLevel::L1)][d] = 1;
        m.spatial[d] = 1;
        // Rebuild: put everything at L1 except K, C at DRAM.
        if (d == 1 || d == 2) {
            m.tiling[size_t(MemLevel::DRAM)][d] = total;
        } else {
            m.tiling[size_t(MemLevel::L1)][d] = total;
        }
    }
    m = space.project(m);
    ASSERT_TRUE(space.isMember(m));

    // K outermost at DRAM: inputs refetched per K tile.
    Mapping kOuter = m;
    kOuter.loopOrder[size_t(MemLevel::DRAM)] = {1, 2, 0, 3, 4, 5, 6};
    // K innermost at DRAM: trailing irrelevant loop -> input stationary.
    Mapping kInner = m;
    kInner.loopOrder[size_t(MemLevel::DRAM)] = {2, 0, 3, 4, 5, 6, 1};

    double readsOuter =
        model.evaluate(kOuter).access[0][size_t(MemLevel::DRAM)].reads;
    double readsInner =
        model.evaluate(kInner).access[0][size_t(MemLevel::DRAM)].reads;
    EXPECT_GT(readsOuter, readsInner);
}

TEST(LowerBound, MatchesClosedForm)
{
    // conv1d {X=16, R=4} on the paper accelerator, by hand from the
    // reuse-limit bound (src/bound/bounds.hpp). Footprints at the
    // unpadded floors: input X+R-1 = 19, filter 4, output 16 words.
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem p = makeProblem(conv1dAlgo(), "lb", {16, 4});
    LowerBound lb = computeLowerBound(arch, p);

    // Word floors per level: L1 refills cover each tensor's relevant
    // iteration space (inputs 16*4, filters 4, outputs 16) plus the
    // input/filter deliveries into L1 (19 + 4); L2 moves inputs and
    // filters twice (staged in, multicast down) and outputs once; DRAM
    // touches every tensor's full footprint once.
    const double wL1 = (19 + 64) + (4 + 4) + 16; // 107
    const double wL2 = 2 * 19 + 2 * 4 + 16;      // 62
    const double wDram = 19 + 4 + 16;            // 39
    const double noc = 19 + 4 + 16;              // 39
    const double macs = 16.0 * 4.0;
    EXPECT_DOUBLE_EQ(lb.energyPj, macs * 0.56 + noc * 1.0 + wL1 * 2.5
                                      + wL2 * 12.0 + wDram * 200.0);
    // Delay: DRAM bandwidth dominates (39 words at 16 words/cycle);
    // compute could at best use min(256, 20 * 5) = 100 PEs.
    EXPECT_DOUBLE_EQ(lb.cycles, wDram / 16.0);
    EXPECT_DOUBLE_EQ(lb.edp(), lb.energyPj * lb.cycles);

    // Strictly tighter than the historical stub (every tensor word
    // through every level once, peak-PE cycles) on both axes.
    const double oldEnergy =
        (19 + 4 + 16) * (2.5 + 12.0 + 200.0) + macs * 0.56;
    EXPECT_GT(lb.energyPj, oldEnergy);
    EXPECT_GT(lb.cycles, macs / 256.0);
}

TEST(CostModel, EdpNormalizationUsesLowerBound)
{
    auto arch = AcceleratorSpec::paperDefault();
    Problem p = mttkrpProblem("norm", 128, 256, 128, 64);
    MapSpace space(arch, p);
    CostModel model(space);
    Rng rng(4);
    Mapping m = space.randomValid(rng);
    EXPECT_NEAR(model.normalizedEdp(m),
                model.edp(m) / model.lowerBound().edp(), 1e-9);
}

} // namespace
} // namespace mm
