/**
 * @file
 * Tests for the dense linear-algebra substrate: GEMM against the
 * reference kernel for every transpose combination and shape class
 * (including the blocked+packed kernel, threading determinism and the
 * aligned allocator).
 */
#include <cstdint>
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"

namespace mm {
namespace {

Matrix
randomMatrix(size_t rows, size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = float(rng.uniformReal(-1.0, 1.0));
    return m;
}

TEST(Matrix, BasicAccessAndFill)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    m.at(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(m.at(1, 2), 5.0f);
    m.fill(2.0f);
    EXPECT_FLOAT_EQ(m.at(0, 0), 2.0f);
    EXPECT_DOUBLE_EQ(squaredNorm(m), 6 * 4.0);
}

TEST(Matrix, ReshapePreservesData)
{
    Matrix m(2, 6);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = float(i);
    m.reshape(3, 4);
    EXPECT_FLOAT_EQ(m.at(2, 3), 11.0f);
}

TEST(Matrix, RowSpanViewsUnderlyingData)
{
    Matrix m(3, 2);
    m.at(1, 0) = 7.0f;
    auto row = m.row(1);
    EXPECT_FLOAT_EQ(row[0], 7.0f);
    row[1] = 9.0f;
    EXPECT_FLOAT_EQ(m.at(1, 1), 9.0f);
}

TEST(Matrix, AxpyAndScale)
{
    Matrix x(1, 3), y(1, 3);
    x.fill(2.0f);
    y.fill(1.0f);
    axpy(3.0f, x, y);
    EXPECT_FLOAT_EQ(y.at(0, 0), 7.0f);
    scale(0.5f, y);
    EXPECT_FLOAT_EQ(y.at(0, 2), 3.5f);
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>>
{};

TEST_P(GemmShapes, MatchesReference)
{
    auto [m, k, n, ta, tb] = GetParam();
    Rng rng(uint64_t(m * 1000 + k * 100 + n * 10 + ta * 2 + tb));
    Matrix a = ta ? randomMatrix(size_t(k), size_t(m), rng)
                  : randomMatrix(size_t(m), size_t(k), rng);
    Matrix b = tb ? randomMatrix(size_t(n), size_t(k), rng)
                  : randomMatrix(size_t(k), size_t(n), rng);
    Matrix c = randomMatrix(size_t(m), size_t(n), rng);
    Matrix cRef = c;

    gemm(ta, tb, 1.5f, a, b, 0.25f, c);
    gemmReference(ta, tb, 1.5f, a, b, 0.25f, cRef);
    EXPECT_LT(maxAbsDiff(c, cRef), 1e-3)
        << "m=" << m << " k=" << k << " n=" << n << " ta=" << ta
        << " tb=" << tb;
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposes, GemmShapes,
    ::testing::Combine(::testing::Values(1, 3, 17), ::testing::Values(1, 8, 33),
                       ::testing::Values(1, 5, 29), ::testing::Bool(),
                       ::testing::Bool()));

TEST(Gemm, BetaZeroOverwritesGarbage)
{
    Rng rng(4);
    Matrix a = randomMatrix(4, 4, rng);
    Matrix b = randomMatrix(4, 4, rng);
    Matrix c(4, 4);
    c.fill(std::numeric_limits<float>::quiet_NaN());
    gemm(false, false, 1.0f, a, b, 0.0f, c);
    for (size_t i = 0; i < c.size(); ++i)
        EXPECT_FALSE(std::isnan(c.data()[i]));
}

TEST(Matrix, StorageIsCacheLineAligned)
{
    for (size_t rows : {1u, 3u, 7u, 64u, 129u}) {
        Matrix m(rows, rows + 1);
        EXPECT_EQ(uintptr_t(m.data()) % kMatrixAlignment, 0u)
            << "rows=" << rows;
    }
    Matrix m(2, 3);
    m.resize(37, 53);
    EXPECT_EQ(uintptr_t(m.data()) % kMatrixAlignment, 0u);
    m.ensureShape(200, 17);
    EXPECT_EQ(uintptr_t(m.data()) % kMatrixAlignment, 0u);
    Matrix copy = m;
    EXPECT_EQ(uintptr_t(copy.data()) % kMatrixAlignment, 0u);
}

/**
 * Randomized sweep over all four transpose combinations and the shape
 * classes the dispatcher distinguishes: degenerate (empty / 1xN / Nx1),
 * scalar-kernel small shapes, blocked shapes, and tile-edge shapes that
 * exercise partial MR/NR/KC tiles.
 */
TEST(Gemm, RandomizedPropertySweep)
{
    const std::vector<size_t> dims = {0, 1, 2, 3, 5, 16, 31, 64, 65, 130};
    Rng rng(20240721);
    for (int trial = 0; trial < 200; ++trial) {
        const size_t m = dims[size_t(rng.uniformInt(0, 9))];
        const size_t k = dims[size_t(rng.uniformInt(0, 9))];
        const size_t n = dims[size_t(rng.uniformInt(0, 9))];
        const bool ta = rng.bernoulli(0.5);
        const bool tb = rng.bernoulli(0.5);
        const float alpha =
            float(rng.pick(std::vector<double>{0.0, 1.0, -1.5, 0.37}));
        const float beta =
            float(rng.pick(std::vector<double>{0.0, 1.0, 0.5}));

        Matrix a = ta ? randomMatrix(k, m, rng) : randomMatrix(m, k, rng);
        Matrix b = tb ? randomMatrix(n, k, rng) : randomMatrix(k, n, rng);
        Matrix c = randomMatrix(m, n, rng);
        Matrix cRef = c;

        gemm(ta, tb, alpha, a, b, beta, c);
        gemmReference(ta, tb, alpha, a, b, beta, cRef);
        const double tol = 1e-5 * double(k + 1);
        EXPECT_LT(maxAbsDiff(c, cRef), tol)
            << "m=" << m << " k=" << k << " n=" << n << " ta=" << ta
            << " tb=" << tb << " alpha=" << alpha << " beta=" << beta;
    }
}

/** The blocked kernel must agree with the reference on large shapes. */
TEST(Gemm, BlockedMatchesReferenceOnLargeShapes)
{
    Rng rng(77);
    for (auto [m, k, n] : {std::tuple<size_t, size_t, size_t>{128, 300, 70},
                           {1, 2048, 96},
                           {130, 257, 1030}}) {
        for (bool ta : {false, true}) {
            for (bool tb : {false, true}) {
                Matrix a = ta ? randomMatrix(k, m, rng)
                              : randomMatrix(m, k, rng);
                Matrix b = tb ? randomMatrix(n, k, rng)
                              : randomMatrix(k, n, rng);
                Matrix c(m, n), cRef(m, n);
                gemm(ta, tb, 1.0f, a, b, 0.0f, c);
                gemmReference(ta, tb, 1.0f, a, b, 0.0f, cRef);
                EXPECT_LT(maxAbsDiff(c, cRef), 1e-5 * double(k))
                    << "m=" << m << " k=" << k << " n=" << n
                    << " ta=" << ta << " tb=" << tb;
            }
        }
    }
}

/**
 * Rows of a batched product must be bitwise identical to the same row
 * evaluated alone — the invariant the Phase-2 batched driver's
 * per-sample equivalence rests on (dispatch depends only on (k, n)).
 */
TEST(Gemm, RowResultIndependentOfBatchSize)
{
    Rng rng(31);
    const size_t k = 96, n = 80;
    Matrix a = randomMatrix(64, k, rng);
    Matrix b = randomMatrix(k, n, rng);
    Matrix full(64, n);
    gemm(false, false, 1.0f, a, b, 0.0f, full);
    for (size_t r : {size_t(0), size_t(13), size_t(63)}) {
        Matrix one(1, k);
        std::copy(a.row(r).begin(), a.row(r).end(), one.row(0).begin());
        Matrix cOne(1, n);
        gemm(false, false, 1.0f, one, b, 0.0f, cOne);
        for (size_t j = 0; j < n; ++j)
            EXPECT_EQ(cOne(0, j), full(r, j)) << "r=" << r << " j=" << j;
    }
}

/** Threaded GEMM must be bitwise identical at any lane count. */
TEST(Gemm, ThreadedBitwiseEqualsSerial)
{
    Rng rng(55);
    const size_t m = 400, k = 160, n = 220;
    Matrix a = randomMatrix(m, k, rng);
    Matrix b = randomMatrix(k, n, rng);
    Matrix serial(m, n);
    gemm(false, false, 1.0f, a, b, 0.0f, serial);
    for (size_t lanes : {2u, 3u, 5u}) {
        ThreadPool pool(lanes);
        Matrix c(m, n);
        gemm(false, false, 1.0f, a, b, 0.0f, c, &pool);
        EXPECT_EQ(maxAbsDiff(c, serial), 0.0) << "lanes=" << lanes;
    }
}

/** Nested use: a GEMM issued from inside a pool job runs inline. */
TEST(Gemm, NestedCallInsidePoolJob)
{
    Rng rng(91);
    // Big enough that the inner gemm itself wants to thread.
    const size_t m = 300, k = 140, n = 110;
    Matrix a = randomMatrix(m, k, rng);
    Matrix b = randomMatrix(k, n, rng);
    Matrix expect(m, n);
    gemm(false, false, 1.0f, a, b, 0.0f, expect);

    ThreadPool pool(4);
    std::vector<Matrix> results(6, Matrix(m, n));
    pool.parallelFor(results.size(), [&](size_t i) {
        gemm(false, false, 1.0f, a, b, 0.0f, results[i], &pool);
    });
    for (size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(maxAbsDiff(results[i], expect), 0.0) << "job " << i;
}

/** Concurrent submitters from distinct threads share one pool safely. */
TEST(Gemm, ConcurrentExternalCallersShareOnePool)
{
    Rng rng(17);
    const size_t m = 256, k = 128, n = 128;
    Matrix a = randomMatrix(m, k, rng);
    Matrix b = randomMatrix(k, n, rng);
    Matrix expect(m, n);
    gemm(false, false, 1.0f, a, b, 0.0f, expect);

    ThreadPool pool(3);
    std::vector<Matrix> results(4, Matrix(m, n));
    std::vector<std::thread> callers;
    for (size_t i = 0; i < results.size(); ++i)
        callers.emplace_back([&, i] {
            gemm(false, false, 1.0f, a, b, 0.0f, results[i], &pool);
        });
    for (auto &t : callers)
        t.join();
    for (size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(maxAbsDiff(results[i], expect), 0.0) << "caller " << i;
}

TEST(Gemm, NaiveMatchesReference)
{
    Rng rng(7);
    for (bool ta : {false, true}) {
        for (bool tb : {false, true}) {
            const size_t m = 33, k = 47, n = 29;
            Matrix a = ta ? randomMatrix(k, m, rng)
                          : randomMatrix(m, k, rng);
            Matrix b = tb ? randomMatrix(n, k, rng)
                          : randomMatrix(k, n, rng);
            Matrix c(m, n), cRef(m, n);
            gemmNaive(ta, tb, 2.0f, a, b, 0.0f, c);
            gemmReference(ta, tb, 2.0f, a, b, 0.0f, cRef);
            EXPECT_LT(maxAbsDiff(c, cRef), 1e-4)
                << "ta=" << ta << " tb=" << tb;
        }
    }
}

TEST(Gemm, IdentityIsNoOp)
{
    Rng rng(9);
    Matrix a = randomMatrix(5, 5, rng);
    Matrix eye(5, 5);
    for (size_t i = 0; i < 5; ++i)
        eye(i, i) = 1.0f;
    Matrix c(5, 5);
    gemm(false, false, 1.0f, a, eye, 0.0f, c);
    EXPECT_LT(maxAbsDiff(a, c), 1e-6);
}

} // namespace
} // namespace mm
