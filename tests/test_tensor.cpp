/**
 * @file
 * Tests for the dense linear-algebra substrate: GEMM against the
 * reference kernel for every transpose combination and shape class.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"

namespace mm {
namespace {

Matrix
randomMatrix(size_t rows, size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = float(rng.uniformReal(-1.0, 1.0));
    return m;
}

TEST(Matrix, BasicAccessAndFill)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    m.at(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(m.at(1, 2), 5.0f);
    m.fill(2.0f);
    EXPECT_FLOAT_EQ(m.at(0, 0), 2.0f);
    EXPECT_DOUBLE_EQ(squaredNorm(m), 6 * 4.0);
}

TEST(Matrix, ReshapePreservesData)
{
    Matrix m(2, 6);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = float(i);
    m.reshape(3, 4);
    EXPECT_FLOAT_EQ(m.at(2, 3), 11.0f);
}

TEST(Matrix, RowSpanViewsUnderlyingData)
{
    Matrix m(3, 2);
    m.at(1, 0) = 7.0f;
    auto row = m.row(1);
    EXPECT_FLOAT_EQ(row[0], 7.0f);
    row[1] = 9.0f;
    EXPECT_FLOAT_EQ(m.at(1, 1), 9.0f);
}

TEST(Matrix, AxpyAndScale)
{
    Matrix x(1, 3), y(1, 3);
    x.fill(2.0f);
    y.fill(1.0f);
    axpy(3.0f, x, y);
    EXPECT_FLOAT_EQ(y.at(0, 0), 7.0f);
    scale(0.5f, y);
    EXPECT_FLOAT_EQ(y.at(0, 2), 3.5f);
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>>
{};

TEST_P(GemmShapes, MatchesReference)
{
    auto [m, k, n, ta, tb] = GetParam();
    Rng rng(uint64_t(m * 1000 + k * 100 + n * 10 + ta * 2 + tb));
    Matrix a = ta ? randomMatrix(size_t(k), size_t(m), rng)
                  : randomMatrix(size_t(m), size_t(k), rng);
    Matrix b = tb ? randomMatrix(size_t(n), size_t(k), rng)
                  : randomMatrix(size_t(k), size_t(n), rng);
    Matrix c = randomMatrix(size_t(m), size_t(n), rng);
    Matrix cRef = c;

    gemm(ta, tb, 1.5f, a, b, 0.25f, c);
    gemmReference(ta, tb, 1.5f, a, b, 0.25f, cRef);
    EXPECT_LT(maxAbsDiff(c, cRef), 1e-3)
        << "m=" << m << " k=" << k << " n=" << n << " ta=" << ta
        << " tb=" << tb;
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposes, GemmShapes,
    ::testing::Combine(::testing::Values(1, 3, 17), ::testing::Values(1, 8, 33),
                       ::testing::Values(1, 5, 29), ::testing::Bool(),
                       ::testing::Bool()));

TEST(Gemm, BetaZeroOverwritesGarbage)
{
    Rng rng(4);
    Matrix a = randomMatrix(4, 4, rng);
    Matrix b = randomMatrix(4, 4, rng);
    Matrix c(4, 4);
    c.fill(std::numeric_limits<float>::quiet_NaN());
    gemm(false, false, 1.0f, a, b, 0.0f, c);
    for (size_t i = 0; i < c.size(); ++i)
        EXPECT_FALSE(std::isnan(c.data()[i]));
}

TEST(Gemm, IdentityIsNoOp)
{
    Rng rng(9);
    Matrix a = randomMatrix(5, 5, rng);
    Matrix eye(5, 5);
    for (size_t i = 0; i < 5; ++i)
        eye(i, i) = 1.0f;
    Matrix c(5, 5);
    gemm(false, false, 1.0f, a, eye, 0.0f, c);
    EXPECT_LT(maxAbsDiff(a, c), 1e-6);
}

} // namespace
} // namespace mm
