/**
 * @file
 * mmlint engine tests: every rule fires on a known-bad snippet, stays
 * quiet on the idiomatic equivalent, respects its path scoping, and is
 * silenced by a same-line `mmlint:allow(rule)` comment.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using mmlint::Diagnostic;
using mmlint::lintSource;

std::vector<std::string>
rulesFired(const std::string &path, const std::string &src)
{
    std::vector<std::string> rules;
    for (const Diagnostic &d : lintSource(path, src))
        rules.push_back(d.rule);
    return rules;
}

bool
fires(const std::string &path, const std::string &src,
      const std::string &rule)
{
    auto rules = rulesFired(path, src);
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// ---------------------------------------------------------------------------
// raw-random
// ---------------------------------------------------------------------------

TEST(MmlintRawRandom, FiresOnRandSrandAndRandomDevice)
{
    EXPECT_TRUE(fires("src/search/anneal.cpp",
                      "int x = rand() % 7;", "raw-random"));
    EXPECT_TRUE(fires("src/search/anneal.cpp",
                      "void f() { srand(42); }", "raw-random"));
    EXPECT_TRUE(fires("src/search/anneal.cpp",
                      "std::random_device rd;", "raw-random"));
}

TEST(MmlintRawRandom, FiresOnTimeSeeding)
{
    EXPECT_TRUE(fires("src/search/anneal.cpp",
                      "uint64_t seed = time(nullptr);", "raw-random"));
    EXPECT_TRUE(fires("src/search/anneal.cpp",
                      "srand(unsigned(time(0)));", "raw-random"));
}

TEST(MmlintRawRandom, QuietOnSeededRngAndPlainTimeCalls)
{
    EXPECT_FALSE(fires("src/search/anneal.cpp",
                       "mm::Rng rng(seed); auto v = rng.uniformInt(0, 9);",
                       "raw-random"));
    // time() with a real argument is the POSIX out-param form, not
    // seeding.
    EXPECT_FALSE(fires("src/search/anneal.cpp",
                       "time_t t; time(&t);", "raw-random"));
    // Identifiers merely containing the banned names are fine.
    EXPECT_FALSE(fires("src/search/anneal.cpp",
                       "int operand = grand(); int runtime = 0;",
                       "raw-random"));
}

TEST(MmlintRawRandom, ExemptInsideCommonRng)
{
    EXPECT_FALSE(fires("src/common/rng.hpp",
                       "std::random_device rd;", "raw-random"));
}

// ---------------------------------------------------------------------------
// unordered-iteration
// ---------------------------------------------------------------------------

TEST(MmlintUnorderedIteration, FiresOnRangeForOverUnorderedMap)
{
    const std::string src = R"(
        std::unordered_map<std::string, int> counts;
        void f() {
            for (const auto &kv : counts)
                use(kv);
        }
    )";
    EXPECT_TRUE(fires("src/search/genetic.cpp", src,
                      "unordered-iteration"));
    EXPECT_TRUE(fires("src/costmodel/cost.cpp", src,
                      "unordered-iteration"));
    EXPECT_TRUE(fires("src/bound/bounds.cpp", src,
                      "unordered-iteration"));
}

TEST(MmlintUnorderedIteration, QuietOnOrderedMapAndLookups)
{
    const std::string ordered = R"(
        std::map<std::string, int> counts;
        void f() {
            for (const auto &kv : counts)
                use(kv);
        }
    )";
    EXPECT_FALSE(fires("src/search/genetic.cpp", ordered,
                       "unordered-iteration"));
    // Point lookups into an unordered container are order-independent.
    const std::string lookup = R"(
        std::unordered_map<std::string, int> counts;
        int g(const std::string &k) { return counts.at(k); }
    )";
    EXPECT_FALSE(fires("src/search/genetic.cpp", lookup,
                       "unordered-iteration"));
}

TEST(MmlintUnorderedIteration, ScopedToResultPathTrees)
{
    const std::string src = R"(
        std::unordered_set<int> seen;
        void f() { for (int v : seen) use(v); }
    )";
    EXPECT_TRUE(fires("src/search/x.cpp", src, "unordered-iteration"));
    EXPECT_FALSE(fires("src/serve/x.cpp", src, "unordered-iteration"));
    EXPECT_FALSE(fires("src/core/x.cpp", src, "unordered-iteration"));
}

// ---------------------------------------------------------------------------
// serve-decimal-float
// ---------------------------------------------------------------------------

TEST(MmlintServeDecimalFloat, FiresOnPrintfFloatConversions)
{
    EXPECT_TRUE(fires("src/serve/client.cpp",
                      R"(snprintf(b, sizeof(b), "%.17g", v);)",
                      "serve-decimal-float"));
    EXPECT_TRUE(fires("src/serve/proto.cpp",
                      R"(const char *fmt = "val=%f";)",
                      "serve-decimal-float"));
    EXPECT_TRUE(fires("src/serve/proto.cpp",
                      R"(const char *fmt = "%-+12.6E";)",
                      "serve-decimal-float"));
}

TEST(MmlintServeDecimalFloat, FiresOnStreamManipulators)
{
    EXPECT_TRUE(fires("src/serve/proto.cpp",
                      "os << std::setprecision(17) << v;",
                      "serve-decimal-float"));
    EXPECT_TRUE(fires("src/serve/proto.cpp",
                      "os << std::fixed << v;", "serve-decimal-float"));
}

TEST(MmlintServeDecimalFloat, QuietOnHexfloatAndNonFloatFormats)
{
    EXPECT_FALSE(fires("src/serve/json.cpp",
                       R"(snprintf(b, sizeof(b), "\"%a\"", v);)",
                       "serve-decimal-float"));
    EXPECT_FALSE(fires("src/serve/proto.cpp",
                       R"(snprintf(b, sizeof(b), "%s:%d 100%%", s, i);)",
                       "serve-decimal-float"));
    // `fixed` as a plain identifier is not the manipulator.
    EXPECT_FALSE(fires("src/serve/proto.cpp",
                       "std::vector<int64_t> fixed(slots, 1);",
                       "serve-decimal-float"));
}

TEST(MmlintServeDecimalFloat, ScopedToServe)
{
    EXPECT_FALSE(fires("src/common/string_util.cpp",
                       R"(snprintf(b, sizeof(b), "%.3f", v);)",
                       "serve-decimal-float"));
}

// ---------------------------------------------------------------------------
// naked-new
// ---------------------------------------------------------------------------

TEST(MmlintNakedNew, FiresOnNewAndDeleteExpressions)
{
    EXPECT_TRUE(fires("src/core/x.cpp", "int *p = new int(3);",
                      "naked-new"));
    EXPECT_TRUE(fires("src/core/x.cpp", "void f(int *p) { delete p; }",
                      "naked-new"));
}

TEST(MmlintNakedNew, QuietOnDeletedFunctionsAndOperatorForms)
{
    EXPECT_FALSE(fires("src/core/x.cpp",
                       "Foo(const Foo &) = delete;", "naked-new"));
    EXPECT_FALSE(fires(
        "src/tensor/matrix.hpp",
        "::operator delete(p, std::align_val_t(Align));", "naked-new"));
    // Words in comments and strings never fire.
    EXPECT_FALSE(fires("src/core/x.cpp",
                       "// a brand new approach\nconst char *s = \"new\";",
                       "naked-new"));
}

// ---------------------------------------------------------------------------
// catch-all
// ---------------------------------------------------------------------------

TEST(MmlintCatchAll, FiresOnCatchEllipsis)
{
    EXPECT_TRUE(fires("src/core/x.cpp",
                      "try { f(); } catch (...) { }", "catch-all"));
}

TEST(MmlintCatchAll, QuietOnTypedCatch)
{
    EXPECT_FALSE(fires("src/core/x.cpp",
                       "try { f(); } catch (const mm::IoError &e) { g(e); }",
                       "catch-all"));
}

// ---------------------------------------------------------------------------
// raw-getenv
// ---------------------------------------------------------------------------

TEST(MmlintRawGetenv, FiresOutsideCommonEnv)
{
    EXPECT_TRUE(fires("src/core/x.cpp",
                      "const char *v = std::getenv(\"MM_SEED\");",
                      "raw-getenv"));
    EXPECT_TRUE(fires("src/serve/x.cpp",
                      "const char *v = getenv(\"HOME\");", "raw-getenv"));
}

TEST(MmlintRawGetenv, ExemptInsideCommonEnv)
{
    EXPECT_FALSE(fires("src/common/env.cpp",
                       "const char *v = std::getenv(name);", "raw-getenv"));
}

// ---------------------------------------------------------------------------
// The allow escape hatch and diagnostics plumbing
// ---------------------------------------------------------------------------

TEST(MmlintAllow, SameLineAllowSuppressesExactlyThatRule)
{
    EXPECT_FALSE(fires(
        "src/core/x.cpp",
        "try { f(); } catch (...) { } // mmlint:allow(catch-all) rethrown",
        "catch-all"));
    // The allow names a different rule: no suppression.
    EXPECT_TRUE(fires(
        "src/core/x.cpp",
        "try { f(); } catch (...) { } // mmlint:allow(naked-new)",
        "catch-all"));
    // Allow on a neighbouring line: no suppression.
    EXPECT_TRUE(fires("src/core/x.cpp",
                      "// mmlint:allow(catch-all)\n"
                      "try { f(); } catch (...) { }",
                      "catch-all"));
}

TEST(MmlintAllow, CommaListSuppressesSeveralRules)
{
    const std::string src =
        "int *p = new int(rand()); "
        "// mmlint:allow(naked-new, raw-random) fixture";
    EXPECT_FALSE(fires("src/core/x.cpp", src, "naked-new"));
    EXPECT_FALSE(fires("src/core/x.cpp", src, "raw-random"));
}

TEST(MmlintDiagnostics, CarryPathLineAndStableFormat)
{
    auto diags = lintSource("src/core/x.cpp",
                            "int a;\nint *p = new int(3);\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].path, "src/core/x.cpp");
    EXPECT_EQ(diags[0].line, 2);
    EXPECT_EQ(diags[0].rule, "naked-new");
    const std::string text = mmlint::formatDiagnostic(diags[0]);
    EXPECT_EQ(text.rfind("src/core/x.cpp:2: [naked-new]", 0), 0u) << text;
}

TEST(MmlintDiagnostics, RuleCatalogIsComplete)
{
    const std::vector<std::string> expected{
        "raw-random",    "unordered-iteration", "serve-decimal-float",
        "naked-new",     "catch-all",           "raw-getenv",
    };
    EXPECT_EQ(mmlint::ruleNames(), expected);
}

} // namespace
