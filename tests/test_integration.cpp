/**
 * @file
 * Cross-module integration tests: the full Phase-1 + Phase-2 pipeline
 * against baselines, functional correctness of searched mappings
 * (Definition 2.2), and whole-pipeline determinism.
 */
#include <gtest/gtest.h>

#include <map>

#include "common/stats.hpp"
#include "core/mind_mappings.hpp"
#include "mapping/nest.hpp"
#include "search/annealing.hpp"
#include "search/random_search.hpp"
#include "workload/reference.hpp"

namespace mm {
namespace {

TEST(Integration, MindMappingsBeatsRandomOnMttkrp)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();

    MindMappingsOptions opts;
    opts.phase1.data.samples = 30000;
    opts.phase1.data.problemCount = 24;
    opts.phase1.data.seed = 2;
    opts.phase1.train.epochs = 16;
    opts.phase1.hidden = {64, 96, 96, 64};
    opts.useCache = false;
    MindMappings mapper(arch, mttkrpAlgo(), opts);
    mapper.prepare();

    Problem p = mttkrpProblem("it", 256, 512, 1024, 256);
    MapSpace space(arch, p);
    CostModel model(space);

    std::vector<double> mmScores, rndScores;
    for (uint64_t seed = 0; seed < 3; ++seed) {
        Rng r1(seed), r2(seed);
        mmScores.push_back(
            mapper.search(p, SearchBudget::bySteps(1000), r1).bestNormEdp);
        RandomSearcher random(model);
        rndScores.push_back(
            random.run(SearchBudget::bySteps(1000), r2).bestNormEdp);
    }
    // The paper's headline direction: guided search beats unguided.
    EXPECT_LT(geomean(mmScores), geomean(rndScores));
}

TEST(Integration, SearchedMappingComputesTheSameFunction)
{
    // Definition 2.2: every mapping the pipeline returns must compute
    // the problem's function. Execute the searched mapping's loop nest
    // point-by-point and compare against the golden reference kernel.
    AcceleratorSpec arch = AcceleratorSpec::tinyDefault();
    Problem p = cnnProblem("fn", 2, 3, 2, 6, 6, 2, 2);
    MapSpace space(arch, p);
    CostModel model(space);
    AnnealingSearcher searcher(model);
    Rng rng(3);
    SearchResult res = searcher.run(SearchBudget::bySteps(150), rng);
    ASSERT_TRUE(space.isMember(res.best));

    // Golden result.
    Rng dataRng(7);
    auto golden = makeTensors(p, dataRng);
    auto mapped = golden; // same inputs, fresh output accumulator
    runReference(p, golden);

    const auto &algo = *p.algo;
    const size_t out = algo.outputTensor();
    forEachNestPoint(space, res.best, [&](std::span<const int64_t> pt) {
        // Skip padded points.
        for (size_t d = 0; d < pt.size(); ++d)
            if (pt[d] >= p.bounds[d])
                return;
        float acc = 1.0f;
        for (size_t t = 0; t < mapped.size(); ++t) {
            if (t == out)
                continue;
            auto coord = tensorPoint(algo, t, pt);
            acc *= mapped[t].data[size_t(mapped[t].offset(coord))];
        }
        auto ocoord = tensorPoint(algo, out, pt);
        mapped[out].data[size_t(mapped[out].offset(ocoord))] += acc;
    });

    for (size_t i = 0; i < golden[out].data.size(); ++i)
        EXPECT_NEAR(mapped[out].data[i], golden[out].data[i], 1e-3)
            << "output word " << i;
}

TEST(Integration, PipelineIsDeterministicEndToEnd)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    auto runOnce = [&]() {
        MindMappingsOptions opts;
        opts.phase1.data.samples = 3000;
        opts.phase1.data.problemCount = 8;
        opts.phase1.train.epochs = 4;
        opts.phase1.hidden = {32, 32};
        opts.useCache = false;
        MindMappings mapper(arch, conv1dAlgo(), opts);
        mapper.prepare();
        Problem p = makeProblem(conv1dAlgo(), "det", {144, 5});
        Rng rng(13);
        return mapper.search(p, SearchBudget::bySteps(200), rng);
    };
    SearchResult a = runOnce();
    SearchResult b = runOnce();
    EXPECT_DOUBLE_EQ(a.bestNormEdp, b.bestNormEdp);
    EXPECT_EQ(a.best, b.best);
}

TEST(Integration, Table1ProblemsEvaluateEndToEnd)
{
    // Every Table 1 problem can be sampled, costed and improved by a
    // short anneal without tripping any internal invariant.
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    for (const Problem &p : table1All()) {
        MapSpace space(arch, p);
        CostModel model(space);
        AnnealingSearcher searcher(model);
        Rng rng(17);
        SearchResult res = searcher.run(SearchBudget::bySteps(60), rng);
        EXPECT_TRUE(space.isMember(res.best)) << p.name;
        EXPECT_GT(res.bestNormEdp, 1.0) << p.name;
        EXPECT_TRUE(std::isfinite(res.bestNormEdp)) << p.name;
    }
}

} // namespace
} // namespace mm
