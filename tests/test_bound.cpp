/**
 * @file
 * Bounds-engine and branch-and-bound tests: tuple catalogs against the
 * factorization tables, admissibility of the partial-assignment bound
 * against the exact cost model at 10k+ random mappings and multiple
 * prefix depths, monotonicity in prefix depth, exactness of BB against
 * brute-force enumeration on a small map space, certificate validity
 * under a relative gap, determinism under step budgets, registry
 * validation, and the seedFrom=BB warm start of the baselines.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "bound/bb_search.hpp"
#include "common/error.hpp"
#include "common/factorization.hpp"
#include "search/registry.hpp"

namespace mm {
namespace {

constexpr double kRelTol = 1e-9;

/** The tiny exhaustively-enumerable space: conv1d {4, 2} on the tiny
 * accelerator (14 x 8 factor tuples, 8 loop-order combinations each). */
struct SmallSpace
{
    AcceleratorSpec arch = AcceleratorSpec::tinyDefault();
    Problem problem = makeProblem(conv1dAlgo(), "bb-small", {4, 2});
    MapSpace space{arch, problem};
    CostModel model{space};
};

/**
 * Brute-force optimum of a rank-2 space: every legal factor-tuple pair,
 * every full per-level loop order, minimal banks (bank allocation never
 * changes modeled cost, so the minimal assignment loses nothing).
 */
double
bruteForceBestNorm(const CostModel &model, const BoundTables &tables,
                   int64_t &evaluated)
{
    const MapSpace &space = model.space();
    MM_ASSERT(space.rank() == 2, "brute-force helper handles rank 2 only");
    const std::vector<int> orders[2] = {{0, 1}, {1, 0}};
    double best = std::numeric_limits<double>::infinity();
    evaluated = 0;
    for (const auto &tx : tables.tuples(0)) {
        for (const auto &tr : tables.tuples(1)) {
            Mapping m;
            m.tiling[size_t(MemLevel::L1)] = {tx[0], tr[0]};
            m.spatial = {tx[1], tr[1]};
            m.tiling[size_t(MemLevel::L2)] = {tx[2], tr[2]};
            m.tiling[size_t(MemLevel::DRAM)] = {tx[3], tr[3]};
            if (!tables.assignMinimalBanks(m))
                continue;
            for (int bits = 0; bits < 8; ++bits) {
                for (int lvl = 0; lvl < kNumMemLevels; ++lvl)
                    m.loopOrder[size_t(lvl)] = orders[bits >> lvl & 1];
                if (!space.isMember(m))
                    continue;
                best = std::min(best, model.normalizedEdp(m));
                ++evaluated;
            }
        }
    }
    return best;
}

TEST(BoundTables, TupleCatalogMatchesFactorizationTables)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem p = makeProblem(conv1dAlgo(), "tuples", {16, 4});
    MapSpace space(arch, p);
    BoundTables tables(space);
    for (size_t d = 0; d < space.rank(); ++d) {
        const FactorizationTable &table =
            factorTable(p.bounds[d], kFactorSlots);
        const auto &tuples = tables.tuples(d);
        EXPECT_EQ(int64_t(tuples.size()), table.count()) << "dim " << d;
        std::set<std::array<int64_t, kFactorSlots>> unique;
        for (const auto &t : tuples) {
            EXPECT_TRUE(table.contains(
                std::span<const int64_t>(t.data(), t.size())))
                << "dim " << d;
            unique.insert(t);
        }
        EXPECT_EQ(unique.size(), tuples.size()) << "dim " << d;
    }
}

TEST(BoundTables, WholeProblemBacksComputeLowerBound)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    const Problem problems[] = {
        makeProblem(conv1dAlgo(), "whole-conv", {16, 4}),
        mttkrpProblem("whole-mtt", 48, 32, 64, 24),
    };
    for (const Problem &p : problems) {
        MapSpace space(arch, p);
        BoundTables tables(space);
        const PartialBound whole = tables.wholeProblem();
        EXPECT_TRUE(whole.feasible) << p.name;
        const LowerBound lb = computeLowerBound(arch, p);
        EXPECT_DOUBLE_EQ(whole.energyPj, lb.energyPj) << p.name;
        EXPECT_DOUBLE_EQ(whole.cycles, lb.cycles) << p.name;
        CostModel model(space);
        EXPECT_DOUBLE_EQ(model.lowerBound().edp(), whole.edp()) << p.name;
    }
}

TEST(BoundTables, PrefixViewsPinTheRightSlots)
{
    SmallSpace s;
    Rng rng(17);
    const Mapping m = s.space.randomValid(rng);

    EXPECT_EQ(PartialAssignment::levelPrefixOf(m, 0).fixedSlotCount(), 0u);
    const PartialAssignment all = PartialAssignment::levelPrefixOf(m, 4);
    EXPECT_EQ(all.fixedSlotCount(), 4u * m.rank());
    for (size_t d = 0; d < m.rank(); ++d) {
        EXPECT_TRUE(all.dimFixed(d));
        EXPECT_EQ(all.factor(d, FactorSlot::L1),
                  m.tiling[size_t(MemLevel::L1)][d]);
        EXPECT_EQ(all.factor(d, FactorSlot::Spatial), m.spatial[d]);
        EXPECT_EQ(all.factor(d, FactorSlot::L2),
                  m.tiling[size_t(MemLevel::L2)][d]);
        EXPECT_EQ(all.factor(d, FactorSlot::DRAM),
                  m.tiling[size_t(MemLevel::DRAM)][d]);
    }

    // A one-level prefix fixes exactly the outermost (DRAM) slots.
    const PartialAssignment one = PartialAssignment::levelPrefixOf(m, 1);
    EXPECT_EQ(one.fixedSlotCount(), m.rank());
    for (size_t d = 0; d < m.rank(); ++d) {
        EXPECT_TRUE(one.fixed(d, FactorSlot::DRAM));
        EXPECT_FALSE(one.fixed(d, FactorSlot::L1));
    }

    const PartialAssignment dim1 = PartialAssignment::dimPrefixOf(m, 1);
    EXPECT_TRUE(dim1.dimFixed(0));
    EXPECT_EQ(dim1.fixedSlotCount(), size_t(kFactorSlots));
}

TEST(BoundTables, OutOfRangePinsAreInfeasible)
{
    AcceleratorSpec paper = AcceleratorSpec::paperDefault();
    Problem p = makeProblem(conv1dAlgo(), "infeasible", {16, 4});
    MapSpace space(paper, p);
    BoundTables tables(space);

    // Product exceeds the padding window of dimension 0 ([16, 20]).
    PartialAssignment over(2);
    over.fix(0, FactorSlot::DRAM, 64);
    EXPECT_FALSE(tables.bound(over).feasible);
    EXPECT_TRUE(std::isinf(tables.bound(over).edp()));

    // All slots fixed below the bound: no legal completion either.
    PartialAssignment under(2);
    under.fixDim(0, {1, 1, 1, 1});
    EXPECT_FALSE(tables.bound(under).feasible);

    // Guaranteed spatial fan-out over the tiny accelerator's 16 PEs.
    AcceleratorSpec tiny = AcceleratorSpec::tinyDefault();
    MapSpace tinySpace(tiny, p);
    BoundTables tinyTables(tinySpace);
    PartialAssignment pes(2);
    pes.fix(0, FactorSlot::Spatial, 20);
    pes.fix(1, FactorSlot::Spatial, 5);
    EXPECT_FALSE(tinyTables.bound(pes).feasible);
}

/**
 * The admissibility contract (ISSUE acceptance gate): over >= 10k
 * random mappings on CNN-Layer and MTTKRP, at every level-prefix depth
 * and two dimension-prefix depths, the bound never exceeds the exact
 * model's energy, cycles, per-level words, or EDP — and it grows
 * monotonically as more of the assignment is pinned.
 */
class BoundAdmissibility : public ::testing::TestWithParam<int>
{};

TEST_P(BoundAdmissibility, NeverExceedsExactCostAtAnyPrefixDepth)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    const Problem p =
        GetParam() == 0
            ? cnnProblem("adm-cnn", 2, 16, 8, 10, 10, 3, 3)
            : mttkrpProblem("adm-mtt", 48, 32, 64, 24);
    MapSpace space(arch, p);
    CostModel model(space);
    BoundTables tables(space);
    Rng rng(uint64_t(1234 + GetParam()));

    constexpr size_t kSamples = 5000; // x2 problems = 10k mappings
    std::vector<Mapping> maps;
    maps.reserve(kSamples);
    for (size_t i = 0; i < kSamples; ++i)
        maps.push_back(space.randomValid(rng));
    std::vector<CostResult> results(kSamples);
    model.evaluateBatch(std::span<const Mapping>(maps),
                        std::span<CostResult>(results));

    const size_t rank = space.rank();
    const size_t tensors = space.tensorCount();
    for (size_t i = 0; i < kSamples; ++i) {
        const CostResult &res = results[i];
        double actualWords[kNumMemLevels] = {};
        for (size_t t = 0; t < tensors; ++t)
            for (int lvl = 0; lvl < kNumMemLevels; ++lvl)
                actualWords[lvl] += res.access[t][size_t(lvl)].total();

        double prevEdp = 0.0;
        // ASSERT_* must live in a void callable; the EDP comes back
        // through the out-parameter.
        const auto check = [&](const PartialAssignment &pa,
                               const char *tag, int depth,
                               double &edpOut) {
            const PartialBound b = tables.bound(pa);
            ASSERT_TRUE(b.feasible)
                << p.name << " map " << i << " " << tag << depth;
            ASSERT_LE(b.energyPj, res.totalEnergyPj * (1.0 + kRelTol))
                << p.name << " map " << i << " " << tag << depth;
            ASSERT_LE(b.cycles, res.cycles * (1.0 + kRelTol))
                << p.name << " map " << i << " " << tag << depth;
            for (int lvl = 0; lvl < kNumMemLevels; ++lvl)
                ASSERT_LE(b.words[size_t(lvl)],
                          actualWords[lvl] * (1.0 + kRelTol))
                    << p.name << " map " << i << " " << tag << depth
                    << " level " << lvl;
            ASSERT_LE(b.edp(), res.edp() * (1.0 + kRelTol))
                << p.name << " map " << i << " " << tag << depth;
            edpOut = b.edp();
        };

        double e = 0.0;
        for (int depth = 0; depth <= kFactorSlots; ++depth) {
            check(PartialAssignment::levelPrefixOf(maps[i], depth),
                  "levels=", depth, e);
            if (HasFatalFailure())
                return;
            // Monotone: pinning more slots never loosens the bound.
            ASSERT_GE(e, prevEdp * (1.0 - 1e-12))
                << p.name << " map " << i << " depth " << depth;
            prevEdp = e;
        }
        check(PartialAssignment::dimPrefixOf(maps[i], rank / 2),
              "dims=", int(rank / 2), e);
        check(PartialAssignment::dimPrefixOf(maps[i], rank),
              "dims=", int(rank), e);
        if (HasFatalFailure())
            return;
    }
}

INSTANTIATE_TEST_SUITE_P(CnnAndMttkrp, BoundAdmissibility,
                         ::testing::Values(0, 1));

TEST(BranchAndBound, ExactOnSmallMapSpace)
{
    SmallSpace s;
    BoundTables tables(s.space);
    int64_t evaluated = 0;
    const double brute = bruteForceBestNorm(s.model, tables, evaluated);
    ASSERT_GT(evaluated, 0);
    ASSERT_TRUE(std::isfinite(brute));

    const BBOutcome out = certifyOptimum(s.model, int64_t(1) << 20);
    EXPECT_TRUE(out.exact);
    EXPECT_DOUBLE_EQ(out.bestNormEdp, brute);
    EXPECT_DOUBLE_EQ(out.certifiedNormEdp, out.bestNormEdp);
    EXPECT_TRUE(s.space.isMember(out.best));
    EXPECT_DOUBLE_EQ(s.model.normalizedEdp(out.best), out.bestNormEdp);
    EXPECT_GT(out.leavesEvaluated, 0);
    EXPECT_GE(out.bestNormEdp, 1.0 - kRelTol);
}

TEST(BranchAndBound, GapPruningKeepsTheCertificateValid)
{
    SmallSpace s;
    BoundTables tables(s.space);
    int64_t evaluated = 0;
    const double brute = bruteForceBestNorm(s.model, tables, evaluated);

    const double gap = 0.5;
    const BBOutcome out = certifyOptimum(s.model, int64_t(1) << 20, gap);
    // The certificate never climbs above the true optimum...
    EXPECT_LE(out.certifiedNormEdp, brute * (1.0 + kRelTol));
    // ...and a completed gap run's incumbent is within the gap of it.
    EXPECT_LE(out.bestNormEdp,
              out.certifiedNormEdp * (1.0 + gap) * (1.0 + kRelTol));
    EXPECT_TRUE(s.space.isMember(out.best));
}

TEST(BranchAndBound, DeterministicUnderStepBudget)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem p = mttkrpProblem("bb-det", 24, 16, 32, 12);
    MapSpace space(arch, p);
    CostModel model(space);
    SearcherBuildContext ctx{model};
    auto &reg = SearcherRegistry::instance();

    Rng a(3), b(3);
    const SearchResult r1 =
        reg.make("BB:maxNodes=400", ctx)->run(SearchBudget::bySteps(250), a);
    const SearchResult r2 =
        reg.make("BB:maxNodes=400", ctx)->run(SearchBudget::bySteps(250), b);
    EXPECT_EQ(r1.method, "BB");
    EXPECT_GT(r1.steps, 0);
    EXPECT_LE(r1.steps, 250);
    EXPECT_DOUBLE_EQ(r1.bestNormEdp, r2.bestNormEdp);
    EXPECT_TRUE(r1.best == r2.best);
    EXPECT_TRUE(space.isMember(r1.best));
    EXPECT_GE(r1.bestNormEdp, 1.0 - kRelTol);
    // One reference-model query of virtual latency per charged step.
    EXPECT_NEAR(r1.virtualSec, double(r1.steps) * TimingModel{}.randomStepSec,
                1e-6);
}

TEST(SearcherRegistry, BranchAndBoundIsRegisteredAndValidated)
{
    auto &reg = SearcherRegistry::instance();
    ASSERT_TRUE(reg.contains("BB"));
    EXPECT_FALSE(reg.at("BB").needsSurrogate);
    // fig5/fig6 --list and mm_serve validation both read this schema.
    EXPECT_NE(reg.describe().find("BB"), std::string::npos);

    SmallSpace s;
    SearcherBuildContext ctx{s.model};
    EXPECT_NO_THROW(reg.make("BB:maxNodes=8,gap=0.1,leafOrders=4", ctx));
    EXPECT_THROW(reg.make("BB:maxNodes=0", ctx), FatalError);
    EXPECT_THROW(reg.make("BB:gap=-0.5", ctx), FatalError);
    EXPECT_THROW(reg.make("BB:leafOrders=0", ctx), FatalError);
    EXPECT_THROW(reg.make("SA:seedFrom=GA", ctx), FatalError);
    EXPECT_THROW(reg.make("SA:seedNodes=0", ctx), FatalError);
    EXPECT_THROW(reg.make("GA:seedFrom=nope", ctx), FatalError);
    EXPECT_THROW(reg.make("GA:seedNodes=-1", ctx), FatalError);
}

TEST(SeedFromBB, WarmStartsBaselineSearchersDeterministically)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem p = makeProblem(conv1dAlgo(), "seeded", {16, 4});
    MapSpace space(arch, p);
    CostModel model(space);
    SearcherBuildContext ctx{model};
    auto &reg = SearcherRegistry::instance();

    for (const char *spec :
         {"SA:seedFrom=BB,seedNodes=32",
          "GA:pop=8,elites=1,seedFrom=BB,seedNodes=32"}) {
        Rng a(9), b(9);
        const SearchResult r1 =
            reg.make(spec, ctx)->run(SearchBudget::bySteps(120), a);
        const SearchResult r2 =
            reg.make(spec, ctx)->run(SearchBudget::bySteps(120), b);
        EXPECT_TRUE(space.isMember(r1.best)) << spec;
        EXPECT_TRUE(std::isfinite(r1.bestNormEdp)) << spec;
        EXPECT_DOUBLE_EQ(r1.bestNormEdp, r2.bestNormEdp) << spec;
        EXPECT_TRUE(r1.best == r2.best) << spec;
        // Seeding must survive a budget smaller than the seed run.
        Rng tiny(9);
        const SearchResult r3 =
            reg.make(spec, ctx)->run(SearchBudget::bySteps(5), tiny);
        EXPECT_LE(r3.steps, 5) << spec;
    }
}

} // namespace
} // namespace mm
